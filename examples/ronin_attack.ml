(* Forensics of the March 2022 Ronin bridge attack.

   Regenerates the paper's Ronin scenario (scaled down), runs the full
   detection pipeline, and prints the attack evidence the paper reports
   in Section 5.2.5: the two forged withdrawal transactions, the value
   drained, the pre-window false positives filtered by withdrawal-id
   numbering, and the Figure 1 story — deposits only stopped six days
   after the attack.

   Run with: dune exec examples/ronin_attack.exe *)

module Detector = Xcw_core.Detector
module Report = Xcw_core.Report
module Decoder = Xcw_core.Decoder
module Stats = Xcw_util.Stats
module Ronin = Xcw_workload.Ronin
module Scenario = Xcw_workload.Scenario
module Bridge = Xcw_bridge.Bridge

let () =
  let b = Ronin.build ~seed:2022 ~scale:0.02 () in
  let input =
    Detector.default_input ~label:"ronin" ~plugin:Decoder.ronin_plugin
      ~config:b.Scenario.config
      ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:b.Scenario.pricing
  in
  let result =
    Detector.run
      {
        input with
        Detector.i_first_window_withdrawal_id =
          b.Scenario.first_window_withdrawal_id;
      }
  in
  Format.printf "%a@.@." Report.pp result.Detector.report;

  let summary = Detector.attack_summary ~source_chain_id:1 result in
  Format.printf "=== Attack forensics (Section 5.2.5) ===@.";
  Format.printf "forged withdrawal events on Ethereum : %d@." summary.Detector.as_events;
  Format.printf "attack transactions                  : %d@." summary.Detector.as_transactions;
  Format.printf "value drained                        : $%.2fM@."
    (summary.Detector.as_total_usd /. 1e6);
  Format.printf
    "pre-window withdrawals filtered as FPs (withdrawal_id < %d): %d@.@."
    (Option.value b.Scenario.first_window_withdrawal_id ~default:0)
    b.Scenario.ground_truth.Scenario.gt_pre_window_fps;

  (* Figure 1: function calls per 6-hour bucket around the attack. *)
  let attack = b.Scenario.attack_time and discovery = b.Scenario.discovery_time in
  let start = attack - (4 * 86_400) and stop = discovery + (3 * 86_400) in
  let dep =
    Stats.time_buckets b.Scenario.deposit_call_times ~start ~stop ~width:(6 * 3600)
  in
  let wdr =
    Stats.time_buckets b.Scenario.withdrawal_call_times ~start ~stop ~width:(6 * 3600)
  in
  Format.printf "=== Figure 1: bridge function calls per 6h (| = attack, * = discovery) ===@.";
  List.iter2
    (fun (ts, d) (_, w) ->
      let marker =
        if ts <= attack && attack < ts + (6 * 3600) then " <-- ATTACK"
        else if ts <= discovery && discovery < ts + (6 * 3600) then
          " <-- DISCOVERY (deposits stop)"
        else ""
      in
      Format.printf "t=%d  deposits %3d  withdrawals %3d%s@." ts d w marker)
    dep wdr;
  Format.printf
    "@.The bridge kept accepting deposits for six days after the attack —@.\
     exactly the observability gap XChainWatcher closes: the two forged@.\
     withdrawals are flagged the moment their receipts are decoded.@."
