(* Extending XChainWatcher to a new protocol (paper Section 6,
   "Extensibility"): stand up a custom burn-mint bridge with its own
   finality parameters, reuse the pluggable decoder with the matching
   beneficiary representation, and verify the rules transfer unchanged:
   a compromised-validator forgery is flagged with no protocol-specific
   rule changes.

   Run with: dune exec examples/custom_bridge.exe *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Aggregator = Xcw_bridge.Aggregator
module Config = Xcw_core.Config
module Pricing = Xcw_core.Pricing
module Decoder = Xcw_core.Decoder
module Detector = Xcw_core.Detector
module Report = Xcw_core.Report

let () =
  (* A hypothetical "ZetaBridge": burn-mint escrow, a 2-of-3 multisig,
     slow source chain (10 min finality), fast target chain. *)
  let source =
    Chain.create ~chain_id:77 ~name:"slowchain" ~finality_seconds:600
      ~genesis_time:1_700_000_000
  in
  let target =
    Chain.create ~chain_id:78 ~name:"fastchain" ~finality_seconds:5
      ~genesis_time:1_700_000_000
  in
  let bridge =
    Bridge.create
      {
        Bridge.s_label = "zetabridge";
        s_source_chain = source;
        s_target_chain = target;
        s_escrow = Bridge.Burn_mint;
        s_acceptance =
          Bridge.Multisig
            {
              threshold = 2;
              validator_count = 3;
              compromised_keys = 0;
              enforce_source_finality = true;
            };
        s_beneficiary_repr = Events.B_address;
        s_buggy_unmapped_withdrawal = false;
      }
  in
  let zeta = Bridge.register_token_pair bridge ~name:"Zeta Token" ~symbol:"ZETA" ~decimals:18 in
  (* Plug point 1: the decoder — the generic plugin parameterized by
     the protocol's beneficiary representation. *)
  let plugin = { Decoder.plugin_name = "zetabridge"; beneficiary_repr = Events.B_address } in
  (* Plug point 2: the static configuration (bridge addresses, token
     mappings, finality, wrapped natives) — auto-derived here, or
     loadable from JSON for a real deployment. *)
  let config = Config.of_bridge bridge in
  print_endline "Configuration (as persisted to the bridge's config file):";
  print_endline (Config.to_string config);
  print_newline ();

  (* Benign traffic, including a deposit routed through an aggregator
     (the intermediary-protocol path of paper Section 3.2). *)
  let user = Address.of_seed "zeta-user" in
  Chain.fund source user (U256.of_tokens ~decimals:18 10);
  Chain.fund target user (U256.of_tokens ~decimals:18 10);
  (* Under burn-mint the bridge owns the source token; users acquire it
     via the bridge operator in this demo. *)
  let mint_to_user amount =
    ignore
      (Bridge.admin_mint bridge ~dst_token:zeta.Bridge.m_dst_token ~to_:user ~amount)
  in
  mint_to_user (U256.of_tokens ~decimals:18 500);
  let w =
    Bridge.request_withdrawal bridge ~user ~dst_token:zeta.Bridge.m_dst_token
      ~amount:(U256.of_tokens ~decimals:18 200) ~beneficiary:user
  in
  Chain.advance_time target 60;
  ignore (Bridge.execute_withdrawal bridge ~withdrawal:w);
  let agg = Aggregator.deploy bridge in
  ignore
    (Aggregator.deposit_erc20 bridge ~aggregator:agg ~user
       ~src_token:zeta.Bridge.m_src_token
       ~amount:(U256.of_tokens ~decimals:18 150) ~beneficiary:user);
  (match
     Bridge.observe_deposit bridge
       (List.hd (Chain.all_receipts source |> List.rev))
   with
  | Some d -> ignore (Bridge.complete_deposit bridge ~deposit:d)
  | None -> ());

  (* The attack: two of three validator keys leak; the attacker mints
     ZETA on the source chain with a forged withdrawal. *)
  let attacker = Address.of_seed "zeta-attacker" in
  Chain.fund source attacker (U256.of_tokens ~decimals:18 1);
  Bridge.compromise_validators bridge ~keys:2;
  Chain.advance_time source 3600;
  ignore
    (Bridge.forged_withdrawal bridge ~attacker ~src_token:zeta.Bridge.m_src_token
       ~amount:(U256.of_tokens ~decimals:18 1_000_000) ~withdrawal_id:999);

  (* Detection: the standard rules, untouched. *)
  let pricing = Pricing.create () in
  Pricing.register pricing ~chain_id:77
    ~token:(Address.to_hex zeta.Bridge.m_src_token) ~usd_per_token:3.0 ~decimals:18;
  Pricing.register pricing ~chain_id:78
    ~token:(Address.to_hex zeta.Bridge.m_dst_token) ~usd_per_token:3.0 ~decimals:18;
  let result =
    Detector.run
      (Detector.default_input ~label:"zetabridge" ~plugin ~config
         ~source_chain:source ~target_chain:target ~pricing)
  in
  Format.printf "%a@.@." Report.pp result.Detector.report;
  let summary = Detector.attack_summary ~source_chain_id:77 result in
  Format.printf
    "Forged mint of $%.1fM ZETA flagged as a withdrawal with no@.\
     correspondence on the target chain — zero protocol-specific rules@.\
     were written for this bridge.@."
    (summary.Detector.as_total_usd /. 1e6)
