(* Live monitoring: drive a bridge and a streaming monitor side by
   side, watching alerts arrive as blocks do.

   The scenario: a healthy custom bridge processes deposits and
   withdrawals under 6-hourly polling; mid-stream, two validator keys
   leak and an attacker forges a withdrawal.  The monitor alerts at the
   next poll — the operational loop the paper motivates with the
   six-day Ronin discovery gap.

   Run with: dune exec examples/live_monitoring.exe *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Config = Xcw_core.Config
module Pricing = Xcw_core.Pricing
module Decoder = Xcw_core.Decoder
module Detector = Xcw_core.Detector
module Monitor = Xcw_core.Monitor
module Report = Xcw_core.Report

let () =
  let source =
    Chain.create ~chain_id:1 ~name:"ethereum" ~finality_seconds:78
      ~genesis_time:1_700_000_000
  in
  let target =
    Chain.create ~chain_id:321 ~name:"sidechain" ~finality_seconds:45
      ~genesis_time:1_700_000_000
  in
  let bridge =
    Bridge.create
      {
        Bridge.s_label = "watched-bridge";
        s_source_chain = source;
        s_target_chain = target;
        s_escrow = Bridge.Lock_unlock;
        s_acceptance =
          Bridge.Multisig
            {
              threshold = 2;
              validator_count = 3;
              compromised_keys = 0;
              enforce_source_finality = true;
            };
        s_beneficiary_repr = Events.B_address;
        s_buggy_unmapped_withdrawal = false;
      }
  in
  let usdc =
    Bridge.register_token_pair bridge ~name:"USD Coin" ~symbol:"USDC" ~decimals:6
  in
  let config = Config.of_bridge bridge in
  let pricing = Pricing.create () in
  Pricing.register pricing ~chain_id:1
    ~token:(Address.to_hex usdc.Bridge.m_src_token) ~usd_per_token:1.0 ~decimals:6;
  Pricing.register pricing ~chain_id:321
    ~token:(Address.to_hex usdc.Bridge.m_dst_token) ~usd_per_token:1.0 ~decimals:6;
  let mon =
    Monitor.create
      (Detector.default_input ~label:"watched-bridge"
         ~plugin:Decoder.ronin_plugin ~config ~source_chain:source
         ~target_chain:target ~pricing)
  in
  let cursors () =
    ( List.length (Chain.all_blocks source),
      List.length (Chain.all_blocks target) )
  in
  let poll hour =
    let sb, tb = cursors () in
    let alerts = Monitor.poll mon ~source_block:sb ~target_block:tb in
    if alerts = [] then Format.printf "[t+%3dh] poll: all clear@." hour
    else
      List.iter
        (fun (a : Monitor.alert) ->
          Format.printf "[t+%3dh] *** ALERT [%s] %s — $%.0f (%s)@." hour
            a.Monitor.al_rule
            (Report.class_name a.Monitor.al_anomaly.Report.a_class)
            a.Monitor.al_anomaly.Report.a_usd_value
            a.Monitor.al_anomaly.Report.a_tx_hash)
        alerts
  in
  let operator = bridge.Bridge.source.Bridge.operator in
  let mint user amount =
    ignore
      (Chain.submit_tx source ~from_:operator ~to_:usdc.Bridge.m_src_token
         ~input:(Erc20.mint_calldata ~to_:user ~amount)
         ())
  in
  (* Hour 0-6: two users bridge funds over. *)
  let alice = Address.of_seed "live-alice" and bob = Address.of_seed "live-bob" in
  List.iter
    (fun u ->
      Chain.fund source u (U256.of_tokens ~decimals:18 5);
      Chain.fund target u (U256.of_tokens ~decimals:18 5))
    [ alice; bob ];
  mint alice (U256.of_tokens ~decimals:6 250_000);
  mint bob (U256.of_tokens ~decimals:6 400_000);
  let d1 =
    Bridge.deposit_erc20 bridge ~user:alice ~src_token:usdc.Bridge.m_src_token
      ~amount:(U256.of_tokens ~decimals:6 250_000) ~beneficiary:alice
  in
  ignore (Bridge.complete_deposit bridge ~deposit:d1);
  let d2 =
    Bridge.deposit_erc20 bridge ~user:bob ~src_token:usdc.Bridge.m_src_token
      ~amount:(U256.of_tokens ~decimals:6 400_000) ~beneficiary:bob
  in
  ignore (Bridge.complete_deposit bridge ~deposit:d2);
  poll 6;
  (* Hour 6-12: alice withdraws half back. *)
  Chain.advance_time target (6 * 3600);
  let w =
    Bridge.request_withdrawal bridge ~user:alice
      ~dst_token:usdc.Bridge.m_dst_token
      ~amount:(U256.of_tokens ~decimals:6 125_000) ~beneficiary:alice
  in
  ignore (Bridge.execute_withdrawal bridge ~withdrawal:w);
  poll 12;
  (* Hour 12-18: the incident — two of three validator keys leak. *)
  Chain.advance_time source (6 * 3600);
  Bridge.compromise_validators bridge ~keys:2;
  let attacker = Address.of_seed "live-attacker" in
  Chain.fund source attacker (U256.of_tokens ~decimals:18 1);
  ignore
    (Bridge.forged_withdrawal bridge ~attacker
       ~src_token:usdc.Bridge.m_src_token
       ~amount:(U256.of_tokens ~decimals:6 525_000) ~withdrawal_id:31337);
  poll 18;
  Format.printf
    "@.The forged withdrawal was alerted at the first poll after it landed\n\
     — a six-hour worst case against the six DAYS of Figure 1, bounding\n\
     further losses to one polling interval of exposure.@.";
  (* Epilogue: replay the same history through badly degraded RPC — 90%
     of requests fail transiently.  The monitor never raises and never
     skips data: polls that cannot fetch everything surface through
     [health] (and withhold alerts rather than emit them off a partial
     cross-chain view), and the alert arrives as soon as the fetch
     completes. *)
  Format.printf "@.Replaying through degraded RPC (90%% transient failures):@.";
  let module Fault = Xcw_rpc.Fault in
  let shaky = { Fault.p_transient = 0.9; p_timeout = 0.0 } in
  let plan =
    {
      Fault.none with
      Fault.f_receipt = shaky;
      f_transaction = shaky;
      f_trace = shaky;
    }
  in
  let input =
    Detector.default_input ~label:"watched-bridge" ~plugin:Decoder.ronin_plugin
      ~config ~source_chain:source ~target_chain:target ~pricing
  in
  let flaky =
    Monitor.create
      {
        input with
        Detector.i_source_fault = Some plan;
        i_target_fault = Some plan;
        i_rpc_seed = 7;
      }
  in
  let sb, tb = cursors () in
  let rec chase n =
    let alerts = Monitor.poll flaky ~source_block:sb ~target_block:tb in
    let h = Monitor.health flaky in
    if h.Monitor.h_synced then begin
      Format.printf "[poll %d] synced; %d alert(s), matching the live run@." n
        (List.length alerts);
      List.iter
        (fun (a : Monitor.alert) ->
          Format.printf "         *** ALERT [%s] %s — $%.0f@." a.Monitor.al_rule
            (Report.class_name a.Monitor.al_anomaly.Report.a_class)
            a.Monitor.al_anomaly.Report.a_usd_value)
        alerts
    end
    else begin
      Format.printf
        "[poll %d] degraded: %d+%d receipts pending, %d give-ups (%s)@." n
        h.Monitor.h_pending_source h.Monitor.h_pending_target
        h.Monitor.h_give_ups
        (match h.Monitor.h_last_error with Some e -> e | None -> "-");
      if n < 50 then chase (n + 1)
    end
  in
  chase 1
