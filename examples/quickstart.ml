(* Quickstart: stand up a two-chain bridge, run one deposit and one
   withdrawal through it, then point XChainWatcher at the chains and
   print the anomaly report.

   Run with: dune exec examples/quickstart.exe *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Config = Xcw_core.Config
module Pricing = Xcw_core.Pricing
module Decoder = Xcw_core.Decoder
module Detector = Xcw_core.Detector
module Report = Xcw_core.Report

let () =
  (* 1. Two simulated chains: Ethereum-like source, sidechain target. *)
  let ethereum =
    Chain.create ~chain_id:1 ~name:"ethereum" ~finality_seconds:78
      ~genesis_time:1_650_000_000
  in
  let sidechain =
    Chain.create ~chain_id:2020 ~name:"sidechain" ~finality_seconds:45
      ~genesis_time:1_650_000_000
  in
  (* 2. A multisig bridge (Ronin-style) connecting them. *)
  let bridge =
    Bridge.create
      {
        Bridge.s_label = "quickstart";
        s_source_chain = ethereum;
        s_target_chain = sidechain;
        s_escrow = Bridge.Lock_unlock;
        s_acceptance =
          Bridge.Multisig
            {
              threshold = 5;
              validator_count = 9;
              compromised_keys = 0;
              enforce_source_finality = true;
            };
        s_beneficiary_repr = Events.B_address;
        s_buggy_unmapped_withdrawal = false;
      }
  in
  let usdc = Bridge.register_token_pair bridge ~name:"USD Coin" ~symbol:"USDC" ~decimals:6 in
  (* 3. A user bridges 1,000 USDC over and withdraws 400 back. *)
  let alice = Address.of_seed "alice" in
  Chain.fund ethereum alice (U256.of_tokens ~decimals:18 10);
  Chain.fund sidechain alice (U256.of_tokens ~decimals:18 10);
  ignore
    (Chain.submit_tx ethereum ~from_:bridge.Bridge.source.Bridge.operator
       ~to_:usdc.Bridge.m_src_token
       ~input:
         (Erc20.mint_calldata ~to_:alice ~amount:(U256.of_tokens ~decimals:6 1_000))
       ());
  let deposit =
    Bridge.deposit_erc20 bridge ~user:alice ~src_token:usdc.Bridge.m_src_token
      ~amount:(U256.of_tokens ~decimals:6 1_000) ~beneficiary:alice
  in
  ignore (Bridge.complete_deposit bridge ~deposit);
  let withdrawal =
    Bridge.request_withdrawal bridge ~user:alice
      ~dst_token:usdc.Bridge.m_dst_token
      ~amount:(U256.of_tokens ~decimals:6 400) ~beneficiary:alice
  in
  ignore (Bridge.execute_withdrawal bridge ~withdrawal);
  (* ...and one anomaly: a careless transfer straight to the bridge. *)
  ignore
    (Chain.submit_tx ethereum ~from_:bridge.Bridge.source.Bridge.operator
       ~to_:usdc.Bridge.m_src_token
       ~input:(Erc20.mint_calldata ~to_:alice ~amount:(U256.of_tokens ~decimals:6 50))
       ());
  ignore
    (Bridge.direct_token_transfer_to_bridge bridge ~user:alice
       ~src_token:usdc.Bridge.m_src_token
       ~amount:(U256.of_tokens ~decimals:6 50));
  (* 4. Run XChainWatcher over both chains. *)
  let config = Config.of_bridge bridge in
  let pricing = Pricing.create () in
  Pricing.register pricing ~chain_id:1
    ~token:(Address.to_hex usdc.Bridge.m_src_token) ~usd_per_token:1.0 ~decimals:6;
  Pricing.register pricing ~chain_id:2020
    ~token:(Address.to_hex usdc.Bridge.m_dst_token) ~usd_per_token:1.0 ~decimals:6;
  let result =
    Detector.run
      (Detector.default_input ~label:"quickstart" ~plugin:Decoder.ronin_plugin
         ~config ~source_chain:ethereum ~target_chain:sidechain ~pricing)
  in
  Format.printf "%a@." Report.pp result.Detector.report;
  Format.printf
    "@.The $50 transfer straight to the bridge address was flagged; the@.\
     deposit and withdrawal round-trip was accepted as two valid cctxs.@."
