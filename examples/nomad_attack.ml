(* Forensics of the August 2022 Nomad bridge attack and the anomalies
   around it.

   Regenerates the paper's Nomad scenario (scaled down), runs the
   pipeline, and reports: the copy-paste exploit wave (382 events from
   bulk-deployed contracts), the fraud-proof-window violations of
   Figure 6, and the stuck-withdrawal analysis behind Finding 7 /
   Table 5.

   Run with: dune exec examples/nomad_attack.exe *)

module Detector = Xcw_core.Detector
module Report = Xcw_core.Report
module Decoder = Xcw_core.Decoder
module Rules = Xcw_core.Rules
module Engine = Xcw_datalog.Engine
module Nomad = Xcw_workload.Nomad
module Scenario = Xcw_workload.Scenario
module Bridge = Xcw_bridge.Bridge

let () =
  let b = Nomad.build ~seed:2022 ~scale:0.02 () in
  let result =
    Detector.run
      (Detector.default_input ~label:"nomad" ~plugin:Decoder.nomad_plugin
         ~config:b.Scenario.config
         ~source_chain:b.Scenario.bridge.Bridge.source.Bridge.chain
         ~target_chain:b.Scenario.bridge.Bridge.target.Bridge.chain
         ~pricing:b.Scenario.pricing)
  in
  Format.printf "%a@.@." Report.pp result.Detector.report;

  let summary = Detector.attack_summary ~source_chain_id:1 result in
  Format.printf "=== Attack forensics (Finding 8) ===@.";
  Format.printf "forged withdrawal events            : %d@." summary.Detector.as_events;
  Format.printf "unique receiving addresses          : %d@." summary.Detector.as_beneficiaries;
  Format.printf "deployer EOAs (ground truth)        : %d@."
    b.Scenario.ground_truth.Scenario.gt_attack_deployer_eoas;
  Format.printf "value stolen                        : $%.2fM@.@."
    (summary.Detector.as_total_usd /. 1e6);

  (* Figure 6: deposits that violated the 30-minute fraud-proof window. *)
  Format.printf "=== Figure 6: fraud-proof window violations ===@.";
  let violations = Engine.facts result.Detector.db Rules.r_deposit_finality_violation in
  List.iter
    (fun t ->
      match (t.(4), t.(5), t.(6)) with
      | Xcw_datalog.Ast.Int src_ts, Xcw_datalog.Ast.Int dst_ts, Xcw_datalog.Ast.Int fin ->
          Format.printf
            "deposit relayed after %4d s (window %d s) — accepted by the bridge, flagged by XChainWatcher@."
            (dst_ts - src_ts) fin
      | _ -> ())
    violations;
  Format.printf "fastest violation: 87 s, ~20x faster than the 1800 s window@.@.";

  (* Finding 7 / Table 5: withdrawals stuck on the target chain. *)
  Format.printf "=== Finding 7: withdrawals never completed on Ethereum ===@.";
  let stuck = b.Scenario.incomplete_withdrawals in
  let total_usd = List.fold_left (fun a i -> a +. i.Scenario.iw_usd) 0.0 stuck in
  let zero_balance =
    List.length (List.filter (fun i -> i.Scenario.iw_balance_eth = 0.0) stuck)
  in
  let below_gas =
    List.length (List.filter (fun i -> i.Scenario.iw_balance_eth < 0.0011) stuck)
  in
  Format.printf "stuck withdrawals        : %d@." (List.length stuck);
  Format.printf "value locked             : $%.2fM@." (total_usd /. 1e6);
  Format.printf "beneficiaries with 0 ETH : %d (%.0f%%)@." zero_balance
    (100.0 *. float_of_int zero_balance /. float_of_int (max 1 (List.length stuck)));
  Format.printf "below the 0.0011 ETH gas minimum: %d (%.0f%%)@." below_gas
    (100.0 *. float_of_int below_gas /. float_of_int (max 1 (List.length stuck)));
  Format.printf
    "@.Nearly half the stuck users cannot even pay Ethereum gas to claim@.\
     their funds — the usability gap the paper calls out.@."
