(** Solidity contract ABI encoding and decoding.

    Implements the head/tail encoding scheme of the Solidity ABI
    specification for the types the bridge protocols use, plus event
    signature hashing ([topic\[0\] = keccak256(signature)]) and event
    topic/data coding with indexed parameters.

    This substitutes for the EVM ABI libraries (ethers/web3) the paper's
    pipeline relies on; the byte format is identical so the decoders in
    [Xcw_core] exercise the same logic they would on mainnet data. *)

module U256 = Xcw_uint256.Uint256
module Hex = Xcw_util.Hex
module Keccak = Xcw_keccak.Keccak

exception Decode_error of string

module Type = struct
  type t =
    | Address
    | Uint of int  (** bit width, multiple of 8, <= 256 *)
    | Bool
    | Fixed_bytes of int  (** bytesN, 1 <= N <= 32 *)
    | Bytes  (** dynamic byte array *)
    | String_t  (** dynamic UTF-8 string *)
    | Array of t  (** dynamic-length array *)
    | Fixed_array of t * int
    | Tuple of t list

  let rec is_dynamic = function
    | Address | Uint _ | Bool | Fixed_bytes _ -> false
    | Bytes | String_t | Array _ -> true
    | Fixed_array (t, _) -> is_dynamic t
    | Tuple ts -> List.exists is_dynamic ts

  (** Number of 32-byte words occupied by a static type's head. *)
  let rec head_words = function
    | Address | Uint _ | Bool | Fixed_bytes _ -> 1
    | Bytes | String_t | Array _ -> 1 (* offset pointer *)
    | Fixed_array (t, n) -> if is_dynamic t then 1 else n * head_words t
    | Tuple ts ->
        if List.exists is_dynamic ts then 1
        else List.fold_left (fun acc t -> acc + head_words t) 0 ts

  (** Canonical type string used in signatures, e.g. ["uint256"]. *)
  let rec to_string = function
    | Address -> "address"
    | Uint n -> Printf.sprintf "uint%d" n
    | Bool -> "bool"
    | Fixed_bytes n -> Printf.sprintf "bytes%d" n
    | Bytes -> "bytes"
    | String_t -> "string"
    | Array t -> to_string t ^ "[]"
    | Fixed_array (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
    | Tuple ts -> "(" ^ String.concat "," (List.map to_string ts) ^ ")"

  let uint256 = Uint 256
  let bytes32 = Fixed_bytes 32
end

module Value = struct
  type t =
    | Address of string  (** 20 raw bytes *)
    | Uint of U256.t
    | Bool of bool
    | Fixed_bytes of string  (** N raw bytes *)
    | Bytes of string
    | String_v of string
    | Array of t list
    | Tuple of t list

  let rec type_of ?(uint_bits = 256) = function
    | Address _ -> Type.Address
    | Uint _ -> Type.Uint uint_bits
    | Bool _ -> Type.Bool
    | Fixed_bytes b -> Type.Fixed_bytes (String.length b)
    | Bytes _ -> Type.Bytes
    | String_v _ -> Type.String_t
    | Array [] -> Type.Array Type.uint256 (* element type unknowable *)
    | Array (x :: _) -> Type.Array (type_of x)
    | Tuple xs -> Type.Tuple (List.map type_of xs)

  let address_of_hex h =
    let raw = Hex.decode h in
    if String.length raw <> 20 then invalid_arg "Value.address_of_hex: not 20 bytes";
    Address raw

  let to_address_hex = function
    | Address a -> Hex.encode_0x a
    | _ -> invalid_arg "Value.to_address_hex: not an address"

  let uint_of_int i = Uint (U256.of_int i)

  let rec pp fmt = function
    | Address a -> Format.fprintf fmt "%s" (Hex.encode_0x a)
    | Uint u -> U256.pp fmt u
    | Bool b -> Format.pp_print_bool fmt b
    | Fixed_bytes b | Bytes b -> Format.fprintf fmt "0x%s" (Hex.encode b)
    | String_v s -> Format.fprintf fmt "%S" s
    | Array xs | Tuple xs ->
        Format.fprintf fmt "[%a]"
          (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp)
          xs
end

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let word_of_uint u = U256.to_bytes_be u

let word_of_int i = word_of_uint (U256.of_int i)

(* Left-pad to 32 bytes. *)
let pad_left s =
  if String.length s > 32 then invalid_arg "Abi.pad_left: longer than a word";
  String.make (32 - String.length s) '\000' ^ s

(* Right-pad to a multiple of 32 bytes. *)
let pad_right_multiple s =
  let n = String.length s in
  let rem = n mod 32 in
  if rem = 0 then s else s ^ String.make (32 - rem) '\000'

(** Encode a single value as its static head representation (only valid
    for static types). *)
let rec encode_static (v : Value.t) : string =
  match v with
  | Value.Address a -> pad_left a
  | Value.Uint u -> word_of_uint u
  | Value.Bool b -> word_of_int (if b then 1 else 0)
  | Value.Fixed_bytes b -> pad_right_multiple b
  | Value.Tuple xs -> String.concat "" (List.map encode_static xs)
  | Value.Array xs ->
      (* A fixed-size array of static elements is itself static: its
         head is the concatenation of the element heads. *)
      String.concat "" (List.map encode_static xs)
  | Value.Bytes _ | Value.String_v _ ->
      invalid_arg "Abi.encode_static: dynamic value"

(** [encode types values] is the ABI head/tail encoding of [values]
    (interpreted as the members of a top-level tuple of [types]). *)
and encode (types : Type.t list) (values : Value.t list) : string =
  if List.length types <> List.length values then
    invalid_arg "Abi.encode: arity mismatch";
  (* First pass: compute head size in bytes. *)
  let head_size =
    32 * List.fold_left (fun acc t -> acc + Type.head_words t) 0 types
  in
  let heads = Buffer.create 256 in
  let tails = Buffer.create 256 in
  List.iter2
    (fun ty v ->
      if Type.is_dynamic ty then begin
        let offset = head_size + Buffer.length tails in
        Buffer.add_string heads (word_of_int offset);
        Buffer.add_string tails (encode_dynamic ty v)
      end
      else Buffer.add_string heads (encode_static v))
    types values;
  Buffer.contents heads ^ Buffer.contents tails

and encode_dynamic (ty : Type.t) (v : Value.t) : string =
  match (ty, v) with
  | Type.Bytes, Value.Bytes b | Type.String_t, Value.String_v b ->
      word_of_int (String.length b) ^ pad_right_multiple b
  | Type.Array elem_ty, Value.Array xs ->
      let body =
        encode (List.map (fun _ -> elem_ty) xs) xs
      in
      word_of_int (List.length xs) ^ body
  | Type.Fixed_array (elem_ty, n), Value.Array xs ->
      if List.length xs <> n then invalid_arg "Abi.encode: fixed array arity";
      encode (List.map (fun _ -> elem_ty) xs) xs
  | Type.Tuple ts, Value.Tuple xs -> encode ts xs
  | _ -> invalid_arg "Abi.encode: type/value mismatch"

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let read_word (blob : string) (offset : int) : string =
  if offset + 32 > String.length blob then
    raise (Decode_error (Printf.sprintf "word read past end (offset %d, length %d)" offset (String.length blob)));
  String.sub blob offset 32

let read_uint blob offset = U256.of_bytes_be (read_word blob offset)

let read_offset blob offset =
  match U256.to_int_opt (read_uint blob offset) with
  | Some n -> n
  | None -> raise (Decode_error "offset does not fit in an int")

(** Decode an address word; the paper (Section 5.2.2) documents bridge
    users supplying wrongly padded addresses, so the strictness is
    configurable: [`Strict] (the paper's tool: left-padded only),
    [`Lenient] (accept either padding). *)
let decode_address_word ?(padding = `Strict) (word : string) : string =
  let is_zero_range lo hi =
    let ok = ref true in
    for i = lo to hi do
      if word.[i] <> '\000' then ok := false
    done;
    !ok
  in
  if is_zero_range 0 11 then String.sub word 12 20
  else
    match padding with
    | `Strict ->
        raise
          (Decode_error
             ("invalid 20-byte address: non-zero padding in " ^ Hex.encode_0x word))
    | `Lenient ->
        if is_zero_range 20 31 then String.sub word 0 20
        else
          raise
            (Decode_error
               ("invalid 20-byte address: neither left- nor right-padded in "
              ^ Hex.encode_0x word))

let rec decode_value (ty : Type.t) (blob : string) (offset : int) : Value.t =
  match ty with
  | Type.Address -> Value.Address (decode_address_word (read_word blob offset))
  | Type.Uint _ -> Value.Uint (read_uint blob offset)
  | Type.Bool -> (
      match U256.to_int_opt (read_uint blob offset) with
      | Some 0 -> Value.Bool false
      | Some 1 -> Value.Bool true
      | _ -> raise (Decode_error "invalid bool word"))
  | Type.Fixed_bytes n -> Value.Fixed_bytes (String.sub (read_word blob offset) 0 n)
  | Type.Bytes | Type.String_t ->
      let len =
        match U256.to_int_opt (read_uint blob offset) with
        | Some n -> n
        | None -> raise (Decode_error "bytes length too large")
      in
      if offset + 32 + len > String.length blob then
        raise (Decode_error "bytes payload truncated");
      let payload = String.sub blob (offset + 32) len in
      if ty = Type.Bytes then Value.Bytes payload else Value.String_v payload
  | Type.Array elem_ty ->
      let len =
        match U256.to_int_opt (read_uint blob offset) with
        | Some n -> n
        | None -> raise (Decode_error "array length too large")
      in
      if len > 1_000_000 then raise (Decode_error "array length unreasonable");
      let body_types = List.init len (fun _ -> elem_ty) in
      let values = decode_tuple_at body_types blob (offset + 32) in
      Value.Array values
  | Type.Fixed_array (elem_ty, n) ->
      Value.Array (decode_tuple_at (List.init n (fun _ -> elem_ty)) blob offset)
  | Type.Tuple ts -> Value.Tuple (decode_tuple_at ts blob offset)

(* Decode a tuple whose head starts at [base]. *)
and decode_tuple_at (types : Type.t list) (blob : string) (base : int) :
    Value.t list =
  let pos = ref base in
  List.map
    (fun ty ->
      let here = !pos in
      pos := here + (32 * Type.head_words ty);
      if Type.is_dynamic ty then begin
        let rel = read_offset blob here in
        decode_value ty blob (base + rel)
      end
      else decode_value ty blob here)
    types

(** [decode types blob] decodes a top-level tuple. *)
let decode (types : Type.t list) (blob : string) : Value.t list =
  decode_tuple_at types blob 0

(* ------------------------------------------------------------------ *)
(* Function selectors                                                  *)

(** [selector "deposit(address,uint256)"] is the 4-byte function
    selector. *)
let selector (signature : string) : string =
  String.sub (Keccak.digest signature) 0 4

(** [encode_call signature types values] is calldata: selector followed
    by the ABI-encoded arguments. *)
let encode_call signature types values = selector signature ^ encode types values

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

module Event = struct
  type param = { name : string; ty : Type.t; indexed : bool }

  type t = { name : string; params : param list }

  let param ?(indexed = false) name ty = { name; ty; indexed }

  let signature (e : t) : string =
    Printf.sprintf "%s(%s)" e.name
      (String.concat "," (List.map (fun p -> Type.to_string p.ty) e.params))

  (* topic0 is needed on every log emission and every decode attempt;
     memoize the keccak by signature. *)
  let topic0_cache : (string, string) Hashtbl.t = Hashtbl.create 32

  (** [topic0 e] is [keccak256(signature e)], the first topic of every
      log emitted for this event. *)
  let topic0 (e : t) : string =
    let s = signature e in
    match Hashtbl.find_opt topic0_cache s with
    | Some h -> h
    | None ->
        let h = Keccak.digest s in
        Hashtbl.replace topic0_cache s h;
        h

  (** [encode_log e values] is [(topics, data)].  Indexed parameters of
      value type become topics verbatim; indexed dynamic parameters are
      replaced by their keccak256 hash (as the EVM does).  Non-indexed
      parameters are ABI-encoded into the data blob. *)
  let encode_log (e : t) (values : Value.t list) : string list * string =
    if List.length values <> List.length e.params then
      invalid_arg "Event.encode_log: arity mismatch";
    let topics = ref [ topic0 e ] in
    let data_types = ref [] in
    let data_values = ref [] in
    List.iter2
      (fun p v ->
        if p.indexed then
          let topic =
            if Type.is_dynamic p.ty then
              Keccak.digest (encode_dynamic p.ty v)
            else encode_static v
          in
          topics := topic :: !topics
        else begin
          data_types := p.ty :: !data_types;
          data_values := v :: !data_values
        end)
      e.params values;
    ( List.rev !topics,
      encode (List.rev !data_types) (List.rev !data_values) )

  (** [decode_log e topics data] recovers the parameter values in
      declaration order.  Raises [Decode_error] if [topics] does not
      start with [topic0 e] or has the wrong arity.  Indexed dynamic
      parameters cannot be recovered (only their hash is stored) and are
      returned as [Fixed_bytes hash]. *)
  let decode_log ?(address_padding = `Strict) (e : t) (topics : string list)
      (data : string) : (string * Value.t) list =
    match topics with
    | [] -> raise (Decode_error "no topics")
    | t0 :: rest ->
        if t0 <> topic0 e then raise (Decode_error "topic0 mismatch");
        let indexed_params = List.filter (fun (p : param) -> p.indexed) e.params in
        if List.length rest <> List.length indexed_params then
          raise (Decode_error "indexed topic arity mismatch");
        let indexed_values =
          List.map2
            (fun (p : param) topic ->
              let v =
                if Type.is_dynamic p.ty then Value.Fixed_bytes topic
                else
                  match p.ty with
                  | Type.Address ->
                      Value.Address
                        (decode_address_word ~padding:address_padding topic)
                  | _ -> decode_value p.ty topic 0
              in
              (p.name, v))
            indexed_params rest
        in
        let data_params = List.filter (fun (p : param) -> not p.indexed) e.params in
        let data_values =
          decode (List.map (fun (p : param) -> p.ty) data_params) data
        in
        let data_named =
          List.map2 (fun (p : param) v -> (p.name, v)) data_params data_values
        in
        (* Re-assemble in declaration order. *)
        let rec merge (params : param list) iv dv =
          match params with
          | [] -> []
          | p :: ps ->
              if p.indexed then
                match iv with
                | x :: iv' -> x :: merge ps iv' dv
                | [] -> assert false
              else
                match dv with
                | x :: dv' -> x :: merge ps iv dv'
                | [] -> assert false
        in
        merge e.params indexed_values data_named
end
