(** Solidity contract ABI encoding and decoding.

    Implements the head/tail encoding scheme of the Solidity ABI
    specification, event signature hashing
    ([topic\[0\] = keccak256(signature)]), and event topic/data coding
    with indexed parameters — the byte format real EVM tooling
    produces, so decoders exercise the same logic they would on
    mainnet data. *)

module U256 = Xcw_uint256.Uint256

exception Decode_error of string

module Type : sig
  type t =
    | Address
    | Uint of int  (** bit width, multiple of 8, <= 256 *)
    | Bool
    | Fixed_bytes of int  (** bytesN, 1 <= N <= 32 *)
    | Bytes  (** dynamic byte array *)
    | String_t  (** dynamic UTF-8 string *)
    | Array of t  (** dynamic-length array *)
    | Fixed_array of t * int
    | Tuple of t list

  val is_dynamic : t -> bool

  val head_words : t -> int
  (** Number of 32-byte words occupied by the type's head. *)

  val to_string : t -> string
  (** Canonical type string used in signatures, e.g. ["uint256"]. *)

  val uint256 : t
  val bytes32 : t
end

module Value : sig
  type t =
    | Address of string  (** 20 raw bytes *)
    | Uint of U256.t
    | Bool of bool
    | Fixed_bytes of string  (** N raw bytes *)
    | Bytes of string
    | String_v of string
    | Array of t list
    | Tuple of t list

  val type_of : ?uint_bits:int -> t -> Type.t

  val address_of_hex : string -> t
  (** Raises [Invalid_argument] unless 20 bytes. *)

  val to_address_hex : t -> string
  val uint_of_int : int -> t
  val pp : Format.formatter -> t -> unit
end

(** {1 Tuple encoding} *)

val encode : Type.t list -> Value.t list -> string
(** Head/tail encoding of the values as a top-level tuple. *)

val decode : Type.t list -> string -> Value.t list
(** Inverse of {!encode}.  Raises {!Decode_error} on malformed data. *)

val encode_static : Value.t -> string
(** Static head representation (addresses, uints, bools, bytesN);
    raises [Invalid_argument] on dynamic values. *)

val decode_address_word :
  ?padding:[ `Strict | `Lenient ] -> string -> string
(** Extract a 20-byte address from a 32-byte word.  [`Strict] (default)
    accepts left padding only — the paper's tool behaviour;
    [`Lenient] also accepts right padding (the user mistakes of paper
    Section 5.2.2).  Raises {!Decode_error} on anything else. *)

(** {1 Function calls} *)

val selector : string -> string
(** [selector "transfer(address,uint256)"] is the 4-byte selector. *)

val encode_call : string -> Type.t list -> Value.t list -> string
(** Selector followed by ABI-encoded arguments. *)

(** {1 Events} *)

module Event : sig
  type param = { name : string; ty : Type.t; indexed : bool }
  type t = { name : string; params : param list }

  val param : ?indexed:bool -> string -> Type.t -> param

  val signature : t -> string
  (** e.g. ["Transfer(address,address,uint256)"]. *)

  val topic0 : t -> string
  (** [keccak256 (signature t)] — the first topic of every log for a
      non-anonymous event. *)

  val encode_log : t -> Value.t list -> string list * string
  (** [(topics, data)]: indexed value-type parameters become topics
      verbatim, indexed dynamic parameters are hashed (as the EVM
      does), the rest are ABI-encoded into [data]. *)

  val decode_log :
    ?address_padding:[ `Strict | `Lenient ] ->
    t ->
    string list ->
    string ->
    (string * Value.t) list
  (** Recover named parameter values in declaration order.  Raises
      {!Decode_error} on a foreign [topic0], arity mismatches, or
      malformed data.  Indexed dynamic parameters are returned as the
      stored hash ([Fixed_bytes]). *)
end
