(** The cross-chain rules — phase 3 of XChainWatcher (paper Section
    3.3): rules 1–8 model expected bridge behaviour, and ~36 auxiliary
    rules dissect what the core rules fail to capture (Tables 3/4).
    Relation names are exported for querying the evaluated database. *)

(** {1 Core rules (paper rules 1-8)} *)

val r_sc_valid_native_deposit : string
(** Rule 1 head: [(tx, ts, src_chain, dst_chain, src_token, dst_token,
    beneficiary, amount, deposit_id)]. *)

val r_sc_valid_erc20_deposit : string
(** Rule 2 head; same shape as rule 1. *)

val r_tc_valid_erc20_deposit : string
(** Rule 3 head: [(tx, ts, chain, deposit_id, beneficiary, dst_token,
    amount)]. *)

val r_cctx_valid_deposit : string
(** Rule 4 head: [(src_tx, dst_tx, deposit_id, src_chain, dst_chain,
    src_token, dst_token, beneficiary, amount, src_ts, dst_ts)]. *)

val r_tc_valid_native_withdrawal : string
(** Rule 5 head: [(tx, ts, tc_chain, withdrawal_id, beneficiary,
    src_token, dst_token, sc_chain, amount)]. *)

val r_tc_valid_erc20_withdrawal : string
(** Rule 6 head; same shape as rule 5. *)

val r_sc_valid_erc20_withdrawal : string
(** Rule 7 head: [(tx, ts, sc_chain, withdrawal_id, beneficiary, token,
    amount)]. *)

val r_cctx_valid_withdrawal : string
(** Rule 8 head: [(tc_tx, sc_tx, withdrawal_id, sc_chain, tc_chain,
    src_token, dst_token, beneficiary, amount, tc_ts, sc_ts)]. *)

(** {1 Auxiliary dissection relations} *)

val r_bridge_event_in_tx : string
val r_transfer_to_bridge_no_event : string
(** Findings 1/2: [(tx, chain, token, from, amount)]. *)

val r_transfer_from_bridge_no_event : string
val r_sc_deposit_event_no_escrow : string
val r_tc_withdraw_event_no_escrow : string
val r_matched_sc_deposit : string
val r_matched_tc_deposit : string
val r_matched_tc_withdrawal : string
val r_matched_sc_withdrawal : string

val r_unmatched_sc_native_deposit : string
(** [(tx, ts, amount, deposit_id, token)]; likewise the other
    unmatched relations, withdrawals carrying
    [(tx, ts, amount, withdrawal_id, beneficiary, token)]. *)

val r_unmatched_sc_erc20_deposit : string
val r_unmatched_tc_deposit : string
val r_unmatched_tc_native_withdrawal : string
val r_unmatched_tc_erc20_withdrawal : string
val r_unmatched_sc_withdrawal : string

val r_deposit_finality_violation : string
(** Finding 4 witnesses: [(src_tx, dst_tx, id, amount, src_ts, dst_ts,
    finality)]. *)

val r_withdrawal_finality_violation : string
val r_mapped_dst_token : string
val r_mapped_src_token : string
val r_deposit_mapping_violation : string
val r_withdrawal_mapping_violation : string
val r_deposit_beneficiary_mismatch : string
val r_withdrawal_beneficiary_mismatch : string
val r_reverted_bridge_interaction : string

(** {1 Attack-pack relations (2023 hack corpus)} *)

val r_tc_withdrawal_requested : string
(** Helper: withdrawal ids requested on T. *)

val r_forged_proof_withdrawal : string
(** Forged proof/signature acceptance (BNB-style): [(tx, wid,
    beneficiary, token, amount)] — an S-side release whose id was never
    requested on T. *)

val r_validator_takeover_withdrawal : string
(** Compromised-key takeover (Ronin-style): [(tc_tx, sc_tx, wid, token,
    amt_t, amt_s)] — matching ids but re-signed with a different
    amount. *)

val r_sc_deposit_initiated : string
(** Helper: deposit ids initiated on S. *)

val r_unauthorized_mint : string
(** Mint without a matching lock (Qubit-style): [(tx, did, beneficiary,
    token, amount)] — a mapped token minted on T for an id absent from
    S. *)

val r_inconsistent_deposit_event : string
(** Xscope inconsistent event pattern: [(src_tx, dst_tx, did, token,
    amt_s, amt_t)] — both sides emitted the deposit but the amounts
    disagree. *)

val zero_addr : string
(** ["0x0000...0000"]. *)

(** {1 Pessimistic-accounting stratum (PR 10)}

    Rules over the exit-bridge relations of the proof-carrying bridge
    model (DESIGN.md §15).  The [*_total] relations are engine
    aggregates — grouped sums materialized before any stratum runs —
    which the rules join like EDB: stratified aggregation. *)

val r_exit_deposit_total : string
(** Aggregate: [(origin_chain, token, total_deposited)]. *)

val r_exit_claim_total : string
(** Aggregate: [(origin_chain, token, total_claimed)]. *)

val r_exit_token_deposited : string
(** Helper: [(origin_chain, token)] pairs with any exit deposit. *)

val r_acc_outflow_violation : string
(** The conservation law: [(origin_chain, token, claimed, deposited)]
    with [claimed > deposited] (deposited is 0 when the token was
    never exit-deposited on that chain at all). *)

val r_acc_outflow_tx : string
(** Per-tx evidence for an outflow violation: [(tx, dest_chain,
    origin_chain, token, amount)] — every claim drawing on the
    convicted pool. *)

val r_acc_forged_exit_proof : string
(** [(tx, chain, leaf, token, amount)] — a claim whose inclusion proof
    failed watcher-side verification. *)

val r_acc_stale_root_claim : string
(** [(tx, chain, leaf, token, amount, epoch, newer)] — a claim proved
    against an epoch root after a newer epoch was already attested. *)

val r_acc_root_divergence : string
(** [(tx, chain, origin_chain, epoch, validator, signed, sealed)] — a
    validator attestation differing from the origin's sealed root. *)

val r_exit_validator_slashed : string
(** Helper: [(chain, validator)] pairs with a slash stake event. *)

val r_acc_slashing_evasion : string
(** [(tx, chain, validator, amount)] — a divergent-root validator
    withdrew its stake without being slashed. *)

val aggregates : Xcw_datalog.Engine.aggregate list
(** The two grouped-sum declarations behind the [*_total] relations;
    pass to [Engine.run]/[run_incremental] alongside {!program}. *)

val accounting_rules : Xcw_datalog.Ast.rule list
(** The nine accounting rules; appended last in {!all_rules} so the
    position-based rule labels of the pre-existing rules are stable. *)

(** {1 The program} *)

val core_rules : Xcw_datalog.Ast.rule list
(** Rules 1–8 (the two disjunctive rules compile to two clauses
    each). *)

val auxiliary_rules : Xcw_datalog.Ast.rule list

val attack_pack_rules : Xcw_datalog.Ast.rule list
(** The six attack-pack rules (two helpers + four detection heads);
    included in {!all_rules}. *)

val all_rules : Xcw_datalog.Ast.rule list
val program : Xcw_datalog.Ast.program
val rule_count : int
