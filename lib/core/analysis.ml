(** Post-detection analyses.

    These are the investigative steps the paper layers on top of the
    rule engine's output:

    - {!attribute_deployers}: trace exploit-receiving contracts back to
      the EOAs that deployed them (Section 5.2.5 traced 279 Nomad
      contracts to 45 deployer EOAs);
    - {!beneficiary_balances}: the Table 5 gas-balance analysis of
      stuck-withdrawal beneficiaries, computed from chain state;
    - {!salami_candidates}: the salami-slicing detector sketched as
      future work in Section 6 — many small transfers that evade
      per-transfer thresholds but sum to a large exfiltration. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Engine = Xcw_datalog.Engine
open Xcw_datalog.Ast

(* ------------------------------------------------------------------ *)
(* Deployer attribution                                                *)

(** Map each contract address to the EOA that created it, by scanning
    creation receipts.  Unknown addresses (EOAs, pre-genesis contracts)
    are absent from the result. *)
let deployer_index (chain : Chain.t) : (Address.t, Address.t) Hashtbl.t =
  let idx = Hashtbl.create 64 in
  List.iter
    (fun (r : Types.receipt) ->
      match r.Types.r_contract_created with
      | Some contract -> Hashtbl.replace idx contract r.Types.r_from
      | None -> ())
    (Chain.all_receipts chain);
  idx

(** [attribute_deployers chain beneficiaries] resolves each beneficiary
    to its deploying EOA when it is a contract, and returns the deduped
    EOA list — the paper's "45 unique EOAs responsible for deploying
    these contracts". *)
let attribute_deployers (chain : Chain.t) (beneficiaries : Address.t list) :
    Address.t list =
  let idx = deployer_index chain in
  beneficiaries
  |> List.filter_map (fun b -> Hashtbl.find_opt idx b)
  |> List.sort_uniq Address.compare

(** Beneficiaries of row-8 no-correspondence anomalies, parsed from the
    report (hex strings). *)
let forged_withdrawal_beneficiaries ~source_chain_id (report : Report.t) :
    Address.t list =
  let row8 =
    List.find (fun r -> r.Report.rr_rule = "8. CCTX_ValidWithdrawal") report.Report.rows
  in
  List.filter_map
    (fun a ->
      if
        a.Report.a_class = Report.No_correspondence
        && a.Report.a_chain_id = source_chain_id
      then
        match String.rindex_opt a.Report.a_detail ' ' with
        | Some i ->
            let hex =
              String.sub a.Report.a_detail (i + 1)
                (String.length a.Report.a_detail - i - 1)
            in
            (try Some (Address.of_hex hex) with _ -> None)
        | None -> None
      else None)
    row8.Report.rr_anomalies
  |> List.sort_uniq Address.compare

(* ------------------------------------------------------------------ *)
(* Beneficiary balance analysis (Table 5)                              *)

type balance_summary = {
  bs_total : int;
  bs_zero_balance : int;
  bs_below_gas_minimum : int;  (** < 0.0011 ETH, the Ronin docs minimum *)
}

let gas_minimum_wei = U256.of_float (0.0011 *. 1e18)

(** Current S-chain balances of the given beneficiaries — the "still
    today" column of Table 5. *)
let beneficiary_balances (chain : Chain.t) (beneficiaries : Address.t list) :
    balance_summary =
  let zero = ref 0 and below = ref 0 in
  List.iter
    (fun b ->
      let bal = Chain.native_balance chain b in
      if U256.is_zero bal then incr zero;
      if U256.lt bal gas_minimum_wei then incr below)
    beneficiaries;
  {
    bs_total = List.length beneficiaries;
    bs_zero_balance = !zero;
    bs_below_gas_minimum = !below;
  }

(* ------------------------------------------------------------------ *)
(* Salami-slicing detection (Section 6, future work)                   *)

type salami_candidate = {
  sal_sender : string;  (** address hex *)
  sal_chain_id : int;
  sal_token : string;
  sal_events : int;
  sal_total_usd : float;
  sal_max_single_usd : float;
  sal_first_ts : int;
  sal_last_ts : int;
}

(** Scan the valid-deposit relation for senders that split a large
    total across many small transfers: at least [min_events] deposits
    of the same token, each below [max_single_usd], summing to more
    than [min_total_usd].  Individually each deposit passes every
    cross-chain rule; only the aggregate view reveals the pattern. *)
let salami_candidates ?(min_events = 10) ?(max_single_usd = 1_000.0)
    ?(min_total_usd = 5_000.0) (db : Engine.db) (pricing : Pricing.t) :
    salami_candidate list =
  (* sc_valid_erc20_token_deposit(tx, ts, src_chain, dst_chain,
     src_token, dst_token, ben, amt, did): group by (beneficiary,
     src_token). *)
  let groups = Hashtbl.create 64 in
  List.iter
    (fun t ->
      match (t.(1), t.(2), t.(4), t.(6), t.(7)) with
      | Int ts, Int chain, Str token, Str ben, Str amt ->
          let usd = Pricing.usd_value_str pricing ~chain_id:chain ~token amt in
          let key = (ben, chain, token) in
          let prev = Option.value (Hashtbl.find_opt groups key) ~default:[] in
          Hashtbl.replace groups key ((ts, usd) :: prev)
      | _ -> ())
    (Engine.facts db Rules.r_sc_valid_erc20_deposit);
  Hashtbl.fold
    (fun (ben, chain, token) events acc ->
      let n = List.length events in
      let total = List.fold_left (fun a (_, u) -> a +. u) 0.0 events in
      let max_single = List.fold_left (fun a (_, u) -> Float.max a u) 0.0 events in
      let tss = List.map fst events in
      if n >= min_events && max_single <= max_single_usd && total >= min_total_usd
      then
        {
          sal_sender = ben;
          sal_chain_id = chain;
          sal_token = token;
          sal_events = n;
          sal_total_usd = total;
          sal_max_single_usd = max_single;
          sal_first_ts = List.fold_left min max_int tss;
          sal_last_ts = List.fold_left max 0 tss;
        }
        :: acc
      else acc)
    groups []
  |> List.sort (fun a b -> compare b.sal_total_usd a.sal_total_usd)
