(** Token USD pricing.

    A static price table (see DESIGN.md): tokens are priced per whole
    token and amounts scale by the token's decimals.  Absent tokens are
    worth zero — which doubles as the reputation signal: the phishing
    classifier treats unpriced tokens as disreputable, matching the
    paper's use of block-explorer reputation marks. *)

module U256 = Xcw_uint256.Uint256

type t

val create : ?native_price:float -> unit -> t
(** [native_price] is USD per native coin (default 2500). *)

val register :
  t -> chain_id:int -> token:string -> usd_per_token:float -> decimals:int -> unit
(** Token addresses are matched case-insensitively. *)

val is_reputable : t -> chain_id:int -> token:string -> bool
(** Is the token in the price table? *)

val usd_value : t -> chain_id:int -> token:string -> U256.t -> float
(** Zero when unpriced. *)

val usd_value_str : t -> chain_id:int -> token:string -> string -> float
(** USD value of a raw decimal-string amount (as carried in facts). *)

val usd_value_native : t -> U256.t -> float
(** USD value of a native-currency amount (18 decimals). *)
