(** Anomaly report structures — the detector's output.

    {!rule_row} reproduces a row of the paper's Table 3 (captured
    records and classified anomalies per rule); the classification
    values mirror Table 4's cause dissection; {!cctx} entries feed the
    open dataset export and Figures 5–7. *)

module Json = Xcw_util.Json

(** {1 Pessimistic-accounting classes (PR 10, DESIGN.md §15)} *)

(** The five exit-bridge attack classes of the proof-carrying bridge
    model — violations of structural invariants no per-transaction
    rule can express. *)
type acc_class =
  | Stale_root_claim  (** claim proved against a superseded epoch root *)
  | Forged_exit_proof  (** claim whose inclusion proof fails to verify *)
  | Root_divergence  (** validator attested a root the origin never sealed *)
  | Exit_net_outflow  (** cumulative claims exceed cumulative deposits *)
  | Slashing_evasion  (** divergent validator withdrew stake unslashed *)

val acc_classes : acc_class list
(** All five classes, in report-row order. *)

val acc_class_name : acc_class -> string

val acc_class_slug : acc_class -> string
(** Kebab-case identifier (CLI flags, fixture file names). *)

val acc_class_of_slug : string -> acc_class option

type anomaly_class =
  | Phishing_token_transfer  (** Finding 1 *)
  | Direct_transfer_to_bridge  (** Finding 2 *)
  | Unparseable_beneficiary  (** Section 5.1.3 *)
  | Failed_exploit_attempt  (** Section 5.1.3 *)
  | Event_without_escrow
  | Finality_violation  (** Finding 4 *)
  | Token_mapping_violation  (** Finding 6 *)
  | Invalid_beneficiary_fp  (** Section 5.2.2 *)
  | No_correspondence  (** Findings 7/8: attacks and stuck funds *)
  | Pre_window_fp  (** Section 5.2.5's Ronin false positives *)
  | Accounting of acc_class
      (** PR 10: an exit-bridge accounting-invariant violation *)

val class_name : anomaly_class -> string

type anomaly = {
  a_class : anomaly_class;
  a_tx_hash : string;
  a_chain_id : int;
  a_usd_value : float;
  a_detail : string;
}

type rule_row = {
  rr_rule : string;  (** e.g. ["1. SC_ValidNativeTokenDeposit"] *)
  rr_captured : int;
  rr_anomalies : anomaly list;
}

(** {1 Attack-pack tables (2023 hack corpus, DESIGN.md §12)} *)

type attack_class =
  | Forged_proof  (** forged proof/signature acceptance (BNB-style) *)
  | Validator_takeover  (** compromised-key re-signing (Ronin-style) *)
  | Unauthorized_mint  (** mint without a matching lock (Qubit-style) *)
  | Inconsistent_event  (** Xscope unmatched/inconsistent event pattern *)

val attack_classes : attack_class list
(** All four classes, in report-row order. *)

val attack_class_name : attack_class -> string

type attack_hit = {
  ah_tx_hash : string;  (** the attacker's transaction *)
  ah_chain_id : int;
  ah_id : int;  (** deposit or withdrawal id *)
  ah_usd_value : float;
  ah_detail : string;
}

type attack_row = {
  ar_class : attack_class;
  ar_rule : string;  (** the derived relation that fired *)
  ar_hits : attack_hit list;
}

type acc_row = {
  xr_class : acc_class;
  xr_rule : string;  (** the accounting relation that fired *)
  xr_hits : attack_hit list;
      (** [ah_id] carries the leaf index (claims), epoch (divergence)
          or 0 (stake events) *)
}

(** A valid cross-chain transaction (rules 4 and 8 output) — the unit
    of the open dataset. *)
type cctx = {
  c_kind : [ `Deposit | `Withdrawal ];
  c_src_tx : string;  (** initiating tx (S for deposits, T for withdrawals) *)
  c_dst_tx : string;
  c_id : int;
  c_amount : string;  (** decimal token units *)
  c_token : string;  (** source-chain token address *)
  c_beneficiary : string;
  c_usd_value : float;
  c_start_ts : int;
  c_end_ts : int;
}

val cctx_latency : cctx -> int

type t = {
  bridge_name : string;
  rows : rule_row list;
  attack_rows : attack_row list;
      (** one row per attack class, in {!attack_classes} order *)
  acc_rows : acc_row list;
      (** one row per accounting class, in {!acc_classes} order *)
  cctxs : cctx list;
  total_facts : int;
  decode_seconds : float;
  eval_seconds : float;
  simulated_rpc_seconds : float;
}

val attack_row : t -> attack_class -> attack_row option
val total_attack_hits : t -> int

val acc_row : t -> acc_class -> acc_row option
val total_acc_hits : t -> int

val total_anomalies : t -> int
val anomalies_of_class : t -> anomaly_class -> anomaly list

val summarize_anomalies : anomaly list -> (anomaly_class * int * float) list
(** Per-class (count, total USD), sorted. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> Json.t
val dataset_json : t -> string
(** The labeled cctx dataset (paper contribution 2) as JSON. *)

val dataset_csv : t -> string
(** The same dataset as CSV, header included. *)
