(** Streaming anomaly monitoring.

    The paper's central motivation (Figure 1) is observability: the
    Ronin attack went unnoticed for six days.  A monitor is fed block
    cursors as chains advance, decodes only receipts it has not seen
    (decoding dominates cost — Table 2), re-evaluates the rules, and
    emits alerts for anomalies new since the previous poll.

    Evaluation is incremental by default: one persistent Datalog
    database lives inside the monitor across polls, fresh facts seed
    the engine's semi-naive delta ({!Xcw_datalog.Engine.run_incremental}),
    and the non-monotonic anomaly relations (an unmatched deposit
    becomes matched when its completion lands) are retracted and
    re-derived in place — strata untouched by the new facts do no
    work.  [create ~incremental:false] restores the from-scratch
    rebuild per poll, for differential testing and benchmarking. *)

type alert = {
  al_anomaly : Report.anomaly;
  al_rule : string;  (** the rule row that flagged it *)
  al_detected_at : int * int;  (** (source block, target block) cursor *)
}

(** Receipt cursor: which receipts of a chain's list have been decoded.
    A plain count of receipts seen so far silently skips — forever —
    any receipt that precedes an already-decoded one in list order but
    lies above the block cursor; this tracks the fully-decoded prefix
    plus the exact set of decoded indices beyond it.  Exposed for
    regression testing with out-of-order receipt lists. *)
module Cursor : sig
  type t

  val create : unit -> t

  val take : t -> block_of:(int -> int) -> len:int -> up_to:int -> int list
  (** [take t ~block_of ~len ~up_to] returns the indices (ascending,
      within [0, len)]) not yet decoded whose block number
      ([block_of i]) is [<= up_to], and marks them decoded. *)

  val decoded_count : t -> int
end

type t

val create : ?incremental:bool -> Detector.input -> t
(** [incremental] defaults to [true]. *)

val poll : t -> source_block:int -> target_block:int -> alert list
(** Advance to the given block cursors; returns alerts for anomalies
    that appeared since the previous poll (each anomaly alerts once). *)

val last_report : t -> Report.t option
(** The full report as of the latest poll (anomalies that have since
    been retracted by later matches are absent from it). *)

val polls : t -> int
val facts_cached : t -> int
