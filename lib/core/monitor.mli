(** Streaming anomaly monitoring.

    The paper's central motivation (Figure 1) is observability: the
    Ronin attack went unnoticed for six days.  A monitor is fed block
    cursors as chains advance, decodes only receipts it has not seen
    (decoding dominates cost — Table 2), re-evaluates the rules, and
    emits alerts for anomalies new since the previous poll.  Rules are
    re-run from scratch per poll because the anomaly relations are
    non-monotonic (an unmatched deposit becomes matched when its
    completion lands); decoded facts are cached. *)

type alert = {
  al_anomaly : Report.anomaly;
  al_rule : string;  (** the rule row that flagged it *)
  al_detected_at : int * int;  (** (source block, target block) cursor *)
}

type t

val create : Detector.input -> t

val poll : t -> source_block:int -> target_block:int -> alert list
(** Advance to the given block cursors; returns alerts for anomalies
    that appeared since the previous poll (each anomaly alerts once). *)

val last_report : t -> Report.t option
(** The full report as of the latest poll (anomalies that have since
    been retracted by later matches are absent from it). *)

val polls : t -> int
val facts_cached : t -> int
