(** Streaming anomaly monitoring.

    The paper's central motivation (Figure 1) is observability: the
    Ronin attack went unnoticed for six days.  A monitor is fed block
    cursors as chains advance, decodes only receipts it has not seen
    (decoding dominates cost — Table 2), re-evaluates the rules, and
    emits alerts for anomalies new since the previous poll.

    Evaluation is incremental by default: one persistent Datalog
    database lives inside the monitor across polls, fresh facts seed
    the engine's semi-naive delta ({!Xcw_datalog.Engine.run_incremental}),
    and the non-monotonic anomaly relations (an unmatched deposit
    becomes matched when its completion lands) are retracted and
    re-derived in place — strata untouched by the new facts do no
    work.  [create ~incremental:false] restores the from-scratch
    rebuild per poll, for differential testing and benchmarking.

    Under RPC fault injection ({!Xcw_rpc.Fault} plans in the
    {!Detector.input}) the monitor degrades instead of raising: the
    receipt cursor only advances past fully-fetched data (failed
    receipts stay pending and are retried next poll — no silent gaps),
    failed polls surface through {!health}, catch-up happens on
    recovery, and a reorg signal rewinds the cursor and rebuilds the
    database through the engine's retraction path.  Alerts are only
    emitted from synced polls, so a fault-free run and any
    transient-fault run produce the same alerts. *)

type alert = {
  al_seq : int;
      (** monotone per-monitor sequence number (from 1); survives
          restarts, so consumers dedup replayed alerts by keeping a
          high-water mark *)
  al_anomaly : Report.anomaly;
  al_rule : string;  (** the rule row that flagged it *)
  al_detected_at : int * int;  (** (source block, target block) cursor *)
}

(** Durable checkpoint handle (PR 9).

    A checkpoint directory holds an append-only CRC-framed WAL with one
    record per poll (cursor advance, decoded-entry delta as packed
    tuples, emitted alerts with their sequence numbers) plus periodic
    atomic snapshots ([snapshot_every] polls; write-temp + fsync +
    rename, then WAL truncation).  [Monitor.create ~checkpoint]
    recovers: latest valid snapshot, WAL tail replayed, torn or corrupt
    trailing records truncated, and the monitor resumes with cursors,
    database, alert dedup set and sequence counter exactly as they were
    at the last durable record.  A handle is consumed by the monitor it
    is passed to — reusing it raises [Invalid_argument]. *)
module Checkpoint : sig
  type t

  val open_ :
    ?crash:Xcw_store.Crash_plan.t ->
    ?snapshot_every:int ->
    dir:string ->
    unit ->
    t
  (** [snapshot_every] defaults to 8 polls; [0] disables snapshots
      (the WAL then grows unboundedly).  [crash] threads a
      deterministic crash-injection plan into every write point. *)

  val store : t -> Xcw_store.Store.t
  (** The underlying store (WAL sizes for benches and tests). *)

  val close : t -> unit

  (** Alert wire codec, shared with the fleet supervisor's own store. *)

  val put_alert : Buffer.t -> alert -> unit
  val get_alert : Xcw_store.Codec.R.t -> alert
end

(** Receipt cursor: which receipts of a chain's list have been decoded.
    A plain count of receipts seen so far silently skips — forever —
    any receipt that precedes an already-decoded one in list order but
    lies above the block cursor; this tracks the fully-decoded prefix
    plus the exact set of decoded indices beyond it.  Exposed for
    regression testing with out-of-order receipt lists and reorg
    rewinds. *)
module Cursor : sig
  type t

  val create : unit -> t

  val take : t -> block_of:(int -> int) -> len:int -> up_to:int -> int list
  (** [take t ~block_of ~len ~up_to] returns the indices (ascending,
      within [0, len)]) not yet decoded whose block number
      ([block_of i]) is [<= up_to], and marks them decoded. *)

  val candidates :
    t -> block_of:(int -> int) -> len:int -> up_to:int -> int list
  (** Like {!take} but without marking: the indices a poll still needs
      to decode. *)

  val mark : t -> int -> unit
  (** Mark one index decoded (idempotent). *)

  val is_decoded : t -> int -> bool

  val rewind : t -> block_of:(int -> int) -> above:int -> unit
  (** Forget every decoded index whose block is above [above] — the
      reorg rewind; those receipts will be decoded again. *)

  val decoded_count : t -> int
end

(** Degradation status of the monitor under RPC faults. *)
type health = {
  h_synced : bool;
      (** every receipt within the requested cursors is decoded *)
  h_pending_source : int;  (** receipts awaiting (re)decode on S *)
  h_pending_target : int;
  h_trace_gaps : int;
      (** receipts decoded without the call tracer (internal transfers
          unobserved; see {!Facts.r_trace_gap}) *)
  h_give_ups : int;  (** client requests that exhausted retries *)
  h_reorgs : int;  (** reorg signals handled *)
  h_last_error : string option;  (** most recent RPC failure seen *)
}

type t

val create :
  ?incremental:bool ->
  ?metrics:Xcw_obs.Metrics.t ->
  ?checkpoint:Checkpoint.t ->
  Detector.input ->
  t
(** [incremental] defaults to [true].

    [checkpoint] makes every poll durable: the poll's state delta and
    alerts are fsynced to the checkpoint's WAL before [poll] returns
    them, and creation first recovers whatever the directory already
    holds (see {!Checkpoint}).  After a crash, consult {!replayed} for
    the alerts of the last durable poll and dedup by [al_seq].

    The monitor and everything it builds (RPC nodes, clients, the
    Datalog engine) record into [metrics] — default: the process-wide
    {!Xcw_obs.Metrics.default} registry.  Monitor-level instruments:
    [xcw_monitor_polls_total], [xcw_monitor_alerts_total],
    [xcw_monitor_reorgs_total], the [xcw_monitor_poll_seconds]
    histogram, and gauges [xcw_monitor_synced] (1/0),
    [xcw_monitor_pending{side="source"|"target"}] (cursor lag in
    receipts) and [xcw_monitor_facts_cached].  Each poll also opens a
    ["monitor.poll"] span on the default tracer. *)

val poll : t -> source_block:int -> target_block:int -> alert list
(** Advance to the given block cursors; returns alerts for anomalies
    that appeared since the previous poll (each anomaly alerts once).
    Under fault injection a poll may return nothing because a side is
    behind — consult {!health}; alerts arrive once the monitor catches
    up. *)

val health : t -> health

val pools : t -> (Xcw_rpc.Pool.t * Xcw_rpc.Pool.t) option
(** The (source, target) quorum pools when the input requested
    [i_endpoints > 1] — their endpoints expose per-node ground truth
    ({!Xcw_rpc.Rpc.byzantine_injections}) for tests. *)

val pool_health : t -> (Xcw_rpc.Pool.health * Xcw_rpc.Pool.health) option
(** Quorum-read reports for the (source, target) pools: endpoint trust
    and quarantine states, with [ph_suspects] naming the endpoints
    caught lying.  A degraded quorum shows up as refusals here and as
    pending receipts in {!health} — the cursor never advances past
    data the pool would not vouch for, so alerting stays synced-only
    exactly as under PR 2's fail-stop degradation. *)

val last_report : t -> Report.t option
(** The full report as of the latest poll (anomalies that have since
    been retracted by later matches are absent from it).  When
    [health] reports unsynced, the report reflects a partial
    cross-chain view. *)

val polls : t -> int

val replayed : t -> alert list
(** The alerts of the most recent durable WAL record.  After recovery
    this is the tail a consumer may have missed: re-deliver and dedup
    by [al_seq].  Empty for monitors without a checkpoint. *)

val alert_seq : t -> int
(** Last alert sequence number assigned (0 before any alert). *)

val rpc_seconds : t -> float
(** Simulated RPC seconds (node latency plus retry backoff) accrued by
    the monitor's two side clients — the extraction cost a real
    deployment pays in wall time.  Accumulated by the latency model,
    never slept; [0.] until the first poll fetches something. *)

val facts_cached : t -> int

val cached_facts : t -> Facts.t list
(** Every fact decoded so far (source side first, receipt order) —
    lets tests state the no-silent-gap invariant exactly. *)

val metrics_snapshot : t -> Xcw_obs.Metrics.metric list
(** Snapshot of the monitor's registry — every instrument recorded by
    this monitor's components (and, when the monitor uses the default
    registry, by anything else sharing it). *)
