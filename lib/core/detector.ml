(** The anomaly detector — orchestrates the three phases of
    XChainWatcher: decode (via {!Decoder} over the RPC facade), build
    logic relations ({!Facts} into the Datalog database), and evaluate
    the cross-chain rules ({!Rules}).  The derived relations are then
    dissected into the classified anomaly report ({!Report}) that
    reproduces Tables 3 and 4 of the paper. *)


module Chain = Xcw_chain.Chain
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client
module Fault = Xcw_rpc.Fault
module Latency = Xcw_rpc.Latency
module Engine = Xcw_datalog.Engine

type input = {
  i_label : string;
  i_plugin : Decoder.plugin;
  i_config : Config.t;
  i_source_chain : Chain.t;
  i_target_chain : Chain.t;
  i_source_profile : Latency.profile;
  i_target_profile : Latency.profile;
  i_pricing : Pricing.t;
  i_first_window_withdrawal_id : int option;
      (** withdrawals on S with an id below this were requested on T
          before the collection window; classified as FPs, as the paper
          does for Ronin (Section 5.2.5) *)
  i_rpc_seed : int;
  i_program : Xcw_datalog.Ast.program;
      (** the rules to evaluate; defaults to the compiled-in
          {!Rules.program}, replaceable with rules parsed from a [.dl]
          file ({!Xcw_datalog.Parser}).  The dissection expects the
          standard relation names to be present. *)
  i_source_fault : Fault.plan option;
  i_target_fault : Fault.plan option;
      (** fault plans injected into the per-chain RPC facades; [None]
          (the default) keeps every request infallible *)
  i_client_policy : Client.policy;
      (** retry/backoff policy of the resilient client wrapped around
          each facade *)
  i_endpoints : int;
      (** RPC endpoints per chain; above 1 every read goes through a
          quorum {!Xcw_rpc.Pool} of independently seeded facades *)
  i_quorum : int;
      (** k-of-n agreement required by the pool (ignored with a single
          endpoint) *)
  i_source_endpoint_faults : Fault.plan option list;
  i_target_endpoint_faults : Fault.plan option list;
      (** per-endpoint fault overrides, by endpoint index: an entry
          replaces the side-wide plan for that endpoint ([None] = that
          endpoint is faultless); indices beyond the list fall back to
          [i_source_fault]/[i_target_fault].  This is how tests make
          exactly one endpoint Byzantine. *)
  i_ndomains : int;
      (** worker domains for rule evaluation and log decoding
          ({!Engine.run} / {!Decoder.decode_chain}); 1 (the default)
          runs the sequential paths untouched *)
}

let default_input ~label ~plugin ~config ~source_chain ~target_chain ~pricing =
  {
    i_label = label;
    i_plugin = plugin;
    i_config = config;
    i_source_chain = source_chain;
    i_target_chain = target_chain;
    i_source_profile = Latency.colocated_profile;
    i_target_profile = Latency.colocated_profile;
    i_pricing = pricing;
    i_first_window_withdrawal_id = None;
    i_rpc_seed = 7;
    i_program = Rules.program;
    i_source_fault = None;
    i_target_fault = None;
    i_client_policy = Client.default_policy;
    i_endpoints = 1;
    i_quorum = 1;
    i_source_endpoint_faults = [];
    i_target_endpoint_faults = [];
    i_ndomains = 1;
  }

(* Build one side's client: a plain single-endpoint client, or — with
   [endpoints > 1] — a quorum pool of independently seeded facades over
   the same chain.  Endpoint 0 keeps exactly the single-endpoint seed,
   so its latency/fault streams match a non-pooled run. *)
let build_client ?metrics ~profile ~seed ~policy ~endpoints ~quorum ~fault
    ~endpoint_faults chain =
  if endpoints <= 1 then
    Rpc.create ~profile ~seed ?fault ?metrics chain
    |> Client.create ~policy ~seed ?metrics
  else begin
    let eps =
      List.init endpoints (fun j ->
          let fault =
            match List.nth_opt endpoint_faults j with
            | Some override -> override
            | None -> fault
          in
          Rpc.create ~profile ~seed:(seed + (j * 7919)) ?fault ?metrics chain)
    in
    let pool =
      Xcw_rpc.Pool.create
        ~policy:{ Xcw_rpc.Pool.default_policy with q_quorum = quorum }
        ?metrics eps
    in
    Client.create_pooled ~policy ~seed ?metrics pool
  end

type result = {
  report : Report.t;
  db : Engine.db;  (** full Datalog database, for ad-hoc queries *)
  decode_results : (Decoder.chain_role * Decoder.receipt_decode) list;
  decode_errors : Decoder.decode_error list;
  rule_stats : Engine.stats;
  pool_health : (Xcw_rpc.Pool.health * Xcw_rpc.Pool.health) option;
      (** (source, target) quorum-pool reports when [i_endpoints > 1];
          [ph_suspects] names the endpoints caught lying *)
}

(* ------------------------------------------------------------------ *)

let run (input : input) : result =
  Engine.recommended_gc_setup ();
  let config = input.i_config in
  (* Phase 1+2: decode receipts and build relations. *)
  let t0 = Unix.gettimeofday () in
  let src_client =
    build_client ~profile:input.i_source_profile ~seed:input.i_rpc_seed
      ~policy:input.i_client_policy ~endpoints:input.i_endpoints
      ~quorum:input.i_quorum ~fault:input.i_source_fault
      ~endpoint_faults:input.i_source_endpoint_faults input.i_source_chain
  in
  let dst_client =
    build_client ~profile:input.i_target_profile ~seed:(input.i_rpc_seed + 1)
      ~policy:input.i_client_policy ~endpoints:input.i_endpoints
      ~quorum:input.i_quorum ~fault:input.i_target_fault
      ~endpoint_faults:input.i_target_endpoint_faults input.i_target_chain
  in
  let src_decoded =
    Decoder.decode_chain ~ndomains:input.i_ndomains input.i_plugin config
      ~role:Decoder.Source src_client input.i_source_chain
  in
  let dst_decoded =
    Decoder.decode_chain ~ndomains:input.i_ndomains input.i_plugin config
      ~role:Decoder.Target dst_client input.i_target_chain
  in
  let db = Engine.create_db () in
  ignore (Facts.load_all db (Config.to_facts config));
  List.iter
    (fun (rd : Decoder.receipt_decode) ->
      ignore (Facts.load_all db rd.Decoder.rd_facts))
    (src_decoded @ dst_decoded);
  let decode_seconds = Unix.gettimeofday () -. t0 in
  let total_facts = Engine.total_tuples db in
  (* Phase 3: evaluate the cross-chain rules. *)
  let t1 = Unix.gettimeofday () in
  let rule_stats =
    Engine.run ~ndomains:input.i_ndomains ~aggregates:Rules.aggregates db
      input.i_program
  in
  let eval_seconds = Unix.gettimeofday () -. t1 in
  let all_decode_errors =
    List.concat_map (fun rd -> rd.Decoder.rd_errors) (src_decoded @ dst_decoded)
  in
  let report =
    Dissect.dissect ~label:input.i_label ~config ~pricing:input.i_pricing
      ~first_window_withdrawal_id:input.i_first_window_withdrawal_id
      ~decode_errors:all_decode_errors ~db ~decode_seconds ~eval_seconds
      ~simulated_rpc_seconds:
        (Client.total_latency src_client +. Client.total_latency dst_client)
      ~total_facts ()
  in
  {
    report;
    db;
    decode_results =
      List.map (fun rd -> (Decoder.Source, rd)) src_decoded
      @ List.map (fun rd -> (Decoder.Target, rd)) dst_decoded;
    decode_errors = all_decode_errors;
    rule_stats;
    pool_health =
      (match (Client.pool src_client, Client.pool dst_client) with
      | Some sp, Some dp ->
          Some (Xcw_rpc.Pool.health sp, Xcw_rpc.Pool.health dp)
      | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Attack summary (Section 5.2.5 / Finding 8)                          *)

type attack_summary = {
  as_events : int;  (** unmatched S withdrawals with no correspondence *)
  as_transactions : int;  (** unique transaction hashes *)
  as_beneficiaries : int;  (** unique receiving addresses *)
  as_total_usd : float;
}

(** Summarize the forged-withdrawal evidence (rule 8, S-side events
    with no counterpart on T, excluding pre-window FPs) — the Ronin and
    Nomad attack signatures of Section 5.2.5. *)
let attack_summary ~source_chain_id (r : result) : attack_summary =
  let row8 =
    List.find
      (fun row -> row.Report.rr_rule = "8. CCTX_ValidWithdrawal")
      r.report.Report.rows
  in
  let forged =
    List.filter
      (fun a ->
        a.Report.a_class = Report.No_correspondence
        && a.Report.a_chain_id = source_chain_id)
      row8.Report.rr_anomalies
  in
  let uniq f xs = List.sort_uniq compare (List.map f xs) in
  (* The unmatched-withdrawal detail string ends with
     "beneficiary <addr>"; extract the address for uniqueness. *)
  let beneficiary_of_detail detail =
    match String.rindex_opt detail ' ' with
    | Some i -> String.sub detail (i + 1) (String.length detail - i - 1)
    | None -> detail
  in
  {
    as_events = List.length forged;
    as_transactions = List.length (uniq (fun a -> a.Report.a_tx_hash) forged);
    as_beneficiaries =
      List.length (uniq (fun a -> beneficiary_of_detail a.Report.a_detail) forged);
    as_total_usd =
      List.fold_left (fun acc a -> acc +. a.Report.a_usd_value) 0.0 forged;
  }
