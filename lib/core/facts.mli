(** The cross-chain fact model — the logical relations of the paper's
    Listing 1, as produced by the decoders and the static configuration
    loader and consumed by the Datalog rules.

    Datalog term conventions: hashes/addresses are hex strings, token
    amounts are decimal strings (uint256 exceeds native ints; rules
    only need equality), timestamps/ids/indices are ints. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types

(** {1 Relation names} *)

val r_native_deposit : string
val r_native_withdrawal : string
val r_sc_token_deposited : string
val r_tc_token_deposited : string
val r_tc_token_withdrew : string
val r_sc_token_withdrew : string
val r_erc20_transfer : string
val r_transaction : string
val r_bridge_controlled_address : string
val r_token_mapping : string
val r_cctx_finality : string
val r_wrapped_native_token : string

val r_bridge_event_decode_failure : string
(** Not part of Listing 1: marks transactions whose bridge event was
    present but undecodable (e.g. an unparseable beneficiary), so the
    transfer-without-event detectors don't misfire on them. *)

val r_trace_gap : string
(** Not part of Listing 1: marks transactions decoded without the call
    tracer (the node had it disabled or it kept timing out), so their
    internal native transfers are invisible.  Consumed by no rule;
    surfaced through the monitor's health status. *)

(** Exit-bridge relations (PR 10): the proof-carrying pessimistic
    bridge model (DESIGN.md §15).  Amounts in these relations are
    small native ints, so the accounting stratum can sum them through
    the engine's stratified aggregates. *)

val r_exit_deposit : string
val r_exit_claim : string
val r_sealed_root : string
val r_signed_root : string
val r_stake_event : string

(** {1 Facts} *)

type t =
  | Native_deposit of {
      tx_hash : string;
      chain_id : int;
      event_index : int;
      from_ : string;
      to_ : string;
      amount : U256.t;
    }
  | Native_withdrawal of {
      tx_hash : string;
      chain_id : int;
      event_index : int;
      from_ : string;
      to_ : string;
      amount : U256.t;
    }
  | Sc_token_deposited of {
      tx_hash : string;
      event_index : int;
      deposit_id : int;
      beneficiary : string;
      dst_token : string;
      orig_token : string;
      dst_chain_id : int;
      amount : U256.t;
    }
  | Tc_token_deposited of {
      tx_hash : string;
      event_index : int;
      deposit_id : int;
      beneficiary : string;
      dst_token : string;
      amount : U256.t;
    }
  | Tc_token_withdrew of {
      tx_hash : string;
      event_index : int;
      withdrawal_id : int;
      beneficiary : string;
      orig_token : string;
      dst_token : string;
      dst_chain_id : int;
      amount : U256.t;
    }
  | Sc_token_withdrew of {
      tx_hash : string;
      event_index : int;
      withdrawal_id : int;
      beneficiary : string;
      dst_token : string;
      amount : U256.t;
    }
  | Erc20_transfer of {
      tx_hash : string;
      chain_id : int;
      event_index : int;
      contract : string;
      from_ : string;
      to_ : string;
      amount : U256.t;
    }
  | Transaction of {
      timestamp : int;
      chain_id : int;
      tx_hash : string;
      from_ : string;
      to_ : string;
      value : U256.t;
      status : int;
      fee : U256.t;
    }
  | Bridge_controlled_address of { chain_id : int; address : string }
  | Token_mapping of {
      src_chain_id : int;
      dst_chain_id : int;
      src_token : string;
      dst_token : string;
    }
  | Cctx_finality of { chain_id : int; finality_seconds : int }
  | Wrapped_native_token of { chain_id : int; token : string }
  | Bridge_event_decode_failure of { tx_hash : string }
  | Trace_gap of { tx_hash : string; chain_id : int }
  | Exit_deposit of {
      tx_hash : string;
      chain_id : int;  (** origin chain appending to its deposit tree *)
      event_index : int;
      leaf_index : int;
      token : string;
      amount : int;
      dest_chain_id : int;
      root : string;  (** deposit-tree root after the append *)
    }
  | Exit_claim of {
      tx_hash : string;
      chain_id : int;  (** destination chain executing the claim *)
      event_index : int;
      leaf_index : int;
      token : string;
      amount : int;
      origin_chain_id : int;
      root : string;  (** root the claim's proof was presented against *)
      seq : int;  (** destination-side monotone claim sequence *)
      valid : int;  (** 1 iff the inclusion proof verified (watcher-side) *)
    }
  | Sealed_root of {
      tx_hash : string;
      chain_id : int;  (** origin chain sealing its deposit tree *)
      epoch : int;
      root : string;
    }
  | Signed_root of {
      tx_hash : string;
      chain_id : int;  (** destination chain receiving the attestation *)
      origin_chain_id : int;
      epoch : int;
      root : string;
      validator : string;
      seq : int;  (** destination-side sequence (shared with claims) *)
    }
  | Stake_event of {
      tx_hash : string;
      chain_id : int;
      validator : string;
      kind : string;  (** ["bond"] | ["withdraw"] | ["slash"] *)
      amount : int;
      epoch : int;  (** epoch context of the event (0 for bonds) *)
    }

val to_tuple : t -> string * Xcw_datalog.Ast.const list
(** The (relation name, tuple) pair for the Datalog database. *)

val to_packed : t -> string * Xcw_datalog.Engine.Relation.tuple
(** The same cells as {!to_tuple}, packed straight into the engine's
    interned int-array representation — the fact-loading hot path. *)

val of_packed : string -> Xcw_datalog.Engine.Relation.tuple -> t option
(** Inverse of {!to_packed}: decode a persisted (relation, packed
    tuple) pair back to the fact value, for durable-store recovery.
    [None] when the tuple does not match the relation's layout. *)

val relation_name : t -> string

val load_all : Xcw_datalog.Engine.db -> t list -> t list
(** Load a batch of facts; returns the sub-list that was not already
    present in the database (the fresh-tuple delta, in input order). *)

val hex_of_address : Address.t -> string
val hex_of_hash : Types.hash -> string
