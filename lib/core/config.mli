(** Static bridge configuration and its loader (the paper's per-bridge
    configuration files, e.g. [ronin_env.py]): bridge-controlled
    addresses, token mappings, per-chain finality, wrapped-native
    tokens.  JSON-(de)serializable so deployments keep them as files. *)

module Address = Xcw_evm.Address
module Json = Xcw_util.Json

exception Config_error of string

type token_mapping = {
  src_chain_id : int;
  dst_chain_id : int;
  src_token : Address.t;
  dst_token : Address.t;
}

type t = {
  bridge_name : string;
  source_chain_id : int;
  target_chain_id : int;
  bridge_controlled : (int * Address.t) list;  (** (chain_id, address) *)
  token_mappings : token_mapping list;
  finality : (int * int) list;  (** (chain_id, seconds) *)
  wrapped_native : (int * Address.t) list;
}

val of_bridge : Xcw_bridge.Bridge.t -> t
(** Derive the configuration from a simulated bridge.  The zero address
    is registered as bridge-controlled on the target chain (and on the
    source chain for burn-mint bridges): mints/burns surface as ERC-20
    transfers from/to 0x0 and count as bridge escrow movements.
    Captures the mappings registered {e so far} — snapshot before
    injecting fake mappings so the detector's [token_mapping] facts
    contain only the verified pairs. *)

val to_facts : t -> Facts.t list
(** The Static Configuration Loader: static Datalog facts. *)

val to_json : t -> Json.t
val of_json : Json.t -> t
(** Raises {!Config_error} on missing/ill-typed fields. *)

val to_string : t -> string
val of_string : string -> t
