(** Static bridge configuration and its loader.

    Mirrors the paper's per-bridge configuration files (e.g.
    [ronin_env.py]): RPC endpoints aside, a configuration lists the
    bridge-controlled addresses on each chain, the token mappings, each
    chain's finality time, and the wrapped-native-token contracts.  The
    {!to_facts} loader turns a configuration into the static Datalog
    facts of Listing 1.

    Configurations can be serialized to/from JSON so a deployment can
    keep them as files, exactly like the original tool. *)

module Address = Xcw_evm.Address
module Json = Xcw_util.Json

type token_mapping = {
  src_chain_id : int;
  dst_chain_id : int;
  src_token : Address.t;
  dst_token : Address.t;
}

type t = {
  bridge_name : string;
  source_chain_id : int;
  target_chain_id : int;
  bridge_controlled : (int * Address.t) list;  (** (chain_id, address) *)
  token_mappings : token_mapping list;
  finality : (int * int) list;  (** (chain_id, seconds) *)
  wrapped_native : (int * Address.t) list;
}

(** Build the configuration for a simulated bridge.  The zero address
    is registered as bridge-controlled on the target chain: mints and
    burns surface as ERC-20 transfers from/to 0x0, and the rules treat
    those as bridge escrow movements (as the original configurations
    do for mint-model bridges). *)
let of_bridge (b : Xcw_bridge.Bridge.t) : t =
  let module B = Xcw_bridge.Bridge in
  let module Chain = Xcw_chain.Chain in
  let src = b.B.source and dst = b.B.target in
  let src_id = src.B.chain.Chain.chain_id in
  let dst_id = dst.B.chain.Chain.chain_id in
  {
    bridge_name = b.B.label;
    source_chain_id = src_id;
    target_chain_id = dst_id;
    bridge_controlled =
      ([
         (src_id, src.B.bridge_addr);
         (dst_id, dst.B.bridge_addr);
         (dst_id, Address.zero);
       ]
      @
      (* Burn-mint bridges release on S by minting: transfers from the
         zero address are bridge escrow movements there too. *)
      match b.B.escrow with
      | B.Burn_mint -> [ (src_id, Address.zero) ]
      | B.Lock_unlock -> []);
    token_mappings =
      List.map
        (fun (m : B.token_mapping) ->
          {
            src_chain_id = src_id;
            dst_chain_id = dst_id;
            src_token = m.B.m_src_token;
            dst_token = m.B.m_dst_token;
          })
        b.B.mappings;
    finality =
      [
        (src_id, src.B.chain.Chain.finality_seconds);
        (dst_id, dst.B.chain.Chain.finality_seconds);
      ];
    wrapped_native = [ (src_id, src.B.weth); (dst_id, dst.B.weth) ];
  }

(** The Static Configuration Loader: static facts for the Datalog
    database. *)
let to_facts (t : t) : Facts.t list =
  List.map
    (fun (chain_id, addr) ->
      Facts.Bridge_controlled_address
        { chain_id; address = Address.to_hex addr })
    t.bridge_controlled
  @ List.map
      (fun (m : token_mapping) ->
        Facts.Token_mapping
          {
            src_chain_id = m.src_chain_id;
            dst_chain_id = m.dst_chain_id;
            src_token = Address.to_hex m.src_token;
            dst_token = Address.to_hex m.dst_token;
          })
      t.token_mappings
  @ List.map
      (fun (chain_id, seconds) ->
        Facts.Cctx_finality { chain_id; finality_seconds = seconds })
      t.finality
  @ List.map
      (fun (chain_id, token) ->
        Facts.Wrapped_native_token { chain_id; token = Address.to_hex token })
      t.wrapped_native

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization                                              *)

let to_json (t : t) : Json.t =
  let addr a = Json.String (Address.to_hex a) in
  Json.Obj
    [
      ("bridge_name", Json.String t.bridge_name);
      ("source_chain_id", Json.Int t.source_chain_id);
      ("target_chain_id", Json.Int t.target_chain_id);
      ( "bridge_controlled",
        Json.List
          (List.map
             (fun (c, a) -> Json.Obj [ ("chain_id", Json.Int c); ("address", addr a) ])
             t.bridge_controlled) );
      ( "token_mappings",
        Json.List
          (List.map
             (fun m ->
               Json.Obj
                 [
                   ("src_chain_id", Json.Int m.src_chain_id);
                   ("dst_chain_id", Json.Int m.dst_chain_id);
                   ("src_token", addr m.src_token);
                   ("dst_token", addr m.dst_token);
                 ])
             t.token_mappings) );
      ( "finality",
        Json.List
          (List.map
             (fun (c, s) ->
               Json.Obj [ ("chain_id", Json.Int c); ("seconds", Json.Int s) ])
             t.finality) );
      ( "wrapped_native",
        Json.List
          (List.map
             (fun (c, a) -> Json.Obj [ ("chain_id", Json.Int c); ("token", addr a) ])
             t.wrapped_native) );
    ]

exception Config_error of string

let of_json (j : Json.t) : t =
  let str_field obj key =
    match Json.member key obj with
    | Some (Json.String s) -> s
    | _ -> raise (Config_error ("missing string field " ^ key))
  in
  let int_field obj key =
    match Json.member key obj with
    | Some (Json.Int i) -> i
    | _ -> raise (Config_error ("missing int field " ^ key))
  in
  let list_field obj key =
    match Json.member key obj with
    | Some (Json.List l) -> l
    | _ -> raise (Config_error ("missing list field " ^ key))
  in
  let addr_field obj key = Address.of_hex (str_field obj key) in
  {
    bridge_name = str_field j "bridge_name";
    source_chain_id = int_field j "source_chain_id";
    target_chain_id = int_field j "target_chain_id";
    bridge_controlled =
      List.map
        (fun o -> (int_field o "chain_id", addr_field o "address"))
        (list_field j "bridge_controlled");
    token_mappings =
      List.map
        (fun o ->
          {
            src_chain_id = int_field o "src_chain_id";
            dst_chain_id = int_field o "dst_chain_id";
            src_token = addr_field o "src_token";
            dst_token = addr_field o "dst_token";
          })
        (list_field j "token_mappings");
    finality =
      List.map
        (fun o -> (int_field o "chain_id", int_field o "seconds"))
        (list_field j "finality");
    wrapped_native =
      List.map
        (fun o -> (int_field o "chain_id", addr_field o "token"))
        (list_field j "wrapped_native");
  }

let to_string t = Json.to_string (to_json t)
let of_string s = of_json (Json.of_string s)
