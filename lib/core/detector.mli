(** The anomaly detector — orchestrates XChainWatcher's three phases:
    decode receipts over RPC, build logic relations, evaluate the
    cross-chain rules; then dissect the derived relations into the
    classified report reproducing the paper's Tables 3 and 4. *)

module Chain = Xcw_chain.Chain
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client
module Fault = Xcw_rpc.Fault
module Latency = Xcw_rpc.Latency
module Engine = Xcw_datalog.Engine

type input = {
  i_label : string;
  i_plugin : Decoder.plugin;
  i_config : Config.t;
  i_source_chain : Chain.t;
  i_target_chain : Chain.t;
  i_source_profile : Latency.profile;
  i_target_profile : Latency.profile;
  i_pricing : Pricing.t;
  i_first_window_withdrawal_id : int option;
      (** S withdrawals with an id below this were requested before the
          collection window; classified as FPs (paper Section 5.2.5) *)
  i_rpc_seed : int;
  i_program : Xcw_datalog.Ast.program;
      (** the rules to evaluate; defaults to the compiled-in
          {!Rules.program}.  Replace with rules parsed from a [.dl]
          file to fine-tune per bridge; the dissection expects the
          standard relation names. *)
  i_source_fault : Fault.plan option;
  i_target_fault : Fault.plan option;
      (** fault plans injected into the per-chain RPC facades; [None]
          (the default) keeps every request infallible *)
  i_client_policy : Client.policy;
      (** retry/backoff policy of the resilient client wrapped around
          each facade *)
}

val default_input :
  label:string ->
  plugin:Decoder.plugin ->
  config:Config.t ->
  source_chain:Chain.t ->
  target_chain:Chain.t ->
  pricing:Pricing.t ->
  input
(** Colocated RPC profiles, no pre-window cutoff, no fault injection,
    default retry policy. *)

type result = {
  report : Report.t;
  db : Engine.db;  (** full Datalog database, for ad-hoc queries *)
  decode_results : (Decoder.chain_role * Decoder.receipt_decode) list;
  decode_errors : Decoder.decode_error list;
  rule_stats : Engine.stats;
}

val run : input -> result

(** {1 Attack summary (Section 5.2.5 / Finding 8)} *)

type attack_summary = {
  as_events : int;  (** unmatched S withdrawals with no correspondence *)
  as_transactions : int;  (** unique transaction hashes *)
  as_beneficiaries : int;  (** unique receiving addresses *)
  as_total_usd : float;
}

val attack_summary : source_chain_id:int -> result -> attack_summary
(** Forged-withdrawal evidence: rule-8 S-side no-correspondence events
    (pre-window FPs excluded). *)
