(** The anomaly detector — orchestrates XChainWatcher's three phases:
    decode receipts over RPC, build logic relations, evaluate the
    cross-chain rules; then dissect the derived relations into the
    classified report reproducing the paper's Tables 3 and 4. *)

module Chain = Xcw_chain.Chain
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client
module Fault = Xcw_rpc.Fault
module Latency = Xcw_rpc.Latency
module Engine = Xcw_datalog.Engine

type input = {
  i_label : string;
  i_plugin : Decoder.plugin;
  i_config : Config.t;
  i_source_chain : Chain.t;
  i_target_chain : Chain.t;
  i_source_profile : Latency.profile;
  i_target_profile : Latency.profile;
  i_pricing : Pricing.t;
  i_first_window_withdrawal_id : int option;
      (** S withdrawals with an id below this were requested before the
          collection window; classified as FPs (paper Section 5.2.5) *)
  i_rpc_seed : int;
  i_program : Xcw_datalog.Ast.program;
      (** the rules to evaluate; defaults to the compiled-in
          {!Rules.program}.  Replace with rules parsed from a [.dl]
          file to fine-tune per bridge; the dissection expects the
          standard relation names. *)
  i_source_fault : Fault.plan option;
  i_target_fault : Fault.plan option;
      (** fault plans injected into the per-chain RPC facades; [None]
          (the default) keeps every request infallible *)
  i_client_policy : Client.policy;
      (** retry/backoff policy of the resilient client wrapped around
          each facade *)
  i_endpoints : int;
      (** RPC endpoints per chain (default 1); above 1 every read goes
          through a Byzantine-tolerant quorum {!Xcw_rpc.Pool} of
          independently seeded facades over the same chain *)
  i_quorum : int;
      (** k-of-n agreement required by the pool (ignored with a single
          endpoint) *)
  i_source_endpoint_faults : Xcw_rpc.Fault.plan option list;
  i_target_endpoint_faults : Xcw_rpc.Fault.plan option list;
      (** per-endpoint fault overrides, by endpoint index: an entry
          replaces the side-wide plan for that endpoint ([None] = that
          endpoint is faultless); indices beyond the list fall back to
          the side-wide plan.  This is how tests make exactly one
          endpoint Byzantine. *)
  i_ndomains : int;
      (** worker domains for rule evaluation and log decoding
          ({!Xcw_datalog.Engine.run} / {!Decoder.decode_chain});
          1 (the default) runs the sequential paths untouched, and any
          value produces an identical report (see the determinism notes
          on those two functions) *)
}

val default_input :
  label:string ->
  plugin:Decoder.plugin ->
  config:Config.t ->
  source_chain:Chain.t ->
  target_chain:Chain.t ->
  pricing:Pricing.t ->
  input
(** Colocated RPC profiles, no pre-window cutoff, no fault injection,
    default retry policy, a single endpoint per chain. *)

val build_client :
  ?metrics:Xcw_obs.Metrics.t ->
  profile:Latency.profile ->
  seed:int ->
  policy:Client.policy ->
  endpoints:int ->
  quorum:int ->
  fault:Fault.plan option ->
  endpoint_faults:Fault.plan option list ->
  Chain.t ->
  Client.t
(** Build one side's client the way {!run} and {!Monitor} do: a plain
    single-endpoint client when [endpoints <= 1], otherwise a
    {!Client.create_pooled} quorum pool of [endpoints] independently
    seeded facades (endpoint [j] is seeded [seed + j * 7919], so
    endpoint 0 reproduces the single-endpoint streams exactly). *)

type result = {
  report : Report.t;
  db : Engine.db;  (** full Datalog database, for ad-hoc queries *)
  decode_results : (Decoder.chain_role * Decoder.receipt_decode) list;
  decode_errors : Decoder.decode_error list;
  rule_stats : Engine.stats;
  pool_health : (Xcw_rpc.Pool.health * Xcw_rpc.Pool.health) option;
      (** (source, target) quorum-pool reports when [i_endpoints > 1];
          [ph_suspects] names the endpoints caught lying *)
}

val run : input -> result

(** {1 Attack summary (Section 5.2.5 / Finding 8)} *)

type attack_summary = {
  as_events : int;  (** unmatched S withdrawals with no correspondence *)
  as_transactions : int;  (** unique transaction hashes *)
  as_beneficiaries : int;  (** unique receiving addresses *)
  as_total_usd : float;
}

val attack_summary : source_chain_id:int -> result -> attack_summary
(** Forged-withdrawal evidence: rule-8 S-side no-correspondence events
    (pre-window FPs excluded). *)
