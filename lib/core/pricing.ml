(** Token USD pricing.

    The paper aggregates anomaly impact in US dollars using market
    prices.  This container substitutes a static price table (see
    DESIGN.md): tokens are priced per whole token, and amounts are
    scaled by the token's decimals.  Tokens absent from the table are
    worth zero — which doubles as the "reputation" signal: the
    phishing-token classifier treats unpriced tokens as disreputable,
    matching the paper's use of block-explorer reputation marks. *)

module U256 = Xcw_uint256.Uint256

type entry = { usd_per_token : float; decimals : int }

type t = {
  (* key: (chain_id, lowercase token address hex) *)
  prices : (int * string, entry) Hashtbl.t;
  mutable native_price : float;  (** USD per native coin (18 decimals) *)
}

let create ?(native_price = 2500.0) () =
  { prices = Hashtbl.create 64; native_price }

let normalize addr = String.lowercase_ascii addr

let register t ~chain_id ~token ~usd_per_token ~decimals =
  Hashtbl.replace t.prices (chain_id, normalize token) { usd_per_token; decimals }

let lookup t ~chain_id ~token = Hashtbl.find_opt t.prices (chain_id, normalize token)

(** Is the token in the price table (a proxy for "reputable")? *)
let is_reputable t ~chain_id ~token = lookup t ~chain_id ~token <> None

(** USD value of [amount] units of a token; zero when unpriced. *)
let usd_value t ~chain_id ~token (amount : U256.t) : float =
  match lookup t ~chain_id ~token with
  | Some { usd_per_token; decimals } ->
      U256.to_tokens ~decimals amount *. usd_per_token
  | None -> 0.0

(** USD value of a raw decimal-string amount (as carried in Datalog
    facts). *)
let usd_value_str t ~chain_id ~token (amount : string) : float =
  usd_value t ~chain_id ~token (U256.of_decimal_string amount)

(** USD value of an amount of native currency (18 decimals). *)
let usd_value_native t (amount : U256.t) : float =
  U256.to_tokens ~decimals:18 amount *. t.native_price
