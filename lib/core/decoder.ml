(** Event and Transaction Data Decoder — phase 1 of XChainWatcher.

    Consumes transaction receipts (fetched through the {!Xcw_rpc.Rpc}
    facade) and produces the logical relations of Listing 1.  The
    component is plugin-based: a {!plugin} describes a bridge protocol's
    event shapes (notably its beneficiary representation), and the
    decoding logic below is shared.

    Per the paper's Section 3.2, the transaction receipt is sufficient
    for most facts; native value transfers require extra RPC calls
    ([eth_getTransactionByHash] and [debug_traceTransaction] with the
    call tracer) to recover [tx.value] and internal transfers — the
    dominant cost in Table 2 / Figure 4.

    Beneficiary fields are decoded to 20-byte addresses accepting both
    left- and right-padded 32-byte forms (as the paper's parser does for
    deposits); an unpadded 32-byte string cannot be parsed and is
    reported as a {!decode_error} — the "unparseable address" anomalies
    of Section 5.1.3. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Abi = Xcw_abi.Abi
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client
module Events = Xcw_bridge.Events
module Erc20 = Xcw_chain.Erc20
module Weth = Xcw_chain.Weth
module Hex = Xcw_util.Hex
module Merkle = Xcw_merkle.Merkle
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span

(* Decoder-level instruments.  The decoder API has no registry handle
   to thread through, so these record into the process-wide default
   registry; interning is cached against the current default (compared
   physically) to keep the per-receipt cost at a few gated branches. *)
type decoder_meters = {
  dm_reg : Metrics.t;
  dm_receipts : Metrics.Counter.t;
  dm_facts : Metrics.Counter.t;
  dm_errors : Metrics.Counter.t;
  dm_trace_gaps : Metrics.Counter.t;
  dm_abandoned : Metrics.Counter.t;
}

let meters_cache = ref None

let meters () =
  let reg = Metrics.default () in
  match !meters_cache with
  | Some m when m.dm_reg == reg -> m
  | _ ->
      let m =
        {
          dm_reg = reg;
          dm_receipts = Metrics.counter reg "xcw_decoder_receipts_total";
          dm_facts = Metrics.counter reg "xcw_decoder_facts_total";
          dm_errors = Metrics.counter reg "xcw_decoder_errors_total";
          dm_trace_gaps = Metrics.counter reg "xcw_decoder_trace_gaps_total";
          dm_abandoned = Metrics.counter reg "xcw_decoder_abandoned_total";
        }
      in
      meters_cache := Some m;
      m

type chain_role = Source | Target

type plugin = {
  plugin_name : string;
  beneficiary_repr : Events.beneficiary_repr;
}

let ronin_plugin = { plugin_name = "ronin"; beneficiary_repr = Events.B_address }
let nomad_plugin = { plugin_name = "nomad"; beneficiary_repr = Events.B_bytes32 }

type decode_error = {
  err_tx_hash : string;
  err_chain_id : int;
  err_event_index : int;
  err_detail : string;
  err_withdrawal_id : int option;
      (** the withdrawal id of a TokenWithdrew event whose beneficiary
          could not be parsed — lets the analysis link the S-side
          execution to the undecodable T-side request *)
}

type receipt_decode = {
  rd_facts : Facts.t list;
  rd_errors : decode_error list;
  rd_latency : float;  (** simulated seconds to extract this receipt's facts *)
  rd_is_native : bool;  (** required tracer calls (native value involved) *)
  rd_trace_gap : bool;
      (** tracer needed but unavailable: decoded without internal
          transfers, {!Facts.Trace_gap} marker emitted *)
  rd_provenance : Client.provenance;
      (** where the data came from: a single endpoint, or a k-of-n
          quorum.  Deliberately not part of the facts themselves, so
          pool-backed and single-endpoint runs derive identical fact
          multisets and reports. *)
}

(* Decode a beneficiary value from an event parameter.  Returns the
   normalized 20-byte address hex, or an error description. *)
let decode_beneficiary (v : Abi.Value.t) : (string, string) result =
  match v with
  | Abi.Value.Address a -> Ok (Hex.encode_0x a)
  | Abi.Value.Fixed_bytes b when String.length b = 32 -> (
      try Ok (Hex.encode_0x (Abi.decode_address_word ~padding:`Lenient b))
      with Abi.Decode_error _ ->
        Error
          (Printf.sprintf "unparseable 32-byte beneficiary %s" (Hex.encode_0x b)))
  | _ -> Error "unexpected beneficiary parameter type"

(* Cached topic0 values. *)
let transfer_topic0 = Abi.Event.topic0 Erc20.transfer_event
let weth_deposit_topic0 = Abi.Event.topic0 Weth.deposit_event
let weth_withdrawal_topic0 = Abi.Event.topic0 Weth.withdrawal_event
let exit_deposited_topic0 = Abi.Event.topic0 Events.exit_deposited
let exit_root_sealed_topic0 = Abi.Event.topic0 Events.exit_root_sealed
let exit_claimed_topic0 = Abi.Event.topic0 Events.exit_claimed
let exit_root_signed_topic0 = Abi.Event.topic0 Events.exit_root_signed
let exit_stake_event_topic0 = Abi.Event.topic0 Events.exit_stake_event

let topic0_of (l : Types.log) =
  match l.Types.topics with t0 :: _ -> Some t0 | [] -> None

let as_uint_int = function
  | Abi.Value.Uint u -> U256.to_int u
  | _ -> invalid_arg "expected uint"

let as_uint = function
  | Abi.Value.Uint u -> u
  | _ -> invalid_arg "expected uint"

let as_addr_hex = function
  | Abi.Value.Address a -> Hex.encode_0x a
  | _ -> invalid_arg "expected address"

let as_b32 = function
  | Abi.Value.Fixed_bytes b when String.length b = 32 -> b
  | _ -> invalid_arg "expected bytes32"

let as_bytes = function
  | Abi.Value.Bytes b -> b
  | _ -> invalid_arg "expected bytes"

(* The pure part of a receipt decode: what the event logs alone yield,
   with no RPC involved.  Facts and errors are in reverse push order
   (the completion step keeps pushing and reverses once at the end).
   Being a pure function of the receipt, this is the phase that
   parallel decoding fans out across domains. *)
type logs_decode = {
  ld_facts : Facts.t list;
  ld_errors : decode_error list;
  ld_needs_trace : bool;
}

(** Decode the event logs of one receipt into facts — the RPC-free
    phase 1 of {!decode_receipt}. *)
let decode_logs (plugin : plugin) (config : Config.t) ~(role : chain_role)
    ~(chain_id : int) (r : Types.receipt) : logs_decode =
  let facts = ref [] in
  let errors = ref [] in
  let tx_hash = Facts.hex_of_hash r.Types.r_tx_hash in
  let is_bridge_addr a =
    List.exists
      (fun (c, b) -> c = chain_id && Address.equal b a && not (Address.is_zero b))
      config.Config.bridge_controlled
  in
  let is_wrapped_native a =
    List.exists
      (fun (c, w) -> c = chain_id && Address.equal w a)
      config.Config.wrapped_native
  in
  let push f = facts := f :: !facts in
  let push_err ?withdrawal_id ~event_index detail =
    errors :=
      { err_tx_hash = tx_hash; err_chain_id = chain_id;
        err_event_index = event_index; err_detail = detail;
        err_withdrawal_id = withdrawal_id }
      :: !errors
  in
  let push_bridge_decode_failure () =
    push (Facts.Bridge_event_decode_failure { tx_hash })
  in
  let needs_trace = ref false in
  (* --- Event decoding ------------------------------------------------ *)
  let decode_log (l : Types.log) =
    match topic0_of l with
    | None -> ()
    | Some t0 ->
        if t0 = transfer_topic0 then begin
          match
            Abi.Event.decode_log ~address_padding:`Lenient Erc20.transfer_event
              l.Types.topics l.Types.data
          with
          | [ ("from", f); ("to", to_v); ("value", v) ] ->
              push
                (Facts.Erc20_transfer
                   {
                     tx_hash;
                     chain_id;
                     event_index = l.Types.log_index;
                     contract = Facts.hex_of_address l.Types.log_address;
                     from_ = as_addr_hex f;
                     to_ = as_addr_hex to_v;
                     amount = as_uint v;
                   })
          | _ | (exception Abi.Decode_error _) ->
              push_err ~event_index:l.Types.log_index "malformed Transfer event"
        end
        else if t0 = weth_deposit_topic0 && is_wrapped_native l.Types.log_address
        then begin
          (* Wrapping of native currency: on the source chain this is a
             native deposit; on the target chain it occurs when
             initiating a native withdrawal. *)
          match
            Abi.Event.decode_log Weth.deposit_event l.Types.topics l.Types.data
          with
          | [ ("dst", dst); ("wad", wad) ] ->
              let record =
                match role with
                | Source ->
                    Facts.Native_deposit
                      {
                        tx_hash;
                        chain_id;
                        event_index = l.Types.log_index;
                        from_ = Facts.hex_of_address r.Types.r_from;
                        to_ = as_addr_hex dst;
                        amount = as_uint wad;
                      }
                | Target ->
                    Facts.Native_withdrawal
                      {
                        tx_hash;
                        chain_id;
                        event_index = l.Types.log_index;
                        from_ = Facts.hex_of_address r.Types.r_from;
                        to_ = as_addr_hex dst;
                        amount = as_uint wad;
                      }
              in
              needs_trace := true;
              push record
          | _ | (exception Abi.Decode_error _) ->
              push_err ~event_index:l.Types.log_index "malformed Deposit event"
        end
        else if t0 = weth_withdrawal_topic0 && is_wrapped_native l.Types.log_address
        then
          (* Unwrapping; tracked for completeness (value recovery needs
             the tracer) but produces no Listing 1 relation. *)
          needs_trace := true
        else if is_bridge_addr l.Types.log_address then begin
          (* Bridge events: try each declaration for this plugin. *)
          let repr = plugin.beneficiary_repr in
          let try_sc_deposited () =
            let ev = Events.sc_token_deposited repr in
            if t0 <> Abi.Event.topic0 ev then false
            else begin
              (match
                 Abi.Event.decode_log ev l.Types.topics l.Types.data
               with
              | [ ("depositId", did); ("beneficiary", ben); ("dstToken", dt);
                  ("origToken", ot); ("dstChainId", dc); ("amount", am) ] -> (
                  match decode_beneficiary ben with
                  | Ok beneficiary ->
                      push
                        (Facts.Sc_token_deposited
                           {
                             tx_hash;
                             event_index = l.Types.log_index;
                             deposit_id = as_uint_int did;
                             beneficiary;
                             dst_token = as_addr_hex dt;
                             orig_token = as_addr_hex ot;
                             dst_chain_id = as_uint_int dc;
                             amount = as_uint am;
                           })
                  | Error e ->
                      push_bridge_decode_failure ();
                      push_err ~event_index:l.Types.log_index e)
              | _ -> push_err ~event_index:l.Types.log_index "malformed TokenDeposited"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          let try_tc_deposited () =
            let ev = Events.tc_token_deposited in
            if t0 <> Abi.Event.topic0 ev then false
            else begin
              (match Abi.Event.decode_log ev l.Types.topics l.Types.data with
              | [ ("depositId", did); ("beneficiary", ben); ("token", tok);
                  ("amount", am) ] ->
                  push
                    (Facts.Tc_token_deposited
                       {
                         tx_hash;
                         event_index = l.Types.log_index;
                         deposit_id = as_uint_int did;
                         beneficiary = as_addr_hex ben;
                         dst_token = as_addr_hex tok;
                         amount = as_uint am;
                       })
              | _ -> push_err ~event_index:l.Types.log_index "malformed TokenDeposited(T)"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          let try_tc_withdrew () =
            let ev = Events.tc_token_withdrew repr in
            if t0 <> Abi.Event.topic0 ev then false
            else begin
              (match Abi.Event.decode_log ev l.Types.topics l.Types.data with
              | [ ("withdrawalId", wid); ("beneficiary", ben); ("origToken", ot);
                  ("dstToken", dt); ("dstChainId", dc); ("amount", am) ] -> (
                  match decode_beneficiary ben with
                  | Ok beneficiary ->
                      push
                        (Facts.Tc_token_withdrew
                           {
                             tx_hash;
                             event_index = l.Types.log_index;
                             withdrawal_id = as_uint_int wid;
                             beneficiary;
                             orig_token = as_addr_hex ot;
                             dst_token = as_addr_hex dt;
                             dst_chain_id = as_uint_int dc;
                             amount = as_uint am;
                           })
                  | Error e ->
                      push_bridge_decode_failure ();
                      push_err ~withdrawal_id:(as_uint_int wid)
                        ~event_index:l.Types.log_index e)
              | _ -> push_err ~event_index:l.Types.log_index "malformed TokenWithdrew(T)"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          let try_sc_withdrew () =
            let ev = Events.sc_token_withdrew in
            if t0 <> Abi.Event.topic0 ev then false
            else begin
              (match Abi.Event.decode_log ev l.Types.topics l.Types.data with
              | [ ("withdrawalId", wid); ("beneficiary", ben); ("token", tok);
                  ("amount", am) ] -> (
                  match decode_beneficiary ben with
                  | Ok beneficiary ->
                      push
                        (Facts.Sc_token_withdrew
                           {
                             tx_hash;
                             event_index = l.Types.log_index;
                             withdrawal_id = as_uint_int wid;
                             beneficiary;
                             dst_token = as_addr_hex tok;
                             amount = as_uint am;
                           })
                  | Error e ->
                      push_bridge_decode_failure ();
                      push_err ~event_index:l.Types.log_index e)
              | _ -> push_err ~event_index:l.Types.log_index "malformed TokenWithdrew(S)"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          (* Exit-bridge events (pessimistic accounting stratum).  The
             watcher — not the simulated contract — verifies each
             claim's inclusion proof here, so forged proofs execute
             on-chain but arrive in the EDB with [valid = 0]. *)
          let try_exit_deposited () =
            if t0 <> exit_deposited_topic0 then false
            else begin
              (match
                 Abi.Event.decode_log Events.exit_deposited l.Types.topics
                   l.Types.data
               with
              | [ ("leafIndex", li); ("token", tok); ("amount", am);
                  ("destChainId", dc); ("root", rt) ] ->
                  push
                    (Facts.Exit_deposit
                       {
                         tx_hash;
                         chain_id;
                         event_index = l.Types.log_index;
                         leaf_index = as_uint_int li;
                         token = as_addr_hex tok;
                         amount = as_uint_int am;
                         dest_chain_id = as_uint_int dc;
                         root = Hex.encode_0x (as_b32 rt);
                       })
              | _ -> push_err ~event_index:l.Types.log_index "malformed ExitDeposited"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          let try_exit_root_sealed () =
            if t0 <> exit_root_sealed_topic0 then false
            else begin
              (match
                 Abi.Event.decode_log Events.exit_root_sealed l.Types.topics
                   l.Types.data
               with
              | [ ("epoch", ep); ("root", rt) ] ->
                  push
                    (Facts.Sealed_root
                       {
                         tx_hash;
                         chain_id;
                         epoch = as_uint_int ep;
                         root = Hex.encode_0x (as_b32 rt);
                       })
              | _ -> push_err ~event_index:l.Types.log_index "malformed ExitRootSealed"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          let try_exit_claimed () =
            if t0 <> exit_claimed_topic0 then false
            else begin
              (match
                 Abi.Event.decode_log Events.exit_claimed l.Types.topics
                   l.Types.data
               with
              | [ ("leafIndex", li); ("token", tok); ("amount", am);
                  ("originChainId", oc); ("root", rt); ("seq", sq);
                  ("proof", pr) ] ->
                  let leaf_index = as_uint_int li in
                  let token = as_addr_hex tok in
                  let amount = as_uint_int am in
                  let origin_chain_id = as_uint_int oc in
                  let root_raw = as_b32 rt in
                  let proof_bytes = as_bytes pr in
                  let plen = String.length proof_bytes in
                  let valid =
                    if plen = 0 || plen mod Merkle.node_bytes <> 0 then 0
                    else begin
                      let depth = plen / Merkle.node_bytes in
                      let siblings =
                        List.init depth (fun i ->
                            String.sub proof_bytes (i * Merkle.node_bytes)
                              Merkle.node_bytes)
                      in
                      match
                        Merkle.leaf_hash ~origin_chain_id
                          ~dest_chain_id:chain_id ~token ~amount
                          ~nonce:leaf_index
                      with
                      | leaf ->
                          if
                            Merkle.verify ~depth ~root:root_raw
                              ~index:leaf_index ~leaf siblings
                          then 1
                          else 0
                      | exception Invalid_argument _ -> 0
                    end
                  in
                  push
                    (Facts.Exit_claim
                       {
                         tx_hash;
                         chain_id;
                         event_index = l.Types.log_index;
                         leaf_index;
                         token;
                         amount;
                         origin_chain_id;
                         root = Hex.encode_0x root_raw;
                         seq = as_uint_int sq;
                         valid;
                       })
              | _ -> push_err ~event_index:l.Types.log_index "malformed ExitClaimed"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          let try_exit_root_signed () =
            if t0 <> exit_root_signed_topic0 then false
            else begin
              (match
                 Abi.Event.decode_log Events.exit_root_signed l.Types.topics
                   l.Types.data
               with
              | [ ("originChainId", oc); ("epoch", ep); ("root", rt);
                  ("validator", va); ("seq", sq) ] ->
                  push
                    (Facts.Signed_root
                       {
                         tx_hash;
                         chain_id;
                         origin_chain_id = as_uint_int oc;
                         epoch = as_uint_int ep;
                         root = Hex.encode_0x (as_b32 rt);
                         validator = as_addr_hex va;
                         seq = as_uint_int sq;
                       })
              | _ -> push_err ~event_index:l.Types.log_index "malformed ExitRootSigned"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          let try_exit_stake_event () =
            if t0 <> exit_stake_event_topic0 then false
            else begin
              (match
                 Abi.Event.decode_log Events.exit_stake_event l.Types.topics
                   l.Types.data
               with
              | [ ("validator", va); ("kind", k); ("amount", am);
                  ("epoch", ep) ] ->
                  let kind =
                    match as_uint_int k with
                    | 0 -> Some "bond"
                    | 1 -> Some "withdraw"
                    | 2 -> Some "slash"
                    | _ -> None
                  in
                  (match kind with
                  | Some kind ->
                      push
                        (Facts.Stake_event
                           {
                             tx_hash;
                             chain_id;
                             validator = as_addr_hex va;
                             kind;
                             amount = as_uint_int am;
                             epoch = as_uint_int ep;
                           })
                  | None ->
                      push_err ~event_index:l.Types.log_index
                        "unknown StakeEvent kind")
              | _ -> push_err ~event_index:l.Types.log_index "malformed StakeEvent"
              | exception Abi.Decode_error e ->
                  push_err ~event_index:l.Types.log_index e);
              true
            end
          in
          let handled =
            (match role with
            | Source -> try_sc_deposited () || try_sc_withdrew ()
            | Target -> try_tc_deposited () || try_tc_withdrew ())
            (* Events of the "other side" observed on the same chain are
               decoded too (deployments sometimes share contracts). *)
            || try_sc_deposited () || try_tc_deposited () || try_tc_withdrew ()
            || try_sc_withdrew ()
            || try_exit_deposited () || try_exit_root_sealed ()
            || try_exit_claimed () || try_exit_root_signed ()
            || try_exit_stake_event ()
          in
          ignore handled
        end
  in
  List.iter decode_log r.Types.r_logs;
  { ld_facts = !facts; ld_errors = !errors; ld_needs_trace = !needs_trace }

(** Complete a receipt decode from its pure log phase: fetch the
    transaction (and call trace) when native value may be involved,
    append the Transaction fact, and assemble the result.  This is the
    RPC-bound phase 2 — it stays on the submitting domain. *)
let decode_receipt_from (ld : logs_decode) ~(chain_id : int)
    (client : Client.t) (r : Types.receipt) :
    (receipt_decode, Rpc.error) result =
  let latency = ref 0.0 in
  let facts = ref ld.ld_facts in
  let errors = ref ld.ld_errors in
  let tx_hash = Facts.hex_of_hash r.Types.r_tx_hash in
  let push f = facts := f :: !facts in
  let needs_trace = ref ld.ld_needs_trace in
  let trace_gap = ref false in
  (* --- Transaction fact ---------------------------------------------- *)
  (* The receipt does not carry tx.value (paper Section 3.2): fetch the
     transaction when the receipt suggests native-value involvement,
     and the call trace to recover internal transfers. *)
  let tx_value_result =
    if !needs_trace || r.Types.r_logs = [] then begin
      let resp = Client.get_transaction client r.Types.r_tx_hash in
      latency := !latency +. resp.Rpc.latency;
      match resp.Rpc.value with
      | Error e ->
          (* Without the transaction we cannot state tx.value: fail the
             whole receipt rather than emit a wrong Transaction fact;
             the caller retries later. *)
          Error e
      | Ok (Some tx) ->
          if not (U256.is_zero tx.Types.tx_value) then begin
            (* Native value moved: run the call tracer for internal
               transfers (the expensive path). *)
            let trace_resp =
              Client.trace_transaction client r.Types.r_tx_hash
            in
            latency := !latency +. trace_resp.Rpc.latency;
            needs_trace := true;
            match trace_resp.Rpc.value with
            | Ok _ -> ()
            | Error _ ->
                (* Degrade to trace-less facts: tx.value is known from
                   the transaction itself; only internal transfers go
                   unobserved.  Mark the gap so nothing downstream
                   mistakes this for full coverage. *)
                trace_gap := true;
                push (Facts.Trace_gap { tx_hash; chain_id })
          end;
          Ok tx.Types.tx_value
      | Ok None -> Ok U256.zero
    end
    else Ok U256.zero
  in
  let note_decoded () =
    let m = meters () in
    if Metrics.enabled m.dm_reg then begin
      Metrics.Counter.inc m.dm_receipts;
      Metrics.Counter.add m.dm_facts (List.length !facts);
      Metrics.Counter.add m.dm_errors (List.length !errors);
      if !trace_gap then Metrics.Counter.inc m.dm_trace_gaps
    end
  in
  match tx_value_result with
  | Error e -> Error e
  | Ok tx_value ->
      push
        (Facts.Transaction
           {
             timestamp = r.Types.r_block_timestamp;
             chain_id;
             tx_hash;
             from_ = Facts.hex_of_address r.Types.r_from;
             to_ =
               (match r.Types.r_to with
               | Some a -> Facts.hex_of_address a
               | None -> "0xcreate");
             value = tx_value;
             status = Types.status_code r.Types.r_status;
             fee = U256.of_int (r.Types.r_gas_used * 20);
           });
      note_decoded ();
      Ok
        {
          rd_facts = List.rev !facts;
          rd_errors = List.rev !errors;
          rd_latency = !latency;
          rd_is_native = !needs_trace;
          rd_trace_gap = !trace_gap;
          rd_provenance = Client.provenance client;
        }

(** Decode all facts from one transaction, given its receipt fetched
    from [rpc].  [config] identifies the watched contracts;
    [role] states whether this chain is the bridge's source or target;
    [chain_id] is the chain the receipt belongs to. *)
let decode_receipt (plugin : plugin) (config : Config.t) ~(role : chain_role)
    ~(chain_id : int) (client : Client.t) (r : Types.receipt) :
    (receipt_decode, Rpc.error) result =
  decode_receipt_from
    (decode_logs plugin config ~role ~chain_id r)
    ~chain_id client r

(* Contiguous order-preserving chunks for the decode fan-out. *)
let chunk_receipts k l =
  match l with
  | [] -> []
  | l ->
      let n = List.length l in
      let size = (n + k - 1) / k in
      let rec go acc cur cnt = function
        | [] -> List.rev (List.rev cur :: acc)
        | x :: rest ->
            if cnt = size then go (List.rev cur :: acc) [ x ] 1 rest
            else go acc (x :: cur) (cnt + 1) rest
      in
      go [] [] 0 l

(** Decode a whole chain's receipts; includes the receipt-fetch latency
    per transaction.  Returns per-receipt decode results in chain
    order.  Transient RPC failures are retried until the receipt
    decodes; a receipt that keeps failing yields an empty decode with
    a single "rpc failure" error instead of raising.

    [ndomains] (default 1: the unchanged sequential path) splits the
    decode into three phases — sequential receipt fetch, pure log
    decoding fanned out over the shared domain pool in contiguous
    chunks, then sequential transaction/trace fetches — because the
    simulated RPC client is single-domain.  The fact lists, errors and
    result order are identical to the sequential path; only the
    {e order} of RPC calls changes (fetches are batched up front), so
    individual simulated latency draws land on different calls. *)
let decode_chain ?(ndomains = 1) (plugin : plugin) (config : Config.t)
    ~(role : chain_role) (client : Client.t) (chain : Xcw_chain.Chain.t) :
    receipt_decode list =
  let chain_id = chain.Xcw_chain.Chain.chain_id in
  (* The client already retries each RPC up to its policy; this outer
     loop re-runs whole receipts so batch extraction survives fault
     plans denser than one client attempt budget. *)
  let max_rounds = 100 in
  let abandoned (r : Types.receipt) e =
    Metrics.Counter.inc (meters ()).dm_abandoned;
    {
      rd_facts = [];
      rd_errors =
        [
          {
            err_tx_hash = Facts.hex_of_hash r.Types.r_tx_hash;
            err_chain_id = chain_id;
            err_event_index = -1;
            err_detail =
              Printf.sprintf "rpc failure: %s" (Rpc.error_to_string e);
            err_withdrawal_id = None;
          };
        ];
      rd_latency = 0.;
      rd_is_native = false;
      rd_trace_gap = false;
      rd_provenance = Client.provenance client;
    }
  in
  Span.with_
    ~attrs:[ ("chain_id", string_of_int chain_id) ]
    "decoder.decode_chain"
    (fun () ->
      if ndomains <= 1 then
        List.map
          (fun (r : Types.receipt) ->
            let rec attempt round =
              let fetch = Client.get_receipt client r.Types.r_tx_hash in
              match fetch.Rpc.value with
              | Error e ->
                  if round >= max_rounds then abandoned r e
                  else attempt (round + 1)
              | Ok _ -> (
                  match
                    decode_receipt plugin config ~role ~chain_id client r
                  with
                  | Ok decoded ->
                      {
                        decoded with
                        rd_latency = decoded.rd_latency +. fetch.Rpc.latency;
                      }
                  | Error e ->
                      if round >= max_rounds then abandoned r e
                      else attempt (round + 1))
            in
            attempt 1)
          (Xcw_chain.Chain.all_receipts chain)
      else begin
        (* Phase A (sequential): fetch every receipt through the
           client's usual retry envelope. *)
        let fetched =
          List.map
            (fun (r : Types.receipt) ->
              let rec attempt round =
                let fetch = Client.get_receipt client r.Types.r_tx_hash in
                match fetch.Rpc.value with
                | Error e ->
                    if round >= max_rounds then Error (abandoned r e)
                    else attempt (round + 1)
                | Ok _ -> Ok (r, fetch.Rpc.latency)
              in
              attempt 1)
            (Xcw_chain.Chain.all_receipts chain)
        in
        (* Phase B (parallel): pure log decoding, fanned out in
           contiguous chunks; chunk outputs concatenate back in chain
           order. *)
        let oks =
          List.filter_map
            (function Ok rf -> Some rf | Error _ -> None)
            fetched
        in
        let pool = Xcw_par.Pool.get ~ndomains in
        let decoded =
          List.concat
            (Xcw_par.Pool.run pool
               (List.map
                  (fun chunk () ->
                    List.map
                      (fun ((r : Types.receipt), _) ->
                        decode_logs plugin config ~role ~chain_id r)
                      chunk)
                  (chunk_receipts ndomains oks)))
        in
        (* Phase C (sequential): transaction/trace fetches and result
           assembly, retrying the RPC-bound completion per receipt. *)
        let rec zip fetched decoded =
          match (fetched, decoded) with
          | [], [] -> []
          | Error rd :: fs, ds -> rd :: zip fs ds
          | Ok (r, fetch_latency) :: fs, ld :: ds ->
              let rec complete round =
                match decode_receipt_from ld ~chain_id client r with
                | Ok d -> { d with rd_latency = d.rd_latency +. fetch_latency }
                | Error e ->
                    if round >= max_rounds then abandoned r e
                    else complete (round + 1)
              in
              complete 1 :: zip fs ds
          | _ -> assert false
        in
        zip fetched decoded
      end)
