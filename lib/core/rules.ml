(** The cross-chain rules — phase 3 of XChainWatcher (paper Section 3.3).

    Rules 1–8 model the expected behaviour of a bridge connecting a
    source chain S (Ethereum) to a target chain T (sidechain); failure
    to capture an event signals an anomaly.  Isolated rules (1–3, 5–7)
    validate events within one chain; dependent rules (4, 8) correlate
    both chains, enforcing parameter consistency, causality and
    cross-chain finality.

    Beyond the paper's core eight, this module defines the auxiliary
    analysis relations used to dissect anomalies (Tables 3 and 4):
    matched/unmatched splits, finality-violation witnesses,
    token-mapping violations, and the transfer-without-event /
    event-without-transfer detectors behind Findings 1, 2, 3 and the
    attack identification of Section 5.2.5 — about 30 rules in total,
    like the original artifact. *)

open Xcw_datalog.Ast

(* Derived relation names (exported for querying). *)
let r_sc_valid_native_deposit = "sc_valid_native_token_deposit"
let r_sc_valid_erc20_deposit = "sc_valid_erc20_token_deposit"
let r_tc_valid_erc20_deposit = "tc_valid_erc20_token_deposit"
let r_cctx_valid_deposit = "cctx_valid_deposit"
let r_tc_valid_native_withdrawal = "tc_valid_native_token_withdrawal"
let r_tc_valid_erc20_withdrawal = "tc_valid_erc20_token_withdrawal"
let r_sc_valid_erc20_withdrawal = "sc_valid_erc20_token_withdrawal"
let r_cctx_valid_withdrawal = "cctx_valid_withdrawal"

let r_bridge_event_in_tx = "bridge_event_in_tx"
let r_transfer_to_bridge_no_event = "transfer_to_bridge_no_event"
let r_transfer_from_bridge_no_event = "transfer_from_bridge_no_event"
let r_sc_deposit_event_no_escrow = "sc_deposit_event_no_escrow"
let r_tc_withdraw_event_no_escrow = "tc_withdraw_event_no_escrow"
let r_matched_sc_deposit = "matched_sc_deposit"
let r_matched_tc_deposit = "matched_tc_deposit"
let r_matched_tc_withdrawal = "matched_tc_withdrawal"
let r_matched_sc_withdrawal = "matched_sc_withdrawal"
let r_unmatched_sc_native_deposit = "unmatched_sc_native_deposit"
let r_unmatched_sc_erc20_deposit = "unmatched_sc_erc20_deposit"
let r_unmatched_tc_deposit = "unmatched_tc_deposit"
let r_unmatched_tc_native_withdrawal = "unmatched_tc_native_withdrawal"
let r_unmatched_tc_erc20_withdrawal = "unmatched_tc_erc20_withdrawal"
let r_unmatched_sc_withdrawal = "unmatched_sc_withdrawal"
let r_deposit_finality_violation = "deposit_finality_violation"
let r_withdrawal_finality_violation = "withdrawal_finality_violation"
let r_mapped_dst_token = "mapped_dst_token"
let r_mapped_src_token = "mapped_src_token"
let r_deposit_mapping_violation = "deposit_mapping_violation"
let r_withdrawal_mapping_violation = "withdrawal_mapping_violation"
let r_reverted_bridge_interaction = "reverted_bridge_interaction"

(* Attack-pack relations (2023 hack corpus; DESIGN.md §12). *)
let r_tc_withdrawal_requested = "tc_withdrawal_requested"
let r_forged_proof_withdrawal = "forged_proof_withdrawal"
let r_validator_takeover_withdrawal = "validator_takeover_withdrawal"
let r_sc_deposit_initiated = "sc_deposit_initiated"
let r_unauthorized_mint = "unauthorized_mint"
let r_inconsistent_deposit_event = "inconsistent_deposit_event"

let zero_addr = "0x0000000000000000000000000000000000000000"

(* Shorthand for the Listing 1 relations. *)
let native_deposit a = atom Facts.r_native_deposit a
let native_withdrawal a = atom Facts.r_native_withdrawal a
let sc_token_deposited a = atom Facts.r_sc_token_deposited a
let tc_token_deposited a = atom Facts.r_tc_token_deposited a
let tc_token_withdrew a = atom Facts.r_tc_token_withdrew a
let sc_token_withdrew a = atom Facts.r_sc_token_withdrew a
let erc20_transfer a = atom Facts.r_erc20_transfer a
let transaction a = atom Facts.r_transaction a
let bridge_controlled a = atom Facts.r_bridge_controlled_address a
let token_mapping a = atom Facts.r_token_mapping a
let cctx_finality a = atom Facts.r_cctx_finality a
let wrapped_native a = atom Facts.r_wrapped_native_token a

(* ------------------------------------------------------------------ *)
(* Rule 1 (I): SC_ValidNativeTokenDeposit                              *)
(* A valid native deposit on S relates (1) the bridge's TokenDeposited *)
(* event, (2) a non-reverting transaction carrying the amount in       *)
(* tx.value, (3) the wrapped-native Deposit event escrowing to a       *)
(* bridge-controlled address, (4) the wrapped-native token identity,   *)
(* (5) the token mapping, and (6) event ordering.                      *)

let rule_1 =
  atom r_sc_valid_native_deposit
    [ v "tx"; v "ts"; v "src_chain"; v "dst_chain"; v "src_token";
      v "dst_token"; v "ben"; v "amt"; v "did" ]
  <-- [
        pos (sc_token_deposited
               [ v "tx"; v "bidx"; v "did"; v "ben"; v "dst_token";
                 v "src_token"; v "dst_chain"; v "amt" ]);
        pos (native_deposit
               [ v "tx"; v "src_chain"; v "tidx"; any (); v "escrow_to"; v "amt" ]);
        pos (transaction
               [ v "ts"; v "src_chain"; v "tx"; any (); any (); v "amt"; i 1; any () ]);
        pos (token_mapping [ v "src_chain"; v "dst_chain"; v "src_token"; v "dst_token" ]);
        pos (wrapped_native [ v "src_chain"; v "src_token" ]);
        pos (bridge_controlled [ v "src_chain"; v "escrow_to" ]);
        ev "bidx" >! ev "tidx";
      ]

(* ------------------------------------------------------------------ *)
(* Rule 2 (I): SC_ValidERC20TokenDeposit                               *)

let rule_2 =
  atom r_sc_valid_erc20_deposit
    [ v "tx"; v "ts"; v "src_chain"; v "dst_chain"; v "src_token";
      v "dst_token"; v "ben"; v "amt"; v "did" ]
  <-- [
        pos (sc_token_deposited
               [ v "tx"; v "bidx"; v "did"; v "ben"; v "dst_token";
                 v "src_token"; v "dst_chain"; v "amt" ]);
        pos (erc20_transfer
               [ v "tx"; v "src_chain"; v "tidx"; v "src_token"; any ();
                 v "escrow_to"; v "amt" ]);
        pos (transaction
               [ v "ts"; v "src_chain"; v "tx"; any (); any (); s "0"; i 1; any () ]);
        pos (token_mapping [ v "src_chain"; v "dst_chain"; v "src_token"; v "dst_token" ]);
        pos (bridge_controlled [ v "src_chain"; v "escrow_to" ]);
        ev "bidx" >! ev "tidx";
      ]

(* ------------------------------------------------------------------ *)
(* Rule 3 (I): TC_ValidERC20TokenDeposit                               *)
(* On T the destination tokens are minted (Transfer from the zero      *)
(* address, registered as bridge-controlled) or unlocked (Transfer     *)
(* from the bridge).                                                   *)

let rule_3 =
  atom r_tc_valid_erc20_deposit
    [ v "tx"; v "ts"; v "chain"; v "did"; v "ben"; v "dst_token"; v "amt" ]
  <-- [
        pos (tc_token_deposited
               [ v "tx"; v "bidx"; v "did"; v "ben"; v "dst_token"; v "amt" ]);
        pos (erc20_transfer
               [ v "tx"; v "chain"; v "tidx"; v "dst_token"; v "mint_from";
                 v "ben"; v "amt" ]);
        pos (transaction
               [ v "ts"; v "chain"; v "tx"; any (); v "relay_to"; s "0"; i 1; any () ]);
        pos (bridge_controlled [ v "chain"; v "relay_to" ]);
        pos (bridge_controlled [ v "chain"; v "mint_from" ]);
        ev "bidx" >! ev "tidx";
      ]

(* ------------------------------------------------------------------ *)
(* Rule 4 (D): CCTX_ValidDeposit — correlate S and T deposit events,   *)
(* enforcing matching parameters, causality and source finality.       *)
(* The (erc20 ; native) disjunction becomes two rules.                 *)

let cctx_deposit_head =
  atom r_cctx_valid_deposit
    [ v "src_tx"; v "dst_tx"; v "did"; v "src_chain"; v "dst_chain";
      v "src_token"; v "dst_token"; v "ben"; v "amt"; v "src_ts"; v "dst_ts" ]

let rule_4_erc20 =
  cctx_deposit_head
  <-- [
        pos (atom r_tc_valid_erc20_deposit
               [ v "dst_tx"; v "dst_ts"; v "dst_chain"; v "did"; v "ben";
                 v "dst_token"; v "amt" ]);
        pos (atom r_sc_valid_erc20_deposit
               [ v "src_tx"; v "src_ts"; v "src_chain"; v "dst_chain";
                 v "src_token"; v "dst_token"; v "ben"; v "amt"; v "did" ]);
        pos (cctx_finality [ v "src_chain"; v "fin" ]);
        pos (token_mapping [ v "src_chain"; v "dst_chain"; v "src_token"; v "dst_token" ]);
        ev "src_ts" +! ev "fin" <=! ev "dst_ts";
      ]

let rule_4_native =
  cctx_deposit_head
  <-- [
        pos (atom r_tc_valid_erc20_deposit
               [ v "dst_tx"; v "dst_ts"; v "dst_chain"; v "did"; v "ben";
                 v "dst_token"; v "amt" ]);
        pos (atom r_sc_valid_native_deposit
               [ v "src_tx"; v "src_ts"; v "src_chain"; v "dst_chain";
                 v "src_token"; v "dst_token"; v "ben"; v "amt"; v "did" ]);
        pos (cctx_finality [ v "src_chain"; v "fin" ]);
        pos (token_mapping [ v "src_chain"; v "dst_chain"; v "src_token"; v "dst_token" ]);
        ev "src_ts" +! ev "fin" <=! ev "dst_ts";
      ]

(* ------------------------------------------------------------------ *)
(* Rule 5 (I): TC_ValidNativeTokenWithdrawal — a native withdrawal on  *)
(* T wraps tx.value through the wrapped-native contract.               *)

let rule_5 =
  atom r_tc_valid_native_withdrawal
    [ v "tx"; v "ts"; v "tc_chain"; v "wid"; v "ben"; v "src_token";
      v "dst_token"; v "sc_chain"; v "amt" ]
  <-- [
        pos (tc_token_withdrew
               [ v "tx"; v "bidx"; v "wid"; v "ben"; v "src_token";
                 v "dst_token"; v "sc_chain"; v "amt" ]);
        pos (native_withdrawal
               [ v "tx"; v "tc_chain"; v "tidx"; any (); v "escrow_to"; v "amt" ]);
        pos (transaction
               [ v "ts"; v "tc_chain"; v "tx"; any (); any (); v "amt"; i 1; any () ]);
        pos (wrapped_native [ v "tc_chain"; v "dst_token" ]);
        pos (token_mapping [ v "sc_chain"; v "tc_chain"; v "src_token"; v "dst_token" ]);
        pos (bridge_controlled [ v "tc_chain"; v "escrow_to" ]);
        ev "bidx" >! ev "tidx";
      ]

(* ------------------------------------------------------------------ *)
(* Rule 6 (I): TC_ValidERC20TokenWithdrawal                            *)

let rule_6 =
  atom r_tc_valid_erc20_withdrawal
    [ v "tx"; v "ts"; v "tc_chain"; v "wid"; v "ben"; v "src_token";
      v "dst_token"; v "sc_chain"; v "amt" ]
  <-- [
        pos (tc_token_withdrew
               [ v "tx"; v "bidx"; v "wid"; v "ben"; v "src_token";
                 v "dst_token"; v "sc_chain"; v "amt" ]);
        pos (erc20_transfer
               [ v "tx"; v "tc_chain"; v "tidx"; v "dst_token"; any ();
                 v "escrow_to"; v "amt" ]);
        pos (transaction
               [ v "ts"; v "tc_chain"; v "tx"; any (); any (); s "0"; i 1; any () ]);
        pos (token_mapping [ v "sc_chain"; v "tc_chain"; v "src_token"; v "dst_token" ]);
        pos (bridge_controlled [ v "tc_chain"; v "escrow_to" ]);
        ev "bidx" >! ev "tidx";
      ]

(* ------------------------------------------------------------------ *)
(* Rule 7 (I): SC_ValidERC20TokenWithdrawal — release on S: tokens     *)
(* leave a bridge-controlled address (or are minted) toward the        *)
(* beneficiary, and the bridge emits TokenWithdrew.                    *)

let rule_7 =
  atom r_sc_valid_erc20_withdrawal
    [ v "tx"; v "ts"; v "sc_chain"; v "wid"; v "ben"; v "token"; v "amt" ]
  <-- [
        pos (sc_token_withdrew
               [ v "tx"; v "bidx"; v "wid"; v "ben"; v "token"; v "amt" ]);
        pos (erc20_transfer
               [ v "tx"; v "sc_chain"; v "tidx"; v "token"; v "release_from";
                 any (); v "amt" ]);
        pos (transaction
               [ v "ts"; v "sc_chain"; v "tx"; any (); any (); s "0"; i 1; any () ]);
        pos (bridge_controlled [ v "sc_chain"; v "release_from" ]);
        ev "bidx" >! ev "tidx";
      ]

(* ------------------------------------------------------------------ *)
(* Rule 8 (D): CCTX_ValidWithdrawal — correlate the T-side request     *)
(* with the S-side release; enforce parameters, causality and the      *)
(* target chain's finality.                                            *)

let cctx_withdrawal_head =
  atom r_cctx_valid_withdrawal
    [ v "tc_tx"; v "sc_tx"; v "wid"; v "sc_chain"; v "tc_chain";
      v "src_token"; v "dst_token"; v "ben"; v "amt"; v "tc_ts"; v "sc_ts" ]

let rule_8_erc20 =
  cctx_withdrawal_head
  <-- [
        pos (atom r_tc_valid_erc20_withdrawal
               [ v "tc_tx"; v "tc_ts"; v "tc_chain"; v "wid"; v "ben";
                 v "src_token"; v "dst_token"; v "sc_chain"; v "amt" ]);
        pos (atom r_sc_valid_erc20_withdrawal
               [ v "sc_tx"; v "sc_ts"; v "sc_chain"; v "wid"; v "ben";
                 v "src_token"; v "amt" ]);
        pos (cctx_finality [ v "tc_chain"; v "fin" ]);
        pos (token_mapping [ v "sc_chain"; v "tc_chain"; v "src_token"; v "dst_token" ]);
        ev "tc_ts" +! ev "fin" <=! ev "sc_ts";
      ]

let rule_8_native =
  cctx_withdrawal_head
  <-- [
        pos (atom r_tc_valid_native_withdrawal
               [ v "tc_tx"; v "tc_ts"; v "tc_chain"; v "wid"; v "ben";
                 v "src_token"; v "dst_token"; v "sc_chain"; v "amt" ]);
        pos (atom r_sc_valid_erc20_withdrawal
               [ v "sc_tx"; v "sc_ts"; v "sc_chain"; v "wid"; v "ben";
                 v "src_token"; v "amt" ]);
        pos (cctx_finality [ v "tc_chain"; v "fin" ]);
        pos (token_mapping [ v "sc_chain"; v "tc_chain"; v "src_token"; v "dst_token" ]);
        ev "tc_ts" +! ev "fin" <=! ev "sc_ts";
      ]

(* ------------------------------------------------------------------ *)
(* Auxiliary: any bridge event in a transaction                        *)

let bridge_event_rules =
  [
    atom r_bridge_event_in_tx [ v "tx" ]
    <-- [ pos (sc_token_deposited [ v "tx"; any (); any (); any (); any (); any (); any (); any () ]) ];
    atom r_bridge_event_in_tx [ v "tx" ]
    <-- [ pos (tc_token_deposited [ v "tx"; any (); any (); any (); any (); any () ]) ];
    atom r_bridge_event_in_tx [ v "tx" ]
    <-- [ pos (tc_token_withdrew [ v "tx"; any (); any (); any (); any (); any (); any (); any () ]) ];
    atom r_bridge_event_in_tx [ v "tx" ]
    <-- [ pos (sc_token_withdrew [ v "tx"; any (); any (); any (); any (); any () ]) ];
    (* A bridge event that was present but undecodable still counts:
       the transaction is bridge-related, just not fully understood. *)
    atom r_bridge_event_in_tx [ v "tx" ]
    <-- [ pos (atom Facts.r_bridge_event_decode_failure [ v "tx" ]) ];
  ]

(* Findings 1 and 2: ERC-20 transfers into a bridge-controlled address
   in transactions where the bridge emitted no event — direct transfers
   of reputable tokens (lost funds) and phishing-token interactions. *)
let transfer_to_bridge_no_event =
  atom r_transfer_to_bridge_no_event
    [ v "tx"; v "chain"; v "token"; v "from"; v "amt" ]
  <-- [
        pos (erc20_transfer
               [ v "tx"; v "chain"; any (); v "token"; v "from"; v "to"; v "amt" ]);
        pos (bridge_controlled [ v "chain"; v "to" ]);
        ev "to" <>! ec (Str zero_addr);
        (* Mints into the bridge are operator liquidity provisioning,
           not user transfers. *)
        ev "from" <>! ec (Str zero_addr);
        pos (transaction [ any (); v "chain"; v "tx"; any (); any (); any (); i 1; any () ]);
        neg (atom r_bridge_event_in_tx [ v "tx" ]);
      ]

(* Section 5.1.4: funds moved out of a bridge address with no bridge
   event (phishing-token fabrications). *)
let transfer_from_bridge_no_event =
  atom r_transfer_from_bridge_no_event
    [ v "tx"; v "chain"; v "token"; v "to"; v "amt" ]
  <-- [
        pos (erc20_transfer
               [ v "tx"; v "chain"; any (); v "token"; v "from"; v "to"; v "amt" ]);
        pos (bridge_controlled [ v "chain"; v "from" ]);
        ev "from" <>! ec (Str zero_addr);
        ev "to" <>! ec (Str zero_addr);
        pos (transaction [ any (); v "chain"; v "tx"; any (); any (); any (); i 1; any () ]);
        neg (atom r_bridge_event_in_tx [ v "tx" ]);
      ]

(* Attack signal: the bridge acknowledged a deposit without the
   corresponding escrow movement in the same transaction. *)
let sc_escrow_in_tx = "sc_escrow_in_tx"

let sc_escrow_rules =
  [
    atom sc_escrow_in_tx [ v "tx"; v "token"; v "amt" ]
    <-- [
          pos (erc20_transfer [ v "tx"; v "chain"; any (); v "token"; any (); v "to"; v "amt" ]);
          pos (bridge_controlled [ v "chain"; v "to" ]);
        ];
    atom sc_escrow_in_tx [ v "tx"; v "token"; v "amt" ]
    <-- [
          pos (native_deposit [ v "tx"; v "chain"; any (); any (); any (); v "amt" ]);
          pos (wrapped_native [ v "chain"; v "token" ]);
        ];
  ]

let sc_deposit_event_no_escrow =
  atom r_sc_deposit_event_no_escrow [ v "tx"; v "did"; v "token"; v "amt" ]
  <-- [
        pos (sc_token_deposited
               [ v "tx"; any (); v "did"; any (); any (); v "token"; any (); v "amt" ]);
        neg (atom sc_escrow_in_tx [ v "tx"; v "token"; v "amt" ]);
      ]

(* Section 5.1.3 (Ronin): TokenWithdrew emitted on T without any token
   escrow in the same transaction (unmapped-token withdrawal bug). *)
let tc_escrow_in_tx = "tc_escrow_in_tx"

let tc_escrow_rules =
  [
    atom tc_escrow_in_tx [ v "tx"; v "token"; v "amt" ]
    <-- [
          pos (erc20_transfer [ v "tx"; v "chain"; any (); v "token"; any (); v "to"; v "amt" ]);
          pos (bridge_controlled [ v "chain"; v "to" ]);
        ];
    atom tc_escrow_in_tx [ v "tx"; v "token"; v "amt" ]
    <-- [
          pos (native_withdrawal [ v "tx"; v "chain"; any (); any (); any (); v "amt" ]);
          pos (wrapped_native [ v "chain"; v "token" ]);
        ];
  ]

let tc_withdraw_event_no_escrow =
  atom r_tc_withdraw_event_no_escrow [ v "tx"; v "wid"; v "token"; v "amt" ]
  <-- [
        pos (tc_token_withdrew
               [ v "tx"; any (); v "wid"; any (); any (); v "token"; any (); v "amt" ]);
        neg (atom tc_escrow_in_tx [ v "tx"; v "token"; v "amt" ]);
      ]

(* ------------------------------------------------------------------ *)
(* Matched / unmatched dissection (Table 4)                            *)

let matched_rules =
  [
    atom r_matched_sc_deposit [ v "tx" ]
    <-- [ pos (atom r_cctx_valid_deposit
                 [ v "tx"; any (); any (); any (); any (); any (); any ();
                   any (); any (); any (); any () ]) ];
    atom r_matched_tc_deposit [ v "tx" ]
    <-- [ pos (atom r_cctx_valid_deposit
                 [ any (); v "tx"; any (); any (); any (); any (); any ();
                   any (); any (); any (); any () ]) ];
    atom r_matched_tc_withdrawal [ v "tx" ]
    <-- [ pos (atom r_cctx_valid_withdrawal
                 [ v "tx"; any (); any (); any (); any (); any (); any ();
                   any (); any (); any (); any () ]) ];
    atom r_matched_sc_withdrawal [ v "tx" ]
    <-- [ pos (atom r_cctx_valid_withdrawal
                 [ any (); v "tx"; any (); any (); any (); any (); any ();
                   any (); any (); any (); any () ]) ];
  ]

let unmatched_rules =
  [
    atom r_unmatched_sc_native_deposit
      [ v "tx"; v "ts"; v "amt"; v "did"; v "token" ]
    <-- [
          pos (atom r_sc_valid_native_deposit
                 [ v "tx"; v "ts"; any (); any (); v "token"; any (); any ();
                   v "amt"; v "did" ]);
          neg (atom r_matched_sc_deposit [ v "tx" ]);
        ];
    atom r_unmatched_sc_erc20_deposit
      [ v "tx"; v "ts"; v "amt"; v "did"; v "token" ]
    <-- [
          pos (atom r_sc_valid_erc20_deposit
                 [ v "tx"; v "ts"; any (); any (); v "token"; any (); any ();
                   v "amt"; v "did" ]);
          neg (atom r_matched_sc_deposit [ v "tx" ]);
        ];
    atom r_unmatched_tc_deposit [ v "tx"; v "ts"; v "amt"; v "did"; v "token" ]
    <-- [
          pos (atom r_tc_valid_erc20_deposit
                 [ v "tx"; v "ts"; any (); v "did"; any (); v "token"; v "amt" ]);
          neg (atom r_matched_tc_deposit [ v "tx" ]);
        ];
    atom r_unmatched_tc_native_withdrawal
      [ v "tx"; v "ts"; v "amt"; v "wid"; v "ben"; v "token" ]
    <-- [
          pos (atom r_tc_valid_native_withdrawal
                 [ v "tx"; v "ts"; any (); v "wid"; v "ben"; v "token"; any ();
                   any (); v "amt" ]);
          neg (atom r_matched_tc_withdrawal [ v "tx" ]);
        ];
    atom r_unmatched_tc_erc20_withdrawal
      [ v "tx"; v "ts"; v "amt"; v "wid"; v "ben"; v "token" ]
    <-- [
          pos (atom r_tc_valid_erc20_withdrawal
                 [ v "tx"; v "ts"; any (); v "wid"; v "ben"; v "token"; any ();
                   any (); v "amt" ]);
          neg (atom r_matched_tc_withdrawal [ v "tx" ]);
        ];
    atom r_unmatched_sc_withdrawal
      [ v "tx"; v "ts"; v "amt"; v "wid"; v "ben"; v "token" ]
    <-- [
          pos (atom r_sc_valid_erc20_withdrawal
                 [ v "tx"; v "ts"; any (); v "wid"; v "ben"; v "token"; v "amt" ]);
          neg (atom r_matched_sc_withdrawal [ v "tx" ]);
        ];
  ]

(* ------------------------------------------------------------------ *)
(* Finality violations (Finding 4): events on both chains that match   *)
(* in every parameter but complete before the finality / fraud-proof   *)
(* delay elapsed.                                                      *)

let finality_violation_rules =
  [
    atom r_deposit_finality_violation
      [ v "src_tx"; v "dst_tx"; v "did"; v "amt"; v "src_ts"; v "dst_ts"; v "fin" ]
    <-- [
          pos (atom r_sc_valid_erc20_deposit
                 [ v "src_tx"; v "src_ts"; v "src_chain"; v "dst_chain";
                   v "src_token"; v "dst_token"; v "ben"; v "amt"; v "did" ]);
          pos (atom r_tc_valid_erc20_deposit
                 [ v "dst_tx"; v "dst_ts"; v "dst_chain"; v "did"; v "ben";
                   v "dst_token"; v "amt" ]);
          pos (cctx_finality [ v "src_chain"; v "fin" ]);
          ev "src_ts" +! ev "fin" >! ev "dst_ts";
          ev "dst_ts" >=! ev "src_ts";
        ];
    atom r_deposit_finality_violation
      [ v "src_tx"; v "dst_tx"; v "did"; v "amt"; v "src_ts"; v "dst_ts"; v "fin" ]
    <-- [
          pos (atom r_sc_valid_native_deposit
                 [ v "src_tx"; v "src_ts"; v "src_chain"; v "dst_chain";
                   v "src_token"; v "dst_token"; v "ben"; v "amt"; v "did" ]);
          pos (atom r_tc_valid_erc20_deposit
                 [ v "dst_tx"; v "dst_ts"; v "dst_chain"; v "did"; v "ben";
                   v "dst_token"; v "amt" ]);
          pos (cctx_finality [ v "src_chain"; v "fin" ]);
          ev "src_ts" +! ev "fin" >! ev "dst_ts";
          ev "dst_ts" >=! ev "src_ts";
        ];
    atom r_withdrawal_finality_violation
      [ v "tc_tx"; v "sc_tx"; v "wid"; v "amt"; v "tc_ts"; v "sc_ts"; v "fin" ]
    <-- [
          pos (atom r_tc_valid_erc20_withdrawal
                 [ v "tc_tx"; v "tc_ts"; v "tc_chain"; v "wid"; v "ben";
                   v "src_token"; v "dst_token"; v "sc_chain"; v "amt" ]);
          pos (atom r_sc_valid_erc20_withdrawal
                 [ v "sc_tx"; v "sc_ts"; v "sc_chain"; v "wid"; v "ben";
                   v "src_token"; v "amt" ]);
          pos (cctx_finality [ v "tc_chain"; v "fin" ]);
          ev "tc_ts" +! ev "fin" >! ev "sc_ts";
          ev "sc_ts" >=! ev "tc_ts";
        ];
    atom r_withdrawal_finality_violation
      [ v "tc_tx"; v "sc_tx"; v "wid"; v "amt"; v "tc_ts"; v "sc_ts"; v "fin" ]
    <-- [
          pos (atom r_tc_valid_native_withdrawal
                 [ v "tc_tx"; v "tc_ts"; v "tc_chain"; v "wid"; v "ben";
                   v "src_token"; v "dst_token"; v "sc_chain"; v "amt" ]);
          pos (atom r_sc_valid_erc20_withdrawal
                 [ v "sc_tx"; v "sc_ts"; v "sc_chain"; v "wid"; v "ben";
                   v "src_token"; v "amt" ]);
          pos (cctx_finality [ v "tc_chain"; v "fin" ]);
          ev "tc_ts" +! ev "fin" >! ev "sc_ts";
          ev "sc_ts" >=! ev "tc_ts";
        ];
  ]

(* ------------------------------------------------------------------ *)
(* Token-mapping violations (Finding 6)                                *)

let mapping_violation_rules =
  [
    atom r_mapped_dst_token [ v "t" ]
    <-- [ pos (token_mapping [ any (); any (); any (); v "t" ]) ];
    atom r_mapped_src_token [ v "t" ]
    <-- [ pos (token_mapping [ any (); any (); v "t"; any () ]) ];
    (* Deposits completed on T for tokens outside the verified mapping. *)
    atom r_deposit_mapping_violation [ v "tx"; v "did"; v "token"; v "amt" ]
    <-- [
          pos (tc_token_deposited [ v "tx"; any (); v "did"; any (); v "token"; v "amt" ]);
          neg (atom r_mapped_dst_token [ v "token" ]);
        ];
    (* Withdrawals released on S for tokens outside the verified mapping. *)
    atom r_withdrawal_mapping_violation [ v "tx"; v "wid"; v "token"; v "amt" ]
    <-- [
          pos (sc_token_withdrew [ v "tx"; any (); v "wid"; any (); v "token"; v "amt" ]);
          neg (atom r_mapped_src_token [ v "token" ]);
        ];
  ]

(* Invalid-beneficiary witnesses (Section 5.2.2): both sides of a cctx
   exist and agree on id/token/amount but the beneficiaries differ —
   the bridge contract and the decoder interpreted a malformed
   beneficiary field differently. *)
let r_deposit_beneficiary_mismatch = "deposit_beneficiary_mismatch"
let r_withdrawal_beneficiary_mismatch = "withdrawal_beneficiary_mismatch"

let beneficiary_mismatch_rules =
  [
    atom r_deposit_beneficiary_mismatch
      [ v "src_tx"; v "dst_tx"; v "did"; v "ben_s"; v "ben_t" ]
    <-- [
          pos (atom r_sc_valid_erc20_deposit
                 [ v "src_tx"; any (); any (); v "dst_chain"; any ();
                   v "dst_token"; v "ben_s"; v "amt"; v "did" ]);
          pos (atom r_tc_valid_erc20_deposit
                 [ v "dst_tx"; any (); v "dst_chain"; v "did"; v "ben_t";
                   v "dst_token"; v "amt" ]);
          ev "ben_s" <>! ev "ben_t";
        ];
    atom r_withdrawal_beneficiary_mismatch
      [ v "tc_tx"; v "sc_tx"; v "wid"; v "ben_t"; v "ben_s" ]
    <-- [
          pos (atom r_tc_valid_erc20_withdrawal
                 [ v "tc_tx"; any (); any (); v "wid"; v "ben_t"; v "src_token";
                   any (); v "sc_chain"; v "amt" ]);
          pos (atom r_sc_valid_erc20_withdrawal
                 [ v "sc_tx"; any (); v "sc_chain"; v "wid"; v "ben_s";
                   v "src_token"; v "amt" ]);
          ev "ben_t" <>! ev "ben_s";
        ];
  ]

(* Failed exploit probes: reverted transactions targeting a bridge
   contract (Section 5.1.3's seven attack attempts reverted). *)
let reverted_bridge_interaction =
  atom r_reverted_bridge_interaction [ v "tx"; v "chain"; v "from" ]
  <-- [
        pos (transaction [ any (); v "chain"; v "tx"; v "from"; v "to"; any (); i 0; any () ]);
        pos (bridge_controlled [ v "chain"; v "to" ]);
        ev "to" <>! ec (Str zero_addr);
      ]

(* ------------------------------------------------------------------ *)
(* Attack pack: rule signatures for the 2023 hack corpus (SoK of 2023  *)
(* bridge hacks / Xscope).  Each attack class injected by              *)
(* Xcw_workload.Attacks has one dedicated detection rule here; the     *)
(* per-class evidence surfaces in Report.attack_rows.                  *)

(* Forged proof/signature acceptance (BNB Bridge, Nomad replays): the
   source chain released funds for a withdrawal id that was never
   requested on the target chain — the acceptance proof was forged, so
   no T-side TokenWithdrew event exists anywhere in the captured data. *)
let forged_proof_rules =
  [
    atom r_tc_withdrawal_requested [ v "wid" ]
    <-- [ pos (tc_token_withdrew
                 [ any (); any (); v "wid"; any (); any (); any (); any (); any () ]) ];
    atom r_forged_proof_withdrawal [ v "tx"; v "wid"; v "ben"; v "token"; v "amt" ]
    <-- [
          pos (sc_token_withdrew [ v "tx"; any (); v "wid"; v "ben"; v "token"; v "amt" ]);
          neg (atom r_tc_withdrawal_requested [ v "wid" ]);
        ];
  ]

(* Compromised-key validator takeover (Ronin, Harmony Horizon): a
   genuine T-side request exists, but the S-side release signed by the
   stolen quorum carries a different amount — the attacker re-signed
   the message with inflated parameters. *)
let validator_takeover_rule =
  atom r_validator_takeover_withdrawal
    [ v "tc_tx"; v "sc_tx"; v "wid"; v "token"; v "amt_t"; v "amt_s" ]
  <-- [
        pos (tc_token_withdrew
               [ v "tc_tx"; any (); v "wid"; any (); v "token"; any (); any (); v "amt_t" ]);
        pos (sc_token_withdrew [ v "sc_tx"; any (); v "wid"; any (); v "token"; v "amt_s" ]);
        ev "amt_t" <>! ev "amt_s";
      ]

(* Unauthorized mint without a matching lock (Qubit, Meter.io): the
   target chain minted a properly mapped token for a deposit id that
   never appeared on the source chain.  Restricting to mapped tokens
   separates this from plain mapping violations (Finding 6). *)
let unauthorized_mint_rules =
  [
    atom r_sc_deposit_initiated [ v "did" ]
    <-- [ pos (sc_token_deposited
                 [ any (); any (); v "did"; any (); any (); any (); any (); any () ]) ];
    atom r_unauthorized_mint [ v "tx"; v "did"; v "ben"; v "token"; v "amt" ]
    <-- [
          pos (tc_token_deposited [ v "tx"; any (); v "did"; v "ben"; v "token"; v "amt" ]);
          pos (atom r_mapped_dst_token [ v "token" ]);
          neg (atom r_sc_deposit_initiated [ v "did" ]);
        ];
  ]

(* Unmatched/inconsistent event pattern (Xscope): both sides emitted
   deposit events for the same id and token, but the amounts disagree —
   the completion does not reproduce what was locked. *)
let inconsistent_event_rule =
  atom r_inconsistent_deposit_event
    [ v "src_tx"; v "dst_tx"; v "did"; v "token"; v "amt_s"; v "amt_t" ]
  <-- [
        pos (sc_token_deposited
               [ v "src_tx"; any (); v "did"; any (); v "token"; any (); any (); v "amt_s" ]);
        pos (tc_token_deposited [ v "dst_tx"; any (); v "did"; any (); v "token"; v "amt_t" ]);
        ev "amt_s" <>! ev "amt_t";
      ]

let attack_pack_rules =
  forged_proof_rules
  @ [ validator_takeover_rule ]
  @ unauthorized_mint_rules
  @ [ inconsistent_event_rule ]

(* ------------------------------------------------------------------ *)
(* Pessimistic-accounting stratum (PR 10; DESIGN.md §15): rules over   *)
(* the exit-bridge relations of the proof-carrying bridge model.  The  *)
(* two *_total relations are engine aggregates (see [aggregates]       *)
(* below), not rule heads: grouped integer sums over the exit EDB,     *)
(* materialized before any stratum runs, which the rules join and      *)
(* compare like ordinary EDB — stratified aggregation.                 *)

(* Accounting relation names. *)
let r_exit_deposit_total = "exit_deposit_total"
let r_exit_claim_total = "exit_claim_total"
let r_exit_token_deposited = "exit_token_deposited"
let r_acc_outflow_violation = "acc_outflow_violation"
let r_acc_outflow_tx = "acc_outflow_tx"
let r_acc_forged_exit_proof = "acc_forged_exit_proof"
let r_acc_stale_root_claim = "acc_stale_root_claim"
let r_acc_root_divergence = "acc_root_divergence"
let r_exit_validator_slashed = "exit_validator_slashed"
let r_acc_slashing_evasion = "acc_slashing_evasion"

let exit_deposit a = atom Facts.r_exit_deposit a
let exit_claim a = atom Facts.r_exit_claim a
let sealed_root a = atom Facts.r_sealed_root a
let signed_root a = atom Facts.r_signed_root a
let stake_event a = atom Facts.r_stake_event a

(* exit_deposit_total(origin_chain, token, total): summed deposits per
   (origin chain, token) — grouped over exit_deposit's chain_id (1) and
   token (4) cells, summing amount (5).  exit_claim_total groups claims
   by the origin chain they draw on (6) and token (4). *)
let aggregates : Xcw_datalog.Engine.aggregate list =
  Xcw_datalog.Engine.
    [
      { agg_pred = r_exit_deposit_total; agg_source = Facts.r_exit_deposit;
        agg_group_by = [ 1; 4 ]; agg_sum = 5 };
      { agg_pred = r_exit_claim_total; agg_source = Facts.r_exit_claim;
        agg_group_by = [ 6; 4 ]; agg_sum = 5 };
    ]

let accounting_rules =
  [
    (* Which (origin chain, token) pairs saw any exit deposit at all —
       lets the conservation law also condemn claims drawing on a
       token that was never deposited (claimed > 0 = deposited). *)
    atom r_exit_token_deposited [ v "chain"; v "token" ]
    <-- [ pos (exit_deposit
                 [ any (); v "chain"; any (); any (); v "token"; any ();
                   any (); any () ]) ];
    (* The conservation law itself: cumulative claims against an origin
       chain's token exceed what that chain escrowed.  Pessimistic
       accounting — no per-tx matching needed, the sums alone convict. *)
    atom r_acc_outflow_violation
      [ v "chain"; v "token"; v "claimed"; v "deposited" ]
    <-- [
          pos (atom r_exit_claim_total [ v "chain"; v "token"; v "claimed" ]);
          pos (atom r_exit_deposit_total
                 [ v "chain"; v "token"; v "deposited" ]);
          ev "claimed" >! ev "deposited";
        ];
    atom r_acc_outflow_violation [ v "chain"; v "token"; v "claimed"; i 0 ]
    <-- [
          pos (atom r_exit_claim_total [ v "chain"; v "token"; v "claimed" ]);
          neg (atom r_exit_token_deposited [ v "chain"; v "token" ]);
        ];
    (* Every claim drawing on a convicted (origin chain, token) pool —
       the per-tx evidence rows behind the aggregate verdict. *)
    atom r_acc_outflow_tx
      [ v "tx"; v "dchain"; v "ochain"; v "token"; v "amt" ]
    <-- [
          pos (atom r_acc_outflow_violation
                 [ v "ochain"; v "token"; any (); any () ]);
          pos (exit_claim
                 [ v "tx"; v "dchain"; any (); any (); v "token"; v "amt";
                   v "ochain"; any (); any (); any () ]);
        ];
    (* A claim whose inclusion proof failed watcher-side verification
       against the root it presented (valid = 0). *)
    atom r_acc_forged_exit_proof
      [ v "tx"; v "chain"; v "leaf"; v "token"; v "amt" ]
    <-- [
          pos (exit_claim
                 [ v "tx"; v "chain"; any (); v "leaf"; v "token"; v "amt";
                   any (); any (); any (); i 0 ]);
        ];
    (* A claim proved against a root some validator had already
       superseded: the presented root belongs to epoch E, yet an
       attestation for a newer epoch carries a smaller destination-side
       sequence number — it landed before the claim did. *)
    atom r_acc_stale_root_claim
      [ v "tx"; v "chain"; v "leaf"; v "token"; v "amt"; v "epoch" ]
    <-- [
          pos (exit_claim
                 [ v "tx"; v "chain"; any (); v "leaf"; v "token"; v "amt";
                   v "origin"; v "root"; v "cseq"; any () ]);
          pos (signed_root
                 [ any (); v "chain"; v "origin"; v "epoch"; v "root"; any ();
                   any () ]);
          pos (signed_root
                 [ any (); v "chain"; v "origin"; v "newer"; any (); any ();
                   v "sseq" ]);
          ev "newer" >! ev "epoch";
          ev "sseq" <! ev "cseq";
        ];
    (* A validator attested to a root that differs from what the origin
       chain actually sealed for that epoch. *)
    atom r_acc_root_divergence
      [ v "tx"; v "chain"; v "origin"; v "epoch"; v "validator"; v "signed";
        v "sealed" ]
    <-- [
          pos (signed_root
                 [ v "tx"; v "chain"; v "origin"; v "epoch"; v "signed";
                   v "validator"; any () ]);
          pos (sealed_root [ any (); v "origin"; v "epoch"; v "sealed" ]);
          ev "signed" <>! ev "sealed";
        ];
    atom r_exit_validator_slashed [ v "chain"; v "validator" ]
    <-- [ pos (stake_event
                 [ any (); v "chain"; v "validator"; s "slash"; any ();
                   any () ]) ];
    (* Slashing evasion: a validator caught signing a divergent root
       withdrew its stake without ever being slashed. *)
    atom r_acc_slashing_evasion [ v "tx"; v "chain"; v "validator"; v "amt" ]
    <-- [
          pos (atom r_acc_root_divergence
                 [ any (); v "chain"; any (); any (); v "validator"; any ();
                   any () ]);
          pos (stake_event
                 [ v "tx"; v "chain"; v "validator"; s "withdraw"; v "amt";
                   any () ]);
          neg (atom r_exit_validator_slashed [ v "chain"; v "validator" ]);
        ];
  ]

(* ------------------------------------------------------------------ *)
(* The full program                                                    *)

let core_rules =
  [
    rule_1; rule_2; rule_3; rule_4_erc20; rule_4_native; rule_5; rule_6;
    rule_7; rule_8_erc20; rule_8_native;
  ]

let auxiliary_rules =
  bridge_event_rules
  @ [ transfer_to_bridge_no_event; transfer_from_bridge_no_event ]
  @ sc_escrow_rules
  @ [ sc_deposit_event_no_escrow ]
  @ tc_escrow_rules
  @ [ tc_withdraw_event_no_escrow ]
  @ matched_rules @ unmatched_rules @ finality_violation_rules
  @ mapping_violation_rules @ beneficiary_mismatch_rules
  @ [ reverted_bridge_interaction ]
  @ attack_pack_rules

(* Accounting rules are appended last so the "NN:pred" labels of the
   pre-existing 50 rules — baked into golden fixtures and alert streams
   — keep their positions. *)
let all_rules = core_rules @ auxiliary_rules @ accounting_rules

let program : program = { rules = all_rules }

let rule_count = List.length all_rules
