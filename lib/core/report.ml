(** Anomaly report structures — the detector's output.

    The shapes mirror the paper's evaluation artefacts: {!rule_row}
    reproduces a row of Table 3 (captured records and classified
    anomalies per rule), {!unmatched_row} a row of Table 4 (origin of
    each CCTX anomaly), and {!cctx} entries feed the dataset export and
    Figures 5–7. *)

module Json = Xcw_util.Json

(* --- pessimistic-accounting classes (PR 10) ------------------------ *)

(** The five exit-bridge attack classes of the proof-carrying bridge
    model (DESIGN.md §15) — violations of structural invariants no
    per-transaction rule can express. *)
type acc_class =
  | Stale_root_claim  (** claim proved against a superseded epoch root *)
  | Forged_exit_proof  (** claim whose inclusion proof fails to verify *)
  | Root_divergence  (** validator attested a root the origin never sealed *)
  | Exit_net_outflow  (** cumulative claims exceed cumulative deposits *)
  | Slashing_evasion  (** divergent validator withdrew stake unslashed *)

let acc_classes =
  [ Stale_root_claim; Forged_exit_proof; Root_divergence; Exit_net_outflow;
    Slashing_evasion ]

let acc_class_name = function
  | Stale_root_claim -> "stale-root claim"
  | Forged_exit_proof -> "forged exit proof"
  | Root_divergence -> "exit-root divergence"
  | Exit_net_outflow -> "exit net-outflow violation"
  | Slashing_evasion -> "slashing evasion"

let acc_class_slug = function
  | Stale_root_claim -> "stale-root"
  | Forged_exit_proof -> "forged-exit-proof"
  | Root_divergence -> "root-divergence"
  | Exit_net_outflow -> "net-outflow"
  | Slashing_evasion -> "slashing-evasion"

let acc_class_of_slug s =
  List.find_opt (fun c -> acc_class_slug c = s) acc_classes

type anomaly_class =
  | Phishing_token_transfer
      (** Finding 1: fake/disreputable tokens interacting with the bridge *)
  | Direct_transfer_to_bridge
      (** Finding 2: reputable tokens sent straight to the bridge address *)
  | Unparseable_beneficiary
      (** Section 5.1.3: 32-byte beneficiary that is not a padded address *)
  | Failed_exploit_attempt
      (** Section 5.1.3: reverted probing transactions against the bridge *)
  | Event_without_escrow
      (** bridge event with no corresponding token movement *)
  | Finality_violation  (** Finding 4 *)
  | Token_mapping_violation  (** Finding 6 *)
  | Invalid_beneficiary_fp
      (** Section 5.2.2: tool/contract disagree on a malformed input (FP) *)
  | No_correspondence
      (** Findings 7/8: event on one chain never completed on the other *)
  | Pre_window_fp
      (** Section 5.2.5: matched by events emitted before the collection
          window (Ronin's 708 false positives) *)
  | Accounting of acc_class
      (** PR 10: an exit-bridge accounting-invariant violation *)

let class_name = function
  | Phishing_token_transfer -> "phishing-token transfer"
  | Direct_transfer_to_bridge -> "direct transfer to bridge"
  | Unparseable_beneficiary -> "unparseable beneficiary"
  | Failed_exploit_attempt -> "failed exploit attempt"
  | Event_without_escrow -> "event without escrow"
  | Finality_violation -> "cctx_finality violation"
  | Token_mapping_violation -> "token_mapping violation"
  | Invalid_beneficiary_fp -> "invalid beneficiary (FP)"
  | No_correspondence -> "no correspondence on other chain"
  | Pre_window_fp -> "matched before collection window (FP)"
  | Accounting c -> "accounting: " ^ acc_class_name c

type anomaly = {
  a_class : anomaly_class;
  a_tx_hash : string;
  a_chain_id : int;
  a_usd_value : float;
  a_detail : string;
}

type rule_row = {
  rr_rule : string;  (** e.g. "1. SC_ValidNativeTokenDeposit" *)
  rr_captured : int;
  rr_anomalies : anomaly list;
}

(* --- attack-pack tables (2023 hack corpus) ------------------------- *)

type attack_class =
  | Forged_proof  (** forged proof/signature acceptance (BNB-style) *)
  | Validator_takeover  (** compromised-key re-signing (Ronin-style) *)
  | Unauthorized_mint  (** mint without a matching lock (Qubit-style) *)
  | Inconsistent_event  (** Xscope unmatched/inconsistent event pattern *)

let attack_classes =
  [ Forged_proof; Validator_takeover; Unauthorized_mint; Inconsistent_event ]

let attack_class_name = function
  | Forged_proof -> "forged-proof withdrawal"
  | Validator_takeover -> "validator-takeover withdrawal"
  | Unauthorized_mint -> "unauthorized mint"
  | Inconsistent_event -> "inconsistent deposit event"

type attack_hit = {
  ah_tx_hash : string;  (** the attacker's transaction *)
  ah_chain_id : int;
  ah_id : int;  (** deposit or withdrawal id *)
  ah_usd_value : float;
  ah_detail : string;
}

type attack_row = {
  ar_class : attack_class;
  ar_rule : string;  (** the derived relation that fired *)
  ar_hits : attack_hit list;
}

type acc_row = {
  xr_class : acc_class;
  xr_rule : string;  (** the accounting relation that fired *)
  xr_hits : attack_hit list;
      (** [ah_id] carries the leaf index (claims), epoch (divergence)
          or 0 (stake events) *)
}

(** A valid cross-chain transaction (rules 4 and 8 output) — the unit
    of the open dataset. *)
type cctx = {
  c_kind : [ `Deposit | `Withdrawal ];
  c_src_tx : string;  (** initiating tx (S for deposits, T for withdrawals) *)
  c_dst_tx : string;
  c_id : int;  (** deposit or withdrawal id *)
  c_amount : string;  (** decimal token units *)
  c_token : string;  (** source-chain token address *)
  c_beneficiary : string;
  c_usd_value : float;
  c_start_ts : int;
  c_end_ts : int;
}

let cctx_latency c = c.c_end_ts - c.c_start_ts

type t = {
  bridge_name : string;
  rows : rule_row list;
  attack_rows : attack_row list;
      (** one row per attack class, in {!attack_classes} order *)
  acc_rows : acc_row list;
      (** one row per accounting class, in {!acc_classes} order *)
  cctxs : cctx list;
  total_facts : int;
  decode_seconds : float;  (** wall-clock decode + relation building *)
  eval_seconds : float;  (** wall-clock rule evaluation *)
  simulated_rpc_seconds : float;
}

let attack_row t cls = List.find_opt (fun r -> r.ar_class = cls) t.attack_rows

let total_attack_hits t =
  List.fold_left (fun acc r -> acc + List.length r.ar_hits) 0 t.attack_rows

let acc_row t cls = List.find_opt (fun r -> r.xr_class = cls) t.acc_rows

let total_acc_hits t =
  List.fold_left (fun acc r -> acc + List.length r.xr_hits) 0 t.acc_rows

let total_anomalies t =
  List.fold_left (fun acc r -> acc + List.length r.rr_anomalies) 0 t.rows

let anomalies_of_class t cls =
  List.concat_map
    (fun r -> List.filter (fun a -> a.a_class = cls) r.rr_anomalies)
    t.rows

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)

let summarize_anomalies anomalies =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let count, value =
        Option.value (Hashtbl.find_opt tbl a.a_class) ~default:(0, 0.0)
      in
      Hashtbl.replace tbl a.a_class (count + 1, value +. a.a_usd_value))
    anomalies;
  Hashtbl.fold (fun cls (count, value) acc -> (cls, count, value) :: acc) tbl []
  |> List.sort compare

let pp fmt t =
  Format.fprintf fmt "@[<v>=== XChainWatcher report: %s ===@," t.bridge_name;
  Format.fprintf fmt "facts: %d | decode: %.2fs (simulated RPC %.2fs) | rules: %.2fs@,@,"
    t.total_facts t.decode_seconds t.simulated_rpc_seconds t.eval_seconds;
  List.iter
    (fun r ->
      Format.fprintf fmt "%-34s captured %7d  anomalies %5d@," r.rr_rule
        r.rr_captured
        (List.length r.rr_anomalies);
      List.iter
        (fun (cls, count, value) ->
          if value > 0.0 then
            Format.fprintf fmt "    - %-38s %5d  ($%.2f)@," (class_name cls)
              count value
          else
            Format.fprintf fmt "    - %-38s %5d@," (class_name cls) count)
        (summarize_anomalies r.rr_anomalies))
    t.rows;
  if total_attack_hits t > 0 then begin
    Format.fprintf fmt "@,attack packs:@,";
    List.iter
      (fun r ->
        if r.ar_hits <> [] then begin
          Format.fprintf fmt "%-34s hits %5d  ($%.2f)@."
            (attack_class_name r.ar_class)
            (List.length r.ar_hits)
            (List.fold_left (fun acc h -> acc +. h.ah_usd_value) 0.0 r.ar_hits);
          List.iter
            (fun h ->
              Format.fprintf fmt "    - %s %s@." h.ah_tx_hash h.ah_detail)
            r.ar_hits
        end)
      t.attack_rows
  end;
  if total_acc_hits t > 0 then begin
    Format.fprintf fmt "@,accounting violations:@,";
    List.iter
      (fun r ->
        if r.xr_hits <> [] then begin
          Format.fprintf fmt "%-34s hits %5d  ($%.2f)@."
            (acc_class_name r.xr_class)
            (List.length r.xr_hits)
            (List.fold_left (fun acc h -> acc +. h.ah_usd_value) 0.0 r.xr_hits);
          List.iter
            (fun h ->
              Format.fprintf fmt "    - %s %s@." h.ah_tx_hash h.ah_detail)
            r.xr_hits
        end)
      t.acc_rows
  end;
  Format.fprintf fmt "@,total anomalies: %d | valid cctxs: %d@]"
    (total_anomalies t) (List.length t.cctxs)

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* JSON export (the open dataset)                                      *)

let anomaly_to_json a =
  Json.Obj
    [
      ("class", Json.String (class_name a.a_class));
      ("tx_hash", Json.String a.a_tx_hash);
      ("chain_id", Json.Int a.a_chain_id);
      ("usd_value", Json.Float a.a_usd_value);
      ("detail", Json.String a.a_detail);
    ]

let cctx_to_json c =
  Json.Obj
    [
      ("kind", Json.String (match c.c_kind with `Deposit -> "deposit" | `Withdrawal -> "withdrawal"));
      ("src_tx", Json.String c.c_src_tx);
      ("dst_tx", Json.String c.c_dst_tx);
      ("id", Json.Int c.c_id);
      ("amount", Json.String c.c_amount);
      ("token", Json.String c.c_token);
      ("beneficiary", Json.String c.c_beneficiary);
      ("usd_value", Json.Float c.c_usd_value);
      ("start_ts", Json.Int c.c_start_ts);
      ("end_ts", Json.Int c.c_end_ts);
      ("latency_seconds", Json.Int (cctx_latency c));
    ]

let acc_rows_json t =
  (* Appended only when the report carries accounting evidence, keeping
     pre-PR-10 JSON output byte-stable. *)
  if total_acc_hits t = 0 then []
  else
    [
      ( "accounting",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("class", Json.String (acc_class_name r.xr_class));
                   ("rule", Json.String r.xr_rule);
                   ( "hits",
                     Json.List
                       (List.map
                          (fun h ->
                            Json.Obj
                              [
                                ("tx_hash", Json.String h.ah_tx_hash);
                                ("chain_id", Json.Int h.ah_chain_id);
                                ("id", Json.Int h.ah_id);
                                ("usd_value", Json.Float h.ah_usd_value);
                                ("detail", Json.String h.ah_detail);
                              ])
                          r.xr_hits) );
                 ])
             t.acc_rows) );
    ]

let to_json t =
  Json.Obj
    ([
      ("bridge", Json.String t.bridge_name);
      ("total_facts", Json.Int t.total_facts);
      ( "rules",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("rule", Json.String r.rr_rule);
                   ("captured", Json.Int r.rr_captured);
                   ("anomalies", Json.List (List.map anomaly_to_json r.rr_anomalies));
                 ])
             t.rows) );
      ( "attacks",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("class", Json.String (attack_class_name r.ar_class));
                   ("rule", Json.String r.ar_rule);
                   ( "hits",
                     Json.List
                       (List.map
                          (fun h ->
                            Json.Obj
                              [
                                ("tx_hash", Json.String h.ah_tx_hash);
                                ("chain_id", Json.Int h.ah_chain_id);
                                ("id", Json.Int h.ah_id);
                                ("usd_value", Json.Float h.ah_usd_value);
                                ("detail", Json.String h.ah_detail);
                              ])
                          r.ar_hits) );
                 ])
             t.attack_rows) );
      ("cctxs", Json.List (List.map cctx_to_json t.cctxs));
    ]
    @ acc_rows_json t)

(** The labeled cross-chain transaction dataset (paper contribution 2)
    as a JSON string. *)
let dataset_json t = Json.to_string (Json.Obj [ ("cctxs", Json.List (List.map cctx_to_json t.cctxs)) ])

(** The same dataset as CSV (one row per cctx, header included). *)
let dataset_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "kind,src_tx,dst_tx,id,amount,token,beneficiary,usd_value,start_ts,end_ts,latency_seconds\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%d,%s,%s,%s,%.2f,%d,%d,%d\n"
           (match c.c_kind with `Deposit -> "deposit" | `Withdrawal -> "withdrawal")
           c.c_src_tx c.c_dst_tx c.c_id c.c_amount c.c_token c.c_beneficiary
           c.c_usd_value c.c_start_ts c.c_end_ts (cctx_latency c)))
    t.cctxs;
  Buffer.contents buf
