(** Streaming anomaly monitoring.

    The paper's central motivation (Figure 1) is observability: the
    Ronin team noticed the March 2022 attack six days late, and even in
    2024 a bridge pause took ~40 minutes.  This module runs
    XChainWatcher continuously: it is fed block cursors as chains
    advance, decodes only the receipts it has not seen yet (decoding
    dominates cost — Table 2), re-evaluates the rules, and emits alerts
    for anomalies that were not present at the previous poll.

    Steady-state evaluation is incremental: the monitor keeps one
    persistent [Engine.db] across polls, loads only the freshly decoded
    facts, and lets [Engine.run_incremental] treat them as the initial
    semi-naive delta — strata untouched by the new facts do no work,
    and the non-monotonic anomaly relations (an "unmatched" deposit
    becomes matched when its completion lands) are retracted and
    re-derived in place.  Per-poll cost is therefore proportional to
    the new blocks, not to the full history (see the
    [monitor_steady_state] bench).  [create ~incremental:false] keeps
    the original rebuild-everything behaviour for comparison.

    The monitor degrades gracefully under RPC faults (see
    {!Xcw_rpc.Fault}): a receipt whose fetch or decode fails stays
    pending — the cursor never advances past unfetched data, so there
    are no silent gaps — and is retried at the next poll; a failed
    head observation skips the side for the poll and surfaces through
    {!health} instead of raising; a reorg signal rewinds the cursor
    past the replaced blocks and rebuilds the database through the
    engine's retraction path.  Alerts are only emitted from synced
    polls (every receipt within the requested cursors decoded), so
    transient one-sided views never cause spurious or missing
    alerts relative to a fault-free run — the differential property
    checked in [test_fault.ml]. *)

module Chain = Xcw_chain.Chain
module Types = Xcw_evm.Types
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client
module Engine = Xcw_datalog.Engine
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span

type alert = {
  al_seq : int;  (** monotone per-monitor sequence number (from 1) *)
  al_anomaly : Report.anomaly;
  al_rule : string;  (** the rule row that flagged it *)
  al_detected_at : int * int;  (** (source block, target block) cursor *)
}

(* ------------------------------------------------------------------ *)
(* Durable checkpoint handle                                           *)

module Checkpoint = struct
  module Store = Xcw_store.Store
  module Codec = Xcw_store.Codec

  type t = {
    ck_store : Store.t;
    ck_sym : Xcw_store.Symmap.t;
    ck_every : int;
    mutable ck_recovered : Store.recovered option;
  }

  let open_ ?crash ?(snapshot_every = 8) ~dir () =
    let store, recovered = Store.open_ ?crash ~dir () in
    {
      ck_store = store;
      ck_sym = Xcw_store.Symmap.create ();
      ck_every = snapshot_every;
      ck_recovered = Some recovered;
    }

  let store t = t.ck_store
  let close t = Store.close t.ck_store

  let consume t =
    match t.ck_recovered with
    | Some r ->
        t.ck_recovered <- None;
        r
    | None -> invalid_arg "Monitor.Checkpoint: already attached to a monitor"

  (* The class list fixes the wire tags; order is append-only. *)
  let anomaly_classes =
    Report.
      [
        Phishing_token_transfer; Direct_transfer_to_bridge;
        Unparseable_beneficiary; Failed_exploit_attempt; Event_without_escrow;
        Finality_violation; Token_mapping_violation; Invalid_beneficiary_fp;
        No_correspondence; Pre_window_fp;
        (* PR 10: exit-bridge accounting classes, tags 10-14. *)
        Accounting Stale_root_claim; Accounting Forged_exit_proof;
        Accounting Root_divergence; Accounting Exit_net_outflow;
        Accounting Slashing_evasion;
      ]

  let class_tag c =
    let rec go i = function
      | [] -> assert false
      | c' :: tl -> if c' = c then i else go (i + 1) tl
    in
    go 0 anomaly_classes

  let class_of_tag tag =
    match List.nth_opt anomaly_classes tag with
    | Some c -> c
    | None ->
        raise (Codec.R.Corrupt (Printf.sprintf "anomaly class tag %d" tag))

  let put_anomaly b (a : Report.anomaly) =
    Codec.W.int b (class_tag a.Report.a_class);
    Codec.W.str b a.Report.a_tx_hash;
    Codec.W.int b a.Report.a_chain_id;
    Codec.W.float b a.Report.a_usd_value;
    Codec.W.str b a.Report.a_detail

  let get_anomaly r =
    let a_class = class_of_tag (Codec.R.int r) in
    let a_tx_hash = Codec.R.str r in
    let a_chain_id = Codec.R.int r in
    let a_usd_value = Codec.R.float r in
    let a_detail = Codec.R.str r in
    { Report.a_class; a_tx_hash; a_chain_id; a_usd_value; a_detail }

  let put_alert b (al : alert) =
    Codec.W.int b al.al_seq;
    Codec.W.str b al.al_rule;
    put_anomaly b al.al_anomaly;
    let sb, tb = al.al_detected_at in
    Codec.W.int b sb;
    Codec.W.int b tb

  let get_alert r =
    let al_seq = Codec.R.int r in
    let al_rule = Codec.R.str r in
    let al_anomaly = get_anomaly r in
    let sb = Codec.R.int r in
    let tb = Codec.R.int r in
    { al_seq; al_anomaly; al_rule; al_detected_at = (sb, tb) }
end

(* ------------------------------------------------------------------ *)
(* Receipt cursor                                                      *)

(* A plain "receipts decoded so far" counter is wrong when the receipt
   list is not strictly block-ordered: filtering the suffix by
   [r_block_number <= up_to_block] and then advancing the counter by
   the number of matches silently skips — forever — any receipt that
   sits below the counter but above the block cursor.  The cursor
   therefore tracks the fully-decoded prefix plus the exact set of
   decoded indices beyond it. *)
module Cursor = struct
  type t = {
    mutable c_prefix : int;  (** receipts [0, c_prefix) are decoded *)
    c_decoded : (int, unit) Hashtbl.t;  (** decoded indices >= prefix *)
  }

  let create () = { c_prefix = 0; c_decoded = Hashtbl.create 16 }

  let normalize t =
    while Hashtbl.mem t.c_decoded t.c_prefix do
      Hashtbl.remove t.c_decoded t.c_prefix;
      t.c_prefix <- t.c_prefix + 1
    done

  let is_decoded t i = i < t.c_prefix || Hashtbl.mem t.c_decoded i

  (** Not-yet-decoded indices (ascending) whose block is within the
      cursor; does not mark anything. *)
  let candidates t ~block_of ~len ~up_to =
    let out = ref [] in
    for i = t.c_prefix to len - 1 do
      if (not (Hashtbl.mem t.c_decoded i)) && block_of i <= up_to then
        out := i :: !out
    done;
    List.rev !out

  let mark t i =
    if i >= t.c_prefix then begin
      Hashtbl.replace t.c_decoded i ();
      normalize t
    end

  (** [take t ~block_of ~len ~up_to] returns the indices (ascending) of
      receipts that are not yet decoded and whose block is within the
      cursor, marking them decoded. *)
  let take t ~block_of ~len ~up_to =
    let fresh = candidates t ~block_of ~len ~up_to in
    List.iter (fun i -> Hashtbl.replace t.c_decoded i ()) fresh;
    normalize t;
    fresh

  (** Forget every decoded index whose block is above [above] — the
      reorg rewind: those receipts will be decoded again when the
      (possibly different) replacement blocks are served. *)
  let rewind t ~block_of ~above =
    let decoded = ref [] in
    for i = 0 to t.c_prefix - 1 do
      decoded := i :: !decoded
    done;
    Hashtbl.iter (fun i () -> decoded := i :: !decoded) t.c_decoded;
    Hashtbl.reset t.c_decoded;
    t.c_prefix <- 0;
    List.iter
      (fun i -> if block_of i <= above then Hashtbl.replace t.c_decoded i ())
      !decoded;
    normalize t

  let decoded_count t = t.c_prefix + Hashtbl.length t.c_decoded
end

(* ------------------------------------------------------------------ *)

(* Everything decoded from one receipt, kept so a reorg rewind can
   rebuild the database and the report's decode errors from scratch. *)
type entry = {
  e_block : int;
  e_facts : Facts.t list;
  e_errors : Decoder.decode_error list;
  e_trace_gap : bool;
}

type side = {
  sd_chain : Chain.t;
  sd_role : Decoder.chain_role;
  sd_client : Client.t;
  sd_cursor : Cursor.t;
  sd_entries : (int, entry) Hashtbl.t;  (** receipt index -> decode *)
  mutable sd_requested : int;  (** highest block cursor ever requested *)
}

type health = {
  h_synced : bool;
      (** every receipt within the requested cursors is decoded *)
  h_pending_source : int;  (** receipts awaiting (re)decode on S *)
  h_pending_target : int;
  h_trace_gaps : int;  (** receipts decoded without the call tracer *)
  h_give_ups : int;  (** client requests that exhausted retries *)
  h_reorgs : int;  (** reorg signals handled *)
  h_last_error : string option;  (** most recent RPC failure seen *)
}

(* Monitor-level instruments, resolved once at creation. *)
type monitor_obs = {
  mo_reg : Metrics.t;
  mo_polls : Metrics.Counter.t;
  mo_alerts : Metrics.Counter.t;
  mo_reorgs : Metrics.Counter.t;
  mo_poll_seconds : Metrics.Histogram.t;
  mo_synced : Metrics.Gauge.t;
  mo_pending_src : Metrics.Gauge.t;
  mo_pending_dst : Metrics.Gauge.t;
  mo_facts : Metrics.Gauge.t;
}

type t = {
  m_input : Detector.input;
  m_src : side;
  m_dst : side;
  m_incremental : bool;
  m_metrics : Metrics.t;
  m_obs : monitor_obs;
  (* Persistent Datalog database for incremental evaluation; config
     facts are pre-loaded.  Replaced wholesale after a reorg rewind. *)
  mutable m_db : Engine.db;
  (* Anomaly keys already alerted: (rule, class name, tx hash). *)
  m_known : (string * string * string, unit) Hashtbl.t;
  mutable m_polls : int;
  mutable m_last_report : Report.t option;
  mutable m_reorgs : int;
  mutable m_last_error : string option;
  (* Durable-state extension (PR 9): per-poll WAL + snapshots. *)
  m_ckpt : Checkpoint.t option;
  mutable m_seq : int;  (** last alert sequence number assigned *)
  mutable m_replay : alert list;
      (** alerts of the most recent durable WAL record — after recovery,
          the tail a consumer must dedup by [al_seq] *)
}

let make_side ~input ~role ~chain ~profile ~fault ~endpoint_faults ~seed
    ~metrics =
  {
    sd_chain = chain;
    sd_role = role;
    sd_client =
      (* Same construction as the batch detector: single endpoint, or a
         Byzantine-tolerant quorum pool when i_endpoints > 1.  The
         cursor then only ever advances past quorum-verified data, and
         a degraded quorum (refusals) keeps receipts pending — the
         synced-only alerting path of PR 2 applies unchanged. *)
      Detector.build_client ~metrics ~profile ~seed
        ~policy:input.Detector.i_client_policy
        ~endpoints:input.Detector.i_endpoints ~quorum:input.Detector.i_quorum
        ~fault ~endpoint_faults chain;
    sd_cursor = Cursor.create ();
    sd_entries = Hashtbl.create 64;
    sd_requested = 0;
  }

let make_obs reg =
  {
    mo_reg = reg;
    mo_polls = Metrics.counter reg "xcw_monitor_polls_total";
    mo_alerts = Metrics.counter reg "xcw_monitor_alerts_total";
    mo_reorgs = Metrics.counter reg "xcw_monitor_reorgs_total";
    mo_poll_seconds = Metrics.histogram reg "xcw_monitor_poll_seconds";
    mo_synced = Metrics.gauge reg "xcw_monitor_synced";
    mo_pending_src =
      Metrics.gauge reg ~labels:[ ("side", "source") ] "xcw_monitor_pending";
    mo_pending_dst =
      Metrics.gauge reg ~labels:[ ("side", "target") ] "xcw_monitor_pending";
    mo_facts = Metrics.gauge reg "xcw_monitor_facts_cached";
  }

let sorted_entries s =
  Hashtbl.fold (fun i e acc -> (i, e) :: acc) s.sd_entries []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(* Facts of every decoded receipt, source side first, receipt order —
   the same order the batch detector produces them in. *)
let all_entry_facts t =
  List.concat_map (fun e -> e.e_facts) (sorted_entries t.m_src)
  @ List.concat_map (fun e -> e.e_facts) (sorted_entries t.m_dst)

let all_decode_errors t =
  List.concat_map (fun e -> e.e_errors) (sorted_entries t.m_src)
  @ List.concat_map (fun e -> e.e_errors) (sorted_entries t.m_dst)

(* ------------------------------------------------------------------ *)
(* Durable state codec                                                 *)

(* WAL record layout (one per poll), after the symbol section:
   polls, reorgs, last_error, seq, then per side (source first)
   the requested cursor + removed entry indices + added entries, then
   the alerts emitted by the poll.  Snapshots reuse the same side
   codec with removed = [] and added = every entry, and add the
   already-alerted key set.  Fact tuples go through the store-local
   {!Xcw_store.Symmap} so persisted cells re-pack identically no
   matter what the process intern table looks like after restart. *)

module CW = Xcw_store.Codec.W
module CR = Xcw_store.Codec.R
module Symmap = Xcw_store.Symmap

let put_fact sym b fact =
  let pred, tuple = Facts.to_packed fact in
  CW.int b (Symmap.encode_cell sym (Xcw_datalog.Ast.pack_string pred));
  CW.int b (Array.length tuple);
  Array.iter (fun c -> CW.int b (Symmap.encode_cell sym c)) tuple

let get_fact sym r =
  let pred =
    match Xcw_datalog.Ast.unpack (Symmap.decode_cell sym (CR.int r)) with
    | Xcw_datalog.Ast.Str s -> s
    | Xcw_datalog.Ast.Int _ -> raise (CR.Corrupt "fact predicate is an int")
  in
  let n = CR.int r in
  if n < 0 || n > 64 then raise (CR.Corrupt "fact arity out of range");
  let tuple = Array.make n 0 in
  for i = 0 to n - 1 do
    tuple.(i) <- Symmap.decode_cell sym (CR.int r)
  done;
  match Facts.of_packed pred tuple with
  | Some f -> f
  | None -> raise (CR.Corrupt ("fact layout for relation " ^ pred))

let put_error b (e : Decoder.decode_error) =
  CW.str b e.Decoder.err_tx_hash;
  CW.int b e.Decoder.err_chain_id;
  CW.int b e.Decoder.err_event_index;
  CW.str b e.Decoder.err_detail;
  match e.Decoder.err_withdrawal_id with
  | None -> CW.bool b false
  | Some w ->
      CW.bool b true;
      CW.int b w

let get_error r =
  let err_tx_hash = CR.str r in
  let err_chain_id = CR.int r in
  let err_event_index = CR.int r in
  let err_detail = CR.str r in
  let err_withdrawal_id = if CR.bool r then Some (CR.int r) else None in
  { Decoder.err_tx_hash; err_chain_id; err_event_index; err_detail;
    err_withdrawal_id }

let put_entry sym b (i, e) =
  CW.int b i;
  CW.int b e.e_block;
  CW.list b (put_fact sym b) e.e_facts;
  CW.list b (put_error b) e.e_errors;
  CW.bool b e.e_trace_gap

let get_entry sym r =
  let i = CR.int r in
  let e_block = CR.int r in
  let e_facts = CR.list r (fun () -> get_fact sym r) in
  let e_errors = CR.list r (fun () -> get_error r) in
  let e_trace_gap = CR.bool r in
  (i, { e_block; e_facts; e_errors; e_trace_gap })

let put_side sym b s ~removed ~added =
  CW.int b s.sd_requested;
  CW.list b (CW.int b) removed;
  CW.list b (put_entry sym b) added

let apply_side sym r s =
  s.sd_requested <- CR.int r;
  let removed = CR.list r (fun () -> CR.int r) in
  List.iter (Hashtbl.remove s.sd_entries) removed;
  let added = CR.list r (fun () -> get_entry sym r) in
  List.iter (fun (i, e) -> Hashtbl.replace s.sd_entries i e) added;
  (List.length removed, added)

(* Shared core of WAL records and snapshots; [known] distinguishes
   them (a record's m_known additions are exactly its alerts). *)
let put_state t ck b ~src ~dst ~alerts ~known =
  CW.int b t.m_polls;
  CW.int b t.m_reorgs;
  CW.opt_str b t.m_last_error;
  CW.int b t.m_seq;
  let src_removed, src_added = src and dst_removed, dst_added = dst in
  put_side ck.Checkpoint.ck_sym b t.m_src ~removed:src_removed ~added:src_added;
  put_side ck.Checkpoint.ck_sym b t.m_dst ~removed:dst_removed ~added:dst_added;
  CW.list b (Checkpoint.put_alert b) alerts;
  match known with
  | None -> CW.bool b false
  | Some keys ->
      CW.bool b true;
      CW.list b
        (fun (ru, cl, tx) ->
          CW.str b ru;
          CW.str b cl;
          CW.str b tx)
        keys

(* Returns the record's rewind-removal count and added entries (source
   first, record order) so recovery can replay the WAL tail as an
   ordinary incremental delta — or detect that a rewind invalidated the
   snapshot's restored fixpoint. *)
let apply_state t ck r =
  t.m_polls <- CR.int r;
  t.m_reorgs <- CR.int r;
  t.m_last_error <- CR.opt_str r;
  t.m_seq <- CR.int r;
  let src_removed, src_added = apply_side ck.Checkpoint.ck_sym r t.m_src in
  let dst_removed, dst_added = apply_side ck.Checkpoint.ck_sym r t.m_dst in
  let alerts = CR.list r (fun () -> Checkpoint.get_alert r) in
  t.m_replay <- alerts;
  (* A record's already-alerted additions are its alerts; a snapshot
     carries the full key set explicitly. *)
  List.iter
    (fun al ->
      Hashtbl.replace t.m_known
        ( al.al_rule,
          Report.class_name al.al_anomaly.Report.a_class,
          al.al_anomaly.Report.a_tx_hash )
        ())
    alerts;
  if CR.bool r then
    List.iter
      (fun key -> Hashtbl.replace t.m_known key ())
      (CR.list r (fun () ->
           let ru = CR.str r in
           let cl = CR.str r in
           let tx = CR.str r in
           (ru, cl, tx)));
  (src_removed + dst_removed, src_added @ dst_added)

(* Frame a payload: the strings newly assigned to store ids while
   encoding the body must precede the body, so the decoder can bind
   them before the first cell that uses them. *)
let with_symbols ck ~all body =
  let sym = ck.Checkpoint.ck_sym in
  let syms = if all then Symmap.dump sym else Symmap.take_fresh sym in
  if all then ignore (Symmap.take_fresh sym);
  let b = CW.create () in
  CW.list b (CW.str b) syms;
  Buffer.add_buffer b body;
  Buffer.contents b

(* Snapshots additionally persist the engine-derived tuples, so
   recovery can graft them back via {!Engine.restore_fixpoint} instead
   of re-deriving every rule over the reloaded history. *)
let put_tuple sym b tuple =
  CW.int b (Array.length tuple);
  Array.iter (fun c -> CW.int b (Symmap.encode_cell sym c)) tuple

let get_tuple sym r =
  let n = CR.int r in
  if n < 0 || n > 64 then raise (CR.Corrupt "derived tuple arity out of range");
  let tuple = Array.make n 0 in
  for i = 0 to n - 1 do
    tuple.(i) <- Symmap.decode_cell sym (CR.int r)
  done;
  tuple

let put_derived sym b db =
  CW.list b
    (fun pred ->
      CW.int b (Symmap.encode_cell sym (Xcw_datalog.Ast.pack_string pred));
      CW.list b (put_tuple sym b) (Engine.packed_facts db pred))
    (Engine.derived_predicates db)

let get_derived sym r =
  CR.list r (fun () ->
      let pred =
        match Xcw_datalog.Ast.unpack (Symmap.decode_cell sym (CR.int r)) with
        | Xcw_datalog.Ast.Str s -> s
        | Xcw_datalog.Ast.Int _ ->
            raise (CR.Corrupt "derived predicate is an int")
      in
      (pred, CR.list r (fun () -> get_tuple sym r)))

let encode_record t ck ~src ~dst ~alerts =
  let body = CW.create () in
  put_state t ck body ~src ~dst ~alerts ~known:None;
  with_symbols ck ~all:false body

let encode_snapshot t ck =
  let body = CW.create () in
  let full s =
    ( [],
      Hashtbl.fold (fun i e acc -> (i, e) :: acc) s.sd_entries []
      |> List.sort (fun (a, _) (b, _) -> compare a b) )
  in
  let known = Hashtbl.fold (fun k () acc -> k :: acc) t.m_known [] in
  put_state t ck body ~src:(full t.m_src) ~dst:(full t.m_dst)
    ~alerts:t.m_replay ~known:(Some (List.sort compare known));
  put_derived ck.Checkpoint.ck_sym body t.m_db;
  with_symbols ck ~all:true body

(* Returns the applied record's (rewind removals, added-entry facts)
   plus the reader, positioned after the state body so snapshot
   recovery can continue into the derived-tuple section. *)
let apply_payload t ck payload =
  let r = CR.of_string payload in
  List.iter
    (Symmap.register ck.Checkpoint.ck_sym)
    (CR.list r (fun () -> CR.str r));
  let removed, added = apply_state t ck r in
  (removed, List.concat_map (fun (_i, e) -> e.e_facts) added, r)

let recover t ck =
  let { Xcw_store.Store.r_snapshot; r_records; r_truncated_bytes = _ } =
    Checkpoint.consume ck
  in
  let restored_fixpoint =
    match r_snapshot with
    | None -> false
    | Some p ->
        let _, _, r = apply_payload t ck p in
        let derived = get_derived ck.Checkpoint.ck_sym r in
        (* The snapshot's entries are the EDB of a persisted fixpoint:
           load them, graft the derived tuples back, and declare the
           database evaluated — the WAL tail and the next poll then run
           as ordinary incremental deltas instead of re-deriving every
           rule over the reloaded history. *)
        ignore (Facts.load_all t.m_db (all_entry_facts t));
        Engine.restore_fixpoint t.m_db ~derived;
        true
  in
  let tail_removed = ref 0 in
  List.iter
    (fun (_idx, p) ->
      let removed, added_facts, _r = apply_payload t ck p in
      tail_removed := !tail_removed + removed;
      if restored_fixpoint then ignore (Facts.load_all t.m_db added_facts))
    r_records;
  (* The cursor invariant is "decoded set = entry keys": rebuild it
     from the restored entries rather than replaying cursor motion. *)
  let rebuild s = Hashtbl.iter (fun i _ -> Cursor.mark s.sd_cursor i) s.sd_entries in
  rebuild t.m_src;
  rebuild t.m_dst;
  if restored_fixpoint && !tail_removed > 0 then begin
    (* A reorg rewind in the WAL tail retracted part of the restored
       fixpoint: fall back to the post-reorg rebuild path — fresh
       database, full reload, next poll re-derives from scratch. *)
    let db = Engine.create_db () in
    ignore (Facts.load_all db (Config.to_facts t.m_input.Detector.i_config));
    ignore (Facts.load_all db (all_entry_facts t));
    t.m_db <- db
  end
  else if not restored_fixpoint then
    (* No snapshot: refill the fresh database; the next poll's
       [run_incremental] treats the reload as its initial delta and
       re-derives everything, exactly like the post-reorg rebuild. *)
    ignore (Facts.load_all t.m_db (all_entry_facts t))

let create ?(incremental = true) ?metrics ?checkpoint (input : Detector.input)
    : t =
  Engine.recommended_gc_setup ();
  let metrics =
    match metrics with Some m -> m | None -> Metrics.default ()
  in
  let db = Engine.create_db () in
  ignore (Facts.load_all db (Config.to_facts input.Detector.i_config));
  let t =
    {
      m_input = input;
      m_src =
        make_side ~input ~role:Decoder.Source
          ~chain:input.Detector.i_source_chain
          ~profile:input.Detector.i_source_profile
          ~fault:input.Detector.i_source_fault
          ~endpoint_faults:input.Detector.i_source_endpoint_faults
          ~seed:input.Detector.i_rpc_seed ~metrics;
      m_dst =
        make_side ~input ~role:Decoder.Target
          ~chain:input.Detector.i_target_chain
          ~profile:input.Detector.i_target_profile
          ~fault:input.Detector.i_target_fault
          ~endpoint_faults:input.Detector.i_target_endpoint_faults
          ~seed:(input.Detector.i_rpc_seed + 1) ~metrics;
      m_incremental = incremental;
      m_metrics = metrics;
      m_obs = make_obs metrics;
      m_db = db;
      m_known = Hashtbl.create 256;
      m_polls = 0;
      m_last_report = None;
      m_reorgs = 0;
      m_last_error = None;
      m_ckpt = checkpoint;
      m_seq = 0;
      m_replay = [];
    }
  in
  (match checkpoint with None -> () | Some ck -> recover t ck);
  t

let block_of_receipts receipts i = receipts.(i).Types.r_block_number

let pending_count s =
  let receipts = Array.of_list (Chain.all_receipts s.sd_chain) in
  Cursor.candidates s.sd_cursor
    ~block_of:(block_of_receipts receipts)
    ~len:(Array.length receipts) ~up_to:s.sd_requested
  |> List.length

(* Advance one side: observe the node's head (which may lag or signal a
   reorg), rewind on reorg, then decode every not-yet-decoded receipt
   the node can currently serve.  Receipts whose fetch or decode fails
   stay unmarked and are retried next poll — the cursor never moves
   past data we do not have.  Returns the freshly decoded facts,
   whether a rewind invalidated previously loaded facts, and the
   removed/added entry delta for the durable WAL record. *)
let poll_side t s ~up_to_block =
  s.sd_requested <- max s.sd_requested up_to_block;
  let head_resp = Client.observe_head s.sd_client ~head:up_to_block in
  match head_resp.Rpc.value with
  | Error e ->
      t.m_last_error <- Some (Rpc.error_to_string e);
      ([], false, [], [])
  | Ok hv ->
      let receipts = Array.of_list (Chain.all_receipts s.sd_chain) in
      let block_of = block_of_receipts receipts in
      let rewound, removed =
        match hv.Rpc.hv_reorged_to with
        | None -> (false, [])
        | Some surviving ->
            t.m_reorgs <- t.m_reorgs + 1;
            Metrics.Counter.inc t.m_obs.mo_reorgs;
            let dropped =
              Hashtbl.fold
                (fun i e acc -> if e.e_block > surviving then i :: acc else acc)
                s.sd_entries []
            in
            if dropped = [] then (false, [])
            else begin
              List.iter (Hashtbl.remove s.sd_entries) dropped;
              Cursor.rewind s.sd_cursor ~block_of ~above:surviving;
              (true, dropped)
            end
      in
      let chain_id = s.sd_chain.Chain.chain_id in
      let added = ref [] in
      let fresh =
        Cursor.candidates s.sd_cursor ~block_of ~len:(Array.length receipts)
          ~up_to:hv.Rpc.hv_head
        |> List.concat_map (fun i ->
               let r = receipts.(i) in
               let fetch = Client.get_receipt s.sd_client r.Types.r_tx_hash in
               match fetch.Rpc.value with
               | Error e ->
                   t.m_last_error <- Some (Rpc.error_to_string e);
                   []
               | Ok _ -> (
                   match
                     Decoder.decode_receipt t.m_input.Detector.i_plugin
                       t.m_input.Detector.i_config ~role:s.sd_role ~chain_id
                       s.sd_client r
                   with
                   | Error e ->
                       t.m_last_error <- Some (Rpc.error_to_string e);
                       []
                   | Ok rd ->
                       Cursor.mark s.sd_cursor i;
                       let entry =
                         {
                           e_block = r.Types.r_block_number;
                           e_facts = rd.Decoder.rd_facts;
                           e_errors = rd.Decoder.rd_errors;
                           e_trace_gap = rd.Decoder.rd_trace_gap;
                         }
                       in
                       Hashtbl.replace s.sd_entries i entry;
                       added := (i, entry) :: !added;
                       rd.Decoder.rd_facts))
      in
      (fresh, rewound, removed, List.rev !added)

(** Advance the monitor to the given block cursors; returns alerts for
    anomalies that appeared since the previous poll.  Under fault
    injection a poll may return no alerts simply because one side is
    behind — consult {!health}; the alerts arrive once the monitor
    catches up. *)
let rec poll t ~source_block ~target_block : alert list =
  t.m_polls <- t.m_polls + 1;
  let obs = t.m_obs in
  Metrics.Counter.inc obs.mo_polls;
  let live = Metrics.enabled obs.mo_reg in
  let t0 = if live then Unix.gettimeofday () else 0. in
  let alerts =
    Span.with_
      ~attrs:
        [
          ("source_block", string_of_int source_block);
          ("target_block", string_of_int target_block);
        ]
      "monitor.poll"
      (fun () -> poll_body t ~source_block ~target_block)
  in
  if live then begin
    Metrics.Histogram.observe obs.mo_poll_seconds (Unix.gettimeofday () -. t0);
    let ps = pending_count t.m_src and pd = pending_count t.m_dst in
    Metrics.Gauge.set obs.mo_pending_src (float_of_int ps);
    Metrics.Gauge.set obs.mo_pending_dst (float_of_int pd);
    Metrics.Gauge.set obs.mo_synced (if ps = 0 && pd = 0 then 1. else 0.);
    (* Count without materializing the (large) concatenated fact list. *)
    let side_facts s =
      Hashtbl.fold (fun _ e acc -> acc + List.length e.e_facts) s.sd_entries 0
    in
    Metrics.Gauge.set obs.mo_facts
      (float_of_int (side_facts t.m_src + side_facts t.m_dst))
  end;
  Metrics.Counter.add obs.mo_alerts (List.length alerts);
  alerts

and poll_body t ~source_block ~target_block : alert list =
  let src_fresh, src_rewound, src_removed, src_added =
    poll_side t t.m_src ~up_to_block:source_block
  in
  let dst_fresh, dst_rewound, dst_removed, dst_added =
    poll_side t t.m_dst ~up_to_block:target_block
  in
  let rewound = src_rewound || dst_rewound in
  let fresh_facts = src_fresh @ dst_fresh in
  let db =
    if t.m_incremental then begin
      if rewound then begin
        (* Facts from replaced blocks are gone: rebuild the persistent
           database from the surviving entries; the next
           [run_incremental] re-derives everything (first run on a
           fresh database evaluates from scratch). *)
        let db = Engine.create_db () in
        ignore
          (Facts.load_all db (Config.to_facts t.m_input.Detector.i_config));
        ignore (Facts.load_all db (all_entry_facts t));
        t.m_db <- db
      end
      else
        (* Load only the delta; strata unaffected by the fresh facts
           are skipped by the engine. *)
        ignore (Facts.load_all t.m_db fresh_facts);
      ignore
        (Engine.run_incremental ~metrics:t.m_metrics
           ~ndomains:t.m_input.Detector.i_ndomains
           ~aggregates:Rules.aggregates t.m_db t.m_input.Detector.i_program);
      t.m_db
    end
    else begin
      (* From-scratch reference mode: rebuild the full database. *)
      let db = Engine.create_db () in
      ignore (Facts.load_all db (Config.to_facts t.m_input.Detector.i_config));
      ignore (Facts.load_all db (all_entry_facts t));
      ignore
        (Engine.run ~metrics:t.m_metrics
           ~ndomains:t.m_input.Detector.i_ndomains
           ~aggregates:Rules.aggregates db t.m_input.Detector.i_program);
      db
    end
  in
  (* Reuse the detector's dissection logic by running it over a
     pre-decoded snapshot: the detector decodes chains itself, so here
     we rebuild only the classification layer via a lightweight
     re-dissection. *)
  (* Match the detector's [total_facts] semantics — the EDB loaded into
     the engine, not the post-evaluation tuple count (the incremental
     db also carries every derived tuple at this point). *)
  let total_facts =
    List.fold_left
      (fun acc p -> acc - Engine.fact_count db p)
      (Engine.total_tuples db) (Engine.derived_predicates db)
  in
  let report =
    Dissect.dissect ~label:t.m_input.Detector.i_label
      ~config:t.m_input.Detector.i_config ~pricing:t.m_input.Detector.i_pricing
      ~first_window_withdrawal_id:t.m_input.Detector.i_first_window_withdrawal_id
      ~decode_errors:(all_decode_errors t) ~db ~total_facts ()
  in
  t.m_last_report <- Some report;
  (* Only a synced poll emits alerts: when a side is behind (faults,
     head lag), the report reflects a partial cross-chain view whose
     transient unmatched anomalies would both false-alert now and
     poison [m_known] against the real alert later.  Clean runs are
     always synced, so this changes nothing fault-free. *)
  let alerts =
    if pending_count t.m_src > 0 || pending_count t.m_dst > 0 then []
    else begin
      let fresh = ref [] in
      List.iter
        (fun row ->
          List.iter
            (fun a ->
              let key =
                ( row.Report.rr_rule,
                  Report.class_name a.Report.a_class,
                  a.Report.a_tx_hash )
              in
              if not (Hashtbl.mem t.m_known key) then begin
                Hashtbl.replace t.m_known key ();
                t.m_seq <- t.m_seq + 1;
                fresh :=
                  {
                    al_seq = t.m_seq;
                    al_anomaly = a;
                    al_rule = row.Report.rr_rule;
                    al_detected_at = (source_block, target_block);
                  }
                  :: !fresh
              end)
            row.Report.rr_anomalies)
        report.Report.rows;
      (* Accounting rows alert through the same dedup/sequence machinery:
         a hit becomes an anomaly of class [Accounting xr_class], keyed
         by its accounting relation. *)
      List.iter
        (fun row ->
          List.iter
            (fun h ->
              let cls = Report.Accounting row.Report.xr_class in
              let key =
                ( row.Report.xr_rule,
                  Report.class_name cls,
                  h.Report.ah_tx_hash )
              in
              if not (Hashtbl.mem t.m_known key) then begin
                Hashtbl.replace t.m_known key ();
                t.m_seq <- t.m_seq + 1;
                fresh :=
                  {
                    al_seq = t.m_seq;
                    al_anomaly =
                      {
                        Report.a_class = cls;
                        a_tx_hash = h.Report.ah_tx_hash;
                        a_chain_id = h.Report.ah_chain_id;
                        a_usd_value = h.Report.ah_usd_value;
                        a_detail = h.Report.ah_detail;
                      };
                    al_rule = row.Report.xr_rule;
                    al_detected_at = (source_block, target_block);
                  }
                  :: !fresh
              end)
            row.Report.xr_hits)
        report.Report.acc_rows;
      List.rev !fresh
    end
  in
  (* Durability point: the record (cursor delta + alert seqs) hits the
     WAL before the alerts are released to the caller, so a crash can
     only lose alerts the caller never saw — recovery re-offers the
     last record's alerts through {!replayed} and the caller dedups by
     [al_seq], which is exactly-once emission across the crash. *)
  (match t.m_ckpt with
  | None -> ()
  | Some ck ->
      let payload =
        encode_record t ck
          ~src:(src_removed, src_added)
          ~dst:(dst_removed, dst_added)
          ~alerts
      in
      ignore (Xcw_store.Store.append ck.Checkpoint.ck_store payload);
      t.m_replay <- alerts;
      if
        ck.Checkpoint.ck_every > 0
        && t.m_polls mod ck.Checkpoint.ck_every = 0
      then
        Xcw_store.Store.snapshot ck.Checkpoint.ck_store (encode_snapshot t ck));
  alerts

let health t =
  let pending_src = pending_count t.m_src in
  let pending_dst = pending_count t.m_dst in
  let trace_gaps s =
    Hashtbl.fold (fun _ e n -> if e.e_trace_gap then n + 1 else n) s.sd_entries 0
  in
  let give_ups s = (Client.stats s.sd_client).Client.s_give_ups in
  {
    h_synced = pending_src = 0 && pending_dst = 0;
    h_pending_source = pending_src;
    h_pending_target = pending_dst;
    h_trace_gaps = trace_gaps t.m_src + trace_gaps t.m_dst;
    h_give_ups = give_ups t.m_src + give_ups t.m_dst;
    h_reorgs = t.m_reorgs;
    h_last_error = t.m_last_error;
  }

let pools t =
  match (Client.pool t.m_src.sd_client, Client.pool t.m_dst.sd_client) with
  | Some sp, Some dp -> Some (sp, dp)
  | _ -> None

let pool_health t =
  match pools t with
  | Some (sp, dp) -> Some (Xcw_rpc.Pool.health sp, Xcw_rpc.Pool.health dp)
  | None -> None

let rpc_seconds t =
  Client.total_latency t.m_src.sd_client
  +. Client.total_latency t.m_dst.sd_client

let last_report t = t.m_last_report
let polls t = t.m_polls
let replayed t = t.m_replay
let alert_seq t = t.m_seq
let cached_facts t = all_entry_facts t
let facts_cached t = List.length (all_entry_facts t)
let metrics_snapshot t = Metrics.snapshot t.m_metrics
