(** Streaming anomaly monitoring.

    The paper's central motivation (Figure 1) is observability: the
    Ronin team noticed the March 2022 attack six days late, and even in
    2024 a bridge pause took ~40 minutes.  This module runs
    XChainWatcher continuously: it is fed block cursors as chains
    advance, decodes only the receipts it has not seen yet (decoding
    dominates cost — Table 2), re-evaluates the rules, and emits alerts
    for anomalies that were not present at the previous poll.

    Rule evaluation is rerun from scratch on every poll because the
    unmatched/anomaly relations are non-monotonic (an "unmatched"
    deposit becomes matched when its completion lands); the decoded
    facts are cached, so each poll costs one incremental decode plus
    one rule evaluation. *)

module Chain = Xcw_chain.Chain
module Types = Xcw_evm.Types
module Rpc = Xcw_rpc.Rpc
module Engine = Xcw_datalog.Engine

type alert = {
  al_anomaly : Report.anomaly;
  al_rule : string;  (** the rule row that flagged it *)
  al_detected_at : int * int;  (** (source block, target block) cursor *)
}

type t = {
  m_input : Detector.input;
  m_src_rpc : Rpc.t;
  m_dst_rpc : Rpc.t;
  (* Facts decoded so far, newest first, plus per-chain receipt cursors
     (number of receipts already decoded). *)
  mutable m_src_seen : int;
  mutable m_dst_seen : int;
  mutable m_facts : Facts.t list;
  mutable m_decode_errors : Decoder.decode_error list;
  (* Anomaly keys already alerted: (rule, class name, tx hash). *)
  m_known : (string * string * string, unit) Hashtbl.t;
  mutable m_polls : int;
  mutable m_last_report : Report.t option;
}

let create (input : Detector.input) : t =
  Engine.recommended_gc_setup ();
  {
    m_input = input;
    m_src_rpc =
      Rpc.create ~profile:input.Detector.i_source_profile
        ~seed:input.Detector.i_rpc_seed input.Detector.i_source_chain;
    m_dst_rpc =
      Rpc.create ~profile:input.Detector.i_target_profile
        ~seed:(input.Detector.i_rpc_seed + 1)
        input.Detector.i_target_chain;
    m_src_seen = 0;
    m_dst_seen = 0;
    m_facts = [];
    m_decode_errors = [];
    m_known = Hashtbl.create 256;
    m_polls = 0;
    m_last_report = None;
  }

(* Decode receipts [from_idx, up_to_block] of a chain; returns the new
   cursor. *)
let decode_new t chain rpc role ~seen ~up_to_block =
  let receipts = Chain.all_receipts chain in
  let chain_id = chain.Chain.chain_id in
  let fresh =
    receipts
    |> List.filteri (fun i _ -> i >= seen)
    |> List.filter (fun (r : Types.receipt) -> r.Types.r_block_number <= up_to_block)
  in
  List.iter
    (fun (r : Types.receipt) ->
      let fetch = Rpc.eth_get_transaction_receipt rpc r.Types.r_tx_hash in
      ignore fetch;
      let rd =
        Decoder.decode_receipt t.m_input.Detector.i_plugin
          t.m_input.Detector.i_config ~role ~chain_id rpc r
      in
      t.m_facts <- List.rev_append rd.Decoder.rd_facts t.m_facts;
      t.m_decode_errors <- rd.Decoder.rd_errors @ t.m_decode_errors)
    fresh;
  seen + List.length fresh

(** Advance the monitor to the given block cursors; returns alerts for
    anomalies that appeared since the previous poll. *)
let poll t ~source_block ~target_block : alert list =
  t.m_polls <- t.m_polls + 1;
  t.m_src_seen <-
    decode_new t t.m_input.Detector.i_source_chain t.m_src_rpc Decoder.Source
      ~seen:t.m_src_seen ~up_to_block:source_block;
  t.m_dst_seen <-
    decode_new t t.m_input.Detector.i_target_chain t.m_dst_rpc Decoder.Target
      ~seen:t.m_dst_seen ~up_to_block:target_block;
  (* Rebuild the derived relations over all cached facts. *)
  let db = Engine.create_db () in
  Facts.load_all db (Config.to_facts t.m_input.Detector.i_config);
  Facts.load_all db t.m_facts;
  ignore (Engine.run db t.m_input.Detector.i_program);
  (* Reuse the detector's dissection logic by running it over a
     pre-decoded snapshot: the detector decodes chains itself, so here
     we rebuild only the classification layer via a lightweight
     re-dissection. *)
  let report =
    Dissect.dissect ~label:t.m_input.Detector.i_label
      ~config:t.m_input.Detector.i_config ~pricing:t.m_input.Detector.i_pricing
      ~first_window_withdrawal_id:t.m_input.Detector.i_first_window_withdrawal_id
      ~decode_errors:t.m_decode_errors ~db ()
  in
  t.m_last_report <- Some report;
  let fresh = ref [] in
  List.iter
    (fun row ->
      List.iter
        (fun a ->
          let key =
            (row.Report.rr_rule, Report.class_name a.Report.a_class, a.Report.a_tx_hash)
          in
          if not (Hashtbl.mem t.m_known key) then begin
            Hashtbl.replace t.m_known key ();
            fresh :=
              {
                al_anomaly = a;
                al_rule = row.Report.rr_rule;
                al_detected_at = (source_block, target_block);
              }
              :: !fresh
          end)
        row.Report.rr_anomalies)
    report.Report.rows;
  List.rev !fresh

let last_report t = t.m_last_report
let polls t = t.m_polls
let facts_cached t = List.length t.m_facts
