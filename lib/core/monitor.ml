(** Streaming anomaly monitoring.

    The paper's central motivation (Figure 1) is observability: the
    Ronin team noticed the March 2022 attack six days late, and even in
    2024 a bridge pause took ~40 minutes.  This module runs
    XChainWatcher continuously: it is fed block cursors as chains
    advance, decodes only the receipts it has not seen yet (decoding
    dominates cost — Table 2), re-evaluates the rules, and emits alerts
    for anomalies that were not present at the previous poll.

    Steady-state evaluation is incremental: the monitor keeps one
    persistent [Engine.db] across polls, loads only the freshly decoded
    facts, and lets [Engine.run_incremental] treat them as the initial
    semi-naive delta — strata untouched by the new facts do no work,
    and the non-monotonic anomaly relations (an "unmatched" deposit
    becomes matched when its completion lands) are retracted and
    re-derived in place.  Per-poll cost is therefore proportional to
    the new blocks, not to the full history (see the
    [monitor_steady_state] bench).  [create ~incremental:false] keeps
    the original rebuild-everything behaviour for comparison. *)

module Chain = Xcw_chain.Chain
module Types = Xcw_evm.Types
module Rpc = Xcw_rpc.Rpc
module Engine = Xcw_datalog.Engine

type alert = {
  al_anomaly : Report.anomaly;
  al_rule : string;  (** the rule row that flagged it *)
  al_detected_at : int * int;  (** (source block, target block) cursor *)
}

(* ------------------------------------------------------------------ *)
(* Receipt cursor                                                      *)

(* A plain "receipts decoded so far" counter is wrong when the receipt
   list is not strictly block-ordered: filtering the suffix by
   [r_block_number <= up_to_block] and then advancing the counter by
   the number of matches silently skips — forever — any receipt that
   sits below the counter but above the block cursor.  The cursor
   therefore tracks the fully-decoded prefix plus the exact set of
   decoded indices beyond it. *)
module Cursor = struct
  type t = {
    mutable c_prefix : int;  (** receipts [0, c_prefix) are decoded *)
    c_decoded : (int, unit) Hashtbl.t;  (** decoded indices >= prefix *)
  }

  let create () = { c_prefix = 0; c_decoded = Hashtbl.create 16 }

  (** [take t ~block_of ~len ~up_to] returns the indices (ascending) of
      receipts that are not yet decoded and whose block is within the
      cursor, marking them decoded. *)
  let take t ~block_of ~len ~up_to =
    let fresh = ref [] in
    for i = t.c_prefix to len - 1 do
      if (not (Hashtbl.mem t.c_decoded i)) && block_of i <= up_to then begin
        Hashtbl.replace t.c_decoded i ();
        fresh := i :: !fresh
      end
    done;
    while Hashtbl.mem t.c_decoded t.c_prefix do
      Hashtbl.remove t.c_decoded t.c_prefix;
      t.c_prefix <- t.c_prefix + 1
    done;
    List.rev !fresh

  let decoded_count t = t.c_prefix + Hashtbl.length t.c_decoded
end

type t = {
  m_input : Detector.input;
  m_src_rpc : Rpc.t;
  m_dst_rpc : Rpc.t;
  m_src_cursor : Cursor.t;
  m_dst_cursor : Cursor.t;
  (* Facts decoded so far, newest first (used by the from-scratch mode
     and [facts_cached]). *)
  mutable m_facts : Facts.t list;
  mutable m_decode_errors : Decoder.decode_error list;
  m_incremental : bool;
  (* Persistent Datalog database for incremental evaluation; config
     facts are pre-loaded at creation. *)
  m_db : Engine.db;
  (* Anomaly keys already alerted: (rule, class name, tx hash). *)
  m_known : (string * string * string, unit) Hashtbl.t;
  mutable m_polls : int;
  mutable m_last_report : Report.t option;
}

let create ?(incremental = true) (input : Detector.input) : t =
  Engine.recommended_gc_setup ();
  let db = Engine.create_db () in
  ignore (Facts.load_all db (Config.to_facts input.Detector.i_config));
  {
    m_input = input;
    m_src_rpc =
      Rpc.create ~profile:input.Detector.i_source_profile
        ~seed:input.Detector.i_rpc_seed input.Detector.i_source_chain;
    m_dst_rpc =
      Rpc.create ~profile:input.Detector.i_target_profile
        ~seed:(input.Detector.i_rpc_seed + 1)
        input.Detector.i_target_chain;
    m_src_cursor = Cursor.create ();
    m_dst_cursor = Cursor.create ();
    m_facts = [];
    m_decode_errors = [];
    m_incremental = incremental;
    m_db = db;
    m_known = Hashtbl.create 256;
    m_polls = 0;
    m_last_report = None;
  }

(* Decode the not-yet-seen receipts of [chain] whose block is within
   [up_to_block]; returns the freshly decoded facts, oldest receipt
   first. *)
let decode_new t chain rpc role cursor ~up_to_block =
  let receipts = Array.of_list (Chain.all_receipts chain) in
  let chain_id = chain.Chain.chain_id in
  let fresh_idx =
    Cursor.take cursor
      ~block_of:(fun i -> receipts.(i).Types.r_block_number)
      ~len:(Array.length receipts) ~up_to:up_to_block
  in
  List.concat_map
    (fun i ->
      let r = receipts.(i) in
      let fetch = Rpc.eth_get_transaction_receipt rpc r.Types.r_tx_hash in
      ignore fetch;
      let rd =
        Decoder.decode_receipt t.m_input.Detector.i_plugin
          t.m_input.Detector.i_config ~role ~chain_id rpc r
      in
      t.m_decode_errors <- rd.Decoder.rd_errors @ t.m_decode_errors;
      rd.Decoder.rd_facts)
    fresh_idx

(** Advance the monitor to the given block cursors; returns alerts for
    anomalies that appeared since the previous poll. *)
let poll t ~source_block ~target_block : alert list =
  t.m_polls <- t.m_polls + 1;
  let fresh_facts =
    decode_new t t.m_input.Detector.i_source_chain t.m_src_rpc Decoder.Source
      t.m_src_cursor ~up_to_block:source_block
    @ decode_new t t.m_input.Detector.i_target_chain t.m_dst_rpc Decoder.Target
        t.m_dst_cursor ~up_to_block:target_block
  in
  t.m_facts <- List.rev_append fresh_facts t.m_facts;
  let db =
    if t.m_incremental then begin
      (* Load only the delta and update the persistent database; strata
         unaffected by the fresh facts are skipped by the engine. *)
      ignore (Facts.load_all t.m_db fresh_facts);
      ignore (Engine.run_incremental t.m_db t.m_input.Detector.i_program);
      t.m_db
    end
    else begin
      (* From-scratch reference mode: rebuild the full database. *)
      let db = Engine.create_db () in
      ignore (Facts.load_all db (Config.to_facts t.m_input.Detector.i_config));
      ignore (Facts.load_all db t.m_facts);
      ignore (Engine.run db t.m_input.Detector.i_program);
      db
    end
  in
  (* Reuse the detector's dissection logic by running it over a
     pre-decoded snapshot: the detector decodes chains itself, so here
     we rebuild only the classification layer via a lightweight
     re-dissection. *)
  let report =
    Dissect.dissect ~label:t.m_input.Detector.i_label
      ~config:t.m_input.Detector.i_config ~pricing:t.m_input.Detector.i_pricing
      ~first_window_withdrawal_id:t.m_input.Detector.i_first_window_withdrawal_id
      ~decode_errors:t.m_decode_errors ~db ()
  in
  t.m_last_report <- Some report;
  let fresh = ref [] in
  List.iter
    (fun row ->
      List.iter
        (fun a ->
          let key =
            (row.Report.rr_rule, Report.class_name a.Report.a_class, a.Report.a_tx_hash)
          in
          if not (Hashtbl.mem t.m_known key) then begin
            Hashtbl.replace t.m_known key ();
            fresh :=
              {
                al_anomaly = a;
                al_rule = row.Report.rr_rule;
                al_detected_at = (source_block, target_block);
              }
              :: !fresh
          end)
        row.Report.rr_anomalies)
    report.Report.rows;
  List.rev !fresh

let last_report t = t.m_last_report
let polls t = t.m_polls
let facts_cached t = List.length t.m_facts
