(** Streaming anomaly monitoring.

    The paper's central motivation (Figure 1) is observability: the
    Ronin team noticed the March 2022 attack six days late, and even in
    2024 a bridge pause took ~40 minutes.  This module runs
    XChainWatcher continuously: it is fed block cursors as chains
    advance, decodes only the receipts it has not seen yet (decoding
    dominates cost — Table 2), re-evaluates the rules, and emits alerts
    for anomalies that were not present at the previous poll.

    Steady-state evaluation is incremental: the monitor keeps one
    persistent [Engine.db] across polls, loads only the freshly decoded
    facts, and lets [Engine.run_incremental] treat them as the initial
    semi-naive delta — strata untouched by the new facts do no work,
    and the non-monotonic anomaly relations (an "unmatched" deposit
    becomes matched when its completion lands) are retracted and
    re-derived in place.  Per-poll cost is therefore proportional to
    the new blocks, not to the full history (see the
    [monitor_steady_state] bench).  [create ~incremental:false] keeps
    the original rebuild-everything behaviour for comparison.

    The monitor degrades gracefully under RPC faults (see
    {!Xcw_rpc.Fault}): a receipt whose fetch or decode fails stays
    pending — the cursor never advances past unfetched data, so there
    are no silent gaps — and is retried at the next poll; a failed
    head observation skips the side for the poll and surfaces through
    {!health} instead of raising; a reorg signal rewinds the cursor
    past the replaced blocks and rebuilds the database through the
    engine's retraction path.  Alerts are only emitted from synced
    polls (every receipt within the requested cursors decoded), so
    transient one-sided views never cause spurious or missing
    alerts relative to a fault-free run — the differential property
    checked in [test_fault.ml]. *)

module Chain = Xcw_chain.Chain
module Types = Xcw_evm.Types
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client
module Engine = Xcw_datalog.Engine
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span

type alert = {
  al_anomaly : Report.anomaly;
  al_rule : string;  (** the rule row that flagged it *)
  al_detected_at : int * int;  (** (source block, target block) cursor *)
}

(* ------------------------------------------------------------------ *)
(* Receipt cursor                                                      *)

(* A plain "receipts decoded so far" counter is wrong when the receipt
   list is not strictly block-ordered: filtering the suffix by
   [r_block_number <= up_to_block] and then advancing the counter by
   the number of matches silently skips — forever — any receipt that
   sits below the counter but above the block cursor.  The cursor
   therefore tracks the fully-decoded prefix plus the exact set of
   decoded indices beyond it. *)
module Cursor = struct
  type t = {
    mutable c_prefix : int;  (** receipts [0, c_prefix) are decoded *)
    c_decoded : (int, unit) Hashtbl.t;  (** decoded indices >= prefix *)
  }

  let create () = { c_prefix = 0; c_decoded = Hashtbl.create 16 }

  let normalize t =
    while Hashtbl.mem t.c_decoded t.c_prefix do
      Hashtbl.remove t.c_decoded t.c_prefix;
      t.c_prefix <- t.c_prefix + 1
    done

  let is_decoded t i = i < t.c_prefix || Hashtbl.mem t.c_decoded i

  (** Not-yet-decoded indices (ascending) whose block is within the
      cursor; does not mark anything. *)
  let candidates t ~block_of ~len ~up_to =
    let out = ref [] in
    for i = t.c_prefix to len - 1 do
      if (not (Hashtbl.mem t.c_decoded i)) && block_of i <= up_to then
        out := i :: !out
    done;
    List.rev !out

  let mark t i =
    if i >= t.c_prefix then begin
      Hashtbl.replace t.c_decoded i ();
      normalize t
    end

  (** [take t ~block_of ~len ~up_to] returns the indices (ascending) of
      receipts that are not yet decoded and whose block is within the
      cursor, marking them decoded. *)
  let take t ~block_of ~len ~up_to =
    let fresh = candidates t ~block_of ~len ~up_to in
    List.iter (fun i -> Hashtbl.replace t.c_decoded i ()) fresh;
    normalize t;
    fresh

  (** Forget every decoded index whose block is above [above] — the
      reorg rewind: those receipts will be decoded again when the
      (possibly different) replacement blocks are served. *)
  let rewind t ~block_of ~above =
    let decoded = ref [] in
    for i = 0 to t.c_prefix - 1 do
      decoded := i :: !decoded
    done;
    Hashtbl.iter (fun i () -> decoded := i :: !decoded) t.c_decoded;
    Hashtbl.reset t.c_decoded;
    t.c_prefix <- 0;
    List.iter
      (fun i -> if block_of i <= above then Hashtbl.replace t.c_decoded i ())
      !decoded;
    normalize t

  let decoded_count t = t.c_prefix + Hashtbl.length t.c_decoded
end

(* ------------------------------------------------------------------ *)

(* Everything decoded from one receipt, kept so a reorg rewind can
   rebuild the database and the report's decode errors from scratch. *)
type entry = {
  e_block : int;
  e_facts : Facts.t list;
  e_errors : Decoder.decode_error list;
  e_trace_gap : bool;
}

type side = {
  sd_chain : Chain.t;
  sd_role : Decoder.chain_role;
  sd_client : Client.t;
  sd_cursor : Cursor.t;
  sd_entries : (int, entry) Hashtbl.t;  (** receipt index -> decode *)
  mutable sd_requested : int;  (** highest block cursor ever requested *)
}

type health = {
  h_synced : bool;
      (** every receipt within the requested cursors is decoded *)
  h_pending_source : int;  (** receipts awaiting (re)decode on S *)
  h_pending_target : int;
  h_trace_gaps : int;  (** receipts decoded without the call tracer *)
  h_give_ups : int;  (** client requests that exhausted retries *)
  h_reorgs : int;  (** reorg signals handled *)
  h_last_error : string option;  (** most recent RPC failure seen *)
}

(* Monitor-level instruments, resolved once at creation. *)
type monitor_obs = {
  mo_reg : Metrics.t;
  mo_polls : Metrics.Counter.t;
  mo_alerts : Metrics.Counter.t;
  mo_reorgs : Metrics.Counter.t;
  mo_poll_seconds : Metrics.Histogram.t;
  mo_synced : Metrics.Gauge.t;
  mo_pending_src : Metrics.Gauge.t;
  mo_pending_dst : Metrics.Gauge.t;
  mo_facts : Metrics.Gauge.t;
}

type t = {
  m_input : Detector.input;
  m_src : side;
  m_dst : side;
  m_incremental : bool;
  m_metrics : Metrics.t;
  m_obs : monitor_obs;
  (* Persistent Datalog database for incremental evaluation; config
     facts are pre-loaded.  Replaced wholesale after a reorg rewind. *)
  mutable m_db : Engine.db;
  (* Anomaly keys already alerted: (rule, class name, tx hash). *)
  m_known : (string * string * string, unit) Hashtbl.t;
  mutable m_polls : int;
  mutable m_last_report : Report.t option;
  mutable m_reorgs : int;
  mutable m_last_error : string option;
}

let make_side ~input ~role ~chain ~profile ~fault ~endpoint_faults ~seed
    ~metrics =
  {
    sd_chain = chain;
    sd_role = role;
    sd_client =
      (* Same construction as the batch detector: single endpoint, or a
         Byzantine-tolerant quorum pool when i_endpoints > 1.  The
         cursor then only ever advances past quorum-verified data, and
         a degraded quorum (refusals) keeps receipts pending — the
         synced-only alerting path of PR 2 applies unchanged. *)
      Detector.build_client ~metrics ~profile ~seed
        ~policy:input.Detector.i_client_policy
        ~endpoints:input.Detector.i_endpoints ~quorum:input.Detector.i_quorum
        ~fault ~endpoint_faults chain;
    sd_cursor = Cursor.create ();
    sd_entries = Hashtbl.create 64;
    sd_requested = 0;
  }

let make_obs reg =
  {
    mo_reg = reg;
    mo_polls = Metrics.counter reg "xcw_monitor_polls_total";
    mo_alerts = Metrics.counter reg "xcw_monitor_alerts_total";
    mo_reorgs = Metrics.counter reg "xcw_monitor_reorgs_total";
    mo_poll_seconds = Metrics.histogram reg "xcw_monitor_poll_seconds";
    mo_synced = Metrics.gauge reg "xcw_monitor_synced";
    mo_pending_src =
      Metrics.gauge reg ~labels:[ ("side", "source") ] "xcw_monitor_pending";
    mo_pending_dst =
      Metrics.gauge reg ~labels:[ ("side", "target") ] "xcw_monitor_pending";
    mo_facts = Metrics.gauge reg "xcw_monitor_facts_cached";
  }

let create ?(incremental = true) ?metrics (input : Detector.input) : t =
  Engine.recommended_gc_setup ();
  let metrics =
    match metrics with Some m -> m | None -> Metrics.default ()
  in
  let db = Engine.create_db () in
  ignore (Facts.load_all db (Config.to_facts input.Detector.i_config));
  {
    m_input = input;
    m_src =
      make_side ~input ~role:Decoder.Source
        ~chain:input.Detector.i_source_chain
        ~profile:input.Detector.i_source_profile
        ~fault:input.Detector.i_source_fault
        ~endpoint_faults:input.Detector.i_source_endpoint_faults
        ~seed:input.Detector.i_rpc_seed ~metrics;
    m_dst =
      make_side ~input ~role:Decoder.Target
        ~chain:input.Detector.i_target_chain
        ~profile:input.Detector.i_target_profile
        ~fault:input.Detector.i_target_fault
        ~endpoint_faults:input.Detector.i_target_endpoint_faults
        ~seed:(input.Detector.i_rpc_seed + 1) ~metrics;
    m_incremental = incremental;
    m_metrics = metrics;
    m_obs = make_obs metrics;
    m_db = db;
    m_known = Hashtbl.create 256;
    m_polls = 0;
    m_last_report = None;
    m_reorgs = 0;
    m_last_error = None;
  }

let sorted_entries s =
  Hashtbl.fold (fun i e acc -> (i, e) :: acc) s.sd_entries []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(* Facts of every decoded receipt, source side first, receipt order —
   the same order the batch detector produces them in. *)
let all_entry_facts t =
  List.concat_map (fun e -> e.e_facts) (sorted_entries t.m_src)
  @ List.concat_map (fun e -> e.e_facts) (sorted_entries t.m_dst)

let all_decode_errors t =
  List.concat_map (fun e -> e.e_errors) (sorted_entries t.m_src)
  @ List.concat_map (fun e -> e.e_errors) (sorted_entries t.m_dst)

let block_of_receipts receipts i = receipts.(i).Types.r_block_number

let pending_count s =
  let receipts = Array.of_list (Chain.all_receipts s.sd_chain) in
  Cursor.candidates s.sd_cursor
    ~block_of:(block_of_receipts receipts)
    ~len:(Array.length receipts) ~up_to:s.sd_requested
  |> List.length

(* Advance one side: observe the node's head (which may lag or signal a
   reorg), rewind on reorg, then decode every not-yet-decoded receipt
   the node can currently serve.  Receipts whose fetch or decode fails
   stay unmarked and are retried next poll — the cursor never moves
   past data we do not have.  Returns the freshly decoded facts and
   whether a rewind invalidated previously loaded facts. *)
let poll_side t s ~up_to_block =
  s.sd_requested <- max s.sd_requested up_to_block;
  let head_resp = Client.observe_head s.sd_client ~head:up_to_block in
  match head_resp.Rpc.value with
  | Error e ->
      t.m_last_error <- Some (Rpc.error_to_string e);
      ([], false)
  | Ok hv ->
      let receipts = Array.of_list (Chain.all_receipts s.sd_chain) in
      let block_of = block_of_receipts receipts in
      let rewound =
        match hv.Rpc.hv_reorged_to with
        | None -> false
        | Some surviving ->
            t.m_reorgs <- t.m_reorgs + 1;
            Metrics.Counter.inc t.m_obs.mo_reorgs;
            let dropped =
              Hashtbl.fold
                (fun i e acc -> if e.e_block > surviving then i :: acc else acc)
                s.sd_entries []
            in
            if dropped = [] then false
            else begin
              List.iter (Hashtbl.remove s.sd_entries) dropped;
              Cursor.rewind s.sd_cursor ~block_of ~above:surviving;
              true
            end
      in
      let chain_id = s.sd_chain.Chain.chain_id in
      let fresh =
        Cursor.candidates s.sd_cursor ~block_of ~len:(Array.length receipts)
          ~up_to:hv.Rpc.hv_head
        |> List.concat_map (fun i ->
               let r = receipts.(i) in
               let fetch = Client.get_receipt s.sd_client r.Types.r_tx_hash in
               match fetch.Rpc.value with
               | Error e ->
                   t.m_last_error <- Some (Rpc.error_to_string e);
                   []
               | Ok _ -> (
                   match
                     Decoder.decode_receipt t.m_input.Detector.i_plugin
                       t.m_input.Detector.i_config ~role:s.sd_role ~chain_id
                       s.sd_client r
                   with
                   | Error e ->
                       t.m_last_error <- Some (Rpc.error_to_string e);
                       []
                   | Ok rd ->
                       Cursor.mark s.sd_cursor i;
                       Hashtbl.replace s.sd_entries i
                         {
                           e_block = r.Types.r_block_number;
                           e_facts = rd.Decoder.rd_facts;
                           e_errors = rd.Decoder.rd_errors;
                           e_trace_gap = rd.Decoder.rd_trace_gap;
                         };
                       rd.Decoder.rd_facts))
      in
      (fresh, rewound)

(** Advance the monitor to the given block cursors; returns alerts for
    anomalies that appeared since the previous poll.  Under fault
    injection a poll may return no alerts simply because one side is
    behind — consult {!health}; the alerts arrive once the monitor
    catches up. *)
let rec poll t ~source_block ~target_block : alert list =
  t.m_polls <- t.m_polls + 1;
  let obs = t.m_obs in
  Metrics.Counter.inc obs.mo_polls;
  let live = Metrics.enabled obs.mo_reg in
  let t0 = if live then Unix.gettimeofday () else 0. in
  let alerts =
    Span.with_
      ~attrs:
        [
          ("source_block", string_of_int source_block);
          ("target_block", string_of_int target_block);
        ]
      "monitor.poll"
      (fun () -> poll_body t ~source_block ~target_block)
  in
  if live then begin
    Metrics.Histogram.observe obs.mo_poll_seconds (Unix.gettimeofday () -. t0);
    let ps = pending_count t.m_src and pd = pending_count t.m_dst in
    Metrics.Gauge.set obs.mo_pending_src (float_of_int ps);
    Metrics.Gauge.set obs.mo_pending_dst (float_of_int pd);
    Metrics.Gauge.set obs.mo_synced (if ps = 0 && pd = 0 then 1. else 0.);
    (* Count without materializing the (large) concatenated fact list. *)
    let side_facts s =
      Hashtbl.fold (fun _ e acc -> acc + List.length e.e_facts) s.sd_entries 0
    in
    Metrics.Gauge.set obs.mo_facts
      (float_of_int (side_facts t.m_src + side_facts t.m_dst))
  end;
  Metrics.Counter.add obs.mo_alerts (List.length alerts);
  alerts

and poll_body t ~source_block ~target_block : alert list =
  let src_fresh, src_rewound = poll_side t t.m_src ~up_to_block:source_block in
  let dst_fresh, dst_rewound = poll_side t t.m_dst ~up_to_block:target_block in
  let rewound = src_rewound || dst_rewound in
  let fresh_facts = src_fresh @ dst_fresh in
  let db =
    if t.m_incremental then begin
      if rewound then begin
        (* Facts from replaced blocks are gone: rebuild the persistent
           database from the surviving entries; the next
           [run_incremental] re-derives everything (first run on a
           fresh database evaluates from scratch). *)
        let db = Engine.create_db () in
        ignore
          (Facts.load_all db (Config.to_facts t.m_input.Detector.i_config));
        ignore (Facts.load_all db (all_entry_facts t));
        t.m_db <- db
      end
      else
        (* Load only the delta; strata unaffected by the fresh facts
           are skipped by the engine. *)
        ignore (Facts.load_all t.m_db fresh_facts);
      ignore
        (Engine.run_incremental ~metrics:t.m_metrics
           ~ndomains:t.m_input.Detector.i_ndomains t.m_db
           t.m_input.Detector.i_program);
      t.m_db
    end
    else begin
      (* From-scratch reference mode: rebuild the full database. *)
      let db = Engine.create_db () in
      ignore (Facts.load_all db (Config.to_facts t.m_input.Detector.i_config));
      ignore (Facts.load_all db (all_entry_facts t));
      ignore
        (Engine.run ~metrics:t.m_metrics
           ~ndomains:t.m_input.Detector.i_ndomains db
           t.m_input.Detector.i_program);
      db
    end
  in
  (* Reuse the detector's dissection logic by running it over a
     pre-decoded snapshot: the detector decodes chains itself, so here
     we rebuild only the classification layer via a lightweight
     re-dissection. *)
  (* Match the detector's [total_facts] semantics — the EDB loaded into
     the engine, not the post-evaluation tuple count (the incremental
     db also carries every derived tuple at this point). *)
  let total_facts =
    List.fold_left
      (fun acc p -> acc - Engine.fact_count db p)
      (Engine.total_tuples db) (Engine.derived_predicates db)
  in
  let report =
    Dissect.dissect ~label:t.m_input.Detector.i_label
      ~config:t.m_input.Detector.i_config ~pricing:t.m_input.Detector.i_pricing
      ~first_window_withdrawal_id:t.m_input.Detector.i_first_window_withdrawal_id
      ~decode_errors:(all_decode_errors t) ~db ~total_facts ()
  in
  t.m_last_report <- Some report;
  (* Only a synced poll emits alerts: when a side is behind (faults,
     head lag), the report reflects a partial cross-chain view whose
     transient unmatched anomalies would both false-alert now and
     poison [m_known] against the real alert later.  Clean runs are
     always synced, so this changes nothing fault-free. *)
  if pending_count t.m_src > 0 || pending_count t.m_dst > 0 then []
  else begin
    let fresh = ref [] in
    List.iter
      (fun row ->
        List.iter
          (fun a ->
            let key =
              ( row.Report.rr_rule,
                Report.class_name a.Report.a_class,
                a.Report.a_tx_hash )
            in
            if not (Hashtbl.mem t.m_known key) then begin
              Hashtbl.replace t.m_known key ();
              fresh :=
                {
                  al_anomaly = a;
                  al_rule = row.Report.rr_rule;
                  al_detected_at = (source_block, target_block);
                }
                :: !fresh
            end)
          row.Report.rr_anomalies)
      report.Report.rows;
    List.rev !fresh
  end

let health t =
  let pending_src = pending_count t.m_src in
  let pending_dst = pending_count t.m_dst in
  let trace_gaps s =
    Hashtbl.fold (fun _ e n -> if e.e_trace_gap then n + 1 else n) s.sd_entries 0
  in
  let give_ups s = (Client.stats s.sd_client).Client.s_give_ups in
  {
    h_synced = pending_src = 0 && pending_dst = 0;
    h_pending_source = pending_src;
    h_pending_target = pending_dst;
    h_trace_gaps = trace_gaps t.m_src + trace_gaps t.m_dst;
    h_give_ups = give_ups t.m_src + give_ups t.m_dst;
    h_reorgs = t.m_reorgs;
    h_last_error = t.m_last_error;
  }

let pools t =
  match (Client.pool t.m_src.sd_client, Client.pool t.m_dst.sd_client) with
  | Some sp, Some dp -> Some (sp, dp)
  | _ -> None

let pool_health t =
  match pools t with
  | Some (sp, dp) -> Some (Xcw_rpc.Pool.health sp, Xcw_rpc.Pool.health dp)
  | None -> None

let last_report t = t.m_last_report
let polls t = t.m_polls
let cached_facts t = all_entry_facts t
let facts_cached t = List.length (all_entry_facts t)
let metrics_snapshot t = Metrics.snapshot t.m_metrics
