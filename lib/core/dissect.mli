(** Dissection of the derived Datalog relations into a classified
    anomaly report — the logic behind the paper's Tables 3 and 4,
    shared by the batch {!Detector} and the streaming {!Monitor}. *)

val str_at : Xcw_datalog.Ast.const array -> int -> string
(** Tuple field as a string ([Int]s are rendered). *)

val int_at : Xcw_datalog.Ast.const array -> int -> int
(** Tuple field as an int; raises [Invalid_argument] on strings. *)

val dissect :
  label:string ->
  config:Config.t ->
  pricing:Pricing.t ->
  first_window_withdrawal_id:int option ->
  decode_errors:Decoder.decode_error list ->
  db:Xcw_datalog.Engine.db ->
  ?decode_seconds:float ->
  ?eval_seconds:float ->
  ?simulated_rpc_seconds:float ->
  ?total_facts:int ->
  unit ->
  Report.t
(** Build the classified report from an evaluated database.  Anomaly
    causes are resolved in priority order: finality violation, then
    token-mapping violation, then beneficiary mismatch / unparseable
    linkage, then pre-window false positive, then no-correspondence. *)
