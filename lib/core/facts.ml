(** The cross-chain fact model — the logical relations of the paper's
    Listing 1.

    Facts are produced by the decoders ({!Decoder}) and the static
    configuration loader ({!Config}), then loaded into the Datalog
    database where the cross-chain rules ({!Rules}) evaluate them.

    Datalog term conventions:
    - transaction hashes, addresses: hex strings ([Str]);
    - token amounts: decimal strings ([Str]) — uint256 values exceed
      native integers, and the rules only need equality on amounts;
    - timestamps, chain ids, event indices, deposit/withdrawal ids,
      status codes: [Int]. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
open Xcw_datalog.Ast

(* Relation names, used consistently by builders and rules. *)
let r_native_deposit = "native_deposit"
let r_native_withdrawal = "native_withdrawal"
let r_sc_token_deposited = "sc_token_deposited"
let r_tc_token_deposited = "tc_token_deposited"
let r_tc_token_withdrew = "tc_token_withdrew"
let r_sc_token_withdrew = "sc_token_withdrew"
let r_erc20_transfer = "erc20_transfer"
let r_transaction = "transaction"
let r_bridge_controlled_address = "bridge_controlled_address"
let r_token_mapping = "token_mapping"
let r_cctx_finality = "cctx_finality"
let r_wrapped_native_token = "wrapped_native_token"

(* Not part of Listing 1: records that a bridge event was present in a
   transaction but could not be fully decoded (e.g. an unparseable
   beneficiary).  Keeps the transfer-without-event detectors from
   misfiring on transactions the decoder only partially understood. *)
let r_bridge_event_decode_failure = "bridge_event_decode_failure"

(* Not part of Listing 1: marks transactions decoded without the call
   tracer (node had it disabled or kept timing out).  Internal native
   transfers of such transactions are invisible; consumed by no rule,
   but surfaced in the monitor's health status. *)
let r_trace_gap = "trace_gap"

(* Exit-bridge relations (PR 10): the proof-carrying pessimistic
   bridge model.  Amounts here are small native ints (token base
   units), not uint256 decimal strings, so the accounting stratum can
   sum them through the engine's stratified aggregates. *)
let r_exit_deposit = "exit_deposit"
let r_exit_claim = "exit_claim"
let r_sealed_root = "sealed_root"
let r_signed_root = "signed_root"
let r_stake_event = "stake_event"

type t =
  | Native_deposit of {
      tx_hash : string;
      chain_id : int;
      event_index : int;
      from_ : string;
      to_ : string;
      amount : U256.t;
    }
      (** native currency escrowed on S through the wrapped-native
          contract during a deposit *)
  | Native_withdrawal of {
      tx_hash : string;
      chain_id : int;
      event_index : int;
      from_ : string;
      to_ : string;
      amount : U256.t;
    }
      (** native transfer on T initiating a withdrawal *)
  | Sc_token_deposited of {
      tx_hash : string;
      event_index : int;
      deposit_id : int;
      beneficiary : string;
      dst_token : string;
      orig_token : string;
      dst_chain_id : int;
      amount : U256.t;
    }
  | Tc_token_deposited of {
      tx_hash : string;
      event_index : int;
      deposit_id : int;
      beneficiary : string;
      dst_token : string;
      amount : U256.t;
    }
  | Tc_token_withdrew of {
      tx_hash : string;
      event_index : int;
      withdrawal_id : int;
      beneficiary : string;
      orig_token : string;
      dst_token : string;
      dst_chain_id : int;
      amount : U256.t;
    }
  | Sc_token_withdrew of {
      tx_hash : string;
      event_index : int;
      withdrawal_id : int;
      beneficiary : string;
      dst_token : string;
      amount : U256.t;
    }
  | Erc20_transfer of {
      tx_hash : string;
      chain_id : int;
      event_index : int;
      contract : string;
      from_ : string;
      to_ : string;
      amount : U256.t;
    }
  | Transaction of {
      timestamp : int;
      chain_id : int;
      tx_hash : string;
      from_ : string;
      to_ : string;
      value : U256.t;
      status : int;
      fee : U256.t;
    }
  | Bridge_controlled_address of { chain_id : int; address : string }
  | Token_mapping of {
      src_chain_id : int;
      dst_chain_id : int;
      src_token : string;
      dst_token : string;
    }
  | Cctx_finality of { chain_id : int; finality_seconds : int }
  | Wrapped_native_token of { chain_id : int; token : string }
  | Bridge_event_decode_failure of { tx_hash : string }
  | Trace_gap of { tx_hash : string; chain_id : int }
  | Exit_deposit of {
      tx_hash : string;
      chain_id : int;  (** origin chain appending to its deposit tree *)
      event_index : int;
      leaf_index : int;
      token : string;
      amount : int;
      dest_chain_id : int;
      root : string;  (** deposit-tree root after the append *)
    }
  | Exit_claim of {
      tx_hash : string;
      chain_id : int;  (** destination chain executing the claim *)
      event_index : int;
      leaf_index : int;
      token : string;
      amount : int;
      origin_chain_id : int;
      root : string;  (** deposit-tree root the proof was checked against *)
      seq : int;  (** destination-side monotone claim sequence *)
      valid : int;  (** 1 iff the inclusion proof verified (watcher-side) *)
    }
  | Sealed_root of {
      tx_hash : string;
      chain_id : int;  (** origin chain sealing its deposit tree *)
      epoch : int;
      root : string;
    }
  | Signed_root of {
      tx_hash : string;
      chain_id : int;  (** destination chain receiving the attestation *)
      origin_chain_id : int;
      epoch : int;
      root : string;
      validator : string;
      seq : int;  (** destination-side monotone sequence (shared w/ claims) *)
    }
  | Stake_event of {
      tx_hash : string;
      chain_id : int;
      validator : string;
      kind : string;  (** ["bond"] | ["withdraw"] | ["slash"] *)
      amount : int;
      epoch : int;  (** epoch context of the event (0 for bonds) *)
    }

let amount_term (a : U256.t) = Str (U256.to_decimal_string a)

(** The (relation name, tuple) pair for the Datalog database. *)
let to_tuple (fact : t) : string * const list =
  match fact with
  | Native_deposit f ->
      ( r_native_deposit,
        [ Str f.tx_hash; Int f.chain_id; Int f.event_index; Str f.from_;
          Str f.to_; amount_term f.amount ] )
  | Native_withdrawal f ->
      ( r_native_withdrawal,
        [ Str f.tx_hash; Int f.chain_id; Int f.event_index; Str f.from_;
          Str f.to_; amount_term f.amount ] )
  | Sc_token_deposited f ->
      ( r_sc_token_deposited,
        [ Str f.tx_hash; Int f.event_index; Int f.deposit_id; Str f.beneficiary;
          Str f.dst_token; Str f.orig_token; Int f.dst_chain_id;
          amount_term f.amount ] )
  | Tc_token_deposited f ->
      ( r_tc_token_deposited,
        [ Str f.tx_hash; Int f.event_index; Int f.deposit_id; Str f.beneficiary;
          Str f.dst_token; amount_term f.amount ] )
  | Tc_token_withdrew f ->
      ( r_tc_token_withdrew,
        [ Str f.tx_hash; Int f.event_index; Int f.withdrawal_id;
          Str f.beneficiary; Str f.orig_token; Str f.dst_token;
          Int f.dst_chain_id; amount_term f.amount ] )
  | Sc_token_withdrew f ->
      ( r_sc_token_withdrew,
        [ Str f.tx_hash; Int f.event_index; Int f.withdrawal_id;
          Str f.beneficiary; Str f.dst_token; amount_term f.amount ] )
  | Erc20_transfer f ->
      ( r_erc20_transfer,
        [ Str f.tx_hash; Int f.chain_id; Int f.event_index; Str f.contract;
          Str f.from_; Str f.to_; amount_term f.amount ] )
  | Transaction f ->
      ( r_transaction,
        [ Int f.timestamp; Int f.chain_id; Str f.tx_hash; Str f.from_;
          Str f.to_; amount_term f.value; Int f.status; amount_term f.fee ] )
  | Bridge_controlled_address f ->
      (r_bridge_controlled_address, [ Int f.chain_id; Str f.address ])
  | Token_mapping f ->
      ( r_token_mapping,
        [ Int f.src_chain_id; Int f.dst_chain_id; Str f.src_token;
          Str f.dst_token ] )
  | Cctx_finality f -> (r_cctx_finality, [ Int f.chain_id; Int f.finality_seconds ])
  | Wrapped_native_token f -> (r_wrapped_native_token, [ Int f.chain_id; Str f.token ])
  | Bridge_event_decode_failure f -> (r_bridge_event_decode_failure, [ Str f.tx_hash ])
  | Trace_gap f -> (r_trace_gap, [ Str f.tx_hash; Int f.chain_id ])
  | Exit_deposit f ->
      ( r_exit_deposit,
        [ Str f.tx_hash; Int f.chain_id; Int f.event_index; Int f.leaf_index;
          Str f.token; Int f.amount; Int f.dest_chain_id; Str f.root ] )
  | Exit_claim f ->
      ( r_exit_claim,
        [ Str f.tx_hash; Int f.chain_id; Int f.event_index; Int f.leaf_index;
          Str f.token; Int f.amount; Int f.origin_chain_id; Str f.root;
          Int f.seq; Int f.valid ] )
  | Sealed_root f ->
      (r_sealed_root, [ Str f.tx_hash; Int f.chain_id; Int f.epoch; Str f.root ])
  | Signed_root f ->
      ( r_signed_root,
        [ Str f.tx_hash; Int f.chain_id; Int f.origin_chain_id; Int f.epoch;
          Str f.root; Str f.validator; Int f.seq ] )
  | Stake_event f ->
      ( r_stake_event,
        [ Str f.tx_hash; Int f.chain_id; Str f.validator; Str f.kind;
          Int f.amount; Int f.epoch ] )

let relation_name fact = fst (to_tuple fact)

(* Packed-tuple builders: straight to the engine's interned int-array
   representation, skipping the [const list] box chain of [to_tuple].
   Loading is the monitor's steady-state hot path — at paper scale a
   poll packs tens of thousands of cells. *)
let ps = Xcw_datalog.Ast.pack_string
let pi = Xcw_datalog.Ast.pack_int
let pa (a : U256.t) = ps (U256.to_decimal_string a)

(** The (relation name, packed tuple) pair — same cells as
    {!to_tuple}, already interned. *)
let to_packed (fact : t) : string * Xcw_datalog.Engine.Relation.tuple =
  match fact with
  | Native_deposit f ->
      ( r_native_deposit,
        [| ps f.tx_hash; pi f.chain_id; pi f.event_index; ps f.from_;
           ps f.to_; pa f.amount |] )
  | Native_withdrawal f ->
      ( r_native_withdrawal,
        [| ps f.tx_hash; pi f.chain_id; pi f.event_index; ps f.from_;
           ps f.to_; pa f.amount |] )
  | Sc_token_deposited f ->
      ( r_sc_token_deposited,
        [| ps f.tx_hash; pi f.event_index; pi f.deposit_id; ps f.beneficiary;
           ps f.dst_token; ps f.orig_token; pi f.dst_chain_id; pa f.amount |] )
  | Tc_token_deposited f ->
      ( r_tc_token_deposited,
        [| ps f.tx_hash; pi f.event_index; pi f.deposit_id; ps f.beneficiary;
           ps f.dst_token; pa f.amount |] )
  | Tc_token_withdrew f ->
      ( r_tc_token_withdrew,
        [| ps f.tx_hash; pi f.event_index; pi f.withdrawal_id;
           ps f.beneficiary; ps f.orig_token; ps f.dst_token;
           pi f.dst_chain_id; pa f.amount |] )
  | Sc_token_withdrew f ->
      ( r_sc_token_withdrew,
        [| ps f.tx_hash; pi f.event_index; pi f.withdrawal_id;
           ps f.beneficiary; ps f.dst_token; pa f.amount |] )
  | Erc20_transfer f ->
      ( r_erc20_transfer,
        [| ps f.tx_hash; pi f.chain_id; pi f.event_index; ps f.contract;
           ps f.from_; ps f.to_; pa f.amount |] )
  | Transaction f ->
      ( r_transaction,
        [| pi f.timestamp; pi f.chain_id; ps f.tx_hash; ps f.from_;
           ps f.to_; pa f.value; pi f.status; pa f.fee |] )
  | Bridge_controlled_address f ->
      (r_bridge_controlled_address, [| pi f.chain_id; ps f.address |])
  | Token_mapping f ->
      ( r_token_mapping,
        [| pi f.src_chain_id; pi f.dst_chain_id; ps f.src_token;
           ps f.dst_token |] )
  | Cctx_finality f -> (r_cctx_finality, [| pi f.chain_id; pi f.finality_seconds |])
  | Wrapped_native_token f -> (r_wrapped_native_token, [| pi f.chain_id; ps f.token |])
  | Bridge_event_decode_failure f ->
      (r_bridge_event_decode_failure, [| ps f.tx_hash |])
  | Trace_gap f -> (r_trace_gap, [| ps f.tx_hash; pi f.chain_id |])
  | Exit_deposit f ->
      ( r_exit_deposit,
        [| ps f.tx_hash; pi f.chain_id; pi f.event_index; pi f.leaf_index;
           ps f.token; pi f.amount; pi f.dest_chain_id; ps f.root |] )
  | Exit_claim f ->
      ( r_exit_claim,
        [| ps f.tx_hash; pi f.chain_id; pi f.event_index; pi f.leaf_index;
           ps f.token; pi f.amount; pi f.origin_chain_id; ps f.root;
           pi f.seq; pi f.valid |] )
  | Sealed_root f ->
      (r_sealed_root, [| ps f.tx_hash; pi f.chain_id; pi f.epoch; ps f.root |])
  | Signed_root f ->
      ( r_signed_root,
        [| ps f.tx_hash; pi f.chain_id; pi f.origin_chain_id; pi f.epoch;
           ps f.root; ps f.validator; pi f.seq |] )
  | Stake_event f ->
      ( r_stake_event,
        [| ps f.tx_hash; pi f.chain_id; ps f.validator; ps f.kind;
           pi f.amount; pi f.epoch |] )

exception Shape

(** Inverse of {!to_packed}, for the durable-store recovery path: a
    persisted packed tuple decodes back to the exact fact value, so a
    restarted monitor rebuilds its database from checkpointed entries
    without re-fetching receipts.  Returns [None] when the tuple does
    not match the relation's layout (a store version mismatch). *)
let of_packed (pred : string) (tuple : Xcw_datalog.Engine.Relation.tuple) :
    t option =
  let c = Array.map unpack tuple in
  let str i = match c.(i) with Str s -> s | Int _ -> raise Shape in
  let int i = match c.(i) with Int n -> n | Str _ -> raise Shape in
  let amt i =
    match c.(i) with
    | Str s -> U256.of_decimal_string s
    | Int _ -> raise Shape
  in
  let arity n = if Array.length c <> n then raise Shape in
  try
    Some
      (if pred = r_native_deposit then begin
         arity 6;
         Native_deposit
           { tx_hash = str 0; chain_id = int 1; event_index = int 2;
             from_ = str 3; to_ = str 4; amount = amt 5 }
       end
       else if pred = r_native_withdrawal then begin
         arity 6;
         Native_withdrawal
           { tx_hash = str 0; chain_id = int 1; event_index = int 2;
             from_ = str 3; to_ = str 4; amount = amt 5 }
       end
       else if pred = r_sc_token_deposited then begin
         arity 8;
         Sc_token_deposited
           { tx_hash = str 0; event_index = int 1; deposit_id = int 2;
             beneficiary = str 3; dst_token = str 4; orig_token = str 5;
             dst_chain_id = int 6; amount = amt 7 }
       end
       else if pred = r_tc_token_deposited then begin
         arity 6;
         Tc_token_deposited
           { tx_hash = str 0; event_index = int 1; deposit_id = int 2;
             beneficiary = str 3; dst_token = str 4; amount = amt 5 }
       end
       else if pred = r_tc_token_withdrew then begin
         arity 8;
         Tc_token_withdrew
           { tx_hash = str 0; event_index = int 1; withdrawal_id = int 2;
             beneficiary = str 3; orig_token = str 4; dst_token = str 5;
             dst_chain_id = int 6; amount = amt 7 }
       end
       else if pred = r_sc_token_withdrew then begin
         arity 6;
         Sc_token_withdrew
           { tx_hash = str 0; event_index = int 1; withdrawal_id = int 2;
             beneficiary = str 3; dst_token = str 4; amount = amt 5 }
       end
       else if pred = r_erc20_transfer then begin
         arity 7;
         Erc20_transfer
           { tx_hash = str 0; chain_id = int 1; event_index = int 2;
             contract = str 3; from_ = str 4; to_ = str 5; amount = amt 6 }
       end
       else if pred = r_transaction then begin
         arity 8;
         Transaction
           { timestamp = int 0; chain_id = int 1; tx_hash = str 2;
             from_ = str 3; to_ = str 4; value = amt 5; status = int 6;
             fee = amt 7 }
       end
       else if pred = r_bridge_controlled_address then begin
         arity 2;
         Bridge_controlled_address { chain_id = int 0; address = str 1 }
       end
       else if pred = r_token_mapping then begin
         arity 4;
         Token_mapping
           { src_chain_id = int 0; dst_chain_id = int 1; src_token = str 2;
             dst_token = str 3 }
       end
       else if pred = r_cctx_finality then begin
         arity 2;
         Cctx_finality { chain_id = int 0; finality_seconds = int 1 }
       end
       else if pred = r_wrapped_native_token then begin
         arity 2;
         Wrapped_native_token { chain_id = int 0; token = str 1 }
       end
       else if pred = r_bridge_event_decode_failure then begin
         arity 1;
         Bridge_event_decode_failure { tx_hash = str 0 }
       end
       else if pred = r_trace_gap then begin
         arity 2;
         Trace_gap { tx_hash = str 0; chain_id = int 1 }
       end
       else if pred = r_exit_deposit then begin
         arity 8;
         Exit_deposit
           { tx_hash = str 0; chain_id = int 1; event_index = int 2;
             leaf_index = int 3; token = str 4; amount = int 5;
             dest_chain_id = int 6; root = str 7 }
       end
       else if pred = r_exit_claim then begin
         arity 10;
         Exit_claim
           { tx_hash = str 0; chain_id = int 1; event_index = int 2;
             leaf_index = int 3; token = str 4; amount = int 5;
             origin_chain_id = int 6; root = str 7; seq = int 8;
             valid = int 9 }
       end
       else if pred = r_sealed_root then begin
         arity 4;
         Sealed_root
           { tx_hash = str 0; chain_id = int 1; epoch = int 2; root = str 3 }
       end
       else if pred = r_signed_root then begin
         arity 7;
         Signed_root
           { tx_hash = str 0; chain_id = int 1; origin_chain_id = int 2;
             epoch = int 3; root = str 4; validator = str 5; seq = int 6 }
       end
       else if pred = r_stake_event then begin
         arity 6;
         Stake_event
           { tx_hash = str 0; chain_id = int 1; validator = str 2;
             kind = str 3; amount = int 4; epoch = int 5 }
       end
       else raise Shape)
  with Shape | Invalid_argument _ | Failure _ -> None

(** Load a batch of facts into a Datalog database; returns the facts
    that were not already present — the fresh-tuple delta consumed by
    the incremental monitor. *)
let load_all db facts =
  List.filter
    (fun fact ->
      let pred, tuple = to_packed fact in
      Xcw_datalog.Engine.insert_packed db pred tuple)
    facts

let hex_of_address (a : Address.t) = Address.to_hex a
let hex_of_hash (h : Types.hash) = Xcw_util.Hex.encode_0x h
