(** Dissection of the derived Datalog relations into a classified
    anomaly report (the logic behind Tables 3 and 4).

    Shared by the batch {!Detector} and the streaming {!Monitor}: both
    evaluate the rules into a database, then call {!dissect} to turn
    the derived relations plus decoder errors into {!Report.t}. *)

module Engine = Xcw_datalog.Engine
open Xcw_datalog.Ast

(* --- tuple field accessors ----------------------------------------- *)

let str_at (t : const array) i =
  match t.(i) with Str s -> s | Int n -> string_of_int n

let int_at (t : const array) i =
  match t.(i) with Int n -> n | Str _ -> invalid_arg "int_at: string field"

let dissect ~label ~(config : Config.t) ~(pricing : Pricing.t)
    ~(first_window_withdrawal_id : int option)
    ~(decode_errors : Decoder.decode_error list) ~(db : Engine.db)
    ?(decode_seconds = 0.0) ?(eval_seconds = 0.0)
    ?(simulated_rpc_seconds = 0.0) ?total_facts () : Report.t =
  let src_chain_id = config.Config.source_chain_id in
  let dst_chain_id = config.Config.target_chain_id in
  let facts_of = Engine.facts db in
  let count_of = Engine.fact_count db in
  let membership pred positions =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun tuple ->
        List.iter (fun p -> Hashtbl.replace tbl (str_at tuple p) ()) positions)
      (facts_of pred);
    fun key -> Hashtbl.mem tbl key
  in
  let usd ~chain_id ~token amount_str =
    Pricing.usd_value_str pricing ~chain_id ~token amount_str
  in
  (* Row 2 anomalies: transfers into the bridge without a bridge event,
     classified by token reputation (Findings 1 and 2). *)
  let transfer_to_bridge_anomalies =
    List.map
      (fun t ->
        let chain_id = int_at t 1 in
        let token = str_at t 2 in
        let amount = str_at t 4 in
        let value = usd ~chain_id ~token amount in
        let reputable = Pricing.is_reputable pricing ~chain_id ~token in
        {
          Report.a_class =
            (if reputable then Report.Direct_transfer_to_bridge
             else Report.Phishing_token_transfer);
          a_tx_hash = str_at t 0;
          a_chain_id = chain_id;
          a_usd_value = value;
          a_detail =
            Printf.sprintf "token %s, %s units sent to bridge by %s" token
              amount (str_at t 3);
        })
      (facts_of Rules.r_transfer_to_bridge_no_event)
  in
  let sc_deposit_no_escrow_anomalies =
    List.map
      (fun t ->
        {
          Report.a_class = Report.Event_without_escrow;
          a_tx_hash = str_at t 0;
          a_chain_id = src_chain_id;
          a_usd_value = usd ~chain_id:src_chain_id ~token:(str_at t 2) (str_at t 3);
          a_detail =
            Printf.sprintf "TokenDeposited %s without escrow movement" (str_at t 1);
        })
      (facts_of Rules.r_sc_deposit_event_no_escrow)
  in
  (* Rows 4/8: unmatched records with cause classification (Table 4). *)
  let finality_dep_member = membership Rules.r_deposit_finality_violation [ 0; 1 ] in
  let finality_wdr_member = membership Rules.r_withdrawal_finality_violation [ 0; 1 ] in
  let mapping_dep_member = membership Rules.r_deposit_mapping_violation [ 0 ] in
  let mapping_wdr_member = membership Rules.r_withdrawal_mapping_violation [ 0 ] in
  let ben_mismatch_dep_member = membership Rules.r_deposit_beneficiary_mismatch [ 0; 1 ] in
  let ben_mismatch_wdr_member = membership Rules.r_withdrawal_beneficiary_mismatch [ 0; 1 ] in
  (* unmatched deposit tuples: (tx, ts, amt, did, token) *)
  let classify_unmatched_deposit ~chain_id tuple =
    let tx = str_at tuple 0 in
    let token = str_at tuple 4 in
    let cls =
      if finality_dep_member tx then Report.Finality_violation
      else if mapping_dep_member tx then Report.Token_mapping_violation
      else if ben_mismatch_dep_member tx then Report.Invalid_beneficiary_fp
      else Report.No_correspondence
    in
    {
      Report.a_class = cls;
      a_tx_hash = tx;
      a_chain_id = chain_id;
      a_usd_value = usd ~chain_id ~token (str_at tuple 2);
      a_detail = Printf.sprintf "deposit_id %d (token %s)" (int_at tuple 3) token;
    }
  in
  let deposit_anomalies =
    List.map (classify_unmatched_deposit ~chain_id:src_chain_id)
      (facts_of Rules.r_unmatched_sc_native_deposit)
    @ List.map (classify_unmatched_deposit ~chain_id:src_chain_id)
        (facts_of Rules.r_unmatched_sc_erc20_deposit)
    @ List.map (classify_unmatched_deposit ~chain_id:dst_chain_id)
        (facts_of Rules.r_unmatched_tc_deposit)
  in
  (* Withdrawal ids whose T-side event had an unparseable beneficiary:
     the S-side execution exists but can never match (Section 5.2.2's
     three false positives). *)
  let unparseable_wids =
    List.filter_map (fun e -> e.Decoder.err_withdrawal_id) decode_errors
  in
  (* unmatched withdrawal tuples: (tx, ts, amt, wid, ben, token). *)
  let classify_unmatched_withdrawal ~side tuple =
    let tx = str_at tuple 0 in
    let wid = int_at tuple 3 in
    let token = str_at tuple 5 in
    (* Withdrawals are priced on the source-chain token. *)
    let value = usd ~chain_id:src_chain_id ~token (str_at tuple 2) in
    let cls =
      if finality_wdr_member tx then Report.Finality_violation
      else if mapping_wdr_member tx then Report.Token_mapping_violation
      else if ben_mismatch_wdr_member tx then Report.Invalid_beneficiary_fp
      else if side = `S && List.mem wid unparseable_wids then
        Report.Invalid_beneficiary_fp
      else
        match (side, first_window_withdrawal_id) with
        | `S, Some first when wid < first -> Report.Pre_window_fp
        | _ -> Report.No_correspondence
    in
    {
      Report.a_class = cls;
      a_tx_hash = tx;
      a_chain_id = (match side with `S -> src_chain_id | `T -> dst_chain_id);
      a_usd_value = value;
      a_detail = Printf.sprintf "withdrawal_id %d beneficiary %s" wid (str_at tuple 4);
    }
  in
  let withdrawal_anomalies =
    List.map (classify_unmatched_withdrawal ~side:`T)
      (facts_of Rules.r_unmatched_tc_native_withdrawal)
    @ List.map (classify_unmatched_withdrawal ~side:`T)
        (facts_of Rules.r_unmatched_tc_erc20_withdrawal)
    @ List.map (classify_unmatched_withdrawal ~side:`S)
        (facts_of Rules.r_unmatched_sc_withdrawal)
  in
  (* Row 6: decode errors (unparseable 32-byte beneficiaries on T) and
     failed exploit probes (reverted transactions to the bridge). *)
  let unparseable_anomalies =
    List.filter_map
      (fun (e : Decoder.decode_error) ->
        if
          String.length e.Decoder.err_detail >= 11
          && String.sub e.Decoder.err_detail 0 11 = "unparseable"
        then
          Some
            {
              Report.a_class = Report.Unparseable_beneficiary;
              a_tx_hash = e.Decoder.err_tx_hash;
              a_chain_id = e.Decoder.err_chain_id;
              a_usd_value = 0.0;
              a_detail = e.Decoder.err_detail;
            }
        else None)
      decode_errors
  in
  let failed_exploit_anomalies =
    List.filter_map
      (fun t ->
        let chain_id = int_at t 1 in
        if chain_id = dst_chain_id then
          Some
            {
              Report.a_class = Report.Failed_exploit_attempt;
              a_tx_hash = str_at t 0;
              a_chain_id = chain_id;
              a_usd_value = 0.0;
              a_detail = Printf.sprintf "reverted bridge call from %s" (str_at t 2);
            }
        else None)
      (facts_of Rules.r_reverted_bridge_interaction)
  in
  let tc_withdraw_no_escrow_anomalies =
    List.map
      (fun t ->
        {
          Report.a_class = Report.Event_without_escrow;
          a_tx_hash = str_at t 0;
          a_chain_id = dst_chain_id;
          a_usd_value = 0.0;
          a_detail =
            Printf.sprintf "TokenWithdrew %d without escrow (token %s)"
              (int_at t 1) (str_at t 2);
        })
      (facts_of Rules.r_tc_withdraw_event_no_escrow)
  in
  (* Row 7 anomalies: transfers out of the bridge without events. *)
  let transfer_from_bridge_anomalies =
    List.map
      (fun t ->
        let chain_id = int_at t 1 in
        let token = str_at t 2 in
        let reputable = Pricing.is_reputable pricing ~chain_id ~token in
        {
          Report.a_class =
            (if reputable then Report.Event_without_escrow
             else Report.Phishing_token_transfer);
          a_tx_hash = str_at t 0;
          a_chain_id = chain_id;
          a_usd_value = usd ~chain_id ~token (str_at t 4);
          a_detail = Printf.sprintf "token %s left bridge toward %s" token (str_at t 3);
        })
      (facts_of Rules.r_transfer_from_bridge_no_event)
  in
  (* --- cctx dataset -------------------------------------------------- *)
  let cctx_deposits =
    List.map
      (fun t ->
        let src_token = str_at t 5 in
        {
          Report.c_kind = `Deposit;
          c_src_tx = str_at t 0;
          c_dst_tx = str_at t 1;
          c_id = int_at t 2;
          c_amount = str_at t 8;
          c_token = src_token;
          c_beneficiary = str_at t 7;
          c_usd_value = usd ~chain_id:src_chain_id ~token:src_token (str_at t 8);
          c_start_ts = int_at t 9;
          c_end_ts = int_at t 10;
        })
      (facts_of Rules.r_cctx_valid_deposit)
  in
  let cctx_withdrawals =
    List.map
      (fun t ->
        let src_token = str_at t 5 in
        {
          Report.c_kind = `Withdrawal;
          c_src_tx = str_at t 0;
          c_dst_tx = str_at t 1;
          c_id = int_at t 2;
          c_amount = str_at t 8;
          c_token = src_token;
          c_beneficiary = str_at t 7;
          c_usd_value = usd ~chain_id:src_chain_id ~token:src_token (str_at t 8);
          c_start_ts = int_at t 9;
          c_end_ts = int_at t 10;
        })
      (facts_of Rules.r_cctx_valid_withdrawal)
  in
  (* --- attack-pack tables (2023 hack corpus) ------------------------ *)
  (* Pre-window S-side releases have a legitimate (uncaptured) T-side
     request; exclude them from the forged-proof evidence exactly as
     rule 8's dissection classifies them as FPs. *)
  let pre_window wid =
    match first_window_withdrawal_id with
    | Some first -> wid < first
    | None -> false
  in
  let forged_proof_hits =
    List.filter_map
      (fun t ->
        let wid = int_at t 1 in
        if pre_window wid then None
        else
          let token = str_at t 3 and amt = str_at t 4 in
          Some
            {
              Report.ah_tx_hash = str_at t 0;
              ah_chain_id = src_chain_id;
              ah_id = wid;
              ah_usd_value = usd ~chain_id:src_chain_id ~token amt;
              ah_detail =
                Printf.sprintf
                  "withdrawal_id %d released %s of %s to %s, never requested on T"
                  wid amt token (str_at t 2);
            })
      (facts_of Rules.r_forged_proof_withdrawal)
  in
  let takeover_hits =
    List.map
      (fun t ->
        let wid = int_at t 2 in
        let token = str_at t 3 in
        let amt_t = str_at t 4 and amt_s = str_at t 5 in
        {
          Report.ah_tx_hash = str_at t 1;
          ah_chain_id = src_chain_id;
          ah_id = wid;
          ah_usd_value = usd ~chain_id:src_chain_id ~token amt_s;
          ah_detail =
            Printf.sprintf
              "withdrawal_id %d re-signed: %s requested on T, %s released on S"
              wid amt_t amt_s;
        })
      (facts_of Rules.r_validator_takeover_withdrawal)
  in
  let unauthorized_mint_hits =
    List.map
      (fun t ->
        let did = int_at t 1 in
        let token = str_at t 3 and amt = str_at t 4 in
        {
          Report.ah_tx_hash = str_at t 0;
          ah_chain_id = dst_chain_id;
          ah_id = did;
          ah_usd_value = usd ~chain_id:dst_chain_id ~token amt;
          ah_detail =
            Printf.sprintf "deposit_id %d minted %s of %s with no lock on S"
              did amt token;
        })
      (facts_of Rules.r_unauthorized_mint)
  in
  let inconsistent_event_hits =
    List.map
      (fun t ->
        let did = int_at t 2 in
        let token = str_at t 3 in
        let amt_s = str_at t 4 and amt_t = str_at t 5 in
        {
          Report.ah_tx_hash = str_at t 1;
          ah_chain_id = dst_chain_id;
          ah_id = did;
          ah_usd_value = usd ~chain_id:dst_chain_id ~token amt_t;
          ah_detail =
            Printf.sprintf "deposit_id %d locked %s on S but minted %s on T"
              did amt_s amt_t;
        })
      (facts_of Rules.r_inconsistent_deposit_event)
  in
  let attack_rows =
    [
      {
        Report.ar_class = Report.Forged_proof;
        ar_rule = Rules.r_forged_proof_withdrawal;
        ar_hits = forged_proof_hits;
      };
      {
        Report.ar_class = Report.Validator_takeover;
        ar_rule = Rules.r_validator_takeover_withdrawal;
        ar_hits = takeover_hits;
      };
      {
        Report.ar_class = Report.Unauthorized_mint;
        ar_rule = Rules.r_unauthorized_mint;
        ar_hits = unauthorized_mint_hits;
      };
      {
        Report.ar_class = Report.Inconsistent_event;
        ar_rule = Rules.r_inconsistent_deposit_event;
        ar_hits = inconsistent_event_hits;
      };
    ]
  in
  (* --- pessimistic-accounting tables (PR 10) ------------------------ *)
  (* Exit-bridge amounts are small ints in token base units; the
     workload prices exit tokens at $1 with 0 decimals, so the USD
     value is the amount itself. *)
  let stale_root_hits =
    List.map
      (fun t ->
        let leaf = int_at t 2 and amt = int_at t 4 in
        {
          Report.ah_tx_hash = str_at t 0;
          ah_chain_id = int_at t 1;
          ah_id = leaf;
          ah_usd_value = float_of_int amt;
          ah_detail =
            Printf.sprintf
              "leaf %d claimed %d of %s against the superseded epoch-%d root"
              leaf amt (str_at t 3) (int_at t 5);
        })
      (facts_of Rules.r_acc_stale_root_claim)
  in
  let forged_exit_hits =
    List.map
      (fun t ->
        let leaf = int_at t 2 and amt = int_at t 4 in
        {
          Report.ah_tx_hash = str_at t 0;
          ah_chain_id = int_at t 1;
          ah_id = leaf;
          ah_usd_value = float_of_int amt;
          ah_detail =
            Printf.sprintf "leaf %d claimed %d of %s with a non-verifying proof"
              leaf amt (str_at t 3);
        })
      (facts_of Rules.r_acc_forged_exit_proof)
  in
  let divergence_hits =
    List.map
      (fun t ->
        let epoch = int_at t 3 in
        {
          Report.ah_tx_hash = str_at t 0;
          ah_chain_id = int_at t 1;
          ah_id = epoch;
          ah_usd_value = 0.0;
          ah_detail =
            Printf.sprintf
              "validator %s attested root %s for chain-%d epoch %d, sealed %s"
              (str_at t 4) (str_at t 5) (int_at t 2) epoch (str_at t 6);
        })
      (facts_of Rules.r_acc_root_divergence)
  in
  let net_outflow_hits =
    List.map
      (fun t ->
        let amt = int_at t 4 in
        {
          Report.ah_tx_hash = str_at t 0;
          ah_chain_id = int_at t 1;
          ah_id = 0;
          ah_usd_value = float_of_int amt;
          ah_detail =
            Printf.sprintf
              "claim of %d draws on over-claimed pool (chain %d, token %s)"
              amt (int_at t 2) (str_at t 3);
        })
      (facts_of Rules.r_acc_outflow_tx)
  in
  let slashing_evasion_hits =
    List.map
      (fun t ->
        let amt = int_at t 3 in
        {
          Report.ah_tx_hash = str_at t 0;
          ah_chain_id = int_at t 1;
          ah_id = 0;
          ah_usd_value = float_of_int amt;
          ah_detail =
            Printf.sprintf
              "divergent validator %s withdrew stake %d without being slashed"
              (str_at t 2) amt;
        })
      (facts_of Rules.r_acc_slashing_evasion)
  in
  let acc_rows =
    [
      {
        Report.xr_class = Report.Stale_root_claim;
        xr_rule = Rules.r_acc_stale_root_claim;
        xr_hits = stale_root_hits;
      };
      {
        Report.xr_class = Report.Forged_exit_proof;
        xr_rule = Rules.r_acc_forged_exit_proof;
        xr_hits = forged_exit_hits;
      };
      {
        Report.xr_class = Report.Root_divergence;
        xr_rule = Rules.r_acc_root_divergence;
        xr_hits = divergence_hits;
      };
      {
        Report.xr_class = Report.Exit_net_outflow;
        xr_rule = Rules.r_acc_outflow_tx;
        xr_hits = net_outflow_hits;
      };
      {
        Report.xr_class = Report.Slashing_evasion;
        xr_rule = Rules.r_acc_slashing_evasion;
        xr_hits = slashing_evasion_hits;
      };
    ]
  in
  let rows =
    [
      {
        Report.rr_rule = "1. SC_ValidNativeTokenDeposit";
        rr_captured = count_of Rules.r_sc_valid_native_deposit;
        rr_anomalies = [];
      };
      {
        Report.rr_rule = "2. SC_ValidERC20TokenDeposit";
        rr_captured = count_of Rules.r_sc_valid_erc20_deposit;
        rr_anomalies = transfer_to_bridge_anomalies @ sc_deposit_no_escrow_anomalies;
      };
      {
        Report.rr_rule = "3. TC_ValidERC20TokenDeposit";
        rr_captured = count_of Rules.r_tc_valid_erc20_deposit;
        rr_anomalies = [];
      };
      {
        Report.rr_rule = "4. CCTX_ValidDeposit";
        rr_captured = List.length cctx_deposits;
        rr_anomalies = deposit_anomalies;
      };
      {
        Report.rr_rule = "5. TC_ValidNativeTokenWithdrawal";
        rr_captured = count_of Rules.r_tc_valid_native_withdrawal;
        rr_anomalies = [];
      };
      {
        Report.rr_rule = "6. TC_ValidERC20TokenWithdrawal";
        rr_captured = count_of Rules.r_tc_valid_erc20_withdrawal;
        rr_anomalies =
          unparseable_anomalies @ failed_exploit_anomalies
          @ tc_withdraw_no_escrow_anomalies;
      };
      {
        Report.rr_rule = "7. SC_ValidERC20TokenWithdrawal";
        rr_captured = count_of Rules.r_sc_valid_erc20_withdrawal;
        rr_anomalies = transfer_from_bridge_anomalies;
      };
      {
        Report.rr_rule = "8. CCTX_ValidWithdrawal";
        rr_captured = List.length cctx_withdrawals;
        rr_anomalies = withdrawal_anomalies;
      };
    ]
  in
  {
    Report.bridge_name = label;
    rows;
    attack_rows;
    acc_rows;
    cctxs = cctx_deposits @ cctx_withdrawals;
    total_facts =
      (match total_facts with Some n -> n | None -> Engine.total_tuples db);
    decode_seconds;
    eval_seconds;
    simulated_rpc_seconds;
  }
