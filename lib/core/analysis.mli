(** Post-detection analyses: the investigative steps the paper layers
    on top of the rule engine's output. *)

module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Engine = Xcw_datalog.Engine

(** {1 Deployer attribution (Section 5.2.5)} *)

val deployer_index : Chain.t -> (Address.t, Address.t) Hashtbl.t
(** Contract address -> creating EOA, from creation receipts. *)

val attribute_deployers : Chain.t -> Address.t list -> Address.t list
(** Resolve each beneficiary to its deploying EOA (when it is a
    contract) and dedup — the paper's "45 unique EOAs responsible for
    deploying these contracts". *)

val forged_withdrawal_beneficiaries :
  source_chain_id:int -> Report.t -> Address.t list
(** Receiving addresses of rule-8 S-side no-correspondence anomalies. *)

(** {1 Beneficiary balance analysis (Table 5)} *)

type balance_summary = {
  bs_total : int;
  bs_zero_balance : int;
  bs_below_gas_minimum : int;  (** < 0.0011 ETH, the Ronin docs minimum *)
}

val beneficiary_balances : Chain.t -> Address.t list -> balance_summary
(** Current S-chain balances — the "still today" column of Table 5. *)

(** {1 Salami-slicing detection (Section 6, future work)} *)

type salami_candidate = {
  sal_sender : string;  (** address hex *)
  sal_chain_id : int;
  sal_token : string;
  sal_events : int;
  sal_total_usd : float;
  sal_max_single_usd : float;
  sal_first_ts : int;
  sal_last_ts : int;
}

val salami_candidates :
  ?min_events:int ->
  ?max_single_usd:float ->
  ?min_total_usd:float ->
  Engine.db ->
  Pricing.t ->
  salami_candidate list
(** Senders that split a large total across many small valid deposits
    of the same token: >= [min_events] deposits (default 10), each
    <= [max_single_usd] (default $1K), summing to >= [min_total_usd]
    (default $5K).  Sorted by total, descending. *)
