(** Event and Transaction Data Decoder — phase 1 of XChainWatcher.

    Consumes transaction receipts through the RPC facade and produces
    the logical relations of Listing 1.  Plugin-based: a {!plugin}
    describes a protocol's event shapes (notably its beneficiary
    representation).

    Receipts suffice for most facts; native value transfers need extra
    RPC calls ([eth_getTransactionByHash], [debug_traceTransaction]) to
    recover [tx.value] and internal transfers — the dominant cost in
    the paper's Table 2 / Figure 4.

    Beneficiaries decode leniently (left- or right-padded 32-byte
    forms); an unpadded 32-byte string is reported as a
    {!decode_error} — the paper's "unparseable address" anomalies. *)

module Types = Xcw_evm.Types
module Rpc = Xcw_rpc.Rpc
module Client = Xcw_rpc.Client

type chain_role = Source | Target

type plugin = {
  plugin_name : string;
  beneficiary_repr : Xcw_bridge.Events.beneficiary_repr;
}

val ronin_plugin : plugin
(** 20-byte address beneficiaries. *)

val nomad_plugin : plugin
(** 32-byte beneficiary fields. *)

type decode_error = {
  err_tx_hash : string;
  err_chain_id : int;
  err_event_index : int;
  err_detail : string;
  err_withdrawal_id : int option;
      (** the withdrawal id of a TokenWithdrew event whose beneficiary
          could not be parsed — links the S-side execution to the
          undecodable T-side request *)
}

type receipt_decode = {
  rd_facts : Facts.t list;
  rd_errors : decode_error list;
  rd_latency : float;  (** simulated seconds to extract this receipt *)
  rd_is_native : bool;  (** required tracer calls *)
  rd_trace_gap : bool;
      (** the tracer was needed but unavailable: facts were extracted
          without internal transfers and a {!Facts.Trace_gap} marker
          was emitted *)
  rd_provenance : Client.provenance;
      (** where the data came from: [Single] endpoint or
          [Quorum {k; n}] cross-validated reads.  Deliberately not
          part of the facts themselves, so pool-backed and
          single-endpoint runs derive identical fact multisets and
          reports. *)
}

val decode_receipt :
  plugin ->
  Config.t ->
  role:chain_role ->
  chain_id:int ->
  Client.t ->
  Types.receipt ->
  (receipt_decode, Rpc.error) result
(** Decode one transaction's facts (the receipt itself already in
    hand); charges tx/trace RPC latency when native value is involved.
    A failed [eth_getTransactionByHash] (after the client's retries)
    fails the whole receipt so no partial fact set is ever produced —
    the caller retries later.  A failed tracer degrades instead:
    facts are emitted trace-less with [rd_trace_gap] set. *)

val decode_chain :
  ?ndomains:int ->
  plugin ->
  Config.t ->
  role:chain_role ->
  Client.t ->
  Xcw_chain.Chain.t ->
  receipt_decode list
(** Decode a whole chain's receipts in order, including the
    receipt-fetch latency per transaction.  Transient failures are
    retried until the receipt decodes; a receipt that keeps failing
    (non-transient plan) yields an empty decode carrying one
    {!decode_error} with an ["rpc failure"] detail rather than
    raising.

    [ndomains] (default 1: the sequential path, unchanged) fans the
    RPC-free log-decoding phase out over the shared {!Xcw_par.Pool} in
    contiguous per-receipt chunks, while receipt and transaction/trace
    fetches stay sequential (the simulated client is single-domain).
    Facts, errors and result order are identical at any worker count;
    only the order of RPC calls — and hence which simulated latency
    draw lands on which call — changes. *)
