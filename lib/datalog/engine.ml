(** Datalog evaluation engine.

    Bottom-up, stratified, semi-naive evaluation with hash-indexed
    joins — the same evaluation strategy class as Souffle's interpreter,
    which the paper uses.  The Ronin analysis pushes >1.5 million fact
    tuples through ~30 rules, so join performance matters: relations
    maintain on-demand hash indices keyed by bound column positions.

    Unsupported (not needed by the cross-chain rules): aggregation,
    arithmetic in rule heads, and non-stratifiable negation (rejected
    with [Not_stratifiable]). *)

open Ast
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span
module Pool = Xcw_par.Pool

exception Unsafe_rule of string
exception Not_stratifiable of string

(* ------------------------------------------------------------------ *)
(* Relations with on-demand indices                                    *)

module Relation = struct
  type tuple = int array
  (** A tuple of {!Ast.packed} constants — interned at load time, so
      equality/hashing/joining never touch a string. *)

  (* Tuples and index keys are flat int arrays.  The generic
     polymorphic hash would work, but a dedicated functor instance
     skips the tag dispatch, never truncates (Hashtbl.hash stops after
     10 meaningful words), and makes the hash explicit. *)
  module Key = struct
    type t = int array

    let equal (a : int array) (b : int array) =
      let n = Array.length a in
      n = Array.length b
      &&
      let i = ref 0 in
      while !i < n && Array.unsafe_get a !i = Array.unsafe_get b !i do
        incr i
      done;
      !i = n

    let hash (a : int array) =
      let h = ref 0 in
      for i = 0 to Array.length a - 1 do
        h := (!h * 0x9E3779B1) + Array.unsafe_get a i
      done;
      let h = !h in
      (h lxor (h lsr 17)) land max_int
  end

  module Ktbl = Hashtbl.Make (Key)

  (* An index is sharded by key hash into a fixed number of sub-tables
     so a large build can be filled by several domains at once — one
     task per shard, no shared mutable table.  The shard count is a
     constant, never a function of the pool, so the structure (and with
     it every lookup result) is identical at any worker count; within a
     shard, the tuples of one key are inserted in relation-iteration
     order exactly as an unsharded fill would insert them, so each
     per-key candidate list is identical to a sequential on-demand
     build.

     Each shard is an open-addressing map from projected key to the
     key's candidate list, with the key hash cached per entry — the
     same layout as the relation's tuple set, and for the same
     reasons: one hash per probe or insert (the hash picks the shard
     {e and} the slot, where the old [Hashtbl]-backed shards hashed
     once for the shard and again inside the table), hash-first
     rejection, and growth without re-hashing.  A slot stores (entry
     index + 1), 0 meaning empty; load factor ≤ 1/2. *)
  type ishard = {
    mutable sk : int array array;  (* projected key per entry *)
    mutable sh : int array;  (* cached key hash per entry *)
    mutable sv : tuple list ref array;  (* candidates, newest first *)
    mutable sn : int;
    mutable sslots : int array;  (* open addressing; power-of-two length *)
  }

  type index = {
    ix_positions : int array;
    ix_shards : ishard array;
    ix_scratch : int array;
        (* projection buffer for [index_insert], so a tuple whose key
           is already present allocates nothing.  Safe because every
           [index_insert] context is single-writer: sequential adds,
           the parallel merge (submitter only), and whole-index fill
           tasks (one task per index, disjoint scratches). *)
  }

  (* Tuple storage is an insertion log plus an open-addressing slot
     table over it, instead of a [unit Ktbl.t]:

     - [add]/[mem] compute the tuple hash {e once} (stdlib hash tables
       hash again per operation, so the old mem-then-insert pair
       hashed every new tuple twice and every duplicate once more);
     - hashes are cached per log entry, so growing the slot table
       re-places entries without ever re-hashing a tuple, and slot
       probes reject non-equal tuples on a one-word hash compare
       before touching the arrays;
     - iteration order is insertion order by construction — stable,
       load-order-reproducible, and shared for free by [iter],
       [to_list] and [to_array] (the latter a plain [Array.sub], where
       the hash-table fold used to walk every bucket);
     - no per-entry list cells: the log and slot tables are flat int
       and pointer arrays.

     The slot table keeps load factor ≤ 1/2; a slot stores (log index
     + 1), 0 meaning empty.  There is no deletion — [clear] resets the
     whole relation. *)
  type t = {
    mutable arity : int option;
    mutable log : tuple array;  (* entries [0, n) live, insertion order *)
    mutable hashes : int array;  (* cached [Key.hash] per log entry *)
    mutable n : int;
    mutable slots : int array;  (* open addressing; power-of-two length *)
    (* position list -> key-hash-sharded (projected key -> tuples) *)
    indices : (int list, index) Hashtbl.t;
    (* same indices as a list — [add] maintains every index per tuple,
       and walking a cons list beats an [Hashtbl.iter] bucket sweep on
       a path taken once per inserted tuple. *)
    mutable index_list : index list;
  }

  let nshards = 16

  (* O(1) shard pick over packed-int keys.  Packed constants are far
     from uniform in their low bits — string constants are sequential
     intern ids shifted left with the tag bit set (all odd), ints are
     all even — so taking [land (nshards - 1)] of a raw sum would use
     half the shards at best.  Re-mixing the accumulated key hash with
     a multiply–xor–shift finalizer (murmur3-style) avalanches the low
     bits before the mask; the distribution test in test_interned.ml
     pins this property. *)
  let mix k =
    let h = k * 0x9E3779B1 in
    let h = h lxor (h lsr 16) in
    let h = h * 0x85EBCA77 in
    h lxor (h lsr 13)

  let shard_of_key (key : int array) = mix (Key.hash key) land (nshards - 1)

  let create () =
    {
      arity = None;
      log = Array.make 16 [||];
      hashes = Array.make 16 0;
      n = 0;
      slots = Array.make 64 0;
      indices = Hashtbl.create 4;
      index_list = [];
    }

  let size t = t.n

  (* Locate [tuple] (whose hash is [h]) in the slot table: returns the
     slot {e content} ([log index + 1]) when present, and [-(s + 1)]
     for the first empty slot [s] of its probe sequence when absent. *)
  let find_slot t (h : int) (tuple : tuple) =
    let slots = t.slots in
    let hashes = t.hashes in
    let log = t.log in
    let mask = Array.length slots - 1 in
    let i = ref (mix h land mask) in
    let res = ref 0 in
    let searching = ref true in
    while !searching do
      let e = Array.unsafe_get slots !i in
      if e = 0 then begin
        res := -(!i + 1);
        searching := false
      end
      else if
        Array.unsafe_get hashes (e - 1) = h
        && Key.equal (Array.unsafe_get log (e - 1)) tuple
      then begin
        res := e;
        searching := false
      end
      else i := (!i + 1) land mask
    done;
    !res

  let mem t tuple = find_slot t (Key.hash tuple) tuple > 0

  (* Double the slot table, re-placing every live entry from its cached
     hash — no tuple is re-hashed. *)
  let grow_slots t =
    let size = 2 * Array.length t.slots in
    let slots = Array.make size 0 in
    let mask = size - 1 in
    for j = 0 to t.n - 1 do
      let i = ref (mix (Array.unsafe_get t.hashes j) land mask) in
      while Array.unsafe_get slots !i <> 0 do
        i := (!i + 1) land mask
      done;
      Array.unsafe_set slots !i (j + 1)
    done;
    t.slots <- slots

  let check_arity t tuple =
    match t.arity with
    | None -> t.arity <- Some (Array.length tuple)
    | Some a ->
        if a <> Array.length tuple then
          invalid_arg
            (Printf.sprintf "Relation: arity mismatch (%d vs %d)" a
               (Array.length tuple))

  let project (positions : int array) (tuple : tuple) =
    let np = Array.length positions in
    let key = Array.make np 0 in
    for j = 0 to np - 1 do
      key.(j) <- tuple.(Array.unsafe_get positions j)
    done;
    key

  let ishard_create cap =
    let cap = max 8 cap in
    let slots = ref 32 in
    while !slots < 2 * cap do
      slots := 2 * !slots
    done;
    {
      sk = Array.make cap [||];
      sh = Array.make cap 0;
      sv = Array.make cap (ref []);
      sn = 0;
      sslots = Array.make !slots 0;
    }

  (* Mirrors [find_slot]: positive slot content ([entry index + 1])
     when [key] is present, [-(s + 1)] for the first empty slot [s]
     when absent. *)
  let ishard_find_slot (s : ishard) (h : int) (key : int array) =
    let slots = s.sslots in
    let sh = s.sh in
    let sk = s.sk in
    let mask = Array.length slots - 1 in
    let i = ref (mix h land mask) in
    let res = ref 0 in
    let searching = ref true in
    while !searching do
      let e = Array.unsafe_get slots !i in
      if e = 0 then begin
        res := -(!i + 1);
        searching := false
      end
      else if
        Array.unsafe_get sh (e - 1) = h
        && Key.equal (Array.unsafe_get sk (e - 1)) key
      then begin
        res := e;
        searching := false
      end
      else i := (!i + 1) land mask
    done;
    !res

  let ishard_grow_slots (s : ishard) =
    let size = 2 * Array.length s.sslots in
    let slots = Array.make size 0 in
    let mask = size - 1 in
    for j = 0 to s.sn - 1 do
      let i = ref (mix (Array.unsafe_get s.sh j) land mask) in
      while Array.unsafe_get slots !i <> 0 do
        i := (!i + 1) land mask
      done;
      Array.unsafe_set slots !i (j + 1)
    done;
    s.sslots <- slots

  (* Cons [tuple] onto [key]'s candidate list, creating the entry if
     the key is new.  [h] must be [Key.hash key].  [~copy_key] copies
     the key array before storing it — pass [false] only when the
     caller owns [key] outright (the parallel fill, whose key arrays
     are freshly projected per tuple). *)
  let ishard_add (s : ishard) (h : int) (key : int array) ~copy_key tuple =
    let f = ishard_find_slot s h key in
    if f > 0 then begin
      let l = Array.unsafe_get s.sv (f - 1) in
      l := tuple :: !l
    end
    else begin
      let cap = Array.length s.sk in
      if s.sn = cap then begin
        let sk = Array.make (2 * cap) [||] in
        Array.blit s.sk 0 sk 0 s.sn;
        let sh = Array.make (2 * cap) 0 in
        Array.blit s.sh 0 sh 0 s.sn;
        let sv = Array.make (2 * cap) (ref []) in
        Array.blit s.sv 0 sv 0 s.sn;
        s.sk <- sk;
        s.sh <- sh;
        s.sv <- sv
      end;
      s.sk.(s.sn) <- (if copy_key then Array.copy key else key);
      s.sh.(s.sn) <- h;
      s.sv.(s.sn) <- ref [ tuple ];
      let slot =
        if 2 * (s.sn + 1) > Array.length s.sslots then begin
          ishard_grow_slots s;
          let mask = Array.length s.sslots - 1 in
          let i = ref (mix h land mask) in
          while Array.unsafe_get s.sslots !i <> 0 do
            i := (!i + 1) land mask
          done;
          !i
        end
        else -f - 1
      in
      s.sslots.(slot) <- s.sn + 1;
      s.sn <- s.sn + 1
    end

  let ishard_reset (s : ishard) =
    Array.fill s.sk 0 s.sn [||];
    Array.fill s.sv 0 s.sn (ref []);
    s.sn <- 0;
    Array.fill s.sslots 0 (Array.length s.sslots) 0

  let index_insert (idx : index) tuple =
    let key = idx.ix_scratch in
    let positions = idx.ix_positions in
    for j = 0 to Array.length positions - 1 do
      Array.unsafe_set key j
        (Array.unsafe_get tuple (Array.unsafe_get positions j))
    done;
    let h = Key.hash key in
    ishard_add idx.ix_shards.(mix h land (nshards - 1)) h key ~copy_key:true
      tuple

  (** [add t tuple] inserts; returns [true] if the tuple is new. *)
  let add t tuple =
    check_arity t tuple;
    let h = Key.hash tuple in
    let f = find_slot t h tuple in
    if f > 0 then false
    else begin
      let cap = Array.length t.log in
      if t.n = cap then begin
        let log = Array.make (2 * cap) [||] in
        Array.blit t.log 0 log 0 t.n;
        let hashes = Array.make (2 * cap) 0 in
        Array.blit t.hashes 0 hashes 0 t.n;
        t.log <- log;
        t.hashes <- hashes
      end;
      Array.unsafe_set t.log t.n tuple;
      Array.unsafe_set t.hashes t.n h;
      let s =
        if 2 * (t.n + 1) > Array.length t.slots then begin
          grow_slots t;
          (* The empty slot from [find_slot] is stale now. *)
          let mask = Array.length t.slots - 1 in
          let i = ref (mix h land mask) in
          while Array.unsafe_get t.slots !i <> 0 do
            i := (!i + 1) land mask
          done;
          !i
        end
        else -f - 1
      in
      t.slots.(s) <- t.n + 1;
      t.n <- t.n + 1;
      List.iter (fun idx -> index_insert idx tuple) t.index_list;
      true
    end

  (* Insertion order — which [to_list] and [to_array] share, so
     parallel chunking (which partitions the array) visits candidates
     in exactly the order the sequential path does.  Log and count are
     latched up front: entries below [n] are immutable once appended,
     so this behaves as a snapshot even if [f] adds tuples (a
     recursive rule joining over its own head). *)
  let iter t f =
    let log = t.log and n = t.n in
    for i = 0 to n - 1 do
      f (Array.unsafe_get log i)
    done

  let to_list t =
    let l = ref [] in
    for i = t.n - 1 downto 0 do
      l := Array.unsafe_get t.log i :: !l
    done;
    !l

  let to_array t = Array.sub t.log 0 t.n

  (** [clear t] removes every tuple but keeps the arity and the set of
      registered index position-lists, so indices built by earlier
      lookups are maintained (not rebuilt) by subsequent [add]s — the
      retraction primitive for re-deriving non-monotonic relations in
      place. *)
  let clear t =
    Array.fill t.log 0 t.n [||];
    t.n <- 0;
    Array.fill t.slots 0 (Array.length t.slots) 0;
    Hashtbl.iter (fun _ idx -> Array.iter ishard_reset idx.ix_shards) t.indices

  let new_index t positions : index =
    {
      ix_positions = Array.of_list positions;
      ix_shards =
        Array.init nshards (fun _ -> ishard_create (size t / (2 * nshards)));
      ix_scratch = Array.make (List.length positions) 0;
    }

  (** [ensure_index t positions] builds the hash index for [positions]
      if absent.  Parallel evaluation pre-builds every index a stratum
      can touch so worker domains only ever {e read} the relation. *)
  let ensure_index t positions =
    match positions with
    | [] -> ()
    | _ ->
        if not (Hashtbl.mem t.indices positions) then begin
          let idx = new_index t positions in
          iter t (fun tuple -> index_insert idx tuple);
          Hashtbl.replace t.indices positions idx;
          t.index_list <- idx :: t.index_list
        end

  (* Parallel index construction: register the (empty) index on the
     submitting domain — so a single thread owns the [indices] map —
     and return closures that fill it on any domain.  [`Fill f] is one
     task for the whole index (small relations).  [`Sharded (n, ka, is)]
     splits a big fill two ways: [ka lo hi] projects and shard-hashes
     tuples [lo, hi) of a snapshot array into scratch arrays (disjoint
     ranges, any domain), and — only after {e every} range task has
     run — [is s] inserts the tuples of shard [s] (one task per shard,
     each owning a disjoint sub-table).  The snapshot array is in
     iteration (insertion) order, so the insert loop walks it forward
     to reproduce the exact insert order of a sequential fill.
     Contract: no [add] until every
     returned phase has run, or the tuple would be indexed twice.
     [None] when the index already exists (or [positions] is empty). *)
  let shard_fill_threshold = 4096

  let prepare_index t positions =
    match positions with
    | [] -> None
    | _ ->
        if Hashtbl.mem t.indices positions then None
        else begin
          let idx = new_index t positions in
          Hashtbl.replace t.indices positions idx;
          t.index_list <- idx :: t.index_list;
          let n = size t in
          if n < shard_fill_threshold then
            Some (`Fill (fun () -> iter t (fun tuple -> index_insert idx tuple)))
          else begin
            let arr = to_array t in
            let keys = Array.make n [||] in
            let hs = Array.make n 0 in
            let shards = Array.make n 0 in
            let keys_range lo hi =
              for i = lo to hi - 1 do
                let key = project idx.ix_positions arr.(i) in
                let h = Key.hash key in
                keys.(i) <- key;
                hs.(i) <- h;
                shards.(i) <- mix h land (nshards - 1)
              done
            in
            let insert_shard s =
              let sh = idx.ix_shards.(s) in
              for i = 0 to n - 1 do
                if shards.(i) = s then
                  ishard_add sh hs.(i) keys.(i) ~copy_key:false arr.(i)
              done
            in
            Some (`Sharded (n, keys_range, insert_shard))
          end
        end

  (** [find_index t positions] returns the hash index for [positions],
      building it on first use.  [positions] must be non-empty.  The
      returned handle stays valid for the relation's whole lifetime:
      indices are registered once and maintained in place (even across
      {!clear}), never replaced — which is what lets the evaluator
      cache it per compiled probe instead of re-walking the
      position-list hash table on every lookup. *)
  let find_index t positions : index =
    ensure_index t positions;
    Hashtbl.find t.indices positions

  (** [probe idx key] returns all tuples of [idx] whose projection
      equals [key]. *)
  let probe (idx : index) (key : int array) =
    let h = Key.hash key in
    let s = idx.ix_shards.(mix h land (nshards - 1)) in
    let f = ishard_find_slot s h key in
    if f > 0 then !(Array.unsafe_get s.sv (f - 1)) else []

  (** [lookup t positions key] returns all tuples whose projection on
      [positions] equals [key], using (and building on first use) a hash
      index. *)
  let lookup t positions (key : int array) =
    match positions with
    | [] -> to_list t
    | _ -> probe (find_index t positions) key
end

(* ------------------------------------------------------------------ *)
(* Database                                                            *)

(* A database is designed to persist across evaluation runs (the
   streaming monitor keeps one per bridge): [db_journal] records EDB
   tuples inserted since the last run — the initial semi-naive delta of
   [run_incremental] — and [db_derived] records which predicates the
   engine itself populates, so retraction can clear exactly those. *)
type db = {
  db_rels : (string, Relation.t) Hashtbl.t;
  db_journal : (string, Relation.tuple list ref) Hashtbl.t;
  db_derived : (string, unit) Hashtbl.t;
  mutable db_ran : bool;  (** at least one evaluation has completed *)
  mutable db_gen : int;
      (** bumped whenever a relation is created — the only change the
          evaluator's per-atom relation-handle caches need to observe
          (relations are never replaced or removed, only added). *)
}

let create_db () : db =
  {
    db_rels = Hashtbl.create 64;
    db_journal = Hashtbl.create 16;
    db_derived = Hashtbl.create 16;
    db_ran = false;
    db_gen = 0;
  }

let relation (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> r
  | None ->
      let r = Relation.create () in
      Hashtbl.replace db.db_rels pred r;
      db.db_gen <- db.db_gen + 1;
      r

(** [insert_packed db pred tuple] inserts an already-packed tuple and
    returns [true] iff it is new.  The fact-loading hot path: no
    [const] boxes are ever allocated.  The array is owned by the
    database afterwards — callers must not mutate it.  New tuples are
    journaled as part of the delta for the next {!run_incremental}. *)
let insert_packed (db : db) pred (t : Relation.tuple) =
  Relation.add (relation db pred) t
  && begin
       (match Hashtbl.find_opt db.db_journal pred with
       | Some l -> l := t :: !l
       | None -> Hashtbl.replace db.db_journal pred (ref [ t ]));
       true
     end

(** [insert_fact db pred tuple] packs and inserts; [true] iff new. *)
let insert_fact (db : db) pred tuple =
  insert_packed db pred (Array.of_list (List.map Ast.pack tuple))

let add_fact (db : db) pred tuple = ignore (insert_fact db pred tuple)

(* Decoded and sorted: relation contents are sets held in hash tables
   whose traversal order depends on hash values — which the interning
   scheme ties to load order.  Every output-facing consumer (dissect
   rows, alert streams, exports) reads facts through here, so sorting
   makes reports a function of the fact {e set}, not the load order. *)
let facts (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r ->
      List.sort compare
        (List.rev_map (Array.map Ast.unpack) (Relation.to_list r))
  | None -> []

let packed_facts (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> Relation.to_list r
  | None -> []

let fact_count (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> Relation.size r
  | None -> 0

let total_tuples (db : db) =
  Hashtbl.fold (fun _ r acc -> acc + Relation.size r) db.db_rels 0

let derived_predicates (db : db) =
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) db.db_derived [])

(* Declare a database restored from durable storage to be at an
   evaluation fixpoint: graft the persisted engine-derived tuples
   (without journaling them), absorb everything loaded so far into the
   fixpoint by clearing the pending delta journal, and mark the
   database as evaluated so the next [run_incremental] treats only
   facts inserted after this call as its delta. *)
let restore_fixpoint (db : db) ~derived =
  List.iter
    (fun (pred, tuples) ->
      let r = relation db pred in
      List.iter (fun t -> ignore (Relation.add r t)) tuples;
      Hashtbl.replace db.db_derived pred ())
    derived;
  Hashtbl.reset db.db_journal;
  db.db_ran <- true

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Souffle's TSV reader has no in-band escaping, so a raw tab or
   newline inside a fact value would silently shift every following
   cell.  We emit backslash escapes for the four dangerous characters;
   consumers that need the exact original can unescape them. *)
let escape_cell s =
  let needs_escape = ref false in
  String.iter
    (function '\t' | '\n' | '\r' | '\\' -> needs_escape := true | _ -> ())
    s;
  if not !needs_escape then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

(** Write every relation as a tab-separated [<pred>.facts] file in
    [dir] — the input format Souffle consumes, so an exported fact base
    can be fed to the original XChainWatcher artifact for
    cross-validation.  [dir] and its parents are created as needed;
    tabs/newlines/backslashes inside values are backslash-escaped.
    Rows are sorted lexicographically, so the files are byte-stable
    across insertion orders and worker counts (a relation is a set; the
    hash-table iteration order is an implementation detail). *)
let dump_facts (db : db) ~dir =
  mkdir_p dir;
  Hashtbl.iter
    (fun pred rel ->
      (* Write-temp + atomic rename: a crash mid-dump must never leave
         a truncated [.facts] file where a reader expects a complete
         one.  The temp name is deterministic, so a leftover from an
         aborted dump is simply overwritten on the next attempt. *)
      let path = Filename.concat dir (pred ^ ".facts") in
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      let lines = ref [] in
      Relation.iter rel (fun tuple ->
          let cells =
            Array.to_list tuple
            |> List.map (fun p ->
                   if Ast.packed_is_int p then Ast.packed_to_string p
                   else escape_cell (Ast.packed_to_string p))
          in
          lines := String.concat "\t" cells :: !lines);
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (List.sort compare !lines);
      close_out oc;
      Sys.rename tmp path)
    db.db_rels

(* ------------------------------------------------------------------ *)
(* Safety checks                                                       *)

let check_rule_safety (r : rule) =
  let bound = ref [] in
  List.iter
    (function
      | Pos a -> bound := atom_vars a @ !bound
      | Neg _ | Cmp _ -> ())
    r.body;
  let is_bound v = List.mem v !bound in
  List.iter
    (fun v ->
      if not (is_bound v) then
        raise
          (Unsafe_rule
             (Format.asprintf "head variable %s not bound by a positive literal in %a" v
                pp_rule r)))
    (atom_vars r.head);
  List.iter
    (function
      | Neg a ->
          List.iter
            (fun v ->
              if not (is_bound v) then
                raise
                  (Unsafe_rule
                     (Format.asprintf "negated variable %s unbound in %a" v pp_rule r)))
            (atom_vars a)
      | Cmp (_, l, rr) ->
          List.iter
            (fun v ->
              if not (is_bound v) then
                raise
                  (Unsafe_rule
                     (Format.asprintf "comparison variable %s unbound in %a" v pp_rule r)))
            (expr_vars l @ expr_vars rr)
      | Pos _ -> ())
    r.body

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)

(** Compute strata via the strongly connected components of the
    head-predicate dependency graph, in topological order.  Each SCC
    becomes its own stratum; a negative edge inside an SCC makes the
    program non-stratifiable.  The returned [bool] is whether the
    stratum is recursive (needs fixpoint iteration): non-recursive
    strata — the common case for the cross-chain rules — are evaluated
    in a single pass. *)
let stratify (rules : rule list) : (rule list * bool) list =
  let preds =
    List.sort_uniq compare (List.map (fun r -> r.head.pred) rules)
  in
  let derived p = List.mem p preds in
  (* Dependency edges head -> body-predicate, with polarity. *)
  let deps = Hashtbl.create 64 in
  let add_dep h b negated =
    let l = Option.value (Hashtbl.find_opt deps h) ~default:[] in
    if not (List.mem (b, negated) l) then Hashtbl.replace deps h ((b, negated) :: l)
  in
  List.iter
    (fun r ->
      List.iter
        (function
          | Pos a when derived a.pred -> add_dep r.head.pred a.pred false
          | Neg a when derived a.pred -> add_dep r.head.pred a.pred true
          | _ -> ())
        r.body)
    rules;
  let successors p =
    Option.value (Hashtbl.find_opt deps p) ~default:[] |> List.map fst
  in
  (* Tarjan's SCC algorithm; emits SCCs in reverse topological order of
     the condensation (dependencies last), so we reverse at the end to
     evaluate dependencies first. *)
  let index = Hashtbl.create 16 and lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* Pop the component. *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun p -> if not (Hashtbl.mem index p) then strongconnect p) preds;
  let ordered = List.rev !sccs (* topological: dependencies first *) in
  List.filter_map
    (fun component ->
      let in_component p = List.mem p component in
      (* Recursive iff the component has an internal edge. *)
      let recursive =
        List.exists
          (fun p ->
            List.exists
              (fun (b, negated) ->
                if in_component b then begin
                  if negated then
                    raise
                      (Not_stratifiable
                         (Printf.sprintf "negation cycle through %s" p));
                  true
                end
                else false)
              (Option.value (Hashtbl.find_opt deps p) ~default:[]))
          component
      in
      let group = List.filter (fun r -> in_component r.head.pred) rules in
      if group = [] then None else Some (group, recursive))
    ordered

(* ------------------------------------------------------------------ *)
(* Rule evaluation                                                     *)

(* Rules are compiled before evaluation: every variable gets an integer
   slot, and the body is evaluated as a depth-first backtracking join
   over a single mutable environment.  Compared to materializing
   substitution lists per literal, this allocates almost nothing per
   candidate tuple — rule evaluation over large fact bases is
   allocation-bound. *)

(* [S_const] holds the {e packed} constant (see {!Ast.packed}). *)
type slot_term = S_const of int | S_var of int

(* [c_rel]/[c_gen] cache the atom's relation handle per database
   generation: resolving the predicate through [db_rels] costs a string
   hash per probe, and the resolution can only change when a relation
   is created ([db_gen] bumps).  Compiled rules are per-run (each
   stratum evaluation recompiles), so a cache never outlives its
   database.  During a parallel pass the caches are pre-resolved on the
   submitting domain ([resolve_caches]) and [db_gen] is frozen, so
   worker domains only ever {e read} them. *)
type compiled_atom = {
  c_pred : string;
  c_args : slot_term array;
  mutable c_rel : Relation.t option;
  mutable c_gen : int;
}

type pr_cache = PC_none | PC_some of Relation.t * Relation.index

(* A probe: the statically-known bound positions of a positive body
   literal, with the key sources aligned position-for-position.  The
   variable slots bound when control reaches a body literal are
   statically known — evaluation is strictly left-to-right, positive
   literals bind all their variables, negations and comparisons bind
   none — so the per-candidate [bound_positions] scan of the boxed
   engine (two list allocations per probe) collapses to filling a
   small int-array key from a precomputed template.  [pr_cache] holds
   the resolved index handle (valid as long as the cached relation is
   the atom's current one — index handles themselves never go stale,
   see {!Relation.find_index}). *)
type probe = {
  pr_positions : int list;  (* index registration/lookup key *)
  pr_sources : slot_term array;  (* aligned with pr_positions *)
  mutable pr_cache : pr_cache;
}

type compiled_expr =
  | CE_packed of int
  | CE_var of int
  | CE_add of compiled_expr * compiled_expr
  | CE_sub of compiled_expr * compiled_expr
  | CE_mul of compiled_expr * compiled_expr

type compiled_literal =
  | C_pos of compiled_atom * probe
  | C_neg of compiled_atom
  | C_cmp of cmp_op * compiled_expr * compiled_expr

type compiled_rule = {
  cr_nvars : int;
  cr_head : compiled_atom;
  cr_body : compiled_literal array;
  cr_source : rule;
}

let compile_rule (r : rule) : compiled_rule =
  let slots = Hashtbl.create 16 in
  let nvars = ref 0 in
  let slot_of v =
    match Hashtbl.find_opt slots v with
    | Some i -> i
    | None ->
        let i = !nvars in
        incr nvars;
        Hashtbl.replace slots v i;
        i
  in
  let compile_term = function
    | Const c -> S_const (Ast.pack c)
    | Var v -> S_var (slot_of v)
  in
  let compile_atom (a : atom) =
    {
      c_pred = a.pred;
      c_args = Array.of_list (List.map compile_term a.args);
      c_rel = None;
      c_gen = min_int;
    }
  in
  let rec compile_expr = function
    | E_const c -> CE_packed (Ast.pack c)
    | E_var v -> CE_var (slot_of v)
    | E_add (a, b) -> CE_add (compile_expr a, compile_expr b)
    | E_sub (a, b) -> CE_sub (compile_expr a, compile_expr b)
    | E_mul (a, b) -> CE_mul (compile_expr a, compile_expr b)
  in
  let head = compile_atom r.head in
  let body_atoms =
    List.map
      (function
        | Pos a -> `Pos (compile_atom a)
        | Neg a -> `Neg (compile_atom a)
        | Cmp (op, a, b) -> `Cmp (op, compile_expr a, compile_expr b))
      r.body
  in
  (* Left-to-right bound-slot tracking for the probe templates; all
     slots exist now that head and body are compiled. *)
  let bound = Array.make (max 1 !nvars) false in
  let body =
    List.map
      (function
        | `Pos (a : compiled_atom) ->
            let positions = ref [] and sources = ref [] in
            Array.iteri
              (fun k arg ->
                match arg with
                | S_const _ ->
                    positions := k :: !positions;
                    sources := arg :: !sources
                | S_var i ->
                    if bound.(i) then begin
                      positions := k :: !positions;
                      sources := arg :: !sources
                    end)
              a.c_args;
            Array.iter
              (function S_var i -> bound.(i) <- true | S_const _ -> ())
              a.c_args;
            C_pos
              ( a,
                {
                  pr_positions = List.rev !positions;
                  pr_sources = Array.of_list (List.rev !sources);
                  pr_cache = PC_none;
                } )
        | `Neg a -> C_neg a
        | `Cmp (op, a, b) -> C_cmp (op, a, b))
      body_atoms
  in
  {
    cr_nvars = !nvars;
    cr_head = head;
    cr_body = Array.of_list body;
    cr_source = r;
  }

(* The environment: one packed constant per variable slot.  [min_int]
   marks an unbound slot; {!Ast.pack_int} excludes it from the packed
   range, so no binding can collide with the sentinel. *)
type env = int array

let unbound = min_int

let arith_error p =
  raise
    (Unsafe_rule (Printf.sprintf "string %S in arithmetic" (Ast.packed_to_string p)))

let rec eval_cexpr (env : env) = function
  | CE_packed p -> if p land 1 = 0 then p asr 1 else arith_error p
  | CE_var i ->
      let p = env.(i) in
      if p = unbound then raise (Unsafe_rule "unbound variable in comparison")
      else if p land 1 = 0 then p asr 1
      else arith_error p
  | CE_add (a, b) -> eval_cexpr env a + eval_cexpr env b
  | CE_sub (a, b) -> eval_cexpr env a - eval_cexpr env b
  | CE_mul (a, b) -> eval_cexpr env a * eval_cexpr env b

(* (In)equality comparisons are permitted on any constants for Eq/Ne
   when both sides are a variable or constant: interning is canonical,
   so packed equality is structural constant equality. *)
let eval_ccmp (env : env) op lhs rhs =
  let as_packed = function
    | CE_packed p -> p
    | CE_var i -> env.(i)
    | _ -> unbound
  in
  match op with
  | (Eq | Ne) when as_packed lhs <> unbound && as_packed rhs <> unbound ->
      let a = as_packed lhs and b = as_packed rhs in
      if op = Eq then a = b else a <> b
  | _ -> (
      let a = eval_cexpr env lhs and b = eval_cexpr env rhs in
      match op with
      | Lt -> a < b
      | Le -> a <= b
      | Gt -> a > b
      | Ge -> a >= b
      | Eq -> a = b
      | Ne -> a <> b)

(* Fill a probe's flat key from the current environment.  Every
   [S_var] source is statically guaranteed bound here (see [probe]). *)
let probe_key (pr : probe) (env : env) : int array =
  let np = Array.length pr.pr_sources in
  let key = Array.make np 0 in
  for j = 0 to np - 1 do
    key.(j) <-
      (match Array.unsafe_get pr.pr_sources j with
      | S_const p -> p
      | S_var i -> Array.unsafe_get env i)
  done;
  key

(* Same, into a caller-owned scratch buffer sized to the probe:
   [Ktbl.find_opt] only reads the key, so the buffer can be refilled
   for the next probe without ever escaping. *)
let probe_key_into (pr : probe) (env : env) (key : int array) =
  for j = 0 to Array.length key - 1 do
    Array.unsafe_set key j
      (match Array.unsafe_get pr.pr_sources j with
      | S_const p -> p
      | S_var i -> Array.unsafe_get env i)
  done

(* All mutable per-evaluation state, allocated once per [eval_rule]
   call: the environment, a trail of bound slots operated as a stack
   (each body frame unwinds to its entry depth — a slot is bound at
   most once along any root-to-leaf path, so [cr_nvars] entries always
   suffice), and one key scratch buffer per body literal.  Rule
   evaluation over large fact bases is allocation-bound; with the
   frame, the per-candidate cost of the join loop allocates nothing. *)
type frame = {
  fr_env : env;
  fr_trail : int array;
  mutable fr_tn : int;  (* trail depth *)
  fr_keys : int array array;  (* per body literal, [||] for non-probes *)
}

(* Resolve the relation an atom refers to, through its generation
   cache. *)
let atom_rel (db : db) (a : compiled_atom) =
  if a.c_gen = db.db_gen then a.c_rel
  else begin
    let r = Hashtbl.find_opt db.db_rels a.c_pred in
    a.c_rel <- r;
    a.c_gen <- db.db_gen;
    r
  end

(* Resolve a probe's index handle against [rel] (the atom's current
   relation), through its cache.  [pr_positions] must be non-empty. *)
let probe_index (rel : Relation.t) (pr : probe) =
  match pr.pr_cache with
  | PC_some (r, idx) when r == rel -> idx
  | _ ->
      let idx = Relation.find_index rel pr.pr_positions in
      pr.pr_cache <- PC_some (rel, idx);
      idx

(* Try to unify [tuple] with [a] under the frame's environment; newly
   bound slots are pushed onto the trail.  On failure the trail is
   unwound to its entry depth; on success the {e caller} unwinds after
   exploring deeper literals.  Returns success. *)
let unify_tuple (a : compiled_atom) (tuple : Relation.tuple) (fr : frame) :
    bool =
  let n = Array.length a.c_args in
  if n <> Array.length tuple then false
  else begin
    let env = fr.fr_env in
    let t0 = fr.fr_tn in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < n do
      (match Array.unsafe_get a.c_args !k with
      | S_const p -> if p <> Array.unsafe_get tuple !k then ok := false
      | S_var i ->
          let b = Array.unsafe_get env i in
          let tv = Array.unsafe_get tuple !k in
          if b = unbound then begin
            Array.unsafe_set env i tv;
            Array.unsafe_set fr.fr_trail fr.fr_tn i;
            fr.fr_tn <- fr.fr_tn + 1
          end
          else if b <> tv then ok := false);
      incr k
    done;
    if not !ok then
      (* Roll back the bindings made during this failed attempt. *)
      while fr.fr_tn > t0 do
        fr.fr_tn <- fr.fr_tn - 1;
        Array.unsafe_set env (Array.unsafe_get fr.fr_trail fr.fr_tn) unbound
      done;
    !ok
  end

let instantiate (a : compiled_atom) (env : env) : Relation.tuple =
  let n = Array.length a.c_args in
  let out = Array.make n 0 in
  for k = 0 to n - 1 do
    Array.unsafe_set out k
      (match Array.unsafe_get a.c_args k with
      | S_const p -> p
      | S_var i ->
          let p = Array.unsafe_get env i in
          if p = unbound then
            raise (Unsafe_rule "unbound variable at instantiation")
          else p)
  done;
  out

(* Depth-first evaluation of the body from literal [idx]; calls [emit]
   for every satisfying environment.  [delta_at]/[delta_tuples]
   restrict one positive literal to the semi-naive delta; [over]
   overrides the candidate list of one positive literal outright — the
   hook domain-parallel evaluation uses to hand each worker a
   contiguous chunk [(pos, arr, start, len)] of the driving literal's
   candidate array (a range, so the submitter never re-conses
   per-chunk sublists).

   Body evaluation never mutates the database: relations are read
   through the atom caches (a missing relation simply has no tuples)
   and any index a lookup needs is pre-built by the parallel driver, so
   concurrent workers share the structures read-only. *)
let rec eval_from (db : db) (cr : compiled_rule) (fr : frame) ~idx ~delta_at
    ~delta_tuples ~over ~emit =
  if idx >= Array.length cr.cr_body then emit fr.fr_env
  else
    match cr.cr_body.(idx) with
    | C_pos (a, pr) -> (
        let visit tuple =
          let t0 = fr.fr_tn in
          if unify_tuple a tuple fr then begin
            eval_from db cr fr ~idx:(idx + 1) ~delta_at ~delta_tuples ~over
              ~emit;
            while fr.fr_tn > t0 do
              fr.fr_tn <- fr.fr_tn - 1;
              fr.fr_env.(fr.fr_trail.(fr.fr_tn)) <- unbound
            done
          end
        in
        match over with
        | Some (o, arr, start, len) when o = idx ->
            for i = start to start + len - 1 do
              visit arr.(i)
            done
        | _ -> (
            match delta_at with
            | Some d when d = idx -> List.iter visit delta_tuples
            | _ -> (
                match atom_rel db a with
                | None -> ()
                | Some rel -> (
                    match pr.pr_positions with
                    | [] ->
                        (* Full scan straight off the insertion log —
                           same element order as [to_list]/[to_array]
                           (so sequential and chunked parallel
                           evaluation still agree), without
                           materializing a list per occurrence. *)
                        Relation.iter rel visit
                    | _ ->
                        let key = fr.fr_keys.(idx) in
                        probe_key_into pr fr.fr_env key;
                        List.iter visit
                          (Relation.probe (probe_index rel pr) key)))))
    | C_neg a ->
        let present =
          match atom_rel db a with
          | Some rel -> Relation.mem rel (instantiate a fr.fr_env)
          | None -> false
        in
        if not present then
          eval_from db cr fr ~idx:(idx + 1) ~delta_at ~delta_tuples ~over ~emit
    | C_cmp (op, lhs, rhs) ->
        if eval_ccmp fr.fr_env op lhs rhs then
          eval_from db cr fr ~idx:(idx + 1) ~delta_at ~delta_tuples ~over ~emit

let make_frame (cr : compiled_rule) : frame =
  {
    fr_env = Array.make (max 1 cr.cr_nvars) unbound;
    fr_trail = Array.make (max 1 cr.cr_nvars) 0;
    fr_tn = 0;
    fr_keys =
      Array.map
        (function
          | C_pos (_, pr) -> Array.make (Array.length pr.pr_sources) 0
          | _ -> [||])
        cr.cr_body;
  }

(* Evaluate a compiled rule, calling [on_derived] with each (possibly
   duplicate) head tuple. *)
let eval_rule (db : db) (cr : compiled_rule) ~delta_at ~delta_tuples
    ~on_derived =
  let fr = make_frame cr in
  eval_from db cr fr ~idx:0 ~delta_at ~delta_tuples ~over:None
    ~emit:(fun env -> on_derived (instantiate cr.cr_head env))

(* Worker-side evaluation of one partition: collect the head tuples in
   derivation order instead of inserting them — the submitter merges
   partitions in submission order, so concatenating the per-partition
   lists reproduces the exact sequential derivation sequence.

   Duplicates within the partition are dropped on the worker, keeping
   each tuple's {e first} derivation.  That moves dedup work off the
   serial merge without changing the result: sequentially a tuple is
   inserted at its first derivation and later duplicates are no-ops,
   and since partitions merge in submission order, the first surviving
   occurrence lands at exactly the sequential insertion position.
   (Cross-partition duplicates still exist; [Relation.add] in the
   merge handles those as before.) *)
let eval_rule_partition (db : db) (cr : compiled_rule) ~delta_at ~delta_tuples
    ~over : Relation.tuple list =
  let fr = make_frame cr in
  let out = ref [] in
  let seen = Relation.Ktbl.create 64 in
  eval_from db cr fr ~idx:0 ~delta_at ~delta_tuples ~over ~emit:(fun env ->
      let tuple = instantiate cr.cr_head env in
      if not (Relation.Ktbl.mem seen tuple) then begin
        Relation.Ktbl.replace seen tuple ();
        out := tuple :: !out
      end);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)

type stats = {
  mutable rules_evaluated : int;
  mutable iterations : int;
  mutable tuples_derived : int;
}

(* Fact bases in the hundreds of thousands of tuples are strongly
   allocation-bound: the default 256K-word minor heap forces constant
   promotions of short-lived substitution lists while the relation
   store keeps a large live set.  A bigger minor heap and a laxer
   space/time trade-off roughly halve evaluation time at the paper's
   full scale. *)
let gc_tuned = ref false

let recommended_gc_setup () =
  if not !gc_tuned then begin
    gc_tuned := true;
    let params = Gc.get () in
    Gc.set
      {
        params with
        Gc.minor_heap_size = max params.Gc.minor_heap_size (8 * 1024 * 1024);
        space_overhead = max params.Gc.space_overhead 200;
      }
  end

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)

(* Observability context for one evaluation run.  Per-rule histograms
   are resolved up front (keyed by the rule's physical identity, which
   [stratify] preserves) so the per-evaluation cost is one [assq]
   lookup and two [gettimeofday] calls — and nothing at all when the
   registry is disabled. *)
type engine_obs = {
  eo_reg : Metrics.t;
  eo_live : bool;
  eo_rule_hist : (rule * Metrics.Histogram.t) list;
  eo_strata_skipped : Metrics.Counter.t;
  eo_strata_seminaive : Metrics.Counter.t;
  eo_strata_recomputed : Metrics.Counter.t;
  eo_retractions : Metrics.Counter.t;
  eo_tuples : Metrics.Counter.t;
  eo_delta : Metrics.Histogram.t;
  eo_par_tasks : Metrics.Counter.t;
}

(* Rules are labelled by position so the label sorts in program order
   and survives predicates with several rules: "07:cctx_deposit". *)
let rule_label i (r : rule) = Printf.sprintf "%02d:%s" i r.head.pred

let make_obs reg (program : program) =
  {
    eo_reg = reg;
    eo_live = Metrics.enabled reg;
    eo_rule_hist =
      List.mapi
        (fun i r ->
          ( r,
            Metrics.histogram reg
              ~labels:[ ("rule", rule_label i r) ]
              "xcw_datalog_rule_seconds" ))
        program.rules;
    eo_strata_skipped = Metrics.counter reg "xcw_datalog_strata_skipped_total";
    eo_strata_seminaive =
      Metrics.counter reg "xcw_datalog_strata_seminaive_total";
    eo_strata_recomputed =
      Metrics.counter reg "xcw_datalog_strata_recomputed_total";
    eo_retractions = Metrics.counter reg "xcw_datalog_retractions_total";
    eo_tuples = Metrics.counter reg "xcw_datalog_tuples_derived_total";
    eo_delta = Metrics.histogram reg "xcw_datalog_delta_tuples";
    eo_par_tasks = Metrics.counter reg "xcw_datalog_parallel_tasks_total";
  }

(* Time one stratum into its labelled histogram and a span on the
   default tracer; a no-op (beyond running [f]) when metrics are off. *)
let with_stratum obs i recursive ~mode f =
  if not obs.eo_live then f ()
  else begin
    let h =
      Metrics.histogram obs.eo_reg
        ~labels:[ ("stratum", string_of_int i) ]
        "xcw_datalog_stratum_seconds"
    in
    let attrs =
      [
        ("stratum", string_of_int i);
        ("recursive", string_of_bool recursive);
        ("mode", mode);
      ]
    in
    Span.with_ ~attrs "datalog.stratum" (fun () ->
        let t0 = Unix.gettimeofday () in
        let r = f () in
        Metrics.Histogram.observe h (Unix.gettimeofday () -. t0);
        r)
  end

(* Evaluate one stratum to fixpoint.  [seed] controls round 0: [`Full]
   evaluates every rule over the whole database (from-scratch
   semantics); [`Deltas fresh] evaluates only body occurrences of
   predicates present in [fresh], restricted to those fresh tuples —
   semi-naive *insertion*, sound when the stratum is monotone w.r.t.
   the changed predicates.  [on_new] fires for every tuple actually
   added to the database (across all rounds). *)
let eval_stratum_seq (db : db) (stats : stats) ~naive ~obs
    (stratum_rules : rule list) (recursive : bool)
    ~(seed : [ `Full | `Deltas of (string, Relation.tuple list) Hashtbl.t ])
    ~(on_new : string -> Relation.tuple -> unit) : unit =
  let compiled = List.map compile_rule stratum_rules in
  let stratum_preds =
    List.sort_uniq compare (List.map (fun r -> r.head.pred) stratum_rules)
  in
  let in_stratum p = List.mem p stratum_preds in
  (* delta per predicate: tuples added in the previous round. *)
  let delta : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 8 in
  let eval_into tbl cr ~delta_at ~delta_tuples =
    stats.rules_evaluated <- stats.rules_evaluated + 1;
    let t0 = if obs.eo_live then Unix.gettimeofday () else 0. in
    (* Resolve the head's relation and delta slot once per rule
       evaluation, not once per derived tuple — at paper scale a rule
       can derive hundreds of thousands of tuples, and three
       string-keyed hash lookups per tuple show up.  The relation is
       resolved at the {e first} derivation, not eagerly: creating it
       for a rule that derives nothing would add a spurious empty
       relation to the database (visible in [dump_facts]). *)
    let pred = cr.cr_head.c_pred in
    let rel = ref None in
    let acc = ref (Option.value (Hashtbl.find_opt tbl pred) ~default:[]) in
    let acc0 = !acc in
    eval_rule db cr ~delta_at ~delta_tuples ~on_derived:(fun tuple ->
        let r =
          match !rel with
          | Some r -> r
          | None ->
              let r = relation db pred in
              rel := Some r;
              r
        in
        if Relation.add r tuple then begin
          stats.tuples_derived <- stats.tuples_derived + 1;
          acc := tuple :: !acc;
          on_new pred tuple
        end);
    if not (!acc == acc0) then Hashtbl.replace tbl pred !acc;
    if obs.eo_live then
      match List.assq_opt cr.cr_source obs.eo_rule_hist with
      | Some h -> Metrics.Histogram.observe h (Unix.gettimeofday () -. t0)
      | None -> ()
  in
  (* Round 0. *)
  (match seed with
  | `Full ->
      List.iter
        (fun cr -> eval_into delta cr ~delta_at:None ~delta_tuples:[])
        compiled
  | `Deltas fresh ->
      (* Every new derivable tuple must use at least one fresh tuple at
         some body position; evaluating each changed occurrence against
         the (already updated) full database elsewhere covers all new
         combinations.  Duplicates collapse in [Relation.add]. *)
      List.iter
        (fun cr ->
          Array.iteri
            (fun idx lit ->
              match lit with
              | C_pos (a, _) -> (
                  match Hashtbl.find_opt fresh a.c_pred with
                  | Some (_ :: _ as delta_tuples) ->
                      eval_into delta cr ~delta_at:(Some idx) ~delta_tuples
                  | _ -> ())
              | _ -> ())
            cr.cr_body)
        compiled);
  stats.iterations <- stats.iterations + 1;
  (* Non-recursive strata are complete after one pass (their body
     predicates all live in earlier strata). *)
  let continue_ =
    ref (recursive && Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false)
  in
  while !continue_ do
    stats.iterations <- stats.iterations + 1;
    let new_delta : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 8 in
    if naive then
      (* Naive: re-evaluate everything on the full database. *)
      List.iter
        (fun cr -> eval_into new_delta cr ~delta_at:None ~delta_tuples:[])
        compiled
    else
      (* Semi-naive: for each rule and each body occurrence of a
         same-stratum predicate, evaluate with that occurrence
         restricted to the delta. *)
      List.iter
        (fun cr ->
          Array.iteri
            (fun idx lit ->
              match lit with
              | C_pos (a, _) when in_stratum a.c_pred -> (
                  match Hashtbl.find_opt delta a.c_pred with
                  | Some (_ :: _ as delta_tuples) ->
                      eval_into new_delta cr ~delta_at:(Some idx) ~delta_tuples
                  | _ -> ())
              | _ -> ())
            cr.cr_body)
        compiled;
    Hashtbl.reset delta;
    Hashtbl.iter (fun k v -> Hashtbl.replace delta k v) new_delta;
    continue_ := Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false
  done

(* ------------------------------------------------------------------ *)
(* Domain-parallel stratum evaluation                                  *)

(* Partitioning scheme: within a pass, each (rule, delta-occurrence)
   job splits the candidate list of its {e driving literal} — the first
   positive body literal, the outermost loop of the backtracking join —
   into contiguous chunks (several per domain).  Workers evaluate chunks against
   the shared relations read-only (every index a chunk can touch is
   pre-built below; head insertions are deferred), and the submitter
   merges the per-chunk derivation lists in submission order.

   Determinism argument: for a non-recursive stratum the body
   predicates are all fully materialized by earlier strata, so chunk
   evaluation is a pure function of the frozen database and
   concatenating chunk outputs in order is {e exactly} the sequential
   derivation sequence; first-come deduplication at merge time then
   reproduces the sequential insertion order bit-for-bit, for any
   worker count.  Recursive strata synchronize per semi-naive round
   (workers read the frozen previous-round state), which reaches the
   same fixpoint — the same tuple sets and derived-tuple counts — but
   may order insertions differently than the interleaved sequential
   rounds; the shipped cross-chain program is fully non-recursive. *)

(* The index position-list each body lookup uses is already compiled
   into its probe ([compile_rule] tracks bound slots left-to-right), so
   pre-building just walks the compiled bodies. *)

(* Pre-build every index the stratum's lookups can touch, fanning the
   work out over the pool — empty index tables are registered
   sequentially here (a single thread owns each relation's index map)
   and the fills run as independent tasks, so no two tasks share
   mutable state and a relation needing several indices doesn't
   serialize them into one long task.  Small indices are one task
   each; a large index splits into key-projection range tasks followed
   by one insert task per shard (the phase barrier between the two
   batches is what lets the shard inserts read every scratch key).
   Index contents are a pure function of the relation, so build order
   is irrelevant; the pool's batch synchronization publishes the
   writes to all workers before evaluation starts. *)
let prepare_indices (db : db) ~pool compiled =
  let seen : (string * int list, unit) Hashtbl.t = Hashtbl.create 16 in
  let phase_a = ref [] in
  let phase_b = ref [] in
  let k = max 1 (Pool.ndomains pool) in
  List.iter
    (fun cr ->
      Array.iter
        (function
          | C_pos (a, pr) when pr.pr_positions <> [] ->
              let positions = pr.pr_positions in
              if not (Hashtbl.mem seen (a.c_pred, positions)) then begin
                Hashtbl.add seen (a.c_pred, positions) ();
                match Hashtbl.find_opt db.db_rels a.c_pred with
                | Some rel -> (
                    match Relation.prepare_index rel positions with
                    | Some (`Fill fill) -> phase_a := fill :: !phase_a
                    | Some (`Sharded (n, keys_range, insert_shard)) ->
                        let chunk = max 2048 ((n + (4 * k) - 1) / (4 * k)) in
                        let lo = ref 0 in
                        while !lo < n do
                          let lo' = !lo in
                          let hi = min n (lo' + chunk) in
                          phase_a := (fun () -> keys_range lo' hi) :: !phase_a;
                          lo := hi
                        done;
                        for s = 0 to Relation.nshards - 1 do
                          phase_b := (fun () -> insert_shard s) :: !phase_b
                        done
                    | None -> ())
                | None -> ()
              end
          | _ -> ())
        cr.cr_body)
    compiled;
  ignore (Pool.run pool !phase_a);
  ignore (Pool.run pool !phase_b)

(* Resolve every body atom's relation handle and every probe's index
   handle on the submitting domain, so worker domains only ever {e
   read} the compiled-rule caches during a fan-out: after this sweep
   each cache check hits (nothing creates relations or replaces
   indices mid-pass), so no worker writes them.  This also covers
   relations created {e after} stratum start — head predicates of
   recursive strata — whose indices [prepare_indices] could not have
   seen: [probe_index] builds them here, single-threaded, instead of
   workers racing through a lazy [ensure_index]. *)
let resolve_caches (db : db) (crs : compiled_rule list) =
  List.iter
    (fun cr ->
      Array.iter
        (function
          | C_pos (a, pr) -> (
              match atom_rel db a with
              | None -> ()
              | Some rel ->
                  if pr.pr_positions <> [] then ignore (probe_index rel pr))
          | C_neg a -> ignore (atom_rel db a)
          | C_cmp _ -> ())
        cr.cr_body)
    crs

let first_pos (cr : compiled_rule) =
  let n = Array.length cr.cr_body in
  let rec go i =
    if i >= n then None
    else match cr.cr_body.(i) with C_pos _ -> Some i | _ -> go (i + 1)
  in
  go 0

(* One (rule, delta-occurrence) evaluation job, as the sequential
   [eval_into] call sites produce them. *)
type par_occurrence = {
  po_cr : compiled_rule;
  po_delta_at : int option;
  po_delta_tuples : Relation.tuple list;
}

(* The driving literal's candidates are materialized once as an array
   and chunked as contiguous index ranges — no per-chunk sublists to
   cons on the submitter.  Range boundaries never affect the result:
   the merge concatenates chunk outputs in submission order. *)
let occurrence_chunks (db : db) ~k (oc : par_occurrence) :
    (int * Relation.tuple array * int * int) option list =
  let cr = oc.po_cr in
  match first_pos cr with
  | None -> [ None ]
  | Some p ->
      let candidates =
        match oc.po_delta_at with
        | Some d when d = p -> Array.of_list oc.po_delta_tuples
        | _ -> (
            match cr.cr_body.(p) with
            | C_pos (a, pr) -> (
                match Hashtbl.find_opt db.db_rels a.c_pred with
                | None -> [||]
                | Some rel -> (
                    (* The driving literal is the first positive one, so
                       its probe template holds constants only — the
                       dummy env is never read. *)
                    let env : env = Array.make (max 1 cr.cr_nvars) unbound in
                    match pr.pr_positions with
                    | [] -> Relation.to_array rel
                    | positions ->
                        Array.of_list
                          (Relation.lookup rel positions (probe_key pr env))))
            | _ -> assert false)
      in
      let n = Array.length candidates in
      if n = 0 then []
      else begin
        (* ~[k] chunks for balance, but never more than 64 candidates
           per chunk: a rule's matches can cluster brutally in one
           candidate range (observed: one of 32 chunks carrying 89% of
           a batch's work), and a capped chunk bounds how much of a hot
           range the unluckiest worker inherits. *)
        let size = max 1 (min ((n + k - 1) / k) 64) in
        let rec go start acc =
          if start >= n then List.rev acc
          else
            let len = min size (n - start) in
            go (start + len) (Some (p, candidates, start, len) :: acc)
        in
        go 0 []
      end

(* Run one pass (the parallel analogue of one sequence of [eval_into]
   calls): fan the chunks out, then merge derivations back in
   submission order through the usual add/record/on_new chain. *)
let eval_pass_parallel (db : db) (stats : stats) ~obs ~pool ~fanout_gauge tbl
    ~on_new (occurrences : par_occurrence list) =
  (* Many chunks per domain: the pool's dynamic claiming then evens
     out skewed chunk costs (rules whose matches cluster in one part of
     the candidate list — common here, where a handful of join-heavy
     rules dominate a stratum), at a per-chunk cost of two timestamps
     and a result slot.  Chunk count never affects the result — the
     merge concatenates chunk outputs in submission order regardless. *)
  let k = 16 * Pool.ndomains pool in
  resolve_caches db (List.map (fun oc -> oc.po_cr) occurrences);
  let jobs =
    List.map
      (fun oc ->
        stats.rules_evaluated <- stats.rules_evaluated + 1;
        (oc, occurrence_chunks db ~k oc))
      occurrences
  in
  let flat =
    List.concat_map (fun (oc, chunks) -> List.map (fun c -> (oc, c)) chunks)
      jobs
  in
  let ntasks = List.length flat in
  Metrics.Counter.add obs.eo_par_tasks ntasks;
  Metrics.Gauge.set fanout_gauge (float_of_int ntasks);
  let thunks =
    List.map
      (fun (oc, over) () ->
        let t0 = if obs.eo_live then Unix.gettimeofday () else 0. in
        let out =
          eval_rule_partition db oc.po_cr ~delta_at:oc.po_delta_at
            ~delta_tuples:oc.po_delta_tuples ~over
        in
        ((if obs.eo_live then Unix.gettimeofday () -. t0 else 0.), out))
      flat
  in
  let results = Pool.run pool thunks in
  List.iter2
    (fun (oc, _) (_, out) ->
      match out with
      | [] -> ()
      | out ->
          let pred = oc.po_cr.cr_head.c_pred in
          let rel = relation db pred in
          (* Delta slot resolved once per merged partition, as in the
             sequential [eval_into]. *)
          let acc =
            ref (Option.value (Hashtbl.find_opt tbl pred) ~default:[])
          in
          let acc0 = !acc in
          List.iter
            (fun tuple ->
              if Relation.add rel tuple then begin
                stats.tuples_derived <- stats.tuples_derived + 1;
                acc := tuple :: !acc;
                on_new pred tuple
              end)
            out;
          if not (!acc == acc0) then Hashtbl.replace tbl pred !acc)
    flat results;
  if obs.eo_live then begin
    (* Per-rule histograms get each occurrence's summed chunk busy
       time: one sample per occurrence, as in sequential mode. *)
    let rec walk jobs results =
      match jobs with
      | [] -> ()
      | (oc, chunks) :: jobs ->
          let n = List.length chunks in
          let rec take n acc results =
            if n = 0 then (acc, results)
            else
              match results with
              | (dt, _) :: rest -> take (n - 1) (acc +. dt) rest
              | [] -> (acc, [])
          in
          let busy, rest = take n 0. results in
          (match List.assq_opt oc.po_cr.cr_source obs.eo_rule_hist with
          | Some h -> Metrics.Histogram.observe h busy
          | None -> ());
          walk jobs rest
    in
    walk jobs results
  end

let eval_stratum_parallel (db : db) (stats : stats) ~naive ~obs ~pool
    ~fanout_gauge (stratum_rules : rule list) (recursive : bool)
    ~(seed : [ `Full | `Deltas of (string, Relation.tuple list) Hashtbl.t ])
    ~(on_new : string -> Relation.tuple -> unit) : unit =
  let compiled = List.map compile_rule stratum_rules in
  prepare_indices db ~pool compiled;
  let stratum_preds =
    List.sort_uniq compare (List.map (fun r -> r.head.pred) stratum_rules)
  in
  let in_stratum p = List.mem p stratum_preds in
  let delta : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 8 in
  let run_pass tbl occurrences =
    eval_pass_parallel db stats ~obs ~pool ~fanout_gauge tbl ~on_new occurrences
  in
  let full_occurrences () =
    List.map
      (fun cr -> { po_cr = cr; po_delta_at = None; po_delta_tuples = [] })
      compiled
  in
  (* Delta occurrences in the order the sequential call sites visit
     them: rule-major, body position ascending. *)
  let delta_occurrences tbl ~only_stratum =
    List.concat_map
      (fun cr ->
        let occs = ref [] in
        Array.iteri
          (fun idx lit ->
            match lit with
            | C_pos (a, _) when (not only_stratum) || in_stratum a.c_pred -> (
                match Hashtbl.find_opt tbl a.c_pred with
                | Some (_ :: _ as dts) ->
                    occs :=
                      { po_cr = cr; po_delta_at = Some idx; po_delta_tuples = dts }
                      :: !occs
                | _ -> ())
            | _ -> ())
          cr.cr_body;
        List.rev !occs)
      compiled
  in
  (match seed with
  | `Full -> run_pass delta (full_occurrences ())
  | `Deltas fresh -> run_pass delta (delta_occurrences fresh ~only_stratum:false));
  stats.iterations <- stats.iterations + 1;
  let continue_ =
    ref (recursive && Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false)
  in
  while !continue_ do
    stats.iterations <- stats.iterations + 1;
    let new_delta : (string, Relation.tuple list) Hashtbl.t =
      Hashtbl.create 8
    in
    (if naive then run_pass new_delta (full_occurrences ())
     else run_pass new_delta (delta_occurrences delta ~only_stratum:true));
    Hashtbl.reset delta;
    Hashtbl.iter (fun k v -> Hashtbl.replace delta k v) new_delta;
    continue_ := Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false
  done

(* Dispatcher: the 1-domain path is the untouched sequential code. *)
let eval_stratum (db : db) (stats : stats) ~naive ~obs ?pool ~stratum_i
    (stratum_rules : rule list) (recursive : bool) ~seed ~on_new : unit =
  match pool with
  | Some pool when Pool.ndomains pool > 1 ->
      let fanout_gauge =
        Metrics.gauge obs.eo_reg
          ~labels:[ ("stratum", string_of_int stratum_i) ]
          "xcw_datalog_parallel_fanout"
      in
      eval_stratum_parallel db stats ~naive ~obs ~pool ~fanout_gauge
        stratum_rules recursive ~seed ~on_new
  | _ -> eval_stratum_seq db stats ~naive ~obs stratum_rules recursive ~seed ~on_new

let mark_derived (db : db) (stratum_rules : rule list) =
  List.iter
    (fun (r : rule) -> Hashtbl.replace db.db_derived r.head.pred ())
    stratum_rules

(* ------------------------------------------------------------------ *)
(* Stratified aggregation (PR 10).

   A declared aggregate materializes a grouped integer sum over one EDB
   relation into a derived predicate, before any rule stratum runs —
   the aggregate heads are therefore plain EDB from the rules' point of
   view (they may be joined or negated freely), and stratification is
   trivially sound because aggregate sources can never depend on rule
   output.  Computation is sequential and key-sorted, so the derived
   relation is bit-identical across worker counts and across the
   scratch/incremental paths. *)

type aggregate = {
  agg_pred : string;
  agg_source : string;
  agg_group_by : int list;
  agg_sum : int;
}

let check_aggregates (program : program) (aggregates : aggregate list) =
  let heads =
    List.sort_uniq compare
      (List.map (fun (r : rule) -> r.head.pred) program.rules)
  in
  List.iter
    (fun a ->
      let fail fmt =
        Printf.ksprintf
          (fun s -> invalid_arg ("Engine: aggregate " ^ a.agg_pred ^ ": " ^ s))
          fmt
      in
      if List.mem a.agg_pred heads then fail "head is also a rule head";
      if List.mem a.agg_source heads then
        fail "source %s is a rule head (sources must be EDB)" a.agg_source;
      if List.exists (fun a' -> a'.agg_pred = a.agg_source) aggregates then
        fail "source %s is another aggregate's head" a.agg_source;
      if List.exists (fun a' -> a' != a && a'.agg_pred = a.agg_pred) aggregates
      then fail "declared twice";
      if a.agg_sum < 0 || List.exists (fun p -> p < 0) a.agg_group_by then
        fail "negative tuple position")
    aggregates

(* The grouped sums of the source relation, as packed tuples
   [group cells..., sum] in ascending key order. *)
let aggregate_tuples (db : db) (agg : aggregate) : Relation.tuple list =
  let positions = Array.of_list agg.agg_group_by in
  let groups : (int array, int) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter (relation db agg.agg_source) (fun t ->
      let width = Array.length t in
      if
        agg.agg_sum >= width
        || Array.exists (fun p -> p >= width) positions
      then
        invalid_arg
          (Printf.sprintf
             "Engine: aggregate %s: position beyond %s arity %d" agg.agg_pred
             agg.agg_source width);
      let v =
        match unpack t.(agg.agg_sum) with
        | Int n -> n
        | Str s ->
            invalid_arg
              (Printf.sprintf
                 "Engine: aggregate %s sums non-int cell %S of %s" agg.agg_pred
                 s agg.agg_source)
      in
      let key = Array.map (fun p -> t.(p)) positions in
      let prev = Option.value (Hashtbl.find_opt groups key) ~default:0 in
      Hashtbl.replace groups key (prev + v));
  Hashtbl.fold (fun key total acc -> (key, total) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (key, total) ->
         Array.append key [| pack_int total |])

(* Recompute one aggregate relation in place; returns the tuple list it
   now holds.  [Relation.clear] keeps the hash-index structure, so this
   is the same retraction primitive the incremental strata use. *)
let compute_aggregate (db : db) (stats : stats) (agg : aggregate) :
    Relation.tuple list =
  Hashtbl.replace db.db_derived agg.agg_pred ();
  let rel = relation db agg.agg_pred in
  Relation.clear rel;
  let tuples = aggregate_tuples db agg in
  List.iter (fun t -> ignore (Relation.add rel t)) tuples;
  stats.tuples_derived <- stats.tuples_derived + List.length tuples;
  tuples

let pool_for ?pool ndomains =
  match pool with
  | Some p -> if Pool.ndomains p > 1 then Some p else None
  | None ->
      if ndomains < 1 then invalid_arg "Engine: ndomains must be >= 1"
      else if ndomains = 1 then None
      else Some (Pool.get ~ndomains)

(** [run ?naive db program] evaluates all rules to fixpoint, stratum by
    stratum, adding derived tuples to [db] in place.  [naive] disables
    semi-naive deltas (used by the ablation bench).  [ndomains]
    (default 1: bit-identical sequential behaviour) evaluates each
    stratum on a shared domain pool.  Returns evaluation statistics. *)
let run ?(naive = false) ?metrics ?(ndomains = 1) ?pool ?(aggregates = [])
    (db : db) (program : program) : stats =
  let pool = pool_for ?pool ndomains in
  let reg = match metrics with Some m -> m | None -> Metrics.default () in
  let obs = make_obs reg program in
  List.iter check_rule_safety program.rules;
  check_aggregates program aggregates;
  let stats = { rules_evaluated = 0; iterations = 0; tuples_derived = 0 } in
  let strata = stratify program.rules in
  Span.with_ "datalog.run" (fun () ->
      List.iter
        (fun agg -> ignore (compute_aggregate db stats agg))
        aggregates;
      List.iteri
        (fun i (stratum_rules, recursive) ->
          mark_derived db stratum_rules;
          with_stratum obs i recursive ~mode:"full" (fun () ->
              eval_stratum db stats ~naive ~obs ?pool ~stratum_i:i
                stratum_rules recursive ~seed:`Full
                ~on_new:(fun _ _ -> ())))
        strata);
  db.db_ran <- true;
  Hashtbl.reset db.db_journal;
  Metrics.Counter.add obs.eo_tuples stats.tuples_derived;
  stats

(** [run_incremental db program] brings a previously evaluated [db] up
    to date after EDB insertions, treating the journaled fresh tuples
    as the initial semi-naive delta.  Per stratum (in dependency
    order):

    - no input predicate changed → the stratum is skipped outright, its
      derived tuples standing from the previous run;
    - inputs changed only through predicates the stratum uses
      positively → semi-naive insertion seeded with the fresh tuples
      (old derived tuples are kept, only new joins run);
    - a changed predicate occurs under negation (or an upstream
      predicate was recomputed non-monotonically) → the stratum's
      derived relations are cleared ({!Relation.clear} preserves their
      hash-index structure) and re-derived from scratch over the
      current database — the retraction path for the non-monotonic
      anomaly relations.

    EDB relations and their indices are never rebuilt.  The program
    must be the same one evaluated on [db] previously (the first call
    on a fresh database falls back to a full {!run}). *)
let run_incremental ?metrics ?(ndomains = 1) ?pool ?(aggregates = []) (db : db)
    (program : program) : stats =
  if not db.db_ran then run ?metrics ~ndomains ?pool ~aggregates db program
  else begin
    let pool = pool_for ?pool ndomains in
    let reg = match metrics with Some m -> m | None -> Metrics.default () in
    let obs = make_obs reg program in
    List.iter check_rule_safety program.rules;
    check_aggregates program aggregates;
    let stats = { rules_evaluated = 0; iterations = 0; tuples_derived = 0 } in
    let strata = stratify program.rules in
    (* Tuples added per predicate since the last run: journaled EDB
       insertions plus everything derived by earlier strata below. *)
    let added : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun pred l -> if !l <> [] then Hashtbl.replace added pred !l)
      db.db_journal;
    if obs.eo_live then
      Metrics.Histogram.observe obs.eo_delta
        (float_of_int
           (Hashtbl.fold (fun _ l acc -> acc + List.length l) added 0));
    (* Predicates recomputed non-monotonically (some tuple retracted):
       downstream consumers cannot use insertion-only deltas. *)
    let dirty : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let changed p = Hashtbl.mem added p || Hashtbl.mem dirty p in
    let record_added pred tuple =
      let prev = Option.value (Hashtbl.find_opt added pred) ~default:[] in
      Hashtbl.replace added pred (tuple :: prev)
    in
    (* Aggregates first: their sources are EDB, so journaled source
       tuples are the only way an aggregate can change.  Recompute in
       place and diff against the previous grouped sums — a changed or
       vanished group retracts tuples (downstream strata take the
       recompute path via [dirty]), a purely new group propagates as an
       ordinary insertion delta. *)
    List.iter
      (fun agg ->
        if Hashtbl.mem added agg.agg_source then begin
          let rel = relation db agg.agg_pred in
          let old = Relation.to_list rel in
          ignore (compute_aggregate db stats agg);
          if obs.eo_live then
            Metrics.Counter.add obs.eo_retractions
              (List.length
                 (List.filter (fun t -> not (Relation.mem rel t)) old));
          if List.exists (fun t -> not (Relation.mem rel t)) old then
            Hashtbl.replace dirty agg.agg_pred ()
          else begin
            let old_set = Hashtbl.create (max 16 (List.length old)) in
            List.iter (fun t -> Hashtbl.replace old_set t ()) old;
            Relation.iter rel (fun t ->
                if not (Hashtbl.mem old_set t) then
                  record_added agg.agg_pred t)
          end
        end)
      aggregates;
    Span.with_ "datalog.run_incremental" (fun () ->
    List.iteri
      (fun stratum_i ((stratum_rules : rule list), recursive) ->
        mark_derived db stratum_rules;
        let heads =
          List.sort_uniq compare
            (List.map (fun (r : rule) -> r.head.pred) stratum_rules)
        in
        let pos_added = ref false and non_monotonic = ref false in
        List.iter
          (fun (r : rule) ->
            List.iter
              (function
                | Pos a ->
                    if Hashtbl.mem added a.pred then pos_added := true;
                    if Hashtbl.mem dirty a.pred then non_monotonic := true
                | Neg a -> if changed a.pred then non_monotonic := true
                | Cmp _ -> ())
              r.body)
          stratum_rules;
        (* EDB tuples journaled directly into a derived predicate must
           survive the clear; force the recompute path and re-insert
           them. *)
        let head_journal =
          List.filter_map
            (fun p ->
              match Hashtbl.find_opt db.db_journal p with
              | Some l when !l <> [] -> Some (p, !l)
              | _ -> None)
            heads
        in
        if !non_monotonic || head_journal <> [] then begin
          (* Retraction path: clear and re-derive the whole stratum. *)
          Metrics.Counter.inc obs.eo_strata_recomputed;
          with_stratum obs stratum_i recursive ~mode:"recompute" (fun () ->
          let snapshots =
            List.map
              (fun p ->
                let rel = relation db p in
                let old = Relation.to_list rel in
                Relation.clear rel;
                (match List.assoc_opt p head_journal with
                | Some externals ->
                    List.iter (fun t -> ignore (Relation.add rel t)) externals
                | None -> ());
                (p, old))
              heads
          in
          eval_stratum db stats ~naive:false ~obs ?pool ~stratum_i
            stratum_rules recursive ~seed:`Full
            ~on_new:(fun _ _ -> ());
          List.iter
            (fun (p, old) ->
              let rel = relation db p in
              if obs.eo_live then
                Metrics.Counter.add obs.eo_retractions
                  (List.length
                     (List.filter (fun t -> not (Relation.mem rel t)) old));
              if List.exists (fun t -> not (Relation.mem rel t)) old then
                Hashtbl.replace dirty p ()
              else begin
                (* Additions only: propagate them as an ordinary delta. *)
                let old_set = Hashtbl.create (max 16 (List.length old)) in
                List.iter (fun t -> Hashtbl.replace old_set t ()) old;
                Relation.iter rel (fun t ->
                    if not (Hashtbl.mem old_set t) then record_added p t)
              end)
            snapshots)
        end
        else if !pos_added then begin
          (* Monotone path: keep the old derived tuples and seed
             semi-naive evaluation with the fresh input tuples. *)
          Metrics.Counter.inc obs.eo_strata_seminaive;
          with_stratum obs stratum_i recursive ~mode:"seminaive" (fun () ->
              eval_stratum db stats ~naive:false ~obs ?pool ~stratum_i
                stratum_rules recursive ~seed:(`Deltas added)
                ~on_new:record_added)
        end
        else
          (* No input changed — skip the stratum entirely. *)
          Metrics.Counter.inc obs.eo_strata_skipped)
      strata);
    Hashtbl.reset db.db_journal;
    Metrics.Counter.add obs.eo_tuples stats.tuples_derived;
    stats
  end
