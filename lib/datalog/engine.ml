(** Datalog evaluation engine.

    Bottom-up, stratified, semi-naive evaluation with hash-indexed
    joins — the same evaluation strategy class as Souffle's interpreter,
    which the paper uses.  The Ronin analysis pushes >1.5 million fact
    tuples through ~30 rules, so join performance matters: relations
    maintain on-demand hash indices keyed by bound column positions.

    Unsupported (not needed by the cross-chain rules): aggregation,
    arithmetic in rule heads, and non-stratifiable negation (rejected
    with [Not_stratifiable]). *)

open Ast
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span
module Pool = Xcw_par.Pool

exception Unsafe_rule of string
exception Not_stratifiable of string

(* ------------------------------------------------------------------ *)
(* Relations with on-demand indices                                    *)

module Relation = struct
  type tuple = const array

  (* An index is sharded by key hash into a fixed number of sub-tables
     so a large build can be filled by several domains at once — one
     task per shard, no shared mutable table.  The shard count is a
     constant, never a function of the pool, so the structure (and with
     it every lookup result) is identical at any worker count; within a
     shard, the tuples of one key are inserted in relation-iteration
     order exactly as an unsharded fill would insert them, so each
     per-key candidate list is identical to a sequential on-demand
     build. *)
  type index = (const list, tuple list ref) Hashtbl.t array

  type t = {
    mutable arity : int option;
    tuples : (tuple, unit) Hashtbl.t;
    (* position list -> key-hash-sharded (projected key -> tuples) *)
    indices : (int list, index) Hashtbl.t;
  }

  let nshards = 16

  (* O(1) shard pick.  Sampling a couple of characters spreads keys
     over 16 shards perfectly well (hex-digit tails are uniform), and —
     unlike [Hashtbl.hash] — doesn't re-walk a 66-character hash string
     on every lookup on top of the hash the sub-table's own find
     already computes. *)
  let shard_of_const = function
    | Int i -> i
    | Str s ->
        let n = String.length s in
        if n = 0 then 0
        else
          n
          + (31 * Char.code (String.unsafe_get s (n - 1)))
          + Char.code (String.unsafe_get s (n / 2))

  let shard_of key =
    match key with
    | [] -> 0
    | [ c ] -> shard_of_const c land (nshards - 1)
    | c1 :: c2 :: _ ->
        (shard_of_const c1 + (131 * shard_of_const c2)) land (nshards - 1)

  let create () =
    { arity = None; tuples = Hashtbl.create 256; indices = Hashtbl.create 4 }

  let size t = Hashtbl.length t.tuples

  let mem t tuple = Hashtbl.mem t.tuples tuple

  let check_arity t tuple =
    match t.arity with
    | None -> t.arity <- Some (Array.length tuple)
    | Some a ->
        if a <> Array.length tuple then
          invalid_arg
            (Printf.sprintf "Relation: arity mismatch (%d vs %d)" a
               (Array.length tuple))

  let index_insert (idx : index) positions tuple =
    let key = List.map (fun p -> tuple.(p)) positions in
    let tbl = idx.(shard_of key) in
    match Hashtbl.find_opt tbl key with
    | Some l -> l := tuple :: !l
    | None -> Hashtbl.replace tbl key (ref [ tuple ])

  (** [add t tuple] inserts; returns [true] if the tuple is new. *)
  let add t tuple =
    check_arity t tuple;
    if Hashtbl.mem t.tuples tuple then false
    else begin
      Hashtbl.replace t.tuples tuple ();
      Hashtbl.iter (fun positions idx -> index_insert idx positions tuple) t.indices;
      true
    end

  let iter t f = Hashtbl.iter (fun tuple () -> f tuple) t.tuples

  let to_list t = Hashtbl.fold (fun tuple () acc -> tuple :: acc) t.tuples []

  (* Same element order as [to_list] (the array is filled back to
     front, and stdlib [Hashtbl.iter] and [Hashtbl.fold] traverse
     identically) — parallel chunking partitions this array, so the
     order must match what the sequential path gets from [lookup]. *)
  let to_array t =
    let n = Hashtbl.length t.tuples in
    if n = 0 then [||]
    else begin
      let arr = Array.make n [||] in
      let i = ref n in
      Hashtbl.iter
        (fun tuple () ->
          decr i;
          arr.(!i) <- tuple)
        t.tuples;
      arr
    end

  (** [clear t] removes every tuple but keeps the arity and the set of
      registered index position-lists, so indices built by earlier
      lookups are maintained (not rebuilt) by subsequent [add]s — the
      retraction primitive for re-deriving non-monotonic relations in
      place. *)
  let clear t =
    Hashtbl.reset t.tuples;
    Hashtbl.iter (fun _ idx -> Array.iter Hashtbl.reset idx) t.indices

  let new_index t : index =
    Array.init nshards (fun _ -> Hashtbl.create (max 16 (size t / nshards)))

  (** [ensure_index t positions] builds the hash index for [positions]
      if absent.  Parallel evaluation pre-builds every index a stratum
      can touch so worker domains only ever {e read} the relation. *)
  let ensure_index t positions =
    match positions with
    | [] -> ()
    | _ ->
        if not (Hashtbl.mem t.indices positions) then begin
          let idx = new_index t in
          iter t (fun tuple -> index_insert idx positions tuple);
          Hashtbl.replace t.indices positions idx
        end

  (* Parallel index construction: register the (empty) index on the
     submitting domain — so a single thread owns the [indices] map —
     and return closures that fill it on any domain.  [`Fill f] is one
     task for the whole index (small relations).  [`Sharded (n, ka, is)]
     splits a big fill two ways: [ka lo hi] projects and shard-hashes
     tuples [lo, hi) of a snapshot array into scratch arrays (disjoint
     ranges, any domain), and — only after {e every} range task has
     run — [is s] inserts the tuples of shard [s] (one task per shard,
     each owning a disjoint sub-table).  The snapshot array is in
     [to_list] order, i.e. the reverse of iteration order, so the
     insert loop walks it backwards to reproduce the exact insert
     order of a sequential fill.  Contract: no [add] until every
     returned phase has run, or the tuple would be indexed twice.
     [None] when the index already exists (or [positions] is empty). *)
  let shard_fill_threshold = 4096

  let prepare_index t positions =
    match positions with
    | [] -> None
    | _ ->
        if Hashtbl.mem t.indices positions then None
        else begin
          let idx = new_index t in
          Hashtbl.replace t.indices positions idx;
          let n = size t in
          if n < shard_fill_threshold then
            Some
              (`Fill
                (fun () -> iter t (fun tuple -> index_insert idx positions tuple)))
          else begin
            let arr = to_array t in
            let keys = Array.make n [] in
            let shards = Array.make n 0 in
            let keys_range lo hi =
              for i = lo to hi - 1 do
                let tuple = arr.(i) in
                let key = List.map (fun p -> tuple.(p)) positions in
                keys.(i) <- key;
                shards.(i) <- shard_of key
              done
            in
            let insert_shard s =
              let tbl = idx.(s) in
              for i = n - 1 downto 0 do
                if shards.(i) = s then begin
                  let key = keys.(i) in
                  match Hashtbl.find_opt tbl key with
                  | Some l -> l := arr.(i) :: !l
                  | None -> Hashtbl.replace tbl key (ref [ arr.(i) ])
                end
              done
            in
            Some (`Sharded (n, keys_range, insert_shard))
          end
        end

  (** [lookup t positions key] returns all tuples whose projection on
      [positions] equals [key], using (and building on first use) a hash
      index. *)
  let lookup t positions key =
    match positions with
    | [] -> to_list t
    | _ -> (
        ensure_index t positions;
        let idx = Hashtbl.find t.indices positions in
        match Hashtbl.find_opt idx.(shard_of key) key with
        | Some l -> !l
        | None -> [])
end

(* ------------------------------------------------------------------ *)
(* Database                                                            *)

(* A database is designed to persist across evaluation runs (the
   streaming monitor keeps one per bridge): [db_journal] records EDB
   tuples inserted since the last run — the initial semi-naive delta of
   [run_incremental] — and [db_derived] records which predicates the
   engine itself populates, so retraction can clear exactly those. *)
type db = {
  db_rels : (string, Relation.t) Hashtbl.t;
  db_journal : (string, Relation.tuple list ref) Hashtbl.t;
  db_derived : (string, unit) Hashtbl.t;
  mutable db_ran : bool;  (** at least one evaluation has completed *)
}

let create_db () : db =
  {
    db_rels = Hashtbl.create 64;
    db_journal = Hashtbl.create 16;
    db_derived = Hashtbl.create 16;
    db_ran = false;
  }

let relation (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> r
  | None ->
      let r = Relation.create () in
      Hashtbl.replace db.db_rels pred r;
      r

(** [insert_fact db pred tuple] inserts and returns [true] iff the
    tuple is new.  New tuples are journaled as part of the delta for
    the next {!run_incremental}. *)
let insert_fact (db : db) pred tuple =
  let t = Array.of_list tuple in
  Relation.add (relation db pred) t
  && begin
       (match Hashtbl.find_opt db.db_journal pred with
       | Some l -> l := t :: !l
       | None -> Hashtbl.replace db.db_journal pred (ref [ t ]));
       true
     end

let add_fact (db : db) pred tuple = ignore (insert_fact db pred tuple)

let facts (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> Relation.to_list r
  | None -> []

let fact_count (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> Relation.size r
  | None -> 0

let total_tuples (db : db) =
  Hashtbl.fold (fun _ r acc -> acc + Relation.size r) db.db_rels 0

let derived_predicates (db : db) =
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) db.db_derived [])

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

(* Souffle's TSV reader has no in-band escaping, so a raw tab or
   newline inside a fact value would silently shift every following
   cell.  We emit backslash escapes for the four dangerous characters;
   consumers that need the exact original can unescape them. *)
let escape_cell s =
  let needs_escape = ref false in
  String.iter
    (function '\t' | '\n' | '\r' | '\\' -> needs_escape := true | _ -> ())
    s;
  if not !needs_escape then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

(** Write every relation as a tab-separated [<pred>.facts] file in
    [dir] — the input format Souffle consumes, so an exported fact base
    can be fed to the original XChainWatcher artifact for
    cross-validation.  [dir] and its parents are created as needed;
    tabs/newlines/backslashes inside values are backslash-escaped.
    Rows are sorted lexicographically, so the files are byte-stable
    across insertion orders and worker counts (a relation is a set; the
    hash-table iteration order is an implementation detail). *)
let dump_facts (db : db) ~dir =
  mkdir_p dir;
  Hashtbl.iter
    (fun pred rel ->
      let oc = open_out (Filename.concat dir (pred ^ ".facts")) in
      let lines = ref [] in
      Relation.iter rel (fun tuple ->
          let cells =
            Array.to_list tuple
            |> List.map (function
                 | Str s -> escape_cell s
                 | Int n -> string_of_int n)
          in
          lines := String.concat "\t" cells :: !lines);
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (List.sort compare !lines);
      close_out oc)
    db.db_rels

(* ------------------------------------------------------------------ *)
(* Safety checks                                                       *)

let check_rule_safety (r : rule) =
  let bound = ref [] in
  List.iter
    (function
      | Pos a -> bound := atom_vars a @ !bound
      | Neg _ | Cmp _ -> ())
    r.body;
  let is_bound v = List.mem v !bound in
  List.iter
    (fun v ->
      if not (is_bound v) then
        raise
          (Unsafe_rule
             (Format.asprintf "head variable %s not bound by a positive literal in %a" v
                pp_rule r)))
    (atom_vars r.head);
  List.iter
    (function
      | Neg a ->
          List.iter
            (fun v ->
              if not (is_bound v) then
                raise
                  (Unsafe_rule
                     (Format.asprintf "negated variable %s unbound in %a" v pp_rule r)))
            (atom_vars a)
      | Cmp (_, l, rr) ->
          List.iter
            (fun v ->
              if not (is_bound v) then
                raise
                  (Unsafe_rule
                     (Format.asprintf "comparison variable %s unbound in %a" v pp_rule r)))
            (expr_vars l @ expr_vars rr)
      | Pos _ -> ())
    r.body

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)

(** Compute strata via the strongly connected components of the
    head-predicate dependency graph, in topological order.  Each SCC
    becomes its own stratum; a negative edge inside an SCC makes the
    program non-stratifiable.  The returned [bool] is whether the
    stratum is recursive (needs fixpoint iteration): non-recursive
    strata — the common case for the cross-chain rules — are evaluated
    in a single pass. *)
let stratify (rules : rule list) : (rule list * bool) list =
  let preds =
    List.sort_uniq compare (List.map (fun r -> r.head.pred) rules)
  in
  let derived p = List.mem p preds in
  (* Dependency edges head -> body-predicate, with polarity. *)
  let deps = Hashtbl.create 64 in
  let add_dep h b negated =
    let l = Option.value (Hashtbl.find_opt deps h) ~default:[] in
    if not (List.mem (b, negated) l) then Hashtbl.replace deps h ((b, negated) :: l)
  in
  List.iter
    (fun r ->
      List.iter
        (function
          | Pos a when derived a.pred -> add_dep r.head.pred a.pred false
          | Neg a when derived a.pred -> add_dep r.head.pred a.pred true
          | _ -> ())
        r.body)
    rules;
  let successors p =
    Option.value (Hashtbl.find_opt deps p) ~default:[] |> List.map fst
  in
  (* Tarjan's SCC algorithm; emits SCCs in reverse topological order of
     the condensation (dependencies last), so we reverse at the end to
     evaluate dependencies first. *)
  let index = Hashtbl.create 16 and lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* Pop the component. *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun p -> if not (Hashtbl.mem index p) then strongconnect p) preds;
  let ordered = List.rev !sccs (* topological: dependencies first *) in
  List.filter_map
    (fun component ->
      let in_component p = List.mem p component in
      (* Recursive iff the component has an internal edge. *)
      let recursive =
        List.exists
          (fun p ->
            List.exists
              (fun (b, negated) ->
                if in_component b then begin
                  if negated then
                    raise
                      (Not_stratifiable
                         (Printf.sprintf "negation cycle through %s" p));
                  true
                end
                else false)
              (Option.value (Hashtbl.find_opt deps p) ~default:[]))
          component
      in
      let group = List.filter (fun r -> in_component r.head.pred) rules in
      if group = [] then None else Some (group, recursive))
    ordered

(* ------------------------------------------------------------------ *)
(* Rule evaluation                                                     *)

(* Rules are compiled before evaluation: every variable gets an integer
   slot, and the body is evaluated as a depth-first backtracking join
   over a single mutable environment.  Compared to materializing
   substitution lists per literal, this allocates almost nothing per
   candidate tuple — rule evaluation over large fact bases is
   allocation-bound. *)

type slot_term = S_const of const | S_var of int

type compiled_atom = { c_pred : string; c_args : slot_term array }

type compiled_expr =
  | CE_const of const
  | CE_var of int
  | CE_add of compiled_expr * compiled_expr
  | CE_sub of compiled_expr * compiled_expr
  | CE_mul of compiled_expr * compiled_expr

type compiled_literal =
  | C_pos of compiled_atom
  | C_neg of compiled_atom
  | C_cmp of cmp_op * compiled_expr * compiled_expr

type compiled_rule = {
  cr_nvars : int;
  cr_head : compiled_atom;
  cr_body : compiled_literal array;
  cr_source : rule;
}

let compile_rule (r : rule) : compiled_rule =
  let slots = Hashtbl.create 16 in
  let nvars = ref 0 in
  let slot_of v =
    match Hashtbl.find_opt slots v with
    | Some i -> i
    | None ->
        let i = !nvars in
        incr nvars;
        Hashtbl.replace slots v i;
        i
  in
  let compile_term = function
    | Const c -> S_const c
    | Var v -> S_var (slot_of v)
  in
  let compile_atom (a : atom) =
    { c_pred = a.pred; c_args = Array.of_list (List.map compile_term a.args) }
  in
  let rec compile_expr = function
    | E_const c -> CE_const c
    | E_var v -> CE_var (slot_of v)
    | E_add (a, b) -> CE_add (compile_expr a, compile_expr b)
    | E_sub (a, b) -> CE_sub (compile_expr a, compile_expr b)
    | E_mul (a, b) -> CE_mul (compile_expr a, compile_expr b)
  in
  let body =
    List.map
      (function
        | Pos a -> C_pos (compile_atom a)
        | Neg a -> C_neg (compile_atom a)
        | Cmp (op, a, b) -> C_cmp (op, compile_expr a, compile_expr b))
      r.body
  in
  {
    cr_nvars = !nvars;
    cr_head = compile_atom r.head;
    cr_body = Array.of_list body;
    cr_source = r;
  }

(* The environment: one cell per variable slot; [None] = unbound. *)
type env = const option array

let rec eval_cexpr (env : env) = function
  | CE_const (Int n) -> n
  | CE_const (Str str) ->
      raise (Unsafe_rule (Printf.sprintf "string %S in arithmetic" str))
  | CE_var i -> (
      match env.(i) with
      | Some (Int n) -> n
      | Some (Str str) ->
          raise (Unsafe_rule (Printf.sprintf "string %S in arithmetic" str))
      | None -> raise (Unsafe_rule "unbound variable in comparison"))
  | CE_add (a, b) -> eval_cexpr env a + eval_cexpr env b
  | CE_sub (a, b) -> eval_cexpr env a - eval_cexpr env b
  | CE_mul (a, b) -> eval_cexpr env a * eval_cexpr env b

(* String (in)equality comparisons are permitted for Eq/Ne when both
   sides are a variable or constant. *)
let eval_ccmp (env : env) op lhs rhs =
  let as_const = function
    | CE_const c -> Some c
    | CE_var i -> env.(i)
    | _ -> None
  in
  match (op, as_const lhs, as_const rhs) with
  | Eq, Some a, Some b -> a = b
  | Ne, Some a, Some b -> a <> b
  | _ -> (
      let a = eval_cexpr env lhs and b = eval_cexpr env rhs in
      match op with
      | Lt -> a < b
      | Le -> a <= b
      | Gt -> a > b
      | Ge -> a >= b
      | Eq -> a = b
      | Ne -> a <> b)

(* Bound (position, key) pairs of an atom under the current env. *)
let bound_positions (a : compiled_atom) (env : env) =
  let positions = ref [] and key = ref [] in
  Array.iteri
    (fun k arg ->
      match arg with
      | S_const c ->
          positions := k :: !positions;
          key := c :: !key
      | S_var i -> (
          match env.(i) with
          | Some c ->
              positions := k :: !positions;
              key := c :: !key
          | None -> ()))
    a.c_args;
  (List.rev !positions, List.rev !key)

(* Try to unify [tuple] with [a] under [env]; newly bound slots are
   pushed onto [trail] for backtracking.  Returns success. *)
let unify_tuple (a : compiled_atom) (tuple : Relation.tuple) (env : env)
    (trail : int list ref) : bool =
  let n = Array.length a.c_args in
  if n <> Array.length tuple then false
  else begin
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < n do
      (match a.c_args.(!k) with
      | S_const c -> if c <> tuple.(!k) then ok := false
      | S_var i -> (
          match env.(i) with
          | Some bound -> if bound <> tuple.(!k) then ok := false
          | None ->
              env.(i) <- Some tuple.(!k);
              trail := i :: !trail));
      incr k
    done;
    if not !ok then begin
      (* Roll back the bindings made during this failed attempt. *)
      List.iter (fun i -> env.(i) <- None) !trail;
      trail := []
    end;
    !ok
  end

let instantiate (a : compiled_atom) (env : env) : Relation.tuple =
  Array.map
    (function
      | S_const c -> c
      | S_var i -> (
          match env.(i) with
          | Some c -> c
          | None -> raise (Unsafe_rule "unbound variable at instantiation")))
    a.c_args

(* Depth-first evaluation of the body from literal [idx]; calls [emit]
   for every satisfying environment.  [delta_at]/[delta_tuples]
   restrict one positive literal to the semi-naive delta; [over]
   overrides the candidate list of one positive literal outright — the
   hook domain-parallel evaluation uses to hand each worker a
   contiguous chunk [(pos, arr, start, len)] of the driving literal's
   candidate array (a range, so the submitter never re-conses
   per-chunk sublists).

   Body evaluation never mutates the database: relations are read via
   [Hashtbl.find_opt] (a missing relation simply has no tuples) and any
   index a lookup needs is pre-built by the parallel driver, so
   concurrent workers share the structures read-only. *)
let rec eval_from (db : db) (cr : compiled_rule) (env : env) ~idx ~delta_at
    ~delta_tuples ~over ~emit =
  if idx >= Array.length cr.cr_body then emit env
  else
    match cr.cr_body.(idx) with
    | C_pos a -> (
        let visit tuple =
          let trail = ref [] in
          if unify_tuple a tuple env trail then begin
            eval_from db cr env ~idx:(idx + 1) ~delta_at ~delta_tuples ~over
              ~emit;
            List.iter (fun i -> env.(i) <- None) !trail
          end
        in
        match over with
        | Some (o, arr, start, len) when o = idx ->
            for i = start to start + len - 1 do
              visit arr.(i)
            done
        | _ ->
            let candidates =
              match delta_at with
              | Some d when d = idx -> delta_tuples
              | _ -> (
                  match Hashtbl.find_opt db.db_rels a.c_pred with
                  | None -> []
                  | Some rel ->
                      let positions, key = bound_positions a env in
                      Relation.lookup rel positions key)
            in
            List.iter visit candidates)
    | C_neg a ->
        let present =
          match Hashtbl.find_opt db.db_rels a.c_pred with
          | Some rel -> Relation.mem rel (instantiate a env)
          | None -> false
        in
        if not present then
          eval_from db cr env ~idx:(idx + 1) ~delta_at ~delta_tuples ~over ~emit
    | C_cmp (op, lhs, rhs) ->
        if eval_ccmp env op lhs rhs then
          eval_from db cr env ~idx:(idx + 1) ~delta_at ~delta_tuples ~over ~emit

(* Evaluate a compiled rule, calling [on_derived] with each (possibly
   duplicate) head tuple. *)
let eval_rule (db : db) (cr : compiled_rule) ~delta_at ~delta_tuples
    ~on_derived =
  let env : env = Array.make (max 1 cr.cr_nvars) None in
  eval_from db cr env ~idx:0 ~delta_at ~delta_tuples ~over:None
    ~emit:(fun env -> on_derived (instantiate cr.cr_head env))

(* Worker-side evaluation of one partition: collect the head tuples in
   derivation order instead of inserting them — the submitter merges
   partitions in submission order, so concatenating the per-partition
   lists reproduces the exact sequential derivation sequence.

   Duplicates within the partition are dropped on the worker, keeping
   each tuple's {e first} derivation.  That moves dedup work off the
   serial merge without changing the result: sequentially a tuple is
   inserted at its first derivation and later duplicates are no-ops,
   and since partitions merge in submission order, the first surviving
   occurrence lands at exactly the sequential insertion position.
   (Cross-partition duplicates still exist; [Relation.add] in the
   merge handles those as before.) *)
let eval_rule_partition (db : db) (cr : compiled_rule) ~delta_at ~delta_tuples
    ~over : Relation.tuple list =
  let env : env = Array.make (max 1 cr.cr_nvars) None in
  let out = ref [] in
  let seen : (Relation.tuple, unit) Hashtbl.t = Hashtbl.create 64 in
  eval_from db cr env ~idx:0 ~delta_at ~delta_tuples ~over ~emit:(fun env ->
      let tuple = instantiate cr.cr_head env in
      if not (Hashtbl.mem seen tuple) then begin
        Hashtbl.replace seen tuple ();
        out := tuple :: !out
      end);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)

type stats = {
  mutable rules_evaluated : int;
  mutable iterations : int;
  mutable tuples_derived : int;
}

(* Fact bases in the hundreds of thousands of tuples are strongly
   allocation-bound: the default 256K-word minor heap forces constant
   promotions of short-lived substitution lists while the relation
   store keeps a large live set.  A bigger minor heap and a laxer
   space/time trade-off roughly halve evaluation time at the paper's
   full scale. *)
let gc_tuned = ref false

let recommended_gc_setup () =
  if not !gc_tuned then begin
    gc_tuned := true;
    let params = Gc.get () in
    Gc.set
      {
        params with
        Gc.minor_heap_size = max params.Gc.minor_heap_size (8 * 1024 * 1024);
        space_overhead = max params.Gc.space_overhead 200;
      }
  end

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)

(* Observability context for one evaluation run.  Per-rule histograms
   are resolved up front (keyed by the rule's physical identity, which
   [stratify] preserves) so the per-evaluation cost is one [assq]
   lookup and two [gettimeofday] calls — and nothing at all when the
   registry is disabled. *)
type engine_obs = {
  eo_reg : Metrics.t;
  eo_live : bool;
  eo_rule_hist : (rule * Metrics.Histogram.t) list;
  eo_strata_skipped : Metrics.Counter.t;
  eo_strata_seminaive : Metrics.Counter.t;
  eo_strata_recomputed : Metrics.Counter.t;
  eo_retractions : Metrics.Counter.t;
  eo_tuples : Metrics.Counter.t;
  eo_delta : Metrics.Histogram.t;
  eo_par_tasks : Metrics.Counter.t;
}

(* Rules are labelled by position so the label sorts in program order
   and survives predicates with several rules: "07:cctx_deposit". *)
let rule_label i (r : rule) = Printf.sprintf "%02d:%s" i r.head.pred

let make_obs reg (program : program) =
  {
    eo_reg = reg;
    eo_live = Metrics.enabled reg;
    eo_rule_hist =
      List.mapi
        (fun i r ->
          ( r,
            Metrics.histogram reg
              ~labels:[ ("rule", rule_label i r) ]
              "xcw_datalog_rule_seconds" ))
        program.rules;
    eo_strata_skipped = Metrics.counter reg "xcw_datalog_strata_skipped_total";
    eo_strata_seminaive =
      Metrics.counter reg "xcw_datalog_strata_seminaive_total";
    eo_strata_recomputed =
      Metrics.counter reg "xcw_datalog_strata_recomputed_total";
    eo_retractions = Metrics.counter reg "xcw_datalog_retractions_total";
    eo_tuples = Metrics.counter reg "xcw_datalog_tuples_derived_total";
    eo_delta = Metrics.histogram reg "xcw_datalog_delta_tuples";
    eo_par_tasks = Metrics.counter reg "xcw_datalog_parallel_tasks_total";
  }

(* Time one stratum into its labelled histogram and a span on the
   default tracer; a no-op (beyond running [f]) when metrics are off. *)
let with_stratum obs i recursive ~mode f =
  if not obs.eo_live then f ()
  else begin
    let h =
      Metrics.histogram obs.eo_reg
        ~labels:[ ("stratum", string_of_int i) ]
        "xcw_datalog_stratum_seconds"
    in
    let attrs =
      [
        ("stratum", string_of_int i);
        ("recursive", string_of_bool recursive);
        ("mode", mode);
      ]
    in
    Span.with_ ~attrs "datalog.stratum" (fun () ->
        let t0 = Unix.gettimeofday () in
        let r = f () in
        Metrics.Histogram.observe h (Unix.gettimeofday () -. t0);
        r)
  end

(* Evaluate one stratum to fixpoint.  [seed] controls round 0: [`Full]
   evaluates every rule over the whole database (from-scratch
   semantics); [`Deltas fresh] evaluates only body occurrences of
   predicates present in [fresh], restricted to those fresh tuples —
   semi-naive *insertion*, sound when the stratum is monotone w.r.t.
   the changed predicates.  [on_new] fires for every tuple actually
   added to the database (across all rounds). *)
let eval_stratum_seq (db : db) (stats : stats) ~naive ~obs
    (stratum_rules : rule list) (recursive : bool)
    ~(seed : [ `Full | `Deltas of (string, Relation.tuple list) Hashtbl.t ])
    ~(on_new : string -> Relation.tuple -> unit) : unit =
  let compiled = List.map compile_rule stratum_rules in
  let stratum_preds =
    List.sort_uniq compare (List.map (fun r -> r.head.pred) stratum_rules)
  in
  let in_stratum p = List.mem p stratum_preds in
  (* delta per predicate: tuples added in the previous round. *)
  let delta : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 8 in
  let record_delta tbl pred tuple =
    let prev = Option.value (Hashtbl.find_opt tbl pred) ~default:[] in
    Hashtbl.replace tbl pred (tuple :: prev)
  in
  let eval_into tbl cr ~delta_at ~delta_tuples =
    stats.rules_evaluated <- stats.rules_evaluated + 1;
    let t0 = if obs.eo_live then Unix.gettimeofday () else 0. in
    eval_rule db cr ~delta_at ~delta_tuples ~on_derived:(fun tuple ->
        let pred = cr.cr_head.c_pred in
        if Relation.add (relation db pred) tuple then begin
          stats.tuples_derived <- stats.tuples_derived + 1;
          record_delta tbl pred tuple;
          on_new pred tuple
        end);
    if obs.eo_live then
      match List.assq_opt cr.cr_source obs.eo_rule_hist with
      | Some h -> Metrics.Histogram.observe h (Unix.gettimeofday () -. t0)
      | None -> ()
  in
  (* Round 0. *)
  (match seed with
  | `Full ->
      List.iter
        (fun cr -> eval_into delta cr ~delta_at:None ~delta_tuples:[])
        compiled
  | `Deltas fresh ->
      (* Every new derivable tuple must use at least one fresh tuple at
         some body position; evaluating each changed occurrence against
         the (already updated) full database elsewhere covers all new
         combinations.  Duplicates collapse in [Relation.add]. *)
      List.iter
        (fun cr ->
          Array.iteri
            (fun idx lit ->
              match lit with
              | C_pos a -> (
                  match Hashtbl.find_opt fresh a.c_pred with
                  | Some (_ :: _ as delta_tuples) ->
                      eval_into delta cr ~delta_at:(Some idx) ~delta_tuples
                  | _ -> ())
              | _ -> ())
            cr.cr_body)
        compiled);
  stats.iterations <- stats.iterations + 1;
  (* Non-recursive strata are complete after one pass (their body
     predicates all live in earlier strata). *)
  let continue_ =
    ref (recursive && Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false)
  in
  while !continue_ do
    stats.iterations <- stats.iterations + 1;
    let new_delta : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 8 in
    if naive then
      (* Naive: re-evaluate everything on the full database. *)
      List.iter
        (fun cr -> eval_into new_delta cr ~delta_at:None ~delta_tuples:[])
        compiled
    else
      (* Semi-naive: for each rule and each body occurrence of a
         same-stratum predicate, evaluate with that occurrence
         restricted to the delta. *)
      List.iter
        (fun cr ->
          Array.iteri
            (fun idx lit ->
              match lit with
              | C_pos a when in_stratum a.c_pred -> (
                  match Hashtbl.find_opt delta a.c_pred with
                  | Some (_ :: _ as delta_tuples) ->
                      eval_into new_delta cr ~delta_at:(Some idx) ~delta_tuples
                  | _ -> ())
              | _ -> ())
            cr.cr_body)
        compiled;
    Hashtbl.reset delta;
    Hashtbl.iter (fun k v -> Hashtbl.replace delta k v) new_delta;
    continue_ := Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false
  done

(* ------------------------------------------------------------------ *)
(* Domain-parallel stratum evaluation                                  *)

(* Partitioning scheme: within a pass, each (rule, delta-occurrence)
   job splits the candidate list of its {e driving literal} — the first
   positive body literal, the outermost loop of the backtracking join —
   into contiguous chunks (several per domain).  Workers evaluate chunks against
   the shared relations read-only (every index a chunk can touch is
   pre-built below; head insertions are deferred), and the submitter
   merges the per-chunk derivation lists in submission order.

   Determinism argument: for a non-recursive stratum the body
   predicates are all fully materialized by earlier strata, so chunk
   evaluation is a pure function of the frozen database and
   concatenating chunk outputs in order is {e exactly} the sequential
   derivation sequence; first-come deduplication at merge time then
   reproduces the sequential insertion order bit-for-bit, for any
   worker count.  Recursive strata synchronize per semi-naive round
   (workers read the frozen previous-round state), which reaches the
   same fixpoint — the same tuple sets and derived-tuple counts — but
   may order insertions differently than the interleaved sequential
   rounds; the shipped cross-chain program is fully non-recursive. *)

(* The variable slots bound when control reaches body literal [idx] are
   statically known — exactly the variables of earlier positive
   literals ([unify_tuple] binds every variable of an atom; negations
   and comparisons bind nothing).  Hence the index position-list each
   lookup will use is static too, and can be pre-built sequentially. *)
let static_bound_positions (cr : compiled_rule) : (int * int list) list =
  let bound = Array.make (max 1 cr.cr_nvars) false in
  let acc = ref [] in
  Array.iteri
    (fun idx lit ->
      match lit with
      | C_pos a ->
          let positions = ref [] in
          Array.iteri
            (fun k arg ->
              match arg with
              | S_const _ -> positions := k :: !positions
              | S_var i -> if bound.(i) then positions := k :: !positions)
            a.c_args;
          acc := (idx, List.rev !positions) :: !acc;
          Array.iter
            (function S_var i -> bound.(i) <- true | S_const _ -> ())
            a.c_args
      | C_neg _ | C_cmp _ -> ())
    cr.cr_body;
  List.rev !acc

(* Pre-build every index the stratum's lookups can touch, fanning the
   work out over the pool — empty index tables are registered
   sequentially here (a single thread owns each relation's index map)
   and the fills run as independent tasks, so no two tasks share
   mutable state and a relation needing several indices doesn't
   serialize them into one long task.  Small indices are one task
   each; a large index splits into key-projection range tasks followed
   by one insert task per shard (the phase barrier between the two
   batches is what lets the shard inserts read every scratch key).
   Index contents are a pure function of the relation, so build order
   is irrelevant; the pool's batch synchronization publishes the
   writes to all workers before evaluation starts. *)
let prepare_indices (db : db) ~pool compiled =
  let seen : (string * int list, unit) Hashtbl.t = Hashtbl.create 16 in
  let phase_a = ref [] in
  let phase_b = ref [] in
  let k = max 1 (Pool.ndomains pool) in
  List.iter
    (fun cr ->
      List.iter
        (fun (idx, positions) ->
          match (positions, cr.cr_body.(idx)) with
          | [], _ -> ()
          | _, C_pos a ->
              if not (Hashtbl.mem seen (a.c_pred, positions)) then begin
                Hashtbl.add seen (a.c_pred, positions) ();
                match Hashtbl.find_opt db.db_rels a.c_pred with
                | Some rel -> (
                    match Relation.prepare_index rel positions with
                    | Some (`Fill fill) -> phase_a := fill :: !phase_a
                    | Some (`Sharded (n, keys_range, insert_shard)) ->
                        let chunk = max 2048 ((n + (4 * k) - 1) / (4 * k)) in
                        let lo = ref 0 in
                        while !lo < n do
                          let lo' = !lo in
                          let hi = min n (lo' + chunk) in
                          phase_a := (fun () -> keys_range lo' hi) :: !phase_a;
                          lo := hi
                        done;
                        for s = 0 to Relation.nshards - 1 do
                          phase_b := (fun () -> insert_shard s) :: !phase_b
                        done
                    | None -> ())
                | None -> ()
              end
          | _ -> ())
        (static_bound_positions cr))
    compiled;
  ignore (Pool.run pool !phase_a);
  ignore (Pool.run pool !phase_b)

let first_pos (cr : compiled_rule) =
  let n = Array.length cr.cr_body in
  let rec go i =
    if i >= n then None
    else match cr.cr_body.(i) with C_pos _ -> Some i | _ -> go (i + 1)
  in
  go 0

(* One (rule, delta-occurrence) evaluation job, as the sequential
   [eval_into] call sites produce them. *)
type par_occurrence = {
  po_cr : compiled_rule;
  po_delta_at : int option;
  po_delta_tuples : Relation.tuple list;
}

(* The driving literal's candidates are materialized once as an array
   and chunked as contiguous index ranges — no per-chunk sublists to
   cons on the submitter.  Range boundaries never affect the result:
   the merge concatenates chunk outputs in submission order. *)
let occurrence_chunks (db : db) ~k (oc : par_occurrence) :
    (int * Relation.tuple array * int * int) option list =
  let cr = oc.po_cr in
  match first_pos cr with
  | None -> [ None ]
  | Some p ->
      let candidates =
        match oc.po_delta_at with
        | Some d when d = p -> Array.of_list oc.po_delta_tuples
        | _ -> (
            match cr.cr_body.(p) with
            | C_pos a -> (
                match Hashtbl.find_opt db.db_rels a.c_pred with
                | None -> [||]
                | Some rel -> (
                    let env : env = Array.make (max 1 cr.cr_nvars) None in
                    let positions, key = bound_positions a env in
                    match positions with
                    | [] -> Relation.to_array rel
                    | _ -> Array.of_list (Relation.lookup rel positions key)))
            | _ -> assert false)
      in
      let n = Array.length candidates in
      if n = 0 then []
      else begin
        (* ~[k] chunks for balance, but never more than 64 candidates
           per chunk: a rule's matches can cluster brutally in one
           candidate range (observed: one of 32 chunks carrying 89% of
           a batch's work), and a capped chunk bounds how much of a hot
           range the unluckiest worker inherits. *)
        let size = max 1 (min ((n + k - 1) / k) 64) in
        let rec go start acc =
          if start >= n then List.rev acc
          else
            let len = min size (n - start) in
            go (start + len) (Some (p, candidates, start, len) :: acc)
        in
        go 0 []
      end

(* Run one pass (the parallel analogue of one sequence of [eval_into]
   calls): fan the chunks out, then merge derivations back in
   submission order through the usual add/record/on_new chain. *)
let eval_pass_parallel (db : db) (stats : stats) ~obs ~pool ~fanout_gauge tbl
    ~record_delta ~on_new (occurrences : par_occurrence list) =
  (* Many chunks per domain: the pool's dynamic claiming then evens
     out skewed chunk costs (rules whose matches cluster in one part of
     the candidate list — common here, where a handful of join-heavy
     rules dominate a stratum), at a per-chunk cost of two timestamps
     and a result slot.  Chunk count never affects the result — the
     merge concatenates chunk outputs in submission order regardless. *)
  let k = 16 * Pool.ndomains pool in
  let jobs =
    List.map
      (fun oc ->
        stats.rules_evaluated <- stats.rules_evaluated + 1;
        (oc, occurrence_chunks db ~k oc))
      occurrences
  in
  let flat =
    List.concat_map (fun (oc, chunks) -> List.map (fun c -> (oc, c)) chunks)
      jobs
  in
  let ntasks = List.length flat in
  Metrics.Counter.add obs.eo_par_tasks ntasks;
  Metrics.Gauge.set fanout_gauge (float_of_int ntasks);
  let thunks =
    List.map
      (fun (oc, over) () ->
        let t0 = if obs.eo_live then Unix.gettimeofday () else 0. in
        let out =
          eval_rule_partition db oc.po_cr ~delta_at:oc.po_delta_at
            ~delta_tuples:oc.po_delta_tuples ~over
        in
        ((if obs.eo_live then Unix.gettimeofday () -. t0 else 0.), out))
      flat
  in
  let results = Pool.run pool thunks in
  List.iter2
    (fun (oc, _) (_, out) ->
      match out with
      | [] -> ()
      | out ->
          let pred = oc.po_cr.cr_head.c_pred in
          let rel = relation db pred in
          List.iter
            (fun tuple ->
              if Relation.add rel tuple then begin
                stats.tuples_derived <- stats.tuples_derived + 1;
                record_delta tbl pred tuple;
                on_new pred tuple
              end)
            out)
    flat results;
  if obs.eo_live then begin
    (* Per-rule histograms get each occurrence's summed chunk busy
       time: one sample per occurrence, as in sequential mode. *)
    let rec walk jobs results =
      match jobs with
      | [] -> ()
      | (oc, chunks) :: jobs ->
          let n = List.length chunks in
          let rec take n acc results =
            if n = 0 then (acc, results)
            else
              match results with
              | (dt, _) :: rest -> take (n - 1) (acc +. dt) rest
              | [] -> (acc, [])
          in
          let busy, rest = take n 0. results in
          (match List.assq_opt oc.po_cr.cr_source obs.eo_rule_hist with
          | Some h -> Metrics.Histogram.observe h busy
          | None -> ());
          walk jobs rest
    in
    walk jobs results
  end

let eval_stratum_parallel (db : db) (stats : stats) ~naive ~obs ~pool
    ~fanout_gauge (stratum_rules : rule list) (recursive : bool)
    ~(seed : [ `Full | `Deltas of (string, Relation.tuple list) Hashtbl.t ])
    ~(on_new : string -> Relation.tuple -> unit) : unit =
  let compiled = List.map compile_rule stratum_rules in
  prepare_indices db ~pool compiled;
  let stratum_preds =
    List.sort_uniq compare (List.map (fun r -> r.head.pred) stratum_rules)
  in
  let in_stratum p = List.mem p stratum_preds in
  let delta : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 8 in
  let record_delta tbl pred tuple =
    let prev = Option.value (Hashtbl.find_opt tbl pred) ~default:[] in
    Hashtbl.replace tbl pred (tuple :: prev)
  in
  let run_pass tbl occurrences =
    eval_pass_parallel db stats ~obs ~pool ~fanout_gauge tbl ~record_delta
      ~on_new occurrences
  in
  let full_occurrences () =
    List.map
      (fun cr -> { po_cr = cr; po_delta_at = None; po_delta_tuples = [] })
      compiled
  in
  (* Delta occurrences in the order the sequential call sites visit
     them: rule-major, body position ascending. *)
  let delta_occurrences tbl ~only_stratum =
    List.concat_map
      (fun cr ->
        let occs = ref [] in
        Array.iteri
          (fun idx lit ->
            match lit with
            | C_pos a when (not only_stratum) || in_stratum a.c_pred -> (
                match Hashtbl.find_opt tbl a.c_pred with
                | Some (_ :: _ as dts) ->
                    occs :=
                      { po_cr = cr; po_delta_at = Some idx; po_delta_tuples = dts }
                      :: !occs
                | _ -> ())
            | _ -> ())
          cr.cr_body;
        List.rev !occs)
      compiled
  in
  (match seed with
  | `Full -> run_pass delta (full_occurrences ())
  | `Deltas fresh -> run_pass delta (delta_occurrences fresh ~only_stratum:false));
  stats.iterations <- stats.iterations + 1;
  let continue_ =
    ref (recursive && Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false)
  in
  while !continue_ do
    stats.iterations <- stats.iterations + 1;
    let new_delta : (string, Relation.tuple list) Hashtbl.t =
      Hashtbl.create 8
    in
    (if naive then run_pass new_delta (full_occurrences ())
     else run_pass new_delta (delta_occurrences delta ~only_stratum:true));
    Hashtbl.reset delta;
    Hashtbl.iter (fun k v -> Hashtbl.replace delta k v) new_delta;
    continue_ := Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false
  done

(* Dispatcher: the 1-domain path is the untouched sequential code. *)
let eval_stratum (db : db) (stats : stats) ~naive ~obs ?pool ~stratum_i
    (stratum_rules : rule list) (recursive : bool) ~seed ~on_new : unit =
  match pool with
  | Some pool when Pool.ndomains pool > 1 ->
      let fanout_gauge =
        Metrics.gauge obs.eo_reg
          ~labels:[ ("stratum", string_of_int stratum_i) ]
          "xcw_datalog_parallel_fanout"
      in
      eval_stratum_parallel db stats ~naive ~obs ~pool ~fanout_gauge
        stratum_rules recursive ~seed ~on_new
  | _ -> eval_stratum_seq db stats ~naive ~obs stratum_rules recursive ~seed ~on_new

let mark_derived (db : db) (stratum_rules : rule list) =
  List.iter
    (fun (r : rule) -> Hashtbl.replace db.db_derived r.head.pred ())
    stratum_rules

let pool_for ?pool ndomains =
  match pool with
  | Some p -> if Pool.ndomains p > 1 then Some p else None
  | None ->
      if ndomains < 1 then invalid_arg "Engine: ndomains must be >= 1"
      else if ndomains = 1 then None
      else Some (Pool.get ~ndomains)

(** [run ?naive db program] evaluates all rules to fixpoint, stratum by
    stratum, adding derived tuples to [db] in place.  [naive] disables
    semi-naive deltas (used by the ablation bench).  [ndomains]
    (default 1: bit-identical sequential behaviour) evaluates each
    stratum on a shared domain pool.  Returns evaluation statistics. *)
let run ?(naive = false) ?metrics ?(ndomains = 1) ?pool (db : db)
    (program : program) : stats =
  let pool = pool_for ?pool ndomains in
  let reg = match metrics with Some m -> m | None -> Metrics.default () in
  let obs = make_obs reg program in
  List.iter check_rule_safety program.rules;
  let stats = { rules_evaluated = 0; iterations = 0; tuples_derived = 0 } in
  let strata = stratify program.rules in
  Span.with_ "datalog.run" (fun () ->
      List.iteri
        (fun i (stratum_rules, recursive) ->
          mark_derived db stratum_rules;
          with_stratum obs i recursive ~mode:"full" (fun () ->
              eval_stratum db stats ~naive ~obs ?pool ~stratum_i:i
                stratum_rules recursive ~seed:`Full
                ~on_new:(fun _ _ -> ())))
        strata);
  db.db_ran <- true;
  Hashtbl.reset db.db_journal;
  Metrics.Counter.add obs.eo_tuples stats.tuples_derived;
  stats

(** [run_incremental db program] brings a previously evaluated [db] up
    to date after EDB insertions, treating the journaled fresh tuples
    as the initial semi-naive delta.  Per stratum (in dependency
    order):

    - no input predicate changed → the stratum is skipped outright, its
      derived tuples standing from the previous run;
    - inputs changed only through predicates the stratum uses
      positively → semi-naive insertion seeded with the fresh tuples
      (old derived tuples are kept, only new joins run);
    - a changed predicate occurs under negation (or an upstream
      predicate was recomputed non-monotonically) → the stratum's
      derived relations are cleared ({!Relation.clear} preserves their
      hash-index structure) and re-derived from scratch over the
      current database — the retraction path for the non-monotonic
      anomaly relations.

    EDB relations and their indices are never rebuilt.  The program
    must be the same one evaluated on [db] previously (the first call
    on a fresh database falls back to a full {!run}). *)
let run_incremental ?metrics ?(ndomains = 1) ?pool (db : db)
    (program : program) : stats =
  if not db.db_ran then run ?metrics ~ndomains ?pool db program
  else begin
    let pool = pool_for ?pool ndomains in
    let reg = match metrics with Some m -> m | None -> Metrics.default () in
    let obs = make_obs reg program in
    List.iter check_rule_safety program.rules;
    let stats = { rules_evaluated = 0; iterations = 0; tuples_derived = 0 } in
    let strata = stratify program.rules in
    (* Tuples added per predicate since the last run: journaled EDB
       insertions plus everything derived by earlier strata below. *)
    let added : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun pred l -> if !l <> [] then Hashtbl.replace added pred !l)
      db.db_journal;
    if obs.eo_live then
      Metrics.Histogram.observe obs.eo_delta
        (float_of_int
           (Hashtbl.fold (fun _ l acc -> acc + List.length l) added 0));
    (* Predicates recomputed non-monotonically (some tuple retracted):
       downstream consumers cannot use insertion-only deltas. *)
    let dirty : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let changed p = Hashtbl.mem added p || Hashtbl.mem dirty p in
    let record_added pred tuple =
      let prev = Option.value (Hashtbl.find_opt added pred) ~default:[] in
      Hashtbl.replace added pred (tuple :: prev)
    in
    Span.with_ "datalog.run_incremental" (fun () ->
    List.iteri
      (fun stratum_i ((stratum_rules : rule list), recursive) ->
        mark_derived db stratum_rules;
        let heads =
          List.sort_uniq compare
            (List.map (fun (r : rule) -> r.head.pred) stratum_rules)
        in
        let pos_added = ref false and non_monotonic = ref false in
        List.iter
          (fun (r : rule) ->
            List.iter
              (function
                | Pos a ->
                    if Hashtbl.mem added a.pred then pos_added := true;
                    if Hashtbl.mem dirty a.pred then non_monotonic := true
                | Neg a -> if changed a.pred then non_monotonic := true
                | Cmp _ -> ())
              r.body)
          stratum_rules;
        (* EDB tuples journaled directly into a derived predicate must
           survive the clear; force the recompute path and re-insert
           them. *)
        let head_journal =
          List.filter_map
            (fun p ->
              match Hashtbl.find_opt db.db_journal p with
              | Some l when !l <> [] -> Some (p, !l)
              | _ -> None)
            heads
        in
        if !non_monotonic || head_journal <> [] then begin
          (* Retraction path: clear and re-derive the whole stratum. *)
          Metrics.Counter.inc obs.eo_strata_recomputed;
          with_stratum obs stratum_i recursive ~mode:"recompute" (fun () ->
          let snapshots =
            List.map
              (fun p ->
                let rel = relation db p in
                let old = Relation.to_list rel in
                Relation.clear rel;
                (match List.assoc_opt p head_journal with
                | Some externals ->
                    List.iter (fun t -> ignore (Relation.add rel t)) externals
                | None -> ());
                (p, old))
              heads
          in
          eval_stratum db stats ~naive:false ~obs ?pool ~stratum_i
            stratum_rules recursive ~seed:`Full
            ~on_new:(fun _ _ -> ());
          List.iter
            (fun (p, old) ->
              let rel = relation db p in
              if obs.eo_live then
                Metrics.Counter.add obs.eo_retractions
                  (List.length
                     (List.filter (fun t -> not (Relation.mem rel t)) old));
              if List.exists (fun t -> not (Relation.mem rel t)) old then
                Hashtbl.replace dirty p ()
              else begin
                (* Additions only: propagate them as an ordinary delta. *)
                let old_set = Hashtbl.create (max 16 (List.length old)) in
                List.iter (fun t -> Hashtbl.replace old_set t ()) old;
                Relation.iter rel (fun t ->
                    if not (Hashtbl.mem old_set t) then record_added p t)
              end)
            snapshots)
        end
        else if !pos_added then begin
          (* Monotone path: keep the old derived tuples and seed
             semi-naive evaluation with the fresh input tuples. *)
          Metrics.Counter.inc obs.eo_strata_seminaive;
          with_stratum obs stratum_i recursive ~mode:"seminaive" (fun () ->
              eval_stratum db stats ~naive:false ~obs ?pool ~stratum_i
                stratum_rules recursive ~seed:(`Deltas added)
                ~on_new:record_added)
        end
        else
          (* No input changed — skip the stratum entirely. *)
          Metrics.Counter.inc obs.eo_strata_skipped)
      strata);
    Hashtbl.reset db.db_journal;
    Metrics.Counter.add obs.eo_tuples stats.tuples_derived;
    stats
  end
