(** Abstract syntax for Datalog programs.

    XChainWatcher's cross-chain rules (paper Section 3.3) are Horn
    clauses over facts extracted from blockchain data: positive and
    negated atoms plus arithmetic comparison constraints
    ([bridge_evt_idx > token_evt_idx], [src_ts + finality <= dst_ts]).
    The combinator DSL at the bottom keeps OCaml rule definitions close
    to Datalog concrete syntax. *)

type const = Str of string | Int of int

type term = Var of string | Const of const

type atom = { pred : string; args : term list }

(** Arithmetic expressions allowed in comparison constraints. *)
type expr =
  | E_const of const
  | E_var of string
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr

type cmp_op = Lt | Le | Gt | Ge | Eq | Ne

type literal =
  | Pos of atom
  | Neg of atom  (** stratified negation *)
  | Cmp of cmp_op * expr * expr
      (** arithmetic comparison on bound integer variables; [Eq]/[Ne]
          also compare strings *)

type rule = { head : atom; body : literal list }

type program = { rules : rule list }

(** {1 Pretty printing} *)

val pp_const : Format.formatter -> const -> unit
val pp_term : Format.formatter -> term -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_expr : Format.formatter -> expr -> unit
val string_of_op : cmp_op -> string
val pp_literal : Format.formatter -> literal -> unit

val pp_rule : Format.formatter -> rule -> unit
(** Souffle-style concrete syntax; parses back via {!Parser}. *)

(** {1 Variable utilities} *)

val expr_vars : expr -> string list
val atom_vars : atom -> string list
val literal_vars : literal -> string list
val rule_vars : rule -> string list

(** {1 Construction DSL} *)

val v : string -> term
(** Variable. *)

val s : string -> term
(** String constant. *)

val i : int -> term
(** Integer constant. *)

val any : unit -> term
(** A fresh anonymous variable (Datalog's [_]). *)

val atom : string -> term list -> atom

val ( <-- ) : atom -> literal list -> rule
(** [head <-- body]. *)

val pos : atom -> literal
val neg : atom -> literal

val ev : string -> expr
val ec : const -> expr
val eint : int -> expr
val ( +! ) : expr -> expr -> expr
val ( -! ) : expr -> expr -> expr
val ( *! ) : expr -> expr -> expr
val ( <! ) : expr -> expr -> literal
val ( <=! ) : expr -> expr -> literal
val ( >! ) : expr -> expr -> literal
val ( >=! ) : expr -> expr -> literal
val ( =! ) : expr -> expr -> literal
val ( <>! ) : expr -> expr -> literal
