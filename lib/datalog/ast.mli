(** Abstract syntax for Datalog programs.

    XChainWatcher's cross-chain rules (paper Section 3.3) are Horn
    clauses over facts extracted from blockchain data: positive and
    negated atoms plus arithmetic comparison constraints
    ([bridge_evt_idx > token_evt_idx], [src_ts + finality <= dst_ts]).
    The combinator DSL at the bottom keeps OCaml rule definitions close
    to Datalog concrete syntax. *)

type const = Str of string | Int of int

(** {1 Interning and packed constants}

    The evaluation engine does not join over boxed [const] values: every
    constant is packed into one immutable int — even values are
    integers ([Int n] as [n lsl 1]), odd values are ids in the global
    string intern table ([Str s] as [(intern s lsl 1) lor 1]).
    Interning is canonical, so packed equality coincides with
    structural equality and tuples hash/compare as flat int arrays.

    Ids are assigned in first-intern order, append-only, and never
    reused or compacted for the lifetime of the process — an id decodes
    to the same string forever, which keeps interned databases stable
    across incremental polls and reorg rewinds.  Interning is expected
    on the orchestrating thread only (parse, rule construction, fact
    load, output); a mutex nevertheless serializes concurrent calls. *)

module Symtab : sig
  val intern : string -> int
  (** The id of [s], assigning the next fresh id on first sight. *)

  val to_string : int -> string
  (** Decode an id previously returned by {!intern}. *)

  val size : unit -> int
  (** Number of distinct strings interned so far. *)
end

type packed = int

val max_packed_int : int
(** Largest magnitude {!pack_int} accepts ([max_int asr 1]). *)

val pack : const -> packed
val unpack : packed -> const

val pack_int : int -> packed
(** Raises [Invalid_argument] outside [[-2{^61}+1, 2{^61}-1]]: one bit
    is the tag and [min_int] is reserved as the engine's unbound-slot
    sentinel. *)

val pack_string : string -> packed
val packed_is_int : packed -> bool

val packed_to_string : packed -> string
(** Decode straight to the string a TSV cell or report wants ([Int]
    via [string_of_int], [Str] verbatim). *)

type term = Var of string | Const of const

type atom = { pred : string; args : term list }

(** Arithmetic expressions allowed in comparison constraints. *)
type expr =
  | E_const of const
  | E_var of string
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr

type cmp_op = Lt | Le | Gt | Ge | Eq | Ne

type literal =
  | Pos of atom
  | Neg of atom  (** stratified negation *)
  | Cmp of cmp_op * expr * expr
      (** arithmetic comparison on bound integer variables; [Eq]/[Ne]
          also compare strings *)

type rule = { head : atom; body : literal list }

type program = { rules : rule list }

(** {1 Pretty printing} *)

val pp_const : Format.formatter -> const -> unit
val pp_term : Format.formatter -> term -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_expr : Format.formatter -> expr -> unit
val string_of_op : cmp_op -> string
val pp_literal : Format.formatter -> literal -> unit

val pp_rule : Format.formatter -> rule -> unit
(** Souffle-style concrete syntax; parses back via {!Parser}. *)

(** {1 Variable utilities} *)

val expr_vars : expr -> string list
val atom_vars : atom -> string list
val literal_vars : literal -> string list
val rule_vars : rule -> string list

(** {1 Construction DSL} *)

val v : string -> term
(** Variable. *)

val s : string -> term
(** String constant. *)

val i : int -> term
(** Integer constant. *)

val any : unit -> term
(** A fresh anonymous variable (Datalog's [_]). *)

val atom : string -> term list -> atom

val ( <-- ) : atom -> literal list -> rule
(** [head <-- body]. *)

val pos : atom -> literal
val neg : atom -> literal

val ev : string -> expr
val ec : const -> expr
val eint : int -> expr
val ( +! ) : expr -> expr -> expr
val ( -! ) : expr -> expr -> expr
val ( *! ) : expr -> expr -> expr
val ( <! ) : expr -> expr -> literal
val ( <=! ) : expr -> expr -> literal
val ( >! ) : expr -> expr -> literal
val ( >=! ) : expr -> expr -> literal
val ( =! ) : expr -> expr -> literal
val ( <>! ) : expr -> expr -> literal
