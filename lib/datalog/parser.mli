(** Parser for Datalog rules in Souffle-flavoured concrete syntax.

    Lets deployments load cross-chain rules from [.dl]-style text at
    runtime, as the original XChainWatcher does, instead of compiling
    them in.  The output of {!Ast.pp_rule} parses back to an
    alpha-equivalent rule.

    Syntax: [head(args) :- lit, !neg(args), x + 1800 <= y.] with
    [//], [#] and [/* */] comments; identifiers in argument position
    are variables; [_] is an anonymous variable; strings are
    double-quoted constants. *)

exception Parse_error of { line : int; col : int; message : string }

val parse_program : string -> Ast.rule list
(** Parse a sequence of rules and body-less facts. *)

val parse_rule : string -> Ast.rule
(** Parse exactly one rule. *)
