(** The boxed reference engine — the pre-interning sequential
    evaluation path, preserved as a differential oracle and bench
    baseline.

    {!Engine} packs every constant into an interned int ({!Ast.packed})
    and joins over [int array] tuples; this module keeps the previous
    representation — [Ast.const array] tuples, [const list] index keys,
    [const option array] environments — with the same semi-naive
    fixpoint algorithm.  Two consumers:

    - the qcheck differential suite ([test/test_interned.ml]) runs
      random programs through both engines and asserts identical
      relations, derived counts and dumped TSV bytes;
    - [bench/main.exe throughput] measures the interned engine's
      receipts/sec speedup against this baseline.

    Sequential-only and non-incremental by design: no domain pool, no
    journal, no retraction.  Stratification and safety checking are
    shared with {!Engine.stratify} / {!Engine.check_rule_safety} (they
    operate on the AST, before any representation choice), so an
    unsafe rule raises {!Engine.Unsafe_rule} from here too. *)

module Relation : sig
  type tuple = Ast.const array

  type t

  val create : unit -> t
  val size : t -> int
  val mem : t -> tuple -> bool

  val add : t -> tuple -> bool
  (** [add t tuple] inserts; returns [false] if already present.
      Raises [Invalid_argument] on arity mismatch. *)

  val iter : t -> (tuple -> unit) -> unit
  val to_list : t -> tuple list

  val ensure_index : t -> int list -> unit

  val lookup : t -> int list -> Ast.const list -> tuple list
  (** [lookup t positions key] returns tuples matching [key] at
      [positions]; [positions = []] scans the whole relation. *)
end

type db

val create_db : unit -> db

val insert_fact : db -> string -> Ast.const list -> bool
(** Returns [false] if the tuple was already present. *)

val add_fact : db -> string -> Ast.const list -> unit

val facts : db -> string -> Relation.tuple list
(** Sorted with polymorphic compare — the same contract as
    {!Engine.facts}, so the two engines' outputs compare directly. *)

val fact_count : db -> string -> int

val dump_facts : db -> dir:string -> unit
(** Byte-compatible with {!Engine.dump_facts}: one [<pred>.facts] TSV
    per relation, rows sorted lexicographically, cells escaped the
    same way. *)

val run : db -> Ast.program -> int
(** Evaluate all rules to fixpoint (stratified, semi-naive); returns
    the number of derived tuples.  Raises {!Engine.Unsafe_rule} /
    {!Engine.Not_stratifiable} as {!Engine.run} does. *)
