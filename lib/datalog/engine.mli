(** Datalog evaluation engine.

    Bottom-up, stratified evaluation with hash-indexed joins — the same
    strategy class as Souffle's interpreter, which the paper uses.
    Strata are the strongly connected components of the head-predicate
    dependency graph, evaluated in topological order; non-recursive
    strata run in a single pass and recursive ones iterate semi-naively
    to fixpoint.  Negation must be stratified.

    Unsupported (not needed by the cross-chain rules): aggregation,
    arithmetic in rule heads. *)

open Ast

exception Unsafe_rule of string
exception Not_stratifiable of string

module Relation : sig
  type tuple = const array
  type t

  val create : unit -> t
  val size : t -> int
  val mem : t -> tuple -> bool

  val add : t -> tuple -> bool
  (** [true] iff the tuple is new.  Raises [Invalid_argument] on arity
      mismatch with previous tuples. *)

  val iter : t -> (tuple -> unit) -> unit
  val to_list : t -> tuple list

  val lookup : t -> int list -> const list -> tuple list
  (** [lookup t positions key]: all tuples whose projection on
      [positions] equals [key], via an on-demand hash index.  Empty
      [positions] returns everything. *)
end

type db

val create_db : unit -> db

val relation : db -> string -> Relation.t
(** The named relation, created empty on first use. *)

val add_fact : db -> string -> const list -> unit
val facts : db -> string -> Relation.tuple list
val fact_count : db -> string -> int
val total_tuples : db -> int

val dump_facts : db -> dir:string -> unit
(** Write every relation as a tab-separated [<pred>.facts] file in
    [dir] — Souffle's input format, enabling cross-validation against
    the original Souffle-based artifact. *)

val stratify : rule list -> (rule list * bool) list
(** Rule groups in evaluation order; the flag marks recursive strata.
    Raises {!Not_stratifiable} on a negation cycle. *)

val check_rule_safety : rule -> unit
(** Raises {!Unsafe_rule} if head/negated/compared variables are not
    bound by positive body literals. *)

type stats = {
  mutable rules_evaluated : int;
  mutable iterations : int;
  mutable tuples_derived : int;
}

val recommended_gc_setup : unit -> unit
(** Idempotently enlarge the minor heap and relax the GC space/time
    trade-off.  Rule evaluation over hundreds of thousands of tuples is
    allocation-bound; this roughly halves wall time at the paper's full
    scale.  Called automatically by [Xcw_core.Detector.run] and the
    monitor. *)

val run : ?naive:bool -> db -> program -> stats
(** Evaluate all rules to fixpoint, adding derived tuples to [db] in
    place.  [naive] disables semi-naive deltas in recursive strata
    (used by the ablation bench). *)
