(** Datalog evaluation engine.

    Bottom-up, stratified evaluation with hash-indexed joins — the same
    strategy class as Souffle's interpreter, which the paper uses.
    Strata are the strongly connected components of the head-predicate
    dependency graph, evaluated in topological order; non-recursive
    strata run in a single pass and recursive ones iterate semi-naively
    to fixpoint.  Negation must be stratified.

    Aggregation is supported in the one stratified form the
    pessimistic-accounting rules need: declared {!aggregate}s
    materialize grouped integer sums over EDB relations into derived
    predicates before any rule stratum runs (see {!run}).  Unsupported
    (not needed by the cross-chain rules): aggregation over rule
    output, arithmetic in rule heads. *)

open Ast

exception Unsafe_rule of string
exception Not_stratifiable of string

module Relation : sig
  type tuple = int array
  (** A tuple of {!Ast.packed} constants — every cell interned/packed
      at load time, so joins, hashing and equality never touch a
      string.  Decode cells with {!Ast.unpack} /
      {!Ast.packed_to_string}. *)

  type t

  val create : unit -> t
  val size : t -> int
  val mem : t -> tuple -> bool

  val add : t -> tuple -> bool
  (** [true] iff the tuple is new.  Raises [Invalid_argument] on arity
      mismatch with previous tuples.  The tuple array is owned by the
      relation afterwards — do not mutate it. *)

  val iter : t -> (tuple -> unit) -> unit
  val to_list : t -> tuple list

  val clear : t -> unit
  (** Remove every tuple, preserving the arity and the registered index
      position-lists so indices are maintained incrementally by later
      [add]s instead of being rebuilt — the retraction primitive behind
      {!run_incremental}. *)

  val lookup : t -> int list -> int array -> tuple list
  (** [lookup t positions key]: all tuples whose projection on
      [positions] equals [key] (packed constants, one per position),
      via an on-demand hash index.  Empty [positions] returns
      everything. *)

  val ensure_index : t -> int list -> unit
  (** Build the hash index for [positions] if absent, without looking
      anything up.  Parallel evaluation pre-builds every index a
      stratum can need so worker domains share the relation strictly
      read-only. *)

  val nshards : int
  (** Number of hash shards per index (a structural constant — never a
      function of the worker count). *)

  val shard_of_key : int array -> int
  (** The shard a projected key lands in: a multiply–xor–shift mix of
      the packed cells, masked to [nshards].  Exposed so tests can pin
      the distribution quality on interned keys (packed ints are far
      from uniform in their low bits). *)
end

type db
(** A fact database, designed to persist across evaluation runs: EDB
    relations and their hash indices are kept, facts inserted since the
    last run are journaled as the next incremental delta, and the set
    of engine-derived predicates is tracked for retraction. *)

val create_db : unit -> db

val relation : db -> string -> Relation.t
(** The named relation, created empty on first use. *)

val add_fact : db -> string -> const list -> unit

val insert_fact : db -> string -> const list -> bool
(** Like {!add_fact} but returns [true] iff the fact was not already
    present — the building block for fresh-tuple deltas.  Constants are
    packed (strings interned) on the way in. *)

val insert_packed : db -> string -> Relation.tuple -> bool
(** {!insert_fact} for an already-packed tuple — the fact-loading hot
    path, no [const] boxing.  The array is owned by the database
    afterwards; do not mutate it. *)

val facts : db -> string -> const array list
(** The relation's tuples, decoded and {e sorted}: every output-facing
    consumer (dissection rows, alert streams, exports) reads facts
    through here, and sorting makes their order a function of the fact
    set rather than of hash-table traversal — which the interning
    scheme would otherwise tie to load order. *)

val packed_facts : db -> string -> Relation.tuple list
(** The raw packed tuples, in unspecified (hash traversal) order — for
    hot paths that only count, aggregate or re-pack. *)

val fact_count : db -> string -> int
val total_tuples : db -> int

val derived_predicates : db -> string list
(** Predicates populated by the engine in previous runs (sorted); all
    other relations are EDB and are never cleared by evaluation. *)

val restore_fixpoint : db -> derived:(string * Relation.tuple list) list -> unit
(** Declare a database reloaded from durable storage to be at an
    evaluation fixpoint: insert each [(pred, tuples)] pair as
    engine-derived output (tuple arrays are owned by the database
    afterwards), clear the pending delta journal — every fact loaded so
    far becomes part of the restored fixpoint rather than of the next
    incremental delta — and mark the database as evaluated.  Facts
    inserted after this call are journaled normally, so the next
    {!run_incremental} evaluates exactly the post-restore delta instead
    of re-deriving the whole database.  The fixpoint claim is the
    caller's to uphold: the tuples must be the complete derived output
    of the same program over the loaded EDB. *)

val dump_facts : db -> dir:string -> unit
(** Write every relation as a tab-separated [<pred>.facts] file in
    [dir] — Souffle's input format, enabling cross-validation against
    the original Souffle-based artifact.  [dir] and missing parents are
    created; tab, newline and backslash characters inside string values
    are backslash-escaped so one tuple is always exactly one line.
    Rows are sorted lexicographically, making the files byte-stable
    across insertion orders and worker counts.  Each file is written to
    a [.tmp] sibling and atomically renamed into place, so readers
    never observe a partially written dump. *)

val stratify : rule list -> (rule list * bool) list
(** Rule groups in evaluation order; the flag marks recursive strata.
    Raises {!Not_stratifiable} on a negation cycle. *)

val check_rule_safety : rule -> unit
(** Raises {!Unsafe_rule} if head/negated/compared variables are not
    bound by positive body literals. *)

type stats = {
  mutable rules_evaluated : int;
  mutable iterations : int;
  mutable tuples_derived : int;
}

type aggregate = {
  agg_pred : string;  (** derived head: [(group cells..., sum)] *)
  agg_source : string;  (** EDB relation the sum ranges over *)
  agg_group_by : int list;  (** source tuple positions forming the key *)
  agg_sum : int;  (** source tuple position summed (must hold ints) *)
}
(** A stratified aggregate: for every distinct projection of
    [agg_source] tuples onto [agg_group_by], derive one [agg_pred]
    tuple holding the group key followed by the integer sum of the
    [agg_sum] cells.  Sources must be EDB — neither a rule head nor
    another aggregate's head — so aggregation is computed once before
    the rule strata and the rules may join or negate the aggregate
    head exactly like any EDB relation.  [run]/[run_incremental] raise
    [Invalid_argument] on declarations violating this, on non-int sum
    cells, or on positions beyond the source arity.  Groups are emitted
    in ascending key order by a sequential pass, so the derived
    relation is bit-identical at any [ndomains] and across the
    scratch/incremental paths. *)

val recommended_gc_setup : unit -> unit
(** Idempotently enlarge the minor heap and relax the GC space/time
    trade-off.  Rule evaluation over hundreds of thousands of tuples is
    allocation-bound; this roughly halves wall time at the paper's full
    scale.  Called automatically by [Xcw_core.Detector.run] and the
    monitor. *)

val run :
  ?naive:bool ->
  ?metrics:Xcw_obs.Metrics.t ->
  ?ndomains:int ->
  ?pool:Xcw_par.Pool.t ->
  ?aggregates:aggregate list ->
  db ->
  program ->
  stats
(** Evaluate all rules to fixpoint, adding derived tuples to [db] in
    place.  [naive] disables semi-naive deltas in recursive strata
    (used by the ablation bench).  [aggregates] (default none) are
    recomputed from their EDB sources before the first stratum.

    [ndomains] (default 1) evaluates each stratum's rules on a shared
    {!Xcw_par.Pool} of that many domains: every (rule, delta) job's
    driving literal is split into contiguous candidate chunks, workers
    join against the shared read-only indices (pre-built before
    fan-out), and chunk derivations are merged in submission order.
    With [ndomains = 1] no domain is spawned and the sequential code
    path runs untouched.  For non-recursive strata — the whole shipped
    cross-chain program — the parallel evaluation reproduces the
    sequential derivation, insertion order included, bit-for-bit at any
    worker count; recursive strata synchronize per semi-naive round and
    reach the identical tuple sets and derived-tuple counts, though
    relation iteration order (and [iterations]) may differ from
    sequential.  Raises [Invalid_argument] if [ndomains < 1].

    [pool] overrides [ndomains] with an explicit pool to evaluate on —
    a pool shared with other subsystems, or a
    {!Xcw_par.Pool.sequential} modeling pool that partitions as its
    declared domain count but executes inline (how the parallel bench
    obtains clean per-task times on hosts with fewer cores than
    domains).  A 1-domain [pool] falls back to the sequential path.

    Evaluation records into [metrics] (default: the process-wide
    registry): per-rule wall time in the [xcw_datalog_rule_seconds]
    histogram (labelled [rule="NN:pred"], [NN] the rule's position in
    the program), per-stratum time in [xcw_datalog_stratum_seconds],
    and [xcw_datalog_tuples_derived_total].  Parallel runs additionally
    record [xcw_datalog_parallel_tasks_total], the per-stratum
    [xcw_datalog_parallel_fanout] gauge, and the pool's own
    [xcw_par_*] series.  Each stratum also opens a ["datalog.stratum"]
    span on the default tracer.  With a disabled registry no timing
    calls are made at all. *)

val run_incremental :
  ?metrics:Xcw_obs.Metrics.t ->
  ?ndomains:int ->
  ?pool:Xcw_par.Pool.t ->
  ?aggregates:aggregate list ->
  db ->
  program ->
  stats
(** Bring a previously evaluated [db] up to date after fact
    insertions, treating the tuples added since the last run as the
    initial semi-naive delta.  [aggregates] must match the set the
    database was first evaluated with (like [program]); an aggregate
    whose source gained journaled tuples is recomputed in place first,
    its diff feeding the strata as insertions or retractions.  Strata whose inputs did not change are
    skipped entirely; strata that depend on changed predicates only
    positively run insertion-only semi-naive evaluation; strata that
    negate a changed predicate (the non-monotonic anomaly relations)
    are cleared and re-derived over the current database.  EDB
    relations and their hash indices are preserved throughout.  The
    program must be the same across calls on a given [db]; the first
    call behaves as {!run}.  Steady-state cost is proportional to the
    delta and the affected strata, not to the database size.
    [ndomains] (and the [pool] override) parallelizes the semi-naive
    and recompute passes exactly as in {!run}, with the same
    determinism guarantees.

    Beyond the {!run} instruments, incremental runs record the
    journaled delta size ([xcw_datalog_delta_tuples]), how each stratum
    was handled ([xcw_datalog_strata_skipped_total] /
    [_seminaive_total] / [_recomputed_total]) and how many previously
    derived tuples the retraction path withdrew
    ([xcw_datalog_retractions_total]). *)
