(** Abstract syntax for Datalog programs.

    XChainWatcher's cross-chain rules (Section 3.3 of the paper) are
    Horn clauses over facts extracted from blockchain data, evaluated by
    Souffle in the original system.  This module defines the same
    language: positive/negated atoms plus arithmetic comparison
    constraints ([bridge_evt_idx > token_evt_idx],
    [src_ts + finality <= dst_ts]).

    Rules are built with the small combinator DSL at the bottom, which
    keeps OCaml rule definitions close to the paper's Datalog syntax. *)

type const =
  | Str of string
  | Int of int

(* ------------------------------------------------------------------ *)
(* Global symbol table and packed constants                            *)

(** The global string intern table.  Ids are assigned in first-intern
    order and are never reused or compacted, so an id obtained at any
    point in the process stays valid (and decodes to the same string)
    forever — the property the incremental monitor relies on across
    polls and reorg rewinds.  Interning happens on the orchestrating
    thread (parsing, rule construction, fact loading, output decoding);
    worker domains only ever read already-assigned ids.  The mutex
    still serializes concurrent [intern] calls so an accidental
    multi-threaded load cannot corrupt the table. *)
module Symtab = struct
  let lock = Mutex.create ()
  let ids : (string, int) Hashtbl.t = Hashtbl.create 4096
  let names = ref (Array.make 4096 "")
  let count = ref 0

  let intern s =
    Mutex.lock lock;
    let id =
      match Hashtbl.find_opt ids s with
      | Some id -> id
      | None ->
          let id = !count in
          if id = Array.length !names then begin
            let bigger = Array.make (2 * id) "" in
            Array.blit !names 0 bigger 0 id;
            names := bigger
          end;
          !names.(id) <- s;
          Hashtbl.replace ids s id;
          count := id + 1;
          id
    in
    Mutex.unlock lock;
    id

  let to_string id = !names.(id)
  let size () = !count
end

type packed = int
(** A constant packed into one immutable int: even values are integers
    ([Int n] as [n lsl 1]), odd values are interned strings
    ([Str s] as [(intern s lsl 1) lor 1]).  Interning is canonical, so
    packed equality coincides with structural constant equality — the
    engine joins, hashes and compares tuples on naked ints.  [min_int]
    is reserved as the engine's unbound-slot sentinel and is never a
    valid packed constant. *)

let max_packed_int = max_int asr 1

let pack_int n : packed =
  if n > max_packed_int || n < -max_packed_int then
    invalid_arg
      (Printf.sprintf "Ast.pack_int: %d outside the packed range" n)
  else n lsl 1

let pack_string s : packed = (Symtab.intern s lsl 1) lor 1

let pack : const -> packed = function
  | Int n -> pack_int n
  | Str s -> pack_string s

let packed_is_int (p : packed) = p land 1 = 0

let unpack (p : packed) : const =
  if p land 1 = 0 then Int (p asr 1) else Str (Symtab.to_string (p asr 1))

(** Decode straight to the string a TSV cell or report wants, skipping
    the [const] box. *)
let packed_to_string (p : packed) =
  if p land 1 = 0 then string_of_int (p asr 1) else Symtab.to_string (p asr 1)

type term =
  | Var of string
  | Const of const

type atom = { pred : string; args : term list }

(** Arithmetic expressions allowed in comparison constraints. *)
type expr =
  | E_const of const
  | E_var of string
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr

type cmp_op = Lt | Le | Gt | Ge | Eq | Ne

type literal =
  | Pos of atom
  | Neg of atom  (** stratified negation *)
  | Cmp of cmp_op * expr * expr

type rule = { head : atom; body : literal list }

(** A program: a set of rules plus declared extensional (input) and
    intensional (derived) predicates with their arities. *)
type program = {
  rules : rule list;
}

(* ------------------------------------------------------------------ *)
(* Pretty printing (for reports and debugging)                         *)

let pp_const fmt = function
  | Str s -> Format.fprintf fmt "%S" s
  | Int i -> Format.pp_print_int fmt i

let pp_term fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Const c -> pp_const fmt c

let pp_atom fmt a =
  Format.fprintf fmt "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ", ")
       pp_term)
    a.args

let rec pp_expr fmt = function
  | E_const c -> pp_const fmt c
  | E_var v -> Format.pp_print_string fmt v
  | E_add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | E_sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | E_mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_expr a pp_expr b

let string_of_op = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "!="

let pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg a -> Format.fprintf fmt "!%a" pp_atom a
  | Cmp (op, a, b) ->
      Format.fprintf fmt "%a %s %a" pp_expr a (string_of_op op) pp_expr b

let pp_rule fmt r =
  Format.fprintf fmt "@[<hov 2>%a :-@ %a.@]" pp_atom r.head
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
       pp_literal)
    r.body

(* ------------------------------------------------------------------ *)
(* Variable utilities                                                  *)

let rec expr_vars = function
  | E_const _ -> []
  | E_var v -> [ v ]
  | E_add (a, b) | E_sub (a, b) | E_mul (a, b) -> expr_vars a @ expr_vars b

let atom_vars a =
  List.filter_map (function Var v -> Some v | Const _ -> None) a.args

let literal_vars = function
  | Pos a | Neg a -> atom_vars a
  | Cmp (_, a, b) -> expr_vars a @ expr_vars b

let rule_vars r =
  List.sort_uniq compare (atom_vars r.head @ List.concat_map literal_vars r.body)

(* ------------------------------------------------------------------ *)
(* Construction DSL                                                    *)

(** [v "x"] is the variable [x]. *)
let v name = Var name

(** [s "abc"] is the string constant ["abc"], interned eagerly so rule
    constants get their symbol ids at program-construction time. *)
let s value =
  ignore (Symtab.intern value);
  Const (Str value)

(** [i 42] is the integer constant [42]. *)
let i value = Const (Int value)

(** Anonymous variables: each call yields a fresh unique variable, the
    Datalog ["_"]. *)
let wildcard_counter = ref 0

let any () =
  incr wildcard_counter;
  Var (Printf.sprintf "_w%d" !wildcard_counter)

(** [atom "p" [v "x"; i 1]] is the atom [p(x, 1)]. *)
let atom pred args = { pred; args }

let ( <-- ) head body = { head; body }

let pos a = Pos a
let neg a = Neg a

let ev name = E_var name
let ec c = E_const c
let eint n = E_const (Int n)
let ( +! ) a b = E_add (a, b)
let ( -! ) a b = E_sub (a, b)
let ( *! ) a b = E_mul (a, b)
let ( <! ) a b = Cmp (Lt, a, b)
let ( <=! ) a b = Cmp (Le, a, b)
let ( >! ) a b = Cmp (Gt, a, b)
let ( >=! ) a b = Cmp (Ge, a, b)
let ( =! ) a b = Cmp (Eq, a, b)
let ( <>! ) a b = Cmp (Ne, a, b)
