(** A parser for Datalog rules in Souffle-flavoured concrete syntax.

    The original XChainWatcher ships its cross-chain rules as [.dl]
    files consumed by Souffle; this parser lets deployments of this
    library do the same — rules can be loaded from text at runtime
    instead of being compiled in, which is how operators are expected
    to fine-tune rules per bridge (paper Section 3.3).

    Grammar (per rule, terminated by [.]):

    {v
    rule    ::= atom [ ":-" body ] "."
    body    ::= literal { "," literal }
    literal ::= atom | "!" atom | expr cmp expr
    atom    ::= ident "(" term { "," term } ")"
    term    ::= ident | "_" | int | string
    expr    ::= prod { ("+" | "-") prod }
    prod    ::= prim { "*" prim }
    prim    ::= ident | int | string | "(" expr ")"
    cmp     ::= "<" | "<=" | ">" | ">=" | "=" | "!="
    v}

    Identifiers in argument position are variables; a lone [_] is an
    anonymous variable.  Line comments start with [//] or [#];
    block comments are [/* ... */].  The output of {!Ast.pp_rule} parses
    back to an alpha-equivalent rule. *)

exception Parse_error of { line : int; col : int; message : string }

let error ~line ~col message = raise (Parse_error { line; col; message })

(* ------------------------------------------------------------------ *)
(* Tokens                                                              *)

type token =
  | T_ident of string
  | T_int of int
  | T_string of string
  | T_lparen
  | T_rparen
  | T_comma
  | T_dot
  | T_turnstile (* :- *)
  | T_bang
  | T_underscore
  | T_plus
  | T_minus
  | T_star
  | T_lt
  | T_le
  | T_gt
  | T_ge
  | T_eq
  | T_ne
  | T_colon

type positioned = { tok : token; t_line : int; t_col : int }

let tokenize (src : string) : positioned list =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let push tok t_line t_col = tokens := { tok; t_line; t_col } :: !tokens in
  let advance () =
    (if !i < n && src.[!i] = '\n' then begin
       incr line;
       col := 0
     end);
    incr i;
    incr col
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    match c with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '/' when peek 1 = Some '/' ->
        while !i < n && src.[!i] <> '\n' do advance () done
    | '#' -> while !i < n && src.[!i] <> '\n' do advance () done
    | '/' when peek 1 = Some '*' ->
        advance (); advance ();
        let closed = ref false in
        while (not !closed) && !i < n do
          if src.[!i] = '*' && peek 1 = Some '/' then begin
            advance (); advance ();
            closed := true
          end
          else advance ()
        done;
        if not !closed then error ~line:l0 ~col:c0 "unterminated block comment"
    | '(' -> push T_lparen l0 c0; advance ()
    | ')' -> push T_rparen l0 c0; advance ()
    | ',' -> push T_comma l0 c0; advance ()
    | '.' -> push T_dot l0 c0; advance ()
    | '+' -> push T_plus l0 c0; advance ()
    | '-' -> push T_minus l0 c0; advance ()
    | '*' -> push T_star l0 c0; advance ()
    | ':' ->
        if peek 1 = Some '-' then begin
          push T_turnstile l0 c0; advance (); advance ()
        end
        else begin
          push T_colon l0 c0; advance ()
        end
    | '!' ->
        if peek 1 = Some '=' then begin
          push T_ne l0 c0; advance (); advance ()
        end
        else begin
          push T_bang l0 c0; advance ()
        end
    | '<' ->
        if peek 1 = Some '=' then begin
          push T_le l0 c0; advance (); advance ()
        end
        else begin
          push T_lt l0 c0; advance ()
        end
    | '>' ->
        if peek 1 = Some '=' then begin
          push T_ge l0 c0; advance (); advance ()
        end
        else begin
          push T_gt l0 c0; advance ()
        end
    | '=' -> push T_eq l0 c0; advance ()
    | '"' ->
        advance ();
        let buf = Buffer.create 16 in
        let closed = ref false in
        while (not !closed) && !i < n do
          match src.[!i] with
          | '"' ->
              advance ();
              closed := true
          | '\\' ->
              advance ();
              if !i < n then begin
                (match src.[!i] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | 'r' -> Buffer.add_char buf '\r'
                | c -> Buffer.add_char buf c);
                advance ()
              end
          | c ->
              Buffer.add_char buf c;
              advance ()
        done;
        if not !closed then error ~line:l0 ~col:c0 "unterminated string";
        push (T_string (Buffer.contents buf)) l0 c0
    | '0' .. '9' ->
        let start = !i in
        while
          (match peek 0 with Some ('0' .. '9') -> true | _ -> false)
        do advance () done;
        push (T_int (int_of_string (String.sub src start (!i - start)))) l0 c0
    | ('a' .. 'z' | 'A' .. 'Z' | '_') ->
        let start = !i in
        while
          (match peek 0 with
          | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') -> true
          | _ -> false)
        do advance () done;
        let s = String.sub src start (!i - start) in
        if s = "_" then push T_underscore l0 c0 else push (T_ident s) l0 c0
    | c -> error ~line:l0 ~col:c0 (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser                                            *)

type state = { mutable toks : positioned list }

let peek_tok st = match st.toks with [] -> None | p :: _ -> Some p

let next_tok st =
  match st.toks with
  | [] -> error ~line:0 ~col:0 "unexpected end of input"
  | p :: rest ->
      st.toks <- rest;
      p

let expect st tok what =
  let p = next_tok st in
  if p.tok <> tok then error ~line:p.t_line ~col:p.t_col ("expected " ^ what)

let fresh_wildcard =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "_p%d" !counter

let parse_term st : Ast.term =
  let p = next_tok st in
  match p.tok with
  | T_ident name -> Ast.Var name
  | T_underscore -> Ast.Var (fresh_wildcard ())
  | T_int n -> Ast.Const (Ast.Int n)
  | T_minus -> (
      let q = next_tok st in
      match q.tok with
      | T_int n -> Ast.Const (Ast.Int (-n))
      | _ -> error ~line:q.t_line ~col:q.t_col "expected integer after '-'")
  | T_string s ->
      (* Intern at parse time: rule constants get their symbol ids the
         moment the program text is read, before any fact load. *)
      ignore (Ast.Symtab.intern s);
      Ast.Const (Ast.Str s)
  | _ -> error ~line:p.t_line ~col:p.t_col "expected term"

let parse_atom_args st name : Ast.atom =
  expect st T_lparen "'('";
  let args = ref [ parse_term st ] in
  let rec loop () =
    match peek_tok st with
    | Some { tok = T_comma; _ } ->
        ignore (next_tok st);
        args := parse_term st :: !args;
        loop ()
    | _ -> ()
  in
  loop ();
  expect st T_rparen "')'";
  Ast.atom name (List.rev !args)

(* Expressions for comparison constraints. *)
let rec parse_expr st : Ast.expr =
  let lhs = parse_prod st in
  match peek_tok st with
  | Some { tok = T_plus; _ } ->
      ignore (next_tok st);
      Ast.E_add (lhs, parse_expr st)
  | Some { tok = T_minus; _ } ->
      ignore (next_tok st);
      Ast.E_sub (lhs, parse_expr st)
  | _ -> lhs

and parse_prod st : Ast.expr =
  let lhs = parse_prim st in
  match peek_tok st with
  | Some { tok = T_star; _ } ->
      ignore (next_tok st);
      Ast.E_mul (lhs, parse_prod st)
  | _ -> lhs

and parse_prim st : Ast.expr =
  let p = next_tok st in
  match p.tok with
  | T_ident name -> Ast.E_var name
  | T_int n -> Ast.E_const (Ast.Int n)
  | T_minus -> (
      let q = next_tok st in
      match q.tok with
      | T_int n -> Ast.E_const (Ast.Int (-n))
      | _ -> error ~line:q.t_line ~col:q.t_col "expected integer after '-'")
  | T_string s ->
      ignore (Ast.Symtab.intern s);
      Ast.E_const (Ast.Str s)
  | T_lparen ->
      let e = parse_expr st in
      expect st T_rparen "')'";
      e
  | _ -> error ~line:p.t_line ~col:p.t_col "expected expression"

let cmp_of_token = function
  | T_lt -> Some Ast.Lt
  | T_le -> Some Ast.Le
  | T_gt -> Some Ast.Gt
  | T_ge -> Some Ast.Ge
  | T_eq -> Some Ast.Eq
  | T_ne -> Some Ast.Ne
  | _ -> None

let parse_literal st : Ast.literal =
  match peek_tok st with
  | Some { tok = T_bang; _ } ->
      ignore (next_tok st);
      let p = next_tok st in
      (match p.tok with
      | T_ident name -> Ast.Neg (parse_atom_args st name)
      | _ -> error ~line:p.t_line ~col:p.t_col "expected atom after '!'")
  | Some { tok = T_ident name; _ } -> (
      (* Could be an atom [name(...)] or a comparison starting with a
         variable [name < ...]. *)
      ignore (next_tok st);
      match peek_tok st with
      | Some { tok = T_lparen; _ } -> Ast.Pos (parse_atom_args st name)
      | _ -> (
          (* Re-parse as an expression with [name] as its leftmost
             variable. *)
          let lhs =
            let base = Ast.E_var name in
            let rec extend acc =
              match peek_tok st with
              | Some { tok = T_plus; _ } ->
                  ignore (next_tok st);
                  extend (Ast.E_add (acc, parse_prod st))
              | Some { tok = T_minus; _ } ->
                  ignore (next_tok st);
                  extend (Ast.E_sub (acc, parse_prod st))
              | Some { tok = T_star; _ } ->
                  ignore (next_tok st);
                  extend (Ast.E_mul (acc, parse_prod st))
              | _ -> acc
            in
            extend base
          in
          let p = next_tok st in
          match cmp_of_token p.tok with
          | Some op -> Ast.Cmp (op, lhs, parse_expr st)
          | None ->
              error ~line:p.t_line ~col:p.t_col "expected comparison operator"))
  | Some _ -> (
      (* A comparison starting with a constant or parenthesis. *)
      let lhs = parse_expr st in
      let p = next_tok st in
      match cmp_of_token p.tok with
      | Some op -> Ast.Cmp (op, lhs, parse_expr st)
      | None -> error ~line:p.t_line ~col:p.t_col "expected comparison operator")
  | None -> error ~line:0 ~col:0 "unexpected end of input in body"

let parse_rule_tokens st : Ast.rule =
  let p = next_tok st in
  let head =
    match p.tok with
    | T_ident name -> parse_atom_args st name
    | _ -> error ~line:p.t_line ~col:p.t_col "expected rule head"
  in
  match peek_tok st with
  | Some { tok = T_dot; _ } ->
      ignore (next_tok st);
      { Ast.head; body = [] }
  | Some { tok = T_turnstile; _ } ->
      ignore (next_tok st);
      let body = ref [ parse_literal st ] in
      let rec loop () =
        match peek_tok st with
        | Some { tok = T_comma; _ } ->
            ignore (next_tok st);
            body := parse_literal st :: !body;
            loop ()
        | _ -> ()
      in
      loop ();
      expect st T_dot "'.'";
      { Ast.head; body = List.rev !body }
  | Some p -> error ~line:p.t_line ~col:p.t_col "expected ':-' or '.'"
  | None -> error ~line:0 ~col:0 "unexpected end of input"

(* Souffle directives (.decl/.input/.output) are accepted and skipped:
   declarations carry type information this engine infers from the
   data, and I/O directives are handled by the host program. *)
let skip_directive st =
  (* Consume ". ident" then, if an argument list follows, through its
     closing parenthesis. *)
  ignore (next_tok st) (* the dot *);
  let p = next_tok st in
  (match p.tok with
  | T_ident ("decl" | "input" | "output") -> ()
  | _ -> error ~line:p.t_line ~col:p.t_col "unknown directive");
  (* relation name *)
  let q = next_tok st in
  (match q.tok with
  | T_ident _ -> ()
  | _ -> error ~line:q.t_line ~col:q.t_col "expected relation name");
  match peek_tok st with
  | Some { tok = T_lparen; _ } ->
      let depth = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let p = next_tok st in
        (match p.tok with
        | T_lparen -> incr depth
        | T_rparen -> decr depth
        | _ -> ());
        if !depth = 0 then continue_ := false
      done
  | _ -> ()

(** Parse a whole program: a sequence of rules and body-less facts;
    Souffle [.decl]/[.input]/[.output] directives are skipped. *)
let parse_program (src : string) : Ast.rule list =
  let st = { toks = tokenize src } in
  let rules = ref [] in
  while st.toks <> [] do
    match st.toks with
    | { tok = T_dot; _ } :: { tok = T_ident ("decl" | "input" | "output"); _ } :: _ ->
        skip_directive st
    | _ -> rules := parse_rule_tokens st :: !rules
  done;
  List.rev !rules

(** Parse a single rule. *)
let parse_rule (src : string) : Ast.rule =
  match parse_program src with
  | [ r ] -> r
  | rs ->
      error ~line:0 ~col:0
        (Printf.sprintf "expected exactly one rule, found %d" (List.length rs))
