(** The boxed reference engine — the pre-interning evaluation path,
    kept as a faithful sequential replica.

    {!Engine} joins over tuples of packed ints (see {!Ast.packed});
    this module preserves the previous representation — [const array]
    tuples, [const list] index keys, [const option array] environments,
    per-probe bound-position scans — exactly as the engine evaluated
    before the interning change.  Two consumers keep it alive:

    - the qcheck differential suite runs random programs through both
      engines and requires identical relations, derived counts and
      dumped TSV bytes — the strongest regression net the interned
      representation can have;
    - the throughput bench uses it as the baseline the interned
      engine's receipts/sec speedup is measured against, keeping the
      comparison honest (same algorithm, same index structure, only the
      tuple representation differs).

    Deliberately sequential-only and non-incremental: no domain pool,
    no journal, no retraction.  Stratification and safety checking are
    shared with {!Engine} — they operate on the AST, before any
    representation choice. *)

open Ast

module Relation = struct
  type tuple = const array
  type index = (const list, tuple list ref) Hashtbl.t array

  type t = {
    mutable arity : int option;
    tuples : (tuple, unit) Hashtbl.t;
    indices : (int list, index) Hashtbl.t;
  }

  let nshards = 16

  (* The historical shard hash: samples characters of string constants
     and uses int constants raw.  Adequate for boxed keys; kept
     verbatim so the baseline's join behaviour is the old engine's. *)
  let shard_of_const = function
    | Int i -> i
    | Str s ->
        let n = String.length s in
        if n = 0 then 0
        else
          n
          + (31 * Char.code (String.unsafe_get s (n - 1)))
          + Char.code (String.unsafe_get s (n / 2))

  let shard_of key =
    match key with
    | [] -> 0
    | [ c ] -> shard_of_const c land (nshards - 1)
    | c1 :: c2 :: _ ->
        (shard_of_const c1 + (131 * shard_of_const c2)) land (nshards - 1)

  let create () =
    { arity = None; tuples = Hashtbl.create 256; indices = Hashtbl.create 4 }

  let size t = Hashtbl.length t.tuples
  let mem t tuple = Hashtbl.mem t.tuples tuple

  let check_arity t tuple =
    match t.arity with
    | None -> t.arity <- Some (Array.length tuple)
    | Some a ->
        if a <> Array.length tuple then
          invalid_arg
            (Printf.sprintf "Boxed.Relation: arity mismatch (%d vs %d)" a
               (Array.length tuple))

  let index_insert (idx : index) positions tuple =
    let key = List.map (fun p -> tuple.(p)) positions in
    let tbl = idx.(shard_of key) in
    match Hashtbl.find_opt tbl key with
    | Some l -> l := tuple :: !l
    | None -> Hashtbl.replace tbl key (ref [ tuple ])

  let add t tuple =
    check_arity t tuple;
    if Hashtbl.mem t.tuples tuple then false
    else begin
      Hashtbl.replace t.tuples tuple ();
      Hashtbl.iter
        (fun positions idx -> index_insert idx positions tuple)
        t.indices;
      true
    end

  let iter t f = Hashtbl.iter (fun tuple () -> f tuple) t.tuples
  let to_list t = Hashtbl.fold (fun tuple () acc -> tuple :: acc) t.tuples []

  let ensure_index t positions =
    match positions with
    | [] -> ()
    | _ ->
        if not (Hashtbl.mem t.indices positions) then begin
          let idx =
            Array.init nshards (fun _ ->
                Hashtbl.create (max 16 (size t / nshards)))
          in
          iter t (fun tuple -> index_insert idx positions tuple);
          Hashtbl.replace t.indices positions idx
        end

  let lookup t positions key =
    match positions with
    | [] -> to_list t
    | _ -> (
        ensure_index t positions;
        let idx = Hashtbl.find t.indices positions in
        match Hashtbl.find_opt idx.(shard_of key) key with
        | Some l -> !l
        | None -> [])
end

type db = { db_rels : (string, Relation.t) Hashtbl.t }

let create_db () : db = { db_rels = Hashtbl.create 64 }

let relation (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> r
  | None ->
      let r = Relation.create () in
      Hashtbl.replace db.db_rels pred r;
      r

let insert_fact (db : db) pred tuple =
  Relation.add (relation db pred) (Array.of_list tuple)

let add_fact (db : db) pred tuple = ignore (insert_fact db pred tuple)

(* Same contract as {!Engine.facts}: decoded (here: already boxed) and
   sorted, so the two engines' outputs compare directly. *)
let facts (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> List.sort compare (Relation.to_list r)
  | None -> []

let fact_count (db : db) pred =
  match Hashtbl.find_opt db.db_rels pred with
  | Some r -> Relation.size r
  | None -> 0

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let escape_cell s =
  let needs_escape = ref false in
  String.iter
    (function '\t' | '\n' | '\r' | '\\' -> needs_escape := true | _ -> ())
    s;
  if not !needs_escape then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (function
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

(* Byte-compatible with {!Engine.dump_facts}: same escaping, same
   lexicographic row sort — the differential suite diffs the files. *)
let dump_facts (db : db) ~dir =
  mkdir_p dir;
  Hashtbl.iter
    (fun pred rel ->
      let oc = open_out (Filename.concat dir (pred ^ ".facts")) in
      let lines = ref [] in
      Relation.iter rel (fun tuple ->
          let cells =
            Array.to_list tuple
            |> List.map (function
                 | Str s -> escape_cell s
                 | Int n -> string_of_int n)
          in
          lines := String.concat "\t" cells :: !lines);
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (List.sort compare !lines);
      close_out oc)
    db.db_rels

(* ------------------------------------------------------------------ *)
(* Rule evaluation — the boxed compiled representation                  *)

type slot_term = S_const of const | S_var of int
type compiled_atom = { c_pred : string; c_args : slot_term array }

type compiled_expr =
  | CE_const of const
  | CE_var of int
  | CE_add of compiled_expr * compiled_expr
  | CE_sub of compiled_expr * compiled_expr
  | CE_mul of compiled_expr * compiled_expr

type compiled_literal =
  | C_pos of compiled_atom
  | C_neg of compiled_atom
  | C_cmp of cmp_op * compiled_expr * compiled_expr

type compiled_rule = {
  cr_nvars : int;
  cr_head : compiled_atom;
  cr_body : compiled_literal array;
}

let compile_rule (r : rule) : compiled_rule =
  let slots = Hashtbl.create 16 in
  let nvars = ref 0 in
  let slot_of v =
    match Hashtbl.find_opt slots v with
    | Some i -> i
    | None ->
        let i = !nvars in
        incr nvars;
        Hashtbl.replace slots v i;
        i
  in
  let compile_term = function
    | Const c -> S_const c
    | Var v -> S_var (slot_of v)
  in
  let compile_atom (a : atom) =
    { c_pred = a.pred; c_args = Array.of_list (List.map compile_term a.args) }
  in
  let rec compile_expr = function
    | E_const c -> CE_const c
    | E_var v -> CE_var (slot_of v)
    | E_add (a, b) -> CE_add (compile_expr a, compile_expr b)
    | E_sub (a, b) -> CE_sub (compile_expr a, compile_expr b)
    | E_mul (a, b) -> CE_mul (compile_expr a, compile_expr b)
  in
  let body =
    List.map
      (function
        | Pos a -> C_pos (compile_atom a)
        | Neg a -> C_neg (compile_atom a)
        | Cmp (op, a, b) -> C_cmp (op, compile_expr a, compile_expr b))
      r.body
  in
  { cr_nvars = !nvars; cr_head = compile_atom r.head; cr_body = Array.of_list body }

type env = const option array

let rec eval_cexpr (env : env) = function
  | CE_const (Int n) -> n
  | CE_const (Str str) ->
      raise
        (Engine.Unsafe_rule (Printf.sprintf "string %S in arithmetic" str))
  | CE_var i -> (
      match env.(i) with
      | Some (Int n) -> n
      | Some (Str str) ->
          raise
            (Engine.Unsafe_rule (Printf.sprintf "string %S in arithmetic" str))
      | None -> raise (Engine.Unsafe_rule "unbound variable in comparison"))
  | CE_add (a, b) -> eval_cexpr env a + eval_cexpr env b
  | CE_sub (a, b) -> eval_cexpr env a - eval_cexpr env b
  | CE_mul (a, b) -> eval_cexpr env a * eval_cexpr env b

let eval_ccmp (env : env) op lhs rhs =
  let as_const = function
    | CE_const c -> Some c
    | CE_var i -> env.(i)
    | _ -> None
  in
  match (op, as_const lhs, as_const rhs) with
  | Eq, Some a, Some b -> a = b
  | Ne, Some a, Some b -> a <> b
  | _ -> (
      let a = eval_cexpr env lhs and b = eval_cexpr env rhs in
      match op with
      | Lt -> a < b
      | Le -> a <= b
      | Gt -> a > b
      | Ge -> a >= b
      | Eq -> a = b
      | Ne -> a <> b)

(* The per-probe dynamic scan the interned engine compiled away. *)
let bound_positions (a : compiled_atom) (env : env) =
  let positions = ref [] and key = ref [] in
  Array.iteri
    (fun k arg ->
      match arg with
      | S_const c ->
          positions := k :: !positions;
          key := c :: !key
      | S_var i -> (
          match env.(i) with
          | Some c ->
              positions := k :: !positions;
              key := c :: !key
          | None -> ()))
    a.c_args;
  (List.rev !positions, List.rev !key)

let unify_tuple (a : compiled_atom) (tuple : Relation.tuple) (env : env)
    (trail : int list ref) : bool =
  let n = Array.length a.c_args in
  if n <> Array.length tuple then false
  else begin
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < n do
      (match a.c_args.(!k) with
      | S_const c -> if c <> tuple.(!k) then ok := false
      | S_var i -> (
          match env.(i) with
          | Some bound -> if bound <> tuple.(!k) then ok := false
          | None ->
              env.(i) <- Some tuple.(!k);
              trail := i :: !trail));
      incr k
    done;
    if not !ok then begin
      List.iter (fun i -> env.(i) <- None) !trail;
      trail := []
    end;
    !ok
  end

let instantiate (a : compiled_atom) (env : env) : Relation.tuple =
  Array.map
    (function
      | S_const c -> c
      | S_var i -> (
          match env.(i) with
          | Some c -> c
          | None ->
              raise (Engine.Unsafe_rule "unbound variable at instantiation")))
    a.c_args

let rec eval_from (db : db) (cr : compiled_rule) (env : env) ~idx ~delta_at
    ~delta_tuples ~emit =
  if idx >= Array.length cr.cr_body then emit env
  else
    match cr.cr_body.(idx) with
    | C_pos a ->
        let visit tuple =
          let trail = ref [] in
          if unify_tuple a tuple env trail then begin
            eval_from db cr env ~idx:(idx + 1) ~delta_at ~delta_tuples ~emit;
            List.iter (fun i -> env.(i) <- None) !trail
          end
        in
        let candidates =
          match delta_at with
          | Some d when d = idx -> delta_tuples
          | _ -> (
              match Hashtbl.find_opt db.db_rels a.c_pred with
              | None -> []
              | Some rel ->
                  let positions, key = bound_positions a env in
                  Relation.lookup rel positions key)
        in
        List.iter visit candidates
    | C_neg a ->
        let present =
          match Hashtbl.find_opt db.db_rels a.c_pred with
          | Some rel -> Relation.mem rel (instantiate a env)
          | None -> false
        in
        if not present then
          eval_from db cr env ~idx:(idx + 1) ~delta_at ~delta_tuples ~emit
    | C_cmp (op, lhs, rhs) ->
        if eval_ccmp env op lhs rhs then
          eval_from db cr env ~idx:(idx + 1) ~delta_at ~delta_tuples ~emit

let eval_rule (db : db) (cr : compiled_rule) ~delta_at ~delta_tuples
    ~on_derived =
  let env : env = Array.make (max 1 cr.cr_nvars) None in
  eval_from db cr env ~idx:0 ~delta_at ~delta_tuples ~emit:(fun env ->
      on_derived (instantiate cr.cr_head env))

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)

let eval_stratum (db : db) (derived : int ref) (stratum_rules : rule list)
    (recursive : bool) : unit =
  let compiled = List.map compile_rule stratum_rules in
  let stratum_preds =
    List.sort_uniq compare (List.map (fun r -> r.head.pred) stratum_rules)
  in
  let in_stratum p = List.mem p stratum_preds in
  let delta : (string, Relation.tuple list) Hashtbl.t = Hashtbl.create 8 in
  let record_delta tbl pred tuple =
    let prev = Option.value (Hashtbl.find_opt tbl pred) ~default:[] in
    Hashtbl.replace tbl pred (tuple :: prev)
  in
  let eval_into tbl cr ~delta_at ~delta_tuples =
    eval_rule db cr ~delta_at ~delta_tuples ~on_derived:(fun tuple ->
        let pred = cr.cr_head.c_pred in
        if Relation.add (relation db pred) tuple then begin
          incr derived;
          record_delta tbl pred tuple
        end)
  in
  List.iter
    (fun cr -> eval_into delta cr ~delta_at:None ~delta_tuples:[])
    compiled;
  let continue_ =
    ref (recursive && Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false)
  in
  while !continue_ do
    let new_delta : (string, Relation.tuple list) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun cr ->
        Array.iteri
          (fun idx lit ->
            match lit with
            | C_pos a when in_stratum a.c_pred -> (
                match Hashtbl.find_opt delta a.c_pred with
                | Some (_ :: _ as delta_tuples) ->
                    eval_into new_delta cr ~delta_at:(Some idx) ~delta_tuples
                | _ -> ())
            | _ -> ())
          cr.cr_body)
      compiled;
    Hashtbl.reset delta;
    Hashtbl.iter (fun k v -> Hashtbl.replace delta k v) new_delta;
    continue_ := Hashtbl.fold (fun _ l acc -> acc || l <> []) delta false
  done

(** Evaluate all rules to fixpoint; returns the number of derived
    tuples.  Stratification and safety checks are {!Engine}'s — they
    precede any representation choice. *)
let run (db : db) (program : program) : int =
  List.iter Engine.check_rule_safety program.rules;
  let derived = ref 0 in
  List.iter
    (fun (stratum_rules, recursive) ->
      eval_stratum db derived stratum_rules recursive)
    (Engine.stratify program.rules);
  !derived
