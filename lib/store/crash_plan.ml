type point =
  | Wal_torn_record
  | Wal_pre_sync
  | Wal_post_sync
  | Snap_torn_temp
  | Snap_pre_rename
  | Snap_pre_truncate

let point_name = function
  | Wal_torn_record -> "wal-torn-record"
  | Wal_pre_sync -> "wal-pre-sync"
  | Wal_post_sync -> "wal-post-sync"
  | Snap_torn_temp -> "snap-torn-temp"
  | Snap_pre_rename -> "snap-pre-rename"
  | Snap_pre_truncate -> "snap-pre-truncate"

exception Crashed of point * int

(* One plan may be shared by every store of a fleet, whose lanes poll
   in parallel domains: the counter is mutex-protected so each write
   opportunity gets a unique index and exactly one of them fires.  The
   partial effect runs under the lock — by then the process is dead
   anyway. *)
type t = { mutable ops : int; target : int; mu : Mutex.t }

let none () = { ops = 0; target = 0; mu = Mutex.create () }
let at target = { ops = 0; target = max 1 target; mu = Mutex.create () }

let ops t =
  Mutex.lock t.mu;
  let n = t.ops in
  Mutex.unlock t.mu;
  n

let step t point ~partial =
  Mutex.lock t.mu;
  t.ops <- t.ops + 1;
  let fire = t.target > 0 && t.ops = t.target in
  let n = t.ops in
  if fire then begin
    let fin () = Mutex.unlock t.mu in
    (try partial () with e -> fin (); raise e);
    fin ();
    raise (Crashed (point, n))
  end
  else Mutex.unlock t.mu
