let snap_magic = "XCWSNAP1"
let header_len = 20 (* len:u64 + index:u64 + crc:u32 *)

type t = {
  t_dir : string;
  t_wal : string;
  t_snap : string;
  t_crash : Crash_plan.t;
  mutable t_chan : out_channel;
  mutable t_next : int;
  mutable t_wal_bytes : int;
  mutable t_appended : int;
  mutable t_closed : bool;
}

type recovered = {
  r_snapshot : string option;
  r_records : (int * string) list;
  r_truncated_bytes : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Best-effort: make a rename/creation durable by syncing the directory. *)
let sync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let load_snapshot path =
  if not (Sys.file_exists path) then None
  else
    let raw = read_file path in
    let m = String.length snap_magic in
    if String.length raw < m + header_len then None
    else if String.sub raw 0 m <> snap_magic then None
    else
      let last = Int64.to_int (String.get_int64_le raw m) in
      let len = Int64.to_int (String.get_int64_le raw (m + 8)) in
      let crc = String.get_int32_le raw (m + 16) in
      if len < 0 || m + header_len + len <> String.length raw then None
      else if Codec.crc32 ~off:(m + header_len) ~len raw <> crc then None
      else Some (last, String.sub raw (m + header_len) len)

(* Scan the WAL, returning valid records and the offset of the first
   torn or corrupt byte (= the length to truncate the file to). *)
let scan_wal raw =
  let total = String.length raw in
  let records = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos + header_len <= total do
    let len = Int64.to_int (String.get_int64_le raw !pos) in
    let index = Int64.to_int (String.get_int64_le raw (!pos + 8)) in
    let crc = String.get_int32_le raw (!pos + 16) in
    if len < 0 || index < 0 || !pos + header_len + len > total then stop := true
    else if Codec.crc32 ~off:(!pos + header_len) ~len raw <> crc then
      stop := true
    else begin
      records := (index, String.sub raw (!pos + header_len) len) :: !records;
      pos := !pos + header_len + len
    end
  done;
  (List.rev !records, !pos)

let open_ ?(crash = Crash_plan.none ()) ~dir () =
  mkdir_p dir;
  let wal = Filename.concat dir "wal.log" in
  let snap = Filename.concat dir "snapshot.bin" in
  (* A leftover temp file is an aborted snapshot: discard it. *)
  let tmp = snap ^ ".tmp" in
  if Sys.file_exists tmp then Sys.remove tmp;
  let snapshot = load_snapshot snap in
  let snap_last = match snapshot with Some (last, _) -> last | None -> 0 in
  let raw = if Sys.file_exists wal then read_file wal else "" in
  let all_records, valid_len = scan_wal raw in
  if valid_len < String.length raw then begin
    let fd = Unix.openfile wal [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd valid_len;
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  end;
  let records = List.filter (fun (i, _) -> i > snap_last) all_records in
  let last_index =
    List.fold_left (fun acc (i, _) -> max acc i) snap_last all_records
  in
  let chan =
    open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 wal
  in
  let t =
    {
      t_dir = dir;
      t_wal = wal;
      t_snap = snap;
      t_crash = crash;
      t_chan = chan;
      t_next = last_index + 1;
      t_wal_bytes = valid_len;
      t_appended = 0;
      t_closed = false;
    }
  in
  ( t,
    {
      r_snapshot = Option.map snd snapshot;
      r_records = records;
      r_truncated_bytes = String.length raw - valid_len;
    } )

let frame index payload =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_int64_le b (Int64.of_int index);
  Buffer.add_int32_le b (Codec.crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let append t payload =
  assert (not t.t_closed);
  let index = t.t_next in
  let fr = frame index payload in
  let n = String.length fr in
  Crash_plan.step t.t_crash Crash_plan.Wal_torn_record ~partial:(fun () ->
      (* A torn write: a strict prefix of the frame reaches disk. *)
      output_substring t.t_chan fr 0 (max 1 (n / 2));
      flush t.t_chan);
  output_string t.t_chan fr;
  flush t.t_chan;
  Crash_plan.step t.t_crash Crash_plan.Wal_pre_sync ~partial:ignore;
  (try Unix.fsync (Unix.descr_of_out_channel t.t_chan)
   with Unix.Unix_error _ -> ());
  Crash_plan.step t.t_crash Crash_plan.Wal_post_sync ~partial:ignore;
  t.t_next <- index + 1;
  t.t_wal_bytes <- t.t_wal_bytes + n;
  t.t_appended <- t.t_appended + n;
  index

let write_file_synced path content =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ())

let snapshot t payload =
  assert (not t.t_closed);
  let last = t.t_next - 1 in
  let b = Buffer.create (String.length payload + 32) in
  Buffer.add_string b snap_magic;
  Buffer.add_int64_le b (Int64.of_int last);
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_int32_le b (Codec.crc32 payload);
  Buffer.add_string b payload;
  let content = Buffer.contents b in
  let tmp = t.t_snap ^ ".tmp" in
  Crash_plan.step t.t_crash Crash_plan.Snap_torn_temp ~partial:(fun () ->
      let n = String.length content in
      write_file_synced tmp (String.sub content 0 (max 1 (n / 2))));
  write_file_synced tmp content;
  Crash_plan.step t.t_crash Crash_plan.Snap_pre_rename ~partial:ignore;
  Sys.rename tmp t.t_snap;
  sync_dir t.t_dir;
  Crash_plan.step t.t_crash Crash_plan.Snap_pre_truncate ~partial:ignore;
  close_out t.t_chan;
  t.t_chan <-
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644
      t.t_wal;
  t.t_wal_bytes <- 0

let next_index t = t.t_next
let wal_bytes t = t.t_wal_bytes
let appended_bytes t = t.t_appended

let close t =
  if not t.t_closed then begin
    t.t_closed <- true;
    close_out_noerr t.t_chan
  end
