(** Binary (de)serialization helpers for the durable store.

    All integers are little-endian 64-bit; strings are length-prefixed.
    The framing layer (see {!Wal}/{!Snapshot}) protects every payload
    with a CRC-32, so a [Corrupt] raised here after a successful CRC
    check indicates a format/version bug, not disk damage. *)

val crc32 : ?off:int -> ?len:int -> string -> int32
(** IEEE 802.3 CRC-32 of a substring (whole string by default). *)

(** Append-only writer over a [Buffer.t]. *)
module W : sig
  type t = Buffer.t

  val create : unit -> t
  val int : t -> int -> unit
  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val str : t -> string -> unit
  val opt_str : t -> string option -> unit
  val list : t -> ('a -> unit) -> 'a list -> unit
  (** [list w f xs] writes the length then [f] per element; [f] is
      expected to close over [w]. *)
end

(** Sequential reader over an immutable string. *)
module R : sig
  type t

  exception Corrupt of string

  val of_string : string -> t
  val int : t -> int
  val bool : t -> bool
  val float : t -> float
  val str : t -> string
  val opt_str : t -> string option
  val list : t -> (unit -> 'a) -> 'a list
  val at_end : t -> bool
end
