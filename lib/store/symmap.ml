type t = {
  sm_fwd : (string, int) Hashtbl.t;
  mutable sm_back : int array; (* store id -> process packed cell *)
  mutable sm_strs : string array; (* store id -> string, for snapshots *)
  mutable sm_n : int;
  mutable sm_fresh_rev : string list;
}

let create () =
  {
    sm_fwd = Hashtbl.create 64;
    sm_back = Array.make 64 0;
    sm_strs = Array.make 64 "";
    sm_n = 0;
    sm_fresh_rev = [];
  }

let grow t =
  if t.sm_n = Array.length t.sm_back then begin
    let cap = 2 * Array.length t.sm_back in
    let back = Array.make cap 0 and strs = Array.make cap "" in
    Array.blit t.sm_back 0 back 0 t.sm_n;
    Array.blit t.sm_strs 0 strs 0 t.sm_n;
    t.sm_back <- back;
    t.sm_strs <- strs
  end

let assign t s ~fresh =
  grow t;
  let id = t.sm_n in
  Hashtbl.add t.sm_fwd s id;
  t.sm_back.(id) <- Xcw_datalog.Ast.pack_string s;
  t.sm_strs.(id) <- s;
  t.sm_n <- id + 1;
  if fresh then t.sm_fresh_rev <- s :: t.sm_fresh_rev;
  id

let encode_cell t packed =
  if Xcw_datalog.Ast.packed_is_int packed then packed
  else
    let s =
      match Xcw_datalog.Ast.unpack packed with
      | Xcw_datalog.Ast.Str s -> s
      | Xcw_datalog.Ast.Int _ -> assert false
    in
    let id =
      match Hashtbl.find_opt t.sm_fwd s with
      | Some id -> id
      | None -> assign t s ~fresh:true
    in
    (id lsl 1) lor 1

let decode_cell t stored =
  if stored land 1 = 0 then stored
  else
    let id = stored lsr 1 in
    if id >= t.sm_n then
      raise (Codec.R.Corrupt (Printf.sprintf "symbol id %d out of range" id))
    else t.sm_back.(id)

let register t s = ignore (assign t s ~fresh:false)

let take_fresh t =
  let fresh = List.rev t.sm_fresh_rev in
  t.sm_fresh_rev <- [];
  fresh

let size t = t.sm_n
let dump t = Array.to_list (Array.sub t.sm_strs 0 t.sm_n)
