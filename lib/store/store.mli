(** Durable checkpoint/WAL store.

    A store is a directory holding [wal.log] (append-only records, each
    framed as [len:u64][index:u64][crc32:u32][payload]) and
    [snapshot.bin] ([XCWSNAP1] magic, last covered record index, CRC,
    payload).  Records carry monotone indices; a snapshot commits via
    write-temp + fsync + rename and records the highest index it
    covers, so the WAL truncation that follows does not need to be
    atomic with the rename — recovery simply skips WAL records whose
    index the snapshot already covers.

    On [open_], recovery loads the newest valid snapshot (a torn temp
    file or corrupt snapshot is discarded), scans the WAL, truncates
    any torn or CRC-corrupt tail, and returns the surviving payloads.

    [append] returns only after the record is fsynced: a record is
    either durable or (on a torn tail) invisible after recovery, never
    half-applied. *)

type t

type recovered = {
  r_snapshot : string option;  (** newest valid snapshot payload *)
  r_records : (int * string) list;
      (** WAL payloads not covered by the snapshot, ascending index *)
  r_truncated_bytes : int;  (** torn/corrupt WAL tail bytes dropped *)
}

val open_ : ?crash:Crash_plan.t -> dir:string -> unit -> t * recovered
(** Creates [dir] if needed.  [crash] injects deterministic failures at
    every subsequent write opportunity (see {!Crash_plan}). *)

val append : t -> string -> int
(** Append one record; returns its index.  Durable once it returns. *)

val snapshot : t -> string -> unit
(** Atomically replace the snapshot with [payload] covering every
    record appended so far, then truncate the WAL. *)

val next_index : t -> int

val wal_bytes : t -> int
(** Current WAL file length. *)

val appended_bytes : t -> int
(** Lifetime bytes appended (for the recovery bench). *)

val close : t -> unit
(** Safe even after a {!Crash_plan.Crashed} escape: the store flushes
    before every crash point, so closing never writes new bytes. *)
