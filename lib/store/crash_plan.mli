(** Deterministic crash injection for the durable store.

    A plan is a single counter shared by every {!Store.t} it is passed
    to (lane WALs and the fleet WAL alike), so "the k-th write
    opportunity of the whole process" is well defined.  [at k] raises
    {!Crashed} at exactly that opportunity, after first applying the
    point's partial on-disk effect (e.g. a torn record prefix) — the
    in-memory store must then be discarded, mimicking process death.
    The crash sweep runs a plan-free pass to count opportunities, then
    one pass per [k] in [1..ops]; seeded sweeps mirror [Fault.plan]. *)

type point =
  | Wal_torn_record  (** crash mid-record: a torn prefix reaches disk *)
  | Wal_pre_sync  (** record fully written, crash before fsync *)
  | Wal_post_sync  (** record durable, crash before append returns *)
  | Snap_torn_temp  (** crash mid-write of the snapshot temp file *)
  | Snap_pre_rename  (** temp complete + fsynced, crash before rename *)
  | Snap_pre_truncate  (** snapshot committed, crash before WAL truncate *)

val point_name : point -> string

exception Crashed of point * int
(** [(point, op)] — which write opportunity fired and where. *)

type t

val none : unit -> t
(** Counts write opportunities but never crashes.  Used by the sweep's
    baseline pass to size the [1..ops] crash space. *)

val at : int -> t
(** Crash at the k-th write opportunity (1-based; clamped to >= 1). *)

val ops : t -> int
(** Write opportunities seen so far. *)

val step : t -> point -> partial:(unit -> unit) -> unit
(** Internal hook called by the store on every write opportunity. *)
