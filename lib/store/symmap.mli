(** Store-local symbol table.

    The engine's process-global [Ast.Symtab] assigns intern ids in
    first-sight order, so ids persisted by one process would not
    re-pack identically in the next.  A [Symmap] therefore numbers
    strings in the order they first reach *this store*: WAL records
    carry the strings newly assigned while encoding them (in id order),
    and snapshots carry the whole table, so replaying a store
    reconstructs the exact id space regardless of what the process
    Symtab looks like.  Cells keep the engine's packing scheme — even
    = integer as-is, odd = [(store_id lsl 1) lor 1]. *)

type t

val create : unit -> t

val encode_cell : t -> Xcw_datalog.Ast.packed -> int
(** Process-packed cell -> store cell, assigning fresh store ids as
    needed (collect them with {!take_fresh} before framing the record). *)

val decode_cell : t -> int -> Xcw_datalog.Ast.packed
(** Store cell -> process-packed cell.  Raises [Codec.R.Corrupt] on an
    unregistered id. *)

val register : t -> string -> unit
(** Recovery side: bind the next store id to [s] (and to the process
    intern table), without marking it fresh. *)

val take_fresh : t -> string list
(** Strings assigned since the last call, in id order; the caller
    writes them into the record ahead of the cells that use them. *)

val size : t -> int
val dump : t -> string list  (** all strings in id order (snapshots) *)
