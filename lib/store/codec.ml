let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let int b n = Buffer.add_int64_le b (Int64.of_int n)
  let bool b v = Buffer.add_char b (if v then '\001' else '\000')
  let float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

  let str b s =
    int b (String.length s);
    Buffer.add_string b s

  let opt_str b = function
    | None -> bool b false
    | Some s ->
        bool b true;
        str b s

  let list b f xs =
    int b (List.length xs);
    List.iter f xs
end

module R = struct
  type t = { src : string; mutable pos : int }

  exception Corrupt of string

  let of_string src = { src; pos = 0 }

  let need r n what =
    if r.pos + n > String.length r.src then
      raise (Corrupt (Printf.sprintf "truncated %s at offset %d" what r.pos))

  let int r =
    need r 8 "int";
    let v = Int64.to_int (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let bool r =
    need r 1 "bool";
    let c = r.src.[r.pos] in
    r.pos <- r.pos + 1;
    c <> '\000'

  let float r =
    need r 8 "float";
    let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let str r =
    let n = int r in
    if n < 0 then raise (Corrupt "negative string length");
    need r n "string";
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let opt_str r = if bool r then Some (str r) else None

  let list r f =
    let n = int r in
    if n < 0 then raise (Corrupt "negative list length");
    List.init n (fun _ -> f ())

  let at_end r = r.pos = String.length r.src
end
