module Keccak = Xcw_keccak.Keccak
module Hex = Xcw_util.Hex

let node_bytes = 32
let max_depth = 30
let hash2 a b = Keccak.digest (a ^ b)

(* zero_cache.(h) = digest of an all-zero subtree of height h. *)
let zero_cache =
  let t = Array.make (max_depth + 1) (String.make node_bytes '\000') in
  for h = 1 to max_depth do
    t.(h) <- hash2 t.(h - 1) t.(h - 1)
  done;
  t

let zero_node h =
  if h < 0 || h > max_depth then
    invalid_arg (Printf.sprintf "Merkle.zero_node: height %d" h);
  zero_cache.(h)

type t = {
  t_depth : int;
  mutable t_leaves : string array;  (* filled prefix [0, t_size) *)
  mutable t_size : int;
}

let create ?(depth = 8) () =
  if depth < 1 || depth > max_depth then
    invalid_arg
      (Printf.sprintf "Merkle.create: depth %d out of range 1..%d" depth
         max_depth);
  { t_depth = depth; t_leaves = Array.make 16 ""; t_size = 0 }

let depth t = t.t_depth
let capacity t = 1 lsl t.t_depth
let size t = t.t_size
let copy t = { t with t_leaves = Array.copy t.t_leaves }

let add_leaf t leaf =
  if String.length leaf <> node_bytes then
    invalid_arg
      (Printf.sprintf "Merkle.add_leaf: leaf is %d bytes, want %d"
         (String.length leaf) node_bytes);
  if t.t_size >= capacity t then
    invalid_arg
      (Printf.sprintf "Merkle.add_leaf: tree full (depth %d, %d leaves)"
         t.t_depth t.t_size);
  if t.t_size = Array.length t.t_leaves then begin
    let bigger = Array.make (2 * Array.length t.t_leaves) "" in
    Array.blit t.t_leaves 0 bigger 0 t.t_size;
    t.t_leaves <- bigger
  end;
  t.t_leaves.(t.t_size) <- leaf;
  t.t_size <- t.t_size + 1;
  t.t_size - 1

let leaf t i =
  if i < 0 || i >= t.t_size then
    invalid_arg (Printf.sprintf "Merkle.leaf: index %d (size %d)" i t.t_size);
  t.t_leaves.(i)

(* Digest of the node at [height] covering leaf indices
   [idx * 2^height, (idx+1) * 2^height): all-zero subtrees short-cut to
   the cached zero digest, so cost is proportional to the filled
   prefix, not the capacity. *)
let rec node t ~height ~idx =
  if idx lsl height >= t.t_size then zero_cache.(height)
  else if height = 0 then t.t_leaves.(idx)
  else
    hash2
      (node t ~height:(height - 1) ~idx:(2 * idx))
      (node t ~height:(height - 1) ~idx:((2 * idx) + 1))

let root t = node t ~height:t.t_depth ~idx:0
let root_hex t = Hex.encode_0x (root t)

let proof t i =
  if i < 0 || i >= t.t_size then
    invalid_arg (Printf.sprintf "Merkle.proof: index %d (size %d)" i t.t_size);
  List.init t.t_depth (fun h -> node t ~height:h ~idx:((i lsr h) lxor 1))

let verify ~depth ~root ~index ~leaf proof =
  depth >= 1 && depth <= max_depth
  && index >= 0
  && index < 1 lsl depth
  && String.length leaf = node_bytes
  && List.length proof = depth
  && List.for_all (fun s -> String.length s = node_bytes) proof
  &&
  let acc = ref leaf in
  List.iteri
    (fun h sibling ->
      acc :=
        if (index lsr h) land 1 = 0 then hash2 !acc sibling
        else hash2 sibling !acc)
    proof;
  String.equal !acc root

let be64 n =
  if n < 0 then invalid_arg "Merkle.leaf_hash: negative field";
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int n);
  Bytes.unsafe_to_string b

let leaf_hash ~origin_chain_id ~dest_chain_id ~token ~amount ~nonce =
  Keccak.digest
    (String.concat ""
       [
         be64 origin_chain_id; be64 dest_chain_id;
         be64 (String.length token); token; be64 amount; be64 nonce;
       ])

let root_of_leaves ~depth leaves =
  if depth < 1 || depth > max_depth then
    invalid_arg (Printf.sprintf "Merkle.root_of_leaves: depth %d" depth);
  let n = List.length leaves in
  if n > 1 lsl depth then
    invalid_arg
      (Printf.sprintf "Merkle.root_of_leaves: %d leaves exceed capacity %d" n
         (1 lsl depth));
  List.iter
    (fun l ->
      if String.length l <> node_bytes then
        invalid_arg "Merkle.root_of_leaves: leaf width")
    leaves;
  let level = Array.make (1 lsl depth) zero_cache.(0) in
  List.iteri (fun i l -> level.(i) <- l) leaves;
  let current = ref level in
  for _h = 1 to depth do
    let prev = !current in
    current :=
      Array.init
        (Array.length prev / 2)
        (fun i -> hash2 prev.(2 * i) prev.((2 * i) + 1))
  done;
  !current.(0)
