(** Append-only sparse Merkle exit trees (keccak-256 over 32-byte
    nodes), after the pessimistic-bridge "local exit tree" design: a
    fixed-depth binary tree whose unfilled leaves are implicit zero
    subtrees, appended on every deposit (source side) or claim
    execution (target side).  The root commits to the whole exit
    history, and an inclusion proof is the list of sibling digests from
    leaf to root.

    Roots and proofs here are what the watcher checks — the simulated
    exit contracts deliberately do {e not} verify proofs on-chain, so
    forged-proof and stale-root claims execute and must be caught by
    the accounting stratum. *)

type t
(** Mutable append-only tree.  Node digests above the filled prefix are
    the canonical zero-subtree hashes, so an empty tree of any depth
    has a well-defined root. *)

val node_bytes : int
(** Size of every leaf and interior digest: 32. *)

val max_depth : int
(** Largest accepted tree depth (30): capacities stay comfortably
    within native [int] indices. *)

val create : ?depth:int -> unit -> t
(** Fresh empty tree; [depth] defaults to 8 (256-leaf capacity).
    Raises [Invalid_argument] unless [1 <= depth <= max_depth]. *)

val depth : t -> int

val capacity : t -> int
(** [2 ^ depth]. *)

val size : t -> int
(** Leaves appended so far. *)

val copy : t -> t
(** Independent snapshot — later appends to either tree do not affect
    the other.  Stale-root attacks prove inclusion against a copy taken
    before newer epochs were appended. *)

val add_leaf : t -> string -> int
(** Append a 32-byte leaf digest, returning its index.  Raises
    [Invalid_argument] if the tree is full or the leaf is not
    [node_bytes] long. *)

val leaf : t -> int -> string
(** The leaf at an index; raises [Invalid_argument] out of range. *)

val root : t -> string
(** 32-byte root digest of the current tree. *)

val root_hex : t -> string
(** [root] as lowercase ["0x"]-prefixed hex — the representation used
    in EDB facts and events. *)

val proof : t -> int -> string list
(** Inclusion proof for the leaf at an index: the [depth] sibling
    digests, leaf level first.  Raises [Invalid_argument] out of
    range (only appended leaves can be proven). *)

val verify :
  depth:int -> root:string -> index:int -> leaf:string -> string list -> bool
(** [verify ~depth ~root ~index ~leaf proof] recomputes the root from
    the leaf and sibling path.  [false] (never an exception) on any
    mismatch: wrong sibling count or width, index out of range, or a
    recomputed root that differs from [root]. *)

val leaf_hash :
  origin_chain_id:int ->
  dest_chain_id:int ->
  token:string ->
  amount:int ->
  nonce:int ->
  string
(** Canonical 32-byte exit-leaf digest: keccak-256 over the
    big-endian-packed fields (ints as unsigned 64-bit words, [token]
    as raw bytes, each field length-prefixed so field boundaries are
    unambiguous).  Raises [Invalid_argument] on negative ints. *)

val root_of_leaves : depth:int -> string list -> string
(** Naive reference: materialize the full [2 ^ depth] leaf level
    (zero-padded), hash level by level.  Differential oracle for
    {!root} in the property tests; [Invalid_argument] on bad depth,
    too many leaves, or a mis-sized leaf. *)

val zero_node : int -> string
(** The canonical digest of an all-zero subtree of the given height
    ([zero_node 0] is 32 zero bytes).  Exposed for tests. *)
