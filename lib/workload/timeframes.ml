(** The data-extraction timeframes of Table 1 (unix timestamps). *)

type t = {
  tf_bridge : string;
  t0 : int;  (** start of the extended pre-window *)
  t1 : int;  (** start of the interval of interest *)
  t2 : int;  (** end of the interval of interest *)
  t3 : int;  (** end of the extended post-window *)
  attack : int;  (** attack timestamp, inside [t1; t2] *)
}

(** Nomad: the main Moonbeam bridge contract was deployed on Jan 11,
    2022 (t0 = t1); attacked Aug 2, 2022; paused until Dec 15, 2022. *)
let nomad =
  {
    tf_bridge = "Nomad";
    t0 = 1641905876;
    t1 = 1641905876;
    t2 = 1671062400;
    t3 = 1722441775;
    attack = 1659398400 (* Aug 2, 2022 *);
  }

(** Ronin: interval of interest Jan 1 – Apr 28, 2022; attacked Mar 22,
    2022 and discovered six days later. *)
let ronin =
  {
    tf_bridge = "Ronin";
    t0 = 1631491200 (* Sep 13, 2021 *);
    t1 = 1640995200 (* Jan 1, 2022 *);
    t2 = 1651156446 (* Apr 28, 2022 *);
    t3 = 1722441775 (* Jul 31, 2024 *);
    attack = 1647950400 (* Mar 22, 2022 *);
  }

let rows = [ nomad; ronin ]

let pp fmt t =
  Format.fprintf fmt "%-8s t0=%d t1=%d t2=%d t3=%d attack=%d" t.tf_bridge t.t0
    t.t1 t.t2 t.t3 t.attack
