(** The Ronin bridge scenario (Ethereum <-> Ronin), calibrated to the
    paper's evaluation:

    - trusted multisig acceptance (5-of-9 validators), address
      beneficiaries, lock-unlock escrow, and the era's bug of emitting
      Withdraw events for unmapped tokens without moving funds;
    - benign traffic sized by [scale] x Table 3's Ronin column: 38,462
      native + 5,527 ERC-20 deposits, 35,413 withdrawal requests on
      Ronin of which 11,792·scale never complete on Ethereum;
    - anomalies with the paper's exact counts where small: 3 phishing +
      80 direct transfers (~$113K), 10 deposit finality violations
      (fastest 66 s < Ethereum's 78 s), 22 withdrawal finality
      violations (fastest 11 s < Ronin's 45 s), 2 unmapped-token
      Withdraw events, 1 phishing transfer out of the bridge, 708·scale
      pre-window false positives (withdrawal ids below the collection
      window's first id), and the March 22, 2022 attack: 2 forged
      withdrawals from one EOA draining $565.64M-shaped escrow.
      Deposits stop at discovery, six days after the attack
      (Figure 1). *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Prng = Xcw_util.Prng
module Config = Xcw_core.Config
open Scenario

let eth_finality = 78 (* pre-Merge Ethereum, paper Section 5.2.1 *)
let ronin_finality = 45

let paper = object
  method native_deposits = 38_462
  method erc20_deposits = 5_527
  method erc20_withdrawals = 35_413
  method incomplete_withdrawals = 11_792
  method pre_window_fps = 708
  method pre_attack_spike = 468 (* withdrawing $24.3M in the final 24h *)
end

let build ?(seed = 1337) ?(scale = 0.05) () : built =
  let rng = Prng.create seed in
  let tf = Timeframes.ronin in
  let window = (tf.Timeframes.t1, tf.Timeframes.t2) in
  let attack = tf.Timeframes.attack in
  let discovery = attack + (6 * 86_400) in
  let source_chain =
    Chain.create ~chain_id:1 ~name:"ethereum" ~finality_seconds:eth_finality
      ~genesis_time:tf.Timeframes.t1
  in
  let target_chain =
    Chain.create ~chain_id:2020 ~name:"ronin" ~finality_seconds:ronin_finality
      ~genesis_time:tf.Timeframes.t1
  in
  let bridge =
    Bridge.create
      {
        Bridge.s_label = "ronin";
        s_source_chain = source_chain;
        s_target_chain = target_chain;
        s_escrow = Bridge.Lock_unlock;
        s_acceptance =
          Bridge.Multisig
            {
              threshold = 5;
              validator_count = 9;
              compromised_keys = 0;
              (* Finding 4: the validators do not enforce the source
                 chain's finality off-chain. *)
              enforce_source_finality = false;
            };
        s_beneficiary_repr = Events.B_address;
        s_buggy_unmapped_withdrawal = true;
      }
  in
  let tokens =
    List.map
      (fun spec ->
        {
          rt_spec = spec;
          rt_mapping =
            Bridge.register_token_pair bridge ~name:spec.ts_name
              ~symbol:spec.ts_symbol ~decimals:spec.ts_decimals;
        })
      default_tokens
  in
  ignore (Bridge.register_native_mapping bridge);
  let config = Config.of_bridge bridge in
  let pricing = build_pricing bridge tokens in
  let gt = new_ground_truth () in
  let users = make_users bridge rng ~label:"ronin" ~count:600 ~native_eth:100.0 in
  let t1, t2 = window in
  let actions = ref [] in
  let schedule at run = actions := { at; run } :: !actions in
  let incomplete = ref [] in
  let deposit_calls = ref [] and withdrawal_calls = ref [] in

  (* Pre-window activity escrowed liquidity in the bridge before our
     collection starts (deposits in [t0; t1[); model it as operator
     seeding so pre-window withdrawal executions have funds to
     release. *)
  List.iter
    (fun rt ->
      let big = token_units rt.rt_spec 285_000_000.0 in
      ignore
        (Chain.submit_tx source_chain ~from_:bridge.Bridge.source.Bridge.operator
           ~to_:rt.rt_mapping.Bridge.m_src_token
           ~input:
             (Erc20.mint_calldata ~to_:bridge.Bridge.source.Bridge.bridge_addr
                ~amount:big)
           ()))
    tokens;

  (* Withdrawal-id numbering: ids below [n_pre] belong to requests made
     before t1 (not in the captured data). *)
  let n_pre = scaled scale paper#pre_window_fps in
  Bridge.seed_withdrawal_counter bridge n_pre;
  let first_window_wid = n_pre in

  let relay_jitter () = min 60 (int_of_float (Prng.exponential rng ~mean:20.0)) in
  let deposit_time () = Prng.range rng t1 discovery in

  (* ---------------- benign deposits --------------------------------- *)
  let schedule_native_deposit ?(relay_delay = -1) ~ts () =
    let user = pick_user rng users in
    let usd = Float.min (draw_usd rng) 500_000.0 in
    let amount = eth_to_wei (usd /. 2500.0) in
    let cell = ref None in
    schedule ts (fun () ->
        advance_to source_chain ts;
        Chain.fund source_chain user amount;
        deposit_calls := ts :: !deposit_calls;
        let d = Bridge.deposit_native bridge ~user ~amount ~beneficiary:user in
        cell := Some d;
        gt.gt_native_deposits <- gt.gt_native_deposits + 1);
    let delay =
      if relay_delay >= 0 then relay_delay else eth_finality + relay_jitter ()
    in
    schedule (ts + delay) (fun () ->
        match !cell with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
        | _ -> ())
  in
  let schedule_erc20_deposit ~ts =
    let user = pick_user rng users in
    let rt = pick_token rng tokens in
    let amount = token_units rt.rt_spec (draw_usd rng) in
    let cell = ref None in
    schedule ts (fun () ->
        advance_to source_chain ts;
        mint_src bridge rt user amount;
        deposit_calls := ts :: !deposit_calls;
        let d =
          Bridge.deposit_erc20 bridge ~user
            ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount ~beneficiary:user
        in
        cell := Some d;
        gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1);
    let delay = eth_finality + relay_jitter () in
    schedule (ts + delay) (fun () ->
        match !cell with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
        | _ -> ())
  in
  let n_native_dep = scaled scale paper#native_deposits in
  let n_erc20_dep = scaled scale paper#erc20_deposits in
  for _ = 1 to n_native_dep - 10 do
    schedule_native_deposit ~ts:(deposit_time ()) ()
  done;
  (* The 10 cross-chain finality violations: native deposits relayed
     66 s after the Ethereum transaction — faster than Ethereum's 78 s
     finality (Section 5.2.1: 0x4688...cdf3 / 0xc299...279d). *)
  for k = 1 to 10 do
    schedule_native_deposit ~relay_delay:(66 + (k mod 3)) ~ts:(deposit_time ()) ();
    gt.gt_deposit_finality_violations <- gt.gt_deposit_finality_violations + 1
  done;
  for _ = 1 to n_erc20_dep do
    schedule_erc20_deposit ~ts:(deposit_time ())
  done;

  (* ---------------- withdrawals ------------------------------------- *)
  let user_procrastination () =
    int_of_float (Prng.log_normal rng ~mu:(log 3600.0) ~sigma:2.0)
  in
  (* Users withdrawing tokens hold Ronin-side balances from pre-window
     deposits: the target bridge mints them their position directly
     (standing in for deposits made before t1, which our window does
     not capture as cctxs because we model only in-window pairs for
     withdrawals that must complete). *)
  let schedule_erc20_withdrawal ?(complete = true) ?(exec_delay = -1) ?(ts = -1)
      ?usd () =
    let user = pick_user rng users in
    let rt = pick_token rng tokens in
    let usd = match usd with Some u -> u | None -> draw_usd rng in
    let amount = token_units rt.rt_spec usd in
    let tw = if ts > 0 then ts else Prng.range rng (t1 + 600) t2 in
    (* Ronin users hold sidechain-earned tokens (e.g. play-to-earn
       rewards): the operator mints the position on T just before the
       request, with no cross-chain deposit involved. *)
    schedule (tw - 60) (fun () ->
        advance_to target_chain (tw - 60);
        ignore
          (Bridge.admin_mint bridge ~dst_token:rt.rt_mapping.Bridge.m_dst_token
             ~to_:user ~amount));
    let beneficiary, balance_eth =
      if complete then (user, 100.0)
      else begin
        let b =
          Address.of_seed
            (Printf.sprintf "ronin:stuck-ben:%d" (Prng.int rng 1_000_000_000))
        in
        let bal =
          let r = Prng.float rng 1.0 in
          if r < 0.513 then 0.0
          else if r < 0.633 then Prng.float rng 0.0011
          else if r < 0.985 then Prng.log_normal rng ~mu:(log 0.03) ~sigma:2.0
          else Prng.float rng 150.0
        in
        (b, bal)
      end
    in
    let wdr_cell = ref None in
    schedule tw (fun () ->
        advance_to target_chain tw;
        withdrawal_calls := tw :: !withdrawal_calls;
        let w =
          Bridge.request_withdrawal bridge ~user
            ~dst_token:rt.rt_mapping.Bridge.m_dst_token ~amount ~beneficiary
        in
        wdr_cell := Some w);
    if complete then begin
      let delay =
        if exec_delay >= 0 then exec_delay
        else ronin_finality + user_procrastination ()
      in
      schedule (tw + delay) (fun () ->
          match !wdr_cell with
          | Some w when w.Bridge.w_withdrawal_id <> None ->
              let r = Bridge.execute_withdrawal ~delay bridge ~withdrawal:w in
              if r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success then begin
                gt.gt_erc20_withdrawals <- gt.gt_erc20_withdrawals + 1;
                if delay < ronin_finality then
                  gt.gt_withdrawal_finality_violations <-
                    gt.gt_withdrawal_finality_violations + 1
              end
              else begin
                incomplete :=
                  {
                    iw_beneficiary = beneficiary;
                    iw_ts = tw;
                    iw_usd = usd;
                    iw_balance_eth =
                      U256.to_tokens ~decimals:18
                        (Chain.native_balance source_chain beneficiary);
                    iw_before_attack = tw < attack;
                  }
                  :: !incomplete;
                gt.gt_incomplete_erc20_withdrawals <-
                  gt.gt_incomplete_erc20_withdrawals + 1
              end
          | _ -> ())
    end
    else
      schedule (tw + 1) (fun () ->
          match !wdr_cell with
          | Some w when w.Bridge.w_withdrawal_id <> None ->
              if balance_eth > 0.0 then
                Chain.fund source_chain beneficiary (eth_to_wei balance_eth);
              incomplete :=
                {
                  iw_beneficiary = beneficiary;
                  iw_ts = tw;
                  iw_usd = usd;
                  iw_balance_eth = balance_eth;
                  iw_before_attack = tw < attack;
                }
                :: !incomplete;
              gt.gt_incomplete_erc20_withdrawals <-
                gt.gt_incomplete_erc20_withdrawals + 1
          | _ -> ())
  in
  let n_wdr = scaled scale paper#erc20_withdrawals in
  let n_incomplete = scaled scale paper#incomplete_withdrawals in
  let n_spike = scaled scale paper#pre_attack_spike in
  (* 22 completed withdrawals violate Ronin's 45 s finality; the
     fastest took 11 s (Section 5.2.1).  Scheduled before the attack so
     the escrow can still release them. *)
  for k = 1 to 22 do
    schedule_erc20_withdrawal ~complete:true
      ~exec_delay:(11 + (k mod 30))
      ~ts:(Prng.range rng (t1 + 600) (attack - 86_400))
      ()
  done;
  for _ = 1 to max 0 (n_wdr - n_incomplete - 22) do
    schedule_erc20_withdrawal ~complete:true ()
  done;
  for _ = 1 to max 0 (n_incomplete - n_spike) do
    schedule_erc20_withdrawal ~complete:false
      ~ts:(Prng.range rng (t1 + 86_400) t2)
      ()
  done;
  (* The 24 hours before the attack: a spike of withdrawal requests
     (the paper measured 468 events trying to move $24.3M). *)
  for _ = 1 to n_spike do
    schedule_erc20_withdrawal ~complete:false
      ~ts:(Prng.range rng (attack - 86_400) attack)
      ~usd:(Prng.pareto rng ~x_min:15_000.0 ~alpha:1.3)
      ()
  done;

  (* ---------------- pre-window false positives ---------------------- *)
  (* Withdrawals requested on Ronin before t1 (outside the captured
     data) execute on Ethereum inside the window: rule 7 captures them,
     rule 8 cannot match them.  The withdrawal-id counter identifies
     them as pre-window (Section 5.2.5). *)
  for k = 0 to n_pre - 1 do
    let rt = pick_token rng tokens in
    let usd = Float.min (draw_usd rng) 200_000.0 in
    let amount = token_units rt.rt_spec usd in
    let user = pick_user rng users in
    let texec = Prng.range rng (t1 + 3600) (attack - 86_400) in
    schedule texec (fun () ->
        advance_to source_chain texec;
        let w =
          Bridge.attest_pre_window_withdrawal bridge ~withdrawal_id:k
            ~beneficiary:user ~src_token:rt.rt_mapping.Bridge.m_src_token
            ~amount
            ~observed_ts:(t1 - Prng.range rng 86_400 (45 * 86_400))
        in
        let r = Bridge.execute_withdrawal ~delay:0 bridge ~withdrawal:w in
        if r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success then
          gt.gt_pre_window_fps <- gt.gt_pre_window_fps + 1)
  done;

  (* ---------------- injected anomalies (exact counts) --------------- *)
  (* 3 phishing + 80 direct transfers to the bridge ($113K, Findings
     1-2). *)
  for k = 1 to 3 do
    let ts = deposit_time () in
    schedule ts (fun () ->
        advance_to source_chain ts;
        let attacker = Address.of_seed (Printf.sprintf "ronin:phisher:%d" k) in
        Chain.fund source_chain attacker (eth_to_wei 1.0);
        let fake =
          Erc20.deploy source_chain ~from_:attacker ~name:"Axie Infinity Shard"
            ~symbol:"AXS" ~decimals:18 ~owner:attacker
        in
        ignore
          (Chain.submit_tx source_chain ~from_:attacker ~to_:fake
             ~input:
               (Erc20.mint_calldata ~to_:attacker
                  ~amount:(U256.of_tokens ~decimals:18 1_000_000))
             ());
        ignore
          (Bridge.direct_token_transfer_to_bridge bridge ~user:attacker
             ~src_token:fake ~amount:(U256.of_tokens ~decimals:18 999_999));
        gt.gt_phishing_transfers <- gt.gt_phishing_transfers + 1)
  done;
  for _ = 1 to 80 do
    let ts = deposit_time () in
    schedule ts (fun () ->
        advance_to source_chain ts;
        let user = pick_user rng users in
        let rt = pick_token rng tokens in
        let usd = 113_000.0 /. 80.0 *. (0.5 +. Prng.float rng 1.0) in
        let amount = token_units rt.rt_spec usd in
        mint_src bridge rt user amount;
        ignore
          (Bridge.direct_token_transfer_to_bridge bridge ~user
             ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount);
        gt.gt_direct_transfers <- gt.gt_direct_transfers + 1;
        gt.gt_direct_transfer_usd <- gt.gt_direct_transfer_usd +. usd)
  done;
  (* 1 phishing transfer OUT of a bridge address (Section 5.1.4): a
     fake token fabricates a Transfer event from the bridge. *)
  (let ts = deposit_time () in
   schedule ts (fun () ->
       advance_to source_chain ts;
       let attacker = Address.of_seed "ronin:outbound-phisher" in
       Chain.fund source_chain attacker (eth_to_wei 1.0);
       let bridge_addr = bridge.Bridge.source.Bridge.bridge_addr in
       let fake_emitter =
         Chain.deploy source_chain ~from_:attacker ~label:"fake-transfer-emitter"
           (fun env ->
             env.Xcw_chain.Chain.emit Erc20.transfer_event
               [
                 Xcw_abi.Abi.Value.Address bridge_addr;
                 Xcw_abi.Abi.Value.Address attacker;
                 Xcw_abi.Abi.Value.Uint (U256.of_tokens ~decimals:18 500_000);
               ])
       in
       ignore (Chain.submit_tx source_chain ~from_:attacker ~to_:fake_emitter ~input:"x" ());
       gt.gt_transfer_from_bridge <- gt.gt_transfer_from_bridge + 1));
  (* 2 unmapped-token Withdraw events on Ronin: the bridge emits the
     event but moves nothing (Section 5.1.3). *)
  for k = 1 to 2 do
    let ts = deposit_time () in
    schedule ts (fun () ->
        advance_to target_chain ts;
        let user = pick_user rng users in
        let rogue =
          Erc20.deploy target_chain ~from_:user
            ~name:(Printf.sprintf "Rogue Token %d" k)
            ~symbol:"RGE" ~decimals:18 ~owner:user
        in
        withdrawal_calls := ts :: !withdrawal_calls;
        let w =
          Bridge.request_withdrawal ~attest:false bridge ~user ~dst_token:rogue
            ~amount:(U256.of_tokens ~decimals:18 1_000)
            ~beneficiary:user
        in
        assert (w.Bridge.w_receipt.Xcw_evm.Types.r_status = Xcw_evm.Types.Success);
        gt.gt_withdrawal_mapping_violations <- gt.gt_withdrawal_mapping_violations + 1)
  done;

  (* ---------------- the attack (Mar 22, 2022) ----------------------- *)
  schedule attack (fun () ->
      advance_to source_chain attack;
      (* Five of nine validator keys compromised. *)
      Bridge.compromise_validators bridge ~keys:5;
      let attacker = Address.of_seed "ronin:attacker" in
      Chain.fund source_chain attacker (eth_to_wei 10.0);
      gt.gt_attack_deployer_eoas <- 1;
      gt.gt_attack_beneficiaries <- 1;
      gt.gt_attack_withdrawal_ids <- 2;
      (* Two transactions drain the two deepest escrows (173,600 ETH
         and 25.5M USDC in the real attack). *)
      let src_chain = bridge.Bridge.source.Bridge.chain in
      let bridge_addr = bridge.Bridge.source.Bridge.bridge_addr in
      let by_escrow =
        List.map
          (fun rt ->
            let bal =
              Erc20.balance_of src_chain rt.rt_mapping.Bridge.m_src_token
                bridge_addr
            in
            (rt, bal))
          tokens
        |> List.filter (fun (_, b) -> not (U256.is_zero b))
        |> List.sort (fun (_, a) (_, b) -> U256.compare b a)
      in
      List.iteri
        (fun k (rt, bal) ->
          if k < 2 then begin
            advance_to source_chain (attack + (k * 120));
            let r =
              Bridge.forged_withdrawal bridge ~attacker
                ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount:bal
                ~withdrawal_id:(2_000_000 + k)
            in
            assert (r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success);
            gt.gt_attack_events <- gt.gt_attack_events + 1;
            gt.gt_attack_usd <-
              gt.gt_attack_usd
              +. U256.to_tokens ~decimals:rt.rt_spec.ts_decimals bal
                 *. rt.rt_spec.ts_usd
          end)
        by_escrow);

  run_schedule (List.rev !actions);
  {
    bridge;
    config;
    pricing;
    tokens;
    window;
    attack_time = attack;
    discovery_time = discovery;
    ground_truth = gt;
    first_window_withdrawal_id = Some first_window_wid;
    incomplete_withdrawals = !incomplete;
    deposit_call_times = !deposit_calls;
    withdrawal_call_times = !withdrawal_calls;
  }
