(** A configurable benign-traffic scenario generator: protocol-clean
    traffic on an arbitrary bridge configuration.  Backs the detector's
    soundness property tests (benign traffic must produce zero
    anomalies for any seed/volume/model) and serves as a template for
    modelling new bridges. *)

module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events

type spec = {
  g_seed : int;
  g_label : string;
  g_acceptance : [ `Multisig | `Optimistic ];
  g_escrow : Bridge.escrow_model;
  g_beneficiary_repr : Events.beneficiary_repr;
  g_source_finality : int;
  g_target_finality : int;
  g_n_users : int;
  g_n_tokens : int;
      (** must be within [1 .. length Scenario.default_tokens];
          {!build} raises [Invalid_argument] otherwise *)
  g_erc20_deposits : int;
  g_native_deposits : int;
  g_withdrawals : int;  (** complete deposit + withdrawal round-trips *)
  g_via_aggregator : int;  (** deposits routed through an aggregator *)
  g_genesis : int;
  g_duration : int;  (** seconds of simulated activity *)
}

val default_spec : spec
(** Multisig lock-unlock bridge, 30 ERC-20 + 10 native deposits, 10
    round-trips, 5 aggregator deposits over 30 days. *)

val build : spec -> Scenario.built
(** The returned ground truth carries only benign counters; no
    anomalies are injected. *)
