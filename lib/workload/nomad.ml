(** The Nomad bridge scenario (Ethereum <-> Moonbeam), calibrated to the
    paper's evaluation:

    - optimistic acceptance with a 30-minute fraud-proof window,
      bytes32 beneficiary fields, lock-mint escrow;
    - benign traffic sized by [scale] x the paper's captured-record
      counts (Table 3): 7,187 native + 4,223 ERC-20 deposits, 464
      native + 4,846 ERC-20 withdrawal requests;
    - every documented anomaly class injected with the paper's EXACT
      counts: 14 phishing + 25 direct transfers (~$93.86K), 3
      unparseable beneficiaries, 7 failed exploit attempts, 5
      fraud-proof-window violations (fastest 87 s), 1 right-padded
      deposit (10 DAI), 7 fake-mapping deposits on Moonbeam and 2
      fake-mapping withdrawals, 729·scale incomplete withdrawals, and
      the August 2, 2022 attack: 382 forged-withdrawal events from 279
      bulk-deployed contracts traced to 45 deployer EOAs. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Abi = Xcw_abi.Abi
module Prng = Xcw_util.Prng
module Config = Xcw_core.Config
open Scenario

let fraud_proof_window = 1800

(* Paper-calibrated counts (Table 3, Nomad column). *)
let paper = object
  method native_deposits = 7187
  method erc20_deposits = 4223
  method native_withdrawals = 464
  method erc20_withdrawals = 4846
  method incomplete_native_withdrawals = 238
  method incomplete_erc20_withdrawals = 491
  method spike_withdrawals = 313 (* in the 24h before the attack *)
  method post_attack_withdrawals = 188
end

let build ?(seed = 42) ?(scale = 0.05) () : built =
  let rng = Prng.create seed in
  let tf = Timeframes.nomad in
  let window = (tf.Timeframes.t1, tf.Timeframes.t2) in
  let attack = tf.Timeframes.attack in
  let source_chain =
    (* cctx_finality on the Ethereum side of Nomad is the fraud-proof
       window itself (paper Section 4.2.3). *)
    Chain.create ~chain_id:1 ~name:"ethereum" ~finality_seconds:fraud_proof_window
      ~genesis_time:tf.Timeframes.t1
  in
  let target_chain =
    Chain.create ~chain_id:1284 ~name:"moonbeam"
      ~finality_seconds:fraud_proof_window ~genesis_time:tf.Timeframes.t1
  in
  let bridge =
    Bridge.create
      {
        Bridge.s_label = "nomad";
        s_source_chain = source_chain;
        s_target_chain = target_chain;
        s_escrow = Bridge.Lock_unlock;
        s_acceptance =
          Bridge.Optimistic
            {
              fraud_proof_window;
              (* The contract-side enforcement bug behind Finding 4. *)
              enforce_window = false;
              proof_check_broken = false;
            };
        s_beneficiary_repr = Events.B_bytes32;
        s_buggy_unmapped_withdrawal = false;
      }
  in
  let tokens =
    List.map
      (fun spec ->
        {
          rt_spec = spec;
          rt_mapping =
            Bridge.register_token_pair bridge ~name:spec.ts_name
              ~symbol:spec.ts_symbol ~decimals:spec.ts_decimals;
        })
      default_tokens
  in
  ignore (Bridge.register_native_mapping bridge);
  (* GLMR on Moonbeam <-> WGLMR on Ethereum: enables native withdrawals. *)
  let glmr_mapping =
    Bridge.register_target_native_mapping
      ~liquidity:(U256.of_tokens ~decimals:18 500_000_000)
      bridge ~name:"Wrapped GLMR" ~symbol:"WGLMR"
  in
  (* Snapshot the verified configuration BEFORE any fake mappings are
     registered: XChainWatcher's token_mapping facts contain only the
     legitimate pairs. *)
  let config = Config.of_bridge bridge in
  let pricing = build_pricing bridge tokens in
  Xcw_core.Pricing.register pricing
    ~chain_id:source_chain.Chain.chain_id
    ~token:(Address.to_hex glmr_mapping.Bridge.m_src_token)
    ~usd_per_token:2.5 ~decimals:18;
  (* Bridge deposits accumulated before our collection window back the
     escrow the August attack drained (~$159M); model them as operator
     liquidity seeding, sized so the simulated theft matches the
     paper's total. *)
  List.iter
    (fun rt ->
      let big = token_units rt.rt_spec 26_800_000.0 in
      ignore
        (Chain.submit_tx source_chain ~from_:bridge.Bridge.source.Bridge.operator
           ~to_:rt.rt_mapping.Bridge.m_src_token
           ~input:
             (Erc20.mint_calldata ~to_:bridge.Bridge.source.Bridge.bridge_addr
                ~amount:big)
           ()))
    tokens;
  let gt = new_ground_truth () in
  let users = make_users bridge rng ~label:"nomad" ~count:400 ~native_eth:50.0 in
  let t1, _t2 = window in
  let actions = ref [] in
  let schedule at run = actions := { at; run } :: !actions in
  let incomplete = ref [] in
  let deposit_calls = ref [] and withdrawal_calls = ref [] in

  (* ---------------- benign deposits --------------------------------- *)
  let relay_jitter () =
    min 600 (int_of_float (Prng.exponential rng ~mean:120.0))
  in
  let deposit_time () = Prng.range rng t1 attack in
  let schedule_erc20_deposit ?(padding = `Left) ~ts ?(relay_delay = -1) ?beneficiary
      () =
    let user = pick_user rng users in
    let beneficiary = Option.value beneficiary ~default:user in
    let rt = pick_token rng tokens in
    let amount = token_units rt.rt_spec (draw_usd rng) in
    let cell = ref None in
    schedule ts (fun () ->
        advance_to source_chain ts;
        mint_src bridge rt user amount;
        deposit_calls := ts :: !deposit_calls;
        let d =
          Bridge.deposit_erc20 ~beneficiary_padding:padding bridge ~user
            ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount ~beneficiary
        in
        cell := Some d;
        gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1);
    let delay =
      if relay_delay >= 0 then relay_delay
      else fraud_proof_window + relay_jitter ()
    in
    schedule (ts + delay) (fun () ->
        match !cell with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
        | _ -> ());
    (cell, rt, amount, delay)
  in
  let schedule_native_deposit ~ts =
    let user = pick_user rng users in
    let usd = Float.min (draw_usd rng) 500_000.0 in
    let amount = eth_to_wei (usd /. 2500.0) in
    let cell = ref None in
    schedule ts (fun () ->
        advance_to source_chain ts;
        Chain.fund source_chain user amount;
        deposit_calls := ts :: !deposit_calls;
        let d = Bridge.deposit_native bridge ~user ~amount ~beneficiary:user in
        cell := Some d;
        gt.gt_native_deposits <- gt.gt_native_deposits + 1);
    let delay = fraud_proof_window + relay_jitter () in
    schedule (ts + delay) (fun () ->
        match !cell with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
        | _ -> ())
  in
  let n_native_dep = scaled scale paper#native_deposits in
  let n_erc20_dep = scaled scale paper#erc20_deposits in
  for _ = 1 to n_native_dep do
    schedule_native_deposit ~ts:(deposit_time ())
  done;
  (* ERC-20 withdrawals need prior deposits; reserve that many deposit
     slots to feed them. *)
  let n_erc20_wdr = scaled scale paper#erc20_withdrawals in
  let n_incomplete_erc20 = scaled scale paper#incomplete_erc20_withdrawals in
  let n_pure_erc20_dep = max 0 (n_erc20_dep - n_erc20_wdr) in
  for _ = 1 to n_pure_erc20_dep do
    ignore (schedule_erc20_deposit ~ts:(deposit_time ()) ())
  done;

  (* ---------------- withdrawals ------------------------------------- *)
  (* A withdrawal flow: deposit at td, request on T at tw, optionally
     execute on S at tx.  The user must pay Ethereum gas to execute —
     incomplete withdrawals model users who never do (Finding 7). *)
  let user_procrastination () =
    int_of_float (Prng.log_normal rng ~mu:(log 7200.0) ~sigma:1.6)
  in
  let schedule_erc20_withdrawal ?(complete = true) ?(beneficiary_padding = `Left)
      ?(ts = 0) ?usd () =
    let user = pick_user rng users in
    let rt = pick_token rng tokens in
    let usd = match usd with Some u -> u | None -> draw_usd rng in
    let amount = token_units rt.rt_spec usd in
    let td = if ts > 0 then max t1 (ts - 2 * fraud_proof_window - 3600) else deposit_time () in
    let tw = if ts > 0 then ts else td + fraud_proof_window + 3600 + Prng.int rng 86_400 in
    let dep_cell = ref None in
    schedule td (fun () ->
        advance_to source_chain td;
        mint_src bridge rt user amount;
        deposit_calls := td :: !deposit_calls;
        let d =
          Bridge.deposit_erc20 bridge ~user
            ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount ~beneficiary:user
        in
        dep_cell := Some d;
        gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1);
    let relay_delay = fraud_proof_window + relay_jitter () in
    schedule (td + relay_delay) (fun () ->
        match !dep_cell with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore
              (Bridge.complete_deposit bridge ~override_delay:relay_delay ~deposit:d)
        | _ -> ());
    (* Completed withdrawals return funds to the requesting user;
       incomplete ones target FRESH beneficiary addresses — most have
       little or no ETH on Ethereum to pay execution gas (Finding 7),
       with balances following the Table 5 / Figure 8 distribution. *)
    let beneficiary, balance_eth =
      if complete then (user, 50.0)
      else begin
        let b =
          Address.of_seed
            (Printf.sprintf "nomad:stuck-ben:%d" (Prng.int rng 1_000_000_000))
        in
        let bal =
          let r = Prng.float rng 1.0 in
          if r < 0.166 then 0.0
          else if r < 0.316 then Prng.float rng 0.0011
          else if r < 0.97 then Prng.log_normal rng ~mu:(log 0.05) ~sigma:2.0
          else Prng.float rng 200.0
        in
        (b, bal)
      end
    in
    let wdr_cell = ref None in
    schedule tw (fun () ->
        advance_to target_chain tw;
        withdrawal_calls := tw :: !withdrawal_calls;
        let w =
          Bridge.request_withdrawal ~beneficiary_padding bridge ~user
            ~dst_token:rt.rt_mapping.Bridge.m_dst_token ~amount ~beneficiary
        in
        wdr_cell := Some w);
    if complete then begin
      let exec_delay = fraud_proof_window + user_procrastination () in
      schedule (tw + exec_delay) (fun () ->
          match !wdr_cell with
          | Some w when w.Bridge.w_withdrawal_id <> None ->
              let r = Bridge.execute_withdrawal ~delay:exec_delay bridge ~withdrawal:w in
              if r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success then
                gt.gt_erc20_withdrawals <- gt.gt_erc20_withdrawals + 1
              else begin
                (* Escrow drained by the attack before this user got
                   around to executing: the withdrawal never completes. *)
                incomplete :=
                  {
                    iw_beneficiary = user;
                    iw_ts = tw;
                    iw_usd = usd;
                    iw_balance_eth =
                      U256.to_tokens ~decimals:18
                        (Chain.native_balance source_chain user);
                    iw_before_attack = tw < attack;
                  }
                  :: !incomplete;
                gt.gt_incomplete_erc20_withdrawals <-
                  gt.gt_incomplete_erc20_withdrawals + 1
              end
          | _ -> ())
    end
    else
      schedule (tw + 1) (fun () ->
          match !wdr_cell with
          | Some w when w.Bridge.w_withdrawal_id <> None ->
              if balance_eth > 0.0 then
                Chain.fund source_chain beneficiary (eth_to_wei balance_eth);
              incomplete :=
                {
                  iw_beneficiary = beneficiary;
                  iw_ts = tw;
                  iw_usd = usd;
                  iw_balance_eth = balance_eth;
                  iw_before_attack = tw < attack;
                }
                :: !incomplete;
              gt.gt_incomplete_erc20_withdrawals <-
                gt.gt_incomplete_erc20_withdrawals + 1
          | _ -> ())
  in
  let schedule_native_withdrawal ?(complete = true) () =
    let user = pick_user rng users in
    let usd = Float.min (draw_usd rng) 100_000.0 in
    let amount = eth_to_wei (usd /. 2.5) in
    let tw = Prng.range rng t1 attack in
    let beneficiary, balance_eth =
      if complete then (user, 50.0)
      else begin
        let b =
          Address.of_seed
            (Printf.sprintf "nomad:stuck-native-ben:%d" (Prng.int rng 1_000_000_000))
        in
        let bal =
          let r = Prng.float rng 1.0 in
          if r < 0.166 then 0.0
          else if r < 0.316 then Prng.float rng 0.0011
          else Prng.log_normal rng ~mu:(log 0.05) ~sigma:2.0
        in
        (b, bal)
      end
    in
    let cell = ref None in
    schedule tw (fun () ->
        advance_to target_chain tw;
        Chain.fund target_chain user amount;
        withdrawal_calls := tw :: !withdrawal_calls;
        let w = Bridge.request_withdrawal_native bridge ~user ~amount ~beneficiary in
        cell := Some w;
        gt.gt_native_withdrawals <- gt.gt_native_withdrawals + 1);
    if complete then begin
      let exec_delay = fraud_proof_window + user_procrastination () in
      schedule (tw + exec_delay) (fun () ->
          match !cell with
          | Some w when w.Bridge.w_withdrawal_id <> None ->
              ignore (Bridge.execute_withdrawal ~delay:exec_delay bridge ~withdrawal:w)
          | _ -> ())
    end
    else
      schedule (tw + 1) (fun () ->
          match !cell with
          | Some w when w.Bridge.w_withdrawal_id <> None ->
              if balance_eth > 0.0 then
                Chain.fund source_chain beneficiary (eth_to_wei balance_eth);
              incomplete :=
                {
                  iw_beneficiary = beneficiary;
                  iw_ts = tw;
                  iw_usd = usd;
                  iw_balance_eth = balance_eth;
                  iw_before_attack = tw < attack;
                }
                :: !incomplete;
              gt.gt_incomplete_native_withdrawals <-
                gt.gt_incomplete_native_withdrawals + 1
          | _ -> ())
  in
  let n_native_wdr = scaled scale paper#native_withdrawals in
  let n_incomplete_native = scaled scale paper#incomplete_native_withdrawals in
  for _ = 1 to max 0 (n_native_wdr - n_incomplete_native) do
    schedule_native_withdrawal ~complete:true ()
  done;
  for _ = 1 to n_incomplete_native do
    schedule_native_withdrawal ~complete:false ()
  done;
  (* Complete ERC-20 withdrawals (minus the special ones injected
     below). *)
  for _ = 1 to max 0 (n_erc20_wdr - n_incomplete_erc20 - 3) do
    schedule_erc20_withdrawal ~complete:true ()
  done;
  (* Incomplete withdrawals: a baseline throughout the window plus the
     pre-attack spike (313 events moving $24.7M in 24 hours) and the
     post-attack tail. *)
  let n_spike = scaled scale paper#spike_withdrawals in
  let n_post = scaled scale paper#post_attack_withdrawals in
  let n_baseline = max 0 (n_incomplete_erc20 - n_spike - n_post) in
  for _ = 1 to n_baseline do
    schedule_erc20_withdrawal ~complete:false ~ts:(Prng.range rng (t1 + 86400) (attack - 86_400)) ()
  done;
  for _ = 1 to n_spike do
    schedule_erc20_withdrawal ~complete:false
      ~ts:(Prng.range rng (attack - 86_400) attack)
      ~usd:(Prng.pareto rng ~x_min:20_000.0 ~alpha:1.3)
      ()
  done;
  for _ = 1 to n_post do
    schedule_erc20_withdrawal ~complete:false
      ~ts:(Prng.range rng (attack + 3600) (attack + (14 * 86_400)))
      ()
  done;

  (* ---------------- injected anomalies (exact counts) --------------- *)
  (* 14 phishing-token transfers to the bridge (Finding 1). *)
  for k = 1 to 14 do
    let ts = deposit_time () in
    schedule ts (fun () ->
        advance_to source_chain ts;
        let attacker = Address.of_seed (Printf.sprintf "nomad:phisher:%d" k) in
        Chain.fund source_chain attacker (eth_to_wei 1.0);
        let fake =
          Erc20.deploy source_chain ~from_:attacker ~name:"USD Coin"
            ~symbol:"USDC" ~decimals:6 ~owner:attacker
        in
        ignore
          (Chain.submit_tx source_chain ~from_:attacker ~to_:fake
             ~input:(Erc20.mint_calldata ~to_:attacker ~amount:(U256.of_int 1_000_000_000))
             ());
        ignore
          (Bridge.direct_token_transfer_to_bridge bridge ~user:attacker
             ~src_token:fake ~amount:(U256.of_int 999_000_000));
        gt.gt_phishing_transfers <- gt.gt_phishing_transfers + 1)
  done;
  (* 25 direct transfers of reputable tokens, ~$93.86K total (Finding 2). *)
  for _ = 1 to 25 do
    let ts = deposit_time () in
    schedule ts (fun () ->
        advance_to source_chain ts;
        let user = pick_user rng users in
        let rt = pick_token rng tokens in
        let usd = 93_860.0 /. 25.0 *. (0.5 +. Prng.float rng 1.0) in
        let amount = token_units rt.rt_spec usd in
        mint_src bridge rt user amount;
        ignore
          (Bridge.direct_token_transfer_to_bridge bridge ~user
             ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount);
        gt.gt_direct_transfers <- gt.gt_direct_transfers + 1;
        gt.gt_direct_transfer_usd <- gt.gt_direct_transfer_usd +. usd)
  done;
  (* 2 phishing transfers OUT of the bridge (Section 5.1.4): fake
     tokens fabricate Transfer events with the bridge as sender. *)
  for k = 1 to 2 do
    let ts = deposit_time () in
    schedule ts (fun () ->
        advance_to source_chain ts;
        let attacker =
          Address.of_seed (Printf.sprintf "nomad:outbound-phisher:%d" k)
        in
        Chain.fund source_chain attacker (eth_to_wei 1.0);
        let bridge_addr = bridge.Bridge.source.Bridge.bridge_addr in
        let fake_emitter =
          Chain.deploy source_chain ~from_:attacker
            ~label:(Printf.sprintf "fake-transfer-emitter-%d" k) (fun env ->
              env.Chain.emit Erc20.transfer_event
                [
                  Abi.Value.Address bridge_addr;
                  Abi.Value.Address attacker;
                  Abi.Value.Uint (U256.of_tokens ~decimals:18 250_000);
                ])
        in
        ignore
          (Chain.submit_tx source_chain ~from_:attacker ~to_:fake_emitter
             ~input:"x" ());
        gt.gt_transfer_from_bridge <- gt.gt_transfer_from_bridge + 1)
  done;
  (* A salami-slicing pattern (Section 6 future work): one sender
     splits ~$27K of DAI into 30 sub-$1K deposits.  Every deposit is a
     VALID cctx — only the aggregate scan (Analysis.salami_candidates)
     reveals the pattern. *)
  (let slicer = Address.of_seed "nomad:salami-slicer" in
   Chain.fund source_chain slicer (eth_to_wei 10.0);
   Chain.fund target_chain slicer (eth_to_wei 10.0);
   let dai = List.nth tokens 2 in
   let base = Prng.range rng (t1 + (10 * 86_400)) (attack - (30 * 86_400)) in
   for k = 1 to 30 do
     let ts = base + (k * 3600) in
     let amount = token_units dai.rt_spec (850.0 +. Prng.float rng 100.0) in
     let cell = ref None in
     schedule ts (fun () ->
         advance_to source_chain ts;
         mint_src bridge dai slicer amount;
         deposit_calls := ts :: !deposit_calls;
         let d =
           Bridge.deposit_erc20 bridge ~user:slicer
             ~src_token:dai.rt_mapping.Bridge.m_src_token ~amount
             ~beneficiary:slicer
         in
         cell := Some d;
         gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1);
     let delay = fraud_proof_window + relay_jitter () in
     schedule (ts + delay) (fun () ->
         match !cell with
         | Some d when d.Bridge.d_deposit_id <> None ->
             ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
         | _ -> ())
   done);
  (* 5 fraud-proof-window violations; the fastest relay took 87 s
     (Figure 6). *)
  List.iteri
    (fun k delay ->
      let ts = Prng.range rng (t1 + 86_400) (attack - 86_400) in
      ignore (schedule_erc20_deposit ~ts ~relay_delay:delay ());
      ignore k;
      gt.gt_deposit_finality_violations <- gt.gt_deposit_finality_violations + 1)
    [ 87; 132; 418; 760; 1495 ];
  (* 1 right-padded deposit beneficiary: 10 DAI (Section 5.2.2). *)
  (let ts = Prng.range rng (t1 + 86_400) (attack - 86_400) in
   let user = pick_user rng users in
   let dai = List.nth tokens 2 in
   let amount = token_units dai.rt_spec 10.0 in
   let cell = ref None in
   schedule ts (fun () ->
       advance_to source_chain ts;
       mint_src bridge dai user amount;
       deposit_calls := ts :: !deposit_calls;
       let d =
         Bridge.deposit_erc20 ~beneficiary_padding:`Right bridge ~user
           ~src_token:dai.rt_mapping.Bridge.m_src_token ~amount ~beneficiary:user
       in
       cell := Some d;
       gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1;
       gt.gt_invalid_beneficiary_deposits <- gt.gt_invalid_beneficiary_deposits + 1);
   let delay = fraud_proof_window + relay_jitter () in
   schedule (ts + delay) (fun () ->
       match !cell with
       | Some d when d.Bridge.d_deposit_id <> None ->
           ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
       | _ -> ()));
  (* 3 unparseable 32-byte beneficiaries in withdrawal requests; the
     bridge extracted the low 20 bytes and paid an address nobody
     controls (Sections 5.1.3 and 5.2.2). *)
  for k = 1 to 3 do
    let rt = pick_token rng tokens in
    let usd = draw_usd rng in
    let amount = token_units rt.rt_spec usd in
    let user = pick_user rng users in
    let td = Prng.range rng (t1 + 86_400) (attack - (10 * 86_400)) in
    let tw = td + fraud_proof_window + 7200 in
    let dep_cell = ref None and wdr_cell = ref None in
    schedule td (fun () ->
        advance_to source_chain td;
        mint_src bridge rt user amount;
        deposit_calls := td :: !deposit_calls;
        let d =
          Bridge.deposit_erc20 bridge ~user
            ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount ~beneficiary:user
        in
        dep_cell := Some d;
        gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1);
    let relay_delay = fraud_proof_window + relay_jitter () in
    schedule (td + relay_delay) (fun () ->
        match !dep_cell with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore (Bridge.complete_deposit bridge ~override_delay:relay_delay ~deposit:d)
        | _ -> ());
    schedule tw (fun () ->
        advance_to target_chain tw;
        withdrawal_calls := tw :: !withdrawal_calls;
        let w =
          Bridge.request_withdrawal
            ~beneficiary_padding:(`Garbage (Printf.sprintf "nomad:%d" k))
            bridge ~user ~dst_token:rt.rt_mapping.Bridge.m_dst_token ~amount
            ~beneficiary:user
        in
        wdr_cell := Some w;
        gt.gt_unparseable_beneficiaries <- gt.gt_unparseable_beneficiaries + 1);
    let exec_delay = fraud_proof_window + 3600 in
    schedule (tw + exec_delay) (fun () ->
        match !wdr_cell with
        | Some w when w.Bridge.w_withdrawal_id <> None ->
            ignore (Bridge.execute_withdrawal ~delay:exec_delay bridge ~withdrawal:w)
        | _ -> ())
  done;
  (* 7 failed exploit attempts from a single address: withdrawal
     requests naming fake or unmapped tokens, all reverting
     (Section 5.1.3). *)
  (let exploiter = Address.of_seed "nomad:exploiter" in
   Chain.fund target_chain exploiter (eth_to_wei 5.0);
   let base = Prng.range rng (t1 + (30 * 86_400)) (attack - (30 * 86_400)) in
   for k = 1 to 7 do
     let ts = base + (k * 600) in
     schedule ts (fun () ->
         advance_to target_chain ts;
         (* Deploy a fresh fake token (e.g. "Wrapped ETH") and try to
            withdraw real funds through it. *)
         let fake =
           Erc20.deploy target_chain ~from_:exploiter ~name:"Wrapped ETH"
             ~symbol:"WETH" ~decimals:18 ~owner:exploiter
         in
         let input =
           Bridge.sel_request_withdrawal
           ^ Abi.encode
               [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.bytes32 ]
               [
                 Abi.Value.Address fake;
                 Abi.Value.Uint (U256.of_tokens ~decimals:18 100);
                 Abi.Value.Fixed_bytes
                   (String.make 12 '\000' ^ Address.to_bytes exploiter);
               ]
         in
         let r =
           Chain.submit_tx target_chain ~from_:exploiter
             ~to_:bridge.Bridge.target.Bridge.bridge_addr ~input ()
         in
         assert (r.Xcw_evm.Types.r_status = Xcw_evm.Types.Reverted);
         gt.gt_failed_exploits <- gt.gt_failed_exploits + 1)
   done);
  (* Finding 6: the operator registers fake/duplicate mappings (e.g. a
     second WRAPPED GLMR) and relays 7 deposits on Moonbeam with no
     Ethereum counterpart; 2 of those positions are later withdrawn
     back to Ethereum. *)
  (let ts0 = Prng.range rng (t1 + (60 * 86_400)) (attack - (20 * 86_400)) in
   let fake_rt = ref None in
   let fake_wdr_users = ref [] in
   schedule ts0 (fun () ->
       advance_to source_chain ts0;
       advance_to target_chain ts0;
       let op = bridge.Bridge.source.Bridge.operator in
       (* A duplicate "WRAPPED GLMR" on Ethereum, plus its fresh
          Moonbeam representation minted by the bridge. *)
       let fake_src =
         Erc20.deploy source_chain ~from_:op ~name:"WRAPPED GLMR"
           ~symbol:"WGLMR" ~decimals:18 ~owner:op
       in
       (* Seed S-side liquidity so later withdrawals can be released. *)
       ignore
         (Chain.submit_tx source_chain ~from_:op ~to_:fake_src
            ~input:
              (Erc20.mint_calldata ~to_:bridge.Bridge.source.Bridge.bridge_addr
                 ~amount:(U256.of_tokens ~decimals:18 1_000_000))
            ());
       let fake_dst =
         Erc20.deploy target_chain ~from_:bridge.Bridge.target.Bridge.operator
           ~name:"WRAPPED GLMR" ~symbol:"WGLMR" ~decimals:18
           ~owner:bridge.Bridge.target.Bridge.bridge_addr
       in
       ignore (Bridge.register_raw_mapping bridge ~src_token:fake_src ~dst_token:fake_dst);
       fake_rt := Some (fake_src, fake_dst));
   for k = 1 to 7 do
     let ts = ts0 + (k * 3600) in
     schedule ts (fun () ->
         advance_to target_chain ts;
         match !fake_rt with
         | Some (_, fake_dst) ->
             let user = pick_user rng users in
             ignore
               (Bridge.relay_fake_deposit bridge ~beneficiary:user
                  ~dst_token:fake_dst
                  ~amount:(U256.of_tokens ~decimals:18 (100 * k))
                  ~deposit_id:(900_000 + k));
             gt.gt_deposit_mapping_violations <- gt.gt_deposit_mapping_violations + 1;
             if k <= 2 then fake_wdr_users := user :: !fake_wdr_users
         | None -> ())
   done;
   (* The 2 fake-mapping withdrawals back to Ethereum. *)
   for k = 1 to 2 do
     let tw = ts0 + (10 * 3600) + (k * 3600) in
     let wdr_cell = ref None in
     schedule tw (fun () ->
         advance_to target_chain tw;
         match !fake_rt with
         | Some (_, fake_dst) ->
             let user = List.nth !fake_wdr_users (k - 1) in
             withdrawal_calls := tw :: !withdrawal_calls;
             let w =
               Bridge.request_withdrawal bridge ~user ~dst_token:fake_dst
                 ~amount:(U256.of_tokens ~decimals:18 (50 * k))
                 ~beneficiary:user
             in
             wdr_cell := Some w;
             gt.gt_withdrawal_mapping_violations <-
               gt.gt_withdrawal_mapping_violations + 1
         | None -> ());
     schedule (tw + fraud_proof_window + 3600) (fun () ->
         match !wdr_cell with
         | Some w when w.Bridge.w_withdrawal_id <> None ->
             ignore
               (Bridge.execute_withdrawal
                  ~delay:(fraud_proof_window + 3600)
                  bridge ~withdrawal:w)
         | _ -> ())
   done);
  (* ---------------- the attack (Aug 2, 2022) ------------------------ *)
  schedule attack (fun () ->
      advance_to source_chain attack;
      Bridge.break_proof_check bridge;
      (* 45 deployer EOAs bulk-deploy 279 receiving contracts. *)
      let eoas =
        Array.init 45 (fun i ->
            let a = Address.of_seed (Printf.sprintf "nomad:attacker-eoa:%d" i) in
            Chain.fund source_chain a (eth_to_wei 10.0);
            a)
      in
      let contracts =
        Array.init 279 (fun i ->
            let deployer = eoas.(i mod 45) in
            Chain.deploy source_chain ~from_:deployer
              ~label:(Printf.sprintf "exploit-sink-%d" i) (fun _ -> ()))
      in
      gt.gt_attack_deployer_eoas <- 45;
      gt.gt_attack_beneficiaries <- 279;
      gt.gt_attack_withdrawal_ids <- 14;
      (* 382 copy-paste withdrawal executions draining the escrow. *)
      let src_chain = bridge.Bridge.source.Bridge.chain in
      let bridge_addr = bridge.Bridge.source.Bridge.bridge_addr in
      let per_token =
        List.map
          (fun rt ->
            ( rt,
              Erc20.balance_of src_chain rt.rt_mapping.Bridge.m_src_token
                bridge_addr ))
          tokens
        |> List.filter (fun (_, bal) -> not (U256.is_zero bal))
      in
      let events_per_token =
        let n_tokens = max 1 (List.length per_token) in
        382 / n_tokens
      in
      let count = ref 0 in
      List.iter
        (fun (rt, bal) ->
          let n =
            if !count + events_per_token > 382 then 382 - !count
            else events_per_token
          in
          let share = U256.div bal (U256.of_int (max 1 (n + 1))) in
          for k = 1 to n do
            let attacker = eoas.(Prng.int rng 45) in
            (* Cycle through the sink contracts so all 279 receive
               funds, as the real exploiters' 279 addresses did. *)
            let sink = contracts.(!count mod 279) in
            advance_to source_chain (attack + !count * 13);
            let r =
              Bridge.forged_withdrawal ~beneficiary:sink bridge ~attacker
                ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount:share
                ~withdrawal_id:(1_000_000 + (k mod 14))
            in
            assert (r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success);
            incr count;
            gt.gt_attack_events <- gt.gt_attack_events + 1;
            gt.gt_attack_usd <-
              gt.gt_attack_usd
              +. U256.to_tokens ~decimals:rt.rt_spec.ts_decimals share
                 *. rt.rt_spec.ts_usd
          done)
        per_token;
      (* Top up to exactly 382 events with the last token. *)
      (match List.rev per_token with
      | (rt, _) :: _ ->
          while !count < 382 do
            let attacker = eoas.(Prng.int rng 45) in
            let sink = contracts.(!count mod 279) in
            let bal =
              Erc20.balance_of src_chain rt.rt_mapping.Bridge.m_src_token
                bridge_addr
            in
            let share = U256.div bal (U256.of_int 4) in
            let share = if U256.is_zero share then U256.one else share in
            advance_to source_chain (attack + !count * 13);
            let r =
              Bridge.forged_withdrawal ~beneficiary:sink bridge ~attacker
                ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount:share
                ~withdrawal_id:(1_000_000 + (!count mod 14))
            in
            assert (r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success);
            incr count;
            gt.gt_attack_events <- gt.gt_attack_events + 1;
            gt.gt_attack_usd <-
              gt.gt_attack_usd
              +. U256.to_tokens ~decimals:rt.rt_spec.ts_decimals share
                 *. rt.rt_spec.ts_usd
          done
      | [] -> ()));
  (* ---------------- run -------------------------------------------- *)
  run_schedule (List.rev !actions);
  {
    bridge;
    config;
    pricing;
    tokens;
    window;
    attack_time = attack;
    discovery_time = attack + 2400 (* paused ~40 min after, per 2024 standards *);
    ground_truth = gt;
    first_window_withdrawal_id = None;
    incomplete_withdrawals = !incomplete;
    deposit_call_times = !deposit_calls;
    withdrawal_call_times = !withdrawal_calls;
  }
