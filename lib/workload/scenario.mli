(** Scenario machinery shared by the workload generators: a
    timestamped-action scheduler over the two-chain bridge simulator,
    ground-truth bookkeeping, and distributions for amounts, balances
    and user behaviour.  All randomness flows from one {!Xcw_util.Prng}
    seed: the same seed regenerates the identical scenario. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Bridge = Xcw_bridge.Bridge
module Prng = Xcw_util.Prng
module Pricing = Xcw_core.Pricing
module Config = Xcw_core.Config

type token_spec = {
  ts_name : string;
  ts_symbol : string;
  ts_decimals : int;
  ts_usd : float;
  ts_weight : int;  (** relative deposit popularity *)
}

val default_tokens : token_spec list
(** USDC, USDT, DAI, WBTC, LINK, AXS. *)

type registered_token = {
  rt_spec : token_spec;
  rt_mapping : Bridge.token_mapping;
}

(** Ground-truth counters filled while injecting behaviour; the
    integration tests assert the detector recovers exactly these. *)
type ground_truth = {
  mutable gt_native_deposits : int;
  mutable gt_erc20_deposits : int;
  mutable gt_erc20_withdrawals : int;  (** completed on S *)
  mutable gt_native_withdrawals : int;  (** native requests on T *)
  mutable gt_incomplete_native_withdrawals : int;
  mutable gt_incomplete_erc20_withdrawals : int;
  mutable gt_phishing_transfers : int;
  mutable gt_direct_transfers : int;
  mutable gt_direct_transfer_usd : float;
  mutable gt_deposit_finality_violations : int;
  mutable gt_withdrawal_finality_violations : int;
  mutable gt_unparseable_beneficiaries : int;
  mutable gt_failed_exploits : int;
  mutable gt_deposit_mapping_violations : int;
  mutable gt_withdrawal_mapping_violations : int;
  mutable gt_invalid_beneficiary_deposits : int;
  mutable gt_attack_events : int;
  mutable gt_attack_usd : float;
  mutable gt_attack_beneficiaries : int;
  mutable gt_attack_deployer_eoas : int;
  mutable gt_attack_withdrawal_ids : int;
  mutable gt_pre_window_fps : int;
  mutable gt_transfer_from_bridge : int;
}

val new_ground_truth : unit -> ground_truth

(** Metadata for Table 5 / Figure 8: incomplete withdrawals and the
    S-side balance of each beneficiary when the request was made. *)
type incomplete_withdrawal = {
  iw_beneficiary : Address.t;
  iw_ts : int;
  iw_usd : float;
  iw_balance_eth : float;
  iw_before_attack : bool;
}

(** A generated scenario: the bridge with both chains populated, the
    detector-facing configuration and pricing, and the ground truth. *)
type built = {
  bridge : Bridge.t;
  config : Config.t;
  pricing : Pricing.t;
  tokens : registered_token list;
  window : int * int;  (** [t1, t2] *)
  attack_time : int;
  discovery_time : int;
  ground_truth : ground_truth;
  first_window_withdrawal_id : int option;
  incomplete_withdrawals : incomplete_withdrawal list;
  deposit_call_times : int list;  (** Figure 1 series *)
  withdrawal_call_times : int list;
}

(** {1 Scheduled-action runner} *)

type action = { at : int; run : unit -> unit }

val run_schedule : action list -> unit
(** Run actions in chronological order (stable for equal times). *)

val advance_to : Chain.t -> int -> unit
(** Advance a chain clock, never backwards. *)

(** {1 Distributions and helpers} *)

val draw_usd : Prng.t -> float
(** Transfer value: log-normal body with a Pareto tail. *)

val token_units : token_spec -> float -> U256.t
(** USD value in token units; never zero. *)

val eth_to_wei : float -> U256.t

val pick_token : Prng.t -> registered_token list -> registered_token
(** Weighted by popularity. *)

type users

val make_users :
  Bridge.t -> Prng.t -> label:string -> count:int -> native_eth:float -> users
(** Funded user pool; balances are log-normal around [native_eth]. *)

val pick_user : Prng.t -> users -> Address.t

val mint_src : Bridge.t -> registered_token -> Address.t -> U256.t -> unit
(** Operator-minted source-chain tokens for a user. *)

val build_pricing : Bridge.t -> registered_token list -> Pricing.t
(** Price table covering both chains' tokens and wrapped natives. *)

val scaled : ?min_:int -> float -> int -> int
(** Scale a paper-sized count, keeping at least [min_] (default 1) when
    the original is positive. *)
