(** The Ronin bridge scenario (Ethereum <-> Ronin), calibrated to the
    paper's evaluation: 5-of-9 multisig acceptance with lax off-chain
    finality enforcement, the unmapped-token Withdraw bug, pre-window
    withdrawals identified by id numbering, and the March 22, 2022
    attack (2 forged withdrawals, ~$566M) discovered six days later
    (Figure 1). *)

val eth_finality : int
(** 78 seconds (pre-Merge Ethereum). *)

val ronin_finality : int
(** 45 seconds. *)

val build : ?seed:int -> ?scale:float -> unit -> Scenario.built
(** Defaults: [seed = 1337], [scale = 0.05]. *)
