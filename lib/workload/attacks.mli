(** Attack-pack workloads from the 2023 hack corpus.

    Each pack injects one of four attack classes — forged
    proof/signature acceptance (BNB-style), compromised-key validator
    takeover (Ronin-style), unauthorized mint without a matching lock
    (Qubit-style), and the Xscope unmatched/inconsistent event pattern
    — into an otherwise benign {!Generic} scenario.  The injection
    happens strictly after the benign build, so the same spec minus the
    attack ({!benign_twin}) reproduces the identical benign prefix:
    the attacked scenario differs from its twin in exactly the injected
    transactions ({!injected.inj_txs}).

    Every class has a dedicated detection rule
    ({!Xcw_core.Rules.attack_pack_rules}); the evidence surfaces in
    {!Xcw_core.Report.attack_rows}. *)

module Report = Xcw_core.Report

type spec = {
  a_class : Report.attack_class;
  a_base : Generic.spec;  (** the benign scenario the attack rides on *)
  a_count : int;  (** injected attack transactions (one per id) *)
}

val default_spec : Report.attack_class -> spec
(** Small deterministic pack: the {!Generic.default_spec} base (seed 1;
    optimistic acceptance for {!Report.Forged_proof}, multisig
    otherwise) with 3 injected attacks. *)

val class_of_string : string -> Report.attack_class option
(** Parse a CLI slug: forged-proof | validator-takeover |
    unauthorized-mint | inconsistent-event. *)

val class_slug : Report.attack_class -> string

type injected = {
  inj_built : Scenario.built;
  inj_spec : spec;
  inj_attack_txs : string list;
      (** sorted tx hashes the class's dedicated rule must flag —
          exactly these, nothing else *)
  inj_txs : string list;
      (** sorted tx hashes added relative to the benign twin (attack
          plus setup traffic such as escrow-seeding deposits) *)
}

val build : spec -> injected
(** Build the benign base, then inject [a_count] attacks of [a_class].
    Deterministic: the same spec reproduces byte-identical chains. *)

val benign_twin : spec -> Scenario.built
(** The same benign scenario without the injection. *)

val all_txs : Scenario.built -> string list
(** Sorted 0x-hex transaction hashes across both chains (for
    differential tests against the twin); all tx hashes in {!injected}
    use the same encoding as {!Xcw_core.Report}. *)
