(** A configurable benign-traffic scenario generator.

    Unlike {!Nomad} and {!Ronin} — which are calibrated replicas of the
    paper's two case studies, anomalies included — this generator
    produces protocol-clean traffic on an arbitrary bridge
    configuration.  It backs the detector's soundness property test
    (benign traffic must produce zero anomalies, for any seed and
    volume) and gives downstream users a starting point for modelling
    their own bridge. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Prng = Xcw_util.Prng
module Config = Xcw_core.Config
open Scenario

type spec = {
  g_seed : int;
  g_label : string;
  g_acceptance : [ `Multisig | `Optimistic ];
  g_escrow : Bridge.escrow_model;
  g_beneficiary_repr : Events.beneficiary_repr;
  g_source_finality : int;
  g_target_finality : int;
  g_n_users : int;
  g_n_tokens : int;  (** capped by the default token list *)
  g_erc20_deposits : int;
  g_native_deposits : int;
  g_withdrawals : int;  (** complete round-trips (deposit + withdrawal) *)
  g_via_aggregator : int;  (** deposits routed through an aggregator *)
  g_genesis : int;
  g_duration : int;  (** seconds of simulated activity *)
}

let default_spec =
  {
    g_seed = 1;
    g_label = "generic";
    g_acceptance = `Multisig;
    g_escrow = Bridge.Lock_unlock;
    g_beneficiary_repr = Events.B_address;
    g_source_finality = 78;
    g_target_finality = 45;
    g_n_users = 20;
    g_n_tokens = 3;
    g_erc20_deposits = 30;
    g_native_deposits = 10;
    g_withdrawals = 10;
    g_via_aggregator = 5;
    g_genesis = 1_700_000_000;
    g_duration = 30 * 86_400;
  }

(** Build and run the scenario; the returned {!Scenario.built} has an
    empty ground truth except for the benign counters. *)
let build (spec : spec) : built =
  let rng = Prng.create spec.g_seed in
  let source_chain =
    Chain.create ~chain_id:1 ~name:"source"
      ~finality_seconds:spec.g_source_finality ~genesis_time:spec.g_genesis
  in
  let target_chain =
    Chain.create ~chain_id:2 ~name:"target"
      ~finality_seconds:spec.g_target_finality ~genesis_time:spec.g_genesis
  in
  let acceptance =
    match spec.g_acceptance with
    | `Multisig ->
        Bridge.Multisig
          {
            threshold = 5;
            validator_count = 9;
            compromised_keys = 0;
            enforce_source_finality = true;
          }
    | `Optimistic ->
        Bridge.Optimistic
          {
            fraud_proof_window = max 1 spec.g_source_finality;
            enforce_window = true;
            proof_check_broken = false;
          }
  in
  let bridge =
    Bridge.create
      {
        Bridge.s_label = spec.g_label;
        s_source_chain = source_chain;
        s_target_chain = target_chain;
        s_escrow = spec.g_escrow;
        s_acceptance = acceptance;
        s_beneficiary_repr = spec.g_beneficiary_repr;
        s_buggy_unmapped_withdrawal = false;
      }
  in
  (* An out-of-range token count used to clamp silently, hiding spec
     mistakes; reject it instead. *)
  if spec.g_n_tokens < 1 || spec.g_n_tokens > List.length default_tokens then
    invalid_arg
      (Printf.sprintf
         "Generic.build: g_n_tokens = %d out of range 1..%d (the default \
          token list)"
         spec.g_n_tokens
         (List.length default_tokens));
  let n_tokens = spec.g_n_tokens in
  let tokens =
    List.filteri (fun i _ -> i < n_tokens) default_tokens
    |> List.map (fun ts ->
           {
             rt_spec = ts;
             rt_mapping =
               Bridge.register_token_pair bridge ~name:ts.ts_name
                 ~symbol:ts.ts_symbol ~decimals:ts.ts_decimals;
           })
  in
  ignore (Bridge.register_native_mapping bridge);
  let config = Config.of_bridge bridge in
  let pricing = build_pricing bridge tokens in
  let gt = new_ground_truth () in
  let users =
    make_users bridge rng ~label:spec.g_label ~count:(max 1 spec.g_n_users)
      ~native_eth:100.0
  in
  let aggregator = Xcw_bridge.Aggregator.deploy bridge in
  let t1 = spec.g_genesis in
  let t2 = t1 + spec.g_duration in
  let actions = ref [] in
  let schedule at run = actions := { at; run } :: !actions in
  let deposit_calls = ref [] and withdrawal_calls = ref [] in
  let any_time () = Prng.range rng t1 t2 in
  let relay_delay () = spec.g_source_finality + Prng.int rng 60 in
  let mint_for_burn_model user rt amount =
    (* Under burn-mint the bridge owns the source token; users acquire
       it via the operator's admin mint path on S... which is the
       owner = bridge; mint through a completed withdrawal would be
       circular, so fund via the bridge operator relaying an admin
       mint on T and withdrawing is overkill for benign traffic.
       Instead, lock-model semantics: mint directly when the operator
       owns the token, and via a bridge-side grant otherwise. *)
    match spec.g_escrow with
    | Bridge.Lock_unlock -> mint_src bridge rt user amount
    | Bridge.Burn_mint ->
        (* The bridge owns the token: route the mint through an
           admin-style completion with a unique id well out of the
           way, then treat it as pre-existing supply.  Simplest
           faithful option: operator mints on T and the user bridges
           back — for benign generic traffic we instead mint directly
           through the contract owner, the bridge address itself, by
           registering the operator as the tx sender is not possible;
           so fall back to chain-level storage seeding. *)
        let key = Xcw_chain.Erc20.balance_key user in
        let prev = Chain.sload source_chain rt.rt_mapping.Bridge.m_src_token key in
        Chain.sstore source_chain rt.rt_mapping.Bridge.m_src_token key
          (U256.add prev amount);
        let skey = Xcw_chain.Erc20.supply_key in
        let supply = Chain.sload source_chain rt.rt_mapping.Bridge.m_src_token skey in
        Chain.sstore source_chain rt.rt_mapping.Bridge.m_src_token skey
          (U256.add supply amount)
  in
  (* Plain ERC-20 deposits. *)
  for _ = 1 to spec.g_erc20_deposits do
    let ts = any_time () in
    let user = pick_user rng users in
    let rt = pick_token rng tokens in
    let amount = token_units rt.rt_spec (draw_usd rng) in
    let cell = ref None in
    schedule ts (fun () ->
        advance_to source_chain ts;
        mint_for_burn_model user rt amount;
        deposit_calls := ts :: !deposit_calls;
        let d =
          Bridge.deposit_erc20 bridge ~user
            ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount ~beneficiary:user
        in
        cell := Some d;
        gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1);
    let delay = relay_delay () in
    schedule (ts + delay) (fun () ->
        match !cell with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
        | _ -> ())
  done;
  (* Native deposits. *)
  for _ = 1 to spec.g_native_deposits do
    let ts = any_time () in
    let user = pick_user rng users in
    let amount = eth_to_wei (0.1 +. Prng.float rng 10.0) in
    let cell = ref None in
    schedule ts (fun () ->
        advance_to source_chain ts;
        Chain.fund source_chain user amount;
        deposit_calls := ts :: !deposit_calls;
        let d = Bridge.deposit_native bridge ~user ~amount ~beneficiary:user in
        cell := Some d;
        gt.gt_native_deposits <- gt.gt_native_deposits + 1);
    let delay = relay_delay () in
    schedule (ts + delay) (fun () ->
        match !cell with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
        | _ -> ())
  done;
  (* Aggregator-routed deposits. *)
  for _ = 1 to spec.g_via_aggregator do
    let ts = any_time () in
    let user = pick_user rng users in
    let rt = pick_token rng tokens in
    let amount = token_units rt.rt_spec (draw_usd rng) in
    let cell = ref None in
    schedule ts (fun () ->
        advance_to source_chain ts;
        mint_for_burn_model user rt amount;
        deposit_calls := ts :: !deposit_calls;
        let r =
          Xcw_bridge.Aggregator.deposit_erc20 bridge ~aggregator
            ~user ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount
            ~beneficiary:user
        in
        cell := Bridge.observe_deposit bridge r;
        gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1);
    let delay = relay_delay () in
    schedule (ts + delay) (fun () ->
        match !cell with
        | Some d -> ignore (Bridge.complete_deposit bridge ~override_delay:delay ~deposit:d)
        | None -> ())
  done;
  (* Deposit + withdrawal round-trips. *)
  for _ = 1 to spec.g_withdrawals do
    let td = Prng.range rng t1 (t1 + (spec.g_duration / 2)) in
    let user = pick_user rng users in
    let rt = pick_token rng tokens in
    let amount = token_units rt.rt_spec (draw_usd rng) in
    let dep = ref None and wdr = ref None in
    schedule td (fun () ->
        advance_to source_chain td;
        mint_for_burn_model user rt amount;
        deposit_calls := td :: !deposit_calls;
        let d =
          Bridge.deposit_erc20 bridge ~user
            ~src_token:rt.rt_mapping.Bridge.m_src_token ~amount ~beneficiary:user
        in
        dep := Some d;
        gt.gt_erc20_deposits <- gt.gt_erc20_deposits + 1);
    let rdelay = relay_delay () in
    schedule (td + rdelay) (fun () ->
        match !dep with
        | Some d when d.Bridge.d_deposit_id <> None ->
            ignore (Bridge.complete_deposit bridge ~override_delay:rdelay ~deposit:d)
        | _ -> ());
    let tw = td + rdelay + 3600 + Prng.int rng 86_400 in
    schedule tw (fun () ->
        advance_to target_chain tw;
        withdrawal_calls := tw :: !withdrawal_calls;
        let w =
          Bridge.request_withdrawal bridge ~user
            ~dst_token:rt.rt_mapping.Bridge.m_dst_token ~amount ~beneficiary:user
        in
        wdr := Some w);
    let edelay = spec.g_target_finality + 600 + Prng.int rng 7200 in
    schedule (tw + edelay) (fun () ->
        match !wdr with
        | Some w when w.Bridge.w_withdrawal_id <> None ->
            let r = Bridge.execute_withdrawal ~delay:edelay bridge ~withdrawal:w in
            if r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success then
              gt.gt_erc20_withdrawals <- gt.gt_erc20_withdrawals + 1
        | _ -> ())
  done;
  run_schedule (List.rev !actions);
  {
    bridge;
    config;
    pricing;
    tokens;
    window = (t1, t2);
    attack_time = t2;
    discovery_time = t2;
    ground_truth = gt;
    first_window_withdrawal_id = None;
    incomplete_withdrawals = [];
    deposit_call_times = !deposit_calls;
    withdrawal_call_times = !withdrawal_calls;
  }
