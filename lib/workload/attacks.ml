(** Attack-pack workloads from the 2023 hack corpus (DESIGN.md §12).

    The generator reuses the {!Scenario.built} machinery: a benign
    {!Generic} scenario is built first, then the attack transactions
    are appended with both chain clocks synchronized — so the benign
    prefix is bit-identical to {!benign_twin} and the set difference of
    transaction hashes is exactly the injection. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Prng = Xcw_util.Prng
module Report = Xcw_core.Report
module Facts = Xcw_core.Facts
open Scenario

type spec = {
  a_class : Report.attack_class;
  a_base : Generic.spec;
  a_count : int;
}

let class_slug = function
  | Report.Forged_proof -> "forged-proof"
  | Report.Validator_takeover -> "validator-takeover"
  | Report.Unauthorized_mint -> "unauthorized-mint"
  | Report.Inconsistent_event -> "inconsistent-event"

let class_of_string s =
  List.find_opt (fun c -> class_slug c = s) Report.attack_classes

let default_spec cls =
  {
    a_class = cls;
    a_base =
      {
        Generic.default_spec with
        Generic.g_label = "attack-" ^ class_slug cls;
        (* The BNB/Nomad forged-proof shape lives on an optimistic
           bridge; the key-takeover shape on a multisig one. *)
        g_acceptance =
          (match cls with Report.Forged_proof -> `Optimistic | _ -> `Multisig);
      };
    a_count = 3;
  }

let benign_twin spec = Generic.build spec.a_base

let all_txs (b : Scenario.built) =
  let of_chain c =
    List.concat_map
      (fun (blk : Types.block) -> blk.Types.b_transactions)
      (Chain.all_blocks c)
  in
  List.sort compare
    (List.map Facts.hex_of_hash
       (of_chain b.bridge.Bridge.source.Bridge.chain
       @ of_chain b.bridge.Bridge.target.Bridge.chain))

type injected = {
  inj_built : Scenario.built;
  inj_spec : spec;
  inj_attack_txs : string list;
  inj_txs : string list;
}

(* Defeat the acceptance check whichever model the base bridge runs:
   break the proof verification (Nomad's upgrade bug) or steal a
   signing quorum (Ronin's five of nine keys). *)
let compromise_acceptance bridge =
  match bridge.Bridge.acceptance with
  | Bridge.Optimistic _ -> Bridge.break_proof_check bridge
  | Bridge.Multisig m -> Bridge.compromise_validators bridge ~keys:m.threshold

let build spec : injected =
  if spec.a_count < 0 then invalid_arg "Attacks.build: a_count < 0";
  let b = benign_twin spec in
  let before = all_txs b in
  let bridge = b.bridge in
  let src = bridge.Bridge.source and dst = bridge.Bridge.target in
  let rt = List.hd b.tokens in
  let token = rt.rt_mapping.Bridge.m_src_token in
  let dst_token = rt.rt_mapping.Bridge.m_dst_token in
  let rng = Prng.create (spec.a_base.Generic.g_seed + 7211) in
  let label = class_slug spec.a_class in
  let attacker = Address.of_seed (label ^ "-attacker") in
  let victim = Address.of_seed (label ^ "-victim") in
  List.iter
    (fun who ->
      Chain.fund src.Bridge.chain who (eth_to_wei 10.0);
      Chain.fund dst.Bridge.chain who (eth_to_wei 10.0))
    [ attacker; victim ];
  (* Synchronize the chain clocks so the injection alone controls
     cross-chain timing. *)
  let t0 =
    max (Chain.now src.Bridge.chain) (Chain.now dst.Bridge.chain) + 3600
  in
  Chain.set_time src.Bridge.chain t0;
  Chain.set_time dst.Bridge.chain t0;
  let mint who amount =
    ignore
      (Chain.submit_tx src.Bridge.chain ~from_:src.Bridge.operator ~to_:token
         ~input:(Erc20.mint_calldata ~to_:who ~amount)
         ())
  in
  let draw_amount () = U256.of_int (1_000 + Prng.int rng 9_000) in
  let assert_success what (r : Types.receipt) =
    if r.Types.r_status <> Types.Success then
      failwith (Printf.sprintf "Attacks.build: %s reverted" what);
    Facts.hex_of_hash r.Types.r_tx_hash
  in
  let attack_txs = ref [] in
  let record tx = attack_txs := tx :: !attack_txs in
  (match spec.a_class with
  | Report.Forged_proof ->
      (* Seed the S-side escrow with honest round-trips, then release
         withdrawal ids that were never requested on T. *)
      let amounts = List.init spec.a_count (fun _ -> draw_amount ()) in
      List.iter
        (fun amount ->
          mint victim amount;
          let d =
            Bridge.deposit_erc20 bridge ~user:victim ~src_token:token ~amount
              ~beneficiary:victim
          in
          ignore (Bridge.complete_deposit bridge ~deposit:d))
        amounts;
      compromise_acceptance bridge;
      Chain.advance_time src.Bridge.chain 600;
      List.iteri
        (fun k amount ->
          record
            (assert_success "forged_withdrawal"
               (Bridge.forged_withdrawal bridge ~attacker ~src_token:token
                  ~amount ~withdrawal_id:(5_000_000 + k))))
        amounts
  | Report.Validator_takeover ->
      (* Honest request of A on T; the stolen quorum re-signs it as a
         release of 2A to the attacker on S. *)
      let wids_amounts =
        List.init spec.a_count (fun _ ->
            let amount = draw_amount () in
            let escrow = U256.mul amount (U256.of_int 3) in
            mint victim escrow;
            let d =
              Bridge.deposit_erc20 bridge ~user:victim ~src_token:token
                ~amount:escrow ~beneficiary:victim
            in
            ignore (Bridge.complete_deposit bridge ~deposit:d);
            Chain.advance_time dst.Bridge.chain 3600;
            let w =
              Bridge.request_withdrawal bridge ~user:victim
                ~dst_token ~amount ~beneficiary:victim
            in
            match w.Bridge.w_withdrawal_id with
            | Some wid -> (wid, amount)
            | None -> failwith "Attacks.build: withdrawal request reverted")
      in
      compromise_acceptance bridge;
      Chain.advance_time src.Bridge.chain 600;
      List.iter
        (fun (wid, amount) ->
          record
            (assert_success "takeover withdrawal"
               (Bridge.forged_withdrawal bridge ~attacker ~src_token:token
                  ~amount:(U256.mul amount (U256.of_int 2))
                  ~withdrawal_id:wid)))
        wids_amounts
  | Report.Unauthorized_mint ->
      (* Operator-keyed completion of deposits that never happened:
         properly mapped token, fresh ids, no S-side lock. *)
      for k = 0 to spec.a_count - 1 do
        record
          (assert_success "relay_fake_deposit"
             (Bridge.relay_fake_deposit bridge ~beneficiary:attacker
                ~dst_token ~amount:(draw_amount ())
                ~deposit_id:(700_000 + k)))
      done
  | Report.Inconsistent_event ->
      (* A genuine lock of A on S completed on T with 2A: same id and
         token on both sides, inconsistent amounts. *)
      for _ = 1 to spec.a_count do
        let amount = draw_amount () in
        mint victim amount;
        let d =
          Bridge.deposit_erc20 bridge ~user:victim ~src_token:token ~amount
            ~beneficiary:victim
        in
        match d.Bridge.d_deposit_id with
        | None -> failwith "Attacks.build: deposit reverted"
        | Some did ->
            Chain.advance_time dst.Bridge.chain 3600;
            record
              (assert_success "inconsistent completion"
                 (Bridge.relay_fake_deposit bridge ~beneficiary:victim
                    ~dst_token
                    ~amount:(U256.mul amount (U256.of_int 2))
                    ~deposit_id:did))
      done);
  let after = all_txs b in
  let before_set = Hashtbl.create 256 in
  List.iter (fun tx -> Hashtbl.replace before_set tx ()) before;
  let inj_txs = List.filter (fun tx -> not (Hashtbl.mem before_set tx)) after in
  {
    inj_built = b;
    inj_spec = spec;
    inj_attack_txs = List.sort compare !attack_txs;
    inj_txs;
  }
