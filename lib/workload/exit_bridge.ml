(** Proof-carrying exit-bridge workload (DESIGN.md §15).

    The exit contracts are deliberately credulous: deposits append to
    the origin Merkle tree and claims/attestations emit whatever they
    are handed, with only the stake lifecycle enforced (bond before
    signing, no withdrawal once slashed).  Everything adversarial is
    caught off-chain — the decoder re-verifies each claim's inclusion
    proof and the accounting stratum derives the violations — so every
    attack class below {e executes successfully} on-chain. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Bridge = Xcw_bridge.Bridge
module Events = Xcw_bridge.Events
module Abi = Xcw_abi.Abi
module Merkle = Xcw_merkle.Merkle
module Hex = Xcw_util.Hex
module Prng = Xcw_util.Prng
module Config = Xcw_core.Config
module Pricing = Xcw_core.Pricing
module Report = Xcw_core.Report
module Facts = Xcw_core.Facts
open Scenario

type base = {
  b_seed : int;
  b_label : string;
  b_validators : int;
  b_epochs : int;
  b_deposits_per_epoch : int;
  b_stake : int;
  b_tree_depth : int;
  b_base : Generic.spec;
}

let default_base =
  {
    b_seed = 1;
    b_label = "exit";
    b_validators = 3;
    b_epochs = 2;
    b_deposits_per_epoch = 3;
    b_stake = 1_000;
    b_tree_depth = 8;
    b_base =
      {
        Generic.default_spec with
        Generic.g_label = "exit";
        g_n_users = 6;
        g_erc20_deposits = 6;
        g_native_deposits = 2;
        g_withdrawals = 2;
        g_via_aggregator = 1;
      };
  }

type spec = { e_class : Report.acc_class; e_base : base }

let default_spec cls =
  {
    e_class = cls;
    e_base =
      {
        default_base with
        b_label = "exit-" ^ Report.acc_class_slug cls;
        b_base =
          {
            default_base.b_base with
            Generic.g_label = "exit-" ^ Report.acc_class_slug cls;
          };
      };
  }

type injected = {
  inj_built : Scenario.built;
  inj_spec : spec;
  inj_attack_txs : string list;
  inj_divergence_txs : string list;
  inj_txs : string list;
}

(* ------------------------------------------------------------------ *)
(* The exit contracts                                                  *)

let sel_deposit = Abi.selector "exitDeposit(address,uint256,uint256)"
let sel_seal = Abi.selector "sealExitRoot(uint256)"

let sel_claim =
  Abi.selector "claimExit(uint256,address,uint256,uint256,bytes32,bytes)"

let sel_sign = Abi.selector "signExitRoot(uint256,uint256,bytes32)"
let sel_bond = Abi.selector "bondStake(uint256)"
let sel_withdraw = Abi.selector "withdrawStake(uint256)"
let sel_slash = Abi.selector "slashValidator(address,uint256)"

type leaf_info = { li_token : Address.t; li_amount : int }

(* Shared lane state, captured by both contract closures and kept by
   the builder for proof construction and injections. *)
type state = {
  st_src_id : int;
  st_dst_id : int;
  st_operator : Address.t;
  st_tree : Merkle.t;  (** origin deposit tree *)
  st_claim_tree : Merkle.t;  (** destination claim tree *)
  st_leaves : (int, leaf_info) Hashtbl.t;
  st_snapshots : (int, Merkle.t) Hashtbl.t;  (** epoch -> tree at seal *)
  mutable st_seq : int;  (** destination-side sequence *)
  st_stakes : (Address.t, int) Hashtbl.t;
  st_slashed : (Address.t, unit) Hashtbl.t;
  mutable st_src_exit : Address.t;
  mutable st_dst_exit : Address.t;
}

let decode_args types input =
  let payload = String.sub input 4 (String.length input - 4) in
  try Abi.decode types payload
  with Abi.Decode_error msg ->
    raise (Chain.Revert ("ExitBridge: bad calldata: " ^ msg))

let selector_of env =
  let input = env.Chain.input in
  if String.length input < 4 then
    raise (Chain.Revert "ExitBridge: missing selector");
  String.sub input 0 4

let uint i = Abi.Value.uint_of_int i

let origin_dispatch (st : state) (env : Chain.env) : unit =
  let sel = selector_of env in
  if sel = sel_deposit then begin
    match
      decode_args [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.uint256 ]
        env.Chain.input
    with
    | [ Abi.Value.Address token; Abi.Value.Uint amount; Abi.Value.Uint dest ]
      ->
        let amount = U256.to_int amount and dest = U256.to_int dest in
        let idx = Merkle.size st.st_tree in
        let leaf =
          Merkle.leaf_hash ~origin_chain_id:st.st_src_id ~dest_chain_id:dest
            ~token:(Hex.encode_0x token) ~amount ~nonce:idx
        in
        ignore (Merkle.add_leaf st.st_tree leaf);
        Hashtbl.replace st.st_leaves idx { li_token = token; li_amount = amount };
        env.Chain.emit Events.exit_deposited
          [
            uint idx;
            Abi.Value.Address token;
            uint amount;
            uint dest;
            Abi.Value.Fixed_bytes (Merkle.root st.st_tree);
          ]
    | _ -> raise (Chain.Revert "ExitBridge: bad exitDeposit args")
  end
  else if sel = sel_seal then begin
    match decode_args [ Abi.Type.uint256 ] env.Chain.input with
    | [ Abi.Value.Uint epoch ] ->
        let epoch = U256.to_int epoch in
        Hashtbl.replace st.st_snapshots epoch (Merkle.copy st.st_tree);
        env.Chain.emit Events.exit_root_sealed
          [ uint epoch; Abi.Value.Fixed_bytes (Merkle.root st.st_tree) ]
    | _ -> raise (Chain.Revert "ExitBridge: bad sealExitRoot args")
  end
  else raise (Chain.Revert "ExitBridge: unknown selector")

let dest_dispatch (st : state) (env : Chain.env) : unit =
  let sel = selector_of env in
  let next_seq () =
    let s = st.st_seq in
    st.st_seq <- s + 1;
    s
  in
  if sel = sel_claim then begin
    match
      decode_args
        [
          Abi.Type.uint256; Abi.Type.Address; Abi.Type.uint256;
          Abi.Type.uint256; Abi.Type.bytes32; Abi.Type.Bytes;
        ]
        env.Chain.input
    with
    | [
     Abi.Value.Uint leaf_index; Abi.Value.Address token; Abi.Value.Uint amount;
     Abi.Value.Uint origin; Abi.Value.Fixed_bytes root; Abi.Value.Bytes proof;
    ] ->
        let leaf_index = U256.to_int leaf_index in
        let amount = U256.to_int amount in
        let origin = U256.to_int origin in
        (* Append the execution to the claim-side exit tree; the claim
           itself is taken at face value (pessimistic model: the
           watcher, not the contract, verifies the proof). *)
        let cleaf =
          Merkle.leaf_hash ~origin_chain_id:origin ~dest_chain_id:st.st_dst_id
            ~token:(Hex.encode_0x token) ~amount
            ~nonce:(Merkle.size st.st_claim_tree)
        in
        ignore (Merkle.add_leaf st.st_claim_tree cleaf);
        env.Chain.emit Events.exit_claimed
          [
            uint leaf_index;
            Abi.Value.Address token;
            uint amount;
            uint origin;
            Abi.Value.Fixed_bytes root;
            uint (next_seq ());
            Abi.Value.Bytes proof;
          ]
    | _ -> raise (Chain.Revert "ExitBridge: bad claimExit args")
  end
  else if sel = sel_sign then begin
    match
      decode_args [ Abi.Type.uint256; Abi.Type.uint256; Abi.Type.bytes32 ]
        env.Chain.input
    with
    | [ Abi.Value.Uint origin; Abi.Value.Uint epoch; Abi.Value.Fixed_bytes root ]
      ->
        (match Hashtbl.find_opt st.st_stakes env.Chain.sender with
        | Some s when s > 0 -> ()
        | _ -> raise (Chain.Revert "ExitBridge: signer not bonded"));
        env.Chain.emit Events.exit_root_signed
          [
            uint (U256.to_int origin);
            uint (U256.to_int epoch);
            Abi.Value.Fixed_bytes root;
            Abi.Value.Address env.Chain.sender;
            uint (next_seq ());
          ]
    | _ -> raise (Chain.Revert "ExitBridge: bad signExitRoot args")
  end
  else if sel = sel_bond then begin
    match decode_args [ Abi.Type.uint256 ] env.Chain.input with
    | [ Abi.Value.Uint amount ] ->
        let amount = U256.to_int amount in
        let prev =
          Option.value ~default:0 (Hashtbl.find_opt st.st_stakes env.Chain.sender)
        in
        Hashtbl.replace st.st_stakes env.Chain.sender (prev + amount);
        env.Chain.emit Events.exit_stake_event
          [ Abi.Value.Address env.Chain.sender; uint 0; uint amount; uint 0 ]
    | _ -> raise (Chain.Revert "ExitBridge: bad bondStake args")
  end
  else if sel = sel_withdraw then begin
    match decode_args [ Abi.Type.uint256 ] env.Chain.input with
    | [ Abi.Value.Uint epoch ] ->
        if Hashtbl.mem st.st_slashed env.Chain.sender then
          raise (Chain.Revert "ExitBridge: stake is slashed");
        let s =
          Option.value ~default:0 (Hashtbl.find_opt st.st_stakes env.Chain.sender)
        in
        if s <= 0 then raise (Chain.Revert "ExitBridge: nothing bonded");
        Hashtbl.replace st.st_stakes env.Chain.sender 0;
        env.Chain.emit Events.exit_stake_event
          [
            Abi.Value.Address env.Chain.sender; uint 1; uint s;
            uint (U256.to_int epoch);
          ]
    | _ -> raise (Chain.Revert "ExitBridge: bad withdrawStake args")
  end
  else if sel = sel_slash then begin
    match decode_args [ Abi.Type.Address; Abi.Type.uint256 ] env.Chain.input with
    | [ Abi.Value.Address validator; Abi.Value.Uint epoch ] ->
        if not (Address.equal env.Chain.sender st.st_operator) then
          raise (Chain.Revert "ExitBridge: slash is operator-only");
        let s =
          Option.value ~default:0 (Hashtbl.find_opt st.st_stakes validator)
        in
        Hashtbl.replace st.st_stakes validator 0;
        Hashtbl.replace st.st_slashed validator ();
        env.Chain.emit Events.exit_stake_event
          [
            Abi.Value.Address validator; uint 2; uint s;
            uint (U256.to_int epoch);
          ]
    | _ -> raise (Chain.Revert "ExitBridge: bad slashValidator args")
  end
  else raise (Chain.Revert "ExitBridge: unknown selector")

(* ------------------------------------------------------------------ *)
(* Calldata builders                                                   *)

let deposit_calldata ~token ~amount ~dest =
  Abi.encode_call "exitDeposit(address,uint256,uint256)"
    [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.uint256 ]
    [ Abi.Value.Address token; uint amount; uint dest ]

let seal_calldata ~epoch =
  Abi.encode_call "sealExitRoot(uint256)" [ Abi.Type.uint256 ] [ uint epoch ]

let claim_calldata ~leaf_index ~token ~amount ~origin ~root ~proof =
  Abi.encode_call "claimExit(uint256,address,uint256,uint256,bytes32,bytes)"
    [
      Abi.Type.uint256; Abi.Type.Address; Abi.Type.uint256; Abi.Type.uint256;
      Abi.Type.bytes32; Abi.Type.Bytes;
    ]
    [
      uint leaf_index; Abi.Value.Address token; uint amount; uint origin;
      Abi.Value.Fixed_bytes root; Abi.Value.Bytes proof;
    ]

let sign_calldata ~origin ~epoch ~root =
  Abi.encode_call "signExitRoot(uint256,uint256,bytes32)"
    [ Abi.Type.uint256; Abi.Type.uint256; Abi.Type.bytes32 ]
    [ uint origin; uint epoch; Abi.Value.Fixed_bytes root ]

let bond_calldata ~amount =
  Abi.encode_call "bondStake(uint256)" [ Abi.Type.uint256 ] [ uint amount ]

let withdraw_calldata ~epoch =
  Abi.encode_call "withdrawStake(uint256)" [ Abi.Type.uint256 ] [ uint epoch ]

let slash_calldata ~validator ~epoch =
  Abi.encode_call "slashValidator(address,uint256)"
    [ Abi.Type.Address; Abi.Type.uint256 ]
    [ Abi.Value.Address validator; uint epoch ]

(* ------------------------------------------------------------------ *)
(* Benign lane                                                          *)

type lane = {
  la_built : Scenario.built;
  la_state : state;
  la_validators : Address.t list;
  la_user : Address.t;
  la_tokens : Address.t list;  (** the two exit tokens, priced $1 / 0 dp *)
  la_claimed_from : int;  (** benign claims cover leaves [la_claimed_from ..) *)
}

let assert_success what (r : Types.receipt) =
  if r.Types.r_status <> Types.Success then
    failwith (Printf.sprintf "Exit_bridge: %s reverted" what);
  Facts.hex_of_hash r.Types.r_tx_hash

let validate (b : base) =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if b.b_validators < 2 then
    fail "Exit_bridge.build: b_validators = %d out of range (>= 2)"
      b.b_validators;
  if b.b_epochs < 2 then
    fail "Exit_bridge.build: b_epochs = %d out of range (>= 2)" b.b_epochs;
  if b.b_deposits_per_epoch < 2 then
    fail "Exit_bridge.build: b_deposits_per_epoch = %d out of range (>= 2)"
      b.b_deposits_per_epoch;
  if b.b_stake < 1 then
    fail "Exit_bridge.build: b_stake = %d out of range (>= 1)" b.b_stake;
  if b.b_tree_depth < 1 || b.b_tree_depth > Merkle.max_depth then
    fail "Exit_bridge.build: b_tree_depth = %d out of range 1..%d"
      b.b_tree_depth Merkle.max_depth;
  let deposits = b.b_epochs * b.b_deposits_per_epoch in
  (* Keep headroom for the injections (net outflow appends 2 leaves). *)
  if deposits + 4 > 1 lsl b.b_tree_depth then
    fail
      "Exit_bridge.build: %d deposits + injection reserve exceed the depth-%d \
       tree capacity %d"
      deposits b.b_tree_depth (1 lsl b.b_tree_depth)

(** Build the benign exit lane on top of the generic base.  Everything
    after the base build runs on synchronized chain clocks so that the
    whole lane — and any injection after it — is deterministic. *)
let build_lane (b : base) : lane =
  validate b;
  let built = Generic.build b.b_base in
  let rng = Prng.create (b.b_seed + 9137) in
  let bridge = built.bridge in
  let src = bridge.Bridge.source and dst = bridge.Bridge.target in
  let src_chain = src.Bridge.chain and dst_chain = dst.Bridge.chain in
  let src_id = src_chain.Chain.chain_id in
  let dst_id = dst_chain.Chain.chain_id in
  let st =
    {
      st_src_id = src_id;
      st_dst_id = dst_id;
      st_operator = dst.Bridge.operator;
      st_tree = Merkle.create ~depth:b.b_tree_depth ();
      st_claim_tree = Merkle.create ~depth:b.b_tree_depth ();
      st_leaves = Hashtbl.create 64;
      st_snapshots = Hashtbl.create 8;
      st_seq = 0;
      st_stakes = Hashtbl.create 8;
      st_slashed = Hashtbl.create 8;
      st_src_exit = Address.zero;
      st_dst_exit = Address.zero;
    }
  in
  (* Synchronize the clocks before any lane activity. *)
  let t0 = max (Chain.now src_chain) (Chain.now dst_chain) + 3600 in
  Chain.set_time src_chain t0;
  Chain.set_time dst_chain t0;
  let user = Address.of_seed (b.b_label ^ "-exit-user") in
  let validators =
    List.init b.b_validators (fun i ->
        Address.of_seed (Printf.sprintf "%s-exit-validator-%d" b.b_label i))
  in
  List.iter
    (fun who ->
      Chain.fund src_chain who (eth_to_wei 10.0);
      Chain.fund dst_chain who (eth_to_wei 10.0))
    (user :: validators);
  st.st_src_exit <-
    Chain.deploy ~label:"ExitBridge:origin" src_chain ~from_:src.Bridge.operator
      (origin_dispatch st);
  st.st_dst_exit <-
    Chain.deploy ~label:"ExitBridge:dest" dst_chain ~from_:dst.Bridge.operator
      (dest_dispatch st);
  (* The watcher's view: exit contracts are bridge-controlled, exit
     tokens priced at $1 with 0 decimals (so USD value = amount). *)
  let tokens =
    List.init 2 (fun i ->
        let t = Address.of_seed (Printf.sprintf "%s-exit-token-%d" b.b_label i) in
        Pricing.register built.pricing ~chain_id:src_id ~token:(Address.to_hex t)
          ~usd_per_token:1.0 ~decimals:0;
        Pricing.register built.pricing ~chain_id:dst_id ~token:(Address.to_hex t)
          ~usd_per_token:1.0 ~decimals:0;
        t)
  in
  let config =
    {
      built.config with
      Config.bridge_controlled =
        built.config.Config.bridge_controlled
        @ [ (src_id, st.st_src_exit); (dst_id, st.st_dst_exit) ];
    }
  in
  (* Stake bonding. *)
  List.iter
    (fun v ->
      Chain.advance_time dst_chain 60;
      ignore
        (assert_success "bondStake"
           (Chain.submit_tx dst_chain ~from_:v ~to_:st.st_dst_exit
              ~input:(bond_calldata ~amount:b.b_stake)
              ())))
    validators;
  (* Epochs: deposits, seal, unanimous honest attestations. *)
  for epoch = 0 to b.b_epochs - 1 do
    for _ = 1 to b.b_deposits_per_epoch do
      Chain.advance_time src_chain 60;
      let token = List.nth tokens (Merkle.size st.st_tree mod 2) in
      let amount = 100 + Prng.int rng 900 in
      ignore
        (assert_success "exitDeposit"
           (Chain.submit_tx src_chain ~from_:user ~to_:st.st_src_exit
              ~input:(deposit_calldata ~token ~amount ~dest:dst_id)
              ()))
    done;
    Chain.advance_time src_chain 60;
    ignore
      (assert_success "sealExitRoot"
         (Chain.submit_tx src_chain ~from_:src.Bridge.operator
            ~to_:st.st_src_exit
            ~input:(seal_calldata ~epoch)
            ()));
    let root = Merkle.root (Hashtbl.find st.st_snapshots epoch) in
    List.iter
      (fun v ->
        Chain.advance_time dst_chain 60;
        ignore
          (assert_success "signExitRoot"
             (Chain.submit_tx dst_chain ~from_:v ~to_:st.st_dst_exit
                ~input:(sign_calldata ~origin:src_id ~epoch ~root)
                ())))
      validators
  done;
  (* Claims: the tail half of the leaves, with valid proofs against the
     final sealed root — leaving the head leaves unclaimed for the
     injections (claims never exceed deposits per token). *)
  let n_leaves = Merkle.size st.st_tree in
  let final = Hashtbl.find st.st_snapshots (b.b_epochs - 1) in
  let claimed_from = n_leaves / 2 in
  for idx = claimed_from to n_leaves - 1 do
    Chain.advance_time dst_chain 60;
    let info = Hashtbl.find st.st_leaves idx in
    ignore
      (assert_success "claimExit"
         (Chain.submit_tx dst_chain ~from_:user ~to_:st.st_dst_exit
            ~input:
              (claim_calldata ~leaf_index:idx ~token:info.li_token
                 ~amount:info.li_amount ~origin:src_id
                 ~root:(Merkle.root final)
                 ~proof:(String.concat "" (Merkle.proof final idx)))
            ()))
  done;
  {
    la_built = { built with config };
    la_state = st;
    la_validators = validators;
    la_user = user;
    la_tokens = tokens;
    la_claimed_from = claimed_from;
  }

let build_benign b = (build_lane b).la_built
let benign_twin spec = build_benign spec.e_base

(** One claim for a token no deposit ever mentioned: the no-deposit
    net-outflow clause (and — no leaf exists, so the proof cannot
    verify — the forged-proof rule). *)
let build_undeposited_claim (b : base) : Scenario.built =
  let lane = build_lane b in
  let st = lane.la_state in
  let dst_chain = lane.la_built.bridge.Bridge.target.Bridge.chain in
  let ghost = Address.of_seed (b.b_label ^ "-exit-ghost-token") in
  let final = Hashtbl.find st.st_snapshots (b.b_epochs - 1) in
  Chain.advance_time dst_chain 60;
  ignore
    (assert_success "ghost claimExit"
       (Chain.submit_tx dst_chain ~from_:lane.la_user ~to_:st.st_dst_exit
          ~input:
            (claim_calldata ~leaf_index:0 ~token:ghost ~amount:50
               ~origin:st.st_src_id
               ~root:(Merkle.root final)
               ~proof:(String.concat "" (Merkle.proof final 0)))
          ()));
  lane.la_built

(* ------------------------------------------------------------------ *)
(* Injections                                                          *)

let flip_bit s =
  let b = Bytes.of_string s in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
  Bytes.to_string b

let build (spec : spec) : injected =
  let b = spec.e_base in
  let lane = build_lane b in
  let built = lane.la_built in
  let before = Attacks.all_txs built in
  let st = lane.la_state in
  let src_chain = built.bridge.Bridge.source.Bridge.chain in
  let dst_chain = built.bridge.Bridge.target.Bridge.chain in
  let src_operator = built.bridge.Bridge.source.Bridge.operator in
  (* Re-synchronize so the injection alone controls timing. *)
  let t0 = max (Chain.now src_chain) (Chain.now dst_chain) + 3600 in
  Chain.set_time src_chain t0;
  Chain.set_time dst_chain t0;
  let attack_txs = ref [] and divergence_txs = ref [] in
  let record tx = attack_txs := tx :: !attack_txs in
  let claim ?(mutate_proof = false) ~tree ~idx () =
    let info = Hashtbl.find st.st_leaves idx in
    let proof = String.concat "" (Merkle.proof tree idx) in
    let proof = if mutate_proof then flip_bit proof else proof in
    Chain.advance_time dst_chain 60;
    assert_success "injected claimExit"
      (Chain.submit_tx dst_chain ~from_:lane.la_user ~to_:st.st_dst_exit
         ~input:
           (claim_calldata ~leaf_index:idx ~token:info.li_token
              ~amount:info.li_amount ~origin:st.st_src_id
              ~root:(Merkle.root tree) ~proof)
         ())
  in
  (match spec.e_class with
  | Report.Stale_root_claim ->
      (* Leaf 0 proven against the epoch-0 snapshot: a perfectly valid
         proof for a root every validator long since superseded. *)
      let old = Hashtbl.find st.st_snapshots 0 in
      record (claim ~tree:old ~idx:0 ())
  | Report.Forged_exit_proof ->
      (* Unclaimed leaf, latest root, one bit of the proof flipped: the
         contract executes it, the watcher's re-verification fails. *)
      let final = Hashtbl.find st.st_snapshots (b.b_epochs - 1) in
      record (claim ~mutate_proof:true ~tree:final ~idx:1 ())
  | Report.Root_divergence ->
      (* A bonded validator attests to a root that differs from what
         the origin chain sealed for that epoch. *)
      let sealed = Merkle.root (Hashtbl.find st.st_snapshots 0) in
      Chain.advance_time dst_chain 60;
      record
        (assert_success "divergent signExitRoot"
           (Chain.submit_tx dst_chain
              ~from_:(List.hd lane.la_validators)
              ~to_:st.st_dst_exit
              ~input:
                (sign_calldata ~origin:st.st_src_id ~epoch:0
                   ~root:(flip_bit sealed))
              ()))
  | Report.Exit_net_outflow ->
      (* A dedicated fresh token: deposits, a sealed epoch, honest
         unanimous signatures — then every leaf claimed twice, each
         claim individually proof-valid.  Cumulative claims exceed
         cumulative deposits for the (chain, token) pair. *)
      let token = Address.of_seed (b.b_label ^ "-exit-outflow-token") in
      Pricing.register built.pricing ~chain_id:st.st_src_id
        ~token:(Address.to_hex token) ~usd_per_token:1.0 ~decimals:0;
      Pricing.register built.pricing ~chain_id:st.st_dst_id
        ~token:(Address.to_hex token) ~usd_per_token:1.0 ~decimals:0;
      let epoch = b.b_epochs in
      let first = Merkle.size st.st_tree in
      for k = 0 to 1 do
        Chain.advance_time src_chain 60;
        ignore
          (assert_success "outflow exitDeposit"
             (Chain.submit_tx src_chain ~from_:lane.la_user ~to_:st.st_src_exit
                ~input:
                  (deposit_calldata ~token ~amount:(500 + (100 * k))
                     ~dest:st.st_dst_id)
                ()))
      done;
      Chain.advance_time src_chain 60;
      ignore
        (assert_success "outflow sealExitRoot"
           (Chain.submit_tx src_chain ~from_:src_operator ~to_:st.st_src_exit
              ~input:(seal_calldata ~epoch)
              ()));
      let tree = Hashtbl.find st.st_snapshots epoch in
      let root = Merkle.root tree in
      List.iter
        (fun v ->
          Chain.advance_time dst_chain 60;
          ignore
            (assert_success "outflow signExitRoot"
               (Chain.submit_tx dst_chain ~from_:v ~to_:st.st_dst_exit
                  ~input:(sign_calldata ~origin:st.st_src_id ~epoch ~root)
                  ())))
        lane.la_validators;
      for idx = first to first + 1 do
        record (claim ~tree ~idx ());
        record (claim ~tree ~idx ())
      done
  | Report.Slashing_evasion ->
      (* Two validators co-sign a divergent epoch-0 root.  The first
         withdraws its stake before anyone reacts (the evasion); the
         second is slashed, and stays silent under the evasion rule. *)
      let v_evader = List.nth lane.la_validators 0 in
      let v_slashed = List.nth lane.la_validators 1 in
      let bad = flip_bit (Merkle.root (Hashtbl.find st.st_snapshots 0)) in
      List.iter
        (fun v ->
          Chain.advance_time dst_chain 60;
          divergence_txs :=
            assert_success "divergent signExitRoot"
              (Chain.submit_tx dst_chain ~from_:v ~to_:st.st_dst_exit
                 ~input:(sign_calldata ~origin:st.st_src_id ~epoch:0 ~root:bad)
                 ())
            :: !divergence_txs)
        [ v_evader; v_slashed ];
      Chain.advance_time dst_chain 60;
      record
        (assert_success "evading withdrawStake"
           (Chain.submit_tx dst_chain ~from_:v_evader ~to_:st.st_dst_exit
              ~input:(withdraw_calldata ~epoch:0)
              ()));
      Chain.advance_time dst_chain 60;
      ignore
        (assert_success "slashValidator"
           (Chain.submit_tx dst_chain ~from_:st.st_operator ~to_:st.st_dst_exit
              ~input:(slash_calldata ~validator:v_slashed ~epoch:0)
              ())));
  let after = Attacks.all_txs built in
  let before_set = Hashtbl.create 256 in
  List.iter (fun tx -> Hashtbl.replace before_set tx ()) before;
  let inj_txs = List.filter (fun tx -> not (Hashtbl.mem before_set tx)) after in
  {
    inj_built = built;
    inj_spec = spec;
    inj_attack_txs = List.sort compare !attack_txs;
    inj_divergence_txs = List.sort compare !divergence_txs;
    inj_txs;
  }
