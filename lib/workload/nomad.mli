(** The Nomad bridge scenario (Ethereum <-> Moonbeam), calibrated to
    the paper's evaluation: optimistic acceptance with the 30-minute
    fraud-proof window (enforcement-bugged), bytes32 beneficiaries,
    benign traffic sized by [scale] x Table 3's counts, and every
    documented anomaly class injected with the paper's exact counts —
    including the August 2, 2022 attack (382 forged withdrawals from
    279 contracts deployed by 45 EOAs, ~$159M). *)

val fraud_proof_window : int
(** 1800 seconds. *)

val build : ?seed:int -> ?scale:float -> unit -> Scenario.built
(** Defaults: [seed = 42], [scale = 0.05]. *)
