(** Scenario machinery shared by the Nomad and Ronin workload
    generators.

    A scenario schedules timestamped actions (deposits, relays,
    withdrawal requests and executions, anomaly injections) on the
    two-chain bridge simulator and runs them in chronological order, so
    each chain's clock advances monotonically while cross-chain delays
    (finality waits, fraud-proof windows, user procrastination) are
    explicit.

    All randomness flows from a single {!Xcw_util.Prng} seed: the same
    seed regenerates the identical scenario, receipts, hashes and
    anomaly report. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Bridge = Xcw_bridge.Bridge
module Prng = Xcw_util.Prng
module Pricing = Xcw_core.Pricing
module Config = Xcw_core.Config

type token_spec = {
  ts_name : string;
  ts_symbol : string;
  ts_decimals : int;
  ts_usd : float;
  ts_weight : int;  (** relative deposit popularity *)
}

let default_tokens =
  [
    { ts_name = "USD Coin"; ts_symbol = "USDC"; ts_decimals = 6; ts_usd = 1.0; ts_weight = 30 };
    { ts_name = "Tether USD"; ts_symbol = "USDT"; ts_decimals = 6; ts_usd = 1.0; ts_weight = 25 };
    { ts_name = "Dai Stablecoin"; ts_symbol = "DAI"; ts_decimals = 18; ts_usd = 1.0; ts_weight = 20 };
    { ts_name = "Wrapped BTC"; ts_symbol = "WBTC"; ts_decimals = 8; ts_usd = 40_000.0; ts_weight = 10 };
    { ts_name = "ChainLink"; ts_symbol = "LINK"; ts_decimals = 18; ts_usd = 15.0; ts_weight = 8 };
    { ts_name = "Axie Infinity Shard"; ts_symbol = "AXS"; ts_decimals = 18; ts_usd = 50.0; ts_weight = 7 };
  ]

type registered_token = {
  rt_spec : token_spec;
  rt_mapping : Bridge.token_mapping;
}

(** Ground-truth counters filled while injecting behaviour; integration
    tests assert the detector recovers exactly these. *)
type ground_truth = {
  mutable gt_native_deposits : int;
  mutable gt_erc20_deposits : int;
  mutable gt_erc20_withdrawals : int;  (** completed on S *)
  mutable gt_native_withdrawals : int;  (** native requests on T *)
  mutable gt_incomplete_native_withdrawals : int;
  mutable gt_incomplete_erc20_withdrawals : int;
  mutable gt_phishing_transfers : int;
  mutable gt_direct_transfers : int;
  mutable gt_direct_transfer_usd : float;
  mutable gt_deposit_finality_violations : int;
  mutable gt_withdrawal_finality_violations : int;
  mutable gt_unparseable_beneficiaries : int;
  mutable gt_failed_exploits : int;
  mutable gt_deposit_mapping_violations : int;
  mutable gt_withdrawal_mapping_violations : int;
  mutable gt_invalid_beneficiary_deposits : int;
  mutable gt_attack_events : int;
  mutable gt_attack_usd : float;
  mutable gt_attack_beneficiaries : int;
  mutable gt_attack_deployer_eoas : int;
  mutable gt_attack_withdrawal_ids : int;
  mutable gt_pre_window_fps : int;
  mutable gt_transfer_from_bridge : int;
}

let new_ground_truth () =
  {
    gt_native_deposits = 0;
    gt_erc20_deposits = 0;
    gt_erc20_withdrawals = 0;
    gt_native_withdrawals = 0;
    gt_incomplete_native_withdrawals = 0;
    gt_incomplete_erc20_withdrawals = 0;
    gt_phishing_transfers = 0;
    gt_direct_transfers = 0;
    gt_direct_transfer_usd = 0.0;
    gt_deposit_finality_violations = 0;
    gt_withdrawal_finality_violations = 0;
    gt_unparseable_beneficiaries = 0;
    gt_failed_exploits = 0;
    gt_deposit_mapping_violations = 0;
    gt_withdrawal_mapping_violations = 0;
    gt_invalid_beneficiary_deposits = 0;
    gt_attack_events = 0;
    gt_attack_usd = 0.0;
    gt_attack_beneficiaries = 0;
    gt_attack_deployer_eoas = 0;
    gt_attack_withdrawal_ids = 0;
    gt_pre_window_fps = 0;
    gt_transfer_from_bridge = 0;
  }

(** Metadata for Table 5 / Figure 8: incomplete withdrawals and the
    S-side balance of each beneficiary when the request was made. *)
type incomplete_withdrawal = {
  iw_beneficiary : Address.t;
  iw_ts : int;
  iw_usd : float;
  iw_balance_eth : float;  (** S-chain balance at request time, in ether *)
  iw_before_attack : bool;
}

type built = {
  bridge : Bridge.t;
  config : Config.t;
  pricing : Pricing.t;
  tokens : registered_token list;
  window : int * int;
  attack_time : int;
  discovery_time : int;
  ground_truth : ground_truth;
  first_window_withdrawal_id : int option;
  incomplete_withdrawals : incomplete_withdrawal list;
  (* Figure 1 series: initiation timestamps of bridge function calls. *)
  deposit_call_times : int list;
  withdrawal_call_times : int list;
}

(* ------------------------------------------------------------------ *)
(* Scheduled-action runner                                             *)

type action = { at : int; run : unit -> unit }

let run_schedule (actions : action list) =
  let sorted = List.stable_sort (fun a b -> compare a.at b.at) actions in
  List.iter (fun a -> a.run ()) sorted

(* Advance a chain clock without ever going backwards. *)
let advance_to chain ts = if ts > Chain.now chain then Chain.set_time chain ts

(* ------------------------------------------------------------------ *)
(* Value and user helpers                                              *)

(** Draw a USD transfer value: log-normal body (median ≈ $400) with a
    Pareto tail reaching the paper's multi-million-dollar transfers. *)
let draw_usd rng =
  if Prng.float rng 1.0 < 0.02 then Prng.pareto rng ~x_min:50_000.0 ~alpha:1.1
  else Prng.log_normal rng ~mu:(log 400.0) ~sigma:1.8

(** Convert a USD value into token units. *)
let token_units (spec : token_spec) usd : U256.t =
  let tokens = usd /. spec.ts_usd in
  let units = tokens *. (10.0 ** float_of_int spec.ts_decimals) in
  let u = U256.of_float (Float.max 1.0 units) in
  if U256.is_zero u then U256.one else u

let eth_to_wei eth = U256.of_float (eth *. 1e18)

(** Pick a token weighted by popularity. *)
let pick_token rng (tokens : registered_token list) : registered_token =
  let total = List.fold_left (fun a t -> a + t.rt_spec.ts_weight) 0 tokens in
  let n = Prng.int rng total in
  let rec go acc = function
    | [] -> List.hd tokens
    | t :: rest ->
        let acc = acc + t.rt_spec.ts_weight in
        if n < acc then t else go acc rest
  in
  go 0 tokens

(* A pool of funded user accounts. *)
type users = { pool : Address.t array }

let make_users bridge rng ~label ~count ~native_eth =
  (* Pool balances are log-normal around [native_eth] so user-held ETH
     spans several orders of magnitude, as real wallets do. *)
  let pool =
    Array.init count (fun i ->
        let a = Address.of_seed (Printf.sprintf "%s:user:%d:%d" label i (Prng.int rng 1_000_000)) in
        let bal = Prng.log_normal rng ~mu:(log native_eth) ~sigma:1.2 in
        Chain.fund bridge.Bridge.source.Bridge.chain a (eth_to_wei bal);
        Chain.fund bridge.Bridge.target.Bridge.chain a (eth_to_wei bal);
        a)
  in
  { pool }

let pick_user rng users = users.pool.(Prng.int rng (Array.length users.pool))

(** Mint source-chain tokens for a user (the operator owns lock-model
    tokens). *)
let mint_src bridge (rt : registered_token) user amount =
  let src = bridge.Bridge.source in
  let r =
    Chain.submit_tx src.Bridge.chain ~from_:src.Bridge.operator
      ~to_:rt.rt_mapping.Bridge.m_src_token
      ~input:(Erc20.mint_calldata ~to_:user ~amount)
      ()
  in
  assert (r.Xcw_evm.Types.r_status = Xcw_evm.Types.Success)

(* ------------------------------------------------------------------ *)
(* Pricing                                                             *)

let build_pricing bridge (tokens : registered_token list) : Pricing.t =
  let p = Pricing.create () in
  let src_id = bridge.Bridge.source.Bridge.chain.Chain.chain_id in
  let dst_id = bridge.Bridge.target.Bridge.chain.Chain.chain_id in
  List.iter
    (fun rt ->
      Pricing.register p ~chain_id:src_id
        ~token:(Address.to_hex rt.rt_mapping.Bridge.m_src_token)
        ~usd_per_token:rt.rt_spec.ts_usd ~decimals:rt.rt_spec.ts_decimals;
      Pricing.register p ~chain_id:dst_id
        ~token:(Address.to_hex rt.rt_mapping.Bridge.m_dst_token)
        ~usd_per_token:rt.rt_spec.ts_usd ~decimals:rt.rt_spec.ts_decimals)
    tokens;
  (* Wrapped natives are priced like ETH / the sidechain coin. *)
  Pricing.register p ~chain_id:src_id
    ~token:(Address.to_hex bridge.Bridge.source.Bridge.weth)
    ~usd_per_token:2500.0 ~decimals:18;
  Pricing.register p ~chain_id:dst_id
    ~token:(Address.to_hex bridge.Bridge.target.Bridge.weth)
    ~usd_per_token:2.5 ~decimals:18;
  p

(* ------------------------------------------------------------------ *)
(* Scaling                                                             *)

(** Scale a paper-sized count, keeping at least [min_] when the paper
    count is positive. *)
let scaled ?(min_ = 1) scale n =
  if n = 0 then 0 else max min_ (int_of_float (Float.round (float_of_int n *. scale)))
