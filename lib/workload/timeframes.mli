(** The data-extraction timeframes of the paper's Table 1. *)

type t = {
  tf_bridge : string;
  t0 : int;  (** start of the extended pre-window *)
  t1 : int;  (** start of the interval of interest *)
  t2 : int;  (** end of the interval of interest *)
  t3 : int;  (** end of the extended post-window *)
  attack : int;  (** attack timestamp, inside [t1; t2] *)
}

val nomad : t
val ronin : t
val rows : t list
val pp : Format.formatter -> t -> unit
