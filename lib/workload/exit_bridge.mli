(** Proof-carrying exit-bridge workload with pessimistic accounting.

    Models a "local exit tree" bridge lane on top of a benign {!Generic}
    base: the origin chain appends a Merkle leaf per exit deposit and
    seals the tree root per epoch; a bonded validator set attests to the
    sealed roots on the destination chain, where claims execute against
    a presented root and inclusion proof.  The simulated exit contracts
    deliberately verify {e nothing} — the watcher re-verifies every
    proof while decoding ({!Xcw_core.Decoder}) and the pessimistic
    accounting stratum ({!Xcw_core.Rules.accounting_rules}) derives the
    violations.

    Five attack classes the pre-existing 50 rules cannot flag are
    injected strictly after the benign build (same differential
    contract as {!Attacks}): claims against stale roots, forged
    inclusion proofs, exit-root divergence between chains, net-outflow
    violations (claims exceed deposits for a token/chain pair), and
    slashing evasion (a validator withdrawing stake after signing a
    divergent root). *)

module Report = Xcw_core.Report

(** Benign exit-lane shape, riding on [b_base].  All sizes are
    validated by {!build_benign}: [Invalid_argument] out of range. *)
type base = {
  b_seed : int;
  b_label : string;
  b_validators : int;  (** bonded validators; >= 2 *)
  b_epochs : int;  (** sealed epochs; >= 2 *)
  b_deposits_per_epoch : int;  (** >= 2 *)
  b_stake : int;  (** bond per validator; >= 1 *)
  b_tree_depth : int;
      (** exit-tree depth, [1 .. Merkle.max_depth]; capacity must cover
          the benign deposits plus an injection reserve of 4 leaves *)
  b_base : Generic.spec;  (** the benign bridge the lane rides on *)
}

val default_base : base
(** Seed 1, 3 validators, 2 epochs x 3 deposits, depth 8, on a
    small {!Generic.default_spec} base. *)

type spec = {
  e_class : Report.acc_class;
  e_base : base;
}

val default_spec : Report.acc_class -> spec

type injected = {
  inj_built : Scenario.built;
  inj_spec : spec;
  inj_attack_txs : string list;
      (** sorted tx hashes the class's accounting rule must flag —
          exactly these, nothing else.  For {!Report.Slashing_evasion}
          the divergence rule additionally flags
          [inj_divergence_txs]. *)
  inj_divergence_txs : string list;
      (** sorted root-signature tx hashes that (only for
          {!Report.Slashing_evasion}) also surface as exit-root
          divergence — the documented overlap of that class; empty for
          the other four *)
  inj_txs : string list;
      (** sorted tx hashes added relative to the benign twin (attack
          plus setup traffic such as the net-outflow deposits) *)
}

val build : spec -> injected
(** Benign base first, then the injection.  Deterministic: the same
    spec reproduces byte-identical chains. *)

val benign_twin : spec -> Scenario.built
(** The same benign scenario without the injection. *)

val build_benign : base -> Scenario.built
(** Just the benign exit lane: deposits, sealed epochs, unanimous
    honest attestations, claims of the tail half of the leaves with
    valid proofs against the final root.  Derives zero accounting
    violations. *)

val build_undeposited_claim : base -> Scenario.built
(** Benign lane plus one claim for a token that was never deposited —
    the edge the no-deposit net-outflow clause catches (and, since no
    leaf exists to prove, the forged-proof rule too). *)
