(** Span tracing: nested timed regions recorded into a bounded ring
    buffer.

    [with_ "datalog.stratum" f] times [f] on the tracer's {!Clock}
    (wall by default, or a manual clock for simulated time and
    deterministic tests), recording name, attributes, start, duration
    and nesting depth.  A span is recorded even when [f] raises, so
    traces stay complete across error paths.  Spans complete
    children-first (a child's record precedes its parent's), as in any
    post-order tracer.

    The buffer is a fixed-capacity ring: once full, the oldest records
    are overwritten and {!dropped} counts what was lost — tracing never
    grows without bound inside a long-lived monitor. *)

type record = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start : float;  (** clock timestamp at entry *)
  sp_duration : float;
  sp_depth : int;  (** 0 for a root span *)
}

type t
(** A tracer. *)

val create : ?capacity:int -> ?clock:Clock.t -> unit -> t
(** Capacity defaults to 4096 records; clock to {!Clock.wall}. *)

val noop : t
(** Records nothing; [with_] only runs the thunk. *)

val default : unit -> t
val set_default : t -> unit

val with_ :
  ?tracer:t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span on [tracer] (the default
    tracer if omitted). *)

val records : t -> record list
(** Completed spans, oldest first (at most [capacity]). *)

val dropped : t -> int
(** Records overwritten because the ring was full. *)

val clear : t -> unit
