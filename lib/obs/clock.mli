(** Time sources for span tracing.

    The pipeline lives in two time domains: real wall-clock time (what
    rule evaluation and decoding actually cost on this machine) and
    simulated seconds (what a real RPC node would have cost — see
    {!Xcw_rpc.Latency}).  A span tracer takes its timestamps from a
    pluggable clock so both domains can be traced: the default tracer
    runs on the wall clock, while a {!manual} clock is advanced
    explicitly — by simulated latency charges, or by tests that want
    deterministic span timings. *)

type t

val wall : t
(** The process wall clock ([Unix.gettimeofday]). *)

val manual : ?start:float -> unit -> t
(** A simulated clock starting at [start] (default [0.]); it only moves
    when {!advance} is called. *)

val now : t -> float

val advance : t -> float -> unit
(** Move a {!manual} clock forward by the given seconds.  Raises
    [Invalid_argument] on the wall clock or on negative amounts. *)
