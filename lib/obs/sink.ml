(** Exporters for metrics and spans; see the interface. *)

module Json = Xcw_util.Json

type store = {
  mutable st_metrics : Metrics.metric list;
  mutable st_spans : Span.record list;
}

type t =
  | Nil
  | Memory of store
  | Prometheus of (string -> unit)
  | Json_lines of (string -> unit)

let memory () = Memory { st_metrics = []; st_spans = [] }

let store = function
  | Memory st -> st
  | _ -> invalid_arg "Sink.store: not a Memory sink"

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Prometheus spells non-finite values NaN/+Inf/-Inf (JSON has none). *)
let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Json.float_string f

let add_labels buf labels =
  if labels <> [] then begin
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'
  end

let add_sample buf name labels value =
  Buffer.add_string buf name;
  add_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let kind_of_value = function
  | Metrics.V_counter _ -> "counter"
  | Metrics.V_gauge _ -> "gauge"
  | Metrics.V_histogram _ -> "histogram"

let prometheus_of_metrics metrics =
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun (m : Metrics.metric) ->
      if m.m_name <> !last_name then begin
        last_name := m.m_name;
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.m_name (kind_of_value m.m_value))
      end;
      match m.m_value with
      | Metrics.V_counter c -> add_sample buf m.m_name m.m_labels (string_of_int c)
      | Metrics.V_gauge g -> add_sample buf m.m_name m.m_labels (prom_float g)
      | Metrics.V_histogram h ->
          (* Cumulative _bucket series per the exposition convention. *)
          let cum = ref 0 in
          List.iter
            (fun (ub, count) ->
              cum := !cum + count;
              add_sample buf (m.m_name ^ "_bucket")
                (m.m_labels @ [ ("le", Json.float_string ub) ])
                (string_of_int !cum))
            h.h_buckets;
          add_sample buf (m.m_name ^ "_bucket")
            (m.m_labels @ [ ("le", "+Inf") ])
            (string_of_int h.h_count);
          add_sample buf (m.m_name ^ "_sum") m.m_labels (prom_float h.h_sum);
          add_sample buf (m.m_name ^ "_count") m.m_labels
            (string_of_int h.h_count))
    metrics;
  Buffer.contents buf

let parse_float s =
  match String.lowercase_ascii s with
  | "nan" -> Float.nan
  | "inf" | "+inf" -> Float.infinity
  | "-inf" -> Float.neg_infinity
  | _ -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> failwith (Printf.sprintf "Sink: bad float %S" s))

(* Parse one sample line: name{k="v",...} value *)
let parse_sample line =
  try
    let len = String.length line in
    let i = ref 0 in
    let is_name_char = function
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
      | _ -> false
    in
    while !i < len && is_name_char line.[!i] do incr i done;
    let name = String.sub line 0 !i in
    if name = "" then failwith "empty name";
    let labels = ref [] in
    if !i < len && line.[!i] = '{' then begin
      incr i;
      let rec pairs () =
        if line.[!i] = '}' then incr i
        else begin
          let ks = !i in
          while line.[!i] <> '=' do incr i done;
          let key = String.sub line ks (!i - ks) in
          incr i;
          if line.[!i] <> '"' then failwith "expected quote";
          incr i;
          let buf = Buffer.create 16 in
          let rec value () =
            match line.[!i] with
            | '"' -> incr i
            | '\\' ->
                (match line.[!i + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | c -> Buffer.add_char buf c);
                i := !i + 2;
                value ()
            | c ->
                Buffer.add_char buf c;
                incr i;
                value ()
          in
          value ();
          labels := (key, Buffer.contents buf) :: !labels;
          if line.[!i] = ',' then incr i;
          pairs ()
        end
      in
      pairs ()
    end;
    while !i < len && line.[!i] = ' ' do incr i done;
    let value = String.sub line !i (len - !i) in
    if value = "" then failwith "missing value";
    (name, List.rev !labels, value)
  with Invalid_argument _ | Failure _ ->
    failwith (Printf.sprintf "Sink: malformed exposition line %S" line)

type hist_acc = {
  mutable hb_cum : (float * int) list;  (** (le, cumulative) as parsed *)
  mutable hb_sum : float;
  mutable hb_count : int;
}

let strip_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  if ls > lf && String.sub s (ls - lf) lf = suf then Some (String.sub s 0 (ls - lf))
  else None

let metrics_of_prometheus text =
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if line.[0] = '#' then
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] -> Hashtbl.replace types name kind
        | _ -> ()
      else samples := parse_sample line :: !samples)
    (String.split_on_char '\n' text);
  let samples = List.rev !samples in
  let hist_part name =
    let check suf tag =
      match strip_suffix name suf with
      | Some base when Hashtbl.find_opt types base = Some "histogram" ->
          Some (base, tag)
      | _ -> None
    in
    match check "_bucket" `Bucket with
    | Some r -> Some r
    | None -> (
        match check "_sum" `Sum with
        | Some r -> Some r
        | None -> check "_count" `Count)
  in
  let hists : (string * Metrics.labels, hist_acc) Hashtbl.t =
    Hashtbl.create 16
  in
  let hist base labels =
    let key = (base, labels) in
    match Hashtbl.find_opt hists key with
    | Some h -> h
    | None ->
        let h = { hb_cum = []; hb_sum = 0.; hb_count = 0 } in
        Hashtbl.replace hists key h;
        h
  in
  let metrics = ref [] in
  List.iter
    (fun (name, labels, vstr) ->
      let labels = normalize_labels labels in
      match hist_part name with
      | Some (base, `Bucket) ->
          let le =
            match List.assoc_opt "le" labels with
            | Some le -> le
            | None -> failwith "Sink: _bucket sample without le label"
          in
          let rest = List.filter (fun (k, _) -> k <> "le") labels in
          if le <> "+Inf" then begin
            let h = hist base rest in
            h.hb_cum <-
              (parse_float le, int_of_float (parse_float vstr)) :: h.hb_cum
          end
      | Some (base, `Sum) -> (hist base labels).hb_sum <- parse_float vstr
      | Some (base, `Count) ->
          (hist base labels).hb_count <- int_of_float (parse_float vstr)
      | None -> (
          match Hashtbl.find_opt types name with
          | Some "counter" ->
              metrics :=
                {
                  Metrics.m_name = name;
                  m_labels = labels;
                  m_value = Metrics.V_counter (int_of_float (parse_float vstr));
                }
                :: !metrics
          | Some "gauge" ->
              metrics :=
                {
                  Metrics.m_name = name;
                  m_labels = labels;
                  m_value = Metrics.V_gauge (parse_float vstr);
                }
                :: !metrics
          | Some kind -> failwith ("Sink: unsupported metric type " ^ kind)
          | None -> failwith ("Sink: sample without # TYPE line: " ^ name)))
    samples;
  Hashtbl.iter
    (fun (base, labels) h ->
      let cum =
        List.sort (fun (a, _) (b, _) -> compare a b) (List.rev h.hb_cum)
      in
      let rec de_cumulate prev = function
        | [] -> []
        | (le, c) :: tl -> (le, c - prev) :: de_cumulate c tl
      in
      metrics :=
        {
          Metrics.m_name = base;
          m_labels = labels;
          m_value =
            Metrics.V_histogram
              {
                h_buckets = de_cumulate 0 cum;
                h_sum = h.hb_sum;
                h_count = h.hb_count;
              };
        }
        :: !metrics)
    hists;
  List.sort
    (fun (a : Metrics.metric) (b : Metrics.metric) ->
      compare (a.m_name, a.m_labels) (b.m_name, b.m_labels))
    !metrics

(* ------------------------------------------------------------------ *)
(* JSON codecs                                                         *)

let json_of_labels labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let labels_of_json = function
  | Json.Obj kvs ->
      List.map
        (function
          | k, Json.String v -> (k, v)
          | _ -> failwith "Sink: bad label value")
        kvs
  | _ -> failwith "Sink: bad labels"

let get key j =
  match Json.member key j with
  | Some v -> v
  | None -> failwith ("Sink: missing field " ^ key)

let to_float = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | Json.Null -> Float.nan  (* non-finite floats serialize as null *)
  | _ -> failwith "Sink: expected number"

let to_int = function
  | Json.Int i -> i
  | _ -> failwith "Sink: expected integer"

let to_string_j = function
  | Json.String s -> s
  | _ -> failwith "Sink: expected string"

let json_of_metric (m : Metrics.metric) =
  let tail =
    match m.m_value with
    | Metrics.V_counter c -> [ ("type", Json.String "counter"); ("value", Json.Int c) ]
    | Metrics.V_gauge g -> [ ("type", Json.String "gauge"); ("value", Json.Float g) ]
    | Metrics.V_histogram h ->
        [
          ("type", Json.String "histogram");
          ("sum", Json.Float h.h_sum);
          ("count", Json.Int h.h_count);
          ( "buckets",
            Json.List
              (List.map
                 (fun (ub, c) ->
                   Json.Obj [ ("le", Json.Float ub); ("count", Json.Int c) ])
                 h.h_buckets) );
        ]
  in
  Json.Obj
    (("name", Json.String m.m_name)
    :: ("labels", json_of_labels m.m_labels)
    :: tail)

let metric_of_json j =
  let name = to_string_j (get "name" j) in
  let labels = normalize_labels (labels_of_json (get "labels" j)) in
  let value =
    match to_string_j (get "type" j) with
    | "counter" -> Metrics.V_counter (to_int (get "value" j))
    | "gauge" -> Metrics.V_gauge (to_float (get "value" j))
    | "histogram" ->
        let buckets =
          match get "buckets" j with
          | Json.List bs ->
              List.map
                (fun b -> (to_float (get "le" b), to_int (get "count" b)))
                bs
          | _ -> failwith "Sink: bad buckets"
        in
        Metrics.V_histogram
          {
            h_buckets = buckets;
            h_sum = to_float (get "sum" j);
            h_count = to_int (get "count" j);
          }
    | kind -> failwith ("Sink: unknown metric type " ^ kind)
  in
  { Metrics.m_name = name; m_labels = labels; m_value = value }

let json_of_span (r : Span.record) =
  Json.Obj
    [
      ("name", Json.String r.sp_name);
      ("start", Json.Float r.sp_start);
      ("duration", Json.Float r.sp_duration);
      ("depth", Json.Int r.sp_depth);
      ("attrs", json_of_labels r.sp_attrs);
    ]

let span_of_json j =
  {
    Span.sp_name = to_string_j (get "name" j);
    sp_start = to_float (get "start" j);
    sp_duration = to_float (get "duration" j);
    sp_depth = to_int (get "depth" j);
    sp_attrs = labels_of_json (get "attrs" j);
  }

let json_lines_of_metrics metrics =
  String.concat ""
    (List.map (fun m -> Json.to_string (json_of_metric m) ^ "\n") metrics)

let json_lines_of_spans spans =
  String.concat ""
    (List.map (fun s -> Json.to_string (json_of_span s) ^ "\n") spans)

(* ------------------------------------------------------------------ *)
(* Sink dispatch                                                       *)

let emit_metrics t metrics =
  match t with
  | Nil -> ()
  | Memory st -> st.st_metrics <- metrics
  | Prometheus f -> f (prometheus_of_metrics metrics)
  | Json_lines f -> f (json_lines_of_metrics metrics)

let emit_spans t spans =
  match t with
  | Nil -> ()
  | Memory st -> st.st_spans <- st.st_spans @ spans
  | Prometheus _ -> ()  (* the exposition format has no span series *)
  | Json_lines f -> f (json_lines_of_spans spans)

let write_string_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write_prometheus_file ~path metrics =
  write_string_file path (prometheus_of_metrics metrics)

let write_spans_file ~path spans =
  write_string_file path (json_lines_of_spans spans)
