(** Metrics registry: labelled counters, gauges and histograms.

    Instruments are interned by [(name, labels)] — asking twice returns
    the same instrument — and hot-path updates ([inc]/[set]/[observe])
    are O(1) mutations with no allocation, so instrumentation can live
    inside the decode and rule-evaluation loops.  Updates are
    domain-safe ([Atomic] counters, gauges and histogram buckets;
    interning and snapshots lock the registry), so pooled decode and
    parallel stratum evaluation never lose increments.

    There is one process-wide {!default} registry (every component
    records there unless told otherwise) and components accept an
    injectable registry for isolated tests.  The shared {!noop}
    registry is permanently disabled: its instruments are inert dummies
    and updating them costs one branch — the "Nil sink" baseline the
    [obs] bench measures against.

    Histograms bucket over logarithmically spaced upper bounds using
    exactly the {!Xcw_util.Stats.log_histogram} bucketing (same index
    formula, same edge clamping), except that non-positive samples are
    clamped into the first bucket instead of being dropped — a metrics
    histogram must account for every observation in [sum]/[count]. *)

type labels = (string * string) list
(** Sorted by key at interning time; order given by the caller does not
    matter for instrument identity. *)

(** Log-spaced bucket layout: bucket [i] covers samples up to
    [10^(lo_exp + (i+1)/buckets_per_decade)], with
    [(hi_exp - lo_exp) * buckets_per_decade] buckets total. *)
type histogram_conf = {
  lo_exp : int;
  hi_exp : int;
  buckets_per_decade : int;
}

val default_histogram_conf : histogram_conf
(** Decades [10^-4 .. 10^3] seconds, 4 buckets per decade: covers
    colocated RPC fetches (~2 ms) through the paper's 138 s worst
    case. *)

module Counter : sig
  type t

  val inc : t -> unit
  val add : t -> int -> unit
  (** Raises [Invalid_argument] on negative increments. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** [(upper_bound, count-in-bucket)] pairs (non-cumulative), covering
      every observation: out-of-range samples are clamped to the edge
      buckets. *)
end

type t
(** A registry. *)

val create : ?enabled:bool -> unit -> t
(** A fresh registry; [enabled] defaults to [true].  A disabled
    registry hands out inert instruments and interns nothing. *)

val noop : t
(** The shared disabled registry. *)

val enabled : t -> bool

val default : unit -> t
(** The process-wide default registry (live unless {!set_default} said
    otherwise). *)

val set_default : t -> unit
(** Swap the default registry — e.g. to [noop] for an overhead
    baseline, or to a fresh registry per bench run.  Instruments
    resolved from the previous default keep recording there. *)

val counter : t -> ?labels:labels -> string -> Counter.t
val gauge : t -> ?labels:labels -> string -> Gauge.t

val histogram :
  t -> ?conf:histogram_conf -> ?labels:labels -> string -> Histogram.t

(** All three raise [Invalid_argument] if the name is not a valid
    Prometheus metric name ([[a-zA-Z_:][a-zA-Z0-9_:]*]), or if the
    [(name, labels)] pair is already registered as a different
    instrument kind. *)

(* ------------------------------------------------------------------ *)
(* Snapshots (consumed by {!Sink})                                     *)

type histogram_snapshot = {
  h_buckets : (float * int) list;  (** per-bucket, not cumulative *)
  h_sum : float;
  h_count : int;
}

type value =
  | V_counter of int
  | V_gauge of float
  | V_histogram of histogram_snapshot

type metric = { m_name : string; m_labels : labels; m_value : value }

val snapshot : t -> metric list
(** Every registered instrument, sorted by [(name, labels)]. *)

val find : metric list -> ?labels:labels -> string -> metric option
(** Convenience lookup in a snapshot (labels in any order). *)
