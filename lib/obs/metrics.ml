(** Metrics registry: labelled counters, gauges and histograms with
    O(1) hot-path updates.  See the interface for the model. *)

type labels = (string * string) list

type histogram_conf = {
  lo_exp : int;
  hi_exp : int;
  buckets_per_decade : int;
}

let default_histogram_conf = { lo_exp = -4; hi_exp = 3; buckets_per_decade = 4 }

let conf_total c = (c.hi_exp - c.lo_exp) * c.buckets_per_decade

(* Same index formula as Stats.log_histogram, including the clamp to
   the edge buckets; non-positive samples land in bucket 0 (Stats drops
   them, a metrics histogram must not). *)
let bucket_index c x =
  if x <= 0.0 then 0
  else begin
    let total = conf_total c in
    let pos =
      (log10 x -. float_of_int c.lo_exp) *. float_of_int c.buckets_per_decade
    in
    let idx = int_of_float (Float.floor pos) in
    if idx < 0 then 0 else if idx >= total then total - 1 else idx
  end

let bucket_upper c i =
  10.0
  ** (float_of_int c.lo_exp
     +. (float_of_int (i + 1) /. float_of_int c.buckets_per_decade))

(* Lock-free float accumulation: retry CAS until our read of the cell
   was not concurrently overwritten.  Updates stay O(1) and
   allocation-light on the uncontended hot path while surviving
   concurrent observers on multiple domains (decode and stratum
   evaluation both run pooled). *)
let atomic_fadd cell v =
  let rec go () =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (old +. v)) then go ()
  in
  go ()

module Counter = struct
  type t = { c : int Atomic.t; c_live : bool }

  let make live = { c = Atomic.make 0; c_live = live }
  let inc t = if t.c_live then ignore (Atomic.fetch_and_add t.c 1)

  let add t n =
    if n < 0 then invalid_arg "Counter.add: negative increment";
    if t.c_live then ignore (Atomic.fetch_and_add t.c n)

  let value t = Atomic.get t.c
end

module Gauge = struct
  type t = { g : float Atomic.t; g_live : bool }

  let make live = { g = Atomic.make 0.; g_live = live }
  let set t v = if t.g_live then Atomic.set t.g v
  let add t v = if t.g_live then atomic_fadd t.g v
  let value t = Atomic.get t.g
end

module Histogram = struct
  type t = {
    h_conf : histogram_conf;
    h_counts : int Atomic.t array;
    h_sum : float Atomic.t;
    h_count : int Atomic.t;
    h_live : bool;
  }

  let make conf live =
    {
      h_conf = conf;
      h_counts = Array.init (max 1 (conf_total conf)) (fun _ -> Atomic.make 0);
      h_sum = Atomic.make 0.;
      h_count = Atomic.make 0;
      h_live = live;
    }

  let observe t x =
    if t.h_live then begin
      ignore (Atomic.fetch_and_add t.h_count 1);
      atomic_fadd t.h_sum x;
      let i = bucket_index t.h_conf x in
      ignore (Atomic.fetch_and_add t.h_counts.(i) 1)
    end

  let count t = Atomic.get t.h_count
  let sum t = Atomic.get t.h_sum

  let buckets t =
    Array.to_list
      (Array.mapi
         (fun i c -> (bucket_upper t.h_conf i, Atomic.get c))
         t.h_counts)
end

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t

type t = {
  r_enabled : bool;
  r_tbl : (string * labels, instrument) Hashtbl.t;
  r_mu : Mutex.t;  (** guards [r_tbl]: interning may race across domains *)
}

let create ?(enabled = true) () =
  { r_enabled = enabled; r_tbl = Hashtbl.create 64; r_mu = Mutex.create () }

let noop = create ~enabled:false ()
let enabled t = t.r_enabled

let default_registry = ref (create ())
let default () = !default_registry
let set_default r = default_registry := r

let valid_name name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

(* Shared inert instruments handed out by disabled registries: nothing
   is interned, updates cost one branch. *)
let dead_counter = Counter.make false
let dead_gauge = Gauge.make false
let dead_histogram = Histogram.make default_histogram_conf false

let intern t ~labels name make pick kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let key = (name, normalize_labels labels) in
  Mutex.lock t.r_mu;
  let result =
    match Hashtbl.find_opt t.r_tbl key with
    | Some i -> (
        match pick i with
        | Some v -> Ok v
        | None ->
            Error
              (Printf.sprintf "Metrics: %s already registered as another kind"
                 name))
    | None ->
        let v, i = make () in
        Hashtbl.replace t.r_tbl key i;
        ignore kind;
        Ok v
  in
  Mutex.unlock t.r_mu;
  match result with Ok v -> v | Error msg -> invalid_arg msg

let counter t ?(labels = []) name =
  if not t.r_enabled then dead_counter
  else
    intern t ~labels name
      (fun () ->
        let c = Counter.make true in
        (c, I_counter c))
      (function I_counter c -> Some c | _ -> None)
      "counter"

let gauge t ?(labels = []) name =
  if not t.r_enabled then dead_gauge
  else
    intern t ~labels name
      (fun () ->
        let g = Gauge.make true in
        (g, I_gauge g))
      (function I_gauge g -> Some g | _ -> None)
      "gauge"

let histogram t ?(conf = default_histogram_conf) ?(labels = []) name =
  if not t.r_enabled then dead_histogram
  else
    intern t ~labels name
      (fun () ->
        let h = Histogram.make conf true in
        (h, I_histogram h))
      (function I_histogram h -> Some h | _ -> None)
      "histogram"

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type histogram_snapshot = {
  h_buckets : (float * int) list;
  h_sum : float;
  h_count : int;
}

type value =
  | V_counter of int
  | V_gauge of float
  | V_histogram of histogram_snapshot

type metric = { m_name : string; m_labels : labels; m_value : value }

let snapshot t =
  Mutex.lock t.r_mu;
  let metrics = Hashtbl.fold
    (fun (name, labels) instr acc ->
      let value =
        match instr with
        | I_counter c -> V_counter (Counter.value c)
        | I_gauge g -> V_gauge (Gauge.value g)
        | I_histogram h ->
            V_histogram
              {
                h_buckets = Histogram.buckets h;
                h_sum = Histogram.sum h;
                h_count = Histogram.count h;
              }
      in
      { m_name = name; m_labels = labels; m_value = value } :: acc)
    t.r_tbl []
  in
  Mutex.unlock t.r_mu;
  List.sort
    (fun a b -> compare (a.m_name, a.m_labels) (b.m_name, b.m_labels))
    metrics

let find metrics ?(labels = []) name =
  let labels = normalize_labels labels in
  List.find_opt (fun m -> m.m_name = name && m.m_labels = labels) metrics
