(** Time sources for span tracing: the wall clock, or a manual clock
    advanced explicitly (simulated time, deterministic tests). *)

type t = Wall | Manual of { mutable m_now : float }

let wall = Wall
let manual ?(start = 0.) () = Manual { m_now = start }

let now = function Wall -> Unix.gettimeofday () | Manual m -> m.m_now

let advance t dt =
  if dt < 0. then invalid_arg "Clock.advance: negative amount";
  match t with
  | Wall -> invalid_arg "Clock.advance: wall clock"
  | Manual m -> m.m_now <- m.m_now +. dt
