(** Span tracing into a bounded ring buffer; see the interface. *)

type record = {
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start : float;
  sp_duration : float;
  sp_depth : int;
}

type t = {
  t_clock : Clock.t;
  t_ring : record option array;  (** [None] = slot never written *)
  mutable t_next : int;  (** next write position *)
  mutable t_written : int;  (** total records ever written *)
  mutable t_depth : int;  (** current nesting depth *)
  t_live : bool;
}

let create ?(capacity = 4096) ?(clock = Clock.wall) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  {
    t_clock = clock;
    t_ring = Array.make capacity None;
    t_next = 0;
    t_written = 0;
    t_depth = 0;
    t_live = true;
  }

let noop =
  {
    t_clock = Clock.manual ();
    t_ring = Array.make 1 None;
    t_next = 0;
    t_written = 0;
    t_depth = 0;
    t_live = false;
  }

let default_tracer = ref (create ())
let default () = !default_tracer
let set_default t = default_tracer := t

let push t r =
  t.t_ring.(t.t_next) <- Some r;
  t.t_next <- (t.t_next + 1) mod Array.length t.t_ring;
  t.t_written <- t.t_written + 1

let with_ ?tracer ?(attrs = []) name f =
  let t = match tracer with Some t -> t | None -> !default_tracer in
  if not t.t_live then f ()
  else begin
    let start = Clock.now t.t_clock in
    let depth = t.t_depth in
    t.t_depth <- depth + 1;
    let finish () =
      t.t_depth <- depth;
      push t
        {
          sp_name = name;
          sp_attrs = attrs;
          sp_start = start;
          sp_duration = Clock.now t.t_clock -. start;
          sp_depth = depth;
        }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let records t =
  let cap = Array.length t.t_ring in
  let n = min t.t_written cap in
  (* Oldest surviving record sits at t_next when the ring has wrapped,
     at 0 otherwise. *)
  let first = if t.t_written > cap then t.t_next else 0 in
  List.init n (fun i ->
      match t.t_ring.((first + i) mod cap) with
      | Some r -> r
      | None -> assert false)

let dropped t = max 0 (t.t_written - Array.length t.t_ring)

let clear t =
  Array.fill t.t_ring 0 (Array.length t.t_ring) None;
  t.t_next <- 0;
  t.t_written <- 0;
  t.t_depth <- 0
