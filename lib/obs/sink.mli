(** Pluggable exporters for metric snapshots and span records.

    The codecs are pure string functions so they can be round-tripped
    in tests; the [t] variant wires them to a destination.  Histograms
    are exported in the Prometheus cumulative convention
    ([_bucket{le=...}] / [_sum] / [_count] series) and converted back
    to the per-bucket counts of {!Metrics.histogram_snapshot} by the
    parser, so [metrics_of_prometheus (prometheus_of_metrics m)]
    recovers every counter, gauge and histogram exactly. *)

type t =
  | Nil  (** Discard everything (overhead baseline). *)
  | Memory of store  (** Accumulate in memory, for assertions. *)
  | Prometheus of (string -> unit)
      (** Emit one Prometheus text exposition per [emit_metrics]. *)
  | Json_lines of (string -> unit)
      (** Emit one JSON object per line, for metrics and spans. *)

and store = {
  mutable st_metrics : Metrics.metric list;
      (** Most recent snapshot emitted. *)
  mutable st_spans : Span.record list;  (** All spans emitted, in order. *)
}

val memory : unit -> t
(** A fresh [Memory] sink. *)

val store : t -> store
(** The store of a [Memory] sink; raises [Invalid_argument] on other
    sinks. *)

val emit_metrics : t -> Metrics.metric list -> unit
val emit_spans : t -> Span.record list -> unit

(** {2 Pure codecs} *)

val prometheus_of_metrics : Metrics.metric list -> string
(** Text exposition format: [# TYPE] comment lines, label values
    escaped per the Prometheus spec (backslash, double quote,
    newline). *)

val metrics_of_prometheus : string -> Metrics.metric list
(** Parse an exposition produced by {!prometheus_of_metrics} back into
    a snapshot (sorted, as {!Metrics.snapshot} returns).  Raises
    [Failure] on malformed input. *)

val json_of_metric : Metrics.metric -> Xcw_util.Json.t
val metric_of_json : Xcw_util.Json.t -> Metrics.metric
(** Raises [Failure] on malformed input. *)

val json_lines_of_metrics : Metrics.metric list -> string
val json_of_span : Span.record -> Xcw_util.Json.t
val span_of_json : Xcw_util.Json.t -> Span.record
val json_lines_of_spans : Span.record list -> string

(** {2 File helpers (used by [bin/xcw])} *)

val write_prometheus_file : path:string -> Metrics.metric list -> unit
val write_spans_file : path:string -> Span.record list -> unit
