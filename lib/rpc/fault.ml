module Prng = Xcw_util.Prng

type error =
  | Transient of string
  | Timeout
  | Rate_limited of { retry_after : float }
  | Tracer_unavailable
  | Truncated_range of { served_to : int }
  | Quorum_divergence of { agreeing : int; needed : int; responders : int }
  | Quorum_unavailable of { responders : int; needed : int }

let error_to_string = function
  | Transient msg -> Printf.sprintf "transient: %s" msg
  | Timeout -> "timeout"
  | Rate_limited { retry_after } ->
      Printf.sprintf "rate limited (retry after %.3fs)" retry_after
  | Tracer_unavailable -> "tracer unavailable"
  | Truncated_range { served_to } ->
      Printf.sprintf "log range truncated at block %d" served_to
  | Quorum_divergence { agreeing; needed; responders } ->
      Printf.sprintf
        "quorum divergence: best agreement %d/%d among %d responders" agreeing
        needed responders
  | Quorum_unavailable { responders; needed } ->
      Printf.sprintf "quorum unavailable: %d responders, %d required"
        responders needed

type method_class = Receipt | Transaction | Balance | Logs | Trace | Head

type probs = { p_transient : float; p_timeout : float }

type plan = {
  f_receipt : probs;
  f_transaction : probs;
  f_balance : probs;
  f_logs : probs;
  f_trace : probs;
  f_head : probs;
  f_rate_limit_prob : float;
  f_rate_limit_burst : int;
  f_retry_after : float;
  f_timeout_cost : float;
  f_logs_range_cap : int option;
  f_trace_outage_prob : float;
  f_trace_outage_len : int;
  f_stale_head_lag : int;
  f_reorg_prob : float;
  f_reorg_depth : int;
  f_byz_log_mutate : float;
  f_byz_log_drop : float;
  f_byz_receipt_forge : float;
  f_byz_trace_truncate : float;
  f_byz_head_equivocate : float;
}

let no_probs = { p_transient = 0.; p_timeout = 0. }

let none =
  {
    f_receipt = no_probs;
    f_transaction = no_probs;
    f_balance = no_probs;
    f_logs = no_probs;
    f_trace = no_probs;
    f_head = no_probs;
    f_rate_limit_prob = 0.;
    f_rate_limit_burst = 0;
    f_retry_after = 0.;
    f_timeout_cost = 10.;
    f_logs_range_cap = None;
    f_trace_outage_prob = 0.;
    f_trace_outage_len = 0;
    f_stale_head_lag = 0;
    f_reorg_prob = 0.;
    f_reorg_depth = 0;
    f_byz_log_mutate = 0.;
    f_byz_log_drop = 0.;
    f_byz_receipt_forge = 0.;
    f_byz_trace_truncate = 0.;
    f_byz_head_equivocate = 0.;
  }

let moderate =
  {
    f_receipt = { p_transient = 0.02; p_timeout = 0.01 };
    f_transaction = { p_transient = 0.02; p_timeout = 0.01 };
    f_balance = { p_transient = 0.02; p_timeout = 0.01 };
    f_logs = { p_transient = 0.02; p_timeout = 0.01 };
    (* trace timeouts match the paper's 6.5% Ronin rate (Table 2) *)
    f_trace = { p_transient = 0.03; p_timeout = 0.065 };
    f_head = { p_transient = 0.01; p_timeout = 0.005 };
    f_rate_limit_prob = 0.005;
    f_rate_limit_burst = 3;
    f_retry_after = 1.0;
    f_timeout_cost = 10.0;
    f_logs_range_cap = Some 2000;
    f_trace_outage_prob = 0.002;
    f_trace_outage_len = 25;
    f_stale_head_lag = 2;
    f_reorg_prob = 0.002;
    f_reorg_depth = 3;
    f_byz_log_mutate = 0.;
    f_byz_log_drop = 0.;
    f_byz_receipt_forge = 0.;
    f_byz_trace_truncate = 0.;
    f_byz_head_equivocate = 0.;
  }

(* A lying node: never refuses a request, but a sizeable fraction of
   its answers are corrupted.  Availability-wise it looks perfectly
   healthy — only cross-validation can catch it. *)
let byzantine =
  {
    none with
    f_byz_log_mutate = 0.3;
    f_byz_log_drop = 0.3;
    f_byz_receipt_forge = 0.3;
    f_byz_trace_truncate = 0.3;
    f_byz_head_equivocate = 0.3;
  }

let is_byzantine p =
  p.f_byz_log_mutate > 0. || p.f_byz_log_drop > 0.
  || p.f_byz_receipt_forge > 0.
  || p.f_byz_trace_truncate > 0.
  || p.f_byz_head_equivocate > 0.

let transient_probs { p_transient; p_timeout } =
  p_transient < 1. && p_timeout < 1.

(* Byzantine plans are never transient: a corrupted response *succeeds*
   from the client's point of view, so no amount of retrying repairs
   it — only quorum reads do. *)
let is_transient p =
  transient_probs p.f_receipt && transient_probs p.f_transaction
  && transient_probs p.f_balance && transient_probs p.f_logs
  && transient_probs p.f_trace && transient_probs p.f_head
  && p.f_rate_limit_prob < 1.
  && p.f_trace_outage_prob < 1.
  && p.f_reorg_prob < 1.
  && not (is_byzantine p)

type t = {
  t_plan : plan;
  t_rng : Prng.t;
  t_byz_rng : Prng.t;
      (* separate stream: Byzantine decisions and mutations never
         perturb the availability fault stream, so adding corruption to
         a plan leaves its transient faults bit-identical *)
  mutable t_rate_limit_left : int;
  mutable t_trace_outage_left : int;
  mutable t_faults : int;
  mutable t_reorgs : int;
  mutable t_byz : int;
}

let create ~seed plan =
  {
    t_plan = plan;
    t_rng = Prng.create (seed lxor 0x5f4c7);
    t_byz_rng = Prng.create (seed lxor 0x3a9d1);
    t_rate_limit_left = 0;
    t_trace_outage_left = 0;
    t_faults = 0;
    t_reorgs = 0;
    t_byz = 0;
  }

let plan t = t.t_plan

let class_probs plan = function
  | Receipt -> plan.f_receipt
  | Transaction -> plan.f_transaction
  | Balance -> plan.f_balance
  | Logs -> plan.f_logs
  | Trace -> plan.f_trace
  | Head -> plan.f_head

let fault t e =
  t.t_faults <- t.t_faults + 1;
  Some e

let intercept t cls =
  let p = t.t_plan in
  (* An ongoing 429 burst rejects every method class until it drains. *)
  if t.t_rate_limit_left > 0 then begin
    t.t_rate_limit_left <- t.t_rate_limit_left - 1;
    fault t (Rate_limited { retry_after = p.f_retry_after })
  end
  else if
    p.f_rate_limit_prob > 0. && Prng.float t.t_rng 1.0 < p.f_rate_limit_prob
  then begin
    t.t_rate_limit_left <- max 0 (p.f_rate_limit_burst - 1);
    fault t (Rate_limited { retry_after = p.f_retry_after })
  end
  else if cls = Trace && t.t_trace_outage_left > 0 then begin
    t.t_trace_outage_left <- t.t_trace_outage_left - 1;
    fault t Tracer_unavailable
  end
  else if
    cls = Trace && p.f_trace_outage_prob > 0.
    && Prng.float t.t_rng 1.0 < p.f_trace_outage_prob
  then begin
    t.t_trace_outage_left <- max 0 (p.f_trace_outage_len - 1);
    fault t Tracer_unavailable
  end
  else
    let { p_transient; p_timeout } = class_probs p cls in
    if p_timeout > 0. && Prng.float t.t_rng 1.0 < p_timeout then
      fault t Timeout
    else if p_transient > 0. && Prng.float t.t_rng 1.0 < p_transient then
      fault t
        (Transient
           (Prng.pick t.t_rng
              [ "connection reset"; "http 503"; "bad response body" ]))
    else None

let observe_head t ~head =
  let p = t.t_plan in
  if p.f_reorg_prob > 0. && Prng.float t.t_rng 1.0 < p.f_reorg_prob then begin
    t.t_reorgs <- t.t_reorgs + 1;
    let depth = 1 + Prng.int t.t_rng (max 1 p.f_reorg_depth) in
    (head, Some (max 0 (head - depth)))
  end
  else if p.f_stale_head_lag > 0 then
    (max 0 (head - Prng.int t.t_rng (p.f_stale_head_lag + 1)), None)
  else (head, None)

type byz_action =
  | Byz_mutate_log
  | Byz_drop_log
  | Byz_forge_status
  | Byz_truncate_trace
  | Byz_equivocate_head

(* Decide whether a *served* response of this class gets corrupted.
   Draws are gated on prob > 0 and come from the dedicated Byzantine
   stream, so plans without a Byzantine tier never touch it. *)
let byz_intercept t cls =
  let p = t.t_plan in
  let draw prob = prob > 0. && Prng.float t.t_byz_rng 1.0 < prob in
  match cls with
  | Receipt ->
      if draw p.f_byz_receipt_forge then Some Byz_forge_status
      else if draw p.f_byz_log_mutate then Some Byz_mutate_log
      else None
  | Logs ->
      if draw p.f_byz_log_drop then Some Byz_drop_log
      else if draw p.f_byz_log_mutate then Some Byz_mutate_log
      else None
  | Trace -> if draw p.f_byz_trace_truncate then Some Byz_truncate_trace else None
  | Head -> if draw p.f_byz_head_equivocate then Some Byz_equivocate_head else None
  | Transaction | Balance -> None

let byz_rng t = t.t_byz_rng
let note_byz t = t.t_byz <- t.t_byz + 1

let faults_injected t = t.t_faults
let reorgs_injected t = t.t_reorgs
let byz_injected t = t.t_byz
