(** Simulated RPC latency model.

    The paper's fact-extraction latency (Table 2, Figure 4) is dominated
    by node behaviour: plain receipt fetches are fast, while
    [debug_traceTransaction] (needed for native-value transfers) is
    resource-intensive and sometimes times out, triggering retries — one
    Ronin transaction took 138.15 s and 6.5% of native transfers
    exceeded 10 s.

    We model each method's latency as a log-normal base draw plus a
    geometric retry process for the tracer.  Parameters are calibrated
    per bridge so the reproduced Table 2 / Figure 4 match the paper's
    shape: native ≫ non-native, heavy upper tail on native only. *)

module Prng = Xcw_util.Prng

type profile = {
  receipt_mu : float;  (** log-normal mu for receipt/log fetches *)
  receipt_sigma : float;
  trace_mu : float;  (** log-normal mu for debug_traceTransaction *)
  trace_sigma : float;
  trace_timeout_prob : float;  (** probability one tracer attempt times out *)
  trace_timeout_cost : float;  (** seconds consumed by a timed-out attempt *)
  max_latency : float;  (** hard cap (the 138.15 s-style worst case) *)
}

(** Calibrated to the Ronin rows of Table 2: non-native avg 0.28 s /
    median 0.23 s; native median 0.35 s with 6.5%% above 10 s. *)
let ronin_profile =
  {
    receipt_mu = log 0.22;
    receipt_sigma = 0.45;
    trace_mu = log 0.13;
    trace_sigma = 0.7;
    trace_timeout_prob = 0.062;
    trace_timeout_cost = 10.5;
    max_latency = 138.15;
  }

(** Calibrated to the Nomad rows of Table 2: non-native avg 0.26 s /
    median 0.19 s; native median 0.78 s, max 8.78 s. *)
let nomad_profile =
  {
    receipt_mu = log 0.18;
    receipt_sigma = 0.5;
    trace_mu = log 0.55;
    trace_sigma = 0.45;
    trace_timeout_prob = 0.004;
    trace_timeout_cost = 4.0;
    max_latency = 8.78;
  }

(** An ideal co-located node: negligible latency, no timeouts.  Used by
    tests and by the "hosting a node alongside XChainWatcher" discussion
    point in Section 4.2.1. *)
let colocated_profile =
  {
    receipt_mu = log 0.002;
    receipt_sigma = 0.2;
    trace_mu = log 0.01;
    trace_sigma = 0.2;
    trace_timeout_prob = 0.0;
    trace_timeout_cost = 0.0;
    max_latency = 1.0;
  }

let clamp profile x = Float.min x profile.max_latency

(** Latency of a receipt / logs / balance fetch. *)
let receipt_fetch profile rng =
  clamp profile
    (Prng.log_normal rng ~mu:profile.receipt_mu ~sigma:profile.receipt_sigma)

(** Latency of one [debug_traceTransaction] including retries after
    timeouts. *)
let trace_fetch profile rng =
  let base =
    clamp profile
      (Prng.log_normal rng ~mu:profile.trace_mu ~sigma:profile.trace_sigma)
  in
  (* Each attempt independently times out with [trace_timeout_prob];
     retries repeat until success, each failed attempt costing
     [trace_timeout_cost] (plus growing backoff).  The running total is
     clamped per attempt, and retrying stops once the cap is reached —
     a fetch abandoned at [max_latency] cannot be retried past it — so
     the result is monotone in [max_latency], not just capped at the
     end. *)
  let rec retries total attempt =
    if total >= profile.max_latency then profile.max_latency
    else if
      profile.trace_timeout_prob > 0.0
      && Prng.float rng 1.0 < profile.trace_timeout_prob
      && attempt < 12
    then
      retries
        (clamp profile
           (total +. profile.trace_timeout_cost +. (0.5 *. float_of_int attempt)))
        (attempt + 1)
    else total
  in
  retries base 0
