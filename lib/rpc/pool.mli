(** Byzantine-tolerant quorum reads over multiple RPC endpoints.

    A single endpoint is a single point of trust: PR 2's fault model is
    fail-stop, but a {e lying} node ({!Fault} Byzantine tier) answers
    requests successfully with corrupted data, silently poisoning the
    fact base.  The pool fans each logical request out to N
    independently seeded {!Rpc.t} endpoints (each wrapping the same
    chain but with its own fault plan), cross-validates the responses
    by canonical content hash, and accepts a result only when at least
    k endpoints agree on the exact same content.

    Why k-of-n + content hashing suffices here: observation is
    read-only, so there is no state to equivocate about over time — a
    response is either the chain's answer or it is not, and honest
    endpoints serving the same chain produce byte-identical answers.
    With at most f < k non-colluding Byzantine endpoints, every
    accepted value is honest (a corrupted value would need k identical
    corruptions drawn from independent PRNG streams), and with f >= k
    independent liars no corrupted group reaches quorum either — the
    pool refuses ([Quorum_divergence]) instead of serving corrupt
    data.

    Endpoints are scored: a minority that disagrees with an accepted
    quorum value accrues suspicion and halves its trust; repeat
    offenders are quarantined (excluded from fan-out) and readmitted
    through probation after a clean streak, with quarantine terms
    doubling on relapse.  Availability failures (timeouts, 429s) are
    {e not} suspicious — they are what {!Client} retries are for.

    Head observations get a numeric quorum instead of an exact one:
    honest nodes may lag a few blocks ([f_stale_head_lag]), so the pool
    accepts the k-th highest reported head (at least k endpoints claim
    to have reached it) and only counts deviations beyond
    [q_head_tolerance] as disagreements.

    Everything surfaces through {!Xcw_obs.Metrics}
    ([xcw_pool_requests_total], [xcw_pool_disagreements_total],
    [xcw_pool_refusals_total], per-endpoint [xcw_pool_endpoint_trust]
    gauges) and the structured {!health} report. *)

module Types = Xcw_evm.Types
module Address = Xcw_evm.Address
module U256 = Xcw_uint256.Uint256

type policy = {
  q_quorum : int;  (** k: endpoints that must agree on content *)
  q_suspicion_limit : int;
      (** disagreements before an active endpoint is quarantined *)
  q_quarantine_requests : int;
      (** logical requests a first quarantine lasts (doubles on
          relapse) *)
  q_probation_agreements : int;
      (** consecutive agreements needed to graduate probation *)
  q_head_tolerance : int;
      (** blocks an honest head report may deviate from the accepted
          head without suspicion (covers [f_stale_head_lag]) *)
}

val default_policy : policy
(** k = 2, quarantine after 3 disagreements for 64 requests, 16 clean
    reads to graduate probation, 3-block head tolerance. *)

type endpoint_state = Active | Probation | Quarantined

type endpoint_report = {
  er_index : int;  (** position in the [create] list *)
  er_state : endpoint_state;
  er_trust : float;  (** 1.0 fresh, halved per disagreement *)
  er_agreements : int;  (** responses that matched an accepted quorum *)
  er_disagreements : int;  (** responses outvoted by an accepted quorum *)
  er_errors : int;  (** availability failures (never suspicious) *)
  er_quarantines : int;  (** times quarantined *)
}

type health = {
  ph_endpoints : endpoint_report list;  (** in [create] order *)
  ph_quorum : int;
  ph_requests : int;  (** logical requests fanned out *)
  ph_disagreements : int;  (** minority responses outvoted overall *)
  ph_refusals : int;
      (** logical requests answered with [Quorum_divergence] or
          [Quorum_unavailable] rather than risking corrupt data *)
  ph_suspects : int list;
      (** endpoint indices with at least one disagreement, most
          suspicious first — under the f < k assumption these are the
          liars *)
}

type t

val create : ?policy:policy -> ?metrics:Xcw_obs.Metrics.t -> Rpc.t list -> t
(** Raises [Invalid_argument] when the endpoint list is empty or the
    policy's quorum exceeds its length. *)

val size : t -> int
val quorum : t -> int
val endpoints : t -> Rpc.t list

(** {1 Quorum-read request surface (mirrors {!Rpc})}

    Fan-out is simulated as parallel: a logical request's latency is
    the {e slowest} participating endpoint's, not the sum. *)

val eth_block_number : t -> (int, Rpc.error) result Rpc.response

val eth_get_transaction_receipt :
  t -> Types.hash -> (Types.receipt option, Rpc.error) result Rpc.response

val eth_get_transaction_by_hash :
  t -> Types.hash -> (Types.transaction option, Rpc.error) result Rpc.response

val eth_get_balance : t -> Address.t -> (U256.t, Rpc.error) result Rpc.response

val debug_trace_transaction :
  t -> Types.hash -> (Types.call_frame option, Rpc.error) result Rpc.response

val observe_head :
  t -> head:int -> (Rpc.head_view, Rpc.error) result Rpc.response
(** Numeric quorum: the accepted head is the k-th highest report; a
    reorg is surfaced only when at least k endpoints signal one (the
    surviving block is the most conservative, i.e. lowest, of
    theirs). *)

val eth_get_logs :
  t ->
  Rpc.log_filter ->
  ((Types.receipt * Types.log) list, Rpc.error) result Rpc.response

val total_latency : t -> float
(** Accumulated simulated seconds of the pool's parallel fan-outs
    (per request: the slowest endpoint). *)

val request_count : t -> int
val health : t -> health
