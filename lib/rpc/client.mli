(** Resilient RPC client: retries with exponential backoff + jitter,
    capped by a simulated-latency budget, plus range splitting when a
    provider truncates [eth_getLogs].

    Wraps an {!Rpc.t} ({!create}) or a quorum {!Pool.t}
    ({!create_pooled}) — retries compose identically with both: a pool
    refusal ([Quorum_divergence] / [Quorum_unavailable]) is just
    another retryable error, and a retry re-rolls the liars'
    corruption draws.  Each operation retries transient failures
    (honouring 429 retry-after hints) until it succeeds, the attempt
    limit is reached, or another backoff would exceed the latency
    budget — then the last error is surfaced for the caller
    ({!Xcw_core.Monitor}) to degrade gracefully instead of raising.
    Backoff time is simulated like RPC latency: accumulated, never
    slept. *)

module Types = Xcw_evm.Types
module Address = Xcw_evm.Address
module U256 = Xcw_uint256.Uint256

type policy = {
  p_max_attempts : int;  (** total tries per logical request *)
  p_base_backoff : float;  (** seconds before the first retry *)
  p_backoff_factor : float;  (** exponential growth per retry *)
  p_max_backoff : float;
      (** ceiling on a single backoff, seconds; applied {e after}
          jitter (only a 429's explicit retry-after may exceed it) *)
  p_jitter : float;
      (** each backoff is scaled by uniform [1, 1 + jitter] *)
  p_latency_budget : float;
      (** give up once spent latency + next backoff would exceed this
          many simulated seconds for one logical request *)
  p_max_range_splits : int;
      (** recursion depth for splitting truncated [eth_getLogs] *)
}

val default_policy : policy
(** 6 attempts, 0.1 s base doubling to an 8 s cap, 25%% jitter, 60 s
    budget, 8 split levels. *)

type t

val create :
  ?policy:policy -> ?seed:int -> ?metrics:Xcw_obs.Metrics.t -> Rpc.t -> t
(** The jitter stream is seeded deterministically from [seed].
    Resilience events record into [metrics] (default: the process-wide
    registry): [xcw_client_retries_total], [xcw_client_give_ups_total],
    [xcw_client_range_splits_total] and the
    [xcw_client_backoff_seconds] histogram of individual pauses. *)

val create_pooled :
  ?policy:policy -> ?seed:int -> ?metrics:Xcw_obs.Metrics.t -> Pool.t -> t
(** Like {!create}, but every operation is a quorum read through the
    pool. *)

val rpc : t -> Rpc.t
(** The underlying node — for a pooled client, its first endpoint
    (diagnostics only). *)

val pool : t -> Pool.t option
(** The quorum pool behind a {!create_pooled} client, [None] for a
    single-endpoint client. *)

(** Where this client's data comes from — stamped onto every decode
    ({!Xcw_core.Decoder.receipt_decode}). *)
type provenance = Single | Quorum of { k : int; n : int }

val provenance : t -> provenance

val provenance_label : provenance -> string
(** ["single"] or ["quorum k/n"]. *)

val get_receipt :
  t -> Types.hash -> (Types.receipt option, Rpc.error) result Rpc.response

val get_transaction :
  t -> Types.hash -> (Types.transaction option, Rpc.error) result Rpc.response

val get_balance : t -> Address.t -> (U256.t, Rpc.error) result Rpc.response

val trace_transaction :
  t -> Types.hash -> (Types.call_frame option, Rpc.error) result Rpc.response
(** Retries like any other call but gives up fast on
    [Tracer_unavailable] outages — the caller is expected to degrade
    to trace-less facts (see {!Xcw_core.Decoder}). *)

val block_number : t -> (int, Rpc.error) result Rpc.response

val observe_head :
  t -> head:int -> (Rpc.head_view, Rpc.error) result Rpc.response

val get_logs :
  t ->
  Rpc.log_filter ->
  ((Types.receipt * Types.log) list, Rpc.error) result Rpc.response
(** Splits the block range in half and recurses (up to
    [p_max_range_splits] levels) when the provider answers
    [Truncated_range], reassembling the pieces oldest-first. *)

type stats = {
  s_retries : int;  (** failed attempts that were retried *)
  s_backoff_seconds : float;  (** simulated seconds spent backing off *)
  s_give_ups : int;  (** logical requests that exhausted retries *)
  s_range_splits : int;  (** [eth_getLogs] range bisections *)
}

val stats : t -> stats
(** This client's own counters. *)

val stats_snapshot : unit -> stats
(** Cumulative totals across every client created in this process —
    lets retries and give-ups be reported without threading per-client
    state through the pipeline. *)

val reset_stats : unit -> unit
(** Zero the cumulative totals (per-client counters are untouched). *)

val total_latency : t -> float
(** RPC latency plus backoff: total simulated seconds attributable to
    this client. *)
