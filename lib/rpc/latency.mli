(** Simulated RPC latency model.

    Fact-extraction latency (paper Table 2 / Figure 4) is dominated by
    node behaviour: receipt fetches are fast, [debug_traceTransaction]
    is heavy and sometimes times out, triggering retries.  Each
    method's latency is a log-normal base draw plus a geometric retry
    process for the tracer; parameters are calibrated per bridge. *)

module Prng = Xcw_util.Prng

type profile = {
  receipt_mu : float;  (** log-normal mu for receipt/log fetches *)
  receipt_sigma : float;
  trace_mu : float;  (** log-normal mu for [debug_traceTransaction] *)
  trace_sigma : float;
  trace_timeout_prob : float;  (** per-attempt timeout probability *)
  trace_timeout_cost : float;  (** seconds lost per timed-out attempt *)
  max_latency : float;  (** hard cap (the paper's 138.15 s worst case) *)
}

val ronin_profile : profile
(** Calibrated to the Ronin rows of Table 2 (native median 0.35 s,
    6.5% above 10 s, cap 138.15 s). *)

val nomad_profile : profile
(** Calibrated to the Nomad rows of Table 2 (native median 0.78 s, cap
    8.78 s). *)

val colocated_profile : profile
(** An ideal co-located node: negligible latency, no timeouts — the
    deployment the paper recommends. *)

val receipt_fetch : profile -> Prng.t -> float
(** Latency of one receipt/logs/balance fetch, in seconds. *)

val trace_fetch : profile -> Prng.t -> float
(** Latency of one [debug_traceTransaction] including retries.  Always
    in [(0, max_latency]]: retry accounting is clamped per attempt (a
    fetch abandoned at the cap cannot retry past it), which also makes
    the result monotone in [max_latency] for a fixed PRNG stream. *)
