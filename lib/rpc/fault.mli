(** Deterministic RPC fault injection.

    Real nodes misbehave constantly: [debug_traceTransaction] timed out
    on 6.5%% of the paper's Ronin fetches (Table 2), public providers
    rate-limit and truncate [eth_getLogs] ranges, and chain heads lag
    and reorg.  This module turns those failure modes into a seedable
    {!plan} that the {!Rpc} facade consults before serving each request,
    so the recovery logic above it ({!Client}, {!Xcw_core.Monitor}) can
    be exercised deterministically.

    All randomness is drawn from a private {!Xcw_util.Prng} stream: the
    same seed and request sequence reproduce the same faults, which the
    differential fault-injection tests rely on. *)

module Prng = Xcw_util.Prng

(** Why a request failed.  [Truncated_range] is produced by the facade
    (it knows the queried range), the rest by the fault state. *)
type error =
  | Transient of string  (** connection reset, 5xx, malformed body … *)
  | Timeout  (** the request consumed its deadline and died *)
  | Rate_limited of { retry_after : float }
      (** HTTP 429 with an advisory delay in (simulated) seconds *)
  | Tracer_unavailable
      (** [debug_traceTransaction] disabled or the trace pool is down *)
  | Truncated_range of { served_to : int }
      (** [eth_getLogs] span exceeded the provider cap; blocks up to
          [served_to] would have been served *)
  | Quorum_divergence of { agreeing : int; needed : int; responders : int }
      (** produced by {!Pool}: endpoints answered but no content group
          reached the quorum — [agreeing] is the largest group among
          [responders] successful responses, [needed] the quorum *)
  | Quorum_unavailable of { responders : int; needed : int }
      (** produced by {!Pool}: fewer than [needed] endpoints produced
          any successful response *)

val error_to_string : error -> string

(** Request classes with independently configurable fault rates. *)
type method_class = Receipt | Transaction | Balance | Logs | Trace | Head

type probs = {
  p_transient : float;  (** per-request transient failure probability *)
  p_timeout : float;  (** per-request timeout probability *)
}

(** A fault plan: flat record of per-class probabilities and the
    parameters of the structured failure modes.  Plain data so the
    qcheck generators can range over the whole space. *)
type plan = {
  f_receipt : probs;
  f_transaction : probs;
  f_balance : probs;
  f_logs : probs;
  f_trace : probs;
  f_head : probs;
  f_rate_limit_prob : float;
      (** probability any request starts a 429 burst *)
  f_rate_limit_burst : int;  (** requests rejected per burst *)
  f_retry_after : float;  (** advisory retry-after of a 429, seconds *)
  f_timeout_cost : float;
      (** simulated seconds burned by a timed-out request (clamped to
          the latency profile's [max_latency]) *)
  f_logs_range_cap : int option;
      (** maximum [eth_getLogs] block span served per request *)
  f_trace_outage_prob : float;
      (** probability a trace request starts an unavailability window *)
  f_trace_outage_len : int;  (** trace requests rejected per window *)
  f_stale_head_lag : int;
      (** observed head lags the true head by uniform [0..lag] blocks *)
  f_reorg_prob : float;
      (** per-observation probability the last blocks were replaced *)
  f_reorg_depth : int;  (** maximum blocks replaced by one reorg *)
  f_byz_log_mutate : float;
      (** Byzantine: per-served-response probability that one log's
          data or topics are corrupted (receipts and [eth_getLogs]) *)
  f_byz_log_drop : float;
      (** Byzantine: per-response probability one matching log is
          silently omitted from an [eth_getLogs] answer *)
  f_byz_receipt_forge : float;
      (** Byzantine: per-receipt probability the execution status is
          forged (success reported as revert and vice versa) *)
  f_byz_trace_truncate : float;
      (** Byzantine: per-trace probability the call tree is cut
          mid-frame, hiding internal transfers *)
  f_byz_head_equivocate : float;
      (** Byzantine: per-observation probability the node reports a
          head far from its actual view *)
}

val none : plan
(** The identity plan: every request succeeds, heads are exact. *)

val moderate : plan
(** A realistic public-provider profile: ~2%% transient errors, ~1%%
    timeouts (6.5%% on traces, Table 2), occasional 429 bursts and
    tracer outages, a 2000-block [eth_getLogs] cap, small head lag and
    rare shallow reorgs.  No Byzantine behaviour. *)

val byzantine : plan
(** A lying node: never refuses a request — availability-wise it looks
    perfectly healthy — but ~30%% of its answers are corrupted in each
    Byzantine mode.  Only cross-validation ({!Pool}) catches it. *)

val is_transient : plan -> bool
(** True when every failure mode eventually clears: all probabilities
    are below 1, so a retrying client succeeds with probability 1.
    The differential fault-injection property quantifies only over
    transient plans.  Byzantine plans are never transient: a corrupted
    response {e succeeds} from the client's point of view, so retrying
    cannot repair it — only quorum reads do. *)

val is_byzantine : plan -> bool
(** True when any data-corruption probability is positive. *)

type t
(** Mutable fault state: PRNG stream, remaining 429-burst and
    trace-outage counters, injection counters. *)

val create : seed:int -> plan -> t
val plan : t -> plan

val intercept : t -> method_class -> error option
(** Decide the fate of one request, advancing the fault state.
    [None] means the request is served. *)

val observe_head : t -> head:int -> int * int option
(** [observe_head t ~head] is [(observed, rewound_to)]: the head the
    node reports given the true head, and — when a reorg just fired —
    the highest block surviving from the previously served chain (the
    last [head - ancestor] blocks were replaced).  Fault-free this is
    [(head, None)]. *)

(** How a served response is about to be corrupted.  The {!Rpc} facade
    applies the type-aware mutation; this module only decides. *)
type byz_action =
  | Byz_mutate_log
  | Byz_drop_log
  | Byz_forge_status
  | Byz_truncate_trace
  | Byz_equivocate_head

val byz_intercept : t -> method_class -> byz_action option
(** Decide whether one {e served} response of this class gets
    corrupted.  Draws come from a dedicated Byzantine PRNG stream,
    gated on the corresponding probability being positive — a plan
    without a Byzantine tier never advances it, so adding corruption
    leaves the availability fault stream bit-identical. *)

val byz_rng : t -> Prng.t
(** The Byzantine mutation stream, for the facade's mutators (which
    log to corrupt, which bytes to flip, how far to equivocate). *)

val note_byz : t -> unit
(** Record that a corruption was actually applied. *)

val faults_injected : t -> int
val reorgs_injected : t -> int

val byz_injected : t -> int
(** Corruptions applied so far — ground truth for tests that assert
    the pool identified the right liar. *)
