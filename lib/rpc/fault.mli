(** Deterministic RPC fault injection.

    Real nodes misbehave constantly: [debug_traceTransaction] timed out
    on 6.5%% of the paper's Ronin fetches (Table 2), public providers
    rate-limit and truncate [eth_getLogs] ranges, and chain heads lag
    and reorg.  This module turns those failure modes into a seedable
    {!plan} that the {!Rpc} facade consults before serving each request,
    so the recovery logic above it ({!Client}, {!Xcw_core.Monitor}) can
    be exercised deterministically.

    All randomness is drawn from a private {!Xcw_util.Prng} stream: the
    same seed and request sequence reproduce the same faults, which the
    differential fault-injection tests rely on. *)

module Prng = Xcw_util.Prng

(** Why a request failed.  [Truncated_range] is produced by the facade
    (it knows the queried range), the rest by the fault state. *)
type error =
  | Transient of string  (** connection reset, 5xx, malformed body … *)
  | Timeout  (** the request consumed its deadline and died *)
  | Rate_limited of { retry_after : float }
      (** HTTP 429 with an advisory delay in (simulated) seconds *)
  | Tracer_unavailable
      (** [debug_traceTransaction] disabled or the trace pool is down *)
  | Truncated_range of { served_to : int }
      (** [eth_getLogs] span exceeded the provider cap; blocks up to
          [served_to] would have been served *)

val error_to_string : error -> string

(** Request classes with independently configurable fault rates. *)
type method_class = Receipt | Transaction | Balance | Logs | Trace | Head

type probs = {
  p_transient : float;  (** per-request transient failure probability *)
  p_timeout : float;  (** per-request timeout probability *)
}

(** A fault plan: flat record of per-class probabilities and the
    parameters of the structured failure modes.  Plain data so the
    qcheck generators can range over the whole space. *)
type plan = {
  f_receipt : probs;
  f_transaction : probs;
  f_balance : probs;
  f_logs : probs;
  f_trace : probs;
  f_head : probs;
  f_rate_limit_prob : float;
      (** probability any request starts a 429 burst *)
  f_rate_limit_burst : int;  (** requests rejected per burst *)
  f_retry_after : float;  (** advisory retry-after of a 429, seconds *)
  f_timeout_cost : float;
      (** simulated seconds burned by a timed-out request (clamped to
          the latency profile's [max_latency]) *)
  f_logs_range_cap : int option;
      (** maximum [eth_getLogs] block span served per request *)
  f_trace_outage_prob : float;
      (** probability a trace request starts an unavailability window *)
  f_trace_outage_len : int;  (** trace requests rejected per window *)
  f_stale_head_lag : int;
      (** observed head lags the true head by uniform [0..lag] blocks *)
  f_reorg_prob : float;
      (** per-observation probability the last blocks were replaced *)
  f_reorg_depth : int;  (** maximum blocks replaced by one reorg *)
}

val none : plan
(** The identity plan: every request succeeds, heads are exact. *)

val moderate : plan
(** A realistic public-provider profile: ~2%% transient errors, ~1%%
    timeouts (6.5%% on traces, Table 2), occasional 429 bursts and
    tracer outages, a 2000-block [eth_getLogs] cap, small head lag and
    rare shallow reorgs. *)

val is_transient : plan -> bool
(** True when every failure mode eventually clears: all probabilities
    are below 1, so a retrying client succeeds with probability 1.
    The differential fault-injection property quantifies only over
    transient plans. *)

type t
(** Mutable fault state: PRNG stream, remaining 429-burst and
    trace-outage counters, injection counters. *)

val create : seed:int -> plan -> t
val plan : t -> plan

val intercept : t -> method_class -> error option
(** Decide the fate of one request, advancing the fault state.
    [None] means the request is served. *)

val observe_head : t -> head:int -> int * int option
(** [observe_head t ~head] is [(observed, rewound_to)]: the head the
    node reports given the true head, and — when a reorg just fired —
    the highest block surviving from the previously served chain (the
    last [head - ancestor] blocks were replaced).  Fault-free this is
    [(head, None)]. *)

val faults_injected : t -> int
val reorgs_injected : t -> int
