(** JSON-RPC node facade over a simulated chain.

    The access patterns the paper's pipeline uses against real nodes —
    [eth_getLogs], [eth_getTransactionReceipt],
    [eth_getTransactionByHash], [eth_getBalance],
    [debug_traceTransaction] with the call tracer — with per-request
    simulated wall-clock latency (see {!Latency}).  Latency is
    simulated: requests return immediately along with the seconds a
    real node would have taken. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain

type t

val create : ?profile:Latency.profile -> ?seed:int -> Chain.t -> t
(** Defaults to {!Latency.colocated_profile}. *)

type 'a response = { value : 'a; latency : float }
(** Result plus the simulated request latency in seconds. *)

val eth_block_number : t -> int response
val eth_get_transaction_receipt : t -> Types.hash -> Types.receipt option response
val eth_get_transaction_by_hash : t -> Types.hash -> Types.transaction option response
val eth_get_balance : t -> Address.t -> U256.t response

val debug_trace_transaction : t -> Types.hash -> Types.call_frame option response
(** The call tracer: the only way to observe internal value transfers
    (paper Section 3.2); significantly slower under realistic
    profiles. *)

type log_filter = {
  from_block : int option;
  to_block : int option;
  filter_addresses : Address.t list;  (** empty = any *)
  filter_topic0 : string list;  (** empty = any *)
}

val default_filter : log_filter

val eth_get_logs :
  t -> log_filter -> (Types.receipt * Types.log) list response
(** Matching logs of successful transactions with their enclosing
    receipt, oldest first. *)

val total_latency : t -> float
(** Accumulated simulated seconds across all requests. *)

val request_count : t -> int
