(** JSON-RPC node facade over a simulated chain.

    The access patterns the paper's pipeline uses against real nodes —
    [eth_getLogs], [eth_getTransactionReceipt],
    [eth_getTransactionByHash], [eth_getBalance],
    [debug_traceTransaction] with the call tracer — with per-request
    simulated wall-clock latency (see {!Latency}).  Latency is
    simulated: requests return immediately along with the seconds a
    real node would have taken.

    Every method returns [('a, error) result response]: a fault plan
    (see {!Fault}) can make any request fail the way a real provider
    does, and failed requests still cost simulated time.  Without a
    plan every request succeeds, as before.  Use {!Client} for retries,
    backoff and range splitting rather than calling this directly. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain

type error = Fault.error =
  | Transient of string
  | Timeout
  | Rate_limited of { retry_after : float }
  | Tracer_unavailable
  | Truncated_range of { served_to : int }
  | Quorum_divergence of { agreeing : int; needed : int; responders : int }
  | Quorum_unavailable of { responders : int; needed : int }

val error_to_string : error -> string

exception Rpc_error of error

type t

val create :
  ?profile:Latency.profile ->
  ?seed:int ->
  ?fault:Fault.plan ->
  ?metrics:Xcw_obs.Metrics.t ->
  Chain.t ->
  t
(** Defaults to {!Latency.colocated_profile} and no fault plan.  The
    fault state is seeded deterministically from [seed].

    Every request records into [metrics] (default: the process-wide
    {!Xcw_obs.Metrics.default} registry), labelled by method class
    ([method="receipt"|"transaction"|"balance"|"logs"|"trace"|"head"]):
    [xcw_rpc_requests_total], [xcw_rpc_faults_total] (injected faults,
    including capped-range truncations) and the
    [xcw_rpc_latency_seconds] histogram of simulated per-request
    latency. *)

type 'a response = { value : 'a; latency : float }
(** Result plus the simulated request latency in seconds. *)

val ok : ('a, error) result response -> 'a
(** Unwrap a response, raising {!Rpc_error} on failure.  For call
    sites that opted out of fault injection. *)

val eth_block_number : t -> (int, error) result response
(** The true chain head (block count); subject only to request-level
    faults, not head lag — use {!observe_head} for the consensus
    view. *)

val eth_get_transaction_receipt :
  t -> Types.hash -> (Types.receipt option, error) result response

val eth_get_transaction_by_hash :
  t -> Types.hash -> (Types.transaction option, error) result response

val eth_get_balance : t -> Address.t -> (U256.t, error) result response

val debug_trace_transaction :
  t -> Types.hash -> (Types.call_frame option, error) result response
(** The call tracer: the only way to observe internal value transfers
    (paper Section 3.2); significantly slower under realistic
    profiles, and the first method to disappear when a node is
    struggling ([Tracer_unavailable]). *)

type head_view = {
  hv_head : int;  (** the head this node currently reports *)
  hv_reorged_to : int option;
      (** [Some b] when the node replaced recently served blocks: data
          above block [b] must be considered rewritten *)
}

val observe_head : t -> head:int -> (head_view, error) result response
(** The node's view of the chain head given the caller's notion of the
    true head (its target cursor).  Under a fault plan the view may
    lag ([f_stale_head_lag]) or signal a bounded reorg
    ([f_reorg_prob]/[f_reorg_depth]); fault-free it is exactly
    [{ hv_head = head; hv_reorged_to = None }]. *)

type log_filter = {
  from_block : int option;
  to_block : int option;
  filter_addresses : Address.t list;  (** empty = any *)
  filter_topic0 : string list;  (** empty = any *)
}

val default_filter : log_filter

val eth_get_logs :
  t -> log_filter -> ((Types.receipt * Types.log) list, error) result response
(** Matching logs of successful transactions with their enclosing
    receipt, oldest first.  [from_block]/[to_block] are inclusive;
    [None] means the chain's edge.  Under a plan with
    [f_logs_range_cap = Some cap], a query spanning more than [cap]
    blocks fails with [Truncated_range { served_to }] naming the last
    block a capped provider would have covered — the client splits the
    range and retries. *)

val total_latency : t -> float
(** Accumulated simulated seconds across all requests, including
    failed ones. *)

val request_count : t -> int

val fault_injections : t -> int
(** Faults injected so far (0 without a plan). *)

val byzantine_injections : t -> int
(** Served responses corrupted by the plan's Byzantine tier so far —
    ground truth for tests asserting the pool blamed the right
    endpoint. *)
