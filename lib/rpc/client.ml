module Types = Xcw_evm.Types
module Address = Xcw_evm.Address
module U256 = Xcw_uint256.Uint256
module Prng = Xcw_util.Prng
module Metrics = Xcw_obs.Metrics

type policy = {
  p_max_attempts : int;
  p_base_backoff : float;
  p_backoff_factor : float;
  p_max_backoff : float;
  p_jitter : float;
  p_latency_budget : float;
  p_max_range_splits : int;
}

let default_policy =
  {
    p_max_attempts = 6;
    p_base_backoff = 0.1;
    p_backoff_factor = 2.0;
    p_max_backoff = 8.0;
    p_jitter = 0.25;
    p_latency_budget = 60.0;
    p_max_range_splits = 8;
  }

(* Cumulative process-wide totals, advanced alongside every client's
   own counters so callers can report retry pressure without threading
   per-client state through the pipeline. *)
let cum_retries = ref 0
let cum_backoff = ref 0.
let cum_give_ups = ref 0
let cum_splits = ref 0

type meters = {
  mt_retries : Metrics.Counter.t;
  mt_give_ups : Metrics.Counter.t;
  mt_splits : Metrics.Counter.t;
  mt_backoff : Metrics.Histogram.t;
}

type t = {
  c_rpc : Rpc.t;
  c_policy : policy;
  c_rng : Prng.t;
  c_meters : meters;
  mutable c_retries : int;
  mutable c_backoff : float;
  mutable c_give_ups : int;
  mutable c_splits : int;
}

let create ?(policy = default_policy) ?(seed = 1) ?metrics rpc =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.default ()
  in
  {
    c_rpc = rpc;
    c_policy = policy;
    c_rng = Prng.create (seed lxor 0x2b0c5);
    c_meters =
      {
        mt_retries = Metrics.counter metrics "xcw_client_retries_total";
        mt_give_ups = Metrics.counter metrics "xcw_client_give_ups_total";
        mt_splits = Metrics.counter metrics "xcw_client_range_splits_total";
        mt_backoff = Metrics.histogram metrics "xcw_client_backoff_seconds";
      };
    c_retries = 0;
    c_backoff = 0.;
    c_give_ups = 0;
    c_splits = 0;
  }

let rpc t = t.c_rpc

let backoff_for t ~attempt ~error =
  let p = t.c_policy in
  let exp =
    p.p_base_backoff
    *. (p.p_backoff_factor ** float_of_int (attempt - 1))
    |> Float.min p.p_max_backoff
  in
  let jittered = exp *. (1. +. Prng.float t.c_rng p.p_jitter) in
  (* A 429 tells us exactly how long the provider wants us gone. *)
  match error with
  | Rpc.Rate_limited { retry_after } -> Float.max jittered retry_after
  | _ -> jittered

(* Retry loop shared by every operation.  Returns the final response
   with the latency of all attempts plus backoff folded in, so
   downstream per-receipt accounting (Table 2) stays honest. *)
let with_retries t op =
  let p = t.c_policy in
  let rec go ~attempt ~spent =
    let (r : _ Rpc.response) = op () in
    let spent = spent +. r.Rpc.latency in
    match r.Rpc.value with
    | Ok v -> { Rpc.value = Ok v; latency = spent }
    | Error (Rpc.Truncated_range _ as e) ->
        (* Not retryable: the same request can only truncate again.
           The logs path splits the range instead. *)
        { Rpc.value = Error e; latency = spent }
    | Error e ->
        let pause = backoff_for t ~attempt ~error:e in
        if attempt >= p.p_max_attempts || spent +. pause >= p.p_latency_budget
        then begin
          t.c_give_ups <- t.c_give_ups + 1;
          incr cum_give_ups;
          Metrics.Counter.inc t.c_meters.mt_give_ups;
          { Rpc.value = Error e; latency = spent }
        end
        else begin
          t.c_retries <- t.c_retries + 1;
          t.c_backoff <- t.c_backoff +. pause;
          incr cum_retries;
          cum_backoff := !cum_backoff +. pause;
          Metrics.Counter.inc t.c_meters.mt_retries;
          Metrics.Histogram.observe t.c_meters.mt_backoff pause;
          go ~attempt:(attempt + 1) ~spent:(spent +. pause)
        end
  in
  go ~attempt:1 ~spent:0.

let get_receipt t hash =
  with_retries t (fun () -> Rpc.eth_get_transaction_receipt t.c_rpc hash)

let get_transaction t hash =
  with_retries t (fun () -> Rpc.eth_get_transaction_by_hash t.c_rpc hash)

let get_balance t addr =
  with_retries t (fun () -> Rpc.eth_get_balance t.c_rpc addr)

let trace_transaction t hash =
  with_retries t (fun () -> Rpc.debug_trace_transaction t.c_rpc hash)

let block_number t = with_retries t (fun () -> Rpc.eth_block_number t.c_rpc)

let observe_head t ~head =
  with_retries t (fun () -> Rpc.observe_head t.c_rpc ~head)

let get_logs t (filter : Rpc.log_filter) =
  let head_default () =
    match block_number t with
    | { Rpc.value = Ok h; latency } -> Ok (h, latency)
    | { Rpc.value = Error e; latency } -> Error (e, latency)
  in
  let rec fetch ~depth ~filter ~spent =
    let (r : _ Rpc.response) =
      with_retries t (fun () -> Rpc.eth_get_logs t.c_rpc filter)
    in
    let spent = spent +. r.Rpc.latency in
    match r.Rpc.value with
    | Ok logs -> { Rpc.value = Ok logs; latency = spent }
    | Error (Rpc.Truncated_range { served_to })
      when depth < t.c_policy.p_max_range_splits -> (
        (* Bisect at the provider's cut point: serve [from, served_to]
           then [served_to + 1, to], keeping oldest-first order. *)
        t.c_splits <- t.c_splits + 1;
        incr cum_splits;
        Metrics.Counter.inc t.c_meters.mt_splits;
        let continue from_b to_b spent =
          let left =
            fetch ~depth:(depth + 1)
              ~filter:
                { filter with Rpc.from_block = Some from_b;
                  to_block = Some served_to }
              ~spent:0.
          in
          let spent = spent +. left.Rpc.latency in
          match left.Rpc.value with
          | Error e -> { Rpc.value = Error e; latency = spent }
          | Ok lhs -> (
              let right =
                fetch ~depth:(depth + 1)
                  ~filter:
                    { filter with Rpc.from_block = Some (served_to + 1);
                      to_block = Some to_b }
                  ~spent:0.
              in
              let spent = spent +. right.Rpc.latency in
              match right.Rpc.value with
              | Error e -> { Rpc.value = Error e; latency = spent }
              | Ok rhs -> { Rpc.value = Ok (lhs @ rhs); latency = spent })
        in
        let from_b = max 1 (Option.value filter.Rpc.from_block ~default:1) in
        match filter.Rpc.to_block with
        | Some to_b -> continue from_b to_b spent
        | None -> (
            (* Need a concrete upper edge to split against. *)
            match head_default () with
            | Error (e, l) -> { Rpc.value = Error e; latency = spent +. l }
            | Ok (h, l) -> continue from_b h (spent +. l)))
    | Error e -> { Rpc.value = Error e; latency = spent }
  in
  fetch ~depth:0 ~filter ~spent:0.

type stats = {
  s_retries : int;
  s_backoff_seconds : float;
  s_give_ups : int;
  s_range_splits : int;
}

let stats t =
  {
    s_retries = t.c_retries;
    s_backoff_seconds = t.c_backoff;
    s_give_ups = t.c_give_ups;
    s_range_splits = t.c_splits;
  }

let stats_snapshot () =
  {
    s_retries = !cum_retries;
    s_backoff_seconds = !cum_backoff;
    s_give_ups = !cum_give_ups;
    s_range_splits = !cum_splits;
  }

let reset_stats () =
  cum_retries := 0;
  cum_backoff := 0.;
  cum_give_ups := 0;
  cum_splits := 0

let total_latency t = Rpc.total_latency t.c_rpc +. t.c_backoff
