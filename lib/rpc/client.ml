module Types = Xcw_evm.Types
module Address = Xcw_evm.Address
module U256 = Xcw_uint256.Uint256
module Prng = Xcw_util.Prng
module Metrics = Xcw_obs.Metrics

type policy = {
  p_max_attempts : int;
  p_base_backoff : float;
  p_backoff_factor : float;
  p_max_backoff : float;
  p_jitter : float;
  p_latency_budget : float;
  p_max_range_splits : int;
}

let default_policy =
  {
    p_max_attempts = 6;
    p_base_backoff = 0.1;
    p_backoff_factor = 2.0;
    p_max_backoff = 8.0;
    p_jitter = 0.25;
    p_latency_budget = 60.0;
    p_max_range_splits = 8;
  }

(* Cumulative process-wide totals, advanced alongside every client's
   own counters so callers can report retry pressure without threading
   per-client state through the pipeline. *)
let cum_retries = ref 0
let cum_backoff = ref 0.
let cum_give_ups = ref 0
let cum_splits = ref 0

type meters = {
  mt_retries : Metrics.Counter.t;
  mt_give_ups : Metrics.Counter.t;
  mt_splits : Metrics.Counter.t;
  mt_backoff : Metrics.Histogram.t;
}

(* A client reads either from one node or from a quorum pool; retries
   and backoff compose identically with both (a pool refusal is just
   another retryable error). *)
type backend = B_single of Rpc.t | B_pool of Pool.t

type provenance = Single | Quorum of { k : int; n : int }

type t = {
  c_backend : backend;
  c_policy : policy;
  c_rng : Prng.t;
  c_meters : meters;
  mutable c_retries : int;
  mutable c_backoff : float;
  mutable c_give_ups : int;
  mutable c_splits : int;
}

let make_meters metrics =
  {
    mt_retries = Metrics.counter metrics "xcw_client_retries_total";
    mt_give_ups = Metrics.counter metrics "xcw_client_give_ups_total";
    mt_splits = Metrics.counter metrics "xcw_client_range_splits_total";
    mt_backoff = Metrics.histogram metrics "xcw_client_backoff_seconds";
  }

let make ~policy ~seed ~metrics backend =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.default ()
  in
  {
    c_backend = backend;
    c_policy = policy;
    c_rng = Prng.create (seed lxor 0x2b0c5);
    c_meters = make_meters metrics;
    c_retries = 0;
    c_backoff = 0.;
    c_give_ups = 0;
    c_splits = 0;
  }

let create ?(policy = default_policy) ?(seed = 1) ?metrics rpc =
  make ~policy ~seed ~metrics (B_single rpc)

let create_pooled ?(policy = default_policy) ?(seed = 1) ?metrics pool =
  make ~policy ~seed ~metrics (B_pool pool)

let rpc t =
  match t.c_backend with
  | B_single r -> r
  | B_pool p -> List.hd (Pool.endpoints p)

let pool t = match t.c_backend with B_single _ -> None | B_pool p -> Some p

let provenance t =
  match t.c_backend with
  | B_single _ -> Single
  | B_pool p -> Quorum { k = Pool.quorum p; n = Pool.size p }

let provenance_label = function
  | Single -> "single"
  | Quorum { k; n } -> Printf.sprintf "quorum %d/%d" k n

let backoff_for t ~attempt ~error ~remaining =
  let p = t.c_policy in
  let exp =
    p.p_base_backoff *. (p.p_backoff_factor ** float_of_int (attempt - 1))
  in
  let jittered = exp *. (1. +. Prng.float t.c_rng p.p_jitter) in
  (* Clamp *after* jitter: scaling a pause already at the cap by
     [1, 1 + jitter] would overshoot the documented ceiling. *)
  let capped = Float.min jittered p.p_max_backoff in
  (* A 429 tells us exactly how long the provider wants us gone; its
     advisory may legitimately exceed the ceiling — but never the
     remaining overall latency budget, else one sleep would blow
     straight past the deadline (or, worse, a huge hint would turn a
     perfectly affordable retry into a spurious give-up).  The first
     component is the policy's own pause, which drives the give-up
     decision; the second is the sleep actually taken on retry. *)
  let pause =
    match error with
    | Rpc.Rate_limited { retry_after } ->
        Float.min (Float.max capped retry_after) (Float.max capped remaining)
    | _ -> capped
  in
  (capped, pause)

(* Retry loop shared by every operation.  Returns the final response
   with the latency of all attempts plus backoff folded in, so
   downstream per-receipt accounting (Table 2) stays honest. *)
let with_retries t op =
  let p = t.c_policy in
  let rec go ~attempt ~spent =
    let (r : _ Rpc.response) = op () in
    let spent = spent +. r.Rpc.latency in
    match r.Rpc.value with
    | Ok v -> { Rpc.value = Ok v; latency = spent }
    | Error (Rpc.Truncated_range _ as e) ->
        (* Not retryable: the same request can only truncate again.
           The logs path splits the range instead. *)
        { Rpc.value = Error e; latency = spent }
    | Error e ->
        let capped, pause =
          backoff_for t ~attempt ~error:e
            ~remaining:(p.p_latency_budget -. spent)
        in
        if attempt >= p.p_max_attempts || spent +. capped >= p.p_latency_budget
        then begin
          t.c_give_ups <- t.c_give_ups + 1;
          incr cum_give_ups;
          Metrics.Counter.inc t.c_meters.mt_give_ups;
          { Rpc.value = Error e; latency = spent }
        end
        else begin
          t.c_retries <- t.c_retries + 1;
          t.c_backoff <- t.c_backoff +. pause;
          incr cum_retries;
          cum_backoff := !cum_backoff +. pause;
          Metrics.Counter.inc t.c_meters.mt_retries;
          Metrics.Histogram.observe t.c_meters.mt_backoff pause;
          go ~attempt:(attempt + 1) ~spent:(spent +. pause)
        end
  in
  go ~attempt:1 ~spent:0.

let get_receipt t hash =
  with_retries t (fun () ->
      match t.c_backend with
      | B_single r -> Rpc.eth_get_transaction_receipt r hash
      | B_pool p -> Pool.eth_get_transaction_receipt p hash)

let get_transaction t hash =
  with_retries t (fun () ->
      match t.c_backend with
      | B_single r -> Rpc.eth_get_transaction_by_hash r hash
      | B_pool p -> Pool.eth_get_transaction_by_hash p hash)

let get_balance t addr =
  with_retries t (fun () ->
      match t.c_backend with
      | B_single r -> Rpc.eth_get_balance r addr
      | B_pool p -> Pool.eth_get_balance p addr)

let trace_transaction t hash =
  with_retries t (fun () ->
      match t.c_backend with
      | B_single r -> Rpc.debug_trace_transaction r hash
      | B_pool p -> Pool.debug_trace_transaction p hash)

let block_number t =
  with_retries t (fun () ->
      match t.c_backend with
      | B_single r -> Rpc.eth_block_number r
      | B_pool p -> Pool.eth_block_number p)

let observe_head t ~head =
  with_retries t (fun () ->
      match t.c_backend with
      | B_single r -> Rpc.observe_head r ~head
      | B_pool p -> Pool.observe_head p ~head)

let get_logs t (filter : Rpc.log_filter) =
  let head_default () =
    match block_number t with
    | { Rpc.value = Ok h; latency } -> Ok (h, latency)
    | { Rpc.value = Error e; latency } -> Error (e, latency)
  in
  let rec fetch ~depth ~filter ~spent =
    let (r : _ Rpc.response) =
      with_retries t (fun () ->
          match t.c_backend with
          | B_single rpc -> Rpc.eth_get_logs rpc filter
          | B_pool p -> Pool.eth_get_logs p filter)
    in
    let spent = spent +. r.Rpc.latency in
    match r.Rpc.value with
    | Ok logs -> { Rpc.value = Ok logs; latency = spent }
    | Error (Rpc.Truncated_range { served_to })
      when depth < t.c_policy.p_max_range_splits -> (
        (* Bisect at the provider's cut point: serve [from, served_to]
           then [served_to + 1, to], keeping oldest-first order. *)
        t.c_splits <- t.c_splits + 1;
        incr cum_splits;
        Metrics.Counter.inc t.c_meters.mt_splits;
        let continue from_b to_b spent =
          let left =
            fetch ~depth:(depth + 1)
              ~filter:
                { filter with Rpc.from_block = Some from_b;
                  to_block = Some served_to }
              ~spent:0.
          in
          let spent = spent +. left.Rpc.latency in
          match left.Rpc.value with
          | Error e -> { Rpc.value = Error e; latency = spent }
          | Ok lhs -> (
              let right =
                fetch ~depth:(depth + 1)
                  ~filter:
                    { filter with Rpc.from_block = Some (served_to + 1);
                      to_block = Some to_b }
                  ~spent:0.
              in
              let spent = spent +. right.Rpc.latency in
              match right.Rpc.value with
              | Error e -> { Rpc.value = Error e; latency = spent }
              | Ok rhs -> { Rpc.value = Ok (lhs @ rhs); latency = spent })
        in
        let from_b = max 1 (Option.value filter.Rpc.from_block ~default:1) in
        match filter.Rpc.to_block with
        | Some to_b -> continue from_b to_b spent
        | None -> (
            (* Need a concrete upper edge to split against. *)
            match head_default () with
            | Error (e, l) -> { Rpc.value = Error e; latency = spent +. l }
            | Ok (h, l) -> continue from_b h (spent +. l)))
    | Error e -> { Rpc.value = Error e; latency = spent }
  in
  fetch ~depth:0 ~filter ~spent:0.

type stats = {
  s_retries : int;
  s_backoff_seconds : float;
  s_give_ups : int;
  s_range_splits : int;
}

let stats t =
  {
    s_retries = t.c_retries;
    s_backoff_seconds = t.c_backoff;
    s_give_ups = t.c_give_ups;
    s_range_splits = t.c_splits;
  }

let stats_snapshot () =
  {
    s_retries = !cum_retries;
    s_backoff_seconds = !cum_backoff;
    s_give_ups = !cum_give_ups;
    s_range_splits = !cum_splits;
  }

let reset_stats () =
  cum_retries := 0;
  cum_backoff := 0.;
  cum_give_ups := 0;
  cum_splits := 0

let total_latency t =
  let backend_latency =
    match t.c_backend with
    | B_single r -> Rpc.total_latency r
    | B_pool p -> Pool.total_latency p
  in
  backend_latency +. t.c_backoff
