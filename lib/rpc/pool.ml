module Types = Xcw_evm.Types
module Address = Xcw_evm.Address
module U256 = Xcw_uint256.Uint256
module Metrics = Xcw_obs.Metrics

type policy = {
  q_quorum : int;
  q_suspicion_limit : int;
  q_quarantine_requests : int;
  q_probation_agreements : int;
  q_head_tolerance : int;
}

let default_policy =
  {
    q_quorum = 2;
    q_suspicion_limit = 3;
    q_quarantine_requests = 64;
    q_probation_agreements = 16;
    q_head_tolerance = 3;
  }

type endpoint_state = Active | Probation | Quarantined

type ep = {
  e_rpc : Rpc.t;
  e_index : int;
  e_trust_gauge : Metrics.Gauge.t;
  mutable e_state : endpoint_state;
  mutable e_trust : float;
  mutable e_agreements : int;
  mutable e_disagreements : int;
  mutable e_errors : int;
  mutable e_strikes : int;  (* disagreements since last quarantine *)
  mutable e_agree_streak : int;  (* consecutive agreements, for probation *)
  mutable e_quarantines : int;
  mutable e_quarantine_len : int;  (* current term; doubles on relapse *)
  mutable e_release_at : int;  (* request index ending the quarantine *)
}

type endpoint_report = {
  er_index : int;
  er_state : endpoint_state;
  er_trust : float;
  er_agreements : int;
  er_disagreements : int;
  er_errors : int;
  er_quarantines : int;
}

type health = {
  ph_endpoints : endpoint_report list;
  ph_quorum : int;
  ph_requests : int;
  ph_disagreements : int;
  ph_refusals : int;
  ph_suspects : int list;
}

type t = {
  p_policy : policy;
  p_endpoints : ep list;
  p_m_requests : Metrics.Counter.t;
  p_m_disagreements : Metrics.Counter.t;
  p_m_refusals : Metrics.Counter.t;
  mutable p_requests : int;
  mutable p_disagreements : int;
  mutable p_refusals : int;
  mutable p_latency : float;
}

let create ?(policy = default_policy) ?metrics rpcs =
  let n = List.length rpcs in
  if n = 0 then invalid_arg "Pool.create: no endpoints";
  if policy.q_quorum < 1 || policy.q_quorum > n then
    invalid_arg
      (Printf.sprintf "Pool.create: quorum %d out of range for %d endpoints"
         policy.q_quorum n);
  let metrics = match metrics with Some m -> m | None -> Metrics.default () in
  let endpoints =
    List.mapi
      (fun i rpc ->
        let gauge =
          Metrics.gauge metrics
            ~labels:[ ("endpoint", string_of_int i) ]
            "xcw_pool_endpoint_trust"
        in
        Metrics.Gauge.set gauge 1.0;
        {
          e_rpc = rpc;
          e_index = i;
          e_trust_gauge = gauge;
          e_state = Active;
          e_trust = 1.0;
          e_agreements = 0;
          e_disagreements = 0;
          e_errors = 0;
          e_strikes = 0;
          e_agree_streak = 0;
          e_quarantines = 0;
          e_quarantine_len = 0;
          e_release_at = 0;
        })
      rpcs
  in
  {
    p_policy = policy;
    p_endpoints = endpoints;
    p_m_requests = Metrics.counter metrics "xcw_pool_requests_total";
    p_m_disagreements = Metrics.counter metrics "xcw_pool_disagreements_total";
    p_m_refusals = Metrics.counter metrics "xcw_pool_refusals_total";
    p_requests = 0;
    p_disagreements = 0;
    p_refusals = 0;
    p_latency = 0.;
  }

let size t = List.length t.p_endpoints
let quorum t = t.p_policy.q_quorum
let endpoints t = List.map (fun ep -> ep.e_rpc) t.p_endpoints

(* --- Scoring / quarantine state machine ----------------------------- *)

let quarantine t ep =
  ep.e_state <- Quarantined;
  ep.e_quarantines <- ep.e_quarantines + 1;
  ep.e_quarantine_len <-
    (if ep.e_quarantine_len = 0 then t.p_policy.q_quarantine_requests
     else ep.e_quarantine_len * 2);
  ep.e_release_at <- t.p_requests + ep.e_quarantine_len;
  ep.e_strikes <- 0;
  ep.e_agree_streak <- 0

let disagree t ep =
  ep.e_disagreements <- ep.e_disagreements + 1;
  ep.e_agree_streak <- 0;
  ep.e_trust <- ep.e_trust *. 0.5;
  Metrics.Gauge.set ep.e_trust_gauge ep.e_trust;
  t.p_disagreements <- t.p_disagreements + 1;
  Metrics.Counter.inc t.p_m_disagreements;
  match ep.e_state with
  | Probation -> quarantine t ep
  | Active ->
      ep.e_strikes <- ep.e_strikes + 1;
      if ep.e_strikes >= t.p_policy.q_suspicion_limit then quarantine t ep
  | Quarantined ->
      (* Only participates when forced in to keep the pool readable;
         still lying, so the term restarts. *)
      ep.e_release_at <- t.p_requests + ep.e_quarantine_len

let agree t ep =
  ep.e_agreements <- ep.e_agreements + 1;
  ep.e_agree_streak <- ep.e_agree_streak + 1;
  ep.e_trust <- Float.min 1.0 (ep.e_trust +. 0.02);
  Metrics.Gauge.set ep.e_trust_gauge ep.e_trust;
  if
    ep.e_state = Probation
    && ep.e_agree_streak >= t.p_policy.q_probation_agreements
  then ep.e_state <- Active

let note_error ep = ep.e_errors <- ep.e_errors + 1

let release_quarantines t =
  List.iter
    (fun ep ->
      if ep.e_state = Quarantined && t.p_requests >= ep.e_release_at then begin
        ep.e_state <- Probation;
        ep.e_agree_streak <- 0
      end)
    t.p_endpoints

(* Quarantined endpoints sit out the fan-out — unless so many are
   quarantined that the quorum is unreachable, in which case everyone
   is recalled: requiring k identical answers still protects content,
   so availability wins. *)
let participants t =
  let avail = List.filter (fun ep -> ep.e_state <> Quarantined) t.p_endpoints in
  if List.length avail >= t.p_policy.q_quorum then avail else t.p_endpoints

type 'a outcome = { o_ep : ep; o_result : ('a, Rpc.error) result }

(* Fan one logical request out to every participant.  Simulated as a
   parallel fan-out: the request costs the slowest endpoint's latency,
   not the sum. *)
let fan_out t call =
  t.p_requests <- t.p_requests + 1;
  Metrics.Counter.inc t.p_m_requests;
  release_quarantines t;
  let latency = ref 0. in
  let outs =
    List.map
      (fun ep ->
        let (r : _ Rpc.response) = call ep.e_rpc in
        latency := Float.max !latency r.Rpc.latency;
        { o_ep = ep; o_result = r.Rpc.value })
      (participants t)
  in
  t.p_latency <- t.p_latency +. !latency;
  (outs, !latency)

let oks outs =
  List.filter_map
    (fun o -> match o.o_result with Ok v -> Some (o, v) | Error _ -> None)
    outs

let first_error outs =
  List.find_map
    (fun o -> match o.o_result with Error e -> Some e | Ok _ -> None)
    outs

(* A refusal: not enough agreement to serve anything safely.  When at
   least k endpoints answered, the vote is split — Byzantine territory,
   and retrying (the client will) re-rolls the liars' corruption draws.
   With fewer answers, surface the first availability error so the
   client's backoff logic applies; if nobody even erred, the pool
   itself is short of endpoints. *)
let refuse t outs ~agreeing ~latency =
  t.p_refusals <- t.p_refusals + 1;
  Metrics.Counter.inc t.p_m_refusals;
  let k = t.p_policy.q_quorum in
  let ok_count = List.length (oks outs) in
  let e =
    if ok_count >= k then
      Rpc.Quorum_divergence
        { agreeing; needed = k; responders = List.length outs }
    else
      match first_error outs with
      | Some e -> e
      | None -> Rpc.Quorum_unavailable { responders = ok_count; needed = k }
  in
  { Rpc.value = Error e; latency }

(* --- Content quorum -------------------------------------------------- *)

(* Canonical content hash.  Honest endpoints serve structurally equal
   values (the same chain's data), which [No_sharing] marshalling maps
   to identical bytes; a Byzantine mutation changes the content and
   therefore the digest. *)
let fingerprint v = Digest.string (Marshal.to_string v [ Marshal.No_sharing ])

let quorum_read t call =
  let outs, latency = fan_out t call in
  let k = t.p_policy.q_quorum in
  let ok_responses = oks outs in
  (* Group successful responses by content, preserving first-seen
     order so ties break deterministically. *)
  let groups = ref [] in
  List.iter
    (fun (o, v) ->
      let d = fingerprint v in
      match List.find_opt (fun (d', _, _) -> d' = d) !groups with
      | Some (_, _, members) -> members := o :: !members
      | None -> groups := !groups @ [ (d, v, ref [ o ]) ])
    ok_responses;
  let best =
    List.fold_left
      (fun acc (_, v, members) ->
        match acc with
        | Some (_, best_members) when List.length !members <= List.length best_members
          ->
            acc
        | _ -> Some (v, !members))
      None !groups
  in
  match best with
  | Some (v, members) when List.length members >= k ->
      List.iter
        (fun (o, _) ->
          if List.memq o members then agree t o.o_ep else disagree t o.o_ep)
        ok_responses;
      List.iter
        (fun o ->
          match o.o_result with Error _ -> note_error o.o_ep | Ok _ -> ())
        outs;
      { Rpc.value = Ok v; latency }
  | _ ->
      let agreeing =
        match best with Some (_, ms) -> List.length ms | None -> 0
      in
      refuse t outs ~agreeing ~latency

(* --- Numeric quorum (heads) ------------------------------------------ *)

(* Honest endpoints may lag a few blocks, so exact content agreement is
   the wrong test for heads.  Accept the k-th highest report — at least
   k endpoints claim to have reached that block, so reading up to it is
   safe — and treat only deviations beyond the tolerance as lies. *)
let numeric_quorum t outs ~latency ~value_of ~rebuild =
  let k = t.p_policy.q_quorum in
  let ok_responses = oks outs in
  if List.length ok_responses < k then refuse t outs ~agreeing:0 ~latency
  else begin
    let sorted =
      List.sort
        (fun (_, a) (_, b) -> compare (value_of b) (value_of a))
        ok_responses
    in
    let accepted = value_of (snd (List.nth sorted (k - 1))) in
    let tol = t.p_policy.q_head_tolerance in
    List.iter
      (fun (o, v) ->
        if abs (value_of v - accepted) <= tol then agree t o.o_ep
        else disagree t o.o_ep)
      ok_responses;
    List.iter
      (fun o -> match o.o_result with Error _ -> note_error o.o_ep | Ok _ -> ())
      outs;
    { Rpc.value = Ok (rebuild accepted (List.map snd ok_responses)); latency }
  end

(* --- Request surface -------------------------------------------------- *)

let eth_get_transaction_receipt t hash =
  quorum_read t (fun rpc -> Rpc.eth_get_transaction_receipt rpc hash)

let eth_get_transaction_by_hash t hash =
  quorum_read t (fun rpc -> Rpc.eth_get_transaction_by_hash rpc hash)

let eth_get_balance t addr =
  quorum_read t (fun rpc -> Rpc.eth_get_balance rpc addr)

let debug_trace_transaction t hash =
  quorum_read t (fun rpc -> Rpc.debug_trace_transaction rpc hash)

let eth_get_logs t filter = quorum_read t (fun rpc -> Rpc.eth_get_logs rpc filter)

let eth_block_number t =
  let outs, latency = fan_out t (fun rpc -> Rpc.eth_block_number rpc) in
  numeric_quorum t outs ~latency
    ~value_of:(fun h -> h)
    ~rebuild:(fun accepted _ -> accepted)

let observe_head t ~head =
  let outs, latency = fan_out t (fun rpc -> Rpc.observe_head rpc ~head) in
  numeric_quorum t outs ~latency
    ~value_of:(fun hv -> hv.Rpc.hv_head)
    ~rebuild:(fun accepted views ->
      (* A reorg only counts when at least k endpoints signal one; the
         surviving block is the lowest claimed (rewinding further is
         safe, ignoring a real reorg is not). *)
      let reorgs = List.filter_map (fun hv -> hv.Rpc.hv_reorged_to) views in
      let reorged_to =
        if List.length reorgs >= t.p_policy.q_quorum then
          Some (List.fold_left min max_int reorgs)
        else None
      in
      { Rpc.hv_head = accepted; hv_reorged_to = reorged_to })

(* --- Introspection ---------------------------------------------------- *)

let total_latency t = t.p_latency
let request_count t = t.p_requests

let health t =
  let reports =
    List.map
      (fun ep ->
        {
          er_index = ep.e_index;
          er_state = ep.e_state;
          er_trust = ep.e_trust;
          er_agreements = ep.e_agreements;
          er_disagreements = ep.e_disagreements;
          er_errors = ep.e_errors;
          er_quarantines = ep.e_quarantines;
        })
      t.p_endpoints
  in
  let suspects =
    List.filter (fun ep -> ep.e_disagreements > 0) t.p_endpoints
    |> List.sort (fun a b ->
           compare (b.e_disagreements, a.e_index) (a.e_disagreements, b.e_index))
    |> List.map (fun ep -> ep.e_index)
  in
  {
    ph_endpoints = reports;
    ph_quorum = t.p_policy.q_quorum;
    ph_requests = t.p_requests;
    ph_disagreements = t.p_disagreements;
    ph_refusals = t.p_refusals;
    ph_suspects = suspects;
  }
