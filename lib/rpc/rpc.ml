(** JSON-RPC node facade over a simulated chain.

    Exposes the same access patterns the paper's pipeline uses against
    real nodes — [eth_getLogs], [eth_getTransactionReceipt],
    [eth_getTransactionByHash], [eth_getBalance] and
    [debug_traceTransaction] with the call tracer — and accounts for
    simulated wall-clock latency per request (see {!Latency}).

    The latency is *simulated*: requests return immediately together
    with the number of seconds a real node would have taken, which the
    decoder accumulates per receipt to reproduce Table 2 / Figure 4
    without actually sleeping.

    An optional {!Fault.plan} makes requests fail the way real
    providers do; failed requests still cost simulated time, so the
    recovery overhead measured by the bench is an honest wall-clock
    estimate. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Prng = Xcw_util.Prng
module Metrics = Xcw_obs.Metrics

type error = Fault.error =
  | Transient of string
  | Timeout
  | Rate_limited of { retry_after : float }
  | Tracer_unavailable
  | Truncated_range of { served_to : int }
  | Quorum_divergence of { agreeing : int; needed : int; responders : int }
  | Quorum_unavailable of { responders : int; needed : int }

let error_to_string = Fault.error_to_string

exception Rpc_error of error

(** Per-method-class instruments, resolved once at node creation so the
    hot path is three O(1) updates. *)
type meter = {
  mt_requests : Metrics.Counter.t;
  mt_faults : Metrics.Counter.t;
  mt_latency : Metrics.Histogram.t;
}

type t = {
  chain : Chain.t;
  profile : Latency.profile;
  rng : Prng.t;
  fault : Fault.t option;
  meters : meter array;  (** indexed by {!class_index} *)
  mutable total_latency : float;  (** accumulated simulated seconds *)
  mutable request_count : int;
}

let all_classes =
  [ Fault.Receipt; Transaction; Balance; Logs; Trace; Head ]

let class_index = function
  | Fault.Receipt -> 0
  | Transaction -> 1
  | Balance -> 2
  | Logs -> 3
  | Trace -> 4
  | Head -> 5

let class_label = function
  | Fault.Receipt -> "receipt"
  | Transaction -> "transaction"
  | Balance -> "balance"
  | Logs -> "logs"
  | Trace -> "trace"
  | Head -> "head"

let make_meters metrics =
  all_classes
  |> List.map (fun cls ->
         let labels = [ ("method", class_label cls) ] in
         {
           mt_requests = Metrics.counter metrics ~labels "xcw_rpc_requests_total";
           mt_faults = Metrics.counter metrics ~labels "xcw_rpc_faults_total";
           mt_latency =
             Metrics.histogram metrics ~labels "xcw_rpc_latency_seconds";
         })
  |> Array.of_list

let create ?(profile = Latency.colocated_profile) ?(seed = 1) ?fault ?metrics
    chain =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.default ()
  in
  {
    chain;
    profile;
    rng = Prng.create seed;
    fault = Option.map (fun plan -> Fault.create ~seed plan) fault;
    meters = make_meters metrics;
    total_latency = 0.0;
    request_count = 0;
  }

let note t cls latency ~is_fault =
  let m = t.meters.(class_index cls) in
  Metrics.Counter.inc m.mt_requests;
  if is_fault then Metrics.Counter.inc m.mt_faults;
  Metrics.Histogram.observe m.mt_latency latency

let charge t l =
  t.total_latency <- t.total_latency +. l;
  t.request_count <- t.request_count + 1;
  l

let charge_receipt t = charge t (Latency.receipt_fetch t.profile t.rng)
let charge_trace t = charge t (Latency.trace_fetch t.profile t.rng)

(** A response carries the simulated request latency in seconds. *)
type 'a response = { value : 'a; latency : float }

let ok r = match r.value with Ok v -> v | Error e -> raise (Rpc_error e)

(* Simulated cost of a failed request.  A timeout burns its full
   deadline (clamped to the profile cap); a 429 is rejected almost
   instantly; everything else costs about one ordinary round trip. *)
let fault_cost t = function
  | Timeout ->
      (Fault.plan (Option.get t.fault)).Fault.f_timeout_cost
      |> Float.min t.profile.Latency.max_latency
  | Rate_limited _ -> 0.003
  | Transient _ | Tracer_unavailable | Truncated_range _
  | Quorum_divergence _ | Quorum_unavailable _ ->
      Latency.receipt_fetch t.profile (Prng.copy t.rng)

(* --- Byzantine mutators --------------------------------------------- *)
(* Applied to *served* values when the fault plan's Byzantine tier
   fires.  Mutations are drawn from the plan's private Byzantine PRNG
   stream, so two independently seeded liars almost never agree on a
   corrupted value — the non-collusion assumption k-of-n rests on. *)

(* Flip one byte to a guaranteed-different value; corrupt empty strings
   to a non-empty marker so the content always changes. *)
let mutate_bytes rng s =
  if String.length s = 0 then "\x2a"
  else begin
    let b = Bytes.of_string s in
    let i = Prng.int rng (Bytes.length b) in
    Bytes.set b i
      (Char.chr (Char.code (Bytes.get b i) lxor (1 + Prng.int rng 255)));
    Bytes.to_string b
  end

let mutate_log rng (l : Types.log) =
  match l.Types.topics with
  | t0 :: rest when Prng.bool rng ->
      { l with Types.topics = mutate_bytes rng t0 :: rest }
  | _ -> { l with Types.data = mutate_bytes rng l.data }

let mutate_receipt_log rng (r : Types.receipt) =
  match r.Types.r_logs with
  | [] -> { r with Types.r_gas_used = r.Types.r_gas_used lxor (1 + Prng.int rng 0xffff) }
  | logs ->
      let victim = Prng.int rng (List.length logs) in
      {
        r with
        Types.r_logs =
          List.mapi (fun j l -> if j = victim then mutate_log rng l else l) logs;
      }

let forge_receipt_status rng (r : Types.receipt) =
  {
    r with
    Types.r_status =
      (match r.Types.r_status with
      | Types.Success -> Types.Reverted
      | Types.Reverted -> Types.Success);
    (* Perturb gas too: a forged outcome comes with a forged cost, and
       the randomness keeps independently seeded liars from agreeing. *)
    r_gas_used = r.Types.r_gas_used lxor (1 + Prng.int rng 0xffff);
  }

let truncate_trace rng (f : Types.call_frame) =
  match f.Types.subcalls with
  | [] -> { f with Types.call_input = mutate_bytes rng f.Types.call_input }
  | subs -> (
      let keep = Prng.int rng (List.length subs) in
      let kept = List.filteri (fun i _ -> i < keep) subs in
      (* Cut mid-frame: damage the frame at the cut as well, so two
         independent truncators that happen to pick the same prefix
         length still diverge — the non-collusion assumption the
         quorum's f >= k refusal rests on. *)
      match List.rev kept with
      | [] ->
          {
            f with
            Types.subcalls = [];
            call_input = mutate_bytes rng f.Types.call_input;
          }
      | last :: before ->
          let last =
            { last with Types.call_input = mutate_bytes rng last.Types.call_input }
          in
          { f with Types.subcalls = List.rev (last :: before) })

let byz_receipt f (ro : Types.receipt option) =
  match ro with
  | None -> ro
  | Some r -> (
      match Fault.byz_intercept f Fault.Receipt with
      | Some Fault.Byz_forge_status ->
          Fault.note_byz f;
          Some (forge_receipt_status (Fault.byz_rng f) r)
      | Some Fault.Byz_mutate_log ->
          Fault.note_byz f;
          Some (mutate_receipt_log (Fault.byz_rng f) r)
      | _ -> ro)

let byz_logs f (pairs : (Types.receipt * Types.log) list) =
  match Fault.byz_intercept f Fault.Logs with
  | Some Fault.Byz_drop_log when pairs <> [] ->
      Fault.note_byz f;
      let victim = Prng.int (Fault.byz_rng f) (List.length pairs) in
      List.filteri (fun i _ -> i <> victim) pairs
  | Some Fault.Byz_mutate_log when pairs <> [] ->
      Fault.note_byz f;
      let rng = Fault.byz_rng f in
      let victim = Prng.int rng (List.length pairs) in
      List.mapi
        (fun i (r, l) -> if i = victim then (r, mutate_log rng l) else (r, l))
        pairs
  | _ -> pairs

let byz_trace f (fo : Types.call_frame option) =
  match fo with
  | None -> fo
  | Some frame -> (
      match Fault.byz_intercept f Fault.Trace with
      | Some Fault.Byz_truncate_trace ->
          Fault.note_byz f;
          Some (truncate_trace (Fault.byz_rng f) frame)
      | _ -> fo)

(* Equivocated heads land well outside any honest stale-head lag, so a
   quorum's deviation tolerance separates liars from laggards. *)
let byz_head f h =
  match Fault.byz_intercept f Fault.Head with
  | Some Fault.Byz_equivocate_head ->
      Fault.note_byz f;
      let rng = Fault.byz_rng f in
      let delta = 8 + Prng.int rng 25 in
      (* Deviate by the full delta in both directions: clamping a
         downward lie near genesis would shrink it inside the honest
         stale-head tolerance, making an injected equivocation
         undetectable — and tests treat every injection as detectable
         ground truth. *)
      let down = h - delta in
      if Prng.bool rng && down >= 0 then down else h + delta
  | _ -> h

(* Run one request: consult the fault state, then either charge the
   failure cost or serve with the normal latency draw; [byz] corrupts
   a served value when the plan's Byzantine tier fires. *)
let respond t cls serve_latency ?byz serve =
  match t.fault with
  | None ->
      let l = serve_latency t in
      note t cls l ~is_fault:false;
      { value = Ok (serve ()); latency = l }
  | Some f -> (
      match Fault.intercept f cls with
      | Some e ->
          let l = charge t (fault_cost t e) in
          note t cls l ~is_fault:true;
          { value = Error e; latency = l }
      | None ->
          let l = serve_latency t in
          note t cls l ~is_fault:false;
          let v = serve () in
          let v = match byz with Some corrupt -> corrupt f v | None -> v in
          { value = Ok v; latency = l })

let head_block t = Chain.all_blocks t.chain |> List.length

let eth_block_number t =
  respond t Fault.Head charge_receipt ~byz:byz_head (fun () -> head_block t)

let eth_get_transaction_receipt t hash =
  respond t Fault.Receipt charge_receipt ~byz:byz_receipt (fun () ->
      Chain.receipt t.chain hash)

let eth_get_transaction_by_hash t hash =
  respond t Fault.Transaction charge_receipt (fun () ->
      Chain.transaction t.chain hash)

let eth_get_balance t addr =
  respond t Fault.Balance charge_receipt (fun () ->
      Chain.native_balance t.chain addr)

(** [debug_trace_transaction] with [{"tracer": "callTracer"}]: the only
    way to observe internal value transfers (Section 3.2 of the paper).
    Significantly slower than receipt fetches under realistic
    profiles. *)
let debug_trace_transaction t hash =
  respond t Fault.Trace charge_trace ~byz:byz_trace (fun () ->
      Chain.trace t.chain hash)

type head_view = { hv_head : int; hv_reorged_to : int option }

let observe_head t ~head =
  match t.fault with
  | None ->
      let l = charge_receipt t in
      note t Fault.Head l ~is_fault:false;
      { value = Ok { hv_head = head; hv_reorged_to = None }; latency = l }
  | Some f -> (
      match Fault.intercept f Fault.Head with
      | Some e ->
          let l = charge t (fault_cost t e) in
          note t Fault.Head l ~is_fault:true;
          { value = Error e; latency = l }
      | None ->
          let observed, reorged_to = Fault.observe_head f ~head in
          let observed = byz_head f observed in
          let l = charge_receipt t in
          note t Fault.Head l ~is_fault:false;
          {
            value = Ok { hv_head = observed; hv_reorged_to = reorged_to };
            latency = l;
          })

type log_filter = {
  from_block : int option;
  to_block : int option;
  filter_addresses : Address.t list;  (** empty = any *)
  filter_topic0 : string list;  (** empty = any *)
}

let default_filter =
  { from_block = None; to_block = None; filter_addresses = []; filter_topic0 = [] }

let serve_logs t (filter : log_filter) =
  let in_block_range r =
    (match filter.from_block with
    | Some b -> r.Types.r_block_number >= b
    | None -> true)
    && match filter.to_block with
       | Some b -> r.Types.r_block_number <= b
       | None -> true
  in
  let matches_address l =
    filter.filter_addresses = []
    || List.exists (Address.equal l.Types.log_address) filter.filter_addresses
  in
  let matches_topic l =
    filter.filter_topic0 = []
    ||
    match l.Types.topics with
    | t0 :: _ -> List.mem t0 filter.filter_topic0
    | [] -> false
  in
  Chain.all_receipts t.chain
  |> List.concat_map (fun r ->
         if r.Types.r_status = Types.Success && in_block_range r then
           List.filter_map
             (fun l ->
               if matches_address l && matches_topic l then Some (r, l)
               else None)
             r.Types.r_logs
         else [])

(** [eth_get_logs t filter] returns matching logs of successful
    transactions with their enclosing receipt context, oldest first. *)
let eth_get_logs t (filter : log_filter) :
    ((Types.receipt * Types.log) list, error) result response =
  match t.fault with
  | None ->
      let l = charge_receipt t in
      note t Fault.Logs l ~is_fault:false;
      { value = Ok (serve_logs t filter); latency = l }
  | Some f -> (
      match Fault.intercept f Fault.Logs with
      | Some e ->
          let l = charge t (fault_cost t e) in
          note t Fault.Logs l ~is_fault:true;
          { value = Error e; latency = l }
      | None -> (
          match (Fault.plan f).Fault.f_logs_range_cap with
          | Some cap
            when let head = head_block t in
                 let from0 = max 1 (Option.value filter.from_block ~default:1) in
                 let to0 =
                   min head (Option.value filter.to_block ~default:head)
                 in
                 to0 - from0 + 1 > cap ->
              (* The provider scanned [cap] blocks from the range start
                 and gave up: deterministic, and still a full-price
                 request. *)
              let from0 = max 1 (Option.value filter.from_block ~default:1) in
              let l = charge_receipt t in
              note t Fault.Logs l ~is_fault:true;
              {
                value = Error (Truncated_range { served_to = from0 + cap - 1 });
                latency = l;
              }
          | _ ->
              let l = charge_receipt t in
              note t Fault.Logs l ~is_fault:false;
              { value = Ok (byz_logs f (serve_logs t filter)); latency = l }))

let total_latency t = t.total_latency
let request_count t = t.request_count

let fault_injections t =
  match t.fault with None -> 0 | Some f -> Fault.faults_injected f

let byzantine_injections t =
  match t.fault with None -> 0 | Some f -> Fault.byz_injected f
