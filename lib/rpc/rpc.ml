(** JSON-RPC node facade over a simulated chain.

    Exposes the same access patterns the paper's pipeline uses against
    real nodes — [eth_getLogs], [eth_getTransactionReceipt],
    [eth_getTransactionByHash], [eth_getBalance] and
    [debug_traceTransaction] with the call tracer — and accounts for
    simulated wall-clock latency per request (see {!Latency}).

    The latency is *simulated*: requests return immediately together
    with the number of seconds a real node would have taken, which the
    decoder accumulates per receipt to reproduce Table 2 / Figure 4
    without actually sleeping. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Prng = Xcw_util.Prng

type t = {
  chain : Chain.t;
  profile : Latency.profile;
  rng : Prng.t;
  mutable total_latency : float;  (** accumulated simulated seconds *)
  mutable request_count : int;
}

let create ?(profile = Latency.colocated_profile) ?(seed = 1) chain =
  { chain; profile; rng = Prng.create seed; total_latency = 0.0; request_count = 0 }

let charge_receipt t =
  let l = Latency.receipt_fetch t.profile t.rng in
  t.total_latency <- t.total_latency +. l;
  t.request_count <- t.request_count + 1;
  l

let charge_trace t =
  let l = Latency.trace_fetch t.profile t.rng in
  t.total_latency <- t.total_latency +. l;
  t.request_count <- t.request_count + 1;
  l

(** A response carries the simulated request latency in seconds. *)
type 'a response = { value : 'a; latency : float }

let eth_block_number t =
  let latency = charge_receipt t in
  { value = (Chain.all_blocks t.chain |> List.length); latency }

let eth_get_transaction_receipt t hash =
  let latency = charge_receipt t in
  { value = Chain.receipt t.chain hash; latency }

let eth_get_transaction_by_hash t hash =
  let latency = charge_receipt t in
  { value = Chain.transaction t.chain hash; latency }

let eth_get_balance t addr =
  let latency = charge_receipt t in
  { value = Chain.native_balance t.chain addr; latency }

(** [debug_trace_transaction] with [{"tracer": "callTracer"}]: the only
    way to observe internal value transfers (Section 3.2 of the paper).
    Significantly slower than receipt fetches under realistic
    profiles. *)
let debug_trace_transaction t hash =
  let latency = charge_trace t in
  { value = Chain.trace t.chain hash; latency }

type log_filter = {
  from_block : int option;
  to_block : int option;
  filter_addresses : Address.t list;  (** empty = any *)
  filter_topic0 : string list;  (** empty = any *)
}

let default_filter =
  { from_block = None; to_block = None; filter_addresses = []; filter_topic0 = [] }

(** [eth_get_logs t filter] returns matching logs together with their
    enclosing receipt context, oldest first. *)
let eth_get_logs t (filter : log_filter) :
    (Types.receipt * Types.log) list response =
  let latency = charge_receipt t in
  let in_block_range r =
    (match filter.from_block with
    | Some b -> r.Types.r_block_number >= b
    | None -> true)
    && match filter.to_block with
       | Some b -> r.Types.r_block_number <= b
       | None -> true
  in
  let matches_address l =
    filter.filter_addresses = []
    || List.exists (Address.equal l.Types.log_address) filter.filter_addresses
  in
  let matches_topic l =
    filter.filter_topic0 = []
    ||
    match l.Types.topics with
    | t0 :: _ -> List.mem t0 filter.filter_topic0
    | [] -> false
  in
  let result =
    Chain.all_receipts t.chain
    |> List.concat_map (fun r ->
           if r.Types.r_status = Types.Success && in_block_range r then
             List.filter_map
               (fun l ->
                 if matches_address l && matches_topic l then Some (r, l)
                 else None)
               r.Types.r_logs
           else [])
  in
  { value = result; latency }

let total_latency t = t.total_latency
let request_count t = t.request_count
