(** Recursive Length Prefix (RLP) serialization.

    RLP is Ethereum's canonical encoding for transactions and for
    deriving contract addresses ([keccak256(rlp([sender, nonce]))[12:]]).
    The chain simulator uses it so transaction hashes and contract
    addresses are derived exactly as on mainnet. *)

type t =
  | String of string  (** an RLP "string" (byte array) *)
  | List of t list

exception Decode_error of string

(* Big-endian minimal encoding of a non-negative integer. *)
let encode_length n =
  if n = 0 then ""
  else begin
    let rec bytes acc n = if n = 0 then acc else bytes (Char.chr (n land 0xff) :: acc) (n lsr 8) in
    let chars = bytes [] n in
    String.init (List.length chars) (List.nth chars)
  end

let rec encode (v : t) : string =
  match v with
  | String s ->
      let n = String.length s in
      if n = 1 && Char.code s.[0] < 0x80 then s
      else if n <= 55 then String.make 1 (Char.chr (0x80 + n)) ^ s
      else
        let len_bytes = encode_length n in
        String.make 1 (Char.chr (0xb7 + String.length len_bytes)) ^ len_bytes ^ s
  | List items ->
      let payload = String.concat "" (List.map encode items) in
      let n = String.length payload in
      if n <= 55 then String.make 1 (Char.chr (0xc0 + n)) ^ payload
      else
        let len_bytes = encode_length n in
        String.make 1 (Char.chr (0xf7 + String.length len_bytes)) ^ len_bytes ^ payload

(** Encode a non-negative integer with RLP's minimal big-endian
    convention (zero is the empty string). *)
let of_int n =
  if n < 0 then invalid_arg "Rlp.of_int: negative";
  String (encode_length n)

let of_uint256 (u : Xcw_uint256.Uint256.t) =
  let b = Xcw_uint256.Uint256.to_bytes_be u in
  (* strip leading zero bytes *)
  let rec first_nonzero i =
    if i >= String.length b then String.length b
    else if b.[i] = '\000' then first_nonzero (i + 1)
    else i
  in
  let i = first_nonzero 0 in
  String (String.sub b i (String.length b - i))

let of_string s = String s

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let decode_length (s : string) (pos : int) (count : int) : int =
  if pos + count > String.length s then raise (Decode_error "truncated length");
  let acc = ref 0 in
  for i = 0 to count - 1 do
    acc := (!acc lsl 8) lor Char.code s.[pos + i]
  done;
  !acc

(* Decode one item starting at [pos]; returns (item, next position). *)
let rec decode_at (s : string) (pos : int) : t * int =
  if pos >= String.length s then raise (Decode_error "truncated input");
  let b0 = Char.code s.[pos] in
  if b0 < 0x80 then (String (String.sub s pos 1), pos + 1)
  else if b0 <= 0xb7 then begin
    let n = b0 - 0x80 in
    if pos + 1 + n > String.length s then raise (Decode_error "truncated string");
    (* canonical form check: single byte < 0x80 must not be length-prefixed *)
    if n = 1 && Char.code s.[pos + 1] < 0x80 then
      raise (Decode_error "non-canonical single byte");
    (String (String.sub s (pos + 1) n), pos + 1 + n)
  end
  else if b0 <= 0xbf then begin
    let len_len = b0 - 0xb7 in
    let n = decode_length s (pos + 1) len_len in
    if n <= 55 then raise (Decode_error "non-canonical long string");
    if pos + 1 + len_len + n > String.length s then
      raise (Decode_error "truncated long string");
    (String (String.sub s (pos + 1 + len_len) n), pos + 1 + len_len + n)
  end
  else if b0 <= 0xf7 then begin
    let n = b0 - 0xc0 in
    let stop = pos + 1 + n in
    if stop > String.length s then raise (Decode_error "truncated list");
    (List (decode_items s (pos + 1) stop), stop)
  end
  else begin
    let len_len = b0 - 0xf7 in
    let n = decode_length s (pos + 1) len_len in
    if n <= 55 then raise (Decode_error "non-canonical long list");
    let start = pos + 1 + len_len in
    let stop = start + n in
    if stop > String.length s then raise (Decode_error "truncated long list");
    (List (decode_items s start stop), stop)
  end

and decode_items s pos stop =
  if pos = stop then []
  else
    let item, next = decode_at s pos in
    if next > stop then raise (Decode_error "item overruns list payload");
    item :: decode_items s next stop

let decode (s : string) : t =
  let v, next = decode_at s 0 in
  if next <> String.length s then raise (Decode_error "trailing bytes");
  v

let to_int = function
  | List _ -> raise (Decode_error "expected string, got list")
  | String s ->
      if String.length s > 8 then raise (Decode_error "integer too large");
      let acc = ref 0 in
      String.iter (fun c -> acc := (!acc lsl 8) lor Char.code c) s;
      !acc
