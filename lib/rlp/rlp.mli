(** Recursive Length Prefix (RLP) serialization — Ethereum's canonical
    encoding for transactions and contract-address derivation. *)

type t =
  | String of string  (** an RLP "string" (byte array) *)
  | List of t list

exception Decode_error of string

val encode : t -> string
(** Canonical RLP encoding. *)

val decode : string -> t
(** Inverse of {!encode}.  Raises {!Decode_error} on malformed,
    non-canonical, or trailing input. *)

val of_int : int -> t
(** Minimal big-endian integer encoding ([0] is the empty string). *)

val of_uint256 : Xcw_uint256.Uint256.t -> t
(** Minimal big-endian encoding of a 256-bit value. *)

val of_string : string -> t

val to_int : t -> int
(** Decode a minimal big-endian integer.  Raises {!Decode_error} on
    lists or integers wider than 8 bytes. *)
