(* Unified fleet alert bus: one ordered stream, cross-bridge dedup. *)

module Monitor = Xcw_core.Monitor
module Report = Xcw_core.Report
module Metrics = Xcw_obs.Metrics

type origin = { o_bridge : string; o_round : int }

type fleet_alert = {
  fa_seq : int;
  fa_round : int;
  fa_bridge : string;
  fa_alert : Monitor.alert;
  mutable fa_origins : origin list;
}

let signature (a : Monitor.alert) =
  let an = a.Monitor.al_anomaly in
  Printf.sprintf "%s|%s|%d|%s|%s" a.Monitor.al_rule
    (Report.class_name an.Report.a_class)
    an.Report.a_chain_id an.Report.a_tx_hash an.Report.a_detail

type t = {
  b_window : int;
  (* signature -> latest emission carrying it *)
  b_live : (string, fleet_alert) Hashtbl.t;
  mutable b_stream : fleet_alert list;  (** reversed *)
  mutable b_emitted : int;
  mutable b_collapsed : int;
  bm_emitted : Metrics.Counter.t;
  bm_collapsed : Metrics.Counter.t;
}

let create ?(window = 16) ?metrics () =
  if window < 0 then invalid_arg "Bus.create: negative window";
  let reg = match metrics with Some m -> m | None -> Metrics.default () in
  {
    b_window = window;
    b_live = Hashtbl.create 128;
    b_stream = [];
    b_emitted = 0;
    b_collapsed = 0;
    bm_emitted = Metrics.counter reg "xcw_fleet_bus_emitted_total";
    bm_collapsed = Metrics.counter reg "xcw_fleet_bus_collapsed_total";
  }

let window t = t.b_window

let publish t ~bridge ~round alert =
  let key = signature alert in
  let org = { o_bridge = bridge; o_round = round } in
  match Hashtbl.find_opt t.b_live key with
  | Some fa when round - fa.fa_round <= t.b_window ->
      fa.fa_origins <- fa.fa_origins @ [ org ];
      t.b_collapsed <- t.b_collapsed + 1;
      Metrics.Counter.inc t.bm_collapsed;
      `Collapsed fa
  | _ ->
      (* Unseen signature, or the previous emission aged out of the
         window — either way this is a fresh page. *)
      let fa =
        {
          fa_seq = t.b_emitted;
          fa_round = round;
          fa_bridge = bridge;
          fa_alert = alert;
          fa_origins = [ org ];
        }
      in
      Hashtbl.replace t.b_live key fa;
      t.b_stream <- fa :: t.b_stream;
      t.b_emitted <- t.b_emitted + 1;
      Metrics.Counter.inc t.bm_emitted;
      `Emitted fa

let alerts t = List.rev t.b_stream
let emitted t = t.b_emitted
let collapsed t = t.b_collapsed

(* Durable-state support (PR 9): the dedup window and counters are the
   bus state that must survive a restart — without the live table a
   restarted fleet would re-emit a signature the window had already
   collapsed, and without the counters the dense [fa_seq] numbering
   would restart from 0.  The emission history ([b_stream]) is
   deliberately not part of it: it is a read-model of past output, and
   the supervisor re-delivers the crash-boundary tail through its own
   replay record. *)

let export t =
  let live =
    Hashtbl.fold (fun k fa acc -> (k, fa) :: acc) t.b_live []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (live, t.b_emitted, t.b_collapsed)

let restore t ~live ~emitted ~collapsed =
  if t.b_stream <> [] || t.b_emitted > 0 then
    invalid_arg "Bus.restore: bus is not fresh";
  List.iter (fun (k, fa) -> Hashtbl.replace t.b_live k fa) live;
  t.b_emitted <- emitted;
  t.b_collapsed <- collapsed
