(** Fleet-scale multi-bridge supervision with per-bridge fault
    isolation.

    A supervisor owns N independent bridge {e lanes} — each a
    {!Xcw_core.Monitor} over its own pair of simulated chains — and
    drives them in fleet poll {e rounds}: every round each runnable
    lane advances toward the cursors its schedule names for that round
    (clamped by the per-round poll budget), the lane monitors run
    concurrently over a shared {!Xcw_par.Pool} of domains, and their
    alerts merge into one {!Bus} in a fixed order (round, then lane
    index, then the lane's own order), so fleet output is identical at
    any worker count and across runs with the same seeds.

    Fault isolation is structural: lanes share nothing but the domain
    pool and the metrics registry.  A lane whose poll raises, or that
    sits unsynced without making progress (pending receipts not
    shrinking while its schedule stands still — the signature of a
    quorum that refuses to vouch, a dead tracer, or a reorg storm the
    monitor cannot get past), accumulates failures; at
    [cb_failure_threshold] consecutive failures the circuit breaker
    {e parks} the lane for a term of rounds that doubles on every
    consecutive trip (capped at [cb_max_term]).  A parked lane costs
    the fleet nothing; when its term expires it runs one probation
    probe — success rejoins the fleet and resets the backoff, another
    failure re-parks immediately at the doubled term.  The rest of the
    fleet keeps its cadence throughout: each clean lane's alert stream
    is byte-identical to running that lane's monitor alone (the bench's
    checked differential).

    Per-round work is bounded per lane by [poll_budget]: a lane's
    cursors advance at most that many blocks per side per round, so one
    bridge's backlog (catch-up after a park, a reorg rewind, a block
    storm) is amortized across rounds instead of monopolizing a round
    for the whole fleet. *)

module Monitor = Xcw_core.Monitor
module Detector = Xcw_core.Detector
module Metrics = Xcw_obs.Metrics

type lane_spec = {
  l_name : string;  (** unique lane name; bus origin and metric label *)
  l_input : Detector.input;
  l_cursors : int -> int * int;
      (** fleet round (1-based) -> (source, target) block cursors the
          lane should have reached by that round; must be monotone in
          the round.  Exceptions are caught and count as lane failures
          — a broken schedule parks its lane, not the fleet. *)
}

(** Circuit breaker configuration. *)
type breaker = {
  cb_failure_threshold : int;
      (** consecutive failing polls before the lane is parked *)
  cb_base_term : int;  (** rounds parked on the first trip *)
  cb_max_term : int;  (** backoff doubling cap *)
}

val default_breaker : breaker
(** threshold 3, base term 4, max term 64. *)

type lane_state =
  | Active  (** last poll synced *)
  | Degraded  (** behind but progressing (or not yet at threshold) *)
  | Parked of { until : int; term : int }
      (** skipped until round [until], then one probation probe *)
  | Probation  (** probe poll ran this round; next outcome decides *)

type lane_health = {
  lh_index : int;
  lh_name : string;
  lh_state : lane_state;
  lh_polls : int;  (** monitor polls actually executed *)
  lh_alerts : int;  (** raw alerts raised by this lane *)
  lh_failures : int;  (** current consecutive-failure count *)
  lh_trips : int;  (** times parked *)
  lh_exceptions : int;  (** polls that raised *)
  lh_lag : int;
      (** blocks of cursor backlog vs the lane's latest schedule target
          plus receipts the monitor still owes within its cursors *)
  lh_monitor : Monitor.health option;  (** [None] before the first poll *)
  lh_last_error : string option;
}

type health = {
  fh_rounds : int;
  fh_parked : int;  (** lanes currently parked *)
  fh_emitted : int;  (** bus emissions *)
  fh_collapsed : int;  (** bus cross-bridge collapses *)
  fh_lag : int;  (** summed lane lag *)
  fh_lanes : lane_health list;  (** in lane-index order *)
}

type t

val create :
  ?ndomains:int ->
  ?pool:Xcw_par.Pool.t ->
  ?breaker:breaker ->
  ?dedup_window:int ->
  ?poll_budget:int ->
  ?metrics:Metrics.t ->
  ?state_dir:string ->
  ?crash:Xcw_store.Crash_plan.t ->
  ?snapshot_every:int ->
  lane_spec list ->
  t
(** [ndomains] (default 1) is the fleet-level worker count; lane polls
    of one round fan out over {!Xcw_par.Pool.get}[ ~ndomains] (or the
    explicit [pool]).  Raises [Invalid_argument] if the lane list is
    empty, lane names collide, or fleet-level parallelism is combined
    with lanes that themselves request [i_ndomains > 1] — the domain
    pools do not nest; pick one level.  [poll_budget] (default
    unbounded) caps per-side cursor advancement per round.
    [dedup_window] is forwarded to {!Bus.create}.

    Fleet instruments recorded into [metrics] (default
    {!Metrics.default}): per-lane [xcw_fleet_poll_seconds{bridge}]
    histograms and [xcw_fleet_lane_polls_total{bridge}] /
    [xcw_fleet_lane_alerts_total{bridge}] counters, fleet-wide
    [xcw_fleet_rounds_total] / [xcw_fleet_parks_total] counters, the
    [xcw_fleet_round_seconds] histogram and [xcw_fleet_lag] /
    [xcw_fleet_parked] gauges; every round opens a ["fleet.round"]
    span.

    [state_dir] makes the fleet durable (PR 9): each lane's monitor
    checkpoints into [state_dir/<lane-name>] and the supervisor itself
    appends one self-contained record per round (breaker and cursor
    state, the bus dedup window and counters, the round's emissions) to
    [state_dir/_fleet], snapshotting every [snapshot_every] rounds
    (default 8).  Creation recovers whatever the directory holds and
    resumes at the last durable round; re-running the crashed round
    merges each lane's durable alert tail back into the bus in lane
    order, so the emission stream (after the consumer dedups
    {!replayed} by [fa_seq]) is byte-identical to an uninterrupted run.
    [crash] threads a deterministic crash-injection plan through every
    store write of the fleet — a {!Xcw_store.Crash_plan.Crashed} escape
    aborts the poll like a process death instead of tripping the lane
    breaker. *)

val poll : t -> Bus.fleet_alert list
(** Run one fleet round; returns the alerts the bus emitted this round
    (collapsed duplicates are annotations, not emissions). *)

val run : t -> rounds:int -> Bus.fleet_alert list
(** [rounds] successive {!poll}s, emissions concatenated. *)

val health : t -> health
val rounds : t -> int
val bus : t -> Bus.t

val alerts : t -> Bus.fleet_alert list
(** Everything the bus emitted so far, in sequence order.  After a
    restart this covers only the current process — the durable
    crash-boundary tail is {!replayed}. *)

val replayed : t -> Bus.fleet_alert list
(** The emissions of the last durable round.  After recovery, the tail
    a consumer may have missed: re-deliver and dedup by [fa_seq] (a
    round that crashed before its record committed simply re-runs).
    Empty without [state_dir]. *)

val lane_alerts : t -> int -> Monitor.alert list
(** Lane [i]'s raw alert stream in emission order — before bus dedup;
    the solo-vs-fleet isolation differential compares exactly this. *)

val lane_monitor : t -> int -> Monitor.t option
(** Lane [i]'s monitor, once its first poll created it. *)

val lane_count : t -> int
