(** Unified fleet alert bus with cross-bridge deduplication.

    Alerts from every bridge lane flow through one bus in a fixed merge
    order (fleet round, then lane index, then the lane's own alert
    order), each emission getting a dense, fleet-wide sequence number.
    Two bridges flagging the {e same} signature — rule, anomaly class,
    chain id, transaction hash and detail line (which carries the token
    and amount) — within [window] fleet rounds collapse into one bus
    alert annotated with every origin; the same signature re-appearing
    after the window expires is a fresh alert again (a stuck anomaly
    that resurfaces days later deserves a new page, not a dropped
    increment on a long-forgotten one).

    The bus never reorders or drops an alert that does not collapse:
    the per-lane subsequence of {!alerts} is exactly the lane's own
    alert stream — the property the fleet isolation differential
    checks byte-for-byte against solo monitor runs. *)

module Monitor = Xcw_core.Monitor
module Metrics = Xcw_obs.Metrics

type origin = {
  o_bridge : string;  (** lane name *)
  o_round : int;  (** fleet poll round the lane raised it in *)
}

type fleet_alert = {
  fa_seq : int;  (** dense bus sequence number, from 0 *)
  fa_round : int;  (** round of (re-)emission *)
  fa_bridge : string;  (** first origin *)
  fa_alert : Monitor.alert;
  mutable fa_origins : origin list;
      (** every origin in arrival order; head is the emitter *)
}

val signature : Monitor.alert -> string
(** The dedup key: rule | class | chain id | tx hash | detail. *)

type t

val create : ?window:int -> ?metrics:Metrics.t -> unit -> t
(** [window] (default 16) is the collapse horizon in fleet rounds: a
    duplicate arriving at round [r] collapses into an emission from
    round [r0] iff [r - r0 <= window].  Bus instruments
    ([xcw_fleet_bus_emitted_total], [xcw_fleet_bus_collapsed_total])
    record into [metrics] — default {!Metrics.default}. *)

val window : t -> int

val publish :
  t ->
  bridge:string ->
  round:int ->
  Monitor.alert ->
  [ `Emitted of fleet_alert | `Collapsed of fleet_alert ]
(** Route one lane alert.  [`Emitted a] appended [a] to the stream;
    [`Collapsed a] recorded [bridge] as an extra origin of the earlier
    emission [a].  Rounds must be non-decreasing across calls. *)

val alerts : t -> fleet_alert list
(** The emission stream in sequence order (collapsed duplicates appear
    only as extra origins on their emission). *)

val emitted : t -> int
val collapsed : t -> int

(** {1 Durable-state support (PR 9)}

    What a restart must preserve: the live dedup window (else a
    collapsed signature would re-emit) and the counters (else [fa_seq]
    numbering would restart).  The emission history is not exported —
    the supervisor re-delivers the crash-boundary tail itself. *)

val export : t -> (string * fleet_alert) list * int * int
(** [(live, emitted, collapsed)]; live entries sorted by signature. *)

val restore :
  t ->
  live:(string * fleet_alert) list ->
  emitted:int ->
  collapsed:int ->
  unit
(** Refill a freshly created bus; raises [Invalid_argument] if the bus
    has already emitted. *)
