(* Lane builders over the workload generators. *)

module Chain = Xcw_chain.Chain
module Types = Xcw_evm.Types
module Bridge = Xcw_bridge.Bridge
module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Scenario = Xcw_workload.Scenario
module Generic = Xcw_workload.Generic
module Attacks = Xcw_workload.Attacks

type kind =
  | Nomad
  | Ronin
  | Generic_kind of Generic.spec
  | Attack of Report.attack_class

let kind_of_string s =
  match s with
  | "nomad" -> Ok Nomad
  | "ronin" -> Ok Ronin
  | "generic" -> Ok (Generic_kind Generic.default_spec)
  | s -> (
      match
        if String.length s > 7 && String.sub s 0 7 = "attack-" then
          Attacks.class_of_string (String.sub s 7 (String.length s - 7))
        else None
      with
      | Some cls -> Ok (Attack cls)
      | None ->
          Error
            (Printf.sprintf
               "unknown lane kind %S \
                (nomad|ronin|generic|attack-<class>)"
               s))

let kind_slug = function
  | Nomad -> "nomad"
  | Ronin -> "ronin"
  | Generic_kind _ -> "generic"
  | Attack cls -> "attack-" ^ Attacks.class_slug cls

let build ?scale ?seed kind =
  match kind with
  | Nomad -> (Xcw_workload.Nomad.build ?seed ?scale (), Decoder.nomad_plugin, "nomad")
  | Ronin -> (Xcw_workload.Ronin.build ?seed ?scale (), Decoder.ronin_plugin, "ronin")
  | Generic_kind spec ->
      let spec =
        match seed with
        | Some s -> { spec with Generic.g_seed = s }
        | None -> spec
      in
      (Generic.build spec, Decoder.ronin_plugin, spec.Generic.g_label)
  | Attack cls ->
      let spec = Attacks.default_spec cls in
      let spec =
        match seed with
        | Some s ->
            {
              spec with
              Attacks.a_base = { spec.Attacks.a_base with Generic.g_seed = s };
            }
        | None -> spec
      in
      ( (Attacks.build spec).Attacks.inj_built,
        Decoder.ronin_plugin,
        "attack-" ^ Attacks.class_slug cls )

let input_of ~built ~plugin ~label =
  let input =
    Detector.default_input ~label ~plugin ~config:built.Scenario.config
      ~source_chain:built.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:built.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:built.Scenario.pricing
  in
  {
    input with
    Detector.i_first_window_withdrawal_id =
      built.Scenario.first_window_withdrawal_id;
  }

let lane_spec ?(rounds_to_sync = 8) ?name ~built ~input () =
  if rounds_to_sync < 1 then invalid_arg "Presets.lane_spec: rounds_to_sync";
  let src = built.Scenario.bridge.Bridge.source.Bridge.chain in
  let dst = built.Scenario.bridge.Bridge.target.Bridge.chain in
  (* The chains are fully generated before the fleet runs, so the block
     lists are fixed; snapshot them once. *)
  let blocks c = Array.of_list (Chain.all_blocks c) in
  let src_blocks = blocks src and dst_blocks = blocks dst in
  let head bs =
    Array.fold_left (fun acc b -> max acc b.Types.b_number) 0 bs
  in
  let src_head = head src_blocks and dst_head = head dst_blocks in
  let cursor_at bs tm =
    Array.fold_left
      (fun acc b ->
        if b.Types.b_timestamp <= tm then max acc b.Types.b_number else acc)
      0 bs
  in
  let t1, t2 = built.Scenario.window in
  let cursors round =
    if round >= rounds_to_sync then (src_head, dst_head)
    else
      let tm = t1 + (t2 - t1) * round / rounds_to_sync in
      (cursor_at src_blocks tm, cursor_at dst_blocks tm)
  in
  {
    Supervisor.l_name =
      (match name with Some n -> n | None -> input.Detector.i_label);
    l_input = input;
    l_cursors = cursors;
  }

let lane ?scale ?seed ?rounds_to_sync ?name ?(tweak = fun i -> i) kind =
  let built, plugin, label = build ?scale ?seed kind in
  let input = tweak (input_of ~built ~plugin ~label) in
  lane_spec ?rounds_to_sync ?name ~built ~input ()
