(* Lane builders over the workload generators. *)

module Chain = Xcw_chain.Chain
module Types = Xcw_evm.Types
module Bridge = Xcw_bridge.Bridge
module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Scenario = Xcw_workload.Scenario
module Generic = Xcw_workload.Generic
module Attacks = Xcw_workload.Attacks
module Exit_bridge = Xcw_workload.Exit_bridge

type kind =
  | Nomad
  | Ronin
  | Generic_kind of Generic.spec
  | Attack of Report.attack_class
  | Exit
  | Exit_attack of Report.acc_class

let kind_of_string s =
  let strip prefix =
    let n = String.length prefix in
    if String.length s > n && String.sub s 0 n = prefix then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match s with
  | "nomad" -> Ok Nomad
  | "ronin" -> Ok Ronin
  | "generic" -> Ok (Generic_kind Generic.default_spec)
  | "exit" -> Ok Exit
  | s -> (
      match Option.bind (strip "attack-") Attacks.class_of_string with
      | Some cls -> Ok (Attack cls)
      | None -> (
          match Option.bind (strip "exit-") Report.acc_class_of_slug with
          | Some cls -> Ok (Exit_attack cls)
          | None ->
              Error
                (Printf.sprintf
                   "unknown lane kind %S \
                    (nomad|ronin|generic|attack-<class>|exit|exit-<class>)"
                   s)))

let kind_slug = function
  | Nomad -> "nomad"
  | Ronin -> "ronin"
  | Generic_kind _ -> "generic"
  | Attack cls -> "attack-" ^ Attacks.class_slug cls
  | Exit -> "exit"
  | Exit_attack cls -> "exit-" ^ Report.acc_class_slug cls

let reseed_exit_base ?seed (base : Exit_bridge.base) =
  match seed with
  | None -> base
  | Some s ->
      {
        base with
        Exit_bridge.b_seed = s;
        b_base = { base.Exit_bridge.b_base with Generic.g_seed = s };
      }

let build ?scale ?seed kind =
  match kind with
  | Nomad -> (Xcw_workload.Nomad.build ?seed ?scale (), Decoder.nomad_plugin, "nomad")
  | Ronin -> (Xcw_workload.Ronin.build ?seed ?scale (), Decoder.ronin_plugin, "ronin")
  | Generic_kind spec ->
      let spec =
        match seed with
        | Some s -> { spec with Generic.g_seed = s }
        | None -> spec
      in
      (Generic.build spec, Decoder.ronin_plugin, spec.Generic.g_label)
  | Attack cls ->
      let spec = Attacks.default_spec cls in
      let spec =
        match seed with
        | Some s ->
            {
              spec with
              Attacks.a_base = { spec.Attacks.a_base with Generic.g_seed = s };
            }
        | None -> spec
      in
      ( (Attacks.build spec).Attacks.inj_built,
        Decoder.ronin_plugin,
        "attack-" ^ Attacks.class_slug cls )
  | Exit ->
      let base = reseed_exit_base ?seed Exit_bridge.default_base in
      (Exit_bridge.build_benign base, Decoder.ronin_plugin, "exit")
  | Exit_attack cls ->
      let spec = Exit_bridge.default_spec cls in
      let spec =
        { spec with Exit_bridge.e_base = reseed_exit_base ?seed spec.Exit_bridge.e_base }
      in
      ( (Exit_bridge.build spec).Exit_bridge.inj_built,
        Decoder.ronin_plugin,
        "exit-" ^ Report.acc_class_slug cls )

let input_of ~built ~plugin ~label =
  let input =
    Detector.default_input ~label ~plugin ~config:built.Scenario.config
      ~source_chain:built.Scenario.bridge.Bridge.source.Bridge.chain
      ~target_chain:built.Scenario.bridge.Bridge.target.Bridge.chain
      ~pricing:built.Scenario.pricing
  in
  {
    input with
    Detector.i_first_window_withdrawal_id =
      built.Scenario.first_window_withdrawal_id;
  }

let lane_spec ?(rounds_to_sync = 8) ?name ~built ~input () =
  if rounds_to_sync < 1 then invalid_arg "Presets.lane_spec: rounds_to_sync";
  let src = built.Scenario.bridge.Bridge.source.Bridge.chain in
  let dst = built.Scenario.bridge.Bridge.target.Bridge.chain in
  (* The chains are fully generated before the fleet runs, so the block
     lists are fixed; snapshot them once. *)
  let blocks c = Array.of_list (Chain.all_blocks c) in
  let src_blocks = blocks src and dst_blocks = blocks dst in
  let head bs =
    Array.fold_left (fun acc b -> max acc b.Types.b_number) 0 bs
  in
  let src_head = head src_blocks and dst_head = head dst_blocks in
  let cursor_at bs tm =
    Array.fold_left
      (fun acc b ->
        if b.Types.b_timestamp <= tm then max acc b.Types.b_number else acc)
      0 bs
  in
  let t1, t2 = built.Scenario.window in
  let cursors round =
    if round >= rounds_to_sync then (src_head, dst_head)
    else
      let tm = t1 + (t2 - t1) * round / rounds_to_sync in
      (cursor_at src_blocks tm, cursor_at dst_blocks tm)
  in
  {
    Supervisor.l_name =
      (match name with Some n -> n | None -> input.Detector.i_label);
    l_input = input;
    l_cursors = cursors;
  }

let lane ?scale ?seed ?rounds_to_sync ?name ?(tweak = fun i -> i) kind =
  let built, plugin, label = build ?scale ?seed kind in
  let input = tweak (input_of ~built ~plugin ~label) in
  lane_spec ?rounds_to_sync ?name ~built ~input ()
