(* Fleet supervisor: N bridge monitors as isolated lanes over a shared
   domain pool, a circuit breaker per lane, one deduplicating bus.

   Determinism contract: lanes are polled in index order each round and
   share no mutable state (each owns its monitor, chains, RPC facades
   and PRNG streams; the symbol table and metrics registry they do
   share are lock-protected and order-insensitive), and the domain pool
   returns results in submission order — so the bus stream, lane
   streams and health trajectory are identical at any [ndomains] and
   across two runs with the same seeds. *)

module Monitor = Xcw_core.Monitor
module Detector = Xcw_core.Detector
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span
module Pool = Xcw_par.Pool

type lane_spec = {
  l_name : string;
  l_input : Detector.input;
  l_cursors : int -> int * int;
}

type breaker = {
  cb_failure_threshold : int;
  cb_base_term : int;
  cb_max_term : int;
}

let default_breaker =
  { cb_failure_threshold = 3; cb_base_term = 4; cb_max_term = 64 }

type lane_state =
  | Active
  | Degraded
  | Parked of { until : int; term : int }
  | Probation

(* Per-lane instruments, resolved once at creation. *)
type lane_obs = {
  lo_poll_seconds : Metrics.Histogram.t;
  lo_polls : Metrics.Counter.t;
  lo_alerts : Metrics.Counter.t;
}

type lane = {
  ln_index : int;
  ln_spec : lane_spec;
  mutable ln_monitor : Monitor.t option;  (** created on first poll *)
  mutable ln_state : lane_state;
  mutable ln_src : int;  (** achieved (requested) source cursor *)
  mutable ln_dst : int;
  mutable ln_target : int * int;  (** latest unclamped schedule target *)
  mutable ln_failures : int;  (** consecutive failing polls *)
  mutable ln_next_term : int;  (** park term of the next trip *)
  mutable ln_trips : int;
  mutable ln_exceptions : int;
  mutable ln_polls : int;  (** monitor polls executed *)
  mutable ln_prev_pending : int option;  (** pending after the last poll *)
  mutable ln_alerts_rev : Monitor.alert list;  (** raw stream, reversed *)
  mutable ln_alert_count : int;
  mutable ln_last_error : string option;
  ln_dir : string option;  (** per-lane checkpoint directory *)
  mutable ln_bus_seq : int;
      (** high-water mark of monitor alert seqs merged into the bus *)
  mutable ln_replay_tail : Monitor.alert list;
      (** durable alerts above [ln_bus_seq] the bus never saw; merged
          ahead of the lane's next successful poll *)
  ln_obs : lane_obs;
}

type fleet_obs = {
  fo_reg : Metrics.t;
  fo_rounds : Metrics.Counter.t;
  fo_parks : Metrics.Counter.t;
  fo_round_seconds : Metrics.Histogram.t;
  fo_lag : Metrics.Gauge.t;
  fo_parked : Metrics.Gauge.t;
}

type t = {
  s_lanes : lane array;
  s_pool : Pool.t option;  (** [None] = sequential inline *)
  s_breaker : breaker;
  s_budget : int;
  s_bus : Bus.t;
  s_metrics : Metrics.t;
  s_obs : fleet_obs;
  mutable s_rounds : int;
  (* Durable-state extension (PR 9). *)
  s_store : Xcw_store.Store.t option;
  s_crash : Xcw_store.Crash_plan.t option;
  s_snapshot_every : int;
  mutable s_replay : Bus.fleet_alert list;
      (** emissions of the last durable round — the tail a consumer
          must dedup by [fa_seq] after a restart *)
}

type lane_health = {
  lh_index : int;
  lh_name : string;
  lh_state : lane_state;
  lh_polls : int;
  lh_alerts : int;
  lh_failures : int;
  lh_trips : int;
  lh_exceptions : int;
  lh_lag : int;
  lh_monitor : Monitor.health option;
  lh_last_error : string option;
}

type health = {
  fh_rounds : int;
  fh_parked : int;
  fh_emitted : int;
  fh_collapsed : int;
  fh_lag : int;
  fh_lanes : lane_health list;
}

(* ------------------------------------------------------------------ *)
(* Durable fleet state (PR 9)                                          *)

module CW = Xcw_store.Codec.W
module CR = Xcw_store.Codec.R
module Crash_plan = Xcw_store.Crash_plan

(* A simulated process death must abort the fleet poll, not be absorbed
   as a lane failure by the breaker. *)
let is_crash = function Crash_plan.Crashed _ -> true | _ -> false

let sanitize_name name =
  String.map (fun c -> if c = '/' || c = '\\' then '_' else c) name

(* The fleet's own WAL record is the full supervisor state: breaker and
   cursor fields per lane, the bus dedup window and counters, and the
   round's emissions (the replay tail a consumer dedups by [fa_seq]).
   Records are self-contained, so recovery applies only the newest
   one; snapshots reuse the same payload and merely truncate the WAL. *)

let put_origin b (o : Bus.origin) =
  CW.str b o.Bus.o_bridge;
  CW.int b o.Bus.o_round

let get_origin r =
  let o_bridge = CR.str r in
  let o_round = CR.int r in
  { Bus.o_bridge; o_round }

let put_fleet_alert b (fa : Bus.fleet_alert) =
  CW.int b fa.Bus.fa_seq;
  CW.int b fa.Bus.fa_round;
  CW.str b fa.Bus.fa_bridge;
  Monitor.Checkpoint.put_alert b fa.Bus.fa_alert;
  CW.list b (put_origin b) fa.Bus.fa_origins

let get_fleet_alert r =
  let fa_seq = CR.int r in
  let fa_round = CR.int r in
  let fa_bridge = CR.str r in
  let fa_alert = Monitor.Checkpoint.get_alert r in
  let fa_origins = CR.list r (fun () -> get_origin r) in
  { Bus.fa_seq; fa_round; fa_bridge; fa_alert; fa_origins }

let put_lane_state b = function
  | Active -> CW.int b 0
  | Degraded -> CW.int b 1
  | Parked { until; term } ->
      CW.int b 2;
      CW.int b until;
      CW.int b term
  | Probation -> CW.int b 3

let get_lane_state r =
  match CR.int r with
  | 0 -> Active
  | 1 -> Degraded
  | 2 ->
      let until = CR.int r in
      let term = CR.int r in
      Parked { until; term }
  | 3 -> Probation
  | n -> raise (CR.Corrupt (Printf.sprintf "lane state tag %d" n))

let put_opt_int b = function
  | None -> CW.bool b false
  | Some n ->
      CW.bool b true;
      CW.int b n

let get_opt_int r = if CR.bool r then Some (CR.int r) else None

let encode_fleet t ~replay =
  let b = CW.create () in
  CW.int b t.s_rounds;
  CW.int b (Array.length t.s_lanes);
  Array.iter
    (fun ln ->
      put_lane_state b ln.ln_state;
      CW.int b ln.ln_src;
      CW.int b ln.ln_dst;
      let ts, tt = ln.ln_target in
      CW.int b ts;
      CW.int b tt;
      CW.int b ln.ln_failures;
      CW.int b ln.ln_next_term;
      CW.int b ln.ln_trips;
      CW.int b ln.ln_exceptions;
      CW.int b ln.ln_polls;
      put_opt_int b ln.ln_prev_pending;
      CW.int b ln.ln_alert_count;
      CW.opt_str b ln.ln_last_error;
      CW.int b ln.ln_bus_seq)
    t.s_lanes;
  let live, emitted, collapsed = Bus.export t.s_bus in
  CW.int b emitted;
  CW.int b collapsed;
  CW.list b
    (fun (k, fa) ->
      CW.str b k;
      put_fleet_alert b fa)
    live;
  CW.list b (put_fleet_alert b) replay;
  Buffer.contents b

let apply_fleet t payload =
  let r = CR.of_string payload in
  t.s_rounds <- CR.int r;
  if CR.int r <> Array.length t.s_lanes then
    raise (CR.Corrupt "fleet record lane count mismatch");
  Array.iter
    (fun ln ->
      ln.ln_state <- get_lane_state r;
      ln.ln_src <- CR.int r;
      ln.ln_dst <- CR.int r;
      let ts = CR.int r in
      let tt = CR.int r in
      ln.ln_target <- (ts, tt);
      ln.ln_failures <- CR.int r;
      ln.ln_next_term <- CR.int r;
      ln.ln_trips <- CR.int r;
      ln.ln_exceptions <- CR.int r;
      ln.ln_polls <- CR.int r;
      ln.ln_prev_pending <- get_opt_int r;
      ln.ln_alert_count <- CR.int r;
      ln.ln_last_error <- CR.opt_str r;
      ln.ln_bus_seq <- CR.int r)
    t.s_lanes;
  let emitted = CR.int r in
  let collapsed = CR.int r in
  let live =
    CR.list r (fun () ->
        let k = CR.str r in
        let fa = get_fleet_alert r in
        (k, fa))
  in
  Bus.restore t.s_bus ~live ~emitted ~collapsed;
  t.s_replay <- CR.list r (fun () -> get_fleet_alert r)

let create ?(ndomains = 1) ?pool ?(breaker = default_breaker)
    ?dedup_window ?(poll_budget = max_int) ?metrics ?state_dir ?crash
    ?(snapshot_every = 8) specs =
  if specs = [] then invalid_arg "Supervisor.create: no lanes";
  if ndomains < 1 then invalid_arg "Supervisor.create: ndomains < 1";
  if poll_budget < 1 then invalid_arg "Supervisor.create: poll_budget < 1";
  if breaker.cb_failure_threshold < 1 || breaker.cb_base_term < 1 then
    invalid_arg "Supervisor.create: degenerate breaker";
  let names = List.map (fun s -> s.l_name) specs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Supervisor.create: duplicate lane names";
  let effective =
    match pool with Some p -> Pool.ndomains p | None -> ndomains
  in
  if
    effective > 1
    && List.exists (fun s -> s.l_input.Detector.i_ndomains > 1) specs
  then
    invalid_arg
      "Supervisor.create: fleet-level parallelism over lanes with \
       i_ndomains > 1 would nest domain pools; parallelize one level";
  let metrics = match metrics with Some m -> m | None -> Metrics.default () in
  let lane i spec =
    {
      ln_index = i;
      ln_spec = spec;
      ln_monitor = None;
      ln_state = Active;
      ln_src = 0;
      ln_dst = 0;
      ln_target = (0, 0);
      ln_failures = 0;
      ln_next_term = breaker.cb_base_term;
      ln_trips = 0;
      ln_exceptions = 0;
      ln_polls = 0;
      ln_prev_pending = None;
      ln_alerts_rev = [];
      ln_alert_count = 0;
      ln_last_error = None;
      ln_dir =
        Option.map
          (fun dir -> Filename.concat dir (sanitize_name spec.l_name))
          state_dir;
      ln_bus_seq = 0;
      ln_replay_tail = [];
      ln_obs =
        (let labels = [ ("bridge", spec.l_name) ] in
         {
           lo_poll_seconds =
             Metrics.histogram metrics ~labels "xcw_fleet_poll_seconds";
           lo_polls =
             Metrics.counter metrics ~labels "xcw_fleet_lane_polls_total";
           lo_alerts =
             Metrics.counter metrics ~labels "xcw_fleet_lane_alerts_total";
         });
    }
  in
  let store_state =
    match state_dir with
    | None -> None
    | Some dir ->
        Some
          (Xcw_store.Store.open_ ?crash
             ~dir:(Filename.concat dir "_fleet")
             ())
  in
  let t =
    {
      s_lanes = Array.of_list (List.mapi lane specs);
      s_pool =
        (match pool with
        | Some p -> Some p
        | None -> if ndomains > 1 then Some (Pool.get ~ndomains) else None);
      s_breaker = breaker;
      s_budget = poll_budget;
      s_bus = Bus.create ?window:dedup_window ~metrics ();
      s_metrics = metrics;
      s_obs =
        {
          fo_reg = metrics;
          fo_rounds = Metrics.counter metrics "xcw_fleet_rounds_total";
          fo_parks = Metrics.counter metrics "xcw_fleet_parks_total";
          fo_round_seconds =
            Metrics.histogram metrics "xcw_fleet_round_seconds";
          fo_lag = Metrics.gauge metrics "xcw_fleet_lag";
          fo_parked = Metrics.gauge metrics "xcw_fleet_parked";
        };
      s_rounds = 0;
      s_store = Option.map fst store_state;
      s_crash = crash;
      s_snapshot_every = snapshot_every;
      s_replay = [];
    }
  in
  (match store_state with
  | None -> ()
  | Some (_, recovered) -> (
      (* Records are self-contained full states: the newest one (or,
         after a truncation, the snapshot) wins. *)
      let payload =
        match List.rev recovered.Xcw_store.Store.r_records with
        | (_, p) :: _ -> Some p
        | [] -> recovered.Xcw_store.Store.r_snapshot
      in
      match payload with None -> () | Some p -> apply_fleet t p));
  t

(* ------------------------------------------------------------------ *)
(* One fleet round                                                     *)

let park t ln ~round =
  let term = ln.ln_next_term in
  ln.ln_state <- Parked { until = round + term; term };
  ln.ln_next_term <- min (ln.ln_next_term * 2) t.s_breaker.cb_max_term;
  ln.ln_failures <- 0;
  ln.ln_trips <- ln.ln_trips + 1;
  Metrics.Counter.inc t.s_obs.fo_parks

(* A lane poll failed (exception, or unsynced with zero progress while
   its schedule stood still).  Probation failures re-park immediately
   at the doubled term; otherwise the threshold decides. *)
let note_failure t ln ~round ~was_probation =
  ln.ln_failures <- ln.ln_failures + 1;
  if was_probation then park t ln ~round
  else if ln.ln_failures >= t.s_breaker.cb_failure_threshold then
    park t ln ~round
  else ln.ln_state <- Degraded

(* The outcome one lane thunk reports back to the submitter. *)
type poll_outcome =
  | P_ok of Monitor.alert list * Monitor.health * float  (** alerts, health, s *)
  | P_exn of string * float

let pending_of (h : Monitor.health) =
  h.Monitor.h_pending_source + h.Monitor.h_pending_target

let poll t : Bus.fleet_alert list =
  let round = t.s_rounds + 1 in
  t.s_rounds <- round;
  let obs = t.s_obs in
  Metrics.Counter.inc obs.fo_rounds;
  let live = Metrics.enabled obs.fo_reg in
  let t0 = if live then Unix.gettimeofday () else 0. in
  let emitted =
    Span.with_ ~attrs:[ ("round", string_of_int round) ] "fleet.round"
      (fun () ->
        (* Phase 1 (sequential, lane order): decide who runs this round
           and at which clamped cursors; create missing monitors.  A
           schedule or monitor-construction failure is a lane failure,
           never a fleet one. *)
        let participants =
          Array.to_list t.s_lanes
          |> List.filter_map (fun ln ->
                 let was_probation =
                   match ln.ln_state with
                   | Parked { until; _ } when round < until -> false
                   | Parked _ ->
                       ln.ln_state <- Probation;
                       true
                   | _ -> false
                 in
                 match ln.ln_state with
                 | Parked _ -> None
                 | _ -> (
                     match
                       let uts, utt = ln.ln_spec.l_cursors round in
                       ln.ln_target <- (uts, utt);
                       let mon =
                         match ln.ln_monitor with
                         | Some m -> m
                         | None ->
                             let checkpoint =
                               Option.map
                                 (fun dir ->
                                   Monitor.Checkpoint.open_ ?crash:t.s_crash
                                     ~snapshot_every:t.s_snapshot_every ~dir
                                     ())
                                 ln.ln_dir
                             in
                             let m =
                               Monitor.create ~metrics:t.s_metrics ?checkpoint
                                 ln.ln_spec.l_input
                             in
                             (* Capture the replay tail now, while
                                [Monitor.replayed] still holds the
                                recovered crash-boundary alerts — the
                                first new poll overwrites it.
                                Unconditional: even when the
                                supervisor's own store has no durable
                                round (crash before the first round
                                committed), a lane store may already
                                hold durable alerts the bus never saw.
                                The [ln_bus_seq] filter drops anything
                                already merged, so a fresh lane or an
                                up-to-date bus makes this a no-op. *)
                             ln.ln_replay_tail <-
                               List.filter
                                 (fun al -> al.Monitor.al_seq > ln.ln_bus_seq)
                                 (Monitor.replayed m);
                             ln.ln_monitor <- Some m;
                             m
                       in
                       (* Saturating: the default budget is [max_int]
                          and [pos + max_int] wraps negative. *)
                       let clamp pos target =
                         if t.s_budget >= max_int - pos then target
                         else min target (pos + t.s_budget)
                       in
                       (mon, clamp ln.ln_src uts, clamp ln.ln_dst utt)
                     with
                     | mon, ts, tt -> Some (ln, was_probation, mon, ts, tt)
                     | exception e when not (is_crash e) ->
                         ln.ln_last_error <- Some (Printexc.to_string e);
                         ln.ln_exceptions <- ln.ln_exceptions + 1;
                         note_failure t ln ~round ~was_probation;
                         None))
        in
        (* Phase 2 (parallel, submission order = lane order): poll the
           runnable monitors.  Exceptions are captured inside the thunk
           so one lane's blow-up cannot abort the batch. *)
        let thunks =
          List.map
            (fun (_, _, mon, ts, tt) () ->
              let p0 = Unix.gettimeofday () in
              match Monitor.poll mon ~source_block:ts ~target_block:tt with
              | alerts ->
                  P_ok (alerts, Monitor.health mon, Unix.gettimeofday () -. p0)
              | exception e when not (is_crash e) ->
                  P_exn (Printexc.to_string e, Unix.gettimeofday () -. p0))
            participants
        in
        let outcomes =
          match t.s_pool with
          | Some pool -> Pool.run pool thunks
          | None -> List.map (fun f -> f ()) thunks
        in
        (* Phase 3 (sequential, lane order): advance lane state, drive
           the breaker, merge alerts into the bus. *)
        let emitted = ref [] in
        List.iter2
          (fun (ln, was_probation, _, ts, tt) outcome ->
            match outcome with
            | P_exn (msg, dt) ->
                ln.ln_polls <- ln.ln_polls + 1;
                Metrics.Counter.inc ln.ln_obs.lo_polls;
                Metrics.Histogram.observe ln.ln_obs.lo_poll_seconds dt;
                ln.ln_last_error <- Some msg;
                ln.ln_exceptions <- ln.ln_exceptions + 1;
                note_failure t ln ~round ~was_probation
            | P_ok (alerts, h, dt) ->
                let advanced = ts > ln.ln_src || tt > ln.ln_dst in
                ln.ln_polls <- ln.ln_polls + 1;
                Metrics.Counter.inc ln.ln_obs.lo_polls;
                Metrics.Histogram.observe ln.ln_obs.lo_poll_seconds dt;
                ln.ln_src <- ts;
                ln.ln_dst <- tt;
                let pending = pending_of h in
                let progressed =
                  match ln.ln_prev_pending with
                  | Some prev -> pending < prev
                  | None -> true
                in
                ln.ln_prev_pending <- Some pending;
                (match h.Monitor.h_last_error with
                | Some e -> ln.ln_last_error <- Some e
                | None -> ());
                if h.Monitor.h_synced then begin
                  ln.ln_failures <- 0;
                  ln.ln_next_term <- t.s_breaker.cb_base_term;
                  ln.ln_state <- Active
                end
                else if progressed || advanced then begin
                  (* Behind but earning its keep: catch-up after a park,
                     a budget-limited replay, a transient fault being
                     retried down. *)
                  ln.ln_failures <- 0;
                  ln.ln_state <- Degraded
                end
                else note_failure t ln ~round ~was_probation;
                (* After a restart, the lane's monitor may hold durable
                   alerts the bus never saw (the fleet record for their
                   round did not commit): prepend the replay tail above
                   the lane's merged high-water mark.  A re-polled
                   monitor returns [] for an already-processed round —
                   the tail carries those alerts instead, in their
                   original sequence order, so the merged stream is the
                   uninterrupted one. *)
                let tail = ln.ln_replay_tail in
                ln.ln_replay_tail <- [];
                let alerts = tail @ alerts in
                if alerts <> [] then begin
                  ln.ln_alerts_rev <-
                    List.rev_append alerts ln.ln_alerts_rev;
                  ln.ln_alert_count <- ln.ln_alert_count + List.length alerts;
                  Metrics.Counter.add ln.ln_obs.lo_alerts (List.length alerts);
                  List.iter
                    (fun a ->
                      ln.ln_bus_seq <- max ln.ln_bus_seq a.Monitor.al_seq;
                      match
                        Bus.publish t.s_bus ~bridge:ln.ln_spec.l_name ~round a
                      with
                      | `Emitted fa -> emitted := fa :: !emitted
                      | `Collapsed _ -> ())
                    alerts
                end)
          participants outcomes;
        let emitted = List.rev !emitted in
        (* Durability point: the round's full state and emissions hit
           the fleet WAL before the caller sees them. *)
        (match t.s_store with
        | None -> ()
        | Some store ->
            t.s_replay <- emitted;
            let payload = encode_fleet t ~replay:emitted in
            ignore (Xcw_store.Store.append store payload);
            if t.s_snapshot_every > 0 && round mod t.s_snapshot_every = 0
            then Xcw_store.Store.snapshot store payload);
        emitted)
  in
  if live then begin
    Metrics.Histogram.observe obs.fo_round_seconds
      (Unix.gettimeofday () -. t0);
    let lag = ref 0 and parked = ref 0 in
    Array.iter
      (fun ln ->
        let uts, utt = ln.ln_target in
        lag := !lag + max 0 (uts - ln.ln_src) + max 0 (utt - ln.ln_dst);
        (match ln.ln_prev_pending with Some p -> lag := !lag + p | None -> ());
        match ln.ln_state with Parked _ -> incr parked | _ -> ())
      t.s_lanes;
    Metrics.Gauge.set obs.fo_lag (float_of_int !lag);
    Metrics.Gauge.set obs.fo_parked (float_of_int !parked)
  end;
  emitted

let run t ~rounds =
  List.concat (List.init rounds (fun _ -> poll t))

(* ------------------------------------------------------------------ *)

let lane_health ln =
  let mh = Option.map Monitor.health ln.ln_monitor in
  let uts, utt = ln.ln_target in
  let pending =
    match mh with Some h -> pending_of h | None -> 0
  in
  {
    lh_index = ln.ln_index;
    lh_name = ln.ln_spec.l_name;
    lh_state = ln.ln_state;
    lh_polls = ln.ln_polls;
    lh_alerts = ln.ln_alert_count;
    lh_failures = ln.ln_failures;
    lh_trips = ln.ln_trips;
    lh_exceptions = ln.ln_exceptions;
    lh_lag = max 0 (uts - ln.ln_src) + max 0 (utt - ln.ln_dst) + pending;
    lh_monitor = mh;
    lh_last_error = ln.ln_last_error;
  }

let health t =
  let lanes = Array.to_list (Array.map lane_health t.s_lanes) in
  {
    fh_rounds = t.s_rounds;
    fh_parked =
      List.length
        (List.filter
           (fun lh -> match lh.lh_state with Parked _ -> true | _ -> false)
           lanes);
    fh_emitted = Bus.emitted t.s_bus;
    fh_collapsed = Bus.collapsed t.s_bus;
    fh_lag = List.fold_left (fun acc lh -> acc + lh.lh_lag) 0 lanes;
    fh_lanes = lanes;
  }

let rounds t = t.s_rounds
let bus t = t.s_bus
let alerts t = Bus.alerts t.s_bus
let replayed t = t.s_replay

let lane_alerts t i =
  if i < 0 || i >= Array.length t.s_lanes then
    invalid_arg "Supervisor.lane_alerts: index out of range";
  List.rev t.s_lanes.(i).ln_alerts_rev

let lane_monitor t i =
  if i < 0 || i >= Array.length t.s_lanes then
    invalid_arg "Supervisor.lane_monitor: index out of range";
  t.s_lanes.(i).ln_monitor

let lane_count t = Array.length t.s_lanes
