(* Fleet supervisor: N bridge monitors as isolated lanes over a shared
   domain pool, a circuit breaker per lane, one deduplicating bus.

   Determinism contract: lanes are polled in index order each round and
   share no mutable state (each owns its monitor, chains, RPC facades
   and PRNG streams; the symbol table and metrics registry they do
   share are lock-protected and order-insensitive), and the domain pool
   returns results in submission order — so the bus stream, lane
   streams and health trajectory are identical at any [ndomains] and
   across two runs with the same seeds. *)

module Monitor = Xcw_core.Monitor
module Detector = Xcw_core.Detector
module Metrics = Xcw_obs.Metrics
module Span = Xcw_obs.Span
module Pool = Xcw_par.Pool

type lane_spec = {
  l_name : string;
  l_input : Detector.input;
  l_cursors : int -> int * int;
}

type breaker = {
  cb_failure_threshold : int;
  cb_base_term : int;
  cb_max_term : int;
}

let default_breaker =
  { cb_failure_threshold = 3; cb_base_term = 4; cb_max_term = 64 }

type lane_state =
  | Active
  | Degraded
  | Parked of { until : int; term : int }
  | Probation

(* Per-lane instruments, resolved once at creation. *)
type lane_obs = {
  lo_poll_seconds : Metrics.Histogram.t;
  lo_polls : Metrics.Counter.t;
  lo_alerts : Metrics.Counter.t;
}

type lane = {
  ln_index : int;
  ln_spec : lane_spec;
  mutable ln_monitor : Monitor.t option;  (** created on first poll *)
  mutable ln_state : lane_state;
  mutable ln_src : int;  (** achieved (requested) source cursor *)
  mutable ln_dst : int;
  mutable ln_target : int * int;  (** latest unclamped schedule target *)
  mutable ln_failures : int;  (** consecutive failing polls *)
  mutable ln_next_term : int;  (** park term of the next trip *)
  mutable ln_trips : int;
  mutable ln_exceptions : int;
  mutable ln_polls : int;  (** monitor polls executed *)
  mutable ln_prev_pending : int option;  (** pending after the last poll *)
  mutable ln_alerts_rev : Monitor.alert list;  (** raw stream, reversed *)
  mutable ln_alert_count : int;
  mutable ln_last_error : string option;
  ln_obs : lane_obs;
}

type fleet_obs = {
  fo_reg : Metrics.t;
  fo_rounds : Metrics.Counter.t;
  fo_parks : Metrics.Counter.t;
  fo_round_seconds : Metrics.Histogram.t;
  fo_lag : Metrics.Gauge.t;
  fo_parked : Metrics.Gauge.t;
}

type t = {
  s_lanes : lane array;
  s_pool : Pool.t option;  (** [None] = sequential inline *)
  s_breaker : breaker;
  s_budget : int;
  s_bus : Bus.t;
  s_metrics : Metrics.t;
  s_obs : fleet_obs;
  mutable s_rounds : int;
}

type lane_health = {
  lh_index : int;
  lh_name : string;
  lh_state : lane_state;
  lh_polls : int;
  lh_alerts : int;
  lh_failures : int;
  lh_trips : int;
  lh_exceptions : int;
  lh_lag : int;
  lh_monitor : Monitor.health option;
  lh_last_error : string option;
}

type health = {
  fh_rounds : int;
  fh_parked : int;
  fh_emitted : int;
  fh_collapsed : int;
  fh_lag : int;
  fh_lanes : lane_health list;
}

let create ?(ndomains = 1) ?pool ?(breaker = default_breaker)
    ?dedup_window ?(poll_budget = max_int) ?metrics specs =
  if specs = [] then invalid_arg "Supervisor.create: no lanes";
  if ndomains < 1 then invalid_arg "Supervisor.create: ndomains < 1";
  if poll_budget < 1 then invalid_arg "Supervisor.create: poll_budget < 1";
  if breaker.cb_failure_threshold < 1 || breaker.cb_base_term < 1 then
    invalid_arg "Supervisor.create: degenerate breaker";
  let names = List.map (fun s -> s.l_name) specs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Supervisor.create: duplicate lane names";
  let effective =
    match pool with Some p -> Pool.ndomains p | None -> ndomains
  in
  if
    effective > 1
    && List.exists (fun s -> s.l_input.Detector.i_ndomains > 1) specs
  then
    invalid_arg
      "Supervisor.create: fleet-level parallelism over lanes with \
       i_ndomains > 1 would nest domain pools; parallelize one level";
  let metrics = match metrics with Some m -> m | None -> Metrics.default () in
  let lane i spec =
    {
      ln_index = i;
      ln_spec = spec;
      ln_monitor = None;
      ln_state = Active;
      ln_src = 0;
      ln_dst = 0;
      ln_target = (0, 0);
      ln_failures = 0;
      ln_next_term = breaker.cb_base_term;
      ln_trips = 0;
      ln_exceptions = 0;
      ln_polls = 0;
      ln_prev_pending = None;
      ln_alerts_rev = [];
      ln_alert_count = 0;
      ln_last_error = None;
      ln_obs =
        (let labels = [ ("bridge", spec.l_name) ] in
         {
           lo_poll_seconds =
             Metrics.histogram metrics ~labels "xcw_fleet_poll_seconds";
           lo_polls =
             Metrics.counter metrics ~labels "xcw_fleet_lane_polls_total";
           lo_alerts =
             Metrics.counter metrics ~labels "xcw_fleet_lane_alerts_total";
         });
    }
  in
  {
    s_lanes = Array.of_list (List.mapi lane specs);
    s_pool =
      (match pool with
      | Some p -> Some p
      | None -> if ndomains > 1 then Some (Pool.get ~ndomains) else None);
    s_breaker = breaker;
    s_budget = poll_budget;
    s_bus = Bus.create ?window:dedup_window ~metrics ();
    s_metrics = metrics;
    s_obs =
      {
        fo_reg = metrics;
        fo_rounds = Metrics.counter metrics "xcw_fleet_rounds_total";
        fo_parks = Metrics.counter metrics "xcw_fleet_parks_total";
        fo_round_seconds =
          Metrics.histogram metrics "xcw_fleet_round_seconds";
        fo_lag = Metrics.gauge metrics "xcw_fleet_lag";
        fo_parked = Metrics.gauge metrics "xcw_fleet_parked";
      };
    s_rounds = 0;
  }

(* ------------------------------------------------------------------ *)
(* One fleet round                                                     *)

let park t ln ~round =
  let term = ln.ln_next_term in
  ln.ln_state <- Parked { until = round + term; term };
  ln.ln_next_term <- min (ln.ln_next_term * 2) t.s_breaker.cb_max_term;
  ln.ln_failures <- 0;
  ln.ln_trips <- ln.ln_trips + 1;
  Metrics.Counter.inc t.s_obs.fo_parks

(* A lane poll failed (exception, or unsynced with zero progress while
   its schedule stood still).  Probation failures re-park immediately
   at the doubled term; otherwise the threshold decides. *)
let note_failure t ln ~round ~was_probation =
  ln.ln_failures <- ln.ln_failures + 1;
  if was_probation then park t ln ~round
  else if ln.ln_failures >= t.s_breaker.cb_failure_threshold then
    park t ln ~round
  else ln.ln_state <- Degraded

(* The outcome one lane thunk reports back to the submitter. *)
type poll_outcome =
  | P_ok of Monitor.alert list * Monitor.health * float  (** alerts, health, s *)
  | P_exn of string * float

let pending_of (h : Monitor.health) =
  h.Monitor.h_pending_source + h.Monitor.h_pending_target

let poll t : Bus.fleet_alert list =
  let round = t.s_rounds + 1 in
  t.s_rounds <- round;
  let obs = t.s_obs in
  Metrics.Counter.inc obs.fo_rounds;
  let live = Metrics.enabled obs.fo_reg in
  let t0 = if live then Unix.gettimeofday () else 0. in
  let emitted =
    Span.with_ ~attrs:[ ("round", string_of_int round) ] "fleet.round"
      (fun () ->
        (* Phase 1 (sequential, lane order): decide who runs this round
           and at which clamped cursors; create missing monitors.  A
           schedule or monitor-construction failure is a lane failure,
           never a fleet one. *)
        let participants =
          Array.to_list t.s_lanes
          |> List.filter_map (fun ln ->
                 let was_probation =
                   match ln.ln_state with
                   | Parked { until; _ } when round < until -> false
                   | Parked _ ->
                       ln.ln_state <- Probation;
                       true
                   | _ -> false
                 in
                 match ln.ln_state with
                 | Parked _ -> None
                 | _ -> (
                     match
                       let uts, utt = ln.ln_spec.l_cursors round in
                       ln.ln_target <- (uts, utt);
                       let mon =
                         match ln.ln_monitor with
                         | Some m -> m
                         | None ->
                             let m =
                               Monitor.create ~metrics:t.s_metrics
                                 ln.ln_spec.l_input
                             in
                             ln.ln_monitor <- Some m;
                             m
                       in
                       (* Saturating: the default budget is [max_int]
                          and [pos + max_int] wraps negative. *)
                       let clamp pos target =
                         if t.s_budget >= max_int - pos then target
                         else min target (pos + t.s_budget)
                       in
                       (mon, clamp ln.ln_src uts, clamp ln.ln_dst utt)
                     with
                     | mon, ts, tt -> Some (ln, was_probation, mon, ts, tt)
                     | exception e ->
                         ln.ln_last_error <- Some (Printexc.to_string e);
                         ln.ln_exceptions <- ln.ln_exceptions + 1;
                         note_failure t ln ~round ~was_probation;
                         None))
        in
        (* Phase 2 (parallel, submission order = lane order): poll the
           runnable monitors.  Exceptions are captured inside the thunk
           so one lane's blow-up cannot abort the batch. *)
        let thunks =
          List.map
            (fun (_, _, mon, ts, tt) () ->
              let p0 = Unix.gettimeofday () in
              match Monitor.poll mon ~source_block:ts ~target_block:tt with
              | alerts ->
                  P_ok (alerts, Monitor.health mon, Unix.gettimeofday () -. p0)
              | exception e ->
                  P_exn (Printexc.to_string e, Unix.gettimeofday () -. p0))
            participants
        in
        let outcomes =
          match t.s_pool with
          | Some pool -> Pool.run pool thunks
          | None -> List.map (fun f -> f ()) thunks
        in
        (* Phase 3 (sequential, lane order): advance lane state, drive
           the breaker, merge alerts into the bus. *)
        let emitted = ref [] in
        List.iter2
          (fun (ln, was_probation, _, ts, tt) outcome ->
            match outcome with
            | P_exn (msg, dt) ->
                ln.ln_polls <- ln.ln_polls + 1;
                Metrics.Counter.inc ln.ln_obs.lo_polls;
                Metrics.Histogram.observe ln.ln_obs.lo_poll_seconds dt;
                ln.ln_last_error <- Some msg;
                ln.ln_exceptions <- ln.ln_exceptions + 1;
                note_failure t ln ~round ~was_probation
            | P_ok (alerts, h, dt) ->
                let advanced = ts > ln.ln_src || tt > ln.ln_dst in
                ln.ln_polls <- ln.ln_polls + 1;
                Metrics.Counter.inc ln.ln_obs.lo_polls;
                Metrics.Histogram.observe ln.ln_obs.lo_poll_seconds dt;
                ln.ln_src <- ts;
                ln.ln_dst <- tt;
                let pending = pending_of h in
                let progressed =
                  match ln.ln_prev_pending with
                  | Some prev -> pending < prev
                  | None -> true
                in
                ln.ln_prev_pending <- Some pending;
                (match h.Monitor.h_last_error with
                | Some e -> ln.ln_last_error <- Some e
                | None -> ());
                if h.Monitor.h_synced then begin
                  ln.ln_failures <- 0;
                  ln.ln_next_term <- t.s_breaker.cb_base_term;
                  ln.ln_state <- Active
                end
                else if progressed || advanced then begin
                  (* Behind but earning its keep: catch-up after a park,
                     a budget-limited replay, a transient fault being
                     retried down. *)
                  ln.ln_failures <- 0;
                  ln.ln_state <- Degraded
                end
                else note_failure t ln ~round ~was_probation;
                if alerts <> [] then begin
                  ln.ln_alerts_rev <-
                    List.rev_append alerts ln.ln_alerts_rev;
                  ln.ln_alert_count <- ln.ln_alert_count + List.length alerts;
                  Metrics.Counter.add ln.ln_obs.lo_alerts (List.length alerts);
                  List.iter
                    (fun a ->
                      match
                        Bus.publish t.s_bus ~bridge:ln.ln_spec.l_name ~round a
                      with
                      | `Emitted fa -> emitted := fa :: !emitted
                      | `Collapsed _ -> ())
                    alerts
                end)
          participants outcomes;
        List.rev !emitted)
  in
  if live then begin
    Metrics.Histogram.observe obs.fo_round_seconds
      (Unix.gettimeofday () -. t0);
    let lag = ref 0 and parked = ref 0 in
    Array.iter
      (fun ln ->
        let uts, utt = ln.ln_target in
        lag := !lag + max 0 (uts - ln.ln_src) + max 0 (utt - ln.ln_dst);
        (match ln.ln_prev_pending with Some p -> lag := !lag + p | None -> ());
        match ln.ln_state with Parked _ -> incr parked | _ -> ())
      t.s_lanes;
    Metrics.Gauge.set obs.fo_lag (float_of_int !lag);
    Metrics.Gauge.set obs.fo_parked (float_of_int !parked)
  end;
  emitted

let run t ~rounds =
  List.concat (List.init rounds (fun _ -> poll t))

(* ------------------------------------------------------------------ *)

let lane_health ln =
  let mh = Option.map Monitor.health ln.ln_monitor in
  let uts, utt = ln.ln_target in
  let pending =
    match mh with Some h -> pending_of h | None -> 0
  in
  {
    lh_index = ln.ln_index;
    lh_name = ln.ln_spec.l_name;
    lh_state = ln.ln_state;
    lh_polls = ln.ln_polls;
    lh_alerts = ln.ln_alert_count;
    lh_failures = ln.ln_failures;
    lh_trips = ln.ln_trips;
    lh_exceptions = ln.ln_exceptions;
    lh_lag = max 0 (uts - ln.ln_src) + max 0 (utt - ln.ln_dst) + pending;
    lh_monitor = mh;
    lh_last_error = ln.ln_last_error;
  }

let health t =
  let lanes = Array.to_list (Array.map lane_health t.s_lanes) in
  {
    fh_rounds = t.s_rounds;
    fh_parked =
      List.length
        (List.filter
           (fun lh -> match lh.lh_state with Parked _ -> true | _ -> false)
           lanes);
    fh_emitted = Bus.emitted t.s_bus;
    fh_collapsed = Bus.collapsed t.s_bus;
    fh_lag = List.fold_left (fun acc lh -> acc + lh.lh_lag) 0 lanes;
    fh_lanes = lanes;
  }

let rounds t = t.s_rounds
let bus t = t.s_bus
let alerts t = Bus.alerts t.s_bus

let lane_alerts t i =
  if i < 0 || i >= Array.length t.s_lanes then
    invalid_arg "Supervisor.lane_alerts: index out of range";
  List.rev t.s_lanes.(i).ln_alerts_rev

let lane_monitor t i =
  if i < 0 || i >= Array.length t.s_lanes then
    invalid_arg "Supervisor.lane_monitor: index out of range";
  t.s_lanes.(i).ln_monitor

let lane_count t = Array.length t.s_lanes
