(** Lane builders over the workload generators: turn a Ronin / Nomad /
    Generic / attack-pack scenario into a {!Supervisor.lane_spec} with
    a timestamp-interpolated cursor schedule, the way the [xcw fleet]
    CLI and the fleet bench assemble their fleets. *)

module Detector = Xcw_core.Detector
module Decoder = Xcw_core.Decoder
module Report = Xcw_core.Report
module Scenario = Xcw_workload.Scenario
module Generic = Xcw_workload.Generic

type kind =
  | Nomad
  | Ronin
  | Generic_kind of Generic.spec
  | Attack of Report.attack_class
  | Exit  (** benign exit-bridge lane (deposit/seal/sign/claim) *)
  | Exit_attack of Report.acc_class
      (** exit-bridge lane with one injected accounting-violation class *)

val kind_of_string : string -> (kind, string) result
(** Parses [nomad], [ronin], [generic] (the default benign spec),
    [attack-<class>], [exit] and [exit-<class>] slugs. *)

val kind_slug : kind -> string

val build :
  ?scale:float -> ?seed:int -> kind -> Scenario.built * Decoder.plugin * string
(** Build the scenario: [(built, plugin, label)].  [seed] overrides the
    scenario seed ([Generic_kind]'s spec keeps its own volumes but is
    re-seeded); [scale] applies to Nomad/Ronin only. *)

val input_of :
  built:Scenario.built ->
  plugin:Decoder.plugin ->
  label:string ->
  Detector.input
(** {!Detector.default_input} plus the scenario's pre-window cutoff —
    the same input the solo golden fixtures are generated from. *)

val lane_spec :
  ?rounds_to_sync:int ->
  ?name:string ->
  built:Scenario.built ->
  input:Detector.input ->
  unit ->
  Supervisor.lane_spec
(** A lane whose cursor schedule replays the scenario's collection
    window over [rounds_to_sync] fleet rounds (default 8) by timestamp
    interpolation, then holds at the full chain heads — so a fleet run
    of at least [rounds_to_sync + 1] rounds brings a clean lane to the
    exact database the batch detector builds.  [name] defaults to the
    input's label. *)

val lane :
  ?scale:float ->
  ?seed:int ->
  ?rounds_to_sync:int ->
  ?name:string ->
  ?tweak:(Detector.input -> Detector.input) ->
  kind ->
  Supervisor.lane_spec
(** [build] + [input_of] + [lane_spec] in one step; [tweak] edits the
    detector input in between (fault plans, quorum endpoints, RPC
    seeds). *)
