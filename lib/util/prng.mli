(** Deterministic pseudo-random number generation (splitmix64).

    Reproducible across runs and platforms; the workload generators
    rely on this to regenerate identical scenarios from a seed.  Not
    cryptographically secure. *)

type t

val create : int -> t
(** A generator seeded with the given value. *)

val copy : t -> t
(** An independent generator with the same state. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound] must be
    positive. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi)]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
val log_normal : t -> mu:float -> sigma:float -> float
val pareto : t -> x_min:float -> alpha:float -> float

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte random string. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation. *)

val split : t -> t
(** Derive an independent child generator without perturbing the
    parent's stream. *)
