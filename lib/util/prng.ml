(** Deterministic pseudo-random number generation.

    A small splitmix64 generator: reproducible across runs and platforms,
    which the workload generators rely on to regenerate identical
    scenarios.  Not cryptographically secure — used only for synthetic
    data. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] is uniform in [\[0, bound)]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

(** [float t bound] is uniform in [\[0, bound)]. *)
let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [range t lo hi] is uniform in [\[lo, hi)]. *)
let range t lo hi =
  if hi <= lo then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo)

(** Exponentially distributed value with the given [mean]. *)
let exponential t ~mean =
  let u = Stdlib.max 1e-12 (float t 1.0) in
  -.mean *. log u

(** Log-normal distributed value, parameterised by [mu] and [sigma] of the
    underlying normal distribution. *)
let log_normal t ~mu ~sigma =
  (* Box-Muller. *)
  let u1 = Stdlib.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

(** Pareto-distributed value with scale [x_min] and shape [alpha]; heavy
    tailed, used for token-amount distributions. *)
let pareto t ~x_min ~alpha =
  let u = Stdlib.max 1e-12 (float t 1.0) in
  x_min /. (u ** (1.0 /. alpha))

(** [bytes t n] is an [n]-byte random string. *)
let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))

(** [pick t xs] selects a uniform element of the non-empty list [xs]. *)
let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [shuffle t xs] is a uniformly random permutation of [xs]. *)
let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** Derive an independent generator; changing the number of draws made
    from the child does not perturb the parent stream. *)
let split t =
  let seed = next_int64 t in
  { state = Int64.logxor seed 0xD1B54A32D192ED03L }
