(** Descriptive statistics used by the evaluation harness: summary
    metrics (Table 2 of the paper), empirical CDFs (Figure 4),
    histograms (Figure 8) and Pearson correlation (Section 5.2.4). *)

type summary = {
  size : int;
  min : float;
  max : float;
  mean : float;
  median : float;
  std : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty input"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. n

let std xs = sqrt (variance xs)

let sorted xs = List.sort compare xs

(** [percentile p xs] is the [p]-th percentile ([0 <= p <= 100]) using
    linear interpolation between closest ranks. *)
let percentile p xs =
  match sorted xs with
  | [] -> invalid_arg "Stats.percentile: empty input"
  | [ x ] -> x
  | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then a.(lo)
      else
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let median xs = percentile 50.0 xs

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty input"
  | _ ->
      let s = sorted xs in
      {
        size = List.length xs;
        min = List.hd s;
        max = List.nth s (List.length s - 1);
        mean = mean xs;
        median = median xs;
        std = std xs;
      }

(** [cdf xs points] evaluates the empirical CDF of [xs] at each of
    [points], returning [(point, fraction <= point)] pairs. *)
let cdf xs points =
  let s = Array.of_list (sorted xs) in
  let n = Array.length s in
  let count_le x =
    (* binary search for the last index <= x *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if s.(mid) <= x then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  List.map (fun p -> (p, float_of_int (count_le p) /. float_of_int n)) points

(** [fraction_exceeding xs threshold] is the fraction of samples strictly
    above [threshold] (e.g. "6.5% exceeded 10 seconds"). *)
let fraction_exceeding xs threshold =
  match xs with
  | [] -> 0.0
  | _ ->
      let above = List.length (List.filter (fun x -> x > threshold) xs) in
      float_of_int above /. float_of_int (List.length xs)

(** Pearson product-moment correlation coefficient. *)
let pearson xs ys =
  let n = List.length xs in
  if n <> List.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then invalid_arg "Stats.pearson: need at least two samples";
  let mx = mean xs and my = mean ys in
  let num =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let dx = sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.)) 0.0 xs) in
  let dy = sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.)) 0.0 ys) in
  if dx = 0.0 || dy = 0.0 then 0.0 else num /. (dx *. dy)

(** Histogram over logarithmically spaced buckets, as in Figure 8 of the
    paper.  Returns [(bucket_upper_bound, count)] pairs covering
    [\[lo_exp; hi_exp\]] decades. *)
let log_histogram xs ~lo_exp ~hi_exp ~buckets_per_decade =
  if hi_exp <= lo_exp then invalid_arg "Stats.log_histogram: bad range";
  let total = (hi_exp - lo_exp) * buckets_per_decade in
  let counts = Array.make total 0 in
  List.iter
    (fun x ->
      if x > 0.0 then begin
        let pos = (log10 x -. float_of_int lo_exp) *. float_of_int buckets_per_decade in
        let idx = int_of_float (Float.floor pos) in
        let idx = if idx < 0 then 0 else if idx >= total then total - 1 else idx in
        counts.(idx) <- counts.(idx) + 1
      end)
    xs;
  List.init total (fun i ->
      let upper =
        10.0 ** (float_of_int lo_exp +. (float_of_int (i + 1) /. float_of_int buckets_per_decade))
      in
      (upper, counts.(i)))

(** Bucket timestamped observations into fixed-width windows (Figure 1
    uses 6-hour windows).  Returns [(window_start, count)] in order. *)
let time_buckets timestamps ~start ~stop ~width =
  if width <= 0 then invalid_arg "Stats.time_buckets: width must be positive";
  let n = ((stop - start) / width) + 1 in
  let counts = Array.make n 0 in
  List.iter
    (fun ts ->
      if ts >= start && ts <= stop then begin
        let idx = (ts - start) / width in
        counts.(idx) <- counts.(idx) + 1
      end)
    timestamps;
  List.init n (fun i -> (start + (i * width), counts.(i)))
