(** Hexadecimal encoding and decoding of byte strings.

    All encoders produce lowercase hex without a ["0x"] prefix unless the
    [_0x] variant is used.  Decoders accept both cases and an optional
    ["0x"] prefix. *)

let hex_chars = "0123456789abcdef"

let encode (s : string) : string =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) hex_chars.[c lsr 4];
    Bytes.set b ((2 * i) + 1) hex_chars.[c land 0xf]
  done;
  Bytes.unsafe_to_string b

let encode_0x s = "0x" ^ encode s

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Hex.decode: invalid character %C" c)

let strip_0x s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    String.sub s 2 (String.length s - 2)
  else s

let decode (s : string) : string =
  let s = strip_0x s in
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd-length input";
  let b = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set b i (Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  Bytes.unsafe_to_string b

let is_hex_string s =
  let s = strip_0x s in
  String.length s mod 2 = 0
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s
