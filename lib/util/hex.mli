(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** Lowercase hex, no prefix. *)

val encode_0x : string -> string
(** Lowercase hex with a ["0x"] prefix. *)

val decode : string -> string
(** Accepts both cases and an optional ["0x"] prefix.  Raises
    [Invalid_argument] on odd length or non-hex characters. *)

val strip_0x : string -> string
(** Remove a leading ["0x"]/["0X"] if present. *)

val is_hex_string : string -> bool
(** Even-length and all hex digits (after prefix stripping). *)

val nibble : char -> int
(** Value of one hex digit; raises [Invalid_argument] otherwise. *)
