(** A minimal JSON value type, serializer, and parser.

    Used for configuration files and the exported cctx dataset /
    anomaly reports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact serialization with string escaping. *)

val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** [member key obj] looks up a field of an [Obj]; [None] otherwise. *)
