(** A minimal JSON value type, serializer, and parser.

    Used for configuration files and the exported cctx dataset /
    anomaly reports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact serialization with string escaping. *)

val float_string : float -> string
(** Locale-independent, round-trippable float rendering: the shortest
    of %.15g/%.16g/%.17g that [float_of_string]s back to the same bits;
    integral values below 1e15 keep a ".0" suffix so they read as
    floats; non-finite values render as ["null"] (JSON has no
    NaN/infinity). *)

val write_file : path:string -> t -> unit
(** Write the compact serialization plus a trailing newline to [path],
    truncating any existing file. *)

val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** [member key obj] looks up a field of an [Obj]; [None] otherwise. *)
