(** Descriptive statistics used by the evaluation harness: summary
    metrics (Table 2), empirical CDFs (Figure 4), histograms (Figure 8)
    and Pearson correlation (Section 5.2.4 of the paper). *)

type summary = {
  size : int;
  min : float;
  max : float;
  mean : float;
  median : float;
  std : float;
}

val mean : float list -> float
(** Raises [Invalid_argument] on empty input. *)

val variance : float list -> float
(** Population variance; zero for fewer than two samples. *)

val std : float list -> float

val percentile : float -> float list -> float
(** Linear interpolation between closest ranks; raises
    [Invalid_argument] on empty input. *)

val median : float list -> float
val summarize : float list -> summary

val cdf : float list -> float list -> (float * float) list
(** [cdf xs points] evaluates the empirical CDF of [xs] at each point,
    returning [(point, fraction <= point)]. *)

val fraction_exceeding : float list -> float -> float
(** Fraction of samples strictly above the threshold. *)

val pearson : float list -> float list -> float
(** Pearson product-moment correlation; raises [Invalid_argument] on
    mismatched lengths or fewer than two samples. *)

val log_histogram :
  float list ->
  lo_exp:int ->
  hi_exp:int ->
  buckets_per_decade:int ->
  (float * int) list
(** Histogram over logarithmically spaced buckets covering
    [10^lo_exp .. 10^hi_exp]; returns [(bucket_upper_bound, count)].
    Non-positive samples are ignored; out-of-range samples clamp to
    the edge buckets. *)

val time_buckets :
  int list -> start:int -> stop:int -> width:int -> (int * int) list
(** Bucket timestamps into fixed-width windows (Figure 1 uses 6-hour
    windows); returns [(window_start, count)] in order.  Timestamps
    outside [\[start, stop\]] are dropped. *)
