(** A minimal JSON value type and serializer.

    Used to export the labeled cross-chain transaction dataset and
    anomaly reports.  Only writing is needed by the pipeline; a small
    parser is provided for tests and config round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest %g rendering that parses back to the same float.  %.15g is
   enough for most values; fall through to %.17g which is always exact
   for IEEE doubles.  Printf is locale-independent in OCaml (always '.'
   as the decimal separator), unlike C's printf. *)
let float_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> (
        match try_prec 16 with Some s -> s | None -> Printf.sprintf "%.17g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_string f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (String k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

exception Parse_error of string

(* A small recursive-descent parser, sufficient for tests and configs. *)
module Parser = struct
  type state = { src : string; mutable pos : int }

  let error st msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        skip_ws st
    | _ -> ()

  let expect st c =
    match peek st with
    | Some c' when c = c' -> advance st
    | _ -> error st (Printf.sprintf "expected %C" c)

  let parse_literal st lit value =
    if
      st.pos + String.length lit <= String.length st.src
      && String.sub st.src st.pos (String.length lit) = lit
    then begin
      st.pos <- st.pos + String.length lit;
      value
    end
    else error st (Printf.sprintf "expected %s" lit)

  let parse_string_raw st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek st with
      | None -> error st "unterminated string"
      | Some '"' ->
          advance st;
          Buffer.contents buf
      | Some '\\' -> (
          advance st;
          match peek st with
          | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
          | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
          | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
          | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance st; Buffer.add_char buf '/'; loop ()
          | Some 'u' ->
              advance st;
              if st.pos + 4 > String.length st.src then error st "bad \\u escape";
              let hex = String.sub st.src st.pos 4 in
              st.pos <- st.pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              (* Only BMP codepoints below 0x80 are emitted verbatim; others
                 are encoded as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> error st "bad escape")
      | Some c ->
          advance st;
          Buffer.add_char buf c;
          loop ()
    in
    loop ()

  let parse_number st =
    let start = st.pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek st with Some c -> is_num_char c | None -> false) do
      advance st
    done;
    let s = String.sub st.src start (st.pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> error st "bad number")

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | Some 'n' -> parse_literal st "null" Null
    | Some 't' -> parse_literal st "true" (Bool true)
    | Some 'f' -> parse_literal st "false" (Bool false)
    | Some '"' -> String (parse_string_raw st)
    | Some '[' ->
        advance st;
        skip_ws st;
        if peek st = Some ']' then begin
          advance st;
          List []
        end
        else begin
          let items = ref [ parse_value st ] in
          skip_ws st;
          while peek st = Some ',' do
            advance st;
            items := parse_value st :: !items;
            skip_ws st
          done;
          expect st ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance st;
        skip_ws st;
        if peek st = Some '}' then begin
          advance st;
          Obj []
        end
        else begin
          let parse_pair () =
            skip_ws st;
            let k = parse_string_raw st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            (k, v)
          in
          let items = ref [ parse_pair () ] in
          skip_ws st;
          while peek st = Some ',' do
            advance st;
            items := parse_pair () :: !items;
            skip_ws st
          done;
          expect st '}';
          Obj (List.rev !items)
        end
    | Some ('-' | '0' .. '9') -> parse_number st
    | _ -> error st "unexpected character"
end

let of_string s =
  let st = { Parser.src = s; pos = 0 } in
  let v = Parser.parse_value st in
  Parser.skip_ws st;
  if st.Parser.pos <> String.length s then
    raise (Parse_error "trailing garbage");
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let write_file ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
