(* Fixed-size domain pool.  See the interface for the model.

   One batch at a time: [run] publishes a batch record under the mutex,
   bumps a generation counter and broadcasts; workers claim task
   indices from the batch's own atomic cursor, so load-balancing is
   dynamic while the {e results} stay in submission order (each task
   writes only its own slot).  The submitter participates in its own
   batch, then blocks until the mutex-guarded remaining-count hits
   zero — a task that raises is caught into its slot, so the count
   always drains and the exception surfaces in the submitter instead
   of killing a worker.

   The cursor and remaining-count live in the per-batch record, not the
   pool: a worker that woke for batch N but was descheduled before its
   first claim may resume arbitrarily late — with batch-local state the
   worst it can do is find its own (exhausted) cursor empty, never
   steal an index from a successor batch while holding the stale
   closure. *)

module Metrics = Xcw_obs.Metrics

type batch = {
  b_exec : int -> unit;
  b_len : int;
  b_next : int Atomic.t;
  mutable b_remaining : int;  (* guarded by the pool mutex *)
}

type t = {
  p_ndomains : int;
  p_inline : bool;
      (* execute batches on the submitting domain regardless of
         [p_ndomains] — the modeling mode behind [sequential] *)
  p_mu : Mutex.t;
  p_work : Condition.t;
  p_donec : Condition.t;
  mutable p_gen : int;
  mutable p_batch : batch option;
  mutable p_shutdown : bool;
  mutable p_workers : unit Domain.t list;
  (* cumulative stats, guarded by [p_mu] *)
  mutable p_batches : int;
  mutable p_tasks : int;
  mutable p_busy : float;
  mutable p_modeled : float;
  (* interned once at [create]; updated by the submitting domain only *)
  p_m_tasks : Metrics.Counter.t;
  p_m_batch : Metrics.Histogram.t;
}

type stats = {
  st_batches : int;
  st_tasks : int;
  st_busy : float;
  st_modeled_wall : float;
}

let ndomains t = t.p_ndomains

(* Claim-and-run until the batch's cursor is exhausted, then retire the
   executed count in one mutex acquisition. *)
let drain t (b : batch) =
  let did = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i < b.b_len then begin
      b.b_exec i;
      incr did
    end
    else continue_ := false
  done;
  if !did > 0 then begin
    Mutex.lock t.p_mu;
    b.b_remaining <- b.b_remaining - !did;
    if b.b_remaining = 0 then Condition.broadcast t.p_donec;
    Mutex.unlock t.p_mu
  end

let rec worker t seen =
  Mutex.lock t.p_mu;
  while (not t.p_shutdown) && t.p_gen = seen do
    Condition.wait t.p_work t.p_mu
  done;
  if t.p_shutdown then Mutex.unlock t.p_mu
  else begin
    let gen = t.p_gen in
    let b = t.p_batch in
    Mutex.unlock t.p_mu;
    (match b with Some b -> drain t b | None -> ());
    worker t gen
  end

let create_pool ~ndomains ~inline =
  if ndomains < 1 then invalid_arg "Pool.create: ndomains must be >= 1";
  let reg = Metrics.default () in
  let labels = [ ("ndomains", string_of_int ndomains) ] in
  let t =
    {
      p_ndomains = ndomains;
      p_inline = inline;
      p_mu = Mutex.create ();
      p_work = Condition.create ();
      p_donec = Condition.create ();
      p_gen = 0;
      p_batch = None;
      p_shutdown = false;
      p_workers = [];
      p_batches = 0;
      p_tasks = 0;
      p_busy = 0.;
      p_modeled = 0.;
      p_m_tasks = Metrics.counter reg ~labels "xcw_par_tasks_total";
      p_m_batch = Metrics.histogram reg ~labels "xcw_par_batch_tasks";
    }
  in
  if not inline then
    t.p_workers <-
      List.init (ndomains - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let create ~ndomains = create_pool ~ndomains ~inline:false
let sequential ~ndomains = create_pool ~ndomains ~inline:true

(* Greedy least-loaded assignment of the measured task times, in
   submission order — what the dynamic claiming above converges to on a
   machine that actually has [k] free cores. *)
let makespan ~k times =
  let loads = Array.make k 0.0 in
  Array.iter
    (fun d ->
      let mi = ref 0 in
      for j = 1 to k - 1 do
        if loads.(j) < loads.(!mi) then mi := j
      done;
      loads.(!mi) <- loads.(!mi) +. d)
    times;
  Array.fold_left max 0.0 loads

let record t times n =
  let busy = Array.fold_left ( +. ) 0.0 times in
  let modeled = makespan ~k:t.p_ndomains times in
  Mutex.lock t.p_mu;
  t.p_batches <- t.p_batches + 1;
  t.p_tasks <- t.p_tasks + n;
  t.p_busy <- t.p_busy +. busy;
  t.p_modeled <- t.p_modeled +. modeled;
  Mutex.unlock t.p_mu;
  Metrics.Counter.add t.p_m_tasks n;
  Metrics.Histogram.observe t.p_m_batch (float_of_int n)

let run : type a. t -> (unit -> a) list -> a list =
 fun t fs ->
  match fs with
  | [] -> []
  | fs ->
      let tasks = Array.of_list fs in
      let n = Array.length tasks in
      let results : a option array = Array.make n None in
      let errors : exn option array = Array.make n None in
      let times = Array.make n 0.0 in
      let exec i =
        let t0 = Unix.gettimeofday () in
        (try results.(i) <- Some (tasks.(i) ())
         with e -> errors.(i) <- Some e);
        times.(i) <- Unix.gettimeofday () -. t0
      in
      if t.p_ndomains = 1 || t.p_inline then
        for i = 0 to n - 1 do
          exec i
        done
      else begin
        let b =
          { b_exec = exec; b_len = n; b_next = Atomic.make 0; b_remaining = n }
        in
        Mutex.lock t.p_mu;
        if t.p_shutdown then begin
          Mutex.unlock t.p_mu;
          invalid_arg "Pool.run: pool is shut down"
        end;
        t.p_batch <- Some b;
        t.p_gen <- t.p_gen + 1;
        Condition.broadcast t.p_work;
        Mutex.unlock t.p_mu;
        drain t b;
        Mutex.lock t.p_mu;
        while b.b_remaining > 0 do
          Condition.wait t.p_donec t.p_mu
        done;
        t.p_batch <- None;
        Mutex.unlock t.p_mu
      end;
      record t times n;
      Array.iter (function Some e -> raise e | None -> ()) errors;
      List.init n (fun i ->
          match results.(i) with
          | Some v -> v
          | None -> assert false)

let shutdown t =
  Mutex.lock t.p_mu;
  t.p_shutdown <- true;
  Condition.broadcast t.p_work;
  let workers = t.p_workers in
  t.p_workers <- [];
  Mutex.unlock t.p_mu;
  List.iter Domain.join workers

let stats t =
  Mutex.lock t.p_mu;
  let s =
    {
      st_batches = t.p_batches;
      st_tasks = t.p_tasks;
      st_busy = t.p_busy;
      st_modeled_wall = t.p_modeled;
    }
  in
  Mutex.unlock t.p_mu;
  s

let reset_stats t =
  Mutex.lock t.p_mu;
  t.p_batches <- 0;
  t.p_tasks <- 0;
  t.p_busy <- 0.;
  t.p_modeled <- 0.;
  Mutex.unlock t.p_mu

(* Process-wide interned pools, one per worker count. *)
let interned : (int, t) Hashtbl.t = Hashtbl.create 4
let interned_mu = Mutex.create ()

let get ~ndomains =
  Mutex.lock interned_mu;
  let t =
    match Hashtbl.find_opt interned ndomains with
    | Some t -> t
    | None ->
        let t = create ~ndomains in
        Hashtbl.add interned ndomains t;
        t
  in
  Mutex.unlock interned_mu;
  t
