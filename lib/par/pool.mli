(** A small fixed-size domain pool for data-parallel batches.

    A pool owns [ndomains - 1] worker domains (the submitting domain is
    the remaining worker, so [ndomains] tasks really run concurrently)
    that persist across batches — spawning a domain costs far more than
    a stratum evaluation, so consumers create one pool and reuse it.

    [run] submits a batch of independent thunks and returns their
    results {e in submission order}, whatever order the workers finished
    in: callers that merge per-task outputs get a deterministic,
    worker-count-independent merge for free.  A task that raises does
    not kill its worker or deadlock the batch — the exception is
    re-raised in the submitter once the batch has drained, and if
    several tasks raise, the one with the lowest index wins (again
    deterministic).

    [ndomains = 1] is the graceful fallback: no domain is ever spawned
    and [run] degenerates to [List.map (fun f -> f ())] on the calling
    domain, preserving bit-identical sequential behaviour.

    Per-batch task durations feed cumulative {!stats}; on hosts with
    fewer cores than domains the [st_modeled_wall] figure is what an
    unconstrained [ndomains]-core run of the same batches would cost
    (greedy least-loaded assignment of the measured task times). *)

type t

val create : ndomains:int -> t
(** [create ~ndomains] spawns [ndomains - 1] persistent workers.
    Raises [Invalid_argument] if [ndomains < 1]. *)

val ndomains : t -> int

val sequential : ndomains:int -> t
(** A modeling pool: it reports [ndomains] (so consumers partition work
    into [ndomains]-way batches and {!stats} computes the
    [st_modeled_wall] makespan for [ndomains] cores) but never spawns a
    domain — every batch executes inline on the submitter.  On hosts
    with fewer cores than domains this is the honest way to measure
    what a real [ndomains]-core run would cost: per-task times are
    taken with the core to themselves, free of the time-sharing and
    stop-the-world GC noise that pollutes task timings when
    [ndomains] mutator domains contend for one core. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute a batch; results in submission order.  Re-raises the
    lowest-indexed task exception after the whole batch has drained.
    An empty batch returns [[]] immediately without touching the
    workers.  Not reentrant: one batch at a time per pool. *)

val shutdown : t -> unit
(** Join the workers.  Idempotent; a later [run] on a shut-down pool
    with [ndomains > 1] raises [Invalid_argument]. *)

val get : ndomains:int -> t
(** Interned process-wide pools, one per [ndomains], created on first
    use and never shut down — the cheap way for the engine, decoder and
    monitor to share workers instead of each spawning their own. *)

type stats = {
  st_batches : int;  (** batches run (including inline 1-domain ones) *)
  st_tasks : int;  (** total tasks executed *)
  st_busy : float;  (** summed per-task execution time, seconds *)
  st_modeled_wall : float;
      (** what the same batches would cost wall-clock on [ndomains]
          unconstrained cores: per batch, the makespan of assigning the
          measured task times to the least-loaded worker in submission
          order, summed over batches.  Equals [st_busy] when
          [ndomains = 1]. *)
}

val stats : t -> stats
val reset_stats : t -> unit
