(** Bridge contract event declarations.

    These correspond one-to-one to the logical relations of the paper's
    Listing 1:

    - source-chain [TokenDeposited]  -> [sc_token_deposited]
    - target-chain [TokenDeposited]  -> [tc_token_deposited]
    - target-chain [TokenWithdrew]   -> [tc_token_withdrew]
    - source-chain [TokenWithdrew]   -> [sc_token_withdrew]

    Protocols differ in the beneficiary representation: Ronin-style
    bridges use a 20-byte [address], while Nomad-style bridges use a
    32-byte field to accommodate non-EVM destination chains (paper
    Section 5.2.2) — users must left-pad EVM addresses, and mistakes
    are a documented source of lost funds.  Event declarations are
    therefore parameterized on the beneficiary ABI type, which changes
    the event signature and hence [topic0]. *)

module Abi = Xcw_abi.Abi

type beneficiary_repr = B_address | B_bytes32

let beneficiary_type = function
  | B_address -> Abi.Type.Address
  | B_bytes32 -> Abi.Type.bytes32

(** Source chain: emitted by the bridge when tokens are escrowed for a
    cross-chain deposit.
    [TokenDeposited(depositId, beneficiary, dstToken, origToken,
    dstChainId, amount)]. *)
let sc_token_deposited repr =
  Abi.Event.
    {
      name = "TokenDeposited";
      params =
        [
          param ~indexed:true "depositId" Abi.Type.uint256;
          param "beneficiary" (beneficiary_type repr);
          param "dstToken" Abi.Type.Address;
          param "origToken" Abi.Type.Address;
          param "dstChainId" Abi.Type.uint256;
          param "amount" Abi.Type.uint256;
        ];
    }

(** Target chain: emitted by the bridge when the deposit completes and
    tokens are minted/unlocked for the beneficiary.
    [TokenDeposited(depositId, beneficiary, token, amount)]. *)
let tc_token_deposited =
  Abi.Event.
    {
      name = "TokenDeposited";
      params =
        [
          param ~indexed:true "depositId" Abi.Type.uint256;
          param "beneficiary" Abi.Type.Address;
          param "token" Abi.Type.Address;
          param "amount" Abi.Type.uint256;
        ];
    }

(** Target chain: emitted by the bridge when a user requests a
    withdrawal back to the source chain (tokens are burnt or locked
    on the target chain).
    [TokenWithdrew(withdrawalId, beneficiary, origToken, dstToken,
    dstChainId, amount)] where [beneficiary] is the destination account
    on the source chain. *)
let tc_token_withdrew repr =
  Abi.Event.
    {
      name = "TokenWithdrew";
      params =
        [
          param ~indexed:true "withdrawalId" Abi.Type.uint256;
          param "beneficiary" (beneficiary_type repr);
          param "origToken" Abi.Type.Address;
          param "dstToken" Abi.Type.Address;
          param "dstChainId" Abi.Type.uint256;
          param "amount" Abi.Type.uint256;
        ];
    }

(** Source chain: emitted by the bridge when the withdrawal executes
    and tokens are released to the beneficiary.  The beneficiary here
    is always the 20-byte address the contract extracted and paid —
    even bytes32 protocols emit the resolved address on S (which is
    how the paper's rule 7 captures executions whose T-side request
    had an unparseable beneficiary).
    [TokenWithdrew(withdrawalId, beneficiary, token, amount)]. *)
let sc_token_withdrew =
  Abi.Event.
    {
      name = "TokenWithdrew";
      params =
        [
          param ~indexed:true "withdrawalId" Abi.Type.uint256;
          param "beneficiary" Abi.Type.Address;
          param "token" Abi.Type.Address;
          param "amount" Abi.Type.uint256;
        ];
    }

(** Exit-bridge events (PR 10): the proof-carrying pessimistic bridge
    model.  Origin side appends to its deposit exit tree and seals
    per-epoch roots; destination side executes proof-carrying claims
    and records validator root attestations and stake lifecycle
    events.  The contracts deliberately do not verify proofs — the
    watcher does, which is what makes forged-proof and stale-root
    claims observable anomalies rather than reverts. *)

(** Origin chain: a leaf was appended to the deposit exit tree.
    [ExitDeposited(leafIndex, token, amount, destChainId, root)] with
    [root] the deposit-tree root after the append. *)
let exit_deposited =
  Abi.Event.
    {
      name = "ExitDeposited";
      params =
        [
          param ~indexed:true "leafIndex" Abi.Type.uint256;
          param "token" Abi.Type.Address;
          param "amount" Abi.Type.uint256;
          param "destChainId" Abi.Type.uint256;
          param "root" Abi.Type.bytes32;
        ];
    }

(** Origin chain: the deposit tree root was sealed for an epoch.
    [ExitRootSealed(epoch, root)]. *)
let exit_root_sealed =
  Abi.Event.
    {
      name = "ExitRootSealed";
      params =
        [
          param ~indexed:true "epoch" Abi.Type.uint256;
          param "root" Abi.Type.bytes32;
        ];
    }

(** Destination chain: a claim against an origin deposit-tree root was
    executed.  [ExitClaimed(leafIndex, token, amount, originChainId,
    root, seq, proof)]: [root] is the root the claimer presented,
    [seq] the destination-side monotone sequence number, [proof] the
    concatenated 32-byte sibling digests of the inclusion proof. *)
let exit_claimed =
  Abi.Event.
    {
      name = "ExitClaimed";
      params =
        [
          param ~indexed:true "leafIndex" Abi.Type.uint256;
          param "token" Abi.Type.Address;
          param "amount" Abi.Type.uint256;
          param "originChainId" Abi.Type.uint256;
          param "root" Abi.Type.bytes32;
          param "seq" Abi.Type.uint256;
          param "proof" Abi.Type.Bytes;
        ];
    }

(** Destination chain: a validator attested to an origin epoch root.
    [ExitRootSigned(originChainId, epoch, root, validator, seq)] with
    [seq] drawn from the same destination-side sequence as claims. *)
let exit_root_signed =
  Abi.Event.
    {
      name = "ExitRootSigned";
      params =
        [
          param ~indexed:true "originChainId" Abi.Type.uint256;
          param "epoch" Abi.Type.uint256;
          param "root" Abi.Type.bytes32;
          param "validator" Abi.Type.Address;
          param "seq" Abi.Type.uint256;
        ];
    }

(** Destination chain: stake manager lifecycle.
    [StakeEvent(validator, kind, amount, epoch)] with [kind] 0 = bond,
    1 = withdraw, 2 = slash. *)
let exit_stake_event =
  Abi.Event.
    {
      name = "StakeEvent";
      params =
        [
          param ~indexed:true "validator" Abi.Type.Address;
          param "kind" Abi.Type.uint256;
          param "amount" Abi.Type.uint256;
          param "epoch" Abi.Type.uint256;
        ];
    }
