(** Bridge contract event declarations.

    These correspond one-to-one to the logical relations of the paper's
    Listing 1:

    - source-chain [TokenDeposited]  -> [sc_token_deposited]
    - target-chain [TokenDeposited]  -> [tc_token_deposited]
    - target-chain [TokenWithdrew]   -> [tc_token_withdrew]
    - source-chain [TokenWithdrew]   -> [sc_token_withdrew]

    Protocols differ in the beneficiary representation: Ronin-style
    bridges use a 20-byte [address], while Nomad-style bridges use a
    32-byte field to accommodate non-EVM destination chains (paper
    Section 5.2.2) — users must left-pad EVM addresses, and mistakes
    are a documented source of lost funds.  Event declarations are
    therefore parameterized on the beneficiary ABI type, which changes
    the event signature and hence [topic0]. *)

module Abi = Xcw_abi.Abi

type beneficiary_repr = B_address | B_bytes32

let beneficiary_type = function
  | B_address -> Abi.Type.Address
  | B_bytes32 -> Abi.Type.bytes32

(** Source chain: emitted by the bridge when tokens are escrowed for a
    cross-chain deposit.
    [TokenDeposited(depositId, beneficiary, dstToken, origToken,
    dstChainId, amount)]. *)
let sc_token_deposited repr =
  Abi.Event.
    {
      name = "TokenDeposited";
      params =
        [
          param ~indexed:true "depositId" Abi.Type.uint256;
          param "beneficiary" (beneficiary_type repr);
          param "dstToken" Abi.Type.Address;
          param "origToken" Abi.Type.Address;
          param "dstChainId" Abi.Type.uint256;
          param "amount" Abi.Type.uint256;
        ];
    }

(** Target chain: emitted by the bridge when the deposit completes and
    tokens are minted/unlocked for the beneficiary.
    [TokenDeposited(depositId, beneficiary, token, amount)]. *)
let tc_token_deposited =
  Abi.Event.
    {
      name = "TokenDeposited";
      params =
        [
          param ~indexed:true "depositId" Abi.Type.uint256;
          param "beneficiary" Abi.Type.Address;
          param "token" Abi.Type.Address;
          param "amount" Abi.Type.uint256;
        ];
    }

(** Target chain: emitted by the bridge when a user requests a
    withdrawal back to the source chain (tokens are burnt or locked
    on the target chain).
    [TokenWithdrew(withdrawalId, beneficiary, origToken, dstToken,
    dstChainId, amount)] where [beneficiary] is the destination account
    on the source chain. *)
let tc_token_withdrew repr =
  Abi.Event.
    {
      name = "TokenWithdrew";
      params =
        [
          param ~indexed:true "withdrawalId" Abi.Type.uint256;
          param "beneficiary" (beneficiary_type repr);
          param "origToken" Abi.Type.Address;
          param "dstToken" Abi.Type.Address;
          param "dstChainId" Abi.Type.uint256;
          param "amount" Abi.Type.uint256;
        ];
    }

(** Source chain: emitted by the bridge when the withdrawal executes
    and tokens are released to the beneficiary.  The beneficiary here
    is always the 20-byte address the contract extracted and paid —
    even bytes32 protocols emit the resolved address on S (which is
    how the paper's rule 7 captures executions whose T-side request
    had an unparseable beneficiary).
    [TokenWithdrew(withdrawalId, beneficiary, token, amount)]. *)
let sc_token_withdrew =
  Abi.Event.
    {
      name = "TokenWithdrew";
      params =
        [
          param ~indexed:true "withdrawalId" Abi.Type.uint256;
          param "beneficiary" Abi.Type.Address;
          param "token" Abi.Type.Address;
          param "amount" Abi.Type.uint256;
        ];
    }
