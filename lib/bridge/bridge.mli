(** Two-chain cross-chain bridge simulator (paper Section 2.2).

    A source chain S (Ethereum) and target chain T (sidechain)
    connected by bridge contracts, off-chain validators/relayers, a
    token registry with cross-chain mappings, and both escrow models.
    Two acceptance models match the evaluated bridges: {b multisig}
    (Ronin — compromising the validator set enables forged
    withdrawals) and {b optimistic} (Nomad — a fraud-proof window with
    optional enforcement bugs and a breakable proof check).

    Anomaly injection is part of the API: every documented anomaly
    class from the paper's Section 5 maps to a function here, so
    workload generators read like scenario scripts. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain

exception Bridge_error of string

type escrow_model = Lock_unlock | Burn_mint

type acceptance =
  | Multisig of {
      threshold : int;
      validator_count : int;
      mutable compromised_keys : int;
          (** >= threshold lets an attacker forge attestations *)
      mutable enforce_source_finality : bool;
          (** Finding 4: Ronin validators failed to enforce this *)
    }
  | Optimistic of {
      fraud_proof_window : int;  (** seconds; 1800 for Nomad *)
      mutable enforce_window : bool;
          (** Finding 4: Nomad's contract-side enforcement bug *)
      mutable proof_check_broken : bool;
          (** the Nomad bug: any message accepted as proven *)
    }

type token_mapping = {
  m_src_token : Address.t;  (** token contract on S *)
  m_dst_token : Address.t;  (** representation on T *)
}

type side = {
  chain : Chain.t;
  bridge_addr : Address.t;
  weth : Address.t;  (** wrapped native token on this chain *)
  operator : Address.t;  (** protocol operator EOA (deployer, relayer) *)
}

type t = private {
  label : string;
  source : side;
  target : side;
  escrow : escrow_model;
  acceptance : acceptance;
  beneficiary_repr : Events.beneficiary_repr;
  mutable mappings : token_mapping list;
  deposit_ledger : (int, deposit_attestation) Hashtbl.t;
  withdrawal_ledger : (int, attestation) Hashtbl.t;
  mutable executed_withdrawals : int list;
  mutable paused : bool;
  buggy_unmapped_withdrawal : bool;
      (** the Ronin-era bug of Section 5.1.3: withdrawing an unmapped
          token emits the event without moving tokens (otherwise the
          request reverts) *)
}

and attestation = {
  at_withdrawal_id : int;
  at_beneficiary : string;  (** raw bytes: 20 (address) or 32 (bytes32) *)
  at_src_token : Address.t;
  at_amount : U256.t;
  at_observed_ts : int;
}

and deposit_attestation = {
  da_deposit_id : int;
  da_beneficiary : string;
  da_dst_token : Address.t;
  da_amount : U256.t;
  da_observed_ts : int;
}

(** {1 Setup} *)

type setup = {
  s_label : string;
  s_source_chain : Chain.t;
  s_target_chain : Chain.t;
  s_escrow : escrow_model;
  s_acceptance : acceptance;
  s_beneficiary_repr : Events.beneficiary_repr;
  s_buggy_unmapped_withdrawal : bool;
}

val create : setup -> t
(** Deploy the bridge contracts on both chains (plus wrapped-native
    tokens) and wire the off-chain machinery. *)

val register_token_pair :
  t -> name:string -> symbol:string -> decimals:int -> token_mapping
(** Deploy a source token and its bridge-minted target representation,
    and register the mapping.  Under burn-mint the bridge owns the
    source token too. *)

val register_native_mapping : t -> token_mapping
(** Map S's wrapped native token (enables native deposits). *)

val register_target_native_mapping :
  ?liquidity:U256.t -> t -> name:string -> symbol:string -> token_mapping
(** Map T's wrapped native token to a fresh ERC-20 on S (enables native
    withdrawals); [liquidity] seeds the S-side escrow. *)

val register_raw_mapping :
  t -> src_token:Address.t -> dst_token:Address.t -> token_mapping
(** Register an arbitrary (possibly duplicate or fake) mapping, as the
    Nomad operator did for WRAPPED GLMR (Finding 6). *)

val pause : t -> unit
val unpause : t -> unit

(** {1 User flows} *)

type deposit_outcome = {
  d_receipt : Types.receipt;
  d_deposit_id : int option;  (** [None] if the transaction reverted *)
  d_amount : U256.t;
  d_src_token : Address.t;
  d_beneficiary : string;
  d_timestamp : int;
}

val deposit_erc20 :
  ?beneficiary_padding:[ `Left | `Right | `Garbage of string ] ->
  t ->
  user:Address.t ->
  src_token:Address.t ->
  amount:U256.t ->
  beneficiary:Address.t ->
  deposit_outcome
(** Approve + deposit on S.  [beneficiary_padding] injects the
    malformed-beneficiary anomalies of Section 5.2.2 (bytes32 protocols
    only). *)

val deposit_native :
  ?beneficiary_padding:[ `Left | `Right | `Garbage of string ] ->
  t ->
  user:Address.t ->
  amount:U256.t ->
  beneficiary:Address.t ->
  deposit_outcome

val observe_deposit : t -> Types.receipt -> deposit_outcome option
(** Off-chain validator behaviour: record the deposit attestation from
    a receipt's bridge event (how aggregator-routed deposits get
    relayed — validators watch events, not transaction targets). *)

val complete_deposit :
  ?override_delay:int ->
  ?beneficiary_override:Address.t ->
  t ->
  deposit:deposit_outcome ->
  Types.receipt
(** Relayer flow on T.  The honest delay is the source finality
    (multisig) or the fraud-proof window (optimistic);
    [override_delay] forces an earlier relay — refused by honest
    multisig validators, reverted by an enforcing optimistic contract,
    and accepted otherwise (the Finding 4 violations).  Advances T's
    clock as needed. *)

type withdrawal_outcome = {
  w_receipt : Types.receipt;
  w_withdrawal_id : int option;
  w_amount : U256.t;
  w_dst_token : Address.t;
  w_beneficiary : string;
  w_timestamp : int;
}

val request_withdrawal :
  ?beneficiary_padding:[ `Left | `Right | `Garbage of string ] ->
  ?attest:bool ->
  t ->
  user:Address.t ->
  dst_token:Address.t ->
  amount:U256.t ->
  beneficiary:Address.t ->
  withdrawal_outcome
(** Escrow on T and emit the withdrawal event; funds release on S only
    when {!execute_withdrawal} runs there.  [attest:false] suppresses
    the validator attestation. *)

val request_withdrawal_native :
  ?beneficiary_padding:[ `Left | `Right | `Garbage of string ] ->
  ?attest:bool ->
  t ->
  user:Address.t ->
  amount:U256.t ->
  beneficiary:Address.t ->
  withdrawal_outcome
(** Withdraw T's native currency: [tx.value] wraps through the
    wrapped-native contract (the Rule 5 path). *)

val execute_withdrawal :
  ?caller:Address.t -> ?delay:int -> t -> withdrawal:withdrawal_outcome -> Types.receipt
(** Execute on S.  [caller] defaults to the beneficiary — real
    protocols make the user issue this transaction and pay S gas,
    which nearly half the paper's users could not (Finding 7). *)

(** {1 Attack and anomaly injection} *)

val forged_withdrawal :
  ?beneficiary:Address.t ->
  t ->
  attacker:Address.t ->
  src_token:Address.t ->
  amount:U256.t ->
  withdrawal_id:int ->
  Types.receipt
(** Present a claim never requested on T (the Ronin/Nomad attack
    shape); succeeds only when the acceptance model is compromised. *)

val direct_token_transfer_to_bridge :
  t -> user:Address.t -> src_token:Address.t -> amount:U256.t -> Types.receipt
(** ERC-20 transfer straight to the bridge address, bypassing the
    protocol (Finding 2). *)

val admin_mint :
  t -> dst_token:Address.t -> to_:Address.t -> amount:U256.t -> Types.receipt
(** Operator-only direct mint on T — sidechain-native issuance such as
    game rewards, later withdrawn through the bridge. *)

val relay_fake_deposit :
  t ->
  beneficiary:Address.t ->
  dst_token:Address.t ->
  amount:U256.t ->
  deposit_id:int ->
  Types.receipt
(** Operator misbehavior (Finding 6): complete a deposit on T that has
    no counterpart on S. *)

val seed_withdrawal_counter : t -> int -> unit
(** Pre-set the T bridge's withdrawal-id counter: ids below it identify
    requests made before the collection window (Section 5.2.5). *)

val attest_pre_window_withdrawal :
  t ->
  withdrawal_id:int ->
  beneficiary:Address.t ->
  src_token:Address.t ->
  amount:U256.t ->
  observed_ts:int ->
  withdrawal_outcome
(** Manufacture the attestation of a withdrawal requested before the
    collection window (its T-side transaction is absent from the
    captured data); executing it on S produces the paper's pre-window
    false positives. *)

val compromise_validators : t -> keys:int -> unit
(** The Ronin attack gained 5 of 9 keys. *)

val break_proof_check : t -> unit
(** The Nomad upgrade bug: any copy-pasted message verifies. *)

val disable_window_enforcement : t -> unit
(** Disable contract-side fraud-proof-window enforcement (Finding 4). *)

val fraud_proof_window : t -> int option

(** {1 Internals exposed for the aggregator and decoders} *)

val sel_deposit_erc20 : string
val sel_deposit_native : string
val sel_request_withdrawal : string
val pack_beneficiary :
  Events.beneficiary_repr ->
  ?padding:[ `Left | `Right | `Garbage of string ] ->
  Address.t ->
  string
