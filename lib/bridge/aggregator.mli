(** A bridge-aggregator intermediary contract (paper Section 3.2).

    Users frequently reach bridges through intermediary protocols: the
    transaction targets the aggregator, which issues *internal* calls
    to the bridge.  The transaction's [to] is then not the bridge, and
    native value reaches the bridge only through internal calls —
    visible exclusively via [debug_traceTransaction].  Rules 1/2
    deliberately accept this path. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address

val deploy : Bridge.t -> Address.t
(** Deploy an aggregator routing to the given bridge's source side. *)

val deposit_erc20 :
  Bridge.t ->
  aggregator:Address.t ->
  user:Address.t ->
  src_token:Address.t ->
  amount:U256.t ->
  beneficiary:Address.t ->
  Xcw_evm.Types.receipt
(** Approve the aggregator and deposit through it.  Relay with
    [Bridge.observe_deposit] on the resulting receipt. *)

val deposit_native :
  Bridge.t ->
  aggregator:Address.t ->
  user:Address.t ->
  amount:U256.t ->
  beneficiary:Address.t ->
  Xcw_evm.Types.receipt
(** [tx.value] flows to the bridge through an internal call. *)
