(** Two-chain cross-chain bridge simulator.

    Models the full protocol of Section 2.2 of the paper: a source
    chain [S] (Ethereum) and target chain [T] (sidechain) connected by
    bridge contracts, off-chain validators/relayers, a token registry
    with cross-chain mappings, and both escrow models (lock-unlock and
    burn-mint).

    Two acceptance models are provided, matching the evaluated bridges:

    - {b Multisig} (Ronin): a threshold of trusted validators attests
      actions; deposits and withdrawals execute when enough validators
      sign.  Compromising the validator set enables forged withdrawals
      (the March 2022 Ronin attack).
    - {b Optimistic} (Nomad): relayed state is accepted unless
      challenged within a fraud-proof window (30 minutes).  A contract
      bug can make the window unenforced (finality violations) and a
      broken proof check lets any copy-pasted message through (the
      August 2022 Nomad attack).

    Anomaly injection is part of the same API: each documented anomaly
    class from the paper's Section 5 maps to a function here, so the
    workload generators read like scenario scripts. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20
module Weth = Xcw_chain.Weth
module Abi = Xcw_abi.Abi

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type escrow_model = Lock_unlock | Burn_mint

type acceptance =
  | Multisig of {
      threshold : int;
      validator_count : int;
      mutable compromised_keys : int;
          (** >= threshold means an attacker can forge attestations *)
      mutable enforce_source_finality : bool;
          (** Finding 4: Ronin validators failed to enforce the source
              chain's finality period off-chain *)
    }
  | Optimistic of {
      fraud_proof_window : int;  (** seconds, 30 minutes for Nomad *)
      mutable enforce_window : bool;
          (** Finding 4: Nomad's contract-side enforcement issue *)
      mutable proof_check_broken : bool;
          (** the Nomad bug: any message accepted as proven *)
    }

type token_mapping = {
  m_src_token : Address.t;  (** token contract on S *)
  m_dst_token : Address.t;  (** representation on T *)
}

type side = {
  chain : Chain.t;
  bridge_addr : Address.t;
  weth : Address.t;  (** wrapped native token on this chain *)
  operator : Address.t;  (** protocol operator EOA (deployer, relayer) *)
}

(* A withdrawal attestation: validators observed TokenWithdrew on T
   and vouch for its execution on S.  This stands in for multisig
   signatures / proven optimistic messages. *)
type attestation = {
  at_withdrawal_id : int;
  at_beneficiary : string;  (** raw bytes: 20 (address) or 32 (bytes32) *)
  at_src_token : Address.t;
  at_amount : U256.t;
  at_observed_ts : int;  (** timestamp of the event on T *)
}

(* Likewise for deposits: validators observed TokenDeposited on S. *)
type deposit_attestation = {
  da_deposit_id : int;
  da_beneficiary : string;
  da_dst_token : Address.t;
  da_amount : U256.t;
  da_observed_ts : int;
}

type t = {
  label : string;
  source : side;
  target : side;
  escrow : escrow_model;
  acceptance : acceptance;
  beneficiary_repr : Events.beneficiary_repr;
  mutable mappings : token_mapping list;
  (* Off-chain validator state. *)
  deposit_ledger : (int, deposit_attestation) Hashtbl.t;
  withdrawal_ledger : (int, attestation) Hashtbl.t;
  mutable executed_withdrawals : int list;  (** ids executed on S *)
  mutable paused : bool;
  buggy_unmapped_withdrawal : bool;
      (** when true (the Ronin-era bug of Section 5.1.3), requesting a
          withdrawal of an unmapped token emits the TokenWithdrew event
          WITHOUT moving any tokens; when false the request reverts *)
}

exception Bridge_error of string

(* ------------------------------------------------------------------ *)
(* Beneficiary representation helpers                                  *)

(** Encode an EVM address into the protocol's beneficiary field.
    For bytes32 protocols the correct form is LEFT padding; the
    [padding] argument lets workloads inject the user mistakes of paper
    Section 5.2.2. *)
let beneficiary_bytes repr ?(padding = `Left) (addr : Address.t) : string =
  match repr with
  | Events.B_address -> Address.to_bytes addr
  | Events.B_bytes32 -> (
      match padding with
      | `Left -> String.make 12 '\000' ^ Address.to_bytes addr
      | `Right -> Address.to_bytes addr ^ String.make 12 '\000'
      | `Garbage seed ->
          (* An unpadded 32-byte string, as users mistakenly sent. *)
          Xcw_keccak.Keccak.digest ("garbage-beneficiary:" ^ seed))

let beneficiary_value repr (raw : string) : Abi.Value.t =
  match repr with
  | Events.B_address -> Abi.Value.Address raw
  | Events.B_bytes32 -> Abi.Value.Fixed_bytes raw

(** Pack a beneficiary into the bytes32 calldata field used by the
    bridge entry points: the raw representation bytes, left-padded for
    address protocols. *)
let pack_beneficiary repr ?(padding = `Left) (addr : Address.t) : string =
  match repr with
  | Events.B_address -> String.make 12 '\000' ^ Address.to_bytes addr
  | Events.B_bytes32 -> beneficiary_bytes repr ~padding addr

(** What the bridge contract does on-chain: extract the low 20 bytes,
    whatever the padding (the lenient behaviour that loses user funds
    when inputs are right-padded). *)
let contract_extract_address repr (raw : string) : Address.t =
  match repr with
  | Events.B_address -> Address.of_bytes raw
  | Events.B_bytes32 -> Address.of_bytes (String.sub raw 12 20)

(* ------------------------------------------------------------------ *)
(* Contract storage keys                                               *)

let deposit_counter_key = "deposit_counter"
let withdrawal_counter_key = "withdrawal_counter"

(* ------------------------------------------------------------------ *)
(* Source-chain bridge contract                                        *)

(* Calldata layout for the source bridge (selectors chosen to mirror
   real bridge ABIs). *)
let sel_deposit_erc20 = Abi.selector "depositERC20(address,uint256,bytes32,uint256)"
let sel_deposit_native = Abi.selector "depositEthFor(bytes32,uint256)"
let sel_withdraw = Abi.selector "withdrawERC20For(uint256,bytes32,address,uint256)"

(* The source bridge needs the full bridge handle (registry,
   attestations), so its dispatch closure is created after [t];
   we use a forward reference cell. *)

let mapping_for_src t token =
  List.find_opt (fun m -> Address.equal m.m_src_token token) t.mappings

let mapping_for_dst t token =
  List.find_opt (fun m -> Address.equal m.m_dst_token token) t.mappings

let next_counter env key =
  let v = env.Chain.sload key in
  let id = U256.to_int v in
  env.Chain.sstore key (U256.add v U256.one);
  id

(* Withdrawal acceptance on S: is this claim backed by attestations /
   a valid proof?  Encodes the per-protocol attack surface. *)
let withdrawal_claim_accepted t ~withdrawal_id ~beneficiary ~src_token ~amount =
  let matches (a : attestation) =
    a.at_withdrawal_id = withdrawal_id
    && String.equal a.at_beneficiary beneficiary
    && Address.equal a.at_src_token src_token
    && U256.equal a.at_amount amount
  in
  let legit =
    match Hashtbl.find_opt t.withdrawal_ledger withdrawal_id with
    | Some a -> matches a
    | None -> false
  in
  match t.acceptance with
  | Multisig m ->
      (* A compromised quorum signs anything. *)
      legit || m.compromised_keys >= m.threshold
  | Optimistic o ->
      (* The Nomad bug: a zero hash was marked proven, so any message
         "verifies".  Attackers replayed existing calldata with their
         own beneficiary. *)
      legit || o.proof_check_broken

let source_bridge_dispatch t (env : Chain.env) : unit =
  if t.paused then raise (Chain.Revert "bridge: paused");
  let input = env.Chain.input in
  if String.length input < 4 then begin
    (* Plain value transfer to the bridge address: funds are absorbed
       with no event — the user-loss anomaly of Finding 2. *)
    if U256.is_zero env.Chain.value then
      raise (Chain.Revert "bridge: empty call")
  end
  else begin
    let sel = String.sub input 0 4 in
    let args types = Erc20.decode_args types input in
    if sel = sel_deposit_erc20 then begin
      match
        args [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.bytes32; Abi.Type.uint256 ]
      with
      | [ Abi.Value.Address token; Abi.Value.Uint amount;
          Abi.Value.Fixed_bytes beneficiary_raw; Abi.Value.Uint dst_chain ] ->
          let mapping =
            match mapping_for_src t token with
            | Some m -> m
            | None -> raise (Chain.Revert "bridge: unmapped token")
          in
          let beneficiary =
            match t.beneficiary_repr with
            | Events.B_address -> String.sub beneficiary_raw 12 20
            | Events.B_bytes32 -> beneficiary_raw
          in
          (* Escrow: pull tokens from the sender (lock) or burn them. *)
          (match t.escrow with
          | Lock_unlock ->
              env.Chain.call token
                (Erc20.transfer_from_calldata ~from_:env.Chain.sender
                   ~to_:env.Chain.self ~amount)
          | Burn_mint ->
              env.Chain.call token
                (Erc20.transfer_from_calldata ~from_:env.Chain.sender
                   ~to_:env.Chain.self ~amount);
              env.Chain.call token
                (Erc20.burn_from_calldata ~from_:env.Chain.self ~amount));
          let deposit_id = next_counter env deposit_counter_key in
          env.Chain.emit (Events.sc_token_deposited t.beneficiary_repr)
            [
              Abi.Value.uint_of_int deposit_id;
              beneficiary_value t.beneficiary_repr beneficiary;
              Abi.Value.Address mapping.m_dst_token;
              Abi.Value.Address token;
              Abi.Value.Uint dst_chain;
              Abi.Value.Uint amount;
            ]
      | _ -> raise (Chain.Revert "bridge: bad depositERC20 args")
    end
    else if sel = sel_deposit_native then begin
      match args [ Abi.Type.bytes32; Abi.Type.uint256 ] with
      | [ Abi.Value.Fixed_bytes beneficiary_raw; Abi.Value.Uint dst_chain ] ->
          let weth = t.source.weth in
          let mapping =
            match mapping_for_src t weth with
            | Some m -> m
            | None -> raise (Chain.Revert "bridge: native token unmapped")
          in
          let beneficiary =
            match t.beneficiary_repr with
            | Events.B_address -> String.sub beneficiary_raw 12 20
            | Events.B_bytes32 -> beneficiary_raw
          in
          let amount = env.Chain.value in
          if U256.is_zero amount then raise (Chain.Revert "bridge: zero value");
          (* Wrap the received native value; WETH emits Deposit(bridge, amount). *)
          env.Chain.call ~value:amount weth Weth.deposit_calldata;
          let deposit_id = next_counter env deposit_counter_key in
          env.Chain.emit (Events.sc_token_deposited t.beneficiary_repr)
            [
              Abi.Value.uint_of_int deposit_id;
              beneficiary_value t.beneficiary_repr beneficiary;
              Abi.Value.Address mapping.m_dst_token;
              Abi.Value.Address weth;
              Abi.Value.Uint dst_chain;
              Abi.Value.Uint amount;
            ]
      | _ -> raise (Chain.Revert "bridge: bad depositEthFor args")
    end
    else if sel = sel_withdraw then begin
      match
        args [ Abi.Type.uint256; Abi.Type.bytes32; Abi.Type.Address; Abi.Type.uint256 ]
      with
      | [ Abi.Value.Uint wid; Abi.Value.Fixed_bytes beneficiary_packed;
          Abi.Value.Address token; Abi.Value.Uint amount ] ->
          let withdrawal_id = U256.to_int wid in
          let beneficiary_raw =
            match t.beneficiary_repr with
            | Events.B_address -> String.sub beneficiary_packed 12 20
            | Events.B_bytes32 -> beneficiary_packed
          in
          if
            not
              (withdrawal_claim_accepted t ~withdrawal_id
                 ~beneficiary:beneficiary_raw ~src_token:token ~amount)
          then raise (Chain.Revert "bridge: withdrawal not attested");
          (* Release funds on S to the (contract-extracted) address. *)
          let recipient = contract_extract_address t.beneficiary_repr beneficiary_raw in
          (match t.escrow with
          | Lock_unlock ->
              env.Chain.call token
                (Erc20.transfer_calldata ~to_:recipient ~amount)
          | Burn_mint ->
              env.Chain.call token (Erc20.mint_calldata ~to_:recipient ~amount));
          t.executed_withdrawals <- withdrawal_id :: t.executed_withdrawals;
          env.Chain.emit Events.sc_token_withdrew
            [
              Abi.Value.uint_of_int withdrawal_id;
              Abi.Value.Address recipient;
              Abi.Value.Address token;
              Abi.Value.Uint amount;
            ]
      | _ -> raise (Chain.Revert "bridge: bad withdraw args")
    end
    else raise (Chain.Revert "bridge: unknown selector")
  end

(* ------------------------------------------------------------------ *)
(* Target-chain bridge contract                                        *)

let sel_complete_deposit = Abi.selector "completeDeposit(uint256,address,address,uint256,uint256)"
let sel_request_withdrawal = Abi.selector "requestWithdrawal(address,uint256,bytes32)"
let sel_request_withdrawal_native = Abi.selector "requestWithdrawalNative(bytes32)"
let sel_admin_mint = Abi.selector "adminMint(address,address,uint256)"

let target_bridge_dispatch t (env : Chain.env) : unit =
  if t.paused then raise (Chain.Revert "bridge: paused");
  let input = env.Chain.input in
  if String.length input < 4 then raise (Chain.Revert "bridge: empty call");
  let sel = String.sub input 0 4 in
  let args types = Erc20.decode_args types input in
  if sel = sel_complete_deposit then begin
    (* Called by the relayer; [src_ts] is the attested timestamp of the
       source event (carried in the relayed message). *)
    if not (Address.equal env.Chain.sender t.target.operator) then
      raise (Chain.Revert "bridge: relayer only");
    match
      args
        [ Abi.Type.uint256; Abi.Type.Address; Abi.Type.Address;
          Abi.Type.uint256; Abi.Type.uint256 ]
    with
    | [ Abi.Value.Uint did; Abi.Value.Address beneficiary;
        Abi.Value.Address token; Abi.Value.Uint amount; Abi.Value.Uint src_ts ] ->
        (match t.acceptance with
        | Optimistic o when o.enforce_window ->
            if env.Chain.block_timestamp < U256.to_int src_ts + o.fraud_proof_window
            then raise (Chain.Revert "bridge: fraud-proof window not elapsed")
        | _ -> ());
        (* Mint or unlock the destination token. *)
        (match t.escrow with
        | Lock_unlock | Burn_mint ->
            (* Destination representations are bridge-minted tokens. *)
            env.Chain.call token (Erc20.mint_calldata ~to_:beneficiary ~amount));
        let deposit_id = U256.to_int did in
        env.Chain.emit Events.tc_token_deposited
          [
            Abi.Value.uint_of_int deposit_id;
            Abi.Value.Address beneficiary;
            Abi.Value.Address token;
            Abi.Value.Uint amount;
          ]
    | _ -> raise (Chain.Revert "bridge: bad completeDeposit args")
  end
  else if sel = sel_request_withdrawal then begin
    match args [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.bytes32 ] with
    | [ Abi.Value.Address token; Abi.Value.Uint amount;
        Abi.Value.Fixed_bytes beneficiary_packed ] ->
        let beneficiary_raw =
          match t.beneficiary_repr with
          | Events.B_address -> String.sub beneficiary_packed 12 20
          | Events.B_bytes32 -> beneficiary_packed
        in
        let mapping = mapping_for_dst t token in
        (* Escrow on T: burn the sidechain representation.  A real
           Ronin-era bug: withdrawing an unmapped token emitted the
           Withdraw event WITHOUT moving tokens (Section 5.1.3). *)
        (match mapping with
        | Some _ ->
            env.Chain.call token
              (Erc20.transfer_from_calldata ~from_:env.Chain.sender
                 ~to_:env.Chain.self ~amount);
            env.Chain.call token
              (Erc20.burn_from_calldata ~from_:env.Chain.self ~amount)
        | None ->
            if not t.buggy_unmapped_withdrawal then
              raise (Chain.Revert "bridge: unmapped token")
            (* otherwise: event emitted below with no token movement *));
        let src_token =
          match mapping with
          | Some m -> m.m_src_token
          | None -> Address.zero
        in
        let withdrawal_id = next_counter env withdrawal_counter_key in
        env.Chain.emit (Events.tc_token_withdrew t.beneficiary_repr)
          [
            Abi.Value.uint_of_int withdrawal_id;
            beneficiary_value t.beneficiary_repr beneficiary_raw;
            Abi.Value.Address src_token;
            Abi.Value.Address token;
            Abi.Value.Uint (U256.of_int t.source.chain.Chain.chain_id);
            Abi.Value.Uint amount;
          ]
    | _ -> raise (Chain.Revert "bridge: bad requestWithdrawal args")
  end
  else if sel = sel_request_withdrawal_native then begin
    (* Withdraw the target chain's native currency back to S: the
       value sent with the transaction is wrapped (the wrapped-native
       contract emits its Deposit event, decoded as [native_withdrawal]
       by XChainWatcher) and the bridge emits TokenWithdrew. *)
    match args [ Abi.Type.bytes32 ] with
    | [ Abi.Value.Fixed_bytes beneficiary_packed ] ->
        let beneficiary_raw =
          match t.beneficiary_repr with
          | Events.B_address -> String.sub beneficiary_packed 12 20
          | Events.B_bytes32 -> beneficiary_packed
        in
        let amount = env.Chain.value in
        if U256.is_zero amount then raise (Chain.Revert "bridge: zero value");
        let wnative = t.target.weth in
        let mapping =
          match mapping_for_dst t wnative with
          | Some m -> m
          | None -> raise (Chain.Revert "bridge: native token unmapped")
        in
        env.Chain.call ~value:amount wnative Weth.deposit_calldata;
        let withdrawal_id = next_counter env withdrawal_counter_key in
        env.Chain.emit (Events.tc_token_withdrew t.beneficiary_repr)
          [
            Abi.Value.uint_of_int withdrawal_id;
            beneficiary_value t.beneficiary_repr beneficiary_raw;
            Abi.Value.Address mapping.m_src_token;
            Abi.Value.Address wnative;
            Abi.Value.Uint (U256.of_int t.source.chain.Chain.chain_id);
            Abi.Value.Uint amount;
          ]
    | _ -> raise (Chain.Revert "bridge: bad requestWithdrawalNative args")
  end
  else if sel = sel_admin_mint then begin
    (* Operator-only direct mint of a bridged token on T, standing in
       for sidechain-native token issuance (e.g. play-to-earn rewards
       minted on Ronin).  No bridge event: this is not a cross-chain
       transfer. *)
    if not (Address.equal env.Chain.sender t.target.operator) then
      raise (Chain.Revert "bridge: operator only");
    match args [ Abi.Type.Address; Abi.Type.Address; Abi.Type.uint256 ] with
    | [ Abi.Value.Address token; Abi.Value.Address to_; Abi.Value.Uint amount ] ->
        env.Chain.call token (Erc20.mint_calldata ~to_ ~amount)
    | _ -> raise (Chain.Revert "bridge: bad adminMint args")
  end
  else raise (Chain.Revert "bridge: unknown selector")

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)

type setup = {
  s_label : string;
  s_source_chain : Chain.t;
  s_target_chain : Chain.t;
  s_escrow : escrow_model;
  s_acceptance : acceptance;
  s_beneficiary_repr : Events.beneficiary_repr;
  s_buggy_unmapped_withdrawal : bool;
}

(** Deploy the bridge contracts on both chains and wire the off-chain
    machinery.  The wrapped-native tokens are deployed too and mapped
    across the bridge. *)
let create (setup : setup) : t =
  let src_operator = Address.of_seed (setup.s_label ^ ":operator:source") in
  let dst_operator = Address.of_seed (setup.s_label ^ ":operator:target") in
  Chain.fund setup.s_source_chain src_operator (U256.of_tokens ~decimals:18 1_000);
  Chain.fund setup.s_target_chain dst_operator (U256.of_tokens ~decimals:18 1_000);
  let src_weth =
    Weth.deploy setup.s_source_chain ~from_:src_operator ~name:"Wrapped Ether"
      ~symbol:"WETH"
  in
  let dst_weth =
    Weth.deploy setup.s_target_chain ~from_:dst_operator
      ~name:"Wrapped Native" ~symbol:"WNATIVE"
  in
  (* Forward-reference the bridge handle into contract closures. *)
  let handle = ref None in
  let get () = Option.get !handle in
  let sc_bridge =
    Chain.deploy setup.s_source_chain ~from_:src_operator
      ~label:(setup.s_label ^ ":bridge:source")
      (fun env -> source_bridge_dispatch (get ()) env)
  in
  let tc_bridge =
    Chain.deploy setup.s_target_chain ~from_:dst_operator
      ~label:(setup.s_label ^ ":bridge:target")
      (fun env -> target_bridge_dispatch (get ()) env)
  in
  let t =
    {
      label = setup.s_label;
      source =
        {
          chain = setup.s_source_chain;
          bridge_addr = sc_bridge;
          weth = src_weth;
          operator = src_operator;
        };
      target =
        {
          chain = setup.s_target_chain;
          bridge_addr = tc_bridge;
          weth = dst_weth;
          operator = dst_operator;
        };
      escrow = setup.s_escrow;
      acceptance = setup.s_acceptance;
      beneficiary_repr = setup.s_beneficiary_repr;
      mappings = [];
      deposit_ledger = Hashtbl.create 256;
      withdrawal_ledger = Hashtbl.create 256;
      executed_withdrawals = [];
      paused = false;
      buggy_unmapped_withdrawal = setup.s_buggy_unmapped_withdrawal;
    }
  in
  handle := Some t;
  t

(** Deploy a token pair (source original + bridge-minted destination
    representation) and register the mapping.  The destination token is
    owned by the target bridge so it can mint and burn. *)
let register_token_pair t ~name ~symbol ~decimals : token_mapping =
  (* Under burn-mint the bridge must be able to burn escrowed tokens on
     S (and mint them back on withdrawal), so it owns the token;
     lock-unlock tokens are ordinary third-party ERC-20s. *)
  let src_owner =
    match t.escrow with
    | Lock_unlock -> t.source.operator
    | Burn_mint -> t.source.bridge_addr
  in
  let src_token =
    Erc20.deploy t.source.chain ~from_:t.source.operator ~name ~symbol
      ~decimals ~owner:src_owner
  in
  let dst_token =
    Erc20.deploy t.target.chain ~from_:t.target.operator
      ~name:("Bridged " ^ name) ~symbol ~decimals ~owner:t.target.bridge_addr
  in
  let m = { m_src_token = src_token; m_dst_token = dst_token } in
  t.mappings <- m :: t.mappings;
  m

(** Map the source chain's wrapped native token (enables native
    deposits). *)
let register_native_mapping t : token_mapping =
  let dst_token =
    Erc20.deploy t.target.chain ~from_:t.target.operator ~name:"Bridged Ether"
      ~symbol:"WETH" ~decimals:18 ~owner:t.target.bridge_addr
  in
  let m = { m_src_token = t.source.weth; m_dst_token = dst_token } in
  t.mappings <- m :: t.mappings;
  m

(** Register an arbitrary (possibly duplicate or fake) mapping, as the
    Nomad operator did for WRAPPED GLMR (Finding 6). *)
let register_raw_mapping t ~src_token ~dst_token : token_mapping =
  let m = { m_src_token = src_token; m_dst_token = dst_token } in
  t.mappings <- m :: t.mappings;
  m

(** Map the target chain's wrapped native token to an ERC-20
    representation on S (e.g. GLMR on Moonbeam <-> WGLMR on Ethereum),
    enabling native withdrawals from T.  [liquidity] seeds the S-side
    bridge so lock-unlock releases have funds to transfer. *)
let register_target_native_mapping ?(liquidity = U256.of_tokens ~decimals:18 1_000_000)
    t ~name ~symbol : token_mapping =
  let src_token =
    Erc20.deploy t.source.chain ~from_:t.source.operator ~name ~symbol
      ~decimals:18 ~owner:t.source.operator
  in
  ignore
    (Chain.submit_tx t.source.chain ~from_:t.source.operator ~to_:src_token
       ~input:(Erc20.mint_calldata ~to_:t.source.bridge_addr ~amount:liquidity)
       ());
  let m = { m_src_token = src_token; m_dst_token = t.target.weth } in
  t.mappings <- m :: t.mappings;
  m

let pause t = t.paused <- true
let unpause t = t.paused <- false

(* ------------------------------------------------------------------ *)
(* User flows                                                          *)

type deposit_outcome = {
  d_receipt : Types.receipt;
  d_deposit_id : int option;  (** [None] if the transaction reverted *)
  d_amount : U256.t;
  d_src_token : Address.t;
  d_beneficiary : string;
  d_timestamp : int;
}

(** Off-chain validator behaviour: observe a source-chain receipt, and
    if it contains a [TokenDeposited] bridge event, record the deposit
    attestation that later authorizes [completeDeposit] on T.  Returns
    the decoded outcome.  This is how deposits made through
    intermediary contracts (aggregators) also get relayed: validators
    watch events, not transaction targets. *)
let observe_deposit t (r : Types.receipt) : deposit_outcome option =
  let ev = Events.sc_token_deposited t.beneficiary_repr in
  let topic0 = Abi.Event.topic0 ev in
  List.find_map
    (fun (l : Types.log) ->
      if
        (not (Address.equal l.Types.log_address t.source.bridge_addr))
        || l.Types.topics = [] || List.hd l.Types.topics <> topic0
      then None
      else
        match Abi.Event.decode_log ev l.Types.topics l.Types.data with
        | [ ("depositId", Abi.Value.Uint id); ("beneficiary", ben);
            ("dstToken", Abi.Value.Address dst_token);
            ("origToken", Abi.Value.Address orig_token);
            ("dstChainId", _); ("amount", Abi.Value.Uint amount) ] ->
            let id = U256.to_int id in
            let beneficiary_raw =
              match ben with
              | Abi.Value.Address a -> Address.to_bytes a
              | Abi.Value.Fixed_bytes b -> b
              | _ -> raise (Bridge_error "unexpected beneficiary value")
            in
            Hashtbl.replace t.deposit_ledger id
              {
                da_deposit_id = id;
                da_beneficiary = beneficiary_raw;
                da_dst_token = dst_token;
                da_amount = amount;
                da_observed_ts = r.Types.r_block_timestamp;
              };
            Some
              {
                d_receipt = r;
                d_deposit_id = Some id;
                d_amount = amount;
                d_src_token = orig_token;
                d_beneficiary = beneficiary_raw;
                d_timestamp = r.Types.r_block_timestamp;
              }
        | _ -> None)
    r.Types.r_logs

(** User flow: deposit ERC-20 tokens on S for [beneficiary] on T.
    Handles the approve + deposit sequence.  [beneficiary_padding]
    allows injecting the malformed-beneficiary anomalies. *)
let deposit_erc20 ?(beneficiary_padding = `Left) t ~user ~src_token ~amount
    ~beneficiary : deposit_outcome =
  ignore
    (Chain.submit_tx t.source.chain ~from_:user ~to_:src_token
       ~input:(Erc20.approve_calldata ~spender:t.source.bridge_addr ~amount)
       ());
  let packed =
    pack_beneficiary t.beneficiary_repr ~padding:beneficiary_padding beneficiary
  in
  let input =
    sel_deposit_erc20
    ^ Abi.encode
        [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.bytes32; Abi.Type.uint256 ]
        [
          Abi.Value.Address src_token;
          Abi.Value.Uint amount;
          Abi.Value.Fixed_bytes packed;
          Abi.Value.uint_of_int t.target.chain.Chain.chain_id;
        ]
  in
  let r =
    Chain.submit_tx t.source.chain ~from_:user ~to_:t.source.bridge_addr ~input ()
  in
  match observe_deposit t r with
  | Some outcome -> outcome
  | None ->
      {
        d_receipt = r;
        d_deposit_id = None;
        d_amount = amount;
        d_src_token = src_token;
        d_beneficiary =
          beneficiary_bytes t.beneficiary_repr ~padding:beneficiary_padding
            beneficiary;
        d_timestamp = r.Types.r_block_timestamp;
      }

(** User flow: deposit native currency on S. *)
let deposit_native ?(beneficiary_padding = `Left) t ~user ~amount ~beneficiary
    : deposit_outcome =
  let packed =
    pack_beneficiary t.beneficiary_repr ~padding:beneficiary_padding beneficiary
  in
  let input =
    sel_deposit_native
    ^ Abi.encode
        [ Abi.Type.bytes32; Abi.Type.uint256 ]
        [
          Abi.Value.Fixed_bytes packed;
          Abi.Value.uint_of_int t.target.chain.Chain.chain_id;
        ]
  in
  let r =
    Chain.submit_tx t.source.chain ~from_:user ~to_:t.source.bridge_addr
      ~value:amount ~input ()
  in
  match observe_deposit t r with
  | Some outcome -> outcome
  | None ->
      {
        d_receipt = r;
        d_deposit_id = None;
        d_amount = amount;
        d_src_token = t.source.weth;
        d_beneficiary =
          beneficiary_bytes t.beneficiary_repr ~padding:beneficiary_padding
            beneficiary;
        d_timestamp = r.Types.r_block_timestamp;
      }

(** Relayer flow: complete a deposit on T.  The honest relayer waits
    for the source finality (multisig) or the fraud-proof window
    (optimistic) before calling; [override_delay] forces an earlier
    relay, producing the paper's cross-chain finality violations
    (Finding 4).  The caller must advance the target chain clock;
    this function advances it by the chosen delay relative to the
    deposit timestamp if needed. *)
let complete_deposit ?override_delay ?beneficiary_override t
    ~(deposit : deposit_outcome) : Types.receipt =
  let id =
    match deposit.d_deposit_id with
    | Some id -> id
    | None -> raise (Bridge_error "complete_deposit: deposit reverted")
  in
  let att = Hashtbl.find t.deposit_ledger id in
  let honest_delay =
    match t.acceptance with
    | Multisig _ -> t.source.chain.Chain.finality_seconds
    | Optimistic o -> o.fraud_proof_window
  in
  let delay = Option.value override_delay ~default:honest_delay in
  (* Honest validators refuse to relay before source finality; the
     Ronin violations (Finding 4) require this off-chain check to be
     disabled. *)
  (match t.acceptance with
  | Multisig m
    when m.enforce_source_finality
         && delay < t.source.chain.Chain.finality_seconds ->
      raise (Bridge_error "validators: source finality not reached")
  | _ -> ());
  let target_time = max (Chain.now t.target.chain) (att.da_observed_ts + delay) in
  if target_time > Chain.now t.target.chain then
    Chain.set_time t.target.chain target_time;
  let beneficiary_addr =
    match beneficiary_override with
    | Some a -> a
    | None -> contract_extract_address t.beneficiary_repr att.da_beneficiary
  in
  let input =
    sel_complete_deposit
    ^ Abi.encode
        [ Abi.Type.uint256; Abi.Type.Address; Abi.Type.Address;
          Abi.Type.uint256; Abi.Type.uint256 ]
        [
          Abi.Value.uint_of_int id;
          Abi.Value.Address beneficiary_addr;
          Abi.Value.Address att.da_dst_token;
          Abi.Value.Uint att.da_amount;
          Abi.Value.uint_of_int att.da_observed_ts;
        ]
  in
  Chain.submit_tx t.target.chain ~from_:t.target.operator
    ~to_:t.target.bridge_addr ~input ()

type withdrawal_outcome = {
  w_receipt : Types.receipt;
  w_withdrawal_id : int option;
  w_amount : U256.t;
  w_dst_token : Address.t;
  w_beneficiary : string;
  w_timestamp : int;
}

let decode_withdrawal_id t (r : Types.receipt) =
  let ev = Events.tc_token_withdrew t.beneficiary_repr in
  let topic0 = Abi.Event.topic0 ev in
  List.find_map
    (fun (l : Types.log) ->
      match l.Types.topics with
      | t0 :: _ when t0 = topic0 -> (
          match Abi.Event.decode_log ev l.Types.topics l.Types.data with
          | ("withdrawalId", Abi.Value.Uint id) :: _ -> Some (U256.to_int id)
          | _ -> None)
      | _ -> None)
    r.Types.r_logs

(** User flow: request a withdrawal on T (escrow the sidechain tokens,
    emit the withdrawal event).  The funds are released on S only when
    {!execute_withdrawal} runs there. *)
let request_withdrawal ?(beneficiary_padding = `Left) ?(attest = true) t ~user
    ~dst_token ~amount ~beneficiary : withdrawal_outcome =
  ignore
    (Chain.submit_tx t.target.chain ~from_:user ~to_:dst_token
       ~input:(Erc20.approve_calldata ~spender:t.target.bridge_addr ~amount)
       ());
  let beneficiary_raw =
    beneficiary_bytes t.beneficiary_repr ~padding:beneficiary_padding beneficiary
  in
  let packed =
    match t.beneficiary_repr with
    | Events.B_address -> String.make 12 '\000' ^ Address.to_bytes beneficiary
    | Events.B_bytes32 -> beneficiary_raw
  in
  let input =
    sel_request_withdrawal
    ^ Abi.encode
        [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.bytes32 ]
        [
          Abi.Value.Address dst_token;
          Abi.Value.Uint amount;
          Abi.Value.Fixed_bytes packed;
        ]
  in
  let r =
    Chain.submit_tx t.target.chain ~from_:user ~to_:t.target.bridge_addr ~input ()
  in
  let withdrawal_id = decode_withdrawal_id t r in
  (match withdrawal_id with
  | Some id when attest ->
      let src_token =
        match mapping_for_dst t dst_token with
        | Some m -> m.m_src_token
        | None -> Address.zero
      in
      Hashtbl.replace t.withdrawal_ledger id
        {
          at_withdrawal_id = id;
          at_beneficiary = beneficiary_raw;
          at_src_token = src_token;
          at_amount = amount;
          at_observed_ts = r.Types.r_block_timestamp;
        }
  | _ -> ());
  {
    w_receipt = r;
    w_withdrawal_id = withdrawal_id;
    w_amount = amount;
    w_dst_token = dst_token;
    w_beneficiary = beneficiary_raw;
    w_timestamp = r.Types.r_block_timestamp;
  }

(** User flow: request a withdrawal of the target chain's native
    currency (the [tx.value] path of Rule 5). *)
let request_withdrawal_native ?(beneficiary_padding = `Left) ?(attest = true) t
    ~user ~amount ~beneficiary : withdrawal_outcome =
  let beneficiary_raw =
    beneficiary_bytes t.beneficiary_repr ~padding:beneficiary_padding beneficiary
  in
  let packed =
    match t.beneficiary_repr with
    | Events.B_address -> String.make 12 '\000' ^ Address.to_bytes beneficiary
    | Events.B_bytes32 -> beneficiary_raw
  in
  let input =
    sel_request_withdrawal_native
    ^ Abi.encode [ Abi.Type.bytes32 ] [ Abi.Value.Fixed_bytes packed ]
  in
  let r =
    Chain.submit_tx t.target.chain ~from_:user ~to_:t.target.bridge_addr
      ~value:amount ~input ()
  in
  let withdrawal_id = decode_withdrawal_id t r in
  (match withdrawal_id with
  | Some id when attest ->
      let src_token =
        match mapping_for_dst t t.target.weth with
        | Some m -> m.m_src_token
        | None -> Address.zero
      in
      Hashtbl.replace t.withdrawal_ledger id
        {
          at_withdrawal_id = id;
          at_beneficiary = beneficiary_raw;
          at_src_token = src_token;
          at_amount = amount;
          at_observed_ts = r.Types.r_block_timestamp;
        }
  | _ -> ());
  {
    w_receipt = r;
    w_withdrawal_id = withdrawal_id;
    w_amount = amount;
    w_dst_token = t.target.weth;
    w_beneficiary = beneficiary_raw;
    w_timestamp = r.Types.r_block_timestamp;
  }

(** User flow: execute the withdrawal on S.  [caller] defaults to the
    address embedded in the beneficiary field; real protocols require
    the user to issue this transaction and pay S gas — which nearly
    half the paper's users could not (Finding 7). *)
let execute_withdrawal ?caller ?delay t ~(withdrawal : withdrawal_outcome) :
    Types.receipt =
  let id =
    match withdrawal.w_withdrawal_id with
    | Some id -> id
    | None -> raise (Bridge_error "execute_withdrawal: request reverted")
  in
  let att =
    match Hashtbl.find_opt t.withdrawal_ledger id with
    | Some a -> a
    | None -> raise (Bridge_error "execute_withdrawal: not attested")
  in
  let delay =
    Option.value delay ~default:t.target.chain.Chain.finality_seconds
  in
  let target_time = max (Chain.now t.source.chain) (att.at_observed_ts + delay) in
  if target_time > Chain.now t.source.chain then
    Chain.set_time t.source.chain target_time;
  let caller =
    match caller with
    | Some c -> c
    | None -> contract_extract_address t.beneficiary_repr att.at_beneficiary
  in
  let packed =
    match t.beneficiary_repr with
    | Events.B_address -> String.make 12 '\000' ^ att.at_beneficiary
    | Events.B_bytes32 -> att.at_beneficiary
  in
  let input =
    sel_withdraw
    ^ Abi.encode
        [ Abi.Type.uint256; Abi.Type.bytes32; Abi.Type.Address; Abi.Type.uint256 ]
        [
          Abi.Value.uint_of_int id;
          Abi.Value.Fixed_bytes packed;
          Abi.Value.Address att.at_src_token;
          Abi.Value.Uint att.at_amount;
        ]
  in
  Chain.submit_tx t.source.chain ~from_:caller ~to_:t.source.bridge_addr ~input ()

(* ------------------------------------------------------------------ *)
(* Attack and anomaly injection                                        *)

(** Forged withdrawal on S (the Ronin attack shape): the attacker
    presents a claim never requested on T.  Only succeeds if the
    acceptance model is compromised.  [beneficiary] defaults to the
    attacker; the Nomad exploiters directed funds to freshly deployed
    contracts instead. *)
let forged_withdrawal ?beneficiary t ~attacker ~src_token ~amount
    ~withdrawal_id : Types.receipt =
  let beneficiary = Option.value beneficiary ~default:attacker in
  let packed = String.make 12 '\000' ^ Address.to_bytes beneficiary in
  let input =
    sel_withdraw
    ^ Abi.encode
        [ Abi.Type.uint256; Abi.Type.bytes32; Abi.Type.Address; Abi.Type.uint256 ]
        [
          Abi.Value.uint_of_int withdrawal_id;
          Abi.Value.Fixed_bytes packed;
          Abi.Value.Address src_token;
          Abi.Value.Uint amount;
        ]
  in
  Chain.submit_tx t.source.chain ~from_:attacker ~to_:t.source.bridge_addr
    ~input ()

(** Direct ERC-20 transfer to the bridge address without any protocol
    interaction (Finding 2: >$206K of reputable tokens lost this
    way). *)
let direct_token_transfer_to_bridge t ~user ~src_token ~amount : Types.receipt =
  Chain.submit_tx t.source.chain ~from_:user ~to_:src_token
    ~input:(Erc20.transfer_calldata ~to_:t.source.bridge_addr ~amount)
    ()

(** Mint a bridged token directly to a user on T (operator-only):
    models sidechain-native issuance such as game rewards, which users
    later withdraw through the bridge. *)
let admin_mint t ~dst_token ~to_ ~amount : Types.receipt =
  let input =
    sel_admin_mint
    ^ Abi.encode
        [ Abi.Type.Address; Abi.Type.Address; Abi.Type.uint256 ]
        [ Abi.Value.Address dst_token; Abi.Value.Address to_; Abi.Value.Uint amount ]
  in
  Chain.submit_tx t.target.chain ~from_:t.target.operator
    ~to_:t.target.bridge_addr ~input ()

(** Operator misbehavior (Finding 6): relay a deposit on T that has no
    counterpart on S — used to model the Nomad operator minting tokens
    under fake/duplicate mappings. *)
let relay_fake_deposit t ~beneficiary ~dst_token ~amount ~deposit_id :
    Types.receipt =
  let input =
    sel_complete_deposit
    ^ Abi.encode
        [ Abi.Type.uint256; Abi.Type.Address; Abi.Type.Address;
          Abi.Type.uint256; Abi.Type.uint256 ]
        [
          Abi.Value.uint_of_int deposit_id;
          Abi.Value.Address beneficiary;
          Abi.Value.Address dst_token;
          Abi.Value.Uint amount;
          (* Claim an old-enough source timestamp so window checks pass. *)
          Abi.Value.uint_of_int
            (max 0 (Chain.now t.target.chain - 24 * 3600));
        ]
  in
  Chain.submit_tx t.target.chain ~from_:t.target.operator
    ~to_:t.target.bridge_addr ~input ()

(** Pre-set the target bridge's withdrawal-id counter.  The paper's
    Ronin analysis relies on withdrawal ids being a monotonic counter:
    ids below the first id of the collection window identify
    withdrawals requested before data collection began. *)
let seed_withdrawal_counter t n =
  Chain.sstore t.target.chain t.target.bridge_addr withdrawal_counter_key
    (U256.of_int n)

(** Manufacture an attestation for a withdrawal requested before the
    collection window (no T-side transaction exists in the captured
    data).  Executing it on S produces the paper's pre-window false
    positives. *)
let attest_pre_window_withdrawal t ~withdrawal_id ~beneficiary ~src_token
    ~amount ~observed_ts : withdrawal_outcome =
  let beneficiary_raw =
    match t.beneficiary_repr with
    | Events.B_address -> Address.to_bytes beneficiary
    | Events.B_bytes32 -> String.make 12 '\000' ^ Address.to_bytes beneficiary
  in
  Hashtbl.replace t.withdrawal_ledger withdrawal_id
    {
      at_withdrawal_id = withdrawal_id;
      at_beneficiary = beneficiary_raw;
      at_src_token = src_token;
      at_amount = amount;
      at_observed_ts = observed_ts;
    };
  {
    (* The receipt field is a synthetic placeholder: no T-side
       transaction exists within the captured data by construction. *)
    w_receipt =
      {
        Types.r_tx_hash =
          Xcw_keccak.Keccak.digest (Printf.sprintf "pre-window:%d" withdrawal_id);
        r_block_number = 0;
        r_block_timestamp = observed_ts;
        r_tx_index = 0;
        r_from = beneficiary;
        r_to = None;
        r_status = Types.Success;
        r_gas_used = 0;
        r_logs = [];
        r_contract_created = None;
      };
    w_withdrawal_id = Some withdrawal_id;
    w_amount = amount;
    w_dst_token = Address.zero;
    w_beneficiary = beneficiary_raw;
    w_timestamp = observed_ts;
  }

(** Compromise the multisig validator set (the Ronin attack gained 5 of
    9 keys). *)
let compromise_validators t ~keys =
  match t.acceptance with
  | Multisig m -> m.compromised_keys <- keys
  | Optimistic _ -> raise (Bridge_error "not a multisig bridge")

(** Break the optimistic proof check (the Nomad upgrade bug). *)
let break_proof_check t =
  match t.acceptance with
  | Optimistic o -> o.proof_check_broken <- true
  | Multisig _ -> raise (Bridge_error "not an optimistic bridge")

(** Disable contract-side enforcement of the fraud-proof window
    (Nomad finality violations, Finding 4). *)
let disable_window_enforcement t =
  match t.acceptance with
  | Optimistic o -> o.enforce_window <- false
  | Multisig _ -> raise (Bridge_error "not an optimistic bridge")

let fraud_proof_window t =
  match t.acceptance with
  | Optimistic o -> Some o.fraud_proof_window
  | Multisig _ -> None
