(** Bridge contract event declarations — one per logical relation of
    the paper's Listing 1.

    Protocols differ in the beneficiary representation: Ronin-style
    bridges use a 20-byte [address]; Nomad-style bridges use a 32-byte
    field to accommodate non-EVM chains (paper Section 5.2.2), which
    changes the event signature and hence [topic0]. *)

module Abi = Xcw_abi.Abi

type beneficiary_repr = B_address | B_bytes32

val beneficiary_type : beneficiary_repr -> Abi.Type.t

val sc_token_deposited : beneficiary_repr -> Abi.Event.t
(** Source chain: tokens escrowed for a cross-chain deposit.
    [TokenDeposited(depositId, beneficiary, dstToken, origToken,
    dstChainId, amount)]. *)

val tc_token_deposited : Abi.Event.t
(** Target chain: deposit completed, tokens minted/unlocked.
    [TokenDeposited(depositId, beneficiary, token, amount)]. *)

val tc_token_withdrew : beneficiary_repr -> Abi.Event.t
(** Target chain: withdrawal requested (tokens escrowed on T).
    [TokenWithdrew(withdrawalId, beneficiary, origToken, dstToken,
    dstChainId, amount)]. *)

val sc_token_withdrew : Abi.Event.t
(** Source chain: withdrawal executed.  The beneficiary is always the
    20-byte address the contract extracted and paid.
    [TokenWithdrew(withdrawalId, beneficiary, token, amount)]. *)

(** Exit-bridge events (PR 10) — the proof-carrying pessimistic bridge
    model; see DESIGN.md §15. *)

val exit_deposited : Abi.Event.t
(** Origin chain: leaf appended to the deposit exit tree.
    [ExitDeposited(leafIndex, token, amount, destChainId, root)]. *)

val exit_root_sealed : Abi.Event.t
(** Origin chain: deposit-tree root sealed for an epoch.
    [ExitRootSealed(epoch, root)]. *)

val exit_claimed : Abi.Event.t
(** Destination chain: proof-carrying claim executed.
    [ExitClaimed(leafIndex, token, amount, originChainId, root, seq,
    proof)] — [proof] is the concatenated 32-byte sibling digests. *)

val exit_root_signed : Abi.Event.t
(** Destination chain: validator attestation of an origin epoch root.
    [ExitRootSigned(originChainId, epoch, root, validator, seq)]. *)

val exit_stake_event : Abi.Event.t
(** Destination chain: stake lifecycle.
    [StakeEvent(validator, kind, amount, epoch)], kind 0 = bond,
    1 = withdraw, 2 = slash. *)
