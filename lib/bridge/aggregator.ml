(** A bridge-aggregator intermediary contract.

    Users frequently interact with bridges through intermediary
    protocols (bridge aggregators, Section 3.2 of the paper): the
    user's transaction targets the aggregator, which issues *internal*
    transactions to the bridge.  This matters for the detector because
    (a) the transaction's [to] field is not the bridge contract, and
    (b) native value reaches the bridge only through internal calls,
    visible exclusively via [debug_traceTransaction].

    Rule 1/2 deliberately do not require the transaction to target a
    bridge contract — only that the escrow event credits a
    bridge-controlled address — so aggregator deposits must be accepted
    as valid.  This contract exercises that path. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Abi = Xcw_abi.Abi
module Chain = Xcw_chain.Chain
module Erc20 = Xcw_chain.Erc20

let sel_agg_deposit_erc20 =
  Abi.selector "swapAndBridge(address,uint256,bytes32,uint256)"

let sel_agg_deposit_native = Abi.selector "bridgeNative(bytes32,uint256)"

(** Deploy an aggregator routing to the given bridge.  ERC-20 deposits
    require the user to have approved the aggregator. *)
let deploy (bridge : Bridge.t) : Address.t =
  let chain = bridge.Bridge.source.Bridge.chain in
  let agg_owner = Address.of_seed (bridge.Bridge.label ^ ":aggregator-owner") in
  Chain.deploy chain ~from_:agg_owner ~label:(bridge.Bridge.label ^ ":aggregator")
    (fun env ->
      let input = env.Chain.input in
      if String.length input < 4 then raise (Chain.Revert "aggregator: empty call");
      let sel = String.sub input 0 4 in
      let bridge_addr = bridge.Bridge.source.Bridge.bridge_addr in
      if sel = sel_agg_deposit_erc20 then begin
        match
          Erc20.decode_args
            [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.bytes32; Abi.Type.uint256 ]
            input
        with
        | [ Abi.Value.Address token; Abi.Value.Uint amount;
            Abi.Value.Fixed_bytes beneficiary; Abi.Value.Uint dst_chain ] ->
            (* Pull the user's tokens, then deposit them on the bridge
               on the user's behalf. *)
            env.Chain.call token
              (Erc20.transfer_from_calldata ~from_:env.Chain.sender
                 ~to_:env.Chain.self ~amount);
            env.Chain.call token
              (Erc20.approve_calldata ~spender:bridge_addr ~amount);
            env.Chain.call bridge_addr
              (Bridge.sel_deposit_erc20
              ^ Abi.encode
                  [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.bytes32;
                    Abi.Type.uint256 ]
                  [
                    Abi.Value.Address token;
                    Abi.Value.Uint amount;
                    Abi.Value.Fixed_bytes beneficiary;
                    Abi.Value.Uint dst_chain;
                  ])
        | _ -> raise (Chain.Revert "aggregator: bad args")
      end
      else if sel = sel_agg_deposit_native then begin
        match
          Erc20.decode_args [ Abi.Type.bytes32; Abi.Type.uint256 ] input
        with
        | [ Abi.Value.Fixed_bytes beneficiary; Abi.Value.Uint dst_chain ] ->
            (* Forward msg.value to the bridge in an internal call:
               invisible in the receipt, visible in the trace. *)
            env.Chain.call ~value:env.Chain.value bridge_addr
              (Bridge.sel_deposit_native
              ^ Abi.encode
                  [ Abi.Type.bytes32; Abi.Type.uint256 ]
                  [
                    Abi.Value.Fixed_bytes beneficiary;
                    Abi.Value.Uint dst_chain;
                  ])
        | _ -> raise (Chain.Revert "aggregator: bad args")
      end
      else raise (Chain.Revert "aggregator: unknown selector"))

(** User deposit of ERC-20 via the aggregator (after approving it). *)
let deposit_erc20 bridge ~aggregator ~user ~src_token ~amount ~beneficiary :
    Xcw_evm.Types.receipt =
  let chain = bridge.Bridge.source.Bridge.chain in
  ignore
    (Chain.submit_tx chain ~from_:user ~to_:src_token
       ~input:(Erc20.approve_calldata ~spender:aggregator ~amount)
       ());
  let packed = Bridge.pack_beneficiary bridge.Bridge.beneficiary_repr beneficiary in
  let input =
    sel_agg_deposit_erc20
    ^ Abi.encode
        [ Abi.Type.Address; Abi.Type.uint256; Abi.Type.bytes32; Abi.Type.uint256 ]
        [
          Abi.Value.Address src_token;
          Abi.Value.Uint amount;
          Abi.Value.Fixed_bytes packed;
          Abi.Value.uint_of_int bridge.Bridge.target.Bridge.chain.Chain.chain_id;
        ]
  in
  Chain.submit_tx chain ~from_:user ~to_:aggregator ~input ()

(** User deposit of native currency via the aggregator: [tx.value]
    flows to the bridge through an internal call. *)
let deposit_native bridge ~aggregator ~user ~amount ~beneficiary :
    Xcw_evm.Types.receipt =
  let chain = bridge.Bridge.source.Bridge.chain in
  let packed = Bridge.pack_beneficiary bridge.Bridge.beneficiary_repr beneficiary in
  let input =
    sel_agg_deposit_native
    ^ Abi.encode
        [ Abi.Type.bytes32; Abi.Type.uint256 ]
        [
          Abi.Value.Fixed_bytes packed;
          Abi.Value.uint_of_int bridge.Bridge.target.Bridge.chain.Chain.chain_id;
        ]
  in
  Chain.submit_tx chain ~from_:user ~to_:aggregator ~value:amount ~input ()
