(** Core EVM data structures: logs, transactions, receipts, blocks and
    execution traces.

    These mirror the JSON-RPC shapes (`eth_getTransactionReceipt`,
    `eth_getLogs`, `debug_traceTransaction`) closely enough that the
    decoders in [Xcw_core] operate on the same information the paper's
    pipeline extracts from real nodes. *)

module U256 = Xcw_uint256.Uint256

type hash = string (* 32 raw bytes *)

let pp_hash fmt (h : hash) = Format.pp_print_string fmt (Xcw_util.Hex.encode_0x h)

(** An event log entry, as found in a transaction receipt.  [topics]
    holds at most 4 entries of 32 bytes each; [topics[0]] is the event
    signature hash for non-anonymous events. *)
type log = {
  log_address : Address.t;  (** contract that emitted the log *)
  topics : hash list;
  data : string;  (** ABI-encoded non-indexed parameters *)
  log_index : int;  (** position within the enclosing transaction *)
}

type tx_status = Success | Reverted

let status_code = function Success -> 1 | Reverted -> 0

(** A signed transaction as submitted to a chain.  The simulator elides
    signatures; [tx_from] plays the role of the recovered sender. *)
type transaction = {
  tx_hash : hash;
  tx_nonce : int;
  tx_from : Address.t;
  tx_to : Address.t option;  (** [None] for contract creation *)
  tx_value : U256.t;  (** native currency transferred *)
  tx_input : string;  (** calldata *)
  tx_gas_price : U256.t;
  tx_gas_limit : int;
}

type receipt = {
  r_tx_hash : hash;
  r_block_number : int;
  r_block_timestamp : int;  (** unix seconds *)
  r_tx_index : int;
  r_from : Address.t;
  r_to : Address.t option;
  r_status : tx_status;
  r_gas_used : int;
  r_logs : log list;
  r_contract_created : Address.t option;
}

(** One frame of a [debug_traceTransaction] call tracer output: internal
    calls carry the value transferred, which is invisible in receipts —
    exactly the case the paper needs the tracer for. *)
type call_frame = {
  call_type : call_type;
  call_from : Address.t;
  call_to : Address.t;
  call_value : U256.t;
  call_input : string;
  call_depth : int;
  subcalls : call_frame list;
}

and call_type = Call | Delegate_call | Static_call | Create

type block = {
  b_number : int;
  b_timestamp : int;
  b_parent_hash : hash;
  b_hash : hash;
  b_transactions : hash list;
}

(** Flatten a call tree into pre-order frames (the shape block explorers
    show as "internal transactions"). *)
let rec flatten_calls (frame : call_frame) : call_frame list =
  frame :: List.concat_map flatten_calls frame.subcalls

(** All value-bearing internal transfers in a call tree, excluding the
    top-level call itself. *)
let internal_value_transfers (frame : call_frame) : call_frame list =
  List.filter
    (fun f -> f.call_depth > 0 && not (U256.is_zero f.call_value))
    (flatten_calls frame)

let pp_log fmt (l : log) =
  Format.fprintf fmt "@[<v 2>log(%a, index %d)@ topics: %a@ data: %s@]"
    Address.pp l.log_address l.log_index
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_hash)
    l.topics
    (Xcw_util.Hex.encode_0x l.data)
