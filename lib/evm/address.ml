(** Ethereum account addresses: 20 raw bytes.

    Addresses are compared and hashed by their raw bytes; the hex form
    (lowercase, 0x-prefixed) is only a display/interchange format. *)

type t = string (* exactly 20 bytes *)

let size = 20

let of_bytes (s : string) : t =
  if String.length s <> size then
    invalid_arg
      (Printf.sprintf "Address.of_bytes: expected %d bytes, got %d" size
         (String.length s));
  s

let to_bytes (t : t) : string = t

let of_hex (h : string) : t = of_bytes (Xcw_util.Hex.decode h)

let to_hex (t : t) : string = Xcw_util.Hex.encode_0x t

let zero : t = String.make size '\000'

let is_zero t = t = zero

let equal (a : t) (b : t) = String.equal a b

let compare (a : t) (b : t) = String.compare a b

let pp fmt t = Format.pp_print_string fmt (to_hex t)

(** The address of a contract created by [sender] with account [nonce]:
    the low 20 bytes of [keccak256(rlp([sender, nonce]))]. *)
let contract_address ~(sender : t) ~(nonce : int) : t =
  let rlp = Xcw_rlp.Rlp.(encode (List [ String sender; of_int nonce ])) in
  let h = Xcw_keccak.Keccak.digest rlp in
  String.sub h 12 20

(** Derive a deterministic "externally owned account" address from a
    seed label; used by the simulator in place of real key pairs. *)
let of_seed (label : string) : t =
  String.sub (Xcw_keccak.Keccak.digest ("eoa:" ^ label)) 12 20

module Map = Map.Make (String)
module Set = Set.Make (String)
