(** Ethereum account addresses: 20 raw bytes.

    Compared and hashed by raw bytes; the lowercase 0x-prefixed hex
    form is a display/interchange format. *)

type t = string
(** Exactly 20 bytes; use the constructors below to guarantee the
    invariant. *)

val size : int
(** 20. *)

val of_bytes : string -> t
(** Raises [Invalid_argument] unless exactly 20 bytes. *)

val to_bytes : t -> string

val of_hex : string -> t
(** Accepts an optional ["0x"] prefix; raises [Invalid_argument] unless
    20 bytes. *)

val to_hex : t -> string
(** Lowercase, 0x-prefixed. *)

val zero : t
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val contract_address : sender:t -> nonce:int -> t
(** The address of a contract created by [sender] with account [nonce]:
    the low 20 bytes of [keccak256(rlp(\[sender; nonce\]))] — the
    mainnet derivation rule. *)

val of_seed : string -> t
(** Deterministic pseudo-EOA derived from a label; the simulator's
    stand-in for key pairs. *)

module Map : Map.S with type key = string
module Set : Set.S with type elt = string
