(** Keccak-256 as used by Ethereum (original Keccak padding, not
    SHA3-256).  Computes event signatures ([topic\[0\]]), function
    selectors, transaction hashes and contract addresses. *)

val digest : string -> string
(** [digest msg] is the 32-byte Keccak-256 digest of [msg]. *)

val digest_hex : string -> string
(** Lowercase hex digest without prefix. *)

val digest_hex_0x : string -> string
(** Lowercase hex digest with a ["0x"] prefix. *)
