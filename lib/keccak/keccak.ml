(** Keccak-256 as used by Ethereum.

    This is the original Keccak submission (padding byte [0x01]), not the
    standardized SHA3-256 (padding byte [0x06]).  Ethereum computes event
    signatures, function selectors and addresses with this variant, e.g.
    [topic[0] = keccak256("Transfer(address,address,uint256)")].

    Implementation: Keccak-f[1600] permutation over a 5x5 lane state of
    64-bit words, sponge with rate 1088 bits / capacity 512 bits. *)

let round_constants =
  [|
    0x0000000000000001L; 0x0000000000008082L; 0x800000000000808AL;
    0x8000000080008000L; 0x000000000000808BL; 0x0000000080000001L;
    0x8000000080008081L; 0x8000000000008009L; 0x000000000000008AL;
    0x0000000000000088L; 0x0000000080008009L; 0x000000008000000AL;
    0x000000008000808BL; 0x800000000000008BL; 0x8000000000008089L;
    0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
    0x000000000000800AL; 0x800000008000000AL; 0x8000000080008081L;
    0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L;
  |]

let rotation_offsets =
  (* r[x][y] for the rho step, indexed as offsets.(x + 5*y). *)
  [|
    0; 1; 62; 28; 27;
    36; 44; 6; 55; 20;
    3; 10; 43; 25; 39;
    41; 45; 15; 21; 8;
    18; 2; 61; 56; 14;
  |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

(* One application of Keccak-f[1600] to the 25-lane state. *)
let keccak_f (state : int64 array) =
  let c = Array.make 5 0L in
  let d = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10)
                (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <- Int64.logxor state.(x + (5 * y)) d.(x)
      done
    done;
    (* rho and pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let nx = y and ny = ((2 * x) + (3 * y)) mod 5 in
        b.(nx + (5 * ny)) <- rotl64 state.(x + (5 * y)) rotation_offsets.(x + (5 * y))
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <-
          Int64.logxor
            b.(x + (5 * y))
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let rate_bytes = 136 (* 1088-bit rate for 256-bit output *)

(** [digest msg] is the 32-byte Keccak-256 digest of [msg]. *)
let digest (msg : string) : string =
  let state = Array.make 25 0L in
  let absorb_block block offset len =
    (* XOR [len] bytes of [block] starting at [offset] into the state. *)
    for i = 0 to len - 1 do
      let lane = i / 8 and byte = i mod 8 in
      let v = Int64.of_int (Char.code (String.unsafe_get block (offset + i))) in
      state.(lane) <- Int64.logxor state.(lane) (Int64.shift_left v (8 * byte))
    done
  in
  let total = String.length msg in
  let full_blocks = total / rate_bytes in
  for b = 0 to full_blocks - 1 do
    absorb_block msg (b * rate_bytes) rate_bytes;
    keccak_f state
  done;
  (* Final partial block with multi-rate padding 0x01 .. 0x80. *)
  let remaining = total - (full_blocks * rate_bytes) in
  let last = Bytes.make rate_bytes '\000' in
  Bytes.blit_string msg (full_blocks * rate_bytes) last 0 remaining;
  Bytes.set last remaining (Char.chr 0x01);
  Bytes.set last (rate_bytes - 1)
    (Char.chr (Char.code (Bytes.get last (rate_bytes - 1)) lor 0x80));
  absorb_block (Bytes.unsafe_to_string last) 0 rate_bytes;
  keccak_f state;
  (* Squeeze 32 bytes. *)
  let out = Bytes.create 32 in
  for i = 0 to 31 do
    let lane = i / 8 and byte = i mod 8 in
    Bytes.set out i
      (Char.chr
         (Int64.to_int
            (Int64.logand (Int64.shift_right_logical state.(lane) (8 * byte)) 0xFFL)))
  done;
  Bytes.unsafe_to_string out

(** Hex-encoded digest without prefix. *)
let digest_hex msg = Xcw_util.Hex.encode (digest msg)

(** Hex-encoded digest with a ["0x"] prefix, the common display form for
    transaction hashes and event topics. *)
let digest_hex_0x msg = "0x" ^ digest_hex msg
