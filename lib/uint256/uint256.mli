(** 256-bit unsigned integers with EVM semantics.

    Token amounts on EVM chains are [uint256]; this module implements
    modular 2^256 arithmetic over four 64-bit limbs.  Values are
    immutable.  Arithmetic wraps modulo 2^256 like the EVM; the [_exn]
    variants raise instead, for callers enforcing conservation. *)

type t

exception Overflow
exception Underflow

val zero : t
val one : t
val max_int_u256 : t

val make : int64 -> int64 -> int64 -> int64 -> t
(** [make l0 l1 l2 l3] builds a value from little-endian limbs
    (interpreted as unsigned). *)

(** {1 Comparison} *)

val equal : t -> t -> bool
val is_zero : t -> bool
val compare : t -> t -> int
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

(** {1 Conversion} *)

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val of_int64 : int64 -> t
val to_int : t -> int
(** Raises {!Overflow} if the value exceeds [max_int]. *)

val to_int_opt : t -> int option

val of_float : float -> t
(** Truncating; raises [Invalid_argument] on negatives or values at or
    above 2^256. *)

val to_float : t -> float
(** Lossy for values above 2^53. *)

val of_decimal_string : string -> t
val to_decimal_string : t -> string

val of_hex_string : string -> t
(** Accepts an optional ["0x"] prefix and odd-length hex. *)

val to_hex_string : t -> string
(** 0x-prefixed, 64 hex digits. *)

val of_string : string -> t
(** Decimal, or hex when 0x-prefixed. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_bytes_be : string -> t
(** Big-endian bytes, at most 32. *)

val to_bytes_be : t -> string
(** Exactly 32 big-endian bytes — the EVM word representation. *)

val of_tokens : decimals:int -> int -> t
(** [of_tokens ~decimals:18 5] is 5 ether in wei. *)

val to_tokens : decimals:int -> t -> float
(** Lossy float token amount. *)

(** {1 Arithmetic (wrapping mod 2^256)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t

val divmod : t -> t -> t * t
(** Raises [Division_by_zero]. *)

val add_exn : t -> t -> t
(** Raises {!Overflow} instead of wrapping. *)

val sub_exn : t -> t -> t
(** Raises {!Underflow} when the subtrahend is larger. *)

val mul_exn : t -> t -> t
(** Raises {!Overflow} if the mathematical product needs > 256 bits. *)

(** {1 Bit operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val logor : t -> t -> t
val logand : t -> t -> t
val bit : t -> int -> bool
val set_bit : t -> int -> t
val bit_length : t -> int
