(** 256-bit unsigned integer arithmetic.

    Token amounts on EVM chains are [uint256]; OCaml has no native type
    wide enough and zarith is not available in this environment, so this
    module implements modular 2^256 arithmetic over four 64-bit limbs
    (little-endian: [limb.(0)] is least significant).

    Values are immutable.  All operations wrap modulo 2^256, matching
    EVM semantics; [add_exn]/[sub_exn] raise on overflow/underflow for
    callers that want conservation checks (the bridge simulator). *)

type t = { l0 : int64; l1 : int64; l2 : int64; l3 : int64 }

exception Overflow
exception Underflow

let zero = { l0 = 0L; l1 = 0L; l2 = 0L; l3 = 0L }
let one = { l0 = 1L; l1 = 0L; l2 = 0L; l3 = 0L }

let max_int_u256 =
  { l0 = -1L; l1 = -1L; l2 = -1L; l3 = -1L }

let limb t i =
  match i with
  | 0 -> t.l0
  | 1 -> t.l1
  | 2 -> t.l2
  | 3 -> t.l3
  | _ -> invalid_arg "Uint256.limb"

let make l0 l1 l2 l3 = { l0; l1; l2; l3 }

let equal a b = a.l0 = b.l0 && a.l1 = b.l1 && a.l2 = b.l2 && a.l3 = b.l3

let is_zero t = equal t zero

(* Unsigned comparison of int64 values. *)
let ucmp64 (a : int64) (b : int64) =
  let flip x = Int64.logxor x Int64.min_int in
  Int64.compare (flip a) (flip b)

let compare a b =
  let c = ucmp64 a.l3 b.l3 in
  if c <> 0 then c
  else
    let c = ucmp64 a.l2 b.l2 in
    if c <> 0 then c
    else
      let c = ucmp64 a.l1 b.l1 in
      if c <> 0 then c else ucmp64 a.l0 b.l0

let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0

let of_int i =
  if i < 0 then invalid_arg "Uint256.of_int: negative";
  { zero with l0 = Int64.of_int i }

let of_int64 i =
  if Int64.compare i 0L < 0 then invalid_arg "Uint256.of_int64: negative";
  { zero with l0 = i }

(** [to_int t] raises [Overflow] if the value does not fit an OCaml int. *)
let to_int t =
  if t.l1 <> 0L || t.l2 <> 0L || t.l3 <> 0L then raise Overflow;
  if ucmp64 t.l0 (Int64.of_int max_int) > 0 then raise Overflow;
  Int64.to_int t.l0

let to_int_opt t = try Some (to_int t) with Overflow -> None

(* Add with carry: returns (sum, carry). *)
let addc (a : int64) (b : int64) (carry : int64) =
  let s = Int64.add (Int64.add a b) carry in
  (* Carry occurred iff s < a (unsigned) when carry=0, or s <= a when carry=1. *)
  let c =
    if carry = 0L then if ucmp64 s a < 0 then 1L else 0L
    else if ucmp64 s a <= 0 then 1L
    else 0L
  in
  (s, c)

(* Subtract with borrow: returns (diff, borrow). *)
let subb (a : int64) (b : int64) (borrow : int64) =
  let d = Int64.sub (Int64.sub a b) borrow in
  let bo =
    if borrow = 0L then if ucmp64 a b < 0 then 1L else 0L
    else if ucmp64 a b <= 0 then 1L
    else 0L
  in
  (d, bo)

let add_with_carry a b =
  let s0, c0 = addc a.l0 b.l0 0L in
  let s1, c1 = addc a.l1 b.l1 c0 in
  let s2, c2 = addc a.l2 b.l2 c1 in
  let s3, c3 = addc a.l3 b.l3 c2 in
  ({ l0 = s0; l1 = s1; l2 = s2; l3 = s3 }, c3 <> 0L)

(** Wrapping addition modulo 2^256. *)
let add a b = fst (add_with_carry a b)

(** Addition that raises [Overflow] instead of wrapping. *)
let add_exn a b =
  let s, carry = add_with_carry a b in
  if carry then raise Overflow else s

let sub_with_borrow a b =
  let d0, b0 = subb a.l0 b.l0 0L in
  let d1, b1 = subb a.l1 b.l1 b0 in
  let d2, b2 = subb a.l2 b.l2 b1 in
  let d3, b3 = subb a.l3 b.l3 b2 in
  ({ l0 = d0; l1 = d1; l2 = d2; l3 = d3 }, b3 <> 0L)

(** Wrapping subtraction modulo 2^256. *)
let sub a b = fst (sub_with_borrow a b)

(** Subtraction that raises [Underflow] when [b > a]. *)
let sub_exn a b =
  let d, borrow = sub_with_borrow a b in
  if borrow then raise Underflow else d

(* 64x64 -> 128 multiplication, as (lo, hi). *)
let mul64 (a : int64) (b : int64) =
  let mask32 = 0xFFFFFFFFL in
  let al = Int64.logand a mask32 and ah = Int64.shift_right_logical a 32 in
  let bl = Int64.logand b mask32 and bh = Int64.shift_right_logical b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid = Int64.add (Int64.add lh hl) (Int64.shift_right_logical ll 32) in
  (* mid may wrap; detect carry into the high word. *)
  let carry_mid = if ucmp64 mid lh < 0 then 0x100000000L else 0L in
  let lo = Int64.logor (Int64.shift_left mid 32) (Int64.logand ll mask32) in
  let hi =
    Int64.add (Int64.add hh (Int64.shift_right_logical mid 32)) carry_mid
  in
  (lo, hi)

(* Full 512-bit schoolbook product as 8 limbs. *)
let mul_full a b =
  let a_limbs = [| a.l0; a.l1; a.l2; a.l3 |] in
  let b_limbs = [| b.l0; b.l1; b.l2; b.l3 |] in
  let res = Array.make 8 0L in
  for i = 0 to 3 do
    let carry = ref 0L in
    for j = 0 to 3 do
      if i + j < 8 then begin
        let lo, hi = mul64 a_limbs.(i) b_limbs.(j) in
        let s1, c1 = addc res.(i + j) lo 0L in
        let s2, c2 = addc s1 !carry 0L in
        res.(i + j) <- s2;
        carry := Int64.add (Int64.add hi c1) c2
      end
    done;
    if i + 4 < 8 then begin
      let s, c = addc res.(i + 4) !carry 0L in
      res.(i + 4) <- s;
      (* propagate any further carry *)
      let k = ref (i + 5) in
      let c = ref c in
      while !c <> 0L && !k < 8 do
        let s', c' = addc res.(!k) 0L !c in
        res.(!k) <- s';
        c := c';
        incr k
      done
    end
  done;
  res

(** Wrapping multiplication modulo 2^256. *)
let mul a b =
  let res = mul_full a b in
  { l0 = res.(0); l1 = res.(1); l2 = res.(2); l3 = res.(3) }

(** Multiplication that raises [Overflow] if the mathematical product
    exceeds 2^256 - 1. *)
let mul_exn a b =
  let res = mul_full a b in
  if res.(4) <> 0L || res.(5) <> 0L || res.(6) <> 0L || res.(7) <> 0L then
    raise Overflow;
  { l0 = res.(0); l1 = res.(1); l2 = res.(2); l3 = res.(3) }

let shift_left t n =
  if n < 0 || n > 255 then invalid_arg "Uint256.shift_left";
  if n = 0 then t
  else begin
    let limbs = [| t.l0; t.l1; t.l2; t.l3 |] in
    let out = Array.make 4 0L in
    let limb_shift = n / 64 and bit_shift = n mod 64 in
    for i = 3 downto 0 do
      let src = i - limb_shift in
      if src >= 0 then begin
        out.(i) <- Int64.shift_left limbs.(src) bit_shift;
        if bit_shift > 0 && src - 1 >= 0 then
          out.(i) <-
            Int64.logor out.(i)
              (Int64.shift_right_logical limbs.(src - 1) (64 - bit_shift))
      end
    done;
    { l0 = out.(0); l1 = out.(1); l2 = out.(2); l3 = out.(3) }
  end

let shift_right t n =
  if n < 0 || n > 255 then invalid_arg "Uint256.shift_right";
  if n = 0 then t
  else begin
    let limbs = [| t.l0; t.l1; t.l2; t.l3 |] in
    let out = Array.make 4 0L in
    let limb_shift = n / 64 and bit_shift = n mod 64 in
    for i = 0 to 3 do
      let src = i + limb_shift in
      if src <= 3 then begin
        out.(i) <- Int64.shift_right_logical limbs.(src) bit_shift;
        if bit_shift > 0 && src + 1 <= 3 then
          out.(i) <-
            Int64.logor out.(i)
              (Int64.shift_left limbs.(src + 1) (64 - bit_shift))
      end
    done;
    { l0 = out.(0); l1 = out.(1); l2 = out.(2); l3 = out.(3) }
  end

let logor a b =
  {
    l0 = Int64.logor a.l0 b.l0;
    l1 = Int64.logor a.l1 b.l1;
    l2 = Int64.logor a.l2 b.l2;
    l3 = Int64.logor a.l3 b.l3;
  }

let logand a b =
  {
    l0 = Int64.logand a.l0 b.l0;
    l1 = Int64.logand a.l1 b.l1;
    l2 = Int64.logand a.l2 b.l2;
    l3 = Int64.logand a.l3 b.l3;
  }

let bit t n =
  if n < 0 || n > 255 then invalid_arg "Uint256.bit";
  let l = limb t (n / 64) in
  Int64.logand (Int64.shift_right_logical l (n mod 64)) 1L = 1L

let set_bit t n =
  if n < 0 || n > 255 then invalid_arg "Uint256.set_bit";
  logor t (shift_left one n)

let bit_length t =
  let rec hi_limb i = if i < 0 then -1 else if limb t i <> 0L then i else hi_limb (i - 1) in
  match hi_limb 3 with
  | -1 -> 0
  | i ->
      let l = limb t i in
      let rec msb j = if Int64.shift_right_logical l j <> 0L then j + 1 else msb (j - 1) in
      (i * 64) + msb 63

(** [divmod a b] is [(a / b, a mod b)].  Raises [Division_by_zero] when
    [b] is zero.  Bitwise long division: 256 iterations maximum. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if lt a b then (zero, a)
  else begin
    let q = ref zero and r = ref zero in
    for i = bit_length a - 1 downto 0 do
      r := shift_left !r 1;
      if bit a i then r := logor !r one;
      if ge !r b then begin
        r := sub !r b;
        q := set_bit !q i
      end
    done;
    (!q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ten = of_int 10

let of_decimal_string s =
  if s = "" then invalid_arg "Uint256.of_decimal_string: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          let d = of_int (Char.code c - Char.code '0') in
          acc := add_exn (mul_exn !acc ten) d
      | '_' -> ()
      | _ -> invalid_arg "Uint256.of_decimal_string: non-digit")
    s;
  !acc

(* Decimal rendering is a fact-load hot path: every token amount
   becomes a Datalog string cell through here.  Digit-at-a-time
   [divmod v ten] costs a full 256-bit long division per digit; instead
   divide by 10^9 over eight 32-bit half-limbs (the intermediate
   [rem << 32 | half] stays under 2^62, so plain [Int64.div] works),
   peeling nine digits per pass — at most nine short divisions for a
   full-width value. *)
let to_decimal_string t =
  if t.l1 = 0L && t.l2 = 0L && t.l3 = 0L && Int64.compare t.l0 0L >= 0 then
    Int64.to_string t.l0
  else begin
    let d = Array.make 8 0L in
    let put i l =
      d.(2 * i) <- Int64.logand l 0xFFFFFFFFL;
      d.((2 * i) + 1) <- Int64.shift_right_logical l 32
    in
    put 0 t.l0;
    put 1 t.l1;
    put 2 t.l2;
    put 3 t.l3;
    let base = 1_000_000_000L in
    let hi = ref 7 in
    while !hi > 0 && d.(!hi) = 0L do
      decr hi
    done;
    let groups = ref [] in
    while !hi > 0 || d.(0) <> 0L do
      let rem = ref 0L in
      for i = !hi downto 0 do
        let cur = Int64.logor (Int64.shift_left !rem 32) d.(i) in
        d.(i) <- Int64.div cur base;
        rem := Int64.rem cur base
      done;
      while !hi > 0 && d.(!hi) = 0L do
        decr hi
      done;
      groups := Int64.to_int !rem :: !groups
    done;
    match !groups with
    | [] -> "0"
    | g :: rest ->
        let buf = Buffer.create 78 in
        Buffer.add_string buf (string_of_int g);
        List.iter (fun g -> Buffer.add_string buf (Printf.sprintf "%09d" g)) rest;
        Buffer.contents buf
  end

(** 32-byte big-endian encoding, as stored in EVM words. *)
let to_bytes_be t =
  let b = Bytes.create 32 in
  for i = 0 to 3 do
    let l = limb t (3 - i) in
    for j = 0 to 7 do
      Bytes.set b ((i * 8) + j)
        (Char.chr
           (Int64.to_int
              (Int64.logand (Int64.shift_right_logical l ((7 - j) * 8)) 0xFFL)))
    done
  done;
  Bytes.unsafe_to_string b

(** Parse a big-endian byte string of at most 32 bytes. *)
let of_bytes_be s =
  let n = String.length s in
  if n > 32 then invalid_arg "Uint256.of_bytes_be: more than 32 bytes";
  let padded = String.make (32 - n) '\000' ^ s in
  let limb_of i =
    let acc = ref 0L in
    for j = 0 to 7 do
      acc :=
        Int64.logor (Int64.shift_left !acc 8)
          (Int64.of_int (Char.code padded.[(i * 8) + j]))
    done;
    !acc
  in
  { l3 = limb_of 0; l2 = limb_of 1; l1 = limb_of 2; l0 = limb_of 3 }

let to_hex_string t = "0x" ^ Xcw_util.Hex.encode (to_bytes_be t)

let of_hex_string s =
  let h = Xcw_util.Hex.strip_0x s in
  let h = if String.length h mod 2 = 1 then "0" ^ h else h in
  of_bytes_be (Xcw_util.Hex.decode h)

(** Parse decimal or (0x-prefixed) hex. *)
let of_string s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    of_hex_string s
  else of_decimal_string s

let to_string = to_decimal_string

let pp fmt t = Format.pp_print_string fmt (to_decimal_string t)

(** [of_float f] converts a non-negative float; fractional part truncated.
    Handles values beyond [max_int] (token amounts in wei). *)
let rec of_float f =
  if f < 0.0 then invalid_arg "Uint256.of_float: negative";
  if f >= 1.2e77 (* ~2^256 *) then invalid_arg "Uint256.of_float: too large";
  if f < 9.2e18 then of_int64 (Int64.of_float f)
  else begin
    (* Peel 32 bits at a time so the recursion always terminates (a
       64-bit split leaves the low part unchanged for values just above
       the int64 range). *)
    let scale = 2.0 ** 32.0 in
    let hi = Float.floor (f /. scale) in
    let lo = f -. (hi *. scale) in
    add (shift_left (of_float hi) 32) (of_float lo)
  end

let to_float t =
  let scale = 2.0 ** 64.0 in
  let f_of_limb l =
    if Int64.compare l 0L >= 0 then Int64.to_float l
    else Int64.to_float l +. 18446744073709551616.0
  in
  (((f_of_limb t.l3 *. scale) +. f_of_limb t.l2) *. scale +. f_of_limb t.l1)
  *. scale
  +. f_of_limb t.l0

(** [of_tokens ~decimals n] is [n * 10^decimals]; e.g.
    [of_tokens ~decimals:18 5] is 5 ether in wei. *)
let of_tokens ~decimals n =
  let rec pow10 acc k = if k = 0 then acc else pow10 (mul_exn acc ten) (k - 1) in
  mul_exn (of_int n) (pow10 one decimals)

(** [to_tokens ~decimals t] is the float token amount (lossy). *)
let to_tokens ~decimals t = to_float t /. (10.0 ** float_of_int decimals)
