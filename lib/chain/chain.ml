(** A deterministic in-memory EVM-style blockchain simulator.

    This is the substrate substituting for live Ethereum / Moonbeam /
    Ronin nodes (see DESIGN.md).  It executes transactions against
    OCaml-implemented contracts, which read and write journaled storage,
    emit ABI-encoded event logs, and make internal calls — producing
    receipts, logs and call traces with the same information content a
    real node returns over JSON-RPC.

    Contracts are OCaml values: a dispatch function receiving an
    execution environment.  Reverts roll back all state changes of the
    transaction (a write journal is kept per transaction), matching EVM
    semantics.  One block is mined per transaction; the workload
    generator controls the clock, so cross-chain timing (finality,
    fraud-proof windows) is fully scriptable. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Abi = Xcw_abi.Abi
module Keccak = Xcw_keccak.Keccak

exception Revert of string

type env = {
  chain : t;
  self : Address.t;  (** executing contract (address of code being run) *)
  sender : Address.t;  (** [msg.sender]: immediate caller *)
  origin : Address.t;  (** [tx.origin]: transaction signer *)
  value : U256.t;  (** [msg.value] *)
  input : string;  (** calldata *)
  emit : Abi.Event.t -> Abi.Value.t list -> unit;
  call : ?value:U256.t -> Address.t -> string -> unit;
      (** internal call: dispatches the callee contract and records a
          call-trace frame *)
  sload : string -> U256.t;  (** own storage slot (zero if unset) *)
  sstore : string -> U256.t -> unit;  (** journaled storage write *)
  balance_native : Address.t -> U256.t;
  transfer_native : Address.t -> U256.t -> unit;
      (** move native currency from [self] to the given address *)
  block_timestamp : int;
}

and contract = { dispatch : env -> unit; contract_label : string }

and t = {
  chain_id : int;
  chain_name : string;
  mutable finality_seconds : int;
  mutable now : int;  (** current unix time; advances monotonically *)
  mutable block_number : int;
  mutable last_block_hash : Types.hash;
  native_balances : (Address.t, U256.t) Hashtbl.t;
  nonces : (Address.t, int) Hashtbl.t;
  storage : (Address.t * string, U256.t) Hashtbl.t;
  contracts : (Address.t, contract) Hashtbl.t;
  receipts : (Types.hash, Types.receipt) Hashtbl.t;
  transactions : (Types.hash, Types.transaction) Hashtbl.t;
  traces : (Types.hash, Types.call_frame) Hashtbl.t;
  mutable blocks : Types.block list;  (** newest first *)
  mutable tx_order : Types.hash list;  (** newest first *)
  (* Per-transaction execution state. *)
  mutable journal : (unit -> unit) list;  (** undo closures, newest first *)
  mutable pending_logs : Types.log list;  (** reversed *)
  mutable next_log_index : int;
}

let create ~chain_id ~name ~finality_seconds ~genesis_time =
  {
    chain_id;
    chain_name = name;
    finality_seconds;
    now = genesis_time;
    block_number = 0;
    last_block_hash = Keccak.digest (Printf.sprintf "genesis:%d:%s" chain_id name);
    native_balances = Hashtbl.create 1024;
    nonces = Hashtbl.create 1024;
    storage = Hashtbl.create 4096;
    contracts = Hashtbl.create 64;
    receipts = Hashtbl.create 4096;
    transactions = Hashtbl.create 4096;
    traces = Hashtbl.create 4096;
    blocks = [];
    tx_order = [];
    journal = [];
    pending_logs = [];
    next_log_index = 0;
  }

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let set_time t ts =
  if ts < t.now then
    invalid_arg
      (Printf.sprintf "Chain.set_time: clock must be monotonic (%d < %d)" ts t.now);
  t.now <- ts

let advance_time t seconds =
  if seconds < 0 then invalid_arg "Chain.advance_time: negative";
  t.now <- t.now + seconds

let now t = t.now

(* ------------------------------------------------------------------ *)
(* Accounts and balances                                               *)

let native_balance t addr =
  Option.value (Hashtbl.find_opt t.native_balances addr) ~default:U256.zero

let journaled_set_balance t addr value =
  let old = Hashtbl.find_opt t.native_balances addr in
  t.journal <-
    (fun () ->
      match old with
      | Some v -> Hashtbl.replace t.native_balances addr v
      | None -> Hashtbl.remove t.native_balances addr)
    :: t.journal;
  Hashtbl.replace t.native_balances addr value

(** Credit an account outside any transaction (genesis funding). *)
let fund t addr amount =
  Hashtbl.replace t.native_balances addr (U256.add_exn (native_balance t addr) amount)

let nonce t addr = Option.value (Hashtbl.find_opt t.nonces addr) ~default:0

let bump_nonce t addr = Hashtbl.replace t.nonces addr (nonce t addr + 1)

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)

let sload t contract key =
  Option.value (Hashtbl.find_opt t.storage (contract, key)) ~default:U256.zero

let sstore t contract key value =
  let slot = (contract, key) in
  let old = Hashtbl.find_opt t.storage slot in
  t.journal <-
    (fun () ->
      match old with
      | Some v -> Hashtbl.replace t.storage slot v
      | None -> Hashtbl.remove t.storage slot)
    :: t.journal;
  if U256.is_zero value then Hashtbl.remove t.storage slot
  else Hashtbl.replace t.storage slot value

(* ------------------------------------------------------------------ *)
(* Contracts                                                           *)

let is_contract t addr = Hashtbl.mem t.contracts addr

let contract_label t addr =
  match Hashtbl.find_opt t.contracts addr with
  | Some c -> Some c.contract_label
  | None -> None

let register_contract t addr contract =
  if Hashtbl.mem t.contracts addr then
    invalid_arg "Chain.register_contract: address already has code";
  Hashtbl.replace t.contracts addr contract

(* ------------------------------------------------------------------ *)
(* Transaction execution                                               *)

let native_transfer_exn t ~from_ ~to_ amount =
  if not (U256.is_zero amount) then begin
    let from_bal = native_balance t from_ in
    if U256.lt from_bal amount then raise (Revert "insufficient native balance");
    journaled_set_balance t from_ (U256.sub_exn from_bal amount);
    journaled_set_balance t to_ (U256.add_exn (native_balance t to_) amount)
  end

let tx_hash_of t (tx_from : Address.t) nonce input value =
  Keccak.digest
    (Xcw_rlp.Rlp.(
       encode
         (List
            [
              String tx_from;
              of_int nonce;
              of_uint256 value;
              String input;
              of_int t.chain_id;
              of_int t.now;
            ])))

(* Execute [dispatch] for a call to [to_]; recursively builds the call
   trace. *)
let rec execute_call t ~origin ~sender ~self ~value ~input ~depth :
    Types.call_frame =
  (* Value moves first, like the EVM does for CALL. *)
  native_transfer_exn t ~from_:sender ~to_:self value;
  let subcalls = ref [] in
  (match Hashtbl.find_opt t.contracts self with
  | None -> () (* plain value transfer to an EOA *)
  | Some c ->
      let env =
        {
          chain = t;
          self;
          sender;
          origin;
          value;
          input;
          emit =
            (fun event values ->
              let topics, data = Abi.Event.encode_log event values in
              let log =
                {
                  Types.log_address = self;
                  topics;
                  data;
                  log_index = t.next_log_index;
                }
              in
              t.next_log_index <- t.next_log_index + 1;
              t.pending_logs <- log :: t.pending_logs);
          call =
            (fun ?(value = U256.zero) callee input ->
              let frame =
                execute_call t ~origin ~sender:self ~self:callee ~value ~input
                  ~depth:(depth + 1)
              in
              subcalls := frame :: !subcalls);
          sload = (fun key -> sload t self key);
          sstore = (fun key v -> sstore t self key v);
          balance_native = (fun a -> native_balance t a);
          transfer_native =
            (fun to_ amount -> native_transfer_exn t ~from_:self ~to_ amount);
          block_timestamp = t.now;
        }
      in
      c.dispatch env);
  {
    Types.call_type = Types.Call;
    call_from = sender;
    call_to = self;
    call_value = value;
    call_input = input;
    call_depth = depth;
    subcalls = List.rev !subcalls;
  }

let mine_block t tx_hash =
  t.block_number <- t.block_number + 1;
  let b_hash =
    (* Chained over the parent hash AND the block's transaction so the
       chain head commits to the full history. *)
    Keccak.digest
      (Printf.sprintf "%d:%d:%s:%s" t.chain_id t.block_number
         (Xcw_util.Hex.encode t.last_block_hash)
         (Xcw_util.Hex.encode tx_hash))
  in
  let block =
    {
      Types.b_number = t.block_number;
      b_timestamp = t.now;
      b_parent_hash = t.last_block_hash;
      b_hash;
      b_transactions = [ tx_hash ];
    }
  in
  t.last_block_hash <- b_hash;
  t.blocks <- block :: t.blocks;
  block

(** Submit and execute a transaction.  One block is mined per
    transaction at the chain's current time.  Reverted transactions roll
    back all state changes but are still recorded on chain (with status
    [Reverted] and no logs), as on real networks. *)
let submit_tx ?(value = U256.zero) ?(input = "") ?(gas_price = U256.zero)
    ?(gas_limit = 1_000_000) t ~from_ ~to_ () : Types.receipt =
  let sender_nonce = nonce t from_ in
  let tx_hash = tx_hash_of t from_ sender_nonce input value in
  bump_nonce t from_;
  t.journal <- [];
  t.pending_logs <- [];
  t.next_log_index <- 0;
  let status, trace =
    try
      let frame =
        execute_call t ~origin:from_ ~sender:from_ ~self:to_ ~value ~input
          ~depth:0
      in
      (Types.Success, Some frame)
    with Revert _ ->
      (* Unwind every journaled mutation of this transaction. *)
      List.iter (fun undo -> undo ()) t.journal;
      t.pending_logs <- [];
      (Types.Reverted, None)
  in
  let logs = List.rev t.pending_logs in
  t.journal <- [];
  t.pending_logs <- [];
  let gas_used = 21_000 + (List.length logs * 1_500) + (String.length input * 8) in
  let gas_used = min gas_used gas_limit in
  (* Charge gas after execution; fees are burned for simplicity. *)
  let fee = U256.mul gas_price (U256.of_int gas_used) in
  if not (U256.is_zero fee) then begin
    let bal = native_balance t from_ in
    let charged = if U256.lt bal fee then bal else fee in
    Hashtbl.replace t.native_balances from_ (U256.sub bal charged)
  end;
  let block = mine_block t tx_hash in
  let tx =
    {
      Types.tx_hash;
      tx_nonce = sender_nonce;
      tx_from = from_;
      tx_to = Some to_;
      tx_value = value;
      tx_input = input;
      tx_gas_price = gas_price;
      tx_gas_limit = gas_limit;
    }
  in
  let receipt =
    {
      Types.r_tx_hash = tx_hash;
      r_block_number = block.Types.b_number;
      r_block_timestamp = block.Types.b_timestamp;
      r_tx_index = 0;
      r_from = from_;
      r_to = Some to_;
      r_status = status;
      r_gas_used = gas_used;
      r_logs = logs;
      r_contract_created = None;
    }
  in
  Hashtbl.replace t.transactions tx_hash tx;
  Hashtbl.replace t.receipts tx_hash receipt;
  Option.iter (fun tr -> Hashtbl.replace t.traces tx_hash tr) trace;
  t.tx_order <- tx_hash :: t.tx_order;
  receipt

(** Deploy a contract from an EOA; returns its address.  Recorded as a
    creation transaction. *)
let deploy ?(label = "contract") t ~from_ (dispatch : env -> unit) : Address.t
    =
  let sender_nonce = nonce t from_ in
  let addr = Address.contract_address ~sender:from_ ~nonce:sender_nonce in
  let tx_hash = tx_hash_of t from_ sender_nonce ("create:" ^ label) U256.zero in
  bump_nonce t from_;
  register_contract t addr { dispatch; contract_label = label };
  let block = mine_block t tx_hash in
  let tx =
    {
      Types.tx_hash;
      tx_nonce = sender_nonce;
      tx_from = from_;
      tx_to = None;
      tx_value = U256.zero;
      tx_input = "";
      tx_gas_price = U256.zero;
      tx_gas_limit = 3_000_000;
    }
  in
  let receipt =
    {
      Types.r_tx_hash = tx_hash;
      r_block_number = block.Types.b_number;
      r_block_timestamp = block.Types.b_timestamp;
      r_tx_index = 0;
      r_from = from_;
      r_to = None;
      r_status = Types.Success;
      r_gas_used = 500_000;
      r_logs = [];
      r_contract_created = Some addr;
    }
  in
  Hashtbl.replace t.transactions tx_hash tx;
  Hashtbl.replace t.receipts tx_hash receipt;
  t.tx_order <- tx_hash :: t.tx_order;
  addr

(* ------------------------------------------------------------------ *)
(* Queries (consumed by the RPC facade)                                *)

let receipt t h = Hashtbl.find_opt t.receipts h
let transaction t h = Hashtbl.find_opt t.transactions h
let trace t h = Hashtbl.find_opt t.traces h

(** All receipts in chain order (oldest first). *)
let all_receipts t =
  List.rev_map (fun h -> Hashtbl.find t.receipts h) t.tx_order

let all_blocks t = List.rev t.blocks

let transaction_count t = List.length t.tx_order
