(** A deterministic in-memory EVM-style blockchain simulator.

    Substitutes for live Ethereum/Moonbeam/Ronin nodes (see DESIGN.md):
    executes transactions against OCaml-implemented contracts, which
    read/write journaled storage, emit ABI-encoded event logs and make
    internal calls — producing receipts, logs and call traces with the
    same information content a real node returns over JSON-RPC.

    Reverts roll back all state changes of the transaction, matching
    EVM semantics.  One block is mined per transaction at the chain's
    current (monotonic, caller-controlled) clock. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Types = Xcw_evm.Types
module Abi = Xcw_abi.Abi

exception Revert of string
(** Raised by contract code to abort and roll back the transaction. *)

(** The execution environment passed to contract code. *)
type env = {
  chain : t;
  self : Address.t;  (** executing contract *)
  sender : Address.t;  (** [msg.sender] *)
  origin : Address.t;  (** [tx.origin] *)
  value : U256.t;  (** [msg.value] *)
  input : string;  (** calldata *)
  emit : Abi.Event.t -> Abi.Value.t list -> unit;
  call : ?value:U256.t -> Address.t -> string -> unit;
      (** internal call; recorded as a call-trace frame *)
  sload : string -> U256.t;  (** own storage slot, zero if unset *)
  sstore : string -> U256.t -> unit;  (** journaled write *)
  balance_native : Address.t -> U256.t;
  transfer_native : Address.t -> U256.t -> unit;
      (** move native currency out of [self] *)
  block_timestamp : int;
}

and contract = { dispatch : env -> unit; contract_label : string }

and t = {
  chain_id : int;
  chain_name : string;
  mutable finality_seconds : int;
  mutable now : int;
  mutable block_number : int;
  mutable last_block_hash : Types.hash;
  native_balances : (Address.t, U256.t) Hashtbl.t;
  nonces : (Address.t, int) Hashtbl.t;
  storage : (Address.t * string, U256.t) Hashtbl.t;
  contracts : (Address.t, contract) Hashtbl.t;
  receipts : (Types.hash, Types.receipt) Hashtbl.t;
  transactions : (Types.hash, Types.transaction) Hashtbl.t;
  traces : (Types.hash, Types.call_frame) Hashtbl.t;
  mutable blocks : Types.block list;
  mutable tx_order : Types.hash list;
  mutable journal : (unit -> unit) list;
  mutable pending_logs : Types.log list;
  mutable next_log_index : int;
}

val create :
  chain_id:int -> name:string -> finality_seconds:int -> genesis_time:int -> t

(** {1 Clock (monotonic)} *)

val set_time : t -> int -> unit
(** Raises [Invalid_argument] when moving backwards. *)

val advance_time : t -> int -> unit
val now : t -> int

(** {1 Accounts} *)

val native_balance : t -> Address.t -> U256.t

val fund : t -> Address.t -> U256.t -> unit
(** Credit an account outside any transaction (genesis funding). *)

val nonce : t -> Address.t -> int

(** {1 Storage and contracts} *)

val sload : t -> Address.t -> string -> U256.t
val sstore : t -> Address.t -> string -> U256.t -> unit
val is_contract : t -> Address.t -> bool
val contract_label : t -> Address.t -> string option
val register_contract : t -> Address.t -> contract -> unit

(** {1 Transactions} *)

val submit_tx :
  ?value:U256.t ->
  ?input:string ->
  ?gas_price:U256.t ->
  ?gas_limit:int ->
  t ->
  from_:Address.t ->
  to_:Address.t ->
  unit ->
  Types.receipt
(** Execute a transaction and mine a block for it at the current time.
    Reverted transactions roll back all state but are still recorded
    (status [Reverted], no logs). *)

val deploy : ?label:string -> t -> from_:Address.t -> (env -> unit) -> Address.t
(** Deploy a contract from an EOA; the address follows the mainnet
    creation rule.  Recorded as a creation transaction. *)

(** {1 Queries (consumed by the RPC facade)} *)

val receipt : t -> Types.hash -> Types.receipt option
val transaction : t -> Types.hash -> Types.transaction option
val trace : t -> Types.hash -> Types.call_frame option

val all_receipts : t -> Types.receipt list
(** Chain order, oldest first. *)

val all_blocks : t -> Types.block list
val transaction_count : t -> int
