(** An ERC-20 token contract for the chain simulator.

    Implements the standard interface the bridge protocols interact
    with: [transfer], [transferFrom], [approve], plus owner-gated
    [mint]/[burnFrom] used by bridge contracts in the burn-mint model.
    All calls are dispatched from ABI calldata and all state changes
    emit the standard events, so receipts look exactly like mainnet
    ERC-20 receipts. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Abi = Xcw_abi.Abi

type metadata = {
  token_name : string;
  token_symbol : string;
  token_decimals : int;
  token_owner : Address.t;  (** may mint and burn (the bridge, usually) *)
}

(* Event declarations (shared with WETH). *)
let transfer_event =
  Abi.Event.
    {
      name = "Transfer";
      params =
        [
          param ~indexed:true "from" Abi.Type.Address;
          param ~indexed:true "to" Abi.Type.Address;
          param "value" Abi.Type.uint256;
        ];
    }

let approval_event =
  Abi.Event.
    {
      name = "Approval";
      params =
        [
          param ~indexed:true "owner" Abi.Type.Address;
          param ~indexed:true "spender" Abi.Type.Address;
          param "value" Abi.Type.uint256;
        ];
    }

(* Function selectors. *)
let sel_transfer = Abi.selector "transfer(address,uint256)"
let sel_transfer_from = Abi.selector "transferFrom(address,address,uint256)"
let sel_approve = Abi.selector "approve(address,uint256)"
let sel_mint = Abi.selector "mint(address,uint256)"
let sel_burn_from = Abi.selector "burnFrom(address,uint256)"

(* Storage layout. *)
let balance_key addr = "bal:" ^ Address.to_bytes addr
let allowance_key owner spender =
  "alw:" ^ Address.to_bytes owner ^ Address.to_bytes spender
let supply_key = "supply"

let balance env addr = env.Chain.sload (balance_key addr)

let do_transfer env ~from_ ~to_ amount =
  let from_bal = balance env from_ in
  if U256.lt from_bal amount then
    raise (Chain.Revert "ERC20: transfer amount exceeds balance");
  env.Chain.sstore (balance_key from_) (U256.sub_exn from_bal amount);
  env.Chain.sstore (balance_key to_) (U256.add_exn (balance env to_) amount);
  env.Chain.emit transfer_event
    [ Abi.Value.Address from_; Abi.Value.Address to_; Abi.Value.Uint amount ]

let do_mint env ~to_ amount =
  env.Chain.sstore supply_key
    (U256.add_exn (env.Chain.sload supply_key) amount);
  env.Chain.sstore (balance_key to_) (U256.add_exn (balance env to_) amount);
  (* Minting emits Transfer(0x0, to, value), the standard convention. *)
  env.Chain.emit transfer_event
    [
      Abi.Value.Address Address.zero;
      Abi.Value.Address to_;
      Abi.Value.Uint amount;
    ]

let do_burn env ~from_ amount =
  let from_bal = balance env from_ in
  if U256.lt from_bal amount then
    raise (Chain.Revert "ERC20: burn amount exceeds balance");
  env.Chain.sstore (balance_key from_) (U256.sub_exn from_bal amount);
  env.Chain.sstore supply_key (U256.sub_exn (env.Chain.sload supply_key) amount);
  env.Chain.emit transfer_event
    [
      Abi.Value.Address from_;
      Abi.Value.Address Address.zero;
      Abi.Value.Uint amount;
    ]

let decode_args types input =
  let payload = String.sub input 4 (String.length input - 4) in
  try Abi.decode types payload
  with Abi.Decode_error msg -> raise (Chain.Revert ("ERC20: bad calldata: " ^ msg))

let dispatch (meta : metadata) (env : Chain.env) : unit =
  let input = env.Chain.input in
  if String.length input < 4 then
    raise (Chain.Revert "ERC20: missing selector (tokens cannot receive plain value)");
  let sel = String.sub input 0 4 in
  if sel = sel_transfer then begin
    match decode_args [ Abi.Type.Address; Abi.Type.uint256 ] input with
    | [ Abi.Value.Address to_; Abi.Value.Uint amount ] ->
        do_transfer env ~from_:env.Chain.sender ~to_ amount
    | _ -> raise (Chain.Revert "ERC20: bad transfer args")
  end
  else if sel = sel_transfer_from then begin
    match
      decode_args [ Abi.Type.Address; Abi.Type.Address; Abi.Type.uint256 ] input
    with
    | [ Abi.Value.Address from_; Abi.Value.Address to_; Abi.Value.Uint amount ]
      ->
        let key = allowance_key from_ env.Chain.sender in
        let allowed = env.Chain.sload key in
        if U256.lt allowed amount then
          raise (Chain.Revert "ERC20: insufficient allowance");
        env.Chain.sstore key (U256.sub_exn allowed amount);
        do_transfer env ~from_ ~to_ amount
    | _ -> raise (Chain.Revert "ERC20: bad transferFrom args")
  end
  else if sel = sel_approve then begin
    match decode_args [ Abi.Type.Address; Abi.Type.uint256 ] input with
    | [ Abi.Value.Address spender; Abi.Value.Uint amount ] ->
        env.Chain.sstore (allowance_key env.Chain.sender spender) amount;
        env.Chain.emit approval_event
          [
            Abi.Value.Address env.Chain.sender;
            Abi.Value.Address spender;
            Abi.Value.Uint amount;
          ]
    | _ -> raise (Chain.Revert "ERC20: bad approve args")
  end
  else if sel = sel_mint then begin
    if not (Address.equal env.Chain.sender meta.token_owner) then
      raise (Chain.Revert "ERC20: mint is owner-only");
    match decode_args [ Abi.Type.Address; Abi.Type.uint256 ] input with
    | [ Abi.Value.Address to_; Abi.Value.Uint amount ] -> do_mint env ~to_ amount
    | _ -> raise (Chain.Revert "ERC20: bad mint args")
  end
  else if sel = sel_burn_from then begin
    if not (Address.equal env.Chain.sender meta.token_owner) then
      raise (Chain.Revert "ERC20: burnFrom is owner-only");
    match decode_args [ Abi.Type.Address; Abi.Type.uint256 ] input with
    | [ Abi.Value.Address from_; Abi.Value.Uint amount ] ->
        do_burn env ~from_ amount
    | _ -> raise (Chain.Revert "ERC20: bad burnFrom args")
  end
  else raise (Chain.Revert "ERC20: unknown selector")

(** Deploy a fresh ERC-20 token.  [owner] (typically the bridge
    contract) may mint and burn. *)
let deploy chain ~from_ ~name ~symbol ~decimals ~owner : Address.t =
  let meta =
    {
      token_name = name;
      token_symbol = symbol;
      token_decimals = decimals;
      token_owner = owner;
    }
  in
  Chain.deploy chain ~from_
    ~label:(Printf.sprintf "ERC20:%s" symbol)
    (dispatch meta)

(* ------------------------------------------------------------------ *)
(* Calldata builders (used by EOAs and other contracts)                 *)

let transfer_calldata ~to_ ~amount =
  sel_transfer
  ^ Abi.encode
      [ Abi.Type.Address; Abi.Type.uint256 ]
      [ Abi.Value.Address to_; Abi.Value.Uint amount ]

let transfer_from_calldata ~from_ ~to_ ~amount =
  sel_transfer_from
  ^ Abi.encode
      [ Abi.Type.Address; Abi.Type.Address; Abi.Type.uint256 ]
      [ Abi.Value.Address from_; Abi.Value.Address to_; Abi.Value.Uint amount ]

let approve_calldata ~spender ~amount =
  sel_approve
  ^ Abi.encode
      [ Abi.Type.Address; Abi.Type.uint256 ]
      [ Abi.Value.Address spender; Abi.Value.Uint amount ]

let mint_calldata ~to_ ~amount =
  sel_mint
  ^ Abi.encode
      [ Abi.Type.Address; Abi.Type.uint256 ]
      [ Abi.Value.Address to_; Abi.Value.Uint amount ]

let burn_from_calldata ~from_ ~amount =
  sel_burn_from
  ^ Abi.encode
      [ Abi.Type.Address; Abi.Type.uint256 ]
      [ Abi.Value.Address from_; Abi.Value.Uint amount ]

(* ------------------------------------------------------------------ *)
(* Read-only helpers (view functions, queried off-chain)               *)

let balance_of chain token holder = Chain.sload chain token (balance_key holder)

let allowance chain token ~owner ~spender =
  Chain.sload chain token (allowance_key owner spender)

let total_supply chain token = Chain.sload chain token supply_key
