(** Wrapped native currency (WETH / WGLMR / WRON).

    [deposit()] accepts native value and mints the wrapped ERC-20 1:1
    (emitting [Deposit(address,uint256)]); [withdraw(uint256)] burns
    and returns native value (emitting [Withdrawal(address,uint256)]).
    The [native_deposit] / [native_withdrawal] relations of the paper's
    Listing 1 are built from exactly these events.  Plain value
    transfers wrap via the receive() path; other selectors fall back to
    the ERC-20 interface. *)

module U256 = Xcw_uint256.Uint256
module Address = Xcw_evm.Address
module Abi = Xcw_abi.Abi

val deposit_event : Abi.Event.t
val withdrawal_event : Abi.Event.t

val deploy : Chain.t -> from_:Address.t -> name:string -> symbol:string -> Address.t

val deposit_calldata : string
val withdraw_calldata : amount:U256.t -> string
